// DNN inference under bus contention — the paper's §VI-C case study as a
// runnable example.
//
// A CHaiDNN-class accelerator runs GoogleNet inference while a high-
// throughput DMA floods the bus. We print the frame rate in isolation,
// under contention with no protection, and under HC-90-10 reservation, so
// you can see the Fig. 5 effect directly.
//
//   $ ./dnn_inference          (1/16-scale GoogleNet, seconds)
//   $ ./dnn_inference --full   (full-size traffic, minutes)
#include <cstring>
#include <iostream>

#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"
#include "hypervisor/domain.hpp"
#include "soc/soc.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

namespace {

axihc::DnnConfig make_dnn(std::uint64_t scale, std::uint64_t frames) {
  axihc::DnnConfig cfg;
  cfg.layers = axihc::googlenet_layers();
  for (auto& l : cfg.layers) {
    l.weight_bytes /= scale;
    l.ifmap_bytes /= scale;
    l.ofmap_bytes /= scale;
    l.macs /= scale;
  }
  cfg.max_frames = frames;
  return cfg;
}

double run_config(bool with_dma, double dnn_share, std::uint64_t scale) {
  using namespace axihc;
  SocConfig cfg;
  cfg.kind = InterconnectKind::kHyperConnect;
  cfg.num_ports = 2;
  if (dnn_share > 0) {
    const ReservationPlan plan =
        plan_bandwidth_split(2000, 27.0, {dnn_share, 1.0 - dnn_share});
    cfg.hc.reservation_period = plan.period;
    cfg.hc.initial_budgets = plan.budgets;
  }
  SocSystem soc(cfg);
  DnnAccelerator dnn("chaidnn", soc.port(0), make_dnn(scale, 2));
  DmaConfig dma_cfg;
  dma_cfg.mode = DmaMode::kReadWrite;
  dma_cfg.bytes_per_job = (4ull << 20) / scale;
  DmaEngine dma("ha_dma", soc.port(1), dma_cfg);
  soc.add(dnn);
  if (with_dma) soc.add(dma);
  soc.sim().reset();
  if (!soc.sim().run_until([&] { return dnn.finished(); },
                           4'000'000'000ull)) {
    return 0.0;
  }
  const auto& frames = dnn.frame_completion_cycles();
  const RateMeter meter(150e6);
  const Cycle span = frames.back() - frames.front();
  return meter.per_second(frames.size() - 1, span) /
         static_cast<double>(scale);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t scale = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) scale = 1;
  }
  std::cout << "CHaiDNN GoogleNet inference under contention (scale 1/"
            << scale << ")\n\n";

  axihc::Table t({"configuration", "GoogleNet frames/s",
                  "% of isolation"});
  const double iso = run_config(false, 0, scale);
  t.add_row({"isolation (DNN alone)", axihc::Table::num(iso, 2), "100%"});
  const double contended = run_config(true, 0, scale);
  t.add_row({"+ DMA, no reservation", axihc::Table::num(contended, 2),
             axihc::Table::num(100 * contended / iso, 0) + "%"});
  const double protected_fps = run_config(true, 0.9, scale);
  t.add_row({"+ DMA, HC-90-10 reservation",
             axihc::Table::num(protected_fps, 2),
             axihc::Table::num(100 * protected_fps / iso, 0) + "%"});
  t.print_markdown(std::cout);

  std::cout << "\nThe reservation mechanism restores the DNN close to its "
               "isolation frame rate\nwhile the DMA keeps the leftover "
               "bandwidth — the paper's Fig. 5 in miniature.\n";
  return 0;
}
