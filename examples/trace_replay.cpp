// Record-and-replay workflow: capture the address trace of a live workload
// with an AxiMonitor, save it in the text trace format, and replay it —
// against the same interconnect and against the SmartConnect baseline — to
// compare how the two serve identical traffic.
//
//   $ ./trace_replay            # record + replay, print the comparison
#include <iostream>
#include <sstream>

#include "axi/monitor.hpp"
#include "axi/trace_format.hpp"
#include "ha/dnn_accelerator.hpp"
#include "ha/trace_player.hpp"
#include "interconnect/smartconnect.hpp"
#include "soc/soc.hpp"
#include "stats/table.hpp"

namespace {

using namespace axihc;

/// Replays `trace` through the chosen interconnect; returns (cycles to
/// drain, max read latency).
std::pair<Cycle, Cycle> replay(const std::vector<TraceEntry>& trace,
                               InterconnectKind kind) {
  SocConfig cfg;
  cfg.kind = kind;
  cfg.num_ports = 2;
  SocSystem soc(cfg);
  TracePlayer player("replay", soc.port(0), trace);
  soc.add(player);
  soc.sim().reset();
  soc.sim().run_until([&] { return player.finished(); }, 100'000'000);
  return {soc.sim().now(), player.stats().read_latency.count()
                               ? player.stats().read_latency.max()
                               : 0};
}

}  // namespace

int main() {
  using namespace axihc;

  // --- record: one DNN frame through a monitored HyperConnect port -------
  std::vector<TraceEntry> trace;
  {
    SocConfig cfg;
    cfg.kind = InterconnectKind::kHyperConnect;
    cfg.num_ports = 2;
    SocSystem soc(cfg);
    AxiLink ha_link("ha");
    ha_link.register_with(soc.sim());
    AxiMonitor recorder("rec", ha_link, soc.port(0));
    recorder.set_trace_sink(&trace);
    soc.add(recorder);

    DnnConfig dnn_cfg;
    dnn_cfg.layers = googlenet_layers();
    for (auto& l : dnn_cfg.layers) {  // 1/64 scale: a quick demo frame
      l.weight_bytes /= 64;
      l.ifmap_bytes /= 64;
      l.ofmap_bytes /= 64;
      l.macs /= 64;
    }
    dnn_cfg.max_frames = 1;
    DnnAccelerator dnn("dnn", ha_link, dnn_cfg);
    soc.add(dnn);
    soc.sim().reset();
    trace.clear();
    soc.sim().run_until([&] { return dnn.finished(); }, 100'000'000);
  }

  std::ostringstream serialized;
  write_trace(serialized, trace);
  std::cout << "Recorded " << trace.size()
            << " address requests from one scaled GoogleNet frame ("
            << serialized.str().size() << " bytes of trace text).\n";
  std::cout << "First lines:\n";
  std::istringstream head(serialized.str());
  std::string line;
  for (int i = 0; i < 4 && std::getline(head, line); ++i) {
    std::cout << "  " << line << "\n";
  }

  // Round-trip through the text format, as a file on disk would.
  const std::vector<TraceEntry> reloaded = parse_trace(serialized.str());

  // --- replay on both interconnects --------------------------------------
  const auto [hc_cycles, hc_max] =
      replay(reloaded, InterconnectKind::kHyperConnect);
  const auto [sc_cycles, sc_max] =
      replay(reloaded, InterconnectKind::kSmartConnect);

  std::cout << "\nReplaying the identical trace:\n\n";
  Table t({"interconnect", "drain time (cycles)", "max txn latency (cycles)"});
  t.add_row({"HyperConnect", std::to_string(hc_cycles),
             std::to_string(hc_max)});
  t.add_row({"SmartConnect", std::to_string(sc_cycles),
             std::to_string(sc_max)});
  t.print_markdown(std::cout);
  std::cout << "\nSame addresses, same issue cycles — the per-transaction "
               "latency gap is purely\nthe interconnects' pipelines "
               "(Fig. 3 in controlled form).\n";
  return 0;
}
