// Quickstart: build the paper's Figure-1 system — two DMA accelerators
// sharing one AXI HyperConnect in front of the DRAM controller — run it,
// and print what happened.
//
//   $ ./quickstart
//
// Walks through the three things every user of this library does:
//   1. assemble a SocSystem (simulator + interconnect + memory),
//   2. attach hardware-accelerator models to the interconnect ports,
//   3. run the clock and read the statistics.
#include <iostream>

#include "ha/dma_engine.hpp"
#include "soc/soc.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

int main() {
  using namespace axihc;

  // 1. The platform: a 2-port AXI HyperConnect with bandwidth reservation
  //    enabled (2000-cycle windows; 30 transactions for HA0, 15 for HA1),
  //    in front of an open-row DRAM controller model.
  SocConfig cfg;
  cfg.kind = InterconnectKind::kHyperConnect;
  cfg.num_ports = 2;
  cfg.hc.nominal_burst = 16;       // equalize bursts to 16 beats [11]
  cfg.hc.reservation_period = 2000;  // reservation window T [10]
  cfg.hc.initial_budgets = {30, 15};  // sums below the ~72-txn window capacity
  SocSystem soc(cfg);

  // 2. Two DMA engines, as in the paper's §VI-B: each one reads and writes
  //    256 KB per job, looping forever.
  DmaConfig dma_cfg;
  dma_cfg.mode = DmaMode::kReadWrite;
  dma_cfg.bytes_per_job = 256 << 10;
  dma_cfg.burst_beats = 16;
  DmaEngine dma0("dma0", soc.port(0), dma_cfg);
  dma_cfg.read_base = 0x5000'0000;
  dma_cfg.write_base = 0x6000'0000;
  DmaEngine dma1("dma1", soc.port(1), dma_cfg);
  soc.add(dma0);
  soc.add(dma1);

  // 3. Run one million fabric cycles (6.7 ms at 150 MHz) and report.
  soc.sim().reset();
  soc.sim().run(1'000'000);

  const RateMeter meter(150e6);
  std::cout << "AXI HyperConnect quickstart — 1,000,000 cycles @150 MHz\n\n";
  Table t({"HA", "jobs done", "bytes read", "bytes written",
           "read BW (MB/s)", "max read latency (cyc)"});
  for (const DmaEngine* dma : {&dma0, &dma1}) {
    const MasterStats& s = dma->stats();
    t.add_row({dma->name(), std::to_string(dma->jobs_completed()),
               std::to_string(s.bytes_read), std::to_string(s.bytes_written),
               Table::num(meter.bytes_per_second(s.bytes_read,
                                                 soc.sim().now()) / 1e6, 1),
               std::to_string(s.read_latency.max())});
  }
  t.print_markdown(std::cout);

  const HyperConnect* hc = soc.hyperconnect();
  std::cout << "\nInterconnect: " << hc->recharges()
            << " budget recharges; per-port sub-transactions: "
            << hc->supervisor(0).subtransactions_issued() << " / "
            << hc->supervisor(1).subtransactions_issued()
            << " (2:1, tracking the 30:15 budgets)\n";
  std::cout << "\nNext: examples/mixed_criticality, examples/dnn_inference, "
               "examples/runtime_reconfig.\n";
  return 0;
}
