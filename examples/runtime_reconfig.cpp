// Runtime reconfiguration (§V-A): changing the HyperConnect's behaviour
// from the PS while traffic is flowing — something the static SmartConnect
// cannot do at all.
//
// Timeline of this demo (single run, one system):
//   phase 1: two DMAs share the bus with no reservation (≈50/50);
//   phase 2: the driver programs a 75/25 budget split over the control bus;
//   phase 3: the split is flipped to 25/75 live;
//   phase 4: port 1 is decoupled (as around dynamic partial
//            reconfiguration), traffic continues on port 0 alone;
//   phase 5: port 1 is recoupled and service resumes.
#include <iostream>

#include "driver/hyperconnect_driver.hpp"
#include "ha/dma_engine.hpp"
#include "soc/soc.hpp"
#include "stats/table.hpp"

namespace {

struct PhaseSample {
  std::uint64_t bytes0 = 0;
  std::uint64_t bytes1 = 0;
};

}  // namespace

int main() {
  using namespace axihc;

  SocConfig cfg;
  cfg.kind = InterconnectKind::kHyperConnect;
  cfg.num_ports = 2;
  SocSystem soc(cfg);
  HyperConnect* hc = soc.hyperconnect();

  DmaConfig d;
  d.mode = DmaMode::kRead;
  d.bytes_per_job = 1u << 20;
  DmaEngine dma0("dma0", soc.port(0), d);
  d.read_base = 0x5000'0000;
  DmaEngine dma1("dma1", soc.port(1), d);
  RegisterMaster rm("rm", hc->control_link());
  HyperConnectDriver driver(rm, 2);
  soc.add(dma0);
  soc.add(dma1);
  soc.add(rm);
  soc.sim().reset();

  auto run_phase = [&](const std::string& name, Cycle cycles) {
    const std::uint64_t b0 = dma0.stats().bytes_read;
    const std::uint64_t b1 = dma1.stats().bytes_read;
    soc.sim().run(cycles);
    const double n0 = static_cast<double>(dma0.stats().bytes_read - b0);
    const double n1 = static_cast<double>(dma1.stats().bytes_read - b1);
    const double total = n0 + n1;
    std::cout << "  " << name << ": dma0 "
              << Table::num(total > 0 ? 100 * n0 / total : 0, 1)
              << "% / dma1 "
              << Table::num(total > 0 ? 100 * n1 / total : 0, 1)
              << "%  (" << static_cast<std::uint64_t>(total) / 1024
              << " KB moved)\n";
  };
  auto settle = [&] {
    soc.sim().run_until([&] { return driver.idle(); }, 10'000);
  };

  std::cout << "Runtime reconfiguration demo (bandwidth split per phase):\n";

  run_phase("phase 1  no reservation        ", 150'000);

  driver.apply_reservation(2000, {54, 18});  // 75/25 of ~72 txn/window
  settle();
  run_phase("phase 2  75/25 budgets         ", 150'000);

  driver.set_budget(0, 18);
  driver.set_budget(1, 54);
  settle();
  run_phase("phase 3  flipped to 25/75      ", 150'000);

  driver.set_coupled(1, false);  // decouple around partial reconfiguration
  settle();
  run_phase("phase 4  port 1 decoupled (DPR)", 150'000);

  // After partial reconfiguration the region holds a fresh accelerator:
  // reset the HA model before recoupling (its pre-decouple in-flight state
  // was flushed/grounded by the HyperConnect).
  dma1.reset();
  driver.set_coupled(1, true);
  driver.set_reservation_period(0);  // reservation off again
  settle();
  run_phase("phase 5  recoupled, no limits  ", 150'000);

  std::cout << "\nAll five transitions happened live, through the "
               "memory-mapped control\ninterface — no re-synthesis, no "
               "traffic loss on the untouched port.\n";
  return 0;
}
