// Mixed-criticality integration story (§IV of the paper), end to end:
//
//   1. Two applications hand their accelerators to the system integrator as
//      IP-XACT descriptions: a high-criticality vision pipeline (DNN) and a
//      low-criticality logging DMA.
//   2. The integrator builds the SoC design (port assignment, domains).
//   3. The hypervisor programs the HyperConnect over the control bus:
//      90% of the bus to the vision domain, 10% to logging, and arms a
//      watchdog policing the logging HA.
//   4. The logging HA misbehaves (floods the bus); the watchdog detects the
//      overrun and decouples it; the vision pipeline keeps its guarantees.
#include <iostream>

#include "driver/hyperconnect_driver.hpp"
#include "ha/dnn_accelerator.hpp"
#include "ha/traffic_gen.hpp"
#include "hypervisor/hypervisor.hpp"
#include "hypervisor/integrator.hpp"
#include "ipxact/ipxact.hpp"
#include "soc/soc.hpp"

int main() {
  using namespace axihc;

  // --- integration phase (offline) --------------------------------------
  SystemIntegrator integrator;
  integrator.add_accelerator({describe_accelerator("dnn_vision", "acme.com"),
                              "vision", Criticality::kHigh, 0.9});
  integrator.add_accelerator({describe_accelerator("log_dma", "acme.com"),
                              "logging", Criticality::kLow, 0.1});

  HyperConnectConfig hc_cfg;
  hc_cfg.num_ports = 2;
  const SocDesign design = integrator.integrate(hc_cfg);
  std::cout << "Integrated design with interconnect "
            << design.interconnect.vlnv() << "\n";
  for (PortIndex p = 0; p < design.port_assignment.size(); ++p) {
    std::cout << "  port " << p << " <- " << design.port_assignment[p]
              << "\n";
  }
  std::cout << "IP-XACT export:\n"
            << to_ipxact_xml(design.interconnect).substr(0, 280)
            << "  ...\n\n";

  // --- deployment --------------------------------------------------------
  SocConfig cfg;
  cfg.kind = InterconnectKind::kHyperConnect;
  cfg.num_ports = 2;
  cfg.hc = hc_cfg;
  SocSystem soc(cfg);
  HyperConnect* hc = soc.hyperconnect();

  DnnConfig dnn_cfg;
  dnn_cfg.layers = googlenet_layers();
  for (auto& l : dnn_cfg.layers) {  // scaled for a quick demo
    l.weight_bytes /= 16;
    l.ifmap_bytes /= 16;
    l.ofmap_bytes /= 16;
    l.macs /= 16;
  }
  DnnAccelerator dnn("dnn_vision", soc.port(0), dnn_cfg);
  TrafficGenerator logger("log_dma", soc.port(1),
                          TrafficGenerator::bandwidth_stealer(0x6000'0000));

  RegisterMaster rm("rm", hc->control_link());
  HyperConnectDriver driver(rm, 2);
  Hypervisor hv("hypervisor", driver);
  for (const Domain& d : design.domains) hv.add_domain(d);

  soc.add(dnn);
  soc.add(logger);
  soc.add(rm);
  soc.add(hv);
  soc.sim().reset();

  // Hypervisor programs the reservation (90/10) and arms the watchdog.
  // Policy: a *logging* HA is expected to be sporadic — at most 10
  // transactions per 5000-cycle poll. A stealer that continuously burns
  // even its small 10% reservation is misbehaving and gets decoupled.
  hv.configure_reservation(/*period=*/2000, /*cycles_per_txn=*/27.0);
  WatchdogPolicy policy;
  policy.poll_period = 5000;
  policy.max_txns_per_poll = {0, 10};
  hv.set_watchdog(policy);
  soc.sim().run_until([&] { return driver.idle(); }, 10'000);
  std::cout << "Hypervisor configured: period="
            << hc->runtime().reservation_period << " budgets={"
            << hc->runtime().budgets[0] << "," << hc->runtime().budgets[1]
            << "}\n";

  // --- run: the logger goes rogue, the watchdog reacts -------------------
  soc.sim().run(1'500'000);

  std::cout << "\nAfter 1.5M cycles (10 ms at 150 MHz):\n";
  std::cout << "  vision DNN frames completed: " << dnn.frames_completed()
            << " (" << dnn.stats().bytes_read / 1024 << " KB read)\n";
  std::cout << "  logger bytes read: " << logger.stats().bytes_read / 1024
            << " KB\n";
  if (!hv.isolation_events().empty()) {
    const IsolationEvent& e = hv.isolation_events().front();
    std::cout << "  watchdog: port " << e.port << " decoupled at cycle "
              << e.cycle << " (observed " << e.observed_txns
              << " txns, allowed " << e.allowed_txns << ")\n";
  } else {
    std::cout << "  watchdog: no intervention (unexpected for this demo)\n";
  }
  std::cout << "  logger coupled: " << std::boolalpha
            << hc->runtime().coupled[1]
            << "  — the faulty HA is cut off from the memory subsystem,\n"
               "    while the vision domain kept running under its 90% "
               "reservation.\n";
  return 0;
}
