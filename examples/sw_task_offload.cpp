// The full §II offload pattern: SW-tasks on the PS programming HAs over
// their AXI control interfaces, HAs working asynchronously through the
// HyperConnect, completion interrupts closing the loop.
//
// Two applications:
//  * a vision SW-task running GoogleNet-like inference frames on a DNN HA;
//  * a storage SW-task running buffer moves on a DMA HA;
// both measured by their end-to-end request response times, with a 70/30
// reservation keeping the vision pipeline predictable.
#include <iostream>

#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"
#include "hypervisor/domain.hpp"
#include "ps/ha_control_slave.hpp"
#include "ps/sw_task.hpp"
#include "soc/soc.hpp"
#include "stats/table.hpp"

int main() {
  using namespace axihc;

  // Platform with a 70/30 reservation split.
  SocConfig cfg;
  cfg.kind = InterconnectKind::kHyperConnect;
  cfg.num_ports = 2;
  const ReservationPlan plan =
      plan_bandwidth_split(2000, 27.0, {0.7, 0.3});
  cfg.hc.reservation_period = plan.period;
  cfg.hc.initial_budgets = plan.budgets;
  SocSystem soc(cfg);

  InterruptController irq(2);

  // Vision HA: a small DNN (1/32-scale GoogleNet), one frame per request.
  DnnConfig dnn_cfg;
  dnn_cfg.layers = googlenet_layers();
  for (auto& l : dnn_cfg.layers) {
    l.weight_bytes /= 32;
    l.ifmap_bytes /= 32;
    l.ofmap_bytes /= 32;
    l.macs /= 32;
  }
  dnn_cfg.externally_triggered = true;
  DnnAccelerator dnn("dnn", soc.port(0), dnn_cfg);
  AxiLink dnn_ctrl("dnn_ctrl");
  HaControlSlave dnn_slave("dnn_slave", dnn_ctrl, dnn, irq, 0);
  SwTaskConfig vision_cfg;
  vision_cfg.irq_line = 0;
  vision_cfg.max_requests = 8;
  vision_cfg.think_cycles = 500;  // post-processing between frames
  SwTask vision("vision_task", dnn_ctrl, irq, vision_cfg);

  // Storage HA: a DMA moving 64 KB per request.
  DmaConfig dma_cfg;
  dma_cfg.mode = DmaMode::kReadWrite;
  dma_cfg.bytes_per_job = 64 << 10;
  dma_cfg.externally_triggered = true;
  DmaEngine dma("dma", soc.port(1), dma_cfg);
  AxiLink dma_ctrl("dma_ctrl");
  HaControlSlave dma_slave("dma_slave", dma_ctrl, dma, irq, 1);
  SwTaskConfig storage_cfg;
  storage_cfg.irq_line = 1;
  storage_cfg.max_requests = 20;
  storage_cfg.think_cycles = 100;
  SwTask storage("storage_task", dma_ctrl, irq, storage_cfg);

  dnn_ctrl.register_with(soc.sim());
  dma_ctrl.register_with(soc.sim());
  soc.add(dnn);
  soc.add(dnn_slave);
  soc.add(vision);
  soc.add(dma);
  soc.add(dma_slave);
  soc.add(storage);
  soc.sim().reset();

  soc.sim().run_until(
      [&] { return vision.finished() && storage.finished(); }, 100'000'000);

  const RateMeter meter(150e6);
  std::cout << "SW-task offload demo (70/30 reservation, "
            << soc.sim().now() << " cycles simulated)\n\n";
  Table t({"SW-task", "requests", "response min (us)", "mean (us)",
           "max (us)", "interrupts"});
  auto row = [&](const SwTask& task, std::uint32_t line) {
    const LatencyStats& rt = task.response_times();
    t.add_row({task.name(), std::to_string(task.requests_completed()),
               Table::num(meter.to_us(rt.min()), 1),
               Table::num(meter.to_us(static_cast<Cycle>(rt.mean())), 1),
               Table::num(meter.to_us(rt.max()), 1),
               std::to_string(irq.raised_count(line))});
  };
  row(vision, 0);
  row(storage, 1);
  t.print_markdown(std::cout);

  std::cout << "\nEach request ran start-command -> control bus -> HA -> "
               "shared memory ->\ncompletion interrupt -> SW-task, with the "
               "HyperConnect isolating the two\ndomains' bus traffic "
               "throughout.\n";
  return 0;
}
