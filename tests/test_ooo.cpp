// Out-of-order completion extension (the paper's future work, §V-A): FR-FCFS
// memory scheduling + ID-extension routing in the HyperConnect.
#include <gtest/gtest.h>

#include "axi/monitor.hpp"
#include "ha/dma_engine.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

MemoryControllerConfig frfcfs_cfg() {
  MemoryControllerConfig c;
  c.scheduling = MemScheduling::kFrFcfs;
  c.id_order_mask = 0xFFFF0000;  // per-source-port ordering
  c.row_hit_latency = 4;
  c.row_miss_latency = 30;
  return c;
}

TEST(FrFcfs, RowHitOvertakesOlderMiss) {
  // Two reads queued: the older one misses its row, the younger hits the
  // open row. FR-FCFS serves the hit first.
  Simulator sim;
  AxiLink link("l");
  BackingStore store;
  MemoryControllerConfig cfg = frfcfs_cfg();
  MemoryController mem("ddr", link, store, cfg);
  link.register_with(sim);
  sim.add(mem);
  sim.reset();

  // Long warm-up read: opens the row at 0x0000 and keeps the controller
  // busy while the two contenders enqueue behind it.
  AddrReq warm;
  warm.id = 0x0003'0000;
  warm.addr = 0x0;
  warm.beats = 8;
  link.ar.push(warm);
  sim.run(5);

  // id A (older) targets a cold row (miss), id B (younger) the warm row.
  AddrReq miss;
  miss.id = 0x0001'0001;  // port 1
  miss.addr = 0x10000;
  miss.beats = 1;
  AddrReq hit;
  hit.id = 0x0002'0001;  // port 2
  hit.addr = 0x8;
  hit.beats = 1;
  link.ar.push(miss);
  sim.step();
  link.ar.push(hit);

  std::vector<TxnId> order;
  sim.run_until(
      [&] {
        while (link.r.can_pop()) {
          const RBeat beat = link.r.pop();
          if (beat.last) order.push_back(beat.id);
        }
        return order.size() >= 3;
      },
      500);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], warm.id);
  EXPECT_EQ(order[1], hit.id) << "row hit should have been served first";
  EXPECT_EQ(order[2], miss.id);
  EXPECT_EQ(mem.reordered(), 1u);
}

TEST(FrFcfs, PerIdOrderNeverViolated) {
  // Two reads with the SAME masked id: even if the younger is a row hit it
  // must not overtake.
  Simulator sim;
  AxiLink link("l");
  BackingStore store;
  MemoryController mem("ddr", link, store, frfcfs_cfg());
  link.register_with(sim);
  sim.add(mem);
  sim.reset();

  AddrReq warm;
  warm.id = 0x0003'0000;
  warm.addr = 0x0;
  warm.beats = 8;  // keeps the controller busy while both contenders queue
  link.ar.push(warm);
  sim.run(5);

  AddrReq first;
  first.id = 0x0001'0007;  // port 1
  first.addr = 0x20000;    // cold row
  first.beats = 1;
  AddrReq second;
  second.id = 0x0001'0008;  // port 1 again (same masked id)
  second.addr = 0x8;        // warm row
  second.beats = 1;
  link.ar.push(first);
  sim.step();
  link.ar.push(second);

  std::vector<TxnId> order;
  sim.run_until(
      [&] {
        while (link.r.can_pop()) {
          const RBeat beat = link.r.pop();
          if (beat.last) order.push_back(beat.id);
        }
        return order.size() >= 3;
      },
      500);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], first.id);
  EXPECT_EQ(order[2], second.id);
  EXPECT_EQ(mem.reordered(), 0u);
}

TEST(FrFcfs, WriteNeedsBufferedDataBeforeReordering) {
  // A write whose W data has not arrived cannot be picked even as a row
  // hit; a younger read proceeds.
  Simulator sim;
  AxiLink link("l");
  BackingStore store;
  MemoryController mem("ddr", link, store, frfcfs_cfg());
  link.register_with(sim);
  sim.add(mem);
  sim.reset();

  AddrReq aw;
  aw.id = 0x0001'0001;
  aw.addr = 0x0;
  aw.beats = 2;
  link.aw.push(aw);  // no W data yet
  sim.step();
  AddrReq ar;
  ar.id = 0x0002'0001;
  ar.addr = 0x40000;
  ar.beats = 1;
  link.ar.push(ar);

  sim.run_until([&] { return link.r.can_pop(); }, 500);
  ASSERT_TRUE(link.r.can_pop());
  EXPECT_FALSE(link.b.can_pop()) << "write finished without data";

  // Now deliver the data; the write completes.
  link.w.push({1, 0xff, false});
  link.w.push({2, 0xff, true});
  sim.run_until([&] { return link.b.can_pop(); }, 500);
  EXPECT_TRUE(link.b.can_pop());
  EXPECT_EQ(store.read_word(0x0), 1u);
  EXPECT_EQ(store.read_word(0x8), 2u);
}

struct OooSystem {
  OooSystem() {
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    cfg.out_of_order = true;
    hc = std::make_unique<HyperConnect>("hc", cfg);
    mem = std::make_unique<MemoryController>("ddr", hc->master_link(), store,
                                             frfcfs_cfg());
    hc->register_with(sim);
    sim.add(*mem);
  }

  Simulator sim;
  BackingStore store;
  std::unique_ptr<HyperConnect> hc;
  std::unique_ptr<MemoryController> mem;
};

TEST(OooHyperConnect, EndToEndDmaTrafficCompletes) {
  OooSystem sys;
  DmaConfig d;
  d.mode = DmaMode::kReadWrite;
  d.bytes_per_job = 4096;
  d.burst_beats = 16;
  d.max_jobs = 2;
  d.tolerate_out_of_order = true;
  DmaEngine dma0("dma0", sys.hc->port_link(0), d);
  d.read_base = 0x5000'0000;
  d.write_base = 0x6000'0000;
  DmaEngine dma1("dma1", sys.hc->port_link(1), d);
  sys.sim.add(dma0);
  sys.sim.add(dma1);
  sys.sim.reset();

  ASSERT_TRUE(sys.sim.run_until(
      [&] { return dma0.finished() && dma1.finished(); }, 500000));
  // 2 jobs x 4096 B at 128 B bursts = 64 transactions per direction.
  EXPECT_EQ(dma0.stats().reads_completed, 64u);
  EXPECT_EQ(dma1.stats().writes_completed, 64u);
}

TEST(OooHyperConnect, WriteDataIntegrityAcrossReordering) {
  OooSystem sys;
  DmaConfig d;
  d.mode = DmaMode::kWrite;
  d.bytes_per_job = 2048;
  d.burst_beats = 16;
  d.max_jobs = 1;
  d.tolerate_out_of_order = true;
  d.write_base = 0x1000;
  DmaEngine dma0("dma0", sys.hc->port_link(0), d);
  d.write_base = 0x9000;
  DmaEngine dma1("dma1", sys.hc->port_link(1), d);
  sys.sim.add(dma0);
  sys.sim.add(dma1);
  sys.sim.reset();

  ASSERT_TRUE(sys.sim.run_until(
      [&] { return dma0.finished() && dma1.finished(); }, 500000));
  for (Addr o = 0; o < 2048; o += 8) {
    ASSERT_EQ(sys.store.read_word(0x1000 + o), o - (o % 128) + (o % 128) / 8)
        << "dma0 offset " << o;
  }
}

TEST(OooHyperConnect, HaSideStreamsRemainProtocolClean) {
  // Per-port order is preserved even when the controller reorders across
  // ports, so an HA-side protocol monitor must stay clean.
  OooSystem sys;
  AxiLink ha_link("ha");
  ha_link.register_with(sys.sim);
  AxiMonitor monitor("mon", ha_link, sys.hc->port_link(0));
  monitor.set_throw_on_violation(true);
  sys.sim.add(monitor);

  DmaConfig d;
  d.mode = DmaMode::kReadWrite;
  d.bytes_per_job = 8192;
  d.burst_beats = 32;  // split by the TS
  d.max_jobs = 1;
  d.tolerate_out_of_order = true;
  DmaEngine dma0("dma0", ha_link, d);
  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 16;
  t.tolerate_out_of_order = true;
  t.base = 0x7000'0000;
  TrafficGenerator g1("g1", sys.hc->port_link(1), t);
  sys.sim.add(dma0);
  sys.sim.add(g1);
  sys.sim.reset();

  ASSERT_TRUE(sys.sim.run_until([&] { return dma0.finished(); }, 500000));
  EXPECT_TRUE(monitor.clean());
}

TEST(OooHyperConnect, ReorderingActuallyHappens) {
  // Port 0 sprays cold rows (misses), port 1 streams one hot row (hits):
  // FR-FCFS must reorder, and both masters still complete.
  OooSystem sys;
  TrafficConfig cold;
  cold.direction = TrafficDirection::kRead;
  cold.burst_beats = 4;
  cold.base = 0x4000'0000;
  cold.region_bytes = 32 << 20;  // sweep far across rows
  cold.tolerate_out_of_order = true;
  cold.max_transactions = 50;
  TrafficGenerator misses("misses", sys.hc->port_link(0), cold);

  TrafficConfig hot;
  hot.direction = TrafficDirection::kRead;
  hot.burst_beats = 4;
  hot.base = 0x6000'0000;
  hot.region_bytes = 2048;  // stays within one row
  hot.tolerate_out_of_order = true;
  hot.max_transactions = 50;
  TrafficGenerator hits("hits", sys.hc->port_link(1), hot);

  sys.sim.add(misses);
  sys.sim.add(hits);
  sys.sim.reset();
  ASSERT_TRUE(sys.sim.run_until(
      [&] { return misses.finished() && hits.finished(); }, 500000));
  EXPECT_GT(sys.mem->reordered(), 0u);
}

TEST(OooHyperConnect, InOrderMasterOnOooFabricWouldThrow) {
  // Documentation-by-test of the compatibility constraint: a legacy
  // in-order master (tolerate_out_of_order = false) on an out-of-order
  // platform trips its ordering assertion once reordering occurs.
  OooSystem sys;
  TrafficConfig cold;
  cold.direction = TrafficDirection::kRead;
  cold.burst_beats = 4;
  cold.base = 0x4000'0000;
  cold.region_bytes = 32 << 20;
  cold.max_outstanding = 8;
  cold.tolerate_out_of_order = false;  // legacy master
  TrafficGenerator legacy("legacy", sys.hc->port_link(0), cold);
  TrafficConfig hot;
  hot.direction = TrafficDirection::kRead;
  hot.burst_beats = 4;
  hot.base = 0x6000'0000;
  hot.region_bytes = 2048;
  hot.tolerate_out_of_order = true;
  TrafficGenerator hits("hits", sys.hc->port_link(1), hot);
  sys.sim.add(legacy);
  sys.sim.add(hits);
  sys.sim.reset();

  // Per-port order is preserved by the id mask, so a single-port legacy
  // master is actually SAFE — this must NOT throw. (Cross-port reordering
  // is invisible to each port.)
  EXPECT_NO_THROW(sys.sim.run(50000));
  EXPECT_GT(legacy.stats().reads_completed, 0u);
}

}  // namespace
}  // namespace axihc
