// Platform presets: both of the paper's boards, and the "similar results"
// claim — every comparison shape holds on both platforms.
#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "interconnect/smartconnect.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

TEST(Platform, PresetsDiffer) {
  const Platform zu = zcu102_platform();
  const Platform z7 = zynq7020_platform();
  EXPECT_GT(zu.clock_hz, z7.clock_hz);
  EXPECT_GT(zu.device.lut, z7.device.lut);
  EXPECT_LT(zu.mem.row_miss_latency, z7.mem.row_miss_latency);
}

TEST(Platform, AnalysisPlatformTracksMemoryTiming) {
  const Platform z7 = zynq7020_platform();
  const AnalysisPlatform a = z7.analysis();
  EXPECT_EQ(a.mem_latency, z7.mem.row_miss_latency);
  EXPECT_EQ(a.turnaround, z7.mem.turnaround);
}

TEST(Platform, RateMeterUsesPlatformClock) {
  const Platform z7 = zynq7020_platform();
  // 100 completions in 1e6 cycles at 100 MHz = 10k/s.
  EXPECT_DOUBLE_EQ(z7.rate_meter().per_second(100, 1'000'000), 10000.0);
}

/// The paper's §VI-A: "experiments conducted on both platforms, obtaining
/// similar results". Re-run the headline fairness comparison on each
/// platform preset and check the SHAPE is platform-independent.
class PlatformShape : public ::testing::TestWithParam<bool> {};

TEST_P(PlatformShape, EqualizationFairnessShapeHoldsOnBothBoards) {
  const Platform platform =
      GetParam() ? zcu102_platform() : zynq7020_platform();

  auto victim_share = [&](bool use_hc) {
    Simulator sim;
    BackingStore store;
    std::unique_ptr<Interconnect> icn;
    if (use_hc) {
      HyperConnectConfig cfg;
      cfg.num_ports = 2;
      cfg.nominal_burst = 16;
      icn = std::make_unique<HyperConnect>("hc", cfg);
    } else {
      icn = std::make_unique<SmartConnect>("sc", 2, SmartConnectConfig{});
    }
    MemoryController mem("ddr", icn->master_link(), store, platform.mem);
    icn->register_with(sim);
    sim.add(mem);

    TrafficConfig small;
    small.direction = TrafficDirection::kRead;
    small.burst_beats = 4;
    small.base = 0x4000'0000;
    TrafficGenerator victim("victim", icn->port_link(0), small);
    TrafficGenerator stealer("stealer", icn->port_link(1),
                             TrafficGenerator::bandwidth_stealer(0x6000'0000));
    sim.add(victim);
    sim.add(stealer);
    sim.reset();
    sim.run(120000);
    const double v = static_cast<double>(victim.stats().bytes_read);
    const double s = static_cast<double>(stealer.stats().bytes_read);
    return v / (v + s);
  };

  const double sc = victim_share(false);
  const double hc = victim_share(true);
  EXPECT_LT(sc, 0.10) << platform.name;
  EXPECT_GT(hc, 0.15) << platform.name;
}

INSTANTIATE_TEST_SUITE_P(Boards, PlatformShape, ::testing::Bool(),
                         [](const auto& param_info) {
                           return param_info.param ? "zcu102" : "zynq7020";
                         });

}  // namespace
}  // namespace axihc
