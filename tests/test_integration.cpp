// Full-stack integration tests: the paper's case study in miniature —
// CHaiDNN-like accelerator + DMA through both interconnects, hypervisor
// reconfiguration at run time, SocSystem assembly.
#include <gtest/gtest.h>

#include "driver/hyperconnect_driver.hpp"
#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"
#include "ha/traffic_gen.hpp"
#include "hypervisor/hypervisor.hpp"
#include "soc/soc.hpp"

namespace axihc {
namespace {

/// A scaled-down GoogleNet (1/16 of the traffic) so integration tests run
/// in milliseconds while keeping the phase structure.
std::vector<DnnLayer> tiny_dnn() {
  std::vector<DnnLayer> layers = googlenet_layers();
  for (auto& l : layers) {
    l.weight_bytes /= 16;
    l.ifmap_bytes /= 16;
    l.ofmap_bytes /= 16;
    l.macs /= 16;
  }
  return layers;
}

DnnConfig tiny_dnn_cfg(std::uint64_t frames) {
  DnnConfig cfg;
  cfg.layers = tiny_dnn();
  cfg.macs_per_cycle = 256;
  cfg.max_frames = frames;
  return cfg;
}

DmaConfig small_dma_cfg() {
  DmaConfig cfg;
  cfg.mode = DmaMode::kReadWrite;
  cfg.bytes_per_job = 256 * 1024;
  cfg.burst_beats = 16;
  cfg.max_outstanding = 8;
  return cfg;
}

TEST(SocSystem, BuildsHyperConnectVariant) {
  SocConfig cfg;
  cfg.kind = InterconnectKind::kHyperConnect;
  cfg.num_ports = 2;
  SocSystem soc(cfg);
  EXPECT_NE(soc.hyperconnect(), nullptr);
  EXPECT_EQ(soc.interconnect().num_ports(), 2u);
}

TEST(SocSystem, BuildsSmartConnectVariant) {
  SocConfig cfg;
  cfg.kind = InterconnectKind::kSmartConnect;
  SocSystem soc(cfg);
  EXPECT_EQ(soc.hyperconnect(), nullptr);
}

TEST(Integration, DnnPlusDmaRunsOnBothInterconnects) {
  for (const auto kind :
       {InterconnectKind::kHyperConnect, InterconnectKind::kSmartConnect}) {
    SocConfig cfg;
    cfg.kind = kind;
    cfg.num_ports = 2;
    SocSystem soc(cfg);
    DnnAccelerator dnn("dnn", soc.port(0), tiny_dnn_cfg(1));
    DmaEngine dma("dma", soc.port(1), small_dma_cfg());
    soc.add(dnn);
    soc.add(dma);
    soc.sim().reset();
    ASSERT_TRUE(soc.sim().run_until([&] { return dnn.finished(); },
                                    20'000'000))
        << "kind=" << static_cast<int>(kind);
    EXPECT_EQ(dnn.frames_completed(), 1u);
    EXPECT_GT(dma.jobs_completed(), 0u);
  }
}

TEST(Integration, ReservationProtectsDnnFromDma) {
  // The Fig. 5 mechanism end-to-end: frame time with a greedy DMA under
  // plain HC (no reservation) vs HC-90-10. The reserved run must be faster
  // for the DNN.
  auto frame_cycles = [](bool reserve) -> Cycle {
    SocConfig cfg;
    cfg.kind = InterconnectKind::kHyperConnect;
    cfg.num_ports = 2;
    if (reserve) {
      cfg.hc.reservation_period = 2000;
      // ~2000/28 = 71 sub-txn capacity; 90% / 10%.
      cfg.hc.initial_budgets = {64, 7};
    }
    SocSystem soc(cfg);
    DnnAccelerator dnn("dnn", soc.port(0), tiny_dnn_cfg(1));
    DmaEngine dma("dma", soc.port(1), small_dma_cfg());
    soc.add(dnn);
    soc.add(dma);
    soc.sim().reset();
    if (!soc.sim().run_until([&] { return dnn.finished(); }, 50'000'000)) {
      ADD_FAILURE() << "DNN frame did not finish";
      return 0;
    }
    return dnn.frame_completion_cycles()[0];
  };

  const Cycle unprotected = frame_cycles(false);
  const Cycle protected_run = frame_cycles(true);
  EXPECT_LT(protected_run, unprotected);
}

TEST(Integration, HypervisorReconfiguresLiveSystem) {
  // Start with DMA hogging the bus, then the hypervisor applies a 90/10
  // plan at runtime over the control bus; the DNN's layer progress speeds
  // up after the switch.
  SocConfig cfg;
  cfg.kind = InterconnectKind::kHyperConnect;
  cfg.num_ports = 2;
  SocSystem soc(cfg);
  HyperConnect* hc = soc.hyperconnect();
  ASSERT_NE(hc, nullptr);

  DnnAccelerator dnn("dnn", soc.port(0), tiny_dnn_cfg(0));
  DmaEngine dma("dma", soc.port(1), small_dma_cfg());
  RegisterMaster rm("rm", hc->control_link());
  HyperConnectDriver driver(rm, 2);
  Hypervisor hv("hv", driver);
  hv.add_domain({"vision", Criticality::kHigh, {0}, 0.9});
  hv.add_domain({"logger", Criticality::kLow, {1}, 0.1});
  soc.add(dnn);
  soc.add(dma);
  soc.add(rm);
  soc.add(hv);
  soc.sim().reset();

  soc.sim().run(200'000);
  const auto dnn_bytes_before = dnn.stats().bytes_read;

  hv.configure_reservation(/*period=*/2000, /*cycles_per_txn=*/28.0);
  ASSERT_TRUE(soc.sim().run_until([&] { return driver.idle(); }, 10'000));
  EXPECT_EQ(hc->runtime().reservation_period, 2000u);

  soc.sim().run(200'000);
  const auto dnn_bytes_after = dnn.stats().bytes_read - dnn_bytes_before;
  // With 90% of the bandwidth reserved, the DNN reads strictly more than in
  // the first (contended) phase.
  EXPECT_GT(dnn_bytes_after, dnn_bytes_before);
}

TEST(Integration, EndToEndWatchdogScenario) {
  // A low-criticality HA goes rogue (greedy max-burst reads); the watchdog
  // detects the overrun and decouples it; the high-criticality DNN's
  // throughput recovers to near isolation.
  SocConfig cfg;
  cfg.kind = InterconnectKind::kHyperConnect;
  cfg.num_ports = 2;
  SocSystem soc(cfg);
  HyperConnect* hc = soc.hyperconnect();

  DnnAccelerator dnn("dnn", soc.port(0), tiny_dnn_cfg(0));
  TrafficGenerator rogue("rogue", soc.port(1),
                         TrafficGenerator::bandwidth_stealer(0x6000'0000));
  RegisterMaster rm("rm", hc->control_link());
  HyperConnectDriver driver(rm, 2);
  Hypervisor hv("hv", driver);
  hv.add_domain({"vision", Criticality::kHigh, {0}, 0.9});
  hv.add_domain({"rogue", Criticality::kLow, {1}, 0.1});
  WatchdogPolicy policy;
  policy.poll_period = 5000;
  policy.max_txns_per_poll = {0, 100};  // port 1 policed
  hv.set_watchdog(policy);
  soc.add(dnn);
  soc.add(rogue);
  soc.add(rm);
  soc.add(hv);
  soc.sim().reset();

  soc.sim().run(100'000);
  EXPECT_FALSE(hv.isolation_events().empty());
  EXPECT_TRUE(hv.port_isolated(1));
  const auto rogue_bytes = rogue.stats().bytes_read;
  soc.sim().run(100'000);
  EXPECT_EQ(rogue.stats().bytes_read, rogue_bytes);
  EXPECT_GT(dnn.stats().bytes_read, 0u);
}

TEST(Integration, DeterministicAcrossRuns) {
  // The whole stack is bit-deterministic: two identical runs produce
  // identical statistics.
  auto run_once = [] {
    SocConfig cfg;
    cfg.kind = InterconnectKind::kHyperConnect;
    cfg.num_ports = 2;
    cfg.hc.reservation_period = 1000;
    cfg.hc.initial_budgets = {20, 10};
    SocSystem soc(cfg);
    DnnAccelerator dnn("dnn", soc.port(0), tiny_dnn_cfg(0));
    DmaEngine dma("dma", soc.port(1), small_dma_cfg());
    soc.add(dnn);
    soc.add(dma);
    soc.sim().reset();
    soc.sim().run(300'000);
    return std::tuple{dnn.stats().bytes_read, dma.stats().bytes_read,
                      dma.stats().bytes_written, dnn.frames_completed(),
                      dma.jobs_completed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace axihc
