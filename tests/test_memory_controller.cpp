// Memory controller model tests: in-order service, latency accounting,
// row-buffer behaviour, and functional read/write correctness.
#include "mem/memory_controller.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct MemFixture : ::testing::Test {
  MemFixture() : link("fpga_ps"), mem("ddr", link, store, cfg()) {
    link.register_with(sim);
    sim.add(mem);
    sim.reset();
  }

  static MemoryControllerConfig cfg() {
    MemoryControllerConfig c;
    c.row_hit_latency = 4;
    c.row_miss_latency = 10;
    c.turnaround = 1;
    return c;
  }

  AddrReq read_req(Addr addr, BeatCount beats, TxnId id = 1) {
    AddrReq r;
    r.id = id;
    r.addr = addr;
    r.beats = beats;
    return r;
  }

  /// Runs until `n` R beats were collected (with a safety timeout).
  std::vector<RBeat> collect_r(std::size_t n, Cycle max_cycles = 10000) {
    std::vector<RBeat> beats;
    sim.run_until(
        [&] {
          while (link.r.can_pop()) beats.push_back(link.r.pop());
          return beats.size() >= n;
        },
        max_cycles);
    return beats;
  }

  Simulator sim;
  AxiLink link;
  BackingStore store;
  MemoryController mem;
};

TEST_F(MemFixture, ReadReturnsStoredData) {
  store.write_word(0x100, 0xdead);
  store.write_word(0x108, 0xbeef);
  link.ar.push(read_req(0x100, 2));
  const auto beats = collect_r(2);
  ASSERT_EQ(beats.size(), 2u);
  EXPECT_EQ(beats[0].data, 0xdeadu);
  EXPECT_FALSE(beats[0].last);
  EXPECT_EQ(beats[1].data, 0xbeefu);
  EXPECT_TRUE(beats[1].last);
}

TEST_F(MemFixture, UnwrittenMemoryReadsZero) {
  link.ar.push(read_req(0x5000, 1));
  const auto beats = collect_r(1);
  ASSERT_EQ(beats.size(), 1u);
  EXPECT_EQ(beats[0].data, 0u);
}

TEST_F(MemFixture, WriteThenReadRoundTrip) {
  AddrReq aw;
  aw.id = 9;
  aw.addr = 0x200;
  aw.beats = 2;
  link.aw.push(aw);
  link.w.push({111, 0xff, false});
  link.w.push({222, 0xff, true});

  sim.run_until([&] { return link.b.can_pop(); }, 1000);
  ASSERT_TRUE(link.b.can_pop());
  EXPECT_EQ(link.b.pop().id, 9u);
  EXPECT_EQ(store.read_word(0x200), 111u);
  EXPECT_EQ(store.read_word(0x208), 222u);
}

TEST_F(MemFixture, ByteStrobesMaskWrites) {
  store.write_word(0x300, 0x1122334455667788ull);
  AddrReq aw;
  aw.addr = 0x300;
  aw.beats = 1;
  link.aw.push(aw);
  link.w.push({0xAAAAAAAAAAAAAAAAull, 0x0F, true});  // low 4 bytes only
  sim.run_until([&] { return link.b.can_pop(); }, 1000);
  EXPECT_EQ(store.read_word(0x300), 0x11223344AAAAAAAAull);
}

TEST_F(MemFixture, InOrderServiceAcrossReadAndWrite) {
  // A read queued before a write completes first even though the write's
  // data is already available (no out-of-order completion, §V-A).
  store.write_word(0x400, 7);
  link.ar.push(read_req(0x400, 1, 1));
  sim.step();  // read enters the queue first
  AddrReq aw;
  aw.id = 2;
  aw.addr = 0x500;
  aw.beats = 1;
  link.aw.push(aw);
  link.w.push({55, 0xff, true});

  Cycle read_done = 0;
  Cycle write_done = 0;
  sim.run_until(
      [&] {
        if (link.r.can_pop() && read_done == 0) {
          link.r.pop();
          read_done = sim.now();
        }
        if (link.b.can_pop() && write_done == 0) {
          link.b.pop();
          write_done = sim.now();
        }
        return read_done != 0 && write_done != 0;
      },
      1000);
  EXPECT_LT(read_done, write_done);
}

TEST_F(MemFixture, RowHitFasterThanRowMiss) {
  // First access to a row: miss. Second access to the same row: hit.
  link.ar.push(read_req(0x1000, 1, 1));
  const Cycle start1 = sim.now();
  collect_r(1);
  const Cycle t1 = sim.now() - start1;

  link.ar.push(read_req(0x1008, 1, 2));  // same 2KiB row
  const Cycle start2 = sim.now();
  collect_r(1);
  const Cycle t2 = sim.now() - start2;

  EXPECT_GT(t1, t2);
  EXPECT_EQ(mem.row_hits(), 1u);
  EXPECT_EQ(mem.row_misses(), 1u);
}

TEST_F(MemFixture, StreamsOneBeatPerCycle) {
  link.ar.push(read_req(0x2000, 16));
  std::vector<Cycle> arrivals;
  sim.run_until(
      [&] {
        while (link.r.can_pop()) {
          link.r.pop();
          arrivals.push_back(sim.now());
        }
        return arrivals.size() >= 16;
      },
      1000);
  ASSERT_EQ(arrivals.size(), 16u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], 1u) << "beat " << i;
  }
}

TEST_F(MemFixture, PsStallBlocksService) {
  // Re-build with a PS-interference window of 8 stalled cycles per 16.
  MemoryControllerConfig c = cfg();
  c.ps_stall_period = 16;
  c.ps_stall_length = 8;
  Simulator sim2;
  AxiLink link2("l2");
  BackingStore store2;
  MemoryController mem2("ddr2", link2, store2, c);
  link2.register_with(sim2);
  sim2.add(mem2);
  sim2.reset();

  link2.ar.push(read_req(0x0, 16));
  std::size_t got = 0;
  sim2.run_until(
      [&] {
        while (link2.r.can_pop()) {
          link2.r.pop();
          ++got;
        }
        return got >= 16;
      },
      2000);
  EXPECT_EQ(got, 16u);
  // With half the cycles stalled, the burst takes roughly twice as long as
  // the unstalled case (which finishes in < 30 cycles).
  EXPECT_GT(sim2.now(), 40u);
}

TEST_F(MemFixture, CountsServedWork) {
  link.ar.push(read_req(0x0, 4));
  collect_r(4);
  AddrReq aw;
  aw.addr = 0x100;
  aw.beats = 2;
  link.aw.push(aw);
  link.w.push({1, 0xff, false});
  link.w.push({2, 0xff, true});
  sim.run_until([&] { return link.b.can_pop(); }, 1000);

  EXPECT_EQ(mem.reads_served(), 1u);
  EXPECT_EQ(mem.writes_served(), 1u);
  EXPECT_EQ(mem.beats_served(), 6u);
}

}  // namespace
}  // namespace axihc
