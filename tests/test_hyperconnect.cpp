// HyperConnect end-to-end behaviour: data integrity, ordering, arbitration
// fairness, counters, and the control interface.
#include "hyperconnect/hyperconnect.hpp"

#include <gtest/gtest.h>

#include "ha/dma_engine.hpp"
#include "ha/traffic_gen.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct HcFixture : ::testing::Test {
  explicit HcFixture(HyperConnectConfig cfg = {})
      : hc("hc", with_two_ports(cfg)),
        mem("ddr", hc.master_link(), store, mem_cfg()) {
    hc.register_with(sim);
    sim.add(mem);
  }

  static HyperConnectConfig with_two_ports(HyperConnectConfig cfg) {
    cfg.num_ports = 2;
    return cfg;
  }

  static MemoryControllerConfig mem_cfg() {
    MemoryControllerConfig c;
    c.row_hit_latency = 4;
    c.row_miss_latency = 8;
    return c;
  }

  Simulator sim;
  BackingStore store;
  HyperConnect hc;
  MemoryController mem;
};

TEST_F(HcFixture, SingleMasterReadCompletes) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kRead;
  cfg.bytes_per_job = 1024;
  cfg.burst_beats = 16;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", hc.port_link(0), cfg);
  sim.add(dma);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 100000));
  EXPECT_EQ(dma.stats().reads_completed, 8u);
  EXPECT_EQ(hc.counters(0).ar_granted, 8u);
}

TEST_F(HcFixture, CopyThroughHyperConnectIsLossless) {
  for (Addr a = 0; a < 2048; a += 8) {
    store.write_word(0x1000'0000 + a, a * 3 + 1);
  }
  DmaConfig cfg;
  cfg.mode = DmaMode::kCopy;
  cfg.bytes_per_job = 2048;
  cfg.burst_beats = 16;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", hc.port_link(0), cfg);
  sim.add(dma);
  sim.reset();
  for (Addr a = 0; a < 2048; a += 8) {
    store.write_word(0x1000'0000 + a, a * 3 + 1);
  }
  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 200000));
  for (Addr a = 0; a < 2048; a += 8) {
    ASSERT_EQ(store.read_word(0x2000'0000 + a), a * 3 + 1) << "offset " << a;
  }
}

TEST_F(HcFixture, TwoMastersConcurrentWritesDontInterleaveData) {
  DmaConfig c0;
  c0.mode = DmaMode::kWrite;
  c0.bytes_per_job = 1024;
  c0.burst_beats = 16;
  c0.max_jobs = 1;
  c0.write_base = 0x1000;
  DmaEngine m0("m0", hc.port_link(0), c0);
  DmaConfig c1 = c0;
  c1.write_base = 0x9000;
  DmaEngine m1("m1", hc.port_link(1), c1);
  sim.add(m0);
  sim.add(m1);
  sim.reset();

  ASSERT_TRUE(
      sim.run_until([&] { return m0.finished() && m1.finished(); }, 200000));
  // Fill pattern: word at byte offset o is (o - base offset incremented
  // per beat). Both regions complete and distinct.
  for (Addr o = 0; o < 1024; o += 128) {
    EXPECT_EQ(store.read_word(0x1000 + o), o) << "m0 offset " << o;
    EXPECT_EQ(store.read_word(0x9000 + o), o) << "m1 offset " << o;
  }
}

TEST_F(HcFixture, ExbarSharesEquallyBetweenGreedyMasters) {
  TrafficConfig greedy;
  greedy.direction = TrafficDirection::kRead;
  greedy.burst_beats = 16;
  TrafficGenerator g0("g0", hc.port_link(0), greedy);
  TrafficGenerator g1("g1", hc.port_link(1), greedy);
  sim.add(g0);
  sim.add(g1);
  sim.reset();
  sim.run(50000);
  const double a = static_cast<double>(g0.stats().bytes_read);
  const double b = static_cast<double>(g1.stats().bytes_read);
  ASSERT_GT(a + b, 0);
  EXPECT_NEAR(a / (a + b), 0.5, 0.03);
}

TEST_F(HcFixture, EqualizationRestoresFairnessAgainstStealer) {
  // The headline fix from [11]: with burst equalization, a 256-beat-burst
  // stealer no longer dominates a 4-beat victim.
  TrafficConfig small;
  small.direction = TrafficDirection::kRead;
  small.burst_beats = 4;
  small.base = 0x4000'0000;
  small.max_outstanding = 8;
  TrafficConfig big = TrafficGenerator::bandwidth_stealer(0x6000'0000);
  TrafficGenerator victim("victim", hc.port_link(0), small);
  TrafficGenerator stealer("stealer", hc.port_link(1), big);
  sim.add(victim);
  sim.add(stealer);
  sim.reset();

  sim.run(100000);
  const double v = static_cast<double>(victim.stats().bytes_read);
  const double s = static_cast<double>(stealer.stats().bytes_read);
  ASSERT_GT(v + s, 0);
  // The victim only asks for 4-beat bursts vs the nominal 16, so perfect
  // interleaving of arbitration units gives it 4/(4+16) = 20%. Anything
  // near that is fair; under SmartConnect it gets < 10% (see
  // test_smartconnect.cpp).
  EXPECT_GT(v / (v + s), 0.15);
}

TEST_F(HcFixture, CountersTrackSubTransactions) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kReadWrite;
  cfg.bytes_per_job = 512;
  cfg.burst_beats = 16;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", hc.port_link(0), cfg);
  sim.add(dma);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 100000));
  // 512B at 16-beat (128B) bursts: 4 reads + 4 writes.
  EXPECT_EQ(hc.counters(0).ar_granted, 4u);
  EXPECT_EQ(hc.counters(0).aw_granted, 4u);
  EXPECT_EQ(hc.supervisor(0).subtransactions_issued(), 8u);
  EXPECT_EQ(hc.counters(1).ar_granted, 0u);
}

TEST_F(HcFixture, ControlInterfaceReadsIdAndPorts) {
  sim.reset();
  AddrReq ar;
  ar.id = 1;
  ar.addr = hcregs::kId;
  ar.beats = 1;
  hc.control_link().ar.push(ar);
  ASSERT_TRUE(
      sim.run_until([&] { return hc.control_link().r.can_pop(); }, 100));
  EXPECT_EQ(hc.control_link().r.pop().data, hcregs::kIdValue);

  ar.addr = hcregs::kNumPorts;
  hc.control_link().ar.push(ar);
  ASSERT_TRUE(
      sim.run_until([&] { return hc.control_link().r.can_pop(); }, 100));
  EXPECT_EQ(hc.control_link().r.pop().data, 2u);
}

TEST_F(HcFixture, ControlInterfaceWritesRegisters) {
  sim.reset();
  AddrReq aw;
  aw.id = 3;
  aw.addr = hcregs::kNominalBurst;
  aw.beats = 1;
  hc.control_link().aw.push(aw);
  hc.control_link().w.push({8, 0xff, true});
  ASSERT_TRUE(
      sim.run_until([&] { return hc.control_link().b.can_pop(); }, 100));
  hc.control_link().b.pop();
  EXPECT_EQ(hc.runtime().nominal_burst, 8u);
}

TEST_F(HcFixture, GlobalDisableStallsAllTraffic) {
  sim.reset();
  hc.registers_backdoor().write(hcregs::kCtrl, 0);  // disable

  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 4;
  TrafficGenerator gen("gen", hc.port_link(0), cfg);
  sim.add(gen);
  sim.run(2000);
  EXPECT_EQ(gen.stats().reads_completed, 0u);

  hc.registers_backdoor().write(hcregs::kCtrl, 1);  // enable again
  sim.run(2000);
  EXPECT_GT(gen.stats().reads_completed, 0u);
}

TEST_F(HcFixture, InOrderCompletionPerMaster) {
  // Issue many reads from one port; the master base asserts in-order
  // completion internally — surviving the run proves ordering.
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 16;
  cfg.max_transactions = 200;
  TrafficGenerator gen("gen", hc.port_link(0), cfg);
  sim.add(gen);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return gen.finished(); }, 500000));
  EXPECT_EQ(gen.stats().reads_completed, 200u);
}

TEST(HyperConnectPorts, FourPortFairShare) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 4;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  TrafficConfig tcfg;
  tcfg.direction = TrafficDirection::kRead;
  tcfg.burst_beats = 16;
  for (PortIndex i = 0; i < 4; ++i) {
    tcfg.base = 0x4000'0000 + (static_cast<Addr>(i) << 24);
    gens.push_back(std::make_unique<TrafficGenerator>(
        "g" + std::to_string(i), hc.port_link(i), tcfg));
    sim.add(*gens.back());
  }
  sim.reset();
  sim.run(80000);
  double total = 0;
  for (const auto& g : gens) total += static_cast<double>(g->stats().bytes_read);
  ASSERT_GT(total, 0);
  for (const auto& g : gens) {
    EXPECT_NEAR(static_cast<double>(g->stats().bytes_read) / total, 0.25,
                0.03);
  }
}

}  // namespace
}  // namespace axihc
