// Dual-port DDR controller tests: correctness on both ports, PS-priority
// arbitration, and the CPU-protection effect of FPGA-side reservation.
#include "mem/dual_port_controller.hpp"

#include <gtest/gtest.h>

#include "ha/dma_engine.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

/// Plain rig (not a gtest fixture) so both fixtures and standalone tests
/// can instantiate it with either arbitration mode.
struct DualRig {
  explicit DualRig(bool ps_priority = true)
      : ps_link("ps"),
        fpga_link("fpga"),
        ddr("ddr", ps_link, fpga_link, store, make_cfg(ps_priority)) {
    ps_link.register_with(sim);
    fpga_link.register_with(sim);
    sim.add(ddr);
  }

  static DualPortConfig make_cfg(bool ps_priority) {
    DualPortConfig c;
    c.row_hit_latency = 4;
    c.row_miss_latency = 10;
    c.ps_priority = ps_priority;
    return c;
  }

  Simulator sim;
  AxiLink ps_link;
  AxiLink fpga_link;
  BackingStore store;
  DualPortMemoryController ddr;
};

struct DualFixture : ::testing::Test, DualRig {};

TEST_F(DualFixture, ServesBothPortsCorrectly) {
  DmaConfig d;
  d.mode = DmaMode::kWrite;
  d.bytes_per_job = 512;
  d.burst_beats = 8;
  d.max_jobs = 1;
  d.write_base = 0x1000;
  DmaEngine cpu_side("cpu", ps_link, d);
  d.write_base = 0x9000;
  DmaEngine fpga_side("fpga", fpga_link, d);
  sim.add(cpu_side);
  sim.add(fpga_side);
  sim.reset();

  ASSERT_TRUE(sim.run_until(
      [&] { return cpu_side.finished() && fpga_side.finished(); }, 100000));
  for (Addr o = 0; o < 512; o += 64) {
    EXPECT_EQ(store.read_word(0x1000 + o), o);
    EXPECT_EQ(store.read_word(0x9000 + o), o);
  }
  EXPECT_EQ(ddr.ps_transactions(), 8u);
  EXPECT_EQ(ddr.fpga_transactions(), 8u);
}

TEST_F(DualFixture, PsPriorityJumpsTheQueue) {
  // Fill the queue with FPGA work, then inject one PS read: with priority
  // it must be served before the queued FPGA backlog drains.
  TrafficConfig flood;
  flood.direction = TrafficDirection::kRead;
  flood.burst_beats = 16;
  flood.max_outstanding = 8;
  flood.base = 0x4000'0000;
  TrafficGenerator fpga("fpga", fpga_link, flood);
  sim.add(fpga);

  TrafficConfig probe;
  probe.direction = TrafficDirection::kRead;
  probe.burst_beats = 1;
  probe.gap_cycles = 400;
  probe.max_outstanding = 1;
  probe.base = 0x0100'0000;
  TrafficGenerator cpu("cpu", ps_link, probe);
  sim.add(cpu);
  sim.reset();
  sim.run(60000);

  ASSERT_GT(cpu.stats().read_latency.count(), 10u);
  // With PS priority, a CPU read waits at most the in-service FPGA burst
  // (non-preemptive blocking) + its own service: well under two bursts.
  EXPECT_LE(cpu.stats().read_latency.max(), 70u);
}

TEST(DualPortFair, FifoArbitrationMakesCpuWaitBehindBacklog) {
  // Negative control: without PS priority, the CPU read queues behind the
  // full FPGA backlog and its worst-case latency blows up.
  DualRig fair_rig(false);
  TrafficConfig flood;
  flood.direction = TrafficDirection::kRead;
  flood.burst_beats = 16;
  flood.max_outstanding = 8;
  flood.base = 0x4000'0000;
  TrafficGenerator fpga("fpga", fair_rig.fpga_link, flood);
  fair_rig.sim.add(fpga);
  TrafficConfig probe;
  probe.direction = TrafficDirection::kRead;
  probe.burst_beats = 1;
  probe.gap_cycles = 400;
  probe.max_outstanding = 1;
  probe.base = 0x0100'0000;
  TrafficGenerator cpu("cpu", fair_rig.ps_link, probe);
  fair_rig.sim.add(cpu);
  fair_rig.sim.reset();
  fair_rig.sim.run(60000);

  ASSERT_GT(cpu.stats().read_latency.count(), 10u);
  EXPECT_GT(cpu.stats().read_latency.max(), 100u);
}

TEST(CpuProtection, FpgaReservationRestoresCpuLatency) {
  // The §V-A claim end to end: throttling the FPGA at the HyperConnect
  // protects the CPU's memory latency, even on a fair DDRC.
  auto cpu_mean_latency = [](std::uint32_t budget_per_port) {
    Simulator sim;
    BackingStore store;
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    if (budget_per_port != 0) {
      cfg.reservation_period = 2000;
      cfg.initial_budgets = {budget_per_port, budget_per_port};
    }
    HyperConnect hc("hc", cfg);
    AxiLink cpu_link("cpu");
    cpu_link.register_with(sim);
    DualPortConfig dpc;
    dpc.ps_priority = false;  // worst case for the CPU
    DualPortMemoryController ddr("ddr", cpu_link, hc.master_link(), store,
                                 dpc);
    hc.register_with(sim);
    sim.add(ddr);

    TrafficConfig probe;
    probe.direction = TrafficDirection::kRead;
    probe.burst_beats = 8;
    probe.gap_cycles = 150;
    probe.max_outstanding = 1;
    probe.base = 0x0100'0000;
    TrafficGenerator cpu("cpu", cpu_link, probe);
    sim.add(cpu);
    DmaConfig d;
    d.mode = DmaMode::kReadWrite;
    d.bytes_per_job = 1u << 20;
    DmaEngine dma0("dma0", hc.port_link(0), d);
    d.read_base = 0x5000'0000;
    d.write_base = 0x6000'0000;
    DmaEngine dma1("dma1", hc.port_link(1), d);
    sim.add(dma0);
    sim.add(dma1);
    sim.reset();
    sim.run(200000);
    return cpu.stats().read_latency.count() > 0
               ? cpu.stats().read_latency.mean()
               : 1e9;
  };

  const double unlimited = cpu_mean_latency(0);
  const double throttled = cpu_mean_latency(8);   // tight FPGA budget
  EXPECT_LT(throttled, unlimited * 0.7)
      << "reservation did not protect the CPU";
}

}  // namespace
}  // namespace axihc
