// Hardware-accelerator model tests: DMA engine, traffic generator and DNN
// accelerator driving the memory controller directly (no interconnect).
#include <gtest/gtest.h>

#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"
#include "ha/traffic_gen.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct DirectFixture : ::testing::Test {
  DirectFixture() : link("link"), mem("ddr", link, store, mem_cfg()) {
    link.register_with(sim);
    sim.add(mem);
  }

  static MemoryControllerConfig mem_cfg() {
    MemoryControllerConfig c;
    c.row_hit_latency = 4;
    c.row_miss_latency = 8;
    return c;
  }

  Simulator sim;
  AxiLink link;
  BackingStore store;
  MemoryController mem;
};

TEST_F(DirectFixture, DmaReadWriteJobCompletes) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kReadWrite;
  cfg.bytes_per_job = 4096;
  cfg.burst_beats = 16;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", link, cfg);
  sim.add(dma);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 100000));
  EXPECT_EQ(dma.jobs_completed(), 1u);
  EXPECT_EQ(dma.stats().bytes_read, 4096u);
  EXPECT_EQ(dma.stats().bytes_written, 4096u);
  // 4096 bytes / 128-byte bursts = 32 transactions each way.
  EXPECT_EQ(dma.stats().reads_completed, 32u);
  EXPECT_EQ(dma.stats().writes_completed, 32u);
}

TEST_F(DirectFixture, DmaCopyMovesExactData) {
  // Seed the source region, run a copy job, compare the destination.
  for (Addr a = 0; a < 1024; a += 8) {
    store.write_word(0x1000'0000 + a, 0x5a5a0000 + a);
  }
  DmaConfig cfg;
  cfg.mode = DmaMode::kCopy;
  cfg.bytes_per_job = 1024;
  cfg.burst_beats = 8;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", link, cfg);
  sim.add(dma);
  sim.reset();
  // reset() clears components but not the externally-seeded store; reseed.
  for (Addr a = 0; a < 1024; a += 8) {
    store.write_word(0x1000'0000 + a, 0x5a5a0000 + a);
  }

  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 100000));
  for (Addr a = 0; a < 1024; a += 8) {
    EXPECT_EQ(store.read_word(0x2000'0000 + a), 0x5a5a0000 + a)
        << "offset " << a;
  }
}

TEST_F(DirectFixture, DmaLoopsForeverWithoutMaxJobs) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kRead;
  cfg.bytes_per_job = 512;
  cfg.burst_beats = 16;
  cfg.max_jobs = 0;  // loop
  DmaEngine dma("dma", link, cfg);
  sim.add(dma);
  sim.reset();

  sim.run(20000);
  EXPECT_FALSE(dma.finished());
  EXPECT_GT(dma.jobs_completed(), 2u);
  EXPECT_EQ(dma.job_completion_cycles().size(), dma.jobs_completed());
}

TEST_F(DirectFixture, DmaRespectsOutstandingLimit) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kRead;
  cfg.bytes_per_job = 1u << 20;
  cfg.max_outstanding = 2;
  DmaEngine dma("dma", link, cfg);
  sim.add(dma);
  sim.reset();

  for (int i = 0; i < 2000; ++i) {
    sim.step();
    EXPECT_LE(dma.outstanding_reads(), 2u);
  }
}

TEST_F(DirectFixture, TrafficGeneratorGapThrottlesIssue) {
  TrafficConfig slow;
  slow.direction = TrafficDirection::kRead;
  slow.burst_beats = 4;
  slow.gap_cycles = 50;
  TrafficGenerator gen("gen", link, slow);
  sim.add(gen);
  sim.reset();

  sim.run(1000);
  // With a 50-cycle gap, at most ~1000/50 = 20 transactions can be issued.
  EXPECT_LE(gen.transactions_issued(), 21u);
  EXPECT_GT(gen.transactions_issued(), 10u);
}

TEST_F(DirectFixture, TrafficGeneratorStopsAtMaxTransactions) {
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kWrite;
  cfg.burst_beats = 4;
  cfg.max_transactions = 5;
  TrafficGenerator gen("gen", link, cfg);
  sim.add(gen);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return gen.finished(); }, 100000));
  EXPECT_EQ(gen.transactions_issued(), 5u);
  EXPECT_EQ(gen.stats().writes_completed, 5u);
}

TEST_F(DirectFixture, TrafficGeneratorMixedAlternates) {
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kMixed;
  cfg.burst_beats = 4;
  cfg.max_transactions = 10;
  TrafficGenerator gen("gen", link, cfg);
  sim.add(gen);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return gen.finished(); }, 100000));
  EXPECT_EQ(gen.stats().reads_completed, 5u);
  EXPECT_EQ(gen.stats().writes_completed, 5u);
}

TEST_F(DirectFixture, BandwidthStealerPresetUsesMaxBursts) {
  const TrafficConfig cfg = TrafficGenerator::bandwidth_stealer(0x4000'0000);
  EXPECT_EQ(cfg.burst_beats, kMaxAxi4BurstBeats);
  EXPECT_EQ(cfg.gap_cycles, 0u);
}

TEST_F(DirectFixture, DnnCompletesFramesWithCorrectTraffic) {
  DnnConfig cfg;
  cfg.layers = {
      {"l0", 1024, 512, 256, 10'000},
      {"l1", 2048, 256, 128, 5'000},
  };
  cfg.macs_per_cycle = 100;
  cfg.max_frames = 2;
  DnnAccelerator dnn("dnn", link, cfg);
  sim.add(dnn);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return dnn.finished(); }, 1'000'000));
  EXPECT_EQ(dnn.frames_completed(), 2u);
  EXPECT_EQ(dnn.bytes_per_frame(), 1024u + 512 + 256 + 2048 + 256 + 128);
  // Reads: weights + ifmap per frame; writes: ofmap per frame.
  EXPECT_EQ(dnn.stats().bytes_read, 2 * (1024u + 512 + 2048 + 256));
  EXPECT_EQ(dnn.stats().bytes_written, 2 * (256u + 128));
}

TEST_F(DirectFixture, DnnComputePhaseKeepsBusIdle) {
  // One layer with a long compute phase: bus beats must pause during it.
  DnnConfig cfg;
  cfg.layers = {{"l0", 256, 0, 256, 50'000}};
  cfg.macs_per_cycle = 1;  // 50k compute cycles
  cfg.max_frames = 1;
  DnnAccelerator dnn("dnn", link, cfg);
  sim.add(dnn);
  sim.reset();

  // Run long enough for the load phase to finish (256B = 4 bursts of 8).
  sim.run(2000);
  const auto beats_after_load = mem.beats_served();
  sim.run(10000);  // deep inside compute phase
  EXPECT_EQ(mem.beats_served(), beats_after_load)
      << "bus activity during compute phase";
  EXPECT_EQ(dnn.frames_completed(), 0u);
}

TEST_F(DirectFixture, GoogleNetScheduleShape) {
  const auto layers = googlenet_layers();
  ASSERT_GE(layers.size(), 10u);
  std::uint64_t weights = 0;
  std::uint64_t macs = 0;
  for (const auto& l : layers) {
    weights += l.weight_bytes;
    macs += l.macs;
  }
  // Quantized GoogleNet: ~7M parameters, ~1.6 GMAC.
  EXPECT_NEAR(static_cast<double>(weights), 7.0e6, 1.0e6);
  EXPECT_NEAR(static_cast<double>(macs), 1.6e9, 0.3e9);
}

TEST_F(DirectFixture, MasterLatencyStatsPopulated) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kRead;
  cfg.bytes_per_job = 512;
  cfg.burst_beats = 8;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", link, cfg);
  sim.add(dma);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 100000));
  ASSERT_GT(dma.stats().read_latency.count(), 0u);
  // Latency must include memory first-word latency + burst streaming.
  EXPECT_GE(dma.stats().read_latency.min(), 8u);
}

}  // namespace
}  // namespace axihc
