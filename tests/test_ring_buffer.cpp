// Unit tests for RingBuffer, the hardware-FIFO primitive behind the eFIFO
// queues and the EXBAR routing memories.
#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

namespace axihc {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_EQ(rb.free_slots(), 4u);
}

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer<int>(0), ModelError);
}

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb(8);
  for (int i = 0; i < 5; ++i) rb.push(i);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rb.front(), i);
    EXPECT_EQ(rb.pop(), i);
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, FullRejectsPush) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  EXPECT_TRUE(rb.full());
  EXPECT_THROW(rb.push(3), ModelError);
}

TEST(RingBuffer, EmptyRejectsPopAndFront) {
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.pop(), ModelError);
  EXPECT_THROW(static_cast<void>(rb.front()), ModelError);
}

TEST(RingBuffer, WrapsAroundCorrectly) {
  RingBuffer<int> rb(3);
  // Cycle many times through a small buffer to exercise wrap-around.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 50; ++round) {
    while (!rb.full()) rb.push(next_in++);
    // Drain partially to force head/tail misalignment.
    for (int k = 0; k < 2 && !rb.empty(); ++k) {
      EXPECT_EQ(rb.pop(), next_out++);
    }
  }
  while (!rb.empty()) EXPECT_EQ(rb.pop(), next_out++);
  EXPECT_EQ(next_in, next_out);
}

TEST(RingBuffer, AtIndexesFromFront) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(11);
  rb.push(12);
  rb.pop();  // misalign head
  rb.push(13);
  EXPECT_EQ(rb.at(0), 11);
  EXPECT_EQ(rb.at(1), 12);
  EXPECT_EQ(rb.at(2), 13);
  EXPECT_THROW(static_cast<void>(rb.at(3)), ModelError);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<std::string> rb(2);
  rb.push("a");
  rb.push("b");
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push("c");
  EXPECT_EQ(rb.front(), "c");
}

TEST(RingBuffer, FrontIsMutable) {
  RingBuffer<int> rb(2);
  rb.push(5);
  rb.front() = 9;
  EXPECT_EQ(rb.pop(), 9);
}

TEST(RingBuffer, MoveOnlyElements) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  rb.push(std::make_unique<int>(42));
  auto p = rb.pop();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 42);
}

class RingBufferCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingBufferCapacitySweep, FillDrainPreservesOrderAtAnyCapacity) {
  const std::size_t cap = GetParam();
  RingBuffer<std::size_t> rb(cap);
  for (std::size_t i = 0; i < cap; ++i) rb.push(i);
  EXPECT_TRUE(rb.full());
  for (std::size_t i = 0; i < cap; ++i) EXPECT_EQ(rb.pop(), i);
  EXPECT_TRUE(rb.empty());
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingBufferCapacitySweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 64, 256));

}  // namespace
}  // namespace axihc
