// INI parser and config-driven system builder tests (the axihc CLI engine).
#include <gtest/gtest.h>

#include "config/ini.hpp"
#include "config/system_builder.hpp"
#include "hyperconnect/hyperconnect.hpp"

namespace axihc {
namespace {

TEST(Ini, ParsesSectionsAndTypes) {
  const IniFile ini = IniFile::parse(
      "[system]\n"
      "name = hello world  ; comment\n"
      "count = 42\n"
      "ratio = 0.75\n"
      "flag = true\n"
      "list = 1 2 3\n"
      "# full-line comment\n"
      "[other]\n"
      "count = 0x10\n");
  const IniSection* sys = ini.section("system");
  ASSERT_NE(sys, nullptr);
  EXPECT_EQ(sys->get_string("name"), "hello world");
  EXPECT_EQ(sys->get_u64("count", 0), 42u);
  EXPECT_DOUBLE_EQ(sys->get_double("ratio", 0), 0.75);
  EXPECT_TRUE(sys->get_bool("flag", false));
  EXPECT_EQ(sys->get_u32_list("list"), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(sys->get_u64("missing", 7), 7u);
  EXPECT_EQ(ini.section("other")->get_u64("count", 0), 16u);  // hex
}

TEST(Ini, RejectsMalformed) {
  EXPECT_THROW(IniFile::parse("[unterminated\n"), ModelError);
  EXPECT_THROW(IniFile::parse("key = value\n"), ModelError);  // no section
  EXPECT_THROW(IniFile::parse("[s]\nno_equals_here\n"), ModelError);
  EXPECT_THROW(IniFile::parse("[s]\n= value\n"), ModelError);
}

TEST(Ini, TypedAccessorsRejectGarbage) {
  const IniFile ini = IniFile::parse("[s]\nnum = abc\nflag = maybe\n");
  const IniSection* s = ini.section("s");
  EXPECT_THROW(static_cast<void>(s->get_u64("num", 0)), ModelError);
  EXPECT_THROW(static_cast<void>(s->get_bool("flag", false)), ModelError);
}

TEST(Ini, PrefixLookupKeepsOrder) {
  const IniFile ini = IniFile::parse("[ha0]\nt=a\n[x]\nt=b\n[ha1]\nt=c\n");
  const auto has = ini.sections_with_prefix("ha");
  ASSERT_EQ(has.size(), 2u);
  EXPECT_EQ(has[0]->name(), "ha0");
  EXPECT_EQ(has[1]->name(), "ha1");
}

TEST(SystemBuilder, BuildsAndRunsTwoDmaSystem) {
  auto system = build_system(
      "[system]\n"
      "interconnect = hyperconnect\n"
      "ports = 2\n"
      "cycles = 50000\n"
      "[hyperconnect]\n"
      "reservation_period = 2000\n"
      "budgets = 30 15\n"
      "[ha0]\n"
      "type = dma\n"
      "mode = readwrite\n"
      "bytes_per_job = 65536\n"
      "[ha1]\n"
      "type = traffic\n"
      "direction = read\n"
      "burst = 8\n");
  EXPECT_EQ(system->run(), 50000u);
  EXPECT_EQ(system->ha_count(), 2u);
  EXPECT_GT(system->ha(0).stats().bytes_read, 0u);
  EXPECT_GT(system->ha(1).stats().bytes_read, 0u);
  // The 2:1 budget split must show in the issued sub-transactions.
  HyperConnect* hc = system->soc().hyperconnect();
  ASSERT_NE(hc, nullptr);
  EXPECT_EQ(hc->runtime().budgets[0], 30u);
  const std::string report = system->report();
  EXPECT_NE(report.find("ha0"), std::string::npos);
  EXPECT_NE(report.find("MB/s"), std::string::npos);
}

TEST(SystemBuilder, BuildsSmartConnectVariant) {
  auto system = build_system(
      "[system]\n"
      "interconnect = smartconnect\n"
      "cycles = 10000\n"
      "[ha0]\n"
      "type = traffic\n");
  EXPECT_EQ(system->soc().hyperconnect(), nullptr);
  system->run();
  EXPECT_GT(system->ha(0).stats().bytes_read, 0u);
}

TEST(SystemBuilder, DnnOnZynq7020) {
  auto system = build_system(
      "[system]\n"
      "platform = zynq7020\n"
      "cycles = 200000\n"
      "[ha0]\n"
      "type = dnn\n"
      "network = alexnet\n"
      "scale = 256\n");
  EXPECT_EQ(system->platform().name, "Zynq Z-7020");
  system->run();
  EXPECT_GT(system->ha(0).stats().bytes_read, 0u);
}

TEST(SystemBuilder, OutOfOrderModeWiresEverything) {
  auto system = build_system(
      "[system]\n"
      "cycles = 20000\n"
      "[hyperconnect]\n"
      "out_of_order = true\n"
      "[ha0]\n"
      "type = traffic\n"
      "[ha1]\n"
      "type = traffic\n");
  system->run();
  EXPECT_GT(system->ha(0).stats().bytes_read, 0u);
  EXPECT_GT(system->ha(1).stats().bytes_read, 0u);
}

TEST(SystemBuilder, RejectsBadConfigs) {
  EXPECT_THROW(build_system("[ha0]\ntype = dma\n"), ModelError);  // no system
  EXPECT_THROW(build_system("[system]\ncycles = 10\n"), ModelError);  // no HA
  EXPECT_THROW(build_system("[system]\ninterconnect = magic\n[ha0]\n"
                            "type = dma\n"),
               ModelError);
  EXPECT_THROW(build_system("[system]\nports = 1\n[ha0]\ntype = dma\n"
                            "[ha1]\ntype = dma\n"),
               ModelError);  // more HAs than ports
  EXPECT_THROW(build_system("[system]\ncycles=1\n[ha0]\ntype = warp\n"),
               ModelError);
  EXPECT_THROW(build_system("[system]\ncycles=1\n[ha0]\ntype = dnn\n"
                            "network = vgg\n"),
               ModelError);
}

TEST(SystemBuilder, QosPriorityArbitrationSelectable) {
  auto system = build_system(
      "[system]\n"
      "cycles = 30000\n"
      "[hyperconnect]\n"
      "arbitration = qos_priority\n"
      "[ha0]\n"
      "type = traffic\n"
      "qos = 1\n"
      "[ha1]\n"
      "type = traffic\n"
      "qos = 8\n");
  system->run();
  // Both make progress (route backlog softens strict priority; the
  // dedicated QoS tests pin down the exact dominance conditions).
  EXPECT_GT(system->ha(1).stats().bytes_read, 0u);
}

}  // namespace
}  // namespace axihc
