// SmartConnect baseline model tests: arbitration, routing, and the
// calibrated per-channel latencies.
#include "interconnect/smartconnect.hpp"

#include <gtest/gtest.h>

#include "ha/dma_engine.hpp"
#include "ha/traffic_gen.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct ScFixture : ::testing::Test {
  explicit ScFixture(std::uint32_t ports = 2, SmartConnectConfig cfg = {})
      : sc("sc", ports, cfg), mem("ddr", sc.master_link(), store, mem_cfg()) {
    sc.register_with(sim);
    sim.add(mem);
  }

  static MemoryControllerConfig mem_cfg() {
    MemoryControllerConfig c;
    c.row_hit_latency = 4;
    c.row_miss_latency = 8;
    return c;
  }

  Simulator sim;
  BackingStore store;
  SmartConnect sc;
  MemoryController mem;
};

TEST_F(ScFixture, SingleMasterReadCompletes) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kRead;
  cfg.bytes_per_job = 1024;
  cfg.burst_beats = 16;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", sc.port_link(0), cfg);
  sim.add(dma);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 100000));
  EXPECT_EQ(dma.stats().reads_completed, 8u);
  EXPECT_EQ(sc.counters(0).ar_granted, 8u);
  EXPECT_EQ(sc.counters(0).r_beats, 128u);
}

TEST_F(ScFixture, WriteDataRoutedByAwOrder) {
  DmaConfig c0;
  c0.mode = DmaMode::kWrite;
  c0.bytes_per_job = 512;
  c0.burst_beats = 8;
  c0.max_jobs = 1;
  c0.write_base = 0x1000;
  DmaEngine m0("m0", sc.port_link(0), c0);
  DmaConfig c1 = c0;
  c1.write_base = 0x8000;
  DmaEngine m1("m1", sc.port_link(1), c1);
  sim.add(m0);
  sim.add(m1);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return m0.finished() && m1.finished(); },
                            100000));
  // Each wrote 512 bytes; both destinations fully written, no cross-talk.
  EXPECT_EQ(store.read_word(0x1000), 0u);       // fill seed 0 at offset 0
  EXPECT_EQ(store.read_word(0x1000 + 8), 1u);   // fill pattern advances
  EXPECT_EQ(store.read_word(0x8000 + 8), 1u);
  EXPECT_EQ(sc.counters(0).w_beats, 64u);
  EXPECT_EQ(sc.counters(1).w_beats, 64u);
}

TEST_F(ScFixture, RoundRobinSharesBetweenEqualGreedyMasters) {
  TrafficConfig greedy;
  greedy.direction = TrafficDirection::kRead;
  greedy.burst_beats = 16;
  TrafficGenerator g0("g0", sc.port_link(0), greedy);
  TrafficGenerator g1("g1", sc.port_link(1), greedy);
  sim.add(g0);
  sim.add(g1);
  sim.reset();

  sim.run(50000);
  const double a = static_cast<double>(g0.stats().bytes_read);
  const double b = static_cast<double>(g1.stats().bytes_read);
  ASSERT_GT(a + b, 0);
  EXPECT_NEAR(a / (a + b), 0.5, 0.05);
}

TEST_F(ScFixture, HeterogeneousBurstsAreUnfair) {
  // The unfairness of [11]: transaction-granular round-robin gives the
  // long-burst master most of the *byte* bandwidth.
  TrafficConfig small;
  small.direction = TrafficDirection::kRead;
  small.burst_beats = 4;
  small.base = 0x4000'0000;
  TrafficConfig big = TrafficGenerator::bandwidth_stealer(0x6000'0000);
  TrafficGenerator victim("victim", sc.port_link(0), small);
  TrafficGenerator stealer("stealer", sc.port_link(1), big);
  sim.add(victim);
  sim.add(stealer);
  sim.reset();

  sim.run(100000);
  const double v = static_cast<double>(victim.stats().bytes_read);
  const double s = static_cast<double>(stealer.stats().bytes_read);
  ASSERT_GT(v + s, 0);
  // 4-beat vs 256-beat bursts: the stealer gets the lion's share.
  EXPECT_GT(s / (v + s), 0.9);
}

TEST_F(ScFixture, QosSignalsAreIgnored) {
  // Two identical masters, one with max QoS: identical service (PG247).
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 16;
  TrafficGenerator lo("lo", sc.port_link(0), cfg);
  TrafficGenerator hi("hi", sc.port_link(1), cfg);
  sim.add(lo);
  sim.add(hi);
  sim.reset();
  // (TrafficGenerator leaves qos = 0; the model never reads it — this test
  // documents that behavioural contract by asserting equal shares.)
  sim.run(50000);
  const double a = static_cast<double>(lo.stats().bytes_read);
  const double b = static_cast<double>(hi.stats().bytes_read);
  EXPECT_NEAR(a / (a + b), 0.5, 0.05);
}

TEST(SmartConnectGranularity, VariableGranularityBatchesGrants) {
  // With granularity g and both masters backlogged, the arbiter hands out
  // up to g consecutive grants per master. Observable as g-sized batches in
  // the grant sequence; here we check the aggregate effect: with g=4 a
  // master with queued requests is served in bursts (its counter advances
  // by >= 2 while the other's stalls at least once).
  SmartConnectConfig cfg;
  cfg.grant_granularity = 4;
  Simulator sim;
  BackingStore store;
  SmartConnect sc("sc", 2, cfg);
  MemoryController mem("ddr", sc.master_link(), store, {});
  sc.register_with(sim);
  sim.add(mem);

  TrafficConfig greedy;
  greedy.direction = TrafficDirection::kRead;
  greedy.burst_beats = 16;
  greedy.max_outstanding = 16;
  TrafficGenerator g0("g0", sc.port_link(0), greedy);
  TrafficGenerator g1("g1", sc.port_link(1), greedy);
  sim.add(g0);
  sim.add(g1);
  sim.reset();

  // Sample the grant counters every cycle and look for a batch of 2+
  // consecutive grants to the same port while the other has backlog.
  bool saw_batch = false;
  std::uint64_t prev0 = 0;
  std::uint64_t prev1 = 0;
  std::uint64_t run0 = 0;
  for (int i = 0; i < 5000 && !saw_batch; ++i) {
    sim.step();
    const std::uint64_t d0 = sc.counters(0).ar_granted - prev0;
    const std::uint64_t d1 = sc.counters(1).ar_granted - prev1;
    prev0 += d0;
    prev1 += d1;
    if (d0 > 0 && d1 == 0) {
      run0 += d0;
      if (run0 >= 2 && prev1 > 0) saw_batch = true;
    } else if (d1 > 0) {
      run0 = 0;
    }
  }
  EXPECT_TRUE(saw_batch);
}

TEST(SmartConnectPorts, FourPortFairness) {
  Simulator sim;
  BackingStore store;
  SmartConnect sc("sc", 4, {});
  MemoryController mem("ddr", sc.master_link(), store, {});
  sc.register_with(sim);
  sim.add(mem);

  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 16;
  for (PortIndex i = 0; i < 4; ++i) {
    cfg.base = 0x4000'0000 + (static_cast<Addr>(i) << 24);
    gens.push_back(std::make_unique<TrafficGenerator>(
        "g" + std::to_string(i), sc.port_link(i), cfg));
    sim.add(*gens.back());
  }
  sim.reset();
  sim.run(80000);

  double total = 0;
  for (const auto& g : gens) total += static_cast<double>(g->stats().bytes_read);
  ASSERT_GT(total, 0);
  for (const auto& g : gens) {
    EXPECT_NEAR(static_cast<double>(g->stats().bytes_read) / total, 0.25,
                0.05);
  }
}

}  // namespace
}  // namespace axihc
