// Measurement-primitive tests: latency stats, rate meter, window counter,
// table printer.
#include "stats/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

TEST(LatencyStats, MinMaxMean) {
  LatencyStats s;
  for (Cycle v : {4u, 2u, 9u, 5u}) s.record(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.min(), 2u);
  EXPECT_EQ(s.max(), 9u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(LatencyStats, PercentilesExact) {
  LatencyStats s;
  for (Cycle v = 1; v <= 100; ++v) s.record(v);
  EXPECT_EQ(s.percentile(50), 50u);
  EXPECT_EQ(s.percentile(99), 99u);
  EXPECT_EQ(s.percentile(100), 100u);
  EXPECT_EQ(s.percentile(1), 1u);
}

TEST(LatencyStats, SortCacheSurvivesQueriesAndInvalidatesOnRecord) {
  LatencyStats s;
  for (Cycle v : {30u, 10u, 20u}) s.record(v);
  // Several queries against one cached sort.
  EXPECT_EQ(s.percentile(50), 20u);
  EXPECT_EQ(s.percentile(100), 30u);
  EXPECT_EQ(s.min(), 10u);
  EXPECT_EQ(s.max(), 30u);
  // A new sample must invalidate the cache, not be ignored by it.
  s.record(5);
  EXPECT_EQ(s.min(), 5u);
  EXPECT_EQ(s.percentile(25), 5u);
  EXPECT_EQ(s.percentile(100), 30u);
  s.record(100);
  EXPECT_EQ(s.max(), 100u);
  // samples() stays in insertion order regardless of percentile queries.
  EXPECT_EQ(s.samples().front(), 30u);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  s.record(7);
  EXPECT_EQ(s.percentile(50), 7u);
}

TEST(LatencyStats, EmptyThrows) {
  LatencyStats s;
  EXPECT_THROW((void)s.min(), ModelError);
  EXPECT_THROW((void)s.mean(), ModelError);
  EXPECT_THROW((void)s.percentile(50), ModelError);
}

TEST(RateMeter, ConvertsToPerSecond) {
  RateMeter meter(100e6);  // 100 MHz
  // 10 completions in 1e6 cycles = 10 / 10ms = 1000/s.
  EXPECT_DOUBLE_EQ(meter.per_second(10, 1'000'000), 1000.0);
  EXPECT_DOUBLE_EQ(meter.to_us(100), 1.0);
}

TEST(RateMeter, BytesPerSecond) {
  RateMeter meter(150e6);
  // 8 bytes per cycle at 150 MHz = 1.2 GB/s.
  EXPECT_NEAR(meter.bytes_per_second(8 * 150'000'000ull, 150'000'000),
              1.2e9, 1);
}

TEST(WindowCounter, CountsPerWindow) {
  WindowCounter wc(100);
  wc.record(5);
  wc.record(50);
  wc.record(150);
  wc.record(160);
  wc.record(170);
  wc.flush(300);
  ASSERT_EQ(wc.windows().size(), 3u);
  EXPECT_EQ(wc.windows()[0], 2u);
  EXPECT_EQ(wc.windows()[1], 3u);
  EXPECT_EQ(wc.windows()[2], 0u);
  EXPECT_EQ(wc.max_window(), 3u);
  EXPECT_EQ(wc.total(), 5u);
}

TEST(WindowCounter, EmptyWindowsBetweenEvents) {
  WindowCounter wc(10);
  wc.record(0);
  wc.record(55);
  wc.flush(60);
  ASSERT_EQ(wc.windows().size(), 6u);
  EXPECT_EQ(wc.windows()[0], 1u);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(wc.windows()[i], 0u);
  EXPECT_EQ(wc.windows()[5], 1u);
}

TEST(Table, MarkdownOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  std::ostringstream os;
  t.print_markdown(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ModelError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(10, 0), "10");
}

}  // namespace
}  // namespace axihc
