// eFIFO module tests: gated channel access and the decoupling mechanism.
#include "hyperconnect/efifo.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct EfifoFixture : ::testing::Test {
  EfifoFixture() : link("l"), fifo(link) {
    link.register_with(sim);
    sim.reset();
  }

  Simulator sim;
  AxiLink link;
  Efifo fifo;
};

TEST_F(EfifoFixture, StartsCoupled) { EXPECT_TRUE(fifo.coupled()); }

TEST_F(EfifoFixture, PassesTrafficWhenCoupled) {
  AddrReq req;
  req.id = 7;
  link.ar.push(req);
  sim.step();
  ASSERT_TRUE(fifo.ar_available());
  EXPECT_EQ(fifo.pop_ar().id, 7u);
}

TEST_F(EfifoFixture, DecoupledPortHidesPendingRequests) {
  AddrReq req;
  link.ar.push(req);
  link.aw.push(req);
  link.w.push({0, 0xff, true});
  sim.step();
  fifo.set_coupled(false);
  EXPECT_FALSE(fifo.ar_available());
  EXPECT_FALSE(fifo.aw_available());
  EXPECT_FALSE(fifo.w_available());
  EXPECT_FALSE(fifo.can_push_r());
  EXPECT_FALSE(fifo.can_push_b());
}

TEST_F(EfifoFixture, RecouplingRestoresAccess) {
  AddrReq req;
  req.id = 3;
  link.ar.push(req);
  sim.step();
  fifo.set_coupled(false);
  EXPECT_FALSE(fifo.ar_available());
  fifo.set_coupled(true);
  ASSERT_TRUE(fifo.ar_available());
  EXPECT_EQ(fifo.pop_ar().id, 3u);  // nothing was lost while decoupled
}

TEST_F(EfifoFixture, ResponsesFlowUpstreamWhenCoupled) {
  ASSERT_TRUE(fifo.can_push_r());
  fifo.push_r({1, 42, true, Resp::kOkay});
  fifo.push_b({1, Resp::kOkay});
  sim.step();
  ASSERT_TRUE(link.r.can_pop());
  EXPECT_EQ(link.r.pop().data, 42u);
  ASSERT_TRUE(link.b.can_pop());
}

TEST_F(EfifoFixture, BackpressureStillVisibleWhenCoupled) {
  AxiLinkConfig cfg;
  cfg.r_depth = 1;
  AxiLink small("s", cfg);
  Efifo f2(small);
  Simulator sim2;
  small.register_with(sim2);
  sim2.reset();
  ASSERT_TRUE(f2.can_push_r());
  f2.push_r({1, 0, true, Resp::kOkay});
  EXPECT_FALSE(f2.can_push_r());  // queue full
}

}  // namespace
}  // namespace axihc
