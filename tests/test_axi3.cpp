// AXI3 compatibility (§V-A: "The AXI HyperConnect is compatible with both
// AXI3 and AXI4 devices"): with a nominal burst <= 16, everything the
// HyperConnect emits downstream is AXI3-legal even when AXI4 masters issue
// 256-beat bursts upstream.
#include <gtest/gtest.h>

#include "axi/monitor.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

/// HyperConnect with an AXI3-mode protocol monitor on its master port: the
/// monitor rejects any downstream burst longer than 16 beats.
struct Axi3Fixture : ::testing::Test {
  explicit Axi3Fixture(BeatCount nominal = 16) {
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    cfg.nominal_burst = nominal;
    cfg.max_outstanding = 8;
    hc = std::make_unique<HyperConnect>("hc", cfg);
    mem_link = std::make_unique<AxiLink>("to_mem");
    monitor = std::make_unique<AxiMonitor>("axi3mon", hc->master_link(),
                                           *mem_link, /*axi3_mode=*/true);
    mem = std::make_unique<MemoryController>("ddr", *mem_link, store,
                                             MemoryControllerConfig{});
    hc->register_with(sim);
    mem_link->register_with(sim);
    sim.add(*monitor);
    sim.add(*mem);
  }

  Simulator sim;
  BackingStore store;
  std::unique_ptr<HyperConnect> hc;
  std::unique_ptr<AxiLink> mem_link;
  std::unique_ptr<AxiMonitor> monitor;
  std::unique_ptr<MemoryController> mem;
};

TEST_F(Axi3Fixture, Axi4MaxBurstsEqualizedToAxi3Legal) {
  monitor->set_throw_on_violation(true);
  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = kMaxAxi4BurstBeats;  // 256-beat AXI4 bursts upstream
  t.max_transactions = 10;
  TrafficGenerator gen("gen", hc->port_link(0), t);
  sim.add(gen);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return gen.finished(); }, 200000));
  EXPECT_TRUE(monitor->clean());
  // 10 x 256 beats at nominal 16 = 160 AXI3-legal sub-transactions.
  EXPECT_EQ(monitor->reads_completed(), 160u);
  EXPECT_EQ(gen.stats().reads_completed, 10u);
}

TEST_F(Axi3Fixture, MixedAxi3LegalWritesToo) {
  monitor->set_throw_on_violation(true);
  TrafficConfig t;
  t.direction = TrafficDirection::kMixed;
  t.burst_beats = 64;
  t.max_transactions = 8;
  TrafficGenerator gen("gen", hc->port_link(0), t);
  sim.add(gen);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return gen.finished(); }, 200000));
  EXPECT_TRUE(monitor->clean());
  EXPECT_EQ(monitor->reads_completed() + monitor->writes_completed(), 32u);
}

struct Axi3Wide : Axi3Fixture {
  Axi3Wide() : Axi3Fixture(/*nominal=*/64) {}
};

TEST_F(Axi3Wide, NominalAbove16ViolatesAxi3) {
  // Negative control: a nominal burst of 64 emits AXI3-illegal bursts — the
  // monitor must flag them. (An AXI3 deployment must configure the nominal
  // burst to at most 16.)
  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 64;
  t.max_transactions = 2;
  TrafficGenerator gen("gen", hc->port_link(0), t);
  sim.add(gen);
  sim.reset();
  sim.run(5000);
  EXPECT_FALSE(monitor->clean());
}

TEST(Axi3Master, SixteenBeatMasterThroughHyperConnect) {
  // An AXI3 master (bursts <= 16) works unmodified through the default
  // HyperConnect — compatibility in the other direction.
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig t;
  t.direction = TrafficDirection::kMixed;
  t.burst_beats = kMaxAxi3BurstBeats;
  t.max_transactions = 20;
  TrafficGenerator axi3_master("axi3", hc.port_link(0), t);
  sim.add(axi3_master);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return axi3_master.finished(); }, 200000));
  EXPECT_EQ(axi3_master.stats().reads_completed +
                axi3_master.stats().writes_completed,
            20u);
}

}  // namespace
}  // namespace axihc
