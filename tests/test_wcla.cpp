// Worst-case latency analysis validation: every analytical bound must
// dominate the observed worst case in adversarial simulations (soundness),
// without being uselessly loose (tightness factor).
#include "analysis/wcla.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

AnalysisPlatform platform_for(const MemoryControllerConfig& mc) {
  AnalysisPlatform p;
  p.mem_latency = mc.row_miss_latency;
  p.turnaround = mc.turnaround;
  return p;
}

TEST(Wcla, ServiceBound) {
  AnalysisPlatform p;
  p.mem_latency = 24;
  p.turnaround = 1;
  EXPECT_EQ(service_bound(p, 16), 41u);
  EXPECT_EQ(service_bound(p, 1), 26u);
}

TEST(Wcla, SubTransactionCount) {
  HcAnalysisConfig cfg;
  cfg.nominal_burst = 16;
  EXPECT_EQ(sub_transaction_count(cfg, 1), 1u);
  EXPECT_EQ(sub_transaction_count(cfg, 16), 1u);
  EXPECT_EQ(sub_transaction_count(cfg, 17), 2u);
  EXPECT_EQ(sub_transaction_count(cfg, 256), 16u);
  cfg.nominal_burst = 0;
  EXPECT_EQ(sub_transaction_count(cfg, 256), 1u);
}

TEST(Wcla, EqualizationShrinksTheBound) {
  AnalysisPlatform p;
  HcAnalysisConfig equalized;
  equalized.num_ports = 2;
  equalized.nominal_burst = 16;
  HcAnalysisConfig raw = equalized;
  raw.nominal_burst = 0;  // competitors may issue 256-beat bursts
  EXPECT_LT(wcrt_read(equalized, p, 0, 16), wcrt_read(raw, p, 0, 16));
}

TEST(Wcla, SmartConnectBoundGrowsWithGranularity) {
  AnalysisPlatform sc;
  sc.ar_latency = 12;
  sc.r_latency = 11;
  Cycle prev = 0;
  for (std::uint32_t g : {1u, 2u, 4u, 8u}) {
    const Cycle bound = smartconnect_wcrt_read(sc, 2, g, 256, 16);
    EXPECT_GT(bound, prev);
    prev = bound;
  }
}

TEST(Wcla, HyperConnectBoundBelowSmartConnectBound) {
  // The paper's predictability argument, quantified: equalization + fixed
  // granularity gives a much smaller worst case than variable-granularity
  // RR over unequalized bursts.
  AnalysisPlatform hc_p;
  HcAnalysisConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  cfg.competitor_backlog = 4;
  AnalysisPlatform sc_p;
  sc_p.ar_latency = 12;
  sc_p.r_latency = 11;
  EXPECT_LT(wcrt_read(cfg, hc_p, 0, 16),
            smartconnect_wcrt_read(sc_p, 2, 4, 256, 16));
}

TEST(Wcla, ReservationFeasibility) {
  AnalysisPlatform p;
  p.mem_latency = 24;
  p.turnaround = 1;  // S(16) = 41
  HcAnalysisConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  cfg.reservation_period = 2000;
  cfg.budgets = {24, 24};  // 48 * 41 = 1968 <= 2000
  EXPECT_TRUE(reservation_feasible(cfg, p));
  cfg.budgets = {30, 30};  // 60 * 41 = 2460 > 2000
  EXPECT_FALSE(reservation_feasible(cfg, p));
}

/// Measures the observed worst-case read latency of a victim issuing
/// `beats`-beat reads against `n_ports - 1` adversarial greedy masters.
Cycle observed_worst_read(std::uint32_t n_ports, BeatCount victim_beats,
                          BeatCount adversary_beats, BeatCount nominal,
                          Cycle period, std::vector<std::uint32_t> budgets,
                          const MemoryControllerConfig& mc) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = n_ports;
  cfg.nominal_burst = nominal;
  cfg.max_outstanding = 4;
  cfg.reservation_period = period;
  cfg.initial_budgets = std::move(budgets);
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, mc);
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig vcfg;
  vcfg.direction = TrafficDirection::kRead;
  vcfg.burst_beats = victim_beats;
  vcfg.gap_cycles = 97;  // sparse, misaligned with periods
  vcfg.max_outstanding = 1;
  vcfg.base = 0x4000'0000;
  TrafficGenerator victim("victim", hc.port_link(0), vcfg);
  sim.add(victim);

  std::vector<std::unique_ptr<TrafficGenerator>> adversaries;
  for (PortIndex pt = 1; pt < n_ports; ++pt) {
    TrafficConfig a;
    a.direction = TrafficDirection::kRead;
    a.burst_beats = adversary_beats;
    a.max_outstanding = 4;
    a.base = 0x6000'0000 + (static_cast<Addr>(pt) << 24);
    adversaries.push_back(std::make_unique<TrafficGenerator>(
        "adv" + std::to_string(pt), hc.port_link(pt), a));
    sim.add(*adversaries.back());
  }
  sim.reset();
  sim.run(300000);
  return victim.stats().read_latency.count() > 0
             ? victim.stats().read_latency.max()
             : 0;
}

/// (ports, victim beats, adversary beats, nominal)
using WclaParams = std::tuple<std::uint32_t, BeatCount, BeatCount, BeatCount>;

class WclaSoundness : public ::testing::TestWithParam<WclaParams> {};

TEST_P(WclaSoundness, BoundDominatesObservedWorstCase) {
  const auto [ports, victim_beats, adversary_beats, nominal] = GetParam();
  MemoryControllerConfig mc;
  mc.row_hit_latency = 10;
  mc.row_miss_latency = 24;
  mc.turnaround = 1;

  const Cycle observed = observed_worst_read(ports, victim_beats,
                                             adversary_beats, nominal, 0, {},
                                             mc);
  ASSERT_GT(observed, 0u);

  HcAnalysisConfig cfg;
  cfg.num_ports = ports;
  cfg.nominal_burst = nominal;
  cfg.max_unequalized_beats = adversary_beats;
  cfg.competitor_backlog = 4;
  const Cycle bound = wcrt_read(cfg, platform_for(mc), 0, victim_beats);

  EXPECT_LE(observed, bound) << "unsound bound";
  // Tightness: the bound must be within 12x of what an adversarial (but
  // not exhaustive) simulation can provoke.
  EXPECT_LE(bound, observed * 12) << "uselessly loose bound";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WclaSoundness,
    ::testing::Values(WclaParams{2, 1, 16, 16}, WclaParams{2, 16, 16, 16},
                      WclaParams{2, 64, 16, 16}, WclaParams{2, 16, 256, 16},
                      WclaParams{4, 16, 16, 16}, WclaParams{4, 1, 256, 16},
                      WclaParams{2, 16, 256, 0}, WclaParams{3, 32, 64, 8}));

TEST(WclaReservation, SupplyBoundHoldsUnderReservation) {
  MemoryControllerConfig mc;
  mc.row_hit_latency = 10;
  mc.row_miss_latency = 24;
  mc.turnaround = 1;
  const Cycle period = 2000;
  const std::vector<std::uint32_t> budgets = {4, 20};

  const Cycle observed =
      observed_worst_read(2, 16, 16, 16, period, budgets, mc);
  ASSERT_GT(observed, 0u);

  HcAnalysisConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  cfg.reservation_period = period;
  cfg.budgets = budgets;
  cfg.competitor_backlog = 4;
  ASSERT_TRUE(reservation_feasible(cfg, platform_for(mc)));
  const Cycle bound = wcrt_read(cfg, platform_for(mc), 0, 16);
  EXPECT_LE(observed, bound);
}

}  // namespace
}  // namespace axihc
