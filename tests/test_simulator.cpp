// Simulator determinism and lifecycle tests.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/trace.hpp"

namespace axihc {
namespace {

/// Produces one integer per cycle into a channel.
class Producer final : public Component {
 public:
  Producer(std::string name, TimingChannel<int>& out)
      : Component(std::move(name)), out_(out) {}
  void tick(Cycle) override {
    if (out_.can_push()) out_.push(next_++);
  }
  void reset() override { next_ = 0; }

 private:
  TimingChannel<int>& out_;
  int next_ = 0;
};

/// Consumes integers and records the cycle each arrived.
class Consumer final : public Component {
 public:
  Consumer(std::string name, TimingChannel<int>& in)
      : Component(std::move(name)), in_(in) {}
  void tick(Cycle now) override {
    if (in_.can_pop()) received_.push_back({now, in_.pop()});
  }
  void reset() override { received_.clear(); }

  std::vector<std::pair<Cycle, int>> received_;

 private:
  TimingChannel<int>& in_;
};

TEST(Simulator, TimeAdvances) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  sim.run(10);
  EXPECT_EQ(sim.now(), 10u);
  sim.step();
  EXPECT_EQ(sim.now(), 11u);
}

TEST(Simulator, ProducerConsumerPipelineLatency) {
  Simulator sim;
  TimingChannel<int> ch("ch", 4);
  Producer p("p", ch);
  Consumer c("c", ch);
  sim.add(ch);
  sim.add(p);
  sim.add(c);

  sim.run(5);
  // Item 0 pushed at cycle 0 is consumable at cycle 1.
  ASSERT_FALSE(c.received_.empty());
  EXPECT_EQ(c.received_[0], (std::pair<Cycle, int>{1, 0}));
}

TEST(Simulator, TickOrderDoesNotChangeBehaviour) {
  // Same system, components registered in opposite orders: identical result.
  auto run_once = [](bool consumer_first) {
    Simulator sim;
    TimingChannel<int> ch("ch", 2);
    Producer p("p", ch);
    Consumer c("c", ch);
    sim.add(ch);
    if (consumer_first) {
      sim.add(c);
      sim.add(p);
    } else {
      sim.add(p);
      sim.add(c);
    }
    sim.run(50);
    return c.received_;
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

TEST(Simulator, RunUntilStopsOnPredicate) {
  Simulator sim;
  TimingChannel<int> ch("ch", 4);
  Producer p("p", ch);
  Consumer c("c", ch);
  sim.add(ch);
  sim.add(p);
  sim.add(c);

  const bool fired =
      sim.run_until([&] { return c.received_.size() >= 3; }, 1000);
  EXPECT_TRUE(fired);
  EXPECT_EQ(c.received_.size(), 3u);
}

TEST(Simulator, RunUntilTimesOut) {
  Simulator sim;
  const bool fired = sim.run_until([] { return false; }, 25);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 25u);
}

TEST(Simulator, ResetRestartsEverything) {
  Simulator sim;
  TimingChannel<int> ch("ch", 4);
  Producer p("p", ch);
  Consumer c("c", ch);
  sim.add(ch);
  sim.add(p);
  sim.add(c);

  sim.run(20);
  ASSERT_FALSE(c.received_.empty());
  sim.reset();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(c.received_.empty());
  sim.run(5);
  // Behaviour after reset matches a fresh run.
  ASSERT_FALSE(c.received_.empty());
  EXPECT_EQ(c.received_[0], (std::pair<Cycle, int>{1, 0}));
}

TEST(EventTrace, RecordsOnlyWhenEnabled) {
  EventTrace trace;
  trace.record(1, "a", "x");
  EXPECT_TRUE(trace.events().empty());
  trace.enable(true);
  trace.record(2, "a", "x");
  trace.record(3, "a", "y");
  trace.record(4, "a", "x");
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.first("a", "x"), 2u);
  EXPECT_EQ(trace.first("a", "z"), kNoCycle);
  EXPECT_EQ(trace.count("a", "x"), 2u);
}

}  // namespace
}  // namespace axihc
