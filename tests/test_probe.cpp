// Bandwidth probe tests (the APM-style observer) and the AlexNet schedule.
#include <gtest/gtest.h>

#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "stats/bandwidth_probe.hpp"

namespace axihc {
namespace {

struct ProbeFixture : ::testing::Test {
  ProbeFixture()
      : link("l"),
        mem("ddr", link, store, mem_cfg()),
        probe("probe", link, /*window=*/1000) {
    link.register_with(sim);
    sim.add(mem);
    sim.add(probe);
  }

  static MemoryControllerConfig mem_cfg() {
    MemoryControllerConfig c;
    c.row_hit_latency = 4;
    c.row_miss_latency = 8;
    return c;
  }

  Simulator sim;
  AxiLink link;
  BackingStore store;
  MemoryController mem;
  BandwidthProbe probe;
};

TEST_F(ProbeFixture, CountsExactBytes) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kReadWrite;
  cfg.bytes_per_job = 4096;
  cfg.burst_beats = 16;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", link, cfg);
  sim.add(dma);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 100000));
  sim.step();  // let the probe observe the final counters
  EXPECT_EQ(probe.total_read_bytes(), 4096u);
  EXPECT_EQ(probe.total_write_bytes(), 4096u);
}

TEST_F(ProbeFixture, WindowsSumToTotal) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kRead;
  cfg.bytes_per_job = 16384;
  cfg.burst_beats = 16;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", link, cfg);
  sim.add(dma);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 200000));
  sim.run(2001);  // close at least two more windows
  std::uint64_t sum = 0;
  for (const auto w : probe.read_window_bytes()) sum += w;
  EXPECT_EQ(sum, probe.total_read_bytes());
  EXPECT_GT(probe.read_window_bytes().size(), 1u);
  EXPECT_GT(probe.peak_read_window(), 0u);
}

TEST_F(ProbeFixture, IdleLinkMeasuresZero) {
  sim.reset();
  sim.run(5000);
  EXPECT_EQ(probe.total_read_bytes(), 0u);
  EXPECT_EQ(probe.peak_write_window(), 0u);
}

TEST_F(ProbeFixture, BurstyTrafficShowsIdleWindows) {
  // A DNN's compute phases leave probe windows with zero traffic.
  DnnConfig cfg;
  cfg.layers = {{"l0", 4096, 0, 0, 500'000}};  // long compute, no store
  cfg.macs_per_cycle = 100;                    // 5000 compute cycles
  cfg.max_frames = 1;
  DnnAccelerator dnn("dnn", link, cfg);
  sim.add(dnn);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return dnn.finished(); }, 100000));
  sim.run(1001);
  bool saw_idle_window = false;
  bool saw_busy_window = false;
  for (const auto w : probe.read_window_bytes()) {
    if (w == 0) saw_idle_window = true;
    if (w > 0) saw_busy_window = true;
  }
  EXPECT_TRUE(saw_idle_window);
  EXPECT_TRUE(saw_busy_window);
}

TEST(AlexNet, ScheduleShape) {
  const auto layers = alexnet_layers();
  ASSERT_EQ(layers.size(), 8u);
  std::uint64_t weights = 0;
  std::uint64_t macs = 0;
  for (const auto& l : layers) {
    weights += l.weight_bytes;
    macs += l.macs;
  }
  // ~61M parameters, ~0.72 GMAC.
  EXPECT_NEAR(static_cast<double>(weights), 61e6, 4e6);
  EXPECT_NEAR(static_cast<double>(macs), 0.72e9, 0.1e9);
  // AlexNet is weight-dominated (FC layers), unlike GoogleNet.
  std::uint64_t google_weights = 0;
  for (const auto& l : googlenet_layers()) google_weights += l.weight_bytes;
  EXPECT_GT(weights, 5 * google_weights);
}

TEST(AlexNet, RunsThroughTheStack) {
  Simulator sim;
  AxiLink link("l");
  BackingStore store;
  MemoryController mem("ddr", link, store, {});
  DnnConfig cfg;
  cfg.layers = alexnet_layers();
  for (auto& l : cfg.layers) {  // scaled for test speed
    l.weight_bytes /= 64;
    l.ifmap_bytes /= 64;
    l.ofmap_bytes /= 64;
    l.macs /= 64;
  }
  cfg.max_frames = 1;
  DnnAccelerator dnn("alexnet", link, cfg);
  link.register_with(sim);
  sim.add(mem);
  sim.add(dnn);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return dnn.finished(); }, 10'000'000));
  EXPECT_EQ(dnn.frames_completed(), 1u);
}

}  // namespace
}  // namespace axihc
