// axihc-lint: the design-rule checker must catch each contract violation it
// exists for — fed by deliberately-broken fixture components — and stay
// silent on well-formed systems.
//
// The ledger-backed checks (undeclared-endpoint, island-scope-violation,
// phase-race) need the AXIHC_PHASE_CHECK instrumentation; those tests skip
// on uninstrumented builds (the CI static-analysis job runs them for real).
// The structural checks (connectivity, address map, widths) run everywhere.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "axi/axi.hpp"
#include "config/system_builder.hpp"
#include "sim/channel.hpp"
#include "sim/component.hpp"
#include "sim/phase_check.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

// Disarms and clears the process-wide detector on both ends of a test, so
// armed fixtures cannot leak violations into each other.
struct PhaseCheckGuard {
  PhaseCheckGuard() { PhaseCheck::reset(); }
  ~PhaseCheckGuard() { PhaseCheck::reset(); }
};

// --- fixtures: honest and lying components ------------------------------

/// Honest island-scope producer: declares its channel, stages one push per
/// cycle while there is room.
class HonestProducer : public Component {
 public:
  HonestProducer(std::string name, TimingChannel<int>& ch)
      : Component(std::move(name)), ch_(&ch) {
    ch_->add_endpoint(*this);
  }
  void tick(Cycle) override {
    if (ch_->can_push()) ch_->push(1);
  }
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

 private:
  TimingChannel<int>* ch_;
};

/// The bug the undeclared-endpoint check exists for: claims island scope but
/// consumes a channel it never declared, so the partitioner cannot see the
/// edge between it and the producer.
class UndeclaredConsumer : public Component {
 public:
  UndeclaredConsumer(std::string name, TimingChannel<int>& ch)
      : Component(std::move(name)), ch_(&ch) {}  // no add_endpoint — the bug
  void tick(Cycle) override {
    if (ch_->can_pop()) ch_->pop();
  }
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

 private:
  TimingChannel<int>* ch_;
};

/// Declares its own channel but also peeks at a foreign island's channel:
/// a data race under the parallel engine (island-scope-violation).
class CrossIslandSnooper : public Component {
 public:
  CrossIslandSnooper(std::string name, TimingChannel<int>& own,
                     TimingChannel<int>& foreign)
      : Component(std::move(name)), own_(&own), foreign_(&foreign) {
    own_->add_endpoint(*this);
  }
  void tick(Cycle) override {
    if (own_->can_push()) own_->push(1);
    if (foreign_->can_pop()) foreign_->pop();  // undeclared, cross-island
  }
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

 private:
  TimingChannel<int>* own_;
  TimingChannel<int>* foreign_;
};

/// Breaks the two-phase discipline on purpose: commits its own channel
/// mid-tick and immediately consumes the freshly-committed element, so the
/// push, the visibility and the pop all land in one cycle.
class PhaseRacer : public Component {
 public:
  PhaseRacer(std::string name, TimingChannel<int>& ch)
      : Component(std::move(name)), ch_(&ch) {
    ch_->add_endpoint(*this);
  }
  void tick(Cycle) override {
    if (!ch_->can_push()) return;
    ch_->push(1);
    ch_->commit();                 // mid-compute commit
    if (ch_->can_pop()) ch_->pop();  // same-cycle read-after-commit
  }
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

 private:
  TimingChannel<int>* ch_;
};

/// Stateless placeholder for connectivity fixtures.
class IdleMaster : public Component {
 public:
  using Component::Component;
  void tick(Cycle) override {}
};

// --- ledger-backed checks (need the instrumented build) -----------------

TEST(LintLedger, FlagsUndeclaredEndpoint) {
  if (!kPhaseCheckAvailable) {
    GTEST_SKIP() << "needs -DAXIHC_PHASE_CHECK=ON";
  }
  PhaseCheckGuard guard;
  Simulator sim;
  TimingChannel<int> ch("fixture.ch", 4);
  sim.add(ch);
  HonestProducer producer("producer", ch);
  UndeclaredConsumer consumer("consumer", ch);
  sim.add(producer);
  sim.add(consumer);

  PhaseCheck::arm(true);
  sim.run(10);

  const LintReport report = DesignRuleChecker(sim).run();
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_check("undeclared-endpoint"));
  // The honest producer must not be flagged.
  for (const LintFinding& f : report.findings()) {
    EXPECT_NE(f.subject, "producer") << f.message;
  }
}

TEST(LintLedger, FlagsCrossIslandAccess) {
  if (!kPhaseCheckAvailable) {
    GTEST_SKIP() << "needs -DAXIHC_PHASE_CHECK=ON";
  }
  PhaseCheckGuard guard;
  Simulator sim;
  TimingChannel<int> island_a("a.ch", 4);
  TimingChannel<int> island_b("b.ch", 4);
  sim.add(island_a);
  sim.add(island_b);
  HonestProducer producer("a.producer", island_a);
  CrossIslandSnooper snooper("b.snooper", island_b, island_a);
  sim.add(producer);
  sim.add(snooper);

  PhaseCheck::arm(true);
  sim.run(10);

  const LintReport report = DesignRuleChecker(sim).run();
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_check("island-scope-violation"));
  EXPECT_TRUE(report.has_check("undeclared-endpoint"));
}

TEST(LintLedger, FlagsPhaseRace) {
  if (!kPhaseCheckAvailable) {
    GTEST_SKIP() << "needs -DAXIHC_PHASE_CHECK=ON";
  }
  PhaseCheckGuard guard;
  Simulator sim;
  TimingChannel<int> ch("racer.ch", 4);
  sim.add(ch);
  PhaseRacer racer("racer", ch);
  sim.add(racer);

  PhaseCheck::arm(true);
  sim.run(3);

  EXPECT_GT(PhaseCheck::violation_count(), 0u);
  const LintReport report = DesignRuleChecker(sim).run();
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_check("phase-race"));
}

TEST(LintLedger, CleanSystemHasNoLedgerFindings) {
  if (!kPhaseCheckAvailable) {
    GTEST_SKIP() << "needs -DAXIHC_PHASE_CHECK=ON";
  }
  PhaseCheckGuard guard;
  Simulator sim;
  TimingChannel<int> ch("clean.ch", 4);
  sim.add(ch);
  HonestProducer producer("producer", ch);
  sim.add(producer);

  PhaseCheck::arm(true);
  sim.run(10);

  const LintReport report = DesignRuleChecker(sim).run();
  EXPECT_FALSE(report.has_errors()) << [&] {
    std::ostringstream os;
    report.write_text(os);
    return os.str();
  }();
}

TEST(LintLedger, DisarmedRunRecordsNothing) {
  if (!kPhaseCheckAvailable) {
    GTEST_SKIP() << "needs -DAXIHC_PHASE_CHECK=ON";
  }
  PhaseCheckGuard guard;
  Simulator sim;
  TimingChannel<int> ch("disarmed.ch", 4);
  sim.add(ch);
  PhaseRacer racer("racer", ch);
  sim.add(racer);

  sim.run(3);  // never armed

  EXPECT_EQ(PhaseCheck::violation_count(), 0u);
  EXPECT_TRUE(ch.observed_accessors().empty());
}

// --- structural checks (run on every build) -----------------------------

TEST(LintStructural, FlagsOverlappingDecodeMap) {
  Simulator sim;
  DesignRuleChecker drc(sim);
  drc.add_address_range("bank0", {0x0000, 0x2000}, AddressKind::kDecode);
  drc.add_address_range("bank1", {0x1000, 0x2000}, AddressKind::kDecode);

  const LintReport report = drc.run();
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_check("address-overlap"));
}

TEST(LintStructural, WarnsOnSharedHaWindows) {
  Simulator sim;
  DesignRuleChecker drc(sim);
  drc.add_address_range("ha0 buffer", {0x1000'0000, 1u << 20},
                        AddressKind::kMasterWindow);
  drc.add_address_range("ha1 buffer", {0x1000'8000, 1u << 20},
                        AddressKind::kMasterWindow);

  const LintReport report = drc.run();
  EXPECT_FALSE(report.has_errors());  // warning severity
  EXPECT_TRUE(report.has_check("address-overlap"));
}

TEST(LintStructural, WarnsOnWindowOutsideDecodeMap) {
  Simulator sim;
  DesignRuleChecker drc(sim);
  drc.add_address_range("memory decode map", {0, 1u << 20},
                        AddressKind::kDecode);
  drc.add_address_range("ha0 buffer", {0x1000'0000, 1u << 16},
                        AddressKind::kMasterWindow);

  const LintReport report = drc.run();
  EXPECT_TRUE(report.has_check("address-unmapped"));
  // SLVERR windows overlap mapped memory by design: never flagged.
  EXPECT_FALSE(report.has_errors());
}

TEST(LintStructural, WarnsOnUnconnectedLink) {
  Simulator sim;
  AxiLink link("dangling", {});
  link.register_with(sim);
  IdleMaster lonely("master");
  link.attach_endpoint(lonely);  // only one side attached
  sim.add(lonely);

  DesignRuleChecker drc(sim);
  drc.expect_connected(link, "test port");
  const LintReport report = drc.run();
  EXPECT_TRUE(report.has_check("unconnected-link"));
  EXPECT_FALSE(report.has_errors());  // warning severity
}

TEST(LintStructural, FlagsBridgeWidthMismatch) {
  Simulator sim;
  AxiLinkConfig wide;
  wide.data_bits = 128;
  AxiLinkConfig narrow;
  narrow.data_bits = 64;
  AxiLink up("up", wide);
  AxiLink down("down", narrow);

  DesignRuleChecker drc(sim);
  drc.add_bridge("bridge0", up, down);
  const LintReport report = drc.run();
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_check("width-mismatch"));
}

TEST(LintStructural, FlagsIdHeadroomViolation) {
  Simulator sim;
  AxiLinkConfig cfg;
  cfg.id_bits = 20;  // collides with the port index packed at bit 16
  AxiLink link("ha0.link", cfg);

  DesignRuleChecker drc(sim);
  drc.require_id_headroom(link, 16, "the ID-extension");
  const LintReport report = drc.run();
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_check("width-mismatch"));

  AxiLink ok("ha1.link", {});  // default 16-bit IDs exactly fit
  DesignRuleChecker drc2(sim);
  drc2.require_id_headroom(ok, 16, "the ID-extension");
  EXPECT_FALSE(drc2.run().has_errors());
}

// --- report output ------------------------------------------------------

TEST(LintReportOutput, JsonEscapesAndCounts) {
  LintReport report;
  report.add({LintSeverity::kError, "address-overlap", "a \"quoted\" owner",
              "line\nbreak", "back\\slash"});
  report.add({LintSeverity::kWarning, "unconnected-link", "port", "msg", ""});

  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"a \\\"quoted\\\" owner\""), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
}

TEST(LintReportOutput, TextListsFindingsAndSummary) {
  LintReport report;
  report.add({LintSeverity::kError, "phase-race", "ch", "bad", "fix it"});
  std::ostringstream os;
  report.write_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("error: [phase-race] ch: bad"), std::string::npos);
  EXPECT_NE(text.find("hint: fix it"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

// --- builder integration ------------------------------------------------

constexpr const char* kCleanIni = R"(
[system]
interconnect = hyperconnect
ports = 2
cycles = 2000
[ha0]
type = dma
bytes_per_job = 65536
max_jobs = 1
[ha1]
type = traffic
)";

TEST(LintSystem, CleanConfigLintsClean) {
  PhaseCheckGuard guard;
  auto system = build_system(kCleanIni);
  if (kPhaseCheckAvailable) {
    PhaseCheck::arm(true);
    system->soc().sim().set_threads(0);
    system->run(2000);
  }
  const LintReport report = system->lint();
  EXPECT_FALSE(report.has_errors()) << [&] {
    std::ostringstream os;
    report.write_text(os);
    return os.str();
  }();
}

TEST(LintSystem, SharedDmaBuffersWarn) {
  PhaseCheckGuard guard;
  auto system = build_system(R"(
[system]
ports = 2
cycles = 1000
[ha0]
type = dma
read_base = 0x10000000
write_base = 0x20000000
[ha1]
type = dma
read_base = 0x10000000
write_base = 0x28000000
)");
  const LintReport report = system->lint();
  EXPECT_TRUE(report.has_check("address-overlap"));
  EXPECT_FALSE(report.has_errors());  // isolation warning, not an error
}

TEST(LintSystem, WindowBeyondMemBytesWarns) {
  PhaseCheckGuard guard;
  auto system = build_system(R"(
[system]
ports = 1
cycles = 1000
mem_bytes = 0x1000000
[ha0]
type = dma
read_base = 0x10000000
)");
  const LintReport report = system->lint();
  EXPECT_TRUE(report.has_check("address-unmapped"));
}

}  // namespace
}  // namespace axihc
