// RecoveryManager tests: the per-port FSM (backoff, demotion, escalation),
// the graceful budget degradation with its conservation invariant, and the
// closed-loop acceptance scenario — a transient fault under contention must
// end with the port recovered and the original reservation split restored.
#include "recovery/recovery_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "config/ini.hpp"
#include "config/system_builder.hpp"
#include "driver/hyperconnect_driver.hpp"
#include "driver/register_master.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

// Direct-FSM fixture: a real control-bus stack (register master + driver)
// against a real HyperConnect, with the hypervisor's poll hooks driven by
// hand so each transition can be pinned to a cycle.
struct RecoveryFixture : ::testing::Test {
  RecoveryFixture()
      : hc("hc", two_ports()),
        mem("ddr", hc.master_link(), store, {}),
        rm("rm", hc.control_link()),
        driver(rm, 2),
        recovery("recovery", driver, policy()) {
    hc.register_with(sim);
    sim.add(mem);
    sim.add(rm);
    sim.add(recovery);
    sim.reset();
    recovery.set_baseline_budgets({16, 8});
    driver.set_budget(0, 16);
    driver.set_budget(1, 8);
    flush();
  }

  static HyperConnectConfig two_ports() {
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    return cfg;
  }

  static RecoveryPolicy policy() {
    RecoveryPolicy p;
    p.backoff_base = 100;
    p.backoff_max = 400;
    p.probation_window = 200;
    p.max_attempts = 2;
    p.drain_timeout = 300;
    return p;
  }

  /// Lets queued control-bus writes land (the hypervisor polls only when
  /// the driver is idle, so the FSM may assume the previous poll's writes
  /// completed).
  void flush() {
    ASSERT_TRUE(sim.run_until([&] { return driver.idle(); }, 10000));
  }

  /// The conservation invariant: whoever holds the budget, the window's
  /// reserved capacity never changes.
  void expect_conserved() {
    std::uint64_t sum = 0;
    for (PortIndex p = 0; p < 2; ++p) sum += recovery.intended_budget(p);
    EXPECT_EQ(sum, 24u);
    EXPECT_EQ(recovery.conservation_violations(), 0u);
  }

  /// Puts port `p` into Quarantined at `now`, the way the hypervisor would
  /// (decouple first, then report the fault).
  void quarantine_port(PortIndex p, Cycle now) {
    driver.set_coupled(p, false);
    recovery.on_fault(p, FaultCause::kWriteStall, now);
    flush();
  }

  Simulator sim;
  BackingStore store;
  HyperConnect hc;
  MemoryController mem;
  RegisterMaster rm;
  HyperConnectDriver driver;
  RecoveryManager recovery;
};

TEST_F(RecoveryFixture, FullEpisodeRestoresOriginalSplit) {
  quarantine_port(0, 1000);
  EXPECT_EQ(recovery.state(0), RecoveryState::kQuarantined);
  EXPECT_FALSE(recovery.wants_coupled(0));
  // Graceful degradation: the quarantined port's 16 txns move to port 1.
  EXPECT_EQ(recovery.intended_budget(0), 0u);
  EXPECT_EQ(recovery.intended_budget(1), 24u);
  EXPECT_EQ(hc.runtime().budgets[0], 0u);
  EXPECT_EQ(hc.runtime().budgets[1], 24u);
  expect_conserved();

  // Backoff expired and the port is drained: Draining falls straight
  // through to Resetting in the same poll — fault cleared, budget split
  // restored, recouple queued.
  recovery.on_poll(1100, {0, 0});
  flush();
  EXPECT_EQ(recovery.state(0), RecoveryState::kResetting);
  EXPECT_EQ(recovery.attempts(0), 1u);
  EXPECT_EQ(recovery.intended_budget(0), 16u);
  EXPECT_EQ(recovery.intended_budget(1), 8u);
  EXPECT_EQ(hc.runtime().budgets[0], 16u);
  EXPECT_FALSE(hc.port_fault(0).faulted);
  EXPECT_TRUE(hc.runtime().coupled[0]);
  expect_conserved();

  // Next poll: recouple write has landed, HA reset fires, probation starts.
  bool reset_called = false;
  recovery.set_ha_reset([&](PortIndex p) { reset_called = (p == 0); });
  recovery.on_poll(1200, {0, 0});
  EXPECT_TRUE(reset_called);
  EXPECT_EQ(recovery.state(0), RecoveryState::kProbation);

  // Probation window (200 cycles) survived fault-free -> recovered.
  recovery.on_poll(1450, {0, 0});
  EXPECT_EQ(recovery.state(0), RecoveryState::kHealthy);
  EXPECT_EQ(recovery.recoveries(), 1u);
  EXPECT_EQ(recovery.attempts(0), 0u);
  EXPECT_DOUBLE_EQ(recovery.mean_time_to_recovery(), 450.0);
  expect_conserved();
}

TEST_F(RecoveryFixture, FaultDuringDrainingDemotesWithDoubledBackoff) {
  quarantine_port(0, 1000);
  EXPECT_EQ(recovery.backoff(0), 100u);

  // Backoff expired but the port still has transactions in flight: it
  // stays in Draining.
  recovery.on_poll(1100, {5, 0});
  EXPECT_EQ(recovery.state(0), RecoveryState::kDraining);

  // A fresh fault mid-drain demotes: back to Quarantined, backoff doubled.
  recovery.on_fault(0, FaultCause::kTimeout, 1150);
  flush();
  EXPECT_EQ(recovery.state(0), RecoveryState::kQuarantined);
  EXPECT_EQ(recovery.backoff(0), 200u);
  EXPECT_EQ(recovery.demotions(), 1u);
  EXPECT_EQ(recovery.recoveries(), 0u);
  expect_conserved();
}

TEST_F(RecoveryFixture, FaultInProbationDoublesBackoff) {
  quarantine_port(0, 0);
  recovery.on_poll(100, {0, 0});  // Draining -> Resetting
  flush();
  recovery.on_poll(200, {0, 0});  // Resetting -> Probation
  EXPECT_EQ(recovery.state(0), RecoveryState::kProbation);

  recovery.on_fault(0, FaultCause::kReadStall, 250);
  flush();
  EXPECT_EQ(recovery.state(0), RecoveryState::kQuarantined);
  EXPECT_EQ(recovery.backoff(0), 200u);
  EXPECT_EQ(recovery.demotions(), 1u);
  // The port donates its budget again for the second attempt.
  EXPECT_EQ(recovery.intended_budget(0), 0u);
  EXPECT_EQ(recovery.intended_budget(1), 24u);
  expect_conserved();
}

TEST_F(RecoveryFixture, AttemptExhaustionEscalatesToPermanentIsolation) {
  quarantine_port(0, 0);
  // Attempt 1: quarantine -> drain -> probation -> fault -> demote.
  recovery.on_poll(100, {0, 0});
  flush();
  recovery.on_poll(200, {0, 0});
  recovery.on_fault(0, FaultCause::kWriteStall, 250);
  flush();
  EXPECT_EQ(recovery.state(0), RecoveryState::kQuarantined);

  // Attempt 2: same story. attempts == max_attempts when the next fault
  // arrives, so the demotion escalates.
  recovery.on_poll(500, {0, 0});
  flush();
  recovery.on_poll(600, {0, 0});
  EXPECT_EQ(recovery.state(0), RecoveryState::kProbation);
  EXPECT_EQ(recovery.attempts(0), 2u);
  recovery.on_fault(0, FaultCause::kWriteStall, 650);
  flush();
  EXPECT_EQ(recovery.state(0), RecoveryState::kPermanentlyIsolated);
  EXPECT_EQ(recovery.escalations(), 1u);
  EXPECT_FALSE(recovery.wants_coupled(0));
  // Terminal state still counts as converged (no episode in flight), and
  // the dead port's bandwidth stays with the survivor.
  EXPECT_TRUE(recovery.all_converged());
  EXPECT_EQ(recovery.intended_budget(0), 0u);
  EXPECT_EQ(recovery.intended_budget(1), 24u);
  expect_conserved();

  // Further polls and faults leave the terminal state alone.
  recovery.on_poll(2000, {0, 0});
  recovery.on_fault(0, FaultCause::kMalformed, 2100);
  EXPECT_EQ(recovery.state(0), RecoveryState::kPermanentlyIsolated);
  EXPECT_EQ(recovery.escalations(), 1u);
}

TEST_F(RecoveryFixture, WatchdogOverrunTreatedAsFault) {
  driver.set_coupled(1, false);
  recovery.on_watchdog_overrun(1, 500);
  flush();
  EXPECT_EQ(recovery.state(1), RecoveryState::kQuarantined);
  EXPECT_EQ(recovery.intended_budget(0), 24u);
  EXPECT_EQ(recovery.intended_budget(1), 0u);
  expect_conserved();
}

TEST_F(RecoveryFixture, DrainTimeoutForcesTheRecouple) {
  quarantine_port(0, 0);
  recovery.on_poll(100, {7, 0});  // backoff expired, still 7 in flight
  EXPECT_EQ(recovery.state(0), RecoveryState::kDraining);
  recovery.on_poll(300, {7, 0});  // deadline is 100 + 300
  EXPECT_EQ(recovery.state(0), RecoveryState::kDraining);
  recovery.on_poll(450, {7, 0});  // past the drain deadline: give up waiting
  flush();
  EXPECT_EQ(recovery.state(0), RecoveryState::kResetting);
}

// Largest-remainder apportionment across three ports: pool 10 over a 6/3
// baseline splits 7/3 (the remainder goes to the largest fractional part),
// integer-exact and deterministic.
TEST(RecoveryApportionment, ProportionalLargestRemainder) {
  Simulator sim;
  HyperConnectConfig cfg;
  cfg.num_ports = 3;
  HyperConnect hc("hc", cfg);
  BackingStore store;
  MemoryController mem("ddr", hc.master_link(), store, {});
  RegisterMaster rm("rm", hc.control_link());
  HyperConnectDriver driver(rm, 3);
  RecoveryManager recovery("recovery", driver, {});
  hc.register_with(sim);
  sim.add(mem);
  sim.add(rm);
  sim.add(recovery);
  sim.reset();
  recovery.set_baseline_budgets({10, 6, 3});

  driver.set_coupled(0, false);
  recovery.on_fault(0, FaultCause::kWriteStall, 100);
  ASSERT_TRUE(sim.run_until([&] { return driver.idle(); }, 10000));

  EXPECT_EQ(recovery.intended_budget(0), 0u);
  EXPECT_EQ(recovery.intended_budget(1), 13u);  // 6 + 7
  EXPECT_EQ(recovery.intended_budget(2), 6u);   // 3 + 3
  EXPECT_EQ(recovery.conservation_violations(), 0u);
  EXPECT_EQ(hc.runtime().budgets[1], 13u);
  EXPECT_EQ(hc.runtime().budgets[2], 6u);
}

// ---------------------------------------------------------------------------
// Acceptance: full closed loop through the configuration layer. A transient
// W-stream stall under a 16/8 contention split must be detected, the port
// quarantined with its budget redistributed, then recovered within the
// backoff schedule with the original split restored.
// ---------------------------------------------------------------------------

constexpr char kClosedLoopIni[] = R"(
[system]
interconnect = hyperconnect
platform = zcu102
ports = 2
cycles = 30000

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
reservation_period = 2000
budgets = 16 8
prot_timeout = 1500

[ha0]
type = dma
mode = readwrite
bytes_per_job = 65536
burst = 16

[ha1]
type = traffic
direction = mixed
burst = 16

[recovery]
poll_period = 500
backoff_base = 500
backoff_max = 4000
probation_window = 1500
max_attempts = 4
drain_timeout = 2000

[fault0]
kind = stall_w
port = 1
start = 3000
duration = 3000
)";

TEST(RecoveryClosedLoop, TransientFaultQuarantinesThenRestoresSplit) {
  ConfiguredSystem cs(IniFile::parse(kClosedLoopIni));
  auto& hc = dynamic_cast<HyperConnect&>(cs.soc().interconnect());
  ASSERT_NE(cs.recovery(), nullptr);
  ASSERT_NE(cs.hypervisor(), nullptr);

  // Watch the programmed budgets while the episode unfolds.
  std::uint32_t peak_survivor_budget = 0;
  bool saw_quarantine_budget = false;
  for (int stage = 0; stage < 60; ++stage) {
    cs.run(500);  // run() advances 500 more cycles each call
    peak_survivor_budget =
        std::max(peak_survivor_budget, hc.runtime().budgets[0]);
    if (hc.runtime().budgets[1] == 0) saw_quarantine_budget = true;
  }

  const RecoveryManager& rec = *cs.recovery();
  // The stall was detected and the port went through at least one episode.
  EXPECT_GE(rec.recoveries(), 1u);
  EXPECT_EQ(rec.escalations(), 0u);
  EXPECT_EQ(rec.conservation_violations(), 0u);
  EXPECT_EQ(rec.state(1), RecoveryState::kHealthy);
  EXPECT_TRUE(rec.all_converged());

  // Degradation really happened: the survivor held the full 24-txn window
  // while the culprit was out of service...
  EXPECT_TRUE(saw_quarantine_budget);
  EXPECT_EQ(peak_survivor_budget, 24u);
  // ...and the original split is back now that it recovered.
  EXPECT_EQ(hc.runtime().budgets[0], 16u);
  EXPECT_EQ(hc.runtime().budgets[1], 8u);
  EXPECT_TRUE(hc.runtime().coupled[1]);
  EXPECT_FALSE(hc.port_fault(1).faulted);

  // Both accelerators made progress through it all.
  EXPECT_GT(cs.ha(0).stats().bytes_read + cs.ha(0).stats().bytes_written,
            0u);
  EXPECT_GT(cs.ha(1).stats().bytes_read + cs.ha(1).stats().bytes_written,
            0u);
}

}  // namespace
}  // namespace axihc
