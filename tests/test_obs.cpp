// Observability-layer tests: metrics registry/sampler, Chrome trace export,
// trace capacity bounding, and the end-to-end [observe] wiring.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "config/system_builder.hpp"
#include "obs/chrome_trace.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace axihc {
namespace {

/// Bumps a counter every tick and mirrors the current cycle into a gauge.
class CountingComponent final : public Component {
 public:
  CountingComponent() : Component("counter") {}
  void tick(Cycle now) override {
    ticks_ += 2;
    level_ = now;
  }
  void reset() override { ticks_ = 0; }

  std::uint64_t ticks_ = 0;
  std::uint64_t level_ = 0;
};

TEST(MetricsRegistry, RegistersAndReads) {
  MetricsRegistry reg;
  std::uint64_t counter = 7;
  reg.add_counter("a.total", &counter);
  reg.add_gauge("a.level", [] { return 2.5; });
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.name(0), "a.total");
  EXPECT_EQ(reg.kind(0), MetricKind::kCounter);
  EXPECT_EQ(reg.kind(1), MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(reg.read(0), 7.0);
  EXPECT_DOUBLE_EQ(reg.read(1), 2.5);
  counter = 9;
  EXPECT_DOUBLE_EQ(reg.read(0), 9.0);
  EXPECT_EQ(reg.find("a.level"), 1u);
  EXPECT_EQ(reg.find("missing"), reg.size());
}

TEST(MetricsRegistry, RejectsDuplicateNames) {
  MetricsRegistry reg;
  reg.add_gauge("x", [] { return 0.0; });
  EXPECT_THROW(reg.add_counter("x", [] { return 0.0; }), ModelError);
}

TEST(MetricsSampler, SamplesAtExactCycles) {
  MetricsRegistry reg;
  CountingComponent comp;
  reg.add_counter("c.ticks", &comp.ticks_);
  reg.add_gauge("c.level", &comp.level_);

  Simulator sim;
  sim.add(comp);
  MetricsSampler sampler("sampler", reg, 4);
  sim.add(sampler);
  sim.run(10);  // ticks at cycles 0..9

  ASSERT_EQ(sampler.snapshots().size(), 3u);  // cycles 0, 4, 8
  EXPECT_EQ(sampler.snapshots()[0].cycle, 0u);
  EXPECT_EQ(sampler.snapshots()[1].cycle, 4u);
  EXPECT_EQ(sampler.snapshots()[2].cycle, 8u);
  // The sampler is registered after the counter, so a sample at cycle k sees
  // k+1 completed ticks (2 per tick) and level == k.
  EXPECT_DOUBLE_EQ(sampler.snapshots()[0].values[0], 2.0);
  EXPECT_DOUBLE_EQ(sampler.snapshots()[1].values[0], 10.0);
  EXPECT_DOUBLE_EQ(sampler.snapshots()[2].values[0], 18.0);
  EXPECT_DOUBLE_EQ(sampler.snapshots()[2].values[1], 8.0);

  // finalize() appends the end-of-run state exactly once.
  sampler.finalize(sim.now());
  ASSERT_EQ(sampler.snapshots().size(), 4u);
  EXPECT_EQ(sampler.snapshots().back().cycle, 10u);
  EXPECT_DOUBLE_EQ(sampler.snapshots().back().values[0], 20.0);
  sampler.finalize(sim.now());
  EXPECT_EQ(sampler.snapshots().size(), 4u);
}

TEST(MetricsSampler, WritesCsvAndJsonl) {
  MetricsRegistry reg;
  std::uint64_t total = 0;
  reg.add_counter("m.total", &total);
  MetricsSampler sampler("sampler", reg, 5);
  sampler.sample(0);
  total = 3;
  sampler.sample(5);

  std::ostringstream csv;
  sampler.write_csv(csv);
  EXPECT_EQ(csv.str(), "cycle,m.total\n0,0\n5,3\n");

  std::ostringstream jsonl;
  sampler.write_jsonl(jsonl);
  EXPECT_EQ(jsonl.str(),
            "{\"cycle\":0,\"m.total\":0}\n{\"cycle\":5,\"m.total\":3}\n");
}

TEST(EventTrace, CapacityBoundsMemoryAndCountsDrops) {
  EventTrace trace;
  trace.enable(true);
  trace.set_capacity(3);
  for (Cycle c = 0; c < 10; ++c) trace.record(c, "src", "ev");
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.dropped(), 7u);
  // The retained prefix keeps its exact timing.
  EXPECT_EQ(trace.events()[0].cycle, 0u);
  EXPECT_EQ(trace.events()[2].cycle, 2u);
  trace.clear();
  EXPECT_EQ(trace.dropped(), 0u);
  trace.record(1, "src", "ev");
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(EventTrace, TypedRecordsCarryKindAndValue) {
  EventTrace trace;
  trace.enable(true);
  trace.record_begin(1, "dma", "job");
  trace.record_counter(2, "hc.port0", "budget_used", 12.0);
  trace.record_end(3, "dma", "job");
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].kind, TraceKind::kBegin);
  EXPECT_EQ(trace.events()[1].kind, TraceKind::kCounter);
  EXPECT_DOUBLE_EQ(trace.events()[1].value, 12.0);
  EXPECT_EQ(trace.events()[2].kind, TraceKind::kEnd);
}

/// Pulls every "ts":N value out of the serialized trace, in order.
std::vector<long long> extract_ts(const std::string& json) {
  std::vector<long long> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    out.push_back(std::stoll(json.substr(pos)));
  }
  return out;
}

TEST(ChromeTrace, StructurallyValidAndMonotonic) {
  EventTrace trace;
  trace.enable(true);
  trace.record(5, "hc.exbar", "ar_grant_p0");
  trace.record_begin(2, "dma0", "job");
  trace.record_end(9, "dma0", "job");
  trace.record(3, "hc.exbar", "aw_grant_p1");

  MetricsRegistry reg;
  std::uint64_t total = 4;
  reg.add_counter("apm.read_bytes", &total);
  MetricsSampler sampler("sampler", reg, 4);
  sampler.sample(0);
  sampler.sample(4);

  std::ostringstream os;
  write_chrome_trace(os, trace, &sampler);
  const std::string json = os.str();

  // JSON array shape with balanced braces.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 3), "\n]\n");
  std::size_t open = 0, close = 0;
  for (const char c : json) {
    if (c == '{') ++open;
    if (c == '}') ++close;
  }
  EXPECT_EQ(open, close);

  // Metadata names the process and one track per source (first-appearance
  // tid order: metrics=0, then hc.exbar=1, dma0=2).
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(
      json.find("\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,"
                "\"args\":{\"name\":\"metrics\"}"),
      std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"hc.exbar\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"dma0\"}"), std::string::npos);

  // Events carry the right phase and tid.
  EXPECT_NE(json.find("{\"name\":\"ar_grant_p0\",\"ph\":\"i\",\"ts\":5,"
                      "\"pid\":0,\"tid\":1,\"s\":\"t\"}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"job\",\"ph\":\"B\",\"ts\":2,"
                      "\"pid\":0,\"tid\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"job\",\"ph\":\"E\",\"ts\":9,"
                      "\"pid\":0,\"tid\":2}"),
            std::string::npos);
  // Metric snapshots become counter records on tid 0.
  EXPECT_NE(json.find("{\"name\":\"apm.read_bytes\",\"ph\":\"C\",\"ts\":0,"
                      "\"pid\":0,\"tid\":0,\"args\":{\"value\":4}}"),
            std::string::npos);

  // Timestamps are non-decreasing after the metadata prologue (metadata
  // records all carry ts 0 and come first, so the whole list is sorted).
  const std::vector<long long> ts = extract_ts(json);
  ASSERT_GE(ts.size(), 8u);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LE(ts[i - 1], ts[i]) << "ts regression at record " << i;
  }
}

constexpr const char* kObserveIni = R"(
[system]
ports = 2
cycles = 6000

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
reservation_period = 1000
budgets = 10 10

[ha0]
type = traffic
direction = read
burst = 16

[ha1]
type = dma
mode = readwrite
bytes_per_job = 65536
burst = 16

[observe]
trace = true
metrics = true
sample_every = 500
)";

TEST(ObserveIni, EndToEndTraceAndMetrics) {
  auto cs = build_system(kObserveIni);
  cs->run();

  // The trace saw HyperConnect activity: recharges and EXBAR grants.
  EXPECT_GT(cs->trace().count("hc.central", "window_recharge"), 0u);
  EXPECT_GT(cs->trace().count("hc.exbar", "ar_grant_p0"), 0u);

  const MetricsSampler* sampler = cs->sampler();
  ASSERT_NE(sampler, nullptr);
  // Samples at 0, 500, ..., 5500 plus the finalize() row at 6000.
  ASSERT_EQ(sampler->snapshots().size(), 13u);
  EXPECT_EQ(sampler->snapshots().back().cycle, 6000u);

  // Acceptance check: the final cumulative APM sample equals the probe's
  // end-of-run totals, so per-window deltas sum to the BandwidthProbe total.
  const BandwidthProbe* probe = cs->probe();
  ASSERT_NE(probe, nullptr);
  const MetricsRegistry& reg = sampler->registry();
  const std::size_t r_idx = reg.find("apm.read_bytes");
  const std::size_t w_idx = reg.find("apm.write_bytes");
  ASSERT_LT(r_idx, reg.size());
  ASSERT_LT(w_idx, reg.size());
  const MetricsSnapshot& last = sampler->snapshots().back();
  EXPECT_DOUBLE_EQ(last.values[r_idx],
                   static_cast<double>(probe->total_read_bytes()));
  EXPECT_DOUBLE_EQ(last.values[w_idx],
                   static_cast<double>(probe->total_write_bytes()));
  EXPECT_GT(probe->total_read_bytes(), 0u);

  // Chrome export of the full run stays structurally sound.
  std::ostringstream os;
  cs->write_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  const std::vector<long long> ts = extract_ts(json);
  for (std::size_t i = 1; i < ts.size(); ++i) ASSERT_LE(ts[i - 1], ts[i]);

  // CSV time series: a header plus one line per snapshot.
  std::ostringstream csv;
  cs->write_metrics_csv(csv);
  std::size_t lines = 0;
  for (const char c : csv.str()) lines += c == '\n';
  EXPECT_EQ(lines, 1u + sampler->snapshots().size());
  EXPECT_EQ(csv.str().rfind("cycle,", 0), 0u);
}

TEST(ObserveIni, FaultTelemetryReachesRegistry) {
  auto cs = build_system(R"(
[system]
ports = 2
cycles = 10000

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
prot_timeout = 400

[ha0]
type = traffic
direction = write
burst = 16

[ha1]
type = traffic
direction = read
burst = 16

[fault0]
kind = stall_w
port = 0
start = 2000

[observe]
metrics = true
sample_every = 1000
)");
  cs->run();
  HyperConnect* hc = cs->soc().hyperconnect();
  ASSERT_NE(hc, nullptr);
  ASSERT_EQ(hc->faults_latched(), 1u);

  const MetricsSampler* sampler = cs->sampler();
  ASSERT_NE(sampler, nullptr);
  const MetricsRegistry& reg = sampler->registry();
  const MetricsSnapshot& last = sampler->snapshots().back();
  const std::size_t faulted = reg.find("hc.port0.faulted");
  const std::size_t count = reg.find("hc.port0.fault_count");
  const std::size_t total = reg.find("hc.faults_latched");
  ASSERT_LT(faulted, reg.size());
  ASSERT_LT(count, reg.size());
  ASSERT_LT(total, reg.size());
  EXPECT_DOUBLE_EQ(last.values[faulted], 1.0);
  EXPECT_DOUBLE_EQ(last.values[count], 1.0);
  EXPECT_DOUBLE_EQ(last.values[total], 1.0);
  // The healthy port never faulted.
  const std::size_t other = reg.find("hc.port1.fault_count");
  ASSERT_LT(other, reg.size());
  EXPECT_DOUBLE_EQ(last.values[other], 0.0);
}

TEST(ObserveIni, DisabledByDefaultCostsNothing) {
  auto cs = build_system(R"(
[system]
ports = 1
cycles = 2000

[ha0]
type = traffic
direction = read
burst = 16
)");
  cs->run();
  EXPECT_TRUE(cs->trace().events().empty());
  EXPECT_EQ(cs->sampler(), nullptr);
  EXPECT_EQ(cs->probe(), nullptr);
}

}  // namespace
}  // namespace axihc
