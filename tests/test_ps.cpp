// PS-side substrate tests: interrupt controller, HA control slave, SW-task
// offload loop — the §II software/accelerator interaction.
#include <gtest/gtest.h>

#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"
#include "mem/memory_controller.hpp"
#include "ps/ha_control_slave.hpp"
#include "ps/interrupt.hpp"
#include "ps/sw_task.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

TEST(InterruptControllerTest, RaiseAckLifecycle) {
  InterruptController irq(4);
  EXPECT_FALSE(irq.pending(2));
  irq.raise(2, 100);
  EXPECT_TRUE(irq.pending(2));
  EXPECT_FALSE(irq.pending(1));
  EXPECT_EQ(irq.ack(2), 100u);
  EXPECT_FALSE(irq.pending(2));
  EXPECT_EQ(irq.raised_count(2), 1u);
}

TEST(InterruptControllerTest, RaiseWhilePendingKeepsFirstTimestamp) {
  InterruptController irq(1);
  irq.raise(0, 10);
  irq.raise(0, 20);
  EXPECT_EQ(irq.ack(0), 10u);
  EXPECT_EQ(irq.raised_count(0), 2u);
}

TEST(InterruptControllerTest, OutOfRangeLineThrows) {
  InterruptController irq(2);
  EXPECT_THROW(irq.raise(2, 0), ModelError);
}

struct OffloadFixture : ::testing::Test {
  OffloadFixture()
      : data_link("data"),
        ctrl_link("ctrl"),
        irq(1),
        mem("ddr", data_link, store, mem_cfg()),
        dma("dma", data_link, dma_cfg()),
        slave("slave", ctrl_link, dma, irq, 0) {
    data_link.register_with(sim);
    ctrl_link.register_with(sim);
    sim.add(mem);
    sim.add(dma);
    sim.add(slave);
  }

  static MemoryControllerConfig mem_cfg() {
    MemoryControllerConfig c;
    c.row_hit_latency = 4;
    c.row_miss_latency = 8;
    return c;
  }

  static DmaConfig dma_cfg() {
    DmaConfig c;
    c.mode = DmaMode::kRead;
    c.bytes_per_job = 1024;
    c.burst_beats = 16;
    c.externally_triggered = true;
    return c;
  }

  Simulator sim;
  AxiLink data_link;
  AxiLink ctrl_link;
  BackingStore store;
  InterruptController irq;
  MemoryController mem;
  DmaEngine dma;
  HaControlSlave slave;
};

TEST_F(OffloadFixture, TriggeredHaIdlesUntilStarted) {
  sim.reset();
  sim.run(2000);
  EXPECT_EQ(dma.jobs_completed(), 0u);
  EXPECT_EQ(mem.reads_served(), 0u);
  EXPECT_FALSE(dma.busy());
}

TEST_F(OffloadFixture, ControlWriteStartsOneJobAndRaisesIrq) {
  sim.reset();
  AddrReq aw;
  aw.id = 1;
  aw.addr = hactrl::kCtrl;
  aw.beats = 1;
  ctrl_link.aw.push(aw);
  ctrl_link.w.push({1, 0xff, true});

  ASSERT_TRUE(sim.run_until([&] { return irq.pending(0); }, 10000));
  EXPECT_EQ(dma.jobs_completed(), 1u);
  EXPECT_FALSE(dma.busy());
  EXPECT_EQ(slave.jobs_completed(), 1u);
  // One job only — no self-re-arm.
  sim.run(2000);
  EXPECT_EQ(dma.jobs_completed(), 1u);
}

TEST_F(OffloadFixture, StatusRegisterReflectsBusyAndDone) {
  sim.reset();
  auto read_status = [&]() -> std::uint64_t {
    AddrReq ar;
    ar.id = 7;
    ar.addr = hactrl::kStatus;
    ar.beats = 1;
    ctrl_link.ar.push(ar);
    sim.run_until([&] { return ctrl_link.r.can_pop(); }, 100);
    return ctrl_link.r.pop().data;
  };
  EXPECT_EQ(read_status(), 0u);  // idle, no done

  AddrReq aw;
  aw.id = 1;
  aw.addr = hactrl::kCtrl;
  aw.beats = 1;
  ctrl_link.aw.push(aw);
  ctrl_link.w.push({1, 0xff, true});
  sim.run(20);
  EXPECT_EQ(read_status() & hactrl::kStatusBusy, hactrl::kStatusBusy);

  sim.run_until([&] { return !dma.busy(); }, 10000);
  sim.run(2);
  EXPECT_EQ(read_status() & hactrl::kStatusDone, hactrl::kStatusDone);

  // Clear the sticky done bit.
  aw.addr = hactrl::kDoneClr;
  ctrl_link.aw.push(aw);
  ctrl_link.w.push({0, 0xff, true});
  sim.run(10);
  EXPECT_EQ(read_status(), 0u);
}

TEST_F(OffloadFixture, SwTaskRunsTheFullLoop) {
  SwTaskConfig scfg;
  scfg.irq_line = 0;
  scfg.max_requests = 5;
  scfg.think_cycles = 50;
  scfg.irq_latency = 20;
  SwTask task("task", ctrl_link, irq, scfg);
  sim.add(task);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return task.finished(); }, 200000));
  EXPECT_EQ(task.requests_completed(), 5u);
  EXPECT_EQ(dma.jobs_completed(), 5u);
  EXPECT_EQ(irq.raised_count(0), 5u);
  // Response times include control-bus latency, the job itself (1 KB read
  // through memory), and the modelled interrupt latency.
  EXPECT_EQ(task.response_times().count(), 5u);
  EXPECT_GT(task.response_times().min(), 100u);
}

TEST(DnnOffload, OneFramePerStart) {
  Simulator sim;
  AxiLink data_link("data");
  AxiLink ctrl_link("ctrl");
  BackingStore store;
  MemoryController mem("ddr", data_link, store, {});
  InterruptController irq(1);

  DnnConfig dcfg;
  dcfg.layers = {{"l0", 2048, 512, 512, 20'000}};
  dcfg.macs_per_cycle = 100;
  dcfg.externally_triggered = true;
  DnnAccelerator dnn("dnn", data_link, dcfg);
  HaControlSlave slave("slave", ctrl_link, dnn, irq, 0);

  SwTaskConfig scfg;
  scfg.max_requests = 3;
  SwTask task("task", ctrl_link, irq, scfg);

  data_link.register_with(sim);
  ctrl_link.register_with(sim);
  sim.add(mem);
  sim.add(dnn);
  sim.add(slave);
  sim.add(task);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return task.finished(); }, 2'000'000));
  EXPECT_EQ(dnn.frames_completed(), 3u);
  EXPECT_EQ(task.requests_completed(), 3u);
  // Each frame includes the compute phase: response >= 200 cycles.
  EXPECT_GT(task.response_times().min(), 200u);
}

}  // namespace
}  // namespace axihc
