// IP-XACT export/import tests: XML round-trips and component descriptions.
#include "ipxact/ipxact.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ipxact/xml.hpp"

namespace axihc {
namespace {

TEST(Xml, EscapeRoundTrip) {
  EXPECT_EQ(xml_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
}

TEST(Xml, BuildAndSerialize) {
  XmlNode root("root");
  root.set_attribute("k", "v<1>");
  root.add_text_child("child", "text & more");
  const std::string s = root.to_string();
  EXPECT_NE(s.find("<root k=\"v&lt;1&gt;\">"), std::string::npos);
  EXPECT_NE(s.find("<child>text &amp; more</child>"), std::string::npos);
}

TEST(Xml, ParseSimpleDocument) {
  const auto root = parse_xml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- comment -->\n"
      "<a x=\"1\"><b>hello</b><b>world</b><c/></a>");
  EXPECT_EQ(root->tag(), "a");
  ASSERT_NE(root->attribute("x"), nullptr);
  EXPECT_EQ(*root->attribute("x"), "1");
  const auto bs = root->children_named("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->text(), "hello");
  EXPECT_EQ(bs[1]->text(), "world");
  EXPECT_NE(root->child("c"), nullptr);
}

TEST(Xml, ParseRejectsMalformed) {
  EXPECT_THROW(parse_xml("<a><b></a></b>"), ModelError);
  EXPECT_THROW(parse_xml("<a>"), ModelError);
  EXPECT_THROW(parse_xml("<a></a><b></b>"), ModelError);
}

TEST(Xml, SerializeParseRoundTrip) {
  XmlNode root("spirit:top");
  root.set_attribute("xmlns:spirit", "http://example.org");
  XmlNode& mid = root.add_child("spirit:mid");
  mid.add_text_child("spirit:leaf", "value with <specials> & \"quotes\"");
  const auto reparsed = parse_xml(root.to_string());
  EXPECT_EQ(reparsed->tag(), "spirit:top");
  const XmlNode* mid2 = reparsed->child("spirit:mid");
  ASSERT_NE(mid2, nullptr);
  EXPECT_EQ(mid2->child_text("spirit:leaf"),
            "value with <specials> & \"quotes\"");
}

TEST(Ipxact, HyperConnectDescriptionHasAllInterfaces) {
  HyperConnectConfig cfg;
  cfg.num_ports = 3;
  const IpxactComponent c = describe_hyperconnect(cfg);
  EXPECT_EQ(c.vlnv(), "sssa.it:interconnect:axi_hyperconnect:1.0");
  // 3 slave ports + 1 master + 1 control slave.
  ASSERT_EQ(c.bus_interfaces.size(), 5u);
  int masters = 0;
  int slaves = 0;
  for (const auto& i : c.bus_interfaces) {
    (i.mode == BusInterfaceMode::kMaster ? masters : slaves)++;
  }
  EXPECT_EQ(masters, 1);
  EXPECT_EQ(slaves, 4);
}

TEST(Ipxact, ParametersCaptureConfiguration) {
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 8;
  cfg.reservation_period = 1234;
  const IpxactComponent c = describe_hyperconnect(cfg);
  auto param = [&](const std::string& name) -> std::string {
    for (const auto& p : c.parameters) {
      if (p.name == name) return p.value;
    }
    return "";
  };
  EXPECT_EQ(param("NUM_PORTS"), "2");
  EXPECT_EQ(param("NOMINAL_BURST"), "8");
  EXPECT_EQ(param("RESERVATION_PERIOD"), "1234");
}

TEST(Ipxact, ExportImportRoundTrip) {
  HyperConnectConfig cfg;
  cfg.num_ports = 4;
  const IpxactComponent original = describe_hyperconnect(cfg);
  const std::string xml = to_ipxact_xml(original);
  const IpxactComponent reparsed = parse_ipxact_xml(xml);

  EXPECT_EQ(reparsed.vlnv(), original.vlnv());
  ASSERT_EQ(reparsed.bus_interfaces.size(), original.bus_interfaces.size());
  for (std::size_t i = 0; i < original.bus_interfaces.size(); ++i) {
    EXPECT_EQ(reparsed.bus_interfaces[i].name,
              original.bus_interfaces[i].name);
    EXPECT_EQ(reparsed.bus_interfaces[i].mode == BusInterfaceMode::kMaster,
              original.bus_interfaces[i].mode == BusInterfaceMode::kMaster);
    EXPECT_EQ(reparsed.bus_interfaces[i].bus_type,
              original.bus_interfaces[i].bus_type);
  }
  ASSERT_EQ(reparsed.parameters.size(), original.parameters.size());
  for (std::size_t i = 0; i < original.parameters.size(); ++i) {
    EXPECT_EQ(reparsed.parameters[i].name, original.parameters[i].name);
    EXPECT_EQ(reparsed.parameters[i].value, original.parameters[i].value);
  }
}

TEST(Ipxact, AcceleratorDescription) {
  const IpxactComponent c = describe_accelerator("chaidnn", "xilinx.com");
  EXPECT_EQ(c.name, "chaidnn");
  ASSERT_EQ(c.bus_interfaces.size(), 2u);
  EXPECT_EQ(c.bus_interfaces[0].mode == BusInterfaceMode::kMaster, true);
  EXPECT_EQ(c.bus_interfaces[1].bus_type, "aximm-lite");
}

TEST(Ipxact, ParseRejectsNonComponent) {
  EXPECT_THROW(parse_ipxact_xml("<foo></foo>"), ModelError);
}

}  // namespace
}  // namespace axihc
