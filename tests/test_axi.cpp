// AXI payload helper tests: burst arithmetic and 4KiB-boundary rules.
#include "axi/axi.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace axihc {
namespace {

AddrReq make_req(Addr addr, BeatCount beats, std::uint8_t size_log2 = 3,
                 BurstType burst = BurstType::kIncr) {
  AddrReq req;
  req.addr = addr;
  req.beats = beats;
  req.size_log2 = size_log2;
  req.burst = burst;
  return req;
}

TEST(AxiBurst, BytesForSingleBeat) {
  EXPECT_EQ(burst_bytes(make_req(0, 1)), 8u);
  EXPECT_EQ(burst_bytes(make_req(0, 1, 2)), 4u);
}

TEST(AxiBurst, BytesForFullBurst) {
  EXPECT_EQ(burst_bytes(make_req(0, 16)), 128u);
  EXPECT_EQ(burst_bytes(make_req(0, 256)), 2048u);
}

TEST(AxiBurst, EndAddressIncr) {
  EXPECT_EQ(burst_end(make_req(0x1000, 16)), 0x1080u);
}

TEST(AxiBurst, EndAddressFixedStaysAtOneBeat) {
  EXPECT_EQ(burst_end(make_req(0x1000, 16, 3, BurstType::kFixed)), 0x1008u);
}

TEST(AxiBurst, Crosses4kDetected) {
  EXPECT_FALSE(crosses_4k(make_req(0x0F80, 16)));   // ends exactly at 0x1000
  EXPECT_TRUE(crosses_4k(make_req(0x0F88, 16)));    // spills past 0x1000
  EXPECT_FALSE(crosses_4k(make_req(0x1000, 256)));  // 2KiB aligned inside 4KiB
  EXPECT_FALSE(crosses_4k(make_req(0x1800, 256)));  // ends exactly at 0x2000
  EXPECT_TRUE(crosses_4k(make_req(0x1808, 256)));   // spills into next page
}

TEST(AxiBurst, FixedNeverCrosses4k) {
  EXPECT_FALSE(crosses_4k(make_req(0x0FF8, 16, 3, BurstType::kFixed)));
}

TEST(AxiLink, ChannelsAreIndependent) {
  Simulator sim;
  AxiLink link("l");
  link.register_with(sim);
  sim.reset();

  link.ar.push(make_req(0x0, 4));
  link.r.push(RBeat{1, 0xabc, true, Resp::kOkay});
  link.b.push(BResp{2, Resp::kSlvErr});
  sim.step();

  EXPECT_TRUE(link.ar.can_pop());
  EXPECT_TRUE(link.r.can_pop());
  EXPECT_TRUE(link.b.can_pop());
  EXPECT_FALSE(link.aw.can_pop());
  EXPECT_FALSE(link.w.can_pop());

  EXPECT_EQ(link.r.front().data, 0xabcu);
  EXPECT_EQ(link.b.front().resp, Resp::kSlvErr);
}

TEST(AxiLink, ConfiguredDepthsApply) {
  AxiLinkConfig cfg;
  cfg.ar_depth = 1;
  cfg.w_depth = 2;
  AxiLink link("l", cfg);
  EXPECT_EQ(link.ar.capacity(), 1u);
  EXPECT_EQ(link.w.capacity(), 2u);
  EXPECT_EQ(link.r.capacity(), 32u);  // default
}

}  // namespace
}  // namespace axihc
