// Property-style parameterized tests: invariants that must hold across the
// configuration space (port counts, burst sizes, nominal bursts, budgets).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "axi/monitor.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

/// (num_ports, burst_beats, nominal_burst)
using HcParams = std::tuple<std::uint32_t, BeatCount, BeatCount>;

class HcPropertyTest : public ::testing::TestWithParam<HcParams> {};

TEST_P(HcPropertyTest, ProtocolCleanAndConserving) {
  // For any configuration: (1) per-HA protocol streams stay AXI-legal
  // through split/merge, (2) every byte requested is eventually delivered,
  // (3) memory-side sub-transactions tile HA transactions exactly.
  const auto [ports, burst, nominal] = GetParam();

  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = ports;
  cfg.nominal_burst = nominal;
  cfg.max_outstanding = 4;
  HyperConnect hc("hc", cfg);
  MemoryControllerConfig mc;
  mc.row_hit_latency = 4;
  mc.row_miss_latency = 8;
  MemoryController mem("ddr", hc.master_link(), store, mc);
  hc.register_with(sim);
  sim.add(mem);

  std::vector<std::unique_ptr<AxiLink>> ha_links;
  std::vector<std::unique_ptr<AxiMonitor>> monitors;
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  for (PortIndex p = 0; p < ports; ++p) {
    ha_links.push_back(std::make_unique<AxiLink>("ha" + std::to_string(p)));
    ha_links.back()->register_with(sim);
    monitors.push_back(std::make_unique<AxiMonitor>(
        "mon" + std::to_string(p), *ha_links.back(), hc.port_link(p)));
    monitors.back()->set_throw_on_violation(true);
    sim.add(*monitors.back());

    TrafficConfig t;
    t.direction = p % 2 == 0 ? TrafficDirection::kRead
                             : TrafficDirection::kMixed;
    t.burst_beats = burst;
    t.base = 0x4000'0000 + (static_cast<Addr>(p) << 24);
    t.max_transactions = 20;
    gens.push_back(std::make_unique<TrafficGenerator>(
        "g" + std::to_string(p), *ha_links.back(), t));
    sim.add(*gens.back());
  }
  sim.reset();

  ASSERT_TRUE(sim.run_until(
      [&] {
        for (const auto& g : gens) {
          if (!g->finished()) return false;
        }
        return true;
      },
      2'000'000));

  std::uint64_t total_requested_bytes = 0;
  std::uint64_t total_delivered_bytes = 0;
  for (PortIndex p = 0; p < ports; ++p) {
    EXPECT_TRUE(monitors[p]->clean());
    total_requested_bytes += 20ull * burst * 8;
    total_delivered_bytes +=
        gens[p]->stats().bytes_read + gens[p]->stats().bytes_written;
  }
  EXPECT_EQ(total_delivered_bytes, total_requested_bytes);

  // Memory-side sub-transaction beat conservation.
  std::uint64_t expected_beats = 0;
  for (const auto& g : gens) {
    expected_beats +=
        (g->stats().bytes_read + g->stats().bytes_written) / 8;
  }
  EXPECT_EQ(mem.beats_served(), expected_beats);

  // Sub-transaction count: each HA burst becomes ceil(burst/nominal) subs.
  if (nominal != 0) {
    const auto subs_per_txn = (burst + nominal - 1) / nominal;
    std::uint64_t granted = 0;
    for (PortIndex p = 0; p < ports; ++p) {
      granted += hc.counters(p).ar_granted + hc.counters(p).aw_granted;
    }
    EXPECT_EQ(granted, 20ull * ports * subs_per_txn);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, HcPropertyTest,
    ::testing::Combine(::testing::Values<std::uint32_t>(1, 2, 3, 4),
                       ::testing::Values<BeatCount>(1, 4, 16, 64),
                       ::testing::Values<BeatCount>(4, 16)),
    [](const auto& param_info) {
      return "p" + std::to_string(std::get<0>(param_info.param)) + "_b" +
             std::to_string(std::get<1>(param_info.param)) + "_n" +
             std::to_string(std::get<2>(param_info.param));
    });

class BudgetPropertyTest
    : public ::testing::TestWithParam<std::tuple<Cycle, std::uint32_t>> {};

TEST_P(BudgetPropertyTest, BudgetBoundHoldsForAnyPeriod) {
  const auto [period, budget] = GetParam();
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.reservation_period = period;
  cfg.initial_budgets = {budget, budget};
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 16;
  TrafficGenerator g0("g0", hc.port_link(0), t);
  TrafficGenerator g1("g1", hc.port_link(1), t);
  sim.add(g0);
  sim.add(g1);
  sim.reset();

  std::uint64_t prev0 = 0;
  std::uint64_t prev1 = 0;
  for (int w = 0; w < 8; ++w) {
    sim.run(period);
    const auto c0 = hc.supervisor(0).subtransactions_issued();
    const auto c1 = hc.supervisor(1).subtransactions_issued();
    EXPECT_LE(c0 - prev0, budget);
    EXPECT_LE(c1 - prev1, budget);
    prev0 = c0;
    prev1 = c1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PeriodSweep, BudgetPropertyTest,
    ::testing::Combine(::testing::Values<Cycle>(100, 500, 1024, 4096),
                       ::testing::Values<std::uint32_t>(1, 3, 8, 100)));

TEST(DeterminismProperty, IdenticalRunsAcrossPortCounts) {
  for (std::uint32_t ports : {1u, 2u, 4u}) {
    auto run_once = [ports] {
      Simulator sim;
      BackingStore store;
      HyperConnectConfig cfg;
      cfg.num_ports = ports;
      HyperConnect hc("hc", cfg);
      MemoryController mem("ddr", hc.master_link(), store, {});
      hc.register_with(sim);
      sim.add(mem);
      std::vector<std::unique_ptr<TrafficGenerator>> gens;
      for (PortIndex p = 0; p < ports; ++p) {
        TrafficConfig t;
        t.direction = TrafficDirection::kMixed;
        t.burst_beats = 8;
        gens.push_back(std::make_unique<TrafficGenerator>(
            "g" + std::to_string(p), hc.port_link(p), t));
        sim.add(*gens.back());
      }
      sim.reset();
      sim.run(30000);
      std::vector<std::uint64_t> out;
      for (const auto& g : gens) {
        out.push_back(g->stats().bytes_read);
        out.push_back(g->stats().bytes_written);
      }
      return out;
    };
    EXPECT_EQ(run_once(), run_once()) << "ports=" << ports;
  }
}

}  // namespace
}  // namespace axihc
