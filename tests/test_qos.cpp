// QoS-priority arbitration extension tests: the opt-in EXBAR policy that
// honours AxQOS (which SmartConnect ignores, PG247 p.6).
#include <gtest/gtest.h>

#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct QosFixture {
  explicit QosFixture(ArbitrationPolicy policy,
                      Cycle reservation_period = 0,
                      std::vector<std::uint32_t> budgets = {}) {
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    cfg.arbitration = policy;
    // Keep the route memory short so the arbitration decision (not the
    // FIFO backlog of already-granted transactions at the in-order memory
    // controller) determines who gets served: with a deep route memory a
    // strict-priority grant still waits behind dozens of earlier grants.
    cfg.route_capacity = 4;
    cfg.max_outstanding = 8;
    cfg.reservation_period = reservation_period;
    cfg.initial_budgets = std::move(budgets);
    hc = std::make_unique<HyperConnect>("hc", cfg);
    mem = std::make_unique<MemoryController>("ddr", hc->master_link(), store,
                                             MemoryControllerConfig{});
    hc->register_with(sim);
    sim.add(*mem);
  }

  TrafficGenerator& add_generator(PortIndex port, std::uint8_t qos) {
    TrafficConfig t;
    t.direction = TrafficDirection::kRead;
    t.burst_beats = 16;
    t.base = 0x4000'0000 + (static_cast<Addr>(port) << 24);
    t.qos = qos;
    gens.push_back(std::make_unique<TrafficGenerator>(
        "g" + std::to_string(port), hc->port_link(port), t));
    sim.add(*gens.back());
    return *gens.back();
  }

  Simulator sim;
  BackingStore store;
  std::unique_ptr<HyperConnect> hc;
  std::unique_ptr<MemoryController> mem;
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
};

TEST(QosArbitration, HighQosDominatesUnderPriorityPolicy) {
  QosFixture f(ArbitrationPolicy::kQosPriority);
  auto& low = f.add_generator(0, 1);
  auto& high = f.add_generator(1, 8);
  f.sim.reset();
  f.sim.run(50000);
  const double lo = static_cast<double>(low.stats().bytes_read);
  const double hi = static_cast<double>(high.stats().bytes_read);
  ASSERT_GT(hi, 0);
  // Strict priority: the low-QoS master is starved down to the slack left
  // by the high-QoS master's outstanding limit.
  EXPECT_GT(hi / (lo + hi), 0.9);
}

TEST(QosArbitration, RoundRobinPolicyIgnoresQos) {
  QosFixture f(ArbitrationPolicy::kRoundRobin);
  auto& low = f.add_generator(0, 1);
  auto& high = f.add_generator(1, 8);
  f.sim.reset();
  f.sim.run(50000);
  const double lo = static_cast<double>(low.stats().bytes_read);
  const double hi = static_cast<double>(high.stats().bytes_read);
  EXPECT_NEAR(hi / (lo + hi), 0.5, 0.05);
}

TEST(QosArbitration, EqualQosDegeneratesToRoundRobin) {
  QosFixture f(ArbitrationPolicy::kQosPriority);
  auto& a = f.add_generator(0, 4);
  auto& b = f.add_generator(1, 4);
  f.sim.reset();
  f.sim.run(50000);
  const double x = static_cast<double>(a.stats().bytes_read);
  const double y = static_cast<double>(b.stats().bytes_read);
  EXPECT_NEAR(x / (x + y), 0.5, 0.05);
}

TEST(QosArbitration, ReservationBoundsQosStarvation) {
  // The documented pairing: priority arbitration + reservation. The
  // high-QoS master is budget-capped, so the low-QoS master keeps a
  // guaranteed share despite strict priority.
  QosFixture f(ArbitrationPolicy::kQosPriority, /*period=*/2000,
               /*budgets=*/{30, 30});
  auto& low = f.add_generator(0, 1);
  auto& high = f.add_generator(1, 8);
  f.sim.reset();
  f.sim.run(100000);
  const double lo = static_cast<double>(low.stats().bytes_read);
  const double hi = static_cast<double>(high.stats().bytes_read);
  ASSERT_GT(lo + hi, 0);
  // Equal budgets: both get their 30 txns/window regardless of priority.
  EXPECT_NEAR(lo / (lo + hi), 0.5, 0.07);
}

}  // namespace
}  // namespace axihc
