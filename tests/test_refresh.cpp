// DRAM refresh model (tREFI/tRFC) and its worst-case analysis term.
#include <gtest/gtest.h>

#include "analysis/wcla.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

MemoryControllerConfig refresh_cfg() {
  MemoryControllerConfig c;
  c.row_hit_latency = 4;
  c.row_miss_latency = 10;
  c.refresh_period = 200;
  c.refresh_duration = 20;
  return c;
}

TEST(Refresh, BlocksServiceDuringWindow) {
  Simulator sim;
  AxiLink link("l");
  BackingStore store;
  MemoryController mem("ddr", link, store, refresh_cfg());
  link.register_with(sim);
  sim.add(mem);
  sim.reset();

  // Greedy single-beat reads; throughput loses ~10% (20/200) plus the
  // cold-row penalty after each refresh closes the rows.
  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 1;
  t.region_bytes = 64;  // one row: all hits between refreshes
  TrafficGenerator gen("gen", link, t);
  sim.add(gen);
  sim.reset();
  sim.run(10000);
  EXPECT_EQ(mem.refreshes(), 50u);  // every 200 cycles

  // Compare against a refresh-free run.
  Simulator sim2;
  AxiLink link2("l2");
  BackingStore store2;
  MemoryControllerConfig no_refresh = refresh_cfg();
  no_refresh.refresh_period = 0;
  MemoryController mem2("ddr2", link2, store2, no_refresh);
  TrafficGenerator gen2("gen2", link2, t);
  link2.register_with(sim2);
  sim2.add(mem2);
  sim2.add(gen2);
  sim2.reset();
  sim2.run(10000);

  EXPECT_LT(gen.stats().reads_completed, gen2.stats().reads_completed);
  EXPECT_GT(gen.stats().reads_completed,
            gen2.stats().reads_completed * 8 / 10);
}

TEST(Refresh, ClosesOpenRows) {
  Simulator sim;
  AxiLink link("l");
  BackingStore store;
  MemoryController mem("ddr", link, store, refresh_cfg());
  link.register_with(sim);
  sim.add(mem);
  sim.reset();

  // Two accesses to the same row, straddling a refresh: both miss.
  AddrReq a;
  a.id = 1;
  a.addr = 0x0;
  a.beats = 1;
  link.ar.push(a);
  sim.run_until([&] { return link.r.can_pop(); }, 300);
  link.r.pop();
  // Skip past the next refresh window.
  while (sim.now() % 200 != 25) sim.step();
  a.id = 2;
  link.ar.push(a);
  sim.run_until([&] { return link.r.can_pop(); }, 300);
  EXPECT_EQ(mem.row_misses(), 2u);
  EXPECT_EQ(mem.row_hits(), 0u);
}

TEST(Refresh, WithRefreshBoundFixedPoint) {
  AnalysisPlatform p;
  p.refresh_period = 100;
  p.refresh_duration = 10;
  // A 0-cycle span needs no refresh slack.
  EXPECT_EQ(with_refresh(p, 0), 0u);
  // A 50-cycle span can overlap one refresh: 50 + 10 = 60.
  EXPECT_EQ(with_refresh(p, 50), 60u);
  // A 95-cycle span: +10 -> 105, which spans two intervals -> +20 = 115.
  EXPECT_EQ(with_refresh(p, 95), 115u);
  // Refresh disabled: identity.
  AnalysisPlatform off;
  EXPECT_EQ(with_refresh(off, 1234), 1234u);
}

TEST(Refresh, WcrtBoundDominatesObservedWorstCaseWithRefresh) {
  // The headline soundness check, now with refresh enabled end to end.
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  cfg.max_outstanding = 4;
  HyperConnect hc("hc", cfg);
  MemoryControllerConfig mc;
  mc.row_hit_latency = 10;
  mc.row_miss_latency = 24;
  mc.refresh_period = 500;
  mc.refresh_duration = 40;
  MemoryController mem("ddr", hc.master_link(), store, mc);
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig vcfg;
  vcfg.direction = TrafficDirection::kRead;
  vcfg.burst_beats = 16;
  vcfg.gap_cycles = 93;
  vcfg.max_outstanding = 1;
  vcfg.base = 0x4000'0000;
  TrafficGenerator victim("victim", hc.port_link(0), vcfg);
  TrafficConfig acfg;
  acfg.direction = TrafficDirection::kRead;
  acfg.burst_beats = 16;
  acfg.base = 0x6000'0000;
  TrafficGenerator adversary("adv", hc.port_link(1), acfg);
  sim.add(victim);
  sim.add(adversary);
  sim.reset();
  sim.run(300000);
  ASSERT_GT(victim.stats().read_latency.count(), 0u);
  const Cycle observed = victim.stats().read_latency.max();

  HcAnalysisConfig a;
  a.num_ports = 2;
  a.nominal_burst = 16;
  a.competitor_backlog = 4;
  AnalysisPlatform p;
  p.mem_latency = mc.row_miss_latency;
  p.turnaround = mc.turnaround;
  p.refresh_period = mc.refresh_period;
  p.refresh_duration = mc.refresh_duration;
  const Cycle bound = wcrt_read(a, p, 0, 16);
  EXPECT_LE(observed, bound);

  // And the refresh term matters: the refresh-free bound may be exceeded.
  AnalysisPlatform p_no_refresh = p;
  p_no_refresh.refresh_period = 0;
  EXPECT_GT(bound, wcrt_read(a, p_no_refresh, 0, 16));
}

}  // namespace
}  // namespace axihc
