// Transaction Supervisor unit tests: burst equalization (split/merge),
// outstanding limiting and budget accounting — exercised directly against
// the TS logic, without the rest of the interconnect.
#include "hyperconnect/transaction_supervisor.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct TsFixture : ::testing::Test {
  TsFixture()
      : link("l"), fifo(link), ts_ar("ts_ar", 8), ts_aw("ts_aw", 8),
        ts(0, rt) {
    rt.nominal_burst = 16;
    rt.max_outstanding = 4;
    rt.reservation_period = 0;
    rt.budgets = {0};
    rt.coupled = {true};
    link.register_with(sim);
    sim.add(ts_ar);
    sim.add(ts_aw);
    sim.reset();
  }

  /// One TS issue step + channel commit (like one HyperConnect cycle).
  void step_read(std::uint32_t& budget) {
    ts.tick_read_issue(fifo, ts_ar, budget);
    sim.step();
  }
  void step_write(std::uint32_t& budget) {
    ts.tick_write_issue(fifo, ts_aw, budget);
    sim.step();
  }

  AddrReq make_read(Addr addr, BeatCount beats) {
    AddrReq r;
    r.id = 5;
    r.addr = addr;
    r.beats = beats;
    return r;
  }

  HcRuntime rt;
  Simulator sim;
  AxiLink link;
  Efifo fifo;
  TimingChannel<AddrReq> ts_ar;
  TimingChannel<AddrReq> ts_aw;
  TransactionSupervisor ts;
};

TEST_F(TsFixture, ShortBurstPassesUnsplit) {
  std::uint32_t budget = 0;
  link.ar.push(make_read(0x1000, 8));
  sim.step();
  step_read(budget);  // pop AR, issue sub
  ASSERT_TRUE(ts_ar.can_pop());
  const AddrReq sub = ts_ar.pop();
  EXPECT_EQ(sub.beats, 8u);
  EXPECT_EQ(sub.addr, 0x1000u);
  EXPECT_EQ(sub.tag, 1u);  // final
  EXPECT_EQ(ts.subtransactions_issued(), 1u);
}

TEST_F(TsFixture, LongBurstSplitsToNominal) {
  std::uint32_t budget = 0;
  link.ar.push(make_read(0x2000, 64));  // 4 x 16-beat subs
  sim.step();
  std::vector<AddrReq> subs;
  for (int i = 0; i < 10 && subs.size() < 4; ++i) {
    step_read(budget);
    while (ts_ar.can_pop()) subs.push_back(ts_ar.pop());
  }
  ASSERT_EQ(subs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(subs[i].beats, 16u);
    EXPECT_EQ(subs[i].addr, 0x2000u + i * 16 * 8);
    EXPECT_EQ(subs[i].id, 5u);  // original id preserved
    EXPECT_EQ(subs[i].tag, i == 3 ? 1u : 0u);
  }
}

TEST_F(TsFixture, UnevenSplitKeepsRemainder) {
  std::uint32_t budget = 0;
  link.ar.push(make_read(0x0, 20));  // 16 + 4
  sim.step();
  std::vector<AddrReq> subs;
  for (int i = 0; i < 10 && subs.size() < 2; ++i) {
    step_read(budget);
    while (ts_ar.can_pop()) subs.push_back(ts_ar.pop());
  }
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].beats, 16u);
  EXPECT_EQ(subs[1].beats, 4u);
  EXPECT_EQ(subs[1].tag, 1u);
}

TEST_F(TsFixture, EqualizationOffPassesFullBurst) {
  rt.nominal_burst = 0;
  std::uint32_t budget = 0;
  link.ar.push(make_read(0x0, 200));
  sim.step();
  step_read(budget);
  ASSERT_TRUE(ts_ar.can_pop());
  EXPECT_EQ(ts_ar.pop().beats, 200u);
}

TEST_F(TsFixture, WrapBurstsNeverSplit) {
  std::uint32_t budget = 0;
  AddrReq wrap = make_read(0x0, 16);
  wrap.burst = BurstType::kWrap;
  rt.nominal_burst = 4;
  link.ar.push(wrap);
  sim.step();
  step_read(budget);
  ASSERT_TRUE(ts_ar.can_pop());
  EXPECT_EQ(ts_ar.pop().beats, 16u);
}

TEST_F(TsFixture, FixedBurstSplitsKeepAddress) {
  std::uint32_t budget = 0;
  AddrReq fixed = make_read(0x3000, 32);
  fixed.burst = BurstType::kFixed;
  link.ar.push(fixed);
  sim.step();
  std::vector<AddrReq> subs;
  for (int i = 0; i < 10 && subs.size() < 2; ++i) {
    step_read(budget);
    while (ts_ar.can_pop()) subs.push_back(ts_ar.pop());
  }
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].addr, 0x3000u);
  EXPECT_EQ(subs[1].addr, 0x3000u);  // FIXED: address does not advance
}

TEST_F(TsFixture, OutstandingLimitStallsIssue) {
  rt.max_outstanding = 2;
  std::uint32_t budget = 0;
  link.ar.push(make_read(0x0, 64));  // wants 4 subs
  sim.step();
  for (int i = 0; i < 10; ++i) {
    ts.tick_read_issue(fifo, ts_ar, budget);
    sim.step();
  }
  // Only 2 subs issued until R data retires them.
  EXPECT_EQ(ts.reads_outstanding(), 2u);
  EXPECT_EQ(ts.subtransactions_issued(), 2u);

  // Retire one sub-burst: last beat of the first sub.
  RBeat beat;
  beat.id = 5;
  beat.last = true;
  const RBeat merged = ts.process_r_beat(beat);
  EXPECT_FALSE(merged.last) << "intermediate sub-burst must clear RLAST";
  EXPECT_EQ(ts.reads_outstanding(), 1u);

  ts.tick_read_issue(fifo, ts_ar, budget);
  EXPECT_EQ(ts.subtransactions_issued(), 3u);
}

TEST_F(TsFixture, RMergeKeepsLastOnlyOnFinalSub) {
  std::uint32_t budget = 0;
  link.ar.push(make_read(0x0, 32));  // 2 subs
  sim.step();
  for (int i = 0; i < 5; ++i) step_read(budget);
  ASSERT_EQ(ts.subtransactions_issued(), 2u);

  RBeat mid;
  mid.id = 5;
  mid.last = false;
  EXPECT_FALSE(ts.process_r_beat(mid).last);

  RBeat end_sub1;
  end_sub1.id = 5;
  end_sub1.last = true;
  EXPECT_FALSE(ts.process_r_beat(end_sub1).last);

  RBeat end_sub2;
  end_sub2.id = 5;
  end_sub2.last = true;
  EXPECT_TRUE(ts.process_r_beat(end_sub2).last);
}

TEST_F(TsFixture, BMergeForwardsOnlyFinalSub) {
  std::uint32_t budget = 0;
  AddrReq aw = make_read(0x0, 48);  // 3 subs
  link.aw.push(aw);
  sim.step();
  for (int i = 0; i < 6; ++i) step_write(budget);
  ASSERT_EQ(ts.writes_outstanding(), 3u);

  BResp resp;
  resp.id = 5;
  EXPECT_FALSE(ts.process_b(resp));
  EXPECT_FALSE(ts.process_b(resp));
  EXPECT_TRUE(ts.process_b(resp));
  EXPECT_EQ(ts.writes_outstanding(), 0u);
}

TEST_F(TsFixture, BudgetConsumedPerSubTransaction) {
  rt.reservation_period = 1000;  // reservation active
  std::uint32_t budget = 3;
  link.ar.push(make_read(0x0, 64));  // wants 4 subs, budget only 3
  sim.step();
  for (int i = 0; i < 10; ++i) step_read(budget);
  EXPECT_EQ(ts.subtransactions_issued(), 3u);
  EXPECT_EQ(budget, 0u);

  // Recharge: the fourth sub can now go.
  budget = 3;
  step_read(budget);
  EXPECT_EQ(ts.subtransactions_issued(), 4u);
  EXPECT_EQ(budget, 2u);
}

TEST_F(TsFixture, GlobalDisableBlocksIssue) {
  rt.global_enable = false;
  std::uint32_t budget = 0;
  link.ar.push(make_read(0x0, 8));
  sim.step();
  step_read(budget);
  EXPECT_FALSE(ts_ar.can_pop());
  EXPECT_EQ(ts.subtransactions_issued(), 0u);
}

TEST_F(TsFixture, ProcessRWithoutPendingThrows) {
  RBeat beat;
  beat.last = true;
  EXPECT_THROW(static_cast<void>(ts.process_r_beat(beat)), ModelError);
}

class TsSplitSweep
    : public ::testing::TestWithParam<std::tuple<BeatCount, BeatCount>> {};

TEST_P(TsSplitSweep, SubBurstsCoverOriginalExactly) {
  // Property: for any (burst length, nominal), the sub-bursts tile the
  // original address range exactly, each <= nominal, only the final one
  // tagged.
  const auto [beats, nominal] = GetParam();
  HcRuntime rt;
  rt.nominal_burst = nominal;
  rt.max_outstanding = 1000;
  rt.budgets = {0};
  rt.coupled = {true};

  Simulator sim;
  AxiLink link("l");
  Efifo fifo(link);
  TimingChannel<AddrReq> out("out", 512);
  TransactionSupervisor ts(0, rt);
  link.register_with(sim);
  sim.add(out);
  sim.reset();

  AddrReq req;
  req.addr = 0x8000;
  req.beats = beats;
  link.ar.push(req);
  sim.step();

  std::uint32_t budget = 0;
  std::vector<AddrReq> subs;
  for (int i = 0; i < 600 && (subs.empty() || subs.back().tag != 1); ++i) {
    ts.tick_read_issue(fifo, out, budget);
    sim.step();
    while (out.can_pop()) subs.push_back(out.pop());
  }
  ASSERT_FALSE(subs.empty());
  Addr expect_addr = 0x8000;
  BeatCount total = 0;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(subs[i].addr, expect_addr);
    EXPECT_LE(subs[i].beats, nominal == 0 ? beats : nominal);
    EXPECT_EQ(subs[i].tag != 0, i + 1 == subs.size());
    expect_addr += std::uint64_t{subs[i].beats} * 8;
    total += subs[i].beats;
  }
  EXPECT_EQ(total, beats);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TsSplitSweep,
    ::testing::Combine(::testing::Values<BeatCount>(1, 4, 15, 16, 17, 64, 100,
                                                    256),
                       ::testing::Values<BeatCount>(1, 4, 16, 64)));

}  // namespace
}  // namespace axihc
