// Hypervisor layer tests: domain management, reservation planning, the
// watchdog that detects and decouples misbehaving HAs, and the integrator.
#include "hypervisor/hypervisor.hpp"

#include <gtest/gtest.h>

#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "hypervisor/integrator.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

TEST(ReservationPlan, SplitsCapacityByFraction) {
  const ReservationPlan plan =
      plan_bandwidth_split(1000, 20.0, {0.9, 0.1});
  EXPECT_EQ(plan.period, 1000u);
  ASSERT_EQ(plan.budgets.size(), 2u);
  EXPECT_EQ(plan.budgets[0], 45u);  // 0.9 * 50
  EXPECT_EQ(plan.budgets[1], 5u);
}

TEST(ReservationPlan, RejectsOverCommit) {
  EXPECT_THROW(plan_bandwidth_split(1000, 20.0, {0.8, 0.3}), ModelError);
  EXPECT_THROW(plan_bandwidth_split(1000, 20.0, {-0.1}), ModelError);
}

struct HvFixture : ::testing::Test {
  HvFixture()
      : hc("hc", two_ports()),
        mem("ddr", hc.master_link(), store, {}),
        rm("rm", hc.control_link()),
        driver(rm, 2),
        hv("hv", driver) {
    hc.register_with(sim);
    sim.add(mem);
    sim.add(rm);
    sim.add(hv);
  }

  static HyperConnectConfig two_ports() {
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    return cfg;
  }

  Simulator sim;
  BackingStore store;
  HyperConnect hc;
  MemoryController mem;
  RegisterMaster rm;
  HyperConnectDriver driver;
  Hypervisor hv;
};

TEST_F(HvFixture, DomainsRejectPortDoubleBooking) {
  hv.add_domain({"critical", Criticality::kHigh, {0}, 0.9});
  EXPECT_THROW(hv.add_domain({"other", Criticality::kLow, {0}, 0.1}),
               ModelError);
}

TEST_F(HvFixture, ConfigureReservationProgramsHardware) {
  hv.add_domain({"critical", Criticality::kHigh, {0}, 0.8});
  hv.add_domain({"best-effort", Criticality::kLow, {1}, 0.2});
  sim.reset();
  hv.configure_reservation(/*period=*/1000, /*cycles_per_txn=*/25.0);
  ASSERT_TRUE(sim.run_until([&] { return driver.idle(); }, 10000));
  EXPECT_EQ(hc.runtime().reservation_period, 1000u);
  EXPECT_EQ(hc.runtime().budgets[0], 32u);  // 0.8 * 40
  EXPECT_EQ(hc.runtime().budgets[1], 8u);
}

TEST_F(HvFixture, IsolateAndRestoreDomain) {
  const auto idx = hv.add_domain({"dom", Criticality::kLow, {0, 1}, 0.5});
  sim.reset();
  hv.isolate_domain(idx);
  ASSERT_TRUE(sim.run_until([&] { return driver.idle(); }, 10000));
  EXPECT_FALSE(hc.runtime().coupled[0]);
  EXPECT_FALSE(hc.runtime().coupled[1]);
  EXPECT_TRUE(hv.port_isolated(0));

  hv.restore_domain(idx);
  ASSERT_TRUE(sim.run_until([&] { return driver.idle(); }, 10000));
  EXPECT_TRUE(hc.runtime().coupled[0]);
  EXPECT_FALSE(hv.port_isolated(1));
}

TEST_F(HvFixture, WatchdogDecouplesMisbehavingHa) {
  // Port 0 is policed to 10 transactions per 2000-cycle poll; a greedy
  // generator blows through that and must be auto-decoupled.
  hv.add_domain({"greedy", Criticality::kLow, {0}, 0.5});
  hv.add_domain({"calm", Criticality::kHigh, {1}, 0.5});
  WatchdogPolicy policy;
  policy.poll_period = 2000;
  policy.max_txns_per_poll = {10, 0};  // port 1 unlimited
  policy.auto_isolate = true;
  hv.set_watchdog(policy);

  TrafficConfig greedy;
  greedy.direction = TrafficDirection::kRead;
  greedy.burst_beats = 16;
  TrafficGenerator gen("gen", hc.port_link(0), greedy);
  sim.add(gen);
  sim.reset();

  sim.run(20000);
  ASSERT_FALSE(hv.isolation_events().empty());
  EXPECT_EQ(hv.isolation_events()[0].port, 0u);
  EXPECT_GT(hv.isolation_events()[0].observed_txns, 10u);
  EXPECT_TRUE(hv.port_isolated(0));
  EXPECT_FALSE(hc.runtime().coupled[0]);

  // Once cut off, the generator makes no further progress.
  const auto completed = gen.stats().reads_completed;
  sim.run(10000);
  EXPECT_LE(gen.stats().reads_completed, completed + 1);
}

TEST_F(HvFixture, WatchdogLeavesCompliantHaAlone) {
  hv.add_domain({"calm", Criticality::kHigh, {0}, 0.5});
  WatchdogPolicy policy;
  policy.poll_period = 2000;
  policy.max_txns_per_poll = {1000, 0};
  hv.set_watchdog(policy);

  TrafficConfig slow;
  slow.direction = TrafficDirection::kRead;
  slow.burst_beats = 4;
  slow.gap_cycles = 100;
  TrafficGenerator gen("gen", hc.port_link(0), slow);
  sim.add(gen);
  sim.reset();

  sim.run(30000);
  EXPECT_TRUE(hv.isolation_events().empty());
  EXPECT_FALSE(hv.port_isolated(0));
  EXPECT_GT(gen.stats().reads_completed, 0u);
}

TEST(Integrator, AssignsPortsAndGroupsDomains) {
  SystemIntegrator integrator;
  integrator.add_accelerator({describe_accelerator("dnn", "xilinx.com"),
                              "vision", Criticality::kHigh, 0.7});
  integrator.add_accelerator({describe_accelerator("dma", "xilinx.com"),
                              "logging", Criticality::kLow, 0.3});
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  const SocDesign design = integrator.integrate(cfg);

  ASSERT_EQ(design.port_assignment.size(), 2u);
  EXPECT_EQ(design.port_assignment[0], "dnn");
  EXPECT_EQ(design.port_assignment[1], "dma");
  ASSERT_EQ(design.domains.size(), 2u);
  EXPECT_EQ(design.domains[0].name, "vision");
  EXPECT_EQ(design.domains[0].ports, (std::vector<PortIndex>{0}));
  EXPECT_DOUBLE_EQ(design.domains[0].bandwidth_fraction, 0.7);
  EXPECT_EQ(design.interconnect.name, "axi_hyperconnect");
}

TEST(Integrator, RejectsTooManyAccelerators) {
  SystemIntegrator integrator;
  for (int i = 0; i < 3; ++i) {
    integrator.add_accelerator({describe_accelerator("ha" + std::to_string(i),
                                                     "v"),
                                "d", Criticality::kLow, 0.1});
  }
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  EXPECT_THROW(integrator.integrate(cfg), ModelError);
}

TEST(Integrator, RejectsAcceleratorWithoutMasterPort) {
  SystemIntegrator integrator;
  IpxactComponent bad;
  bad.name = "slave-only";
  bad.bus_interfaces.push_back({"S_AXI", BusInterfaceMode::kSlave, "aximm"});
  EXPECT_THROW(
      integrator.add_accelerator({bad, "d", Criticality::kLow, 0.1}),
      ModelError);
}

TEST(Integrator, RejectsOverCommittedBandwidth) {
  SystemIntegrator integrator;
  integrator.add_accelerator(
      {describe_accelerator("a", "v"), "d1", Criticality::kLow, 0.8});
  integrator.add_accelerator(
      {describe_accelerator("b", "v"), "d2", Criticality::kLow, 0.4});
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  EXPECT_THROW(integrator.integrate(cfg), ModelError);
}

}  // namespace
}  // namespace axihc
