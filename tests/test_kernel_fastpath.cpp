// Kernel fast-path determinism: the activity-aware fast-forward and the
// ring-buffer channels must be invisible to every observable of a run.
//
// The scenario is deliberately hostile to shortcuts: a DNN accelerator and
// two DMA engines contend on a 3-port HyperConnect under a bandwidth
// reservation plan (budget-exhausted ports are exactly the stretches the
// kernel fast-forwards across), with an APM-style bandwidth probe, a metrics
// sampler and the typed event trace all attached. The run is executed twice
// — fast-forward on (the default) and forced naive stepping — and every
// observable must be bit-identical: final cycle, per-frame/per-job
// completion cycles, interconnect counters, memory counters, probe window
// series, sampled metric series, and the full trace-event stream.
#include <gtest/gtest.h>

#include <vector>

#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"
#include "hypervisor/domain.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"
#include "soc/soc.hpp"
#include "stats/bandwidth_probe.hpp"

namespace axihc {
namespace {

DnnConfig small_dnn() {
  DnnConfig cfg;
  cfg.layers = googlenet_layers();
  for (auto& l : cfg.layers) {
    l.weight_bytes /= 256;
    l.ifmap_bytes /= 256;
    l.ofmap_bytes /= 256;
    l.macs /= 256;
  }
  cfg.macs_per_cycle = 256;
  cfg.burst_beats = 16;
  cfg.max_outstanding = 4;
  cfg.max_frames = 1;
  return cfg;
}

DmaConfig small_dma(Addr base) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kReadWrite;
  cfg.bytes_per_job = 64 << 10;
  cfg.read_base = base;
  cfg.write_base = base + (1u << 20);
  cfg.burst_beats = 16;
  cfg.max_outstanding = 8;
  cfg.max_jobs = 0;  // loop forever; the run_until predicate bounds it
  return cfg;
}

struct RunOutcome {
  bool done = false;
  Cycle final_cycle = 0;
  std::vector<Cycle> dnn_frames;
  std::vector<Cycle> dma0_jobs;
  std::vector<Cycle> dma1_jobs;
  std::vector<std::uint64_t> icn_counters;
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
  std::uint64_t mem_beats = 0;
  std::uint64_t mem_busy = 0;
  std::uint64_t recharges = 0;
  std::vector<std::uint64_t> probe_read_windows;
  std::vector<std::uint64_t> probe_write_windows;
  std::vector<MetricsSnapshot> samples;
  std::vector<TraceEvent> trace_events;
};

RunOutcome run_scenario(bool fast_forward) {
  SocConfig cfg;
  cfg.kind = InterconnectKind::kHyperConnect;
  cfg.num_ports = 3;
  const ReservationPlan plan =
      plan_bandwidth_split(2000, 27.0, {0.6, 0.3, 0.1});
  cfg.hc.num_ports = 3;
  cfg.hc.reservation_period = plan.period;
  cfg.hc.initial_budgets = plan.budgets;
  cfg.mem.row_hit_latency = 10;
  cfg.mem.row_miss_latency = 24;
  cfg.mem.turnaround = 1;
  SocSystem soc(cfg);
  soc.sim().set_fast_forward(fast_forward);

  DnnAccelerator dnn("dnn", soc.port(0), small_dnn());
  DmaEngine dma0("dma0", soc.port(1), small_dma(0x4000'0000));
  DmaEngine dma1("dma1", soc.port(2), small_dma(0x6000'0000));
  soc.add(dnn);
  soc.add(dma0);
  soc.add(dma1);

  EventTrace trace;
  trace.enable(true);
  soc.hyperconnect()->set_trace(&trace);
  soc.memory_controller().set_trace(&trace);

  MetricsRegistry registry;
  soc.hyperconnect()->register_metrics(registry);
  soc.memory_controller().register_metrics(registry);
  MetricsSampler sampler("sampler", registry, 500);
  soc.add(sampler);

  BandwidthProbe probe("apm", soc.interconnect().master_link(), 1000);
  soc.add(probe);

  soc.sim().reset();
  RunOutcome out;
  out.done = soc.sim().run_until(
      [&] {
        return dnn.finished() && dma0.jobs_completed() >= 2 &&
               dma1.jobs_completed() >= 2;
      },
      50'000'000ull);
  out.final_cycle = soc.sim().now();
  out.dnn_frames = dnn.frame_completion_cycles();
  out.dma0_jobs = dma0.job_completion_cycles();
  out.dma1_jobs = dma1.job_completion_cycles();
  for (PortIndex i = 0; i < 3; ++i) {
    const PortCounters& c = soc.interconnect().counters(i);
    out.icn_counters.insert(out.icn_counters.end(),
                            {c.ar_granted, c.aw_granted, c.r_beats,
                             c.w_beats, c.b_resps});
  }
  out.mem_reads = soc.memory_controller().reads_served();
  out.mem_writes = soc.memory_controller().writes_served();
  out.mem_beats = soc.memory_controller().beats_served();
  out.mem_busy = soc.memory_controller().busy_cycles();
  out.recharges = soc.hyperconnect()->recharges();
  out.probe_read_windows = probe.read_window_bytes();
  out.probe_write_windows = probe.write_window_bytes();
  out.samples = sampler.snapshots();
  out.trace_events = trace.events();
  return out;
}

TEST(KernelFastPath, ContendedRunIsBitIdenticalToNaiveStepping) {
  const RunOutcome fast = run_scenario(/*fast_forward=*/true);
  const RunOutcome naive = run_scenario(/*fast_forward=*/false);

  ASSERT_TRUE(fast.done);
  ASSERT_TRUE(naive.done);
  EXPECT_EQ(fast.final_cycle, naive.final_cycle);
  EXPECT_EQ(fast.dnn_frames, naive.dnn_frames);
  EXPECT_EQ(fast.dma0_jobs, naive.dma0_jobs);
  EXPECT_EQ(fast.dma1_jobs, naive.dma1_jobs);
  EXPECT_EQ(fast.icn_counters, naive.icn_counters);
  EXPECT_EQ(fast.mem_reads, naive.mem_reads);
  EXPECT_EQ(fast.mem_writes, naive.mem_writes);
  EXPECT_EQ(fast.mem_beats, naive.mem_beats);
  EXPECT_EQ(fast.mem_busy, naive.mem_busy);
  EXPECT_EQ(fast.recharges, naive.recharges);

  // APM window series: identical length and identical per-window bytes.
  EXPECT_EQ(fast.probe_read_windows, naive.probe_read_windows);
  EXPECT_EQ(fast.probe_write_windows, naive.probe_write_windows);

  // Sampled metric series: same boundaries, same values at each boundary.
  ASSERT_EQ(fast.samples.size(), naive.samples.size());
  for (std::size_t i = 0; i < fast.samples.size(); ++i) {
    EXPECT_EQ(fast.samples[i].cycle, naive.samples[i].cycle);
    EXPECT_EQ(fast.samples[i].values, naive.samples[i].values);
  }

  // Full trace-event stream, event by event.
  ASSERT_EQ(fast.trace_events.size(), naive.trace_events.size());
  for (std::size_t i = 0; i < fast.trace_events.size(); ++i) {
    const TraceEvent& a = fast.trace_events[i];
    const TraceEvent& b = naive.trace_events[i];
    EXPECT_EQ(a.cycle, b.cycle) << "event " << i;
    EXPECT_EQ(a.source, b.source) << "event " << i;
    EXPECT_EQ(a.event, b.event) << "event " << i;
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.value, b.value) << "event " << i;
  }
}

TEST(KernelFastPath, FastForwardActuallySkipsQuiescentStretches) {
  // An empty simulator with fast-forward must reach a far deadline without
  // one step per cycle (run() would take minutes otherwise); with stepping
  // forced off the same API still works. Observable: now() only.
  Simulator sim;
  sim.reset();
  sim.run(10'000'000'000ull);
  EXPECT_EQ(sim.now(), 10'000'000'000ull);

  Simulator naive;
  naive.set_fast_forward(false);
  EXPECT_FALSE(naive.fast_forward());
  naive.reset();
  naive.run(1000);
  EXPECT_EQ(naive.now(), 1000u);
}

}  // namespace
}  // namespace axihc
