// Burst-equalization tests [11]: end-to-end split/merge correctness through
// the full HyperConnect, and the fairness comparison against SmartConnect.
#include <gtest/gtest.h>

#include "axi/monitor.hpp"
#include "ha/dma_engine.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "interconnect/smartconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

TEST(Equalization, LongReadMergedTransparently) {
  // A 256-beat read through a nominal-16 HyperConnect: the HA sees one
  // transaction (one RLAST), memory sees 16 sub-transactions.
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  cfg.max_outstanding = 16;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  sim.reset();

  for (Addr a = 0; a < 2048; a += 8) store.write_word(0x1000 + a, a + 1);

  AddrReq ar;
  ar.id = 42;
  ar.addr = 0x1000;
  ar.beats = 256;
  hc.port_link(0).ar.push(ar);

  std::vector<RBeat> beats;
  ASSERT_TRUE(sim.run_until(
      [&] {
        while (hc.port_link(0).r.can_pop()) {
          beats.push_back(hc.port_link(0).r.pop());
        }
        return beats.size() >= 256;
      },
      100000));
  ASSERT_EQ(beats.size(), 256u);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(beats[i].id, 42u);
    EXPECT_EQ(beats[i].data, i * 8 + 1);
    EXPECT_EQ(beats[i].last, i == 255) << "beat " << i;
  }
  EXPECT_EQ(mem.reads_served(), 16u);  // 16 sub-transactions at the memory
  EXPECT_EQ(hc.counters(0).ar_granted, 16u);
}

TEST(Equalization, LongWriteMergedTransparently) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  cfg.max_outstanding = 16;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  sim.reset();

  AddrReq aw;
  aw.id = 7;
  aw.addr = 0x4000;
  aw.beats = 64;
  hc.port_link(0).aw.push(aw);
  for (BeatCount i = 0; i < 64; ++i) {
    // Feed W data as channel capacity allows.
    while (!hc.port_link(0).w.can_push()) sim.step();
    hc.port_link(0).w.push({0xF00 + i, 0xff, i == 63});
  }

  std::size_t b_count = 0;
  ASSERT_TRUE(sim.run_until(
      [&] {
        while (hc.port_link(0).b.can_pop()) {
          EXPECT_EQ(hc.port_link(0).b.pop().id, 7u);
          ++b_count;
        }
        return b_count >= 1;
      },
      100000));
  sim.run(200);  // ensure no further (duplicate) B arrives
  while (hc.port_link(0).b.can_pop()) {
    hc.port_link(0).b.pop();
    ++b_count;
  }
  EXPECT_EQ(b_count, 1u) << "intermediate sub-burst Bs leaked to the HA";
  EXPECT_EQ(mem.writes_served(), 4u);
  for (BeatCount i = 0; i < 64; ++i) {
    EXPECT_EQ(store.read_word(0x4000 + 8 * i), 0xF00u + i);
  }
}

TEST(Equalization, ProtocolCleanThroughMonitorWithSplitting) {
  // HA-side monitor between a DMA with 64-beat bursts and the HyperConnect:
  // the merge must reconstruct a protocol-correct stream.
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 8;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  AxiLink ha_link("ha");
  ha_link.register_with(sim);
  AxiMonitor monitor("mon", ha_link, hc.port_link(0));
  monitor.set_throw_on_violation(true);
  sim.add(monitor);

  DmaConfig dcfg;
  dcfg.mode = DmaMode::kReadWrite;
  dcfg.bytes_per_job = 4096;
  dcfg.burst_beats = 64;
  dcfg.max_jobs = 1;
  DmaEngine dma("dma", ha_link, dcfg);
  sim.add(dma);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 200000));
  EXPECT_TRUE(monitor.clean());
  // 4096B in 64-beat HA bursts = 8 each way; memory saw 8-beat subs = 64.
  EXPECT_EQ(monitor.reads_completed(), 8u);
  EXPECT_EQ(mem.reads_served(), 64u);
}

TEST(Equalization, FairnessComparisonAgainstSmartConnect) {
  // The quantitative claim of [11]: under SmartConnect, a 256-beat stealer
  // crushes a 4-beat victim; under HyperConnect with equalization the
  // victim's share is bounded below by its request ratio.
  auto run_pair = [](bool use_hc) {
    Simulator sim;
    BackingStore store;
    std::unique_ptr<Interconnect> icn;
    if (use_hc) {
      HyperConnectConfig cfg;
      cfg.num_ports = 2;
      cfg.nominal_burst = 16;
      cfg.max_outstanding = 8;
      icn = std::make_unique<HyperConnect>("hc", cfg);
    } else {
      icn = std::make_unique<SmartConnect>("sc", 2, SmartConnectConfig{});
    }
    MemoryController mem("ddr", icn->master_link(), store, {});
    icn->register_with(sim);
    sim.add(mem);

    TrafficConfig small;
    small.direction = TrafficDirection::kRead;
    small.burst_beats = 4;
    small.base = 0x4000'0000;
    TrafficConfig big = TrafficGenerator::bandwidth_stealer(0x6000'0000);
    TrafficGenerator victim("victim", icn->port_link(0), small);
    TrafficGenerator stealer("stealer", icn->port_link(1), big);
    sim.add(victim);
    sim.add(stealer);
    sim.reset();
    sim.run(150000);
    const double v = static_cast<double>(victim.stats().bytes_read);
    const double s = static_cast<double>(stealer.stats().bytes_read);
    return v / (v + s);
  };

  const double share_sc = run_pair(false);
  const double share_hc = run_pair(true);
  EXPECT_LT(share_sc, 0.10);  // starved under transaction-granular RR
  EXPECT_GT(share_hc, 0.15);  // restored by equalization
  EXPECT_GT(share_hc, 2 * share_sc);
}

TEST(Equalization, NominalBurstReconfigurableAtRuntime) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  sim.reset();

  // First transaction: split 32 -> 2 subs of 16.
  AddrReq ar;
  ar.id = 1;
  ar.addr = 0x0;
  ar.beats = 32;
  hc.port_link(0).ar.push(ar);
  std::size_t beats = 0;
  sim.run_until(
      [&] {
        while (hc.port_link(0).r.can_pop()) {
          hc.port_link(0).r.pop();
          ++beats;
        }
        return beats >= 32;
      },
      100000);
  EXPECT_EQ(mem.reads_served(), 2u);

  // Reconfigure nominal burst to 8 over the register file; same request
  // now splits into 4 subs.
  hc.registers_backdoor().write(hcregs::kNominalBurst, 8);
  ar.id = 2;
  hc.port_link(0).ar.push(ar);
  beats = 0;
  sim.run_until(
      [&] {
        while (hc.port_link(0).r.can_pop()) {
          hc.port_link(0).r.pop();
          ++beats;
        }
        return beats >= 32;
      },
      100000);
  EXPECT_EQ(mem.reads_served(), 6u);  // 2 + 4
}

}  // namespace
}  // namespace axihc
