// Decoupling tests (§V-A "Decoupling from the memory subsystem"): a
// decoupled HA is cut off, other ports are unaffected, recoupling resumes
// service.
#include <gtest/gtest.h>

#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct DecoupleFixture : ::testing::Test {
  DecoupleFixture()
      : hc("hc", two_ports()), mem("ddr", hc.master_link(), store, {}) {
    hc.register_with(sim);
    sim.add(mem);
  }

  static HyperConnectConfig two_ports() {
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    return cfg;
  }

  Simulator sim;
  BackingStore store;
  HyperConnect hc;
  MemoryController mem;
};

TEST_F(DecoupleFixture, DecoupledPortIssuesNothing) {
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 8;
  TrafficGenerator gen("gen", hc.port_link(0), cfg);
  sim.add(gen);
  sim.reset();
  hc.registers_backdoor().write(hcregs::port_ctrl(0), 0);

  sim.run(5000);
  EXPECT_EQ(gen.stats().reads_completed, 0u);
  EXPECT_EQ(hc.counters(0).ar_granted, 0u);
  EXPECT_EQ(mem.reads_served(), 0u);
}

TEST_F(DecoupleFixture, OtherPortUnaffected) {
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 8;
  TrafficGenerator misbehaving("bad", hc.port_link(0), cfg);
  TrafficGenerator good("good", hc.port_link(1), cfg);
  sim.add(misbehaving);
  sim.add(good);
  sim.reset();
  hc.registers_backdoor().write(hcregs::port_ctrl(0), 0);

  sim.run(20000);
  EXPECT_EQ(misbehaving.stats().reads_completed, 0u);
  EXPECT_GT(good.stats().reads_completed, 50u);
}

TEST_F(DecoupleFixture, DecoupledPortGetsFullServiceAfterRecoupling) {
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 8;
  TrafficGenerator gen("gen", hc.port_link(0), cfg);
  sim.add(gen);
  sim.reset();

  hc.registers_backdoor().write(hcregs::port_ctrl(0), 0);
  sim.run(2000);
  ASSERT_EQ(gen.stats().reads_completed, 0u);

  // Decoupling flushed the port (DPR semantics): the HA behind it is
  // replaced/reset before the hypervisor recouples the port.
  gen.reset();
  hc.registers_backdoor().write(hcregs::port_ctrl(0), 1);
  sim.run(5000);
  EXPECT_GT(gen.stats().reads_completed, 10u);
}

TEST_F(DecoupleFixture, MidWriteDecoupleDoesNotWedgeTheSharedWPath) {
  // Decouple a port while its write bursts are granted but its W data is
  // still streaming: the HyperConnect grounds the missing beats so the
  // shared W path keeps moving and the other port's writes complete.
  TrafficConfig wcfg;
  wcfg.direction = TrafficDirection::kWrite;
  wcfg.burst_beats = 64;  // long bursts: likely mid-burst at decouple time
  wcfg.max_outstanding = 4;
  wcfg.base = 0x4000'0000;
  TrafficGenerator victim("victim", hc.port_link(0), wcfg);
  wcfg.base = 0x6000'0000;
  TrafficGenerator other("other", hc.port_link(1), wcfg);
  sim.add(victim);
  sim.add(other);
  sim.reset();

  sim.run(60);  // writes granted, W data mid-flight
  hc.registers_backdoor().write(hcregs::port_ctrl(0), 0);
  const auto other_before = other.stats().writes_completed;
  sim.run(20000);
  EXPECT_GT(other.stats().writes_completed, other_before + 20)
      << "healthy port starved by a decoupled port's unfinished write";
}

TEST_F(DecoupleFixture, DecoupleFlushesQueuedRequests) {
  // Requests queued in the eFIFO when the port is decoupled are grounded:
  // after recoupling (with a fresh HA) they must not replay.
  AddrReq ar;
  ar.id = 1;
  ar.addr = 0;
  ar.beats = 4;
  sim.reset();
  hc.port_link(0).ar.push(ar);
  sim.step();
  hc.registers_backdoor().write(hcregs::port_ctrl(0), 0);
  sim.run(10);
  hc.registers_backdoor().write(hcregs::port_ctrl(0), 1);
  sim.run(200);
  EXPECT_EQ(hc.counters(0).ar_granted, 0u);
  EXPECT_FALSE(hc.port_link(0).r.can_pop());
}

TEST_F(DecoupleFixture, MidTransactionDecoupleDropsResponses) {
  // Decouple while reads are in flight: responses are grounded (dropped),
  // the interconnect's bookkeeping stays consistent, and the *other* port
  // keeps working. This is the dynamic-partial-reconfiguration scenario.
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 16;
  cfg.max_outstanding = 4;
  TrafficGenerator victim("victim", hc.port_link(0), cfg);
  TrafficGenerator other("other", hc.port_link(1), cfg);
  sim.add(victim);
  sim.add(other);
  sim.reset();

  // Let transactions get in flight, then cut port 0.
  sim.run(20);
  hc.registers_backdoor().write(hcregs::port_ctrl(0), 0);
  const auto victim_beats = hc.counters(0).r_beats;
  sim.run(20000);
  // No further beats delivered to the decoupled port...
  EXPECT_LE(hc.counters(0).r_beats, victim_beats + 4);
  // ...and the healthy port kept its full throughput.
  EXPECT_GT(other.stats().reads_completed, 100u);
}

TEST_F(DecoupleFixture, GlobalEnableIsIndependentOfPortDecouple) {
  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 8;
  TrafficGenerator gen("gen", hc.port_link(1), cfg);
  sim.add(gen);
  sim.reset();
  // Port 0 decoupled, port 1 coupled, global enable off: nothing moves.
  hc.registers_backdoor().write(hcregs::port_ctrl(0), 0);
  hc.registers_backdoor().write(hcregs::kCtrl, 0);
  sim.run(2000);
  EXPECT_EQ(gen.stats().reads_completed, 0u);
  // Re-enable: port 1 moves, port 0 stays dark.
  hc.registers_backdoor().write(hcregs::kCtrl, 1);
  sim.run(5000);
  EXPECT_GT(gen.stats().reads_completed, 0u);
  EXPECT_EQ(hc.counters(0).ar_granted, 0u);
}

}  // namespace
}  // namespace axihc
