// Island-partitioned parallel tick engine: every observable of a run —
// state digest, completion cycles, interconnect/memory counters, APM probe
// windows, sampled metric series, the full trace-event stream — must be
// bit-identical to the serial kernel at any thread count, with and without
// the kernel fast-forward.
//
// Two scenarios:
//  * A contended 3-port HyperConnect run (the hostile fast-path scenario
//    from test_kernel_fastpath.cpp, plus a seeded FaultInjector spliced in
//    front of one port). The serial-scope MetricsSampler collapses the
//    partition to one island, which is exactly the engine's safe fallback —
//    the staging/merge/commit machinery still runs and must be invisible.
//  * A multi-island system (independent HC+DDR+DMA subsystems sharing one
//    trace), where the partitioner finds one island per subsystem and the
//    compute phase genuinely fans out across workers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "config/ini.hpp"
#include "config/system_builder.hpp"
#include "fault/fault_injector.hpp"
#include "ha/dma_engine.hpp"
#include "recovery/recovery_manager.hpp"
#include "ha/dnn_accelerator.hpp"
#include "hypervisor/domain.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"
#include "sim/worker_pool.hpp"
#include "soc/soc.hpp"
#include "stats/bandwidth_probe.hpp"

namespace axihc {
namespace {

DnnConfig small_dnn() {
  DnnConfig cfg;
  cfg.layers = googlenet_layers();
  for (auto& l : cfg.layers) {
    l.weight_bytes /= 256;
    l.ifmap_bytes /= 256;
    l.ofmap_bytes /= 256;
    l.macs /= 256;
  }
  cfg.macs_per_cycle = 256;
  cfg.burst_beats = 16;
  cfg.max_outstanding = 4;
  cfg.max_frames = 1;
  return cfg;
}

DmaConfig small_dma(Addr base) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kReadWrite;
  cfg.bytes_per_job = 64 << 10;
  cfg.read_base = base;
  cfg.write_base = base + (1u << 20);
  cfg.burst_beats = 16;
  cfg.max_outstanding = 8;
  cfg.max_jobs = 0;  // loop forever; the run_until predicate bounds it
  return cfg;
}

// Protocol-preserving faults only (probabilistic W delays plus a bounded AR
// stall window): the run must still complete, but the injector's seeded RNG
// and skid-buffer state become part of what the engine must reproduce.
FaultScenario mild_faults(PortIndex port) {
  FaultScenario scenario;
  scenario.seed = 42;
  scenario.faults = {
      {FaultKind::kDelayW, port, 1000, 0, 3, 0.25},
      {FaultKind::kStallAr, port, 5000, 2000, 0, 1.0},
  };
  return scenario;
}

struct RunOutcome {
  bool done = false;
  Cycle final_cycle = 0;
  std::uint64_t digest = 0;
  std::size_t islands = 0;
  std::vector<Cycle> dnn_frames;
  std::vector<Cycle> dma0_jobs;
  std::vector<Cycle> dma1_jobs;
  std::vector<std::uint64_t> icn_counters;
  std::uint64_t mem_beats = 0;
  std::uint64_t recharges = 0;
  std::uint64_t w_delay_cycles = 0;
  std::uint64_t ar_stalled = 0;
  std::vector<std::uint64_t> probe_read_windows;
  std::vector<std::uint64_t> probe_write_windows;
  std::vector<MetricsSnapshot> samples;
  std::vector<TraceEvent> trace_events;
};

void expect_equal(const RunOutcome& a, const RunOutcome& b) {
  ASSERT_TRUE(a.done);
  ASSERT_TRUE(b.done);
  EXPECT_EQ(a.final_cycle, b.final_cycle);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.dnn_frames, b.dnn_frames);
  EXPECT_EQ(a.dma0_jobs, b.dma0_jobs);
  EXPECT_EQ(a.dma1_jobs, b.dma1_jobs);
  EXPECT_EQ(a.icn_counters, b.icn_counters);
  EXPECT_EQ(a.mem_beats, b.mem_beats);
  EXPECT_EQ(a.recharges, b.recharges);
  EXPECT_EQ(a.w_delay_cycles, b.w_delay_cycles);
  EXPECT_EQ(a.ar_stalled, b.ar_stalled);
  EXPECT_EQ(a.probe_read_windows, b.probe_read_windows);
  EXPECT_EQ(a.probe_write_windows, b.probe_write_windows);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].cycle, b.samples[i].cycle);
    EXPECT_EQ(a.samples[i].values, b.samples[i].values);
  }
  // Full trace-event stream, event by event: the staged-trace merge must
  // restore the exact serial registration-order stream.
  ASSERT_EQ(a.trace_events.size(), b.trace_events.size());
  for (std::size_t i = 0; i < a.trace_events.size(); ++i) {
    const TraceEvent& x = a.trace_events[i];
    const TraceEvent& y = b.trace_events[i];
    EXPECT_EQ(x.cycle, y.cycle) << "event " << i;
    EXPECT_EQ(x.source, y.source) << "event " << i;
    EXPECT_EQ(x.event, y.event) << "event " << i;
    EXPECT_EQ(x.kind, y.kind) << "event " << i;
    EXPECT_EQ(x.value, y.value) << "event " << i;
  }
}

// threads <= 1 runs the untouched serial kernel; threads >= 2 the engine.
RunOutcome run_contended(unsigned threads, bool fast_forward) {
  SocConfig cfg;
  cfg.kind = InterconnectKind::kHyperConnect;
  cfg.num_ports = 3;
  const ReservationPlan plan =
      plan_bandwidth_split(2000, 27.0, {0.6, 0.3, 0.1});
  cfg.hc.num_ports = 3;
  cfg.hc.reservation_period = plan.period;
  cfg.hc.initial_budgets = plan.budgets;
  cfg.mem.row_hit_latency = 10;
  cfg.mem.row_miss_latency = 24;
  cfg.mem.turnaround = 1;
  SocSystem soc(cfg);
  soc.sim().set_fast_forward(fast_forward);
  soc.sim().set_threads(threads);

  DnnAccelerator dnn("dnn", soc.port(0), small_dnn());
  // dma0 masters a private link; the injector forwards it to port 1.
  AxiLink dma0_up("dma0_up");
  dma0_up.register_with(soc.sim());
  DmaEngine dma0("dma0", dma0_up, small_dma(0x4000'0000));
  FaultInjector inj("inj1", dma0_up, soc.port(1), mild_faults(1), 1);
  DmaEngine dma1("dma1", soc.port(2), small_dma(0x6000'0000));
  soc.add(dnn);
  soc.add(dma0);
  soc.add(inj);
  soc.add(dma1);

  EventTrace trace;
  trace.enable(true);
  soc.hyperconnect()->set_trace(&trace);
  soc.memory_controller().set_trace(&trace);

  MetricsRegistry registry;
  soc.hyperconnect()->register_metrics(registry);
  soc.memory_controller().register_metrics(registry);
  MetricsSampler sampler("sampler", registry, 500);
  soc.add(sampler);

  BandwidthProbe probe("apm", soc.interconnect().master_link(), 1000);
  soc.add(probe);

  soc.sim().reset();
  RunOutcome out;
  out.done = soc.sim().run_until(
      [&] {
        return dnn.finished() && dma0.jobs_completed() >= 2 &&
               dma1.jobs_completed() >= 2;
      },
      50'000'000ull);
  out.final_cycle = soc.sim().now();
  out.digest = soc.sim().state_digest();
  out.islands = soc.sim().island_count();
  out.dnn_frames = dnn.frame_completion_cycles();
  out.dma0_jobs = dma0.job_completion_cycles();
  out.dma1_jobs = dma1.job_completion_cycles();
  for (PortIndex i = 0; i < 3; ++i) {
    const PortCounters& c = soc.interconnect().counters(i);
    out.icn_counters.insert(out.icn_counters.end(),
                            {c.ar_granted, c.aw_granted, c.r_beats,
                             c.w_beats, c.b_resps});
  }
  out.mem_beats = soc.memory_controller().beats_served();
  out.recharges = soc.hyperconnect()->recharges();
  out.w_delay_cycles = inj.stats().w_delay_cycles;
  out.ar_stalled = inj.stats().ar_stalled;
  out.probe_read_windows = probe.read_window_bytes();
  out.probe_write_windows = probe.write_window_bytes();
  out.samples = sampler.snapshots();
  out.trace_events = trace.events();
  return out;
}

TEST(ParallelTick, ContendedScenarioBitIdenticalAcrossThreadCounts) {
  for (const bool ff : {true, false}) {
    SCOPED_TRACE(ff ? "fast-forward" : "naive stepping");
    const RunOutcome serial = run_contended(0, ff);
    // The serial-scope sampler collapses the partition: safe fallback.
    EXPECT_EQ(serial.islands, 1u);
    for (const unsigned threads : {1u, 2u, 4u}) {
      SCOPED_TRACE(threads);
      const RunOutcome engine = run_contended(threads, ff);
      expect_equal(serial, engine);
    }
  }
}

TEST(ParallelTick, FastForwardOnOffAgreeUnderEngine) {
  // Fast-forward composes with the engine: the per-island next-activity
  // reduction must pick the same wake-up cycles the serial scan does.
  const RunOutcome ff = run_contended(2, /*fast_forward=*/true);
  const RunOutcome naive = run_contended(2, /*fast_forward=*/false);
  expect_equal(ff, naive);
}

// ---------------------------------------------------------------------------
// Multi-island scenario: independent subsystems, genuine fan-out.

struct MultiIslandSystem {
  Simulator sim;
  EventTrace trace;  // shared across islands: stresses the staged merge
  std::vector<std::unique_ptr<BackingStore>> stores;
  std::vector<std::unique_ptr<HyperConnect>> hcs;
  std::vector<std::unique_ptr<MemoryController>> mems;
  std::vector<std::unique_ptr<DmaEngine>> dmas;
  std::vector<std::unique_ptr<BandwidthProbe>> probes;

  explicit MultiIslandSystem(std::uint32_t subsystems) {
    trace.enable(true);
    for (std::uint32_t s = 0; s < subsystems; ++s) {
      HyperConnectConfig cfg;
      cfg.num_ports = 2;
      hcs.push_back(
          std::make_unique<HyperConnect>("hc" + std::to_string(s), cfg));
      stores.push_back(std::make_unique<BackingStore>());
      mems.push_back(std::make_unique<MemoryController>(
          "ddr" + std::to_string(s), hcs.back()->master_link(),
          *stores.back(), MemoryControllerConfig{}));
      hcs.back()->register_with(sim);
      sim.add(*mems.back());
      hcs.back()->set_trace(&trace);
      mems.back()->set_trace(&trace);
      probes.push_back(std::make_unique<BandwidthProbe>(
          "apm" + std::to_string(s), hcs.back()->master_link(), 1000));
      sim.add(*probes.back());
      for (PortIndex p = 0; p < cfg.num_ports; ++p) {
        DmaConfig d;
        d.mode = DmaMode::kReadWrite;
        d.bytes_per_job = 16 << 10;
        d.max_jobs = 3;
        dmas.push_back(std::make_unique<DmaEngine>(
            "dma" + std::to_string(s) + "_" + std::to_string(p),
            hcs.back()->port_link(p), d));
        sim.add(*dmas.back());
      }
    }
  }

  bool run() {
    sim.reset();
    return sim.run_until(
        [&] {
          for (const auto& d : dmas) {
            if (!d->finished()) return false;
          }
          return true;
        },
        10'000'000ull);
  }
};

struct MultiIslandOutcome {
  bool done = false;
  Cycle final_cycle = 0;
  std::uint64_t digest = 0;
  std::size_t islands = 0;
  std::vector<Cycle> job_cycles;
  std::vector<std::uint64_t> probe_windows;
  std::vector<TraceEvent> trace_events;
};

MultiIslandOutcome run_multi_island(unsigned threads, bool fast_forward,
                                    std::uint32_t subsystems) {
  MultiIslandSystem system(subsystems);
  system.sim.set_threads(threads);
  system.sim.set_fast_forward(fast_forward);
  MultiIslandOutcome out;
  out.done = system.run();
  out.final_cycle = system.sim.now();
  out.digest = system.sim.state_digest();
  out.islands = system.sim.island_count();
  for (const auto& d : system.dmas) {
    const auto& cycles = d->job_completion_cycles();
    out.job_cycles.insert(out.job_cycles.end(), cycles.begin(), cycles.end());
  }
  for (const auto& p : system.probes) {
    const auto& r = p->read_window_bytes();
    const auto& w = p->write_window_bytes();
    out.probe_windows.insert(out.probe_windows.end(), r.begin(), r.end());
    out.probe_windows.insert(out.probe_windows.end(), w.begin(), w.end());
  }
  out.trace_events = system.trace.events();
  return out;
}

TEST(ParallelTick, MultiIslandScenarioBitIdenticalAcrossThreadCounts) {
  constexpr std::uint32_t kSubsystems = 4;
  for (const bool ff : {true, false}) {
    SCOPED_TRACE(ff ? "fast-forward" : "naive stepping");
    const MultiIslandOutcome serial = run_multi_island(0, ff, kSubsystems);
    ASSERT_TRUE(serial.done);
    for (const unsigned threads : {1u, 2u, 4u}) {
      SCOPED_TRACE(threads);
      const MultiIslandOutcome engine =
          run_multi_island(threads, ff, kSubsystems);
      ASSERT_TRUE(engine.done);
      // Independent subsystems must land in distinct islands.
      EXPECT_EQ(engine.islands, kSubsystems);
      EXPECT_EQ(serial.final_cycle, engine.final_cycle);
      EXPECT_EQ(serial.digest, engine.digest);
      EXPECT_EQ(serial.job_cycles, engine.job_cycles);
      EXPECT_EQ(serial.probe_windows, engine.probe_windows);
      ASSERT_EQ(serial.trace_events.size(), engine.trace_events.size());
      for (std::size_t i = 0; i < serial.trace_events.size(); ++i) {
        const TraceEvent& x = serial.trace_events[i];
        const TraceEvent& y = engine.trace_events[i];
        EXPECT_EQ(x.cycle, y.cycle) << "event " << i;
        EXPECT_EQ(x.source, y.source) << "event " << i;
        EXPECT_EQ(x.event, y.event) << "event " << i;
        EXPECT_EQ(x.kind, y.kind) << "event " << i;
        EXPECT_EQ(x.value, y.value) << "event " << i;
      }
    }
  }
}

TEST(ParallelTick, NoParallelTickFlagForcesSerialKernel) {
  // set_parallel_tick(false) must force the serial kernel even with a
  // thread count configured — and the observables stay identical.
  MultiIslandSystem engine(2);
  engine.sim.set_threads(4);
  MultiIslandSystem forced(2);
  forced.sim.set_threads(4);
  forced.sim.set_parallel_tick(false);
  EXPECT_TRUE(engine.run());
  EXPECT_TRUE(forced.run());
  EXPECT_FALSE(forced.sim.parallel_tick());
  EXPECT_EQ(engine.sim.state_digest(), forced.sim.state_digest());
  EXPECT_EQ(engine.sim.now(), forced.sim.now());
}

TEST(ParallelTick, RepeatedRunsYieldIdenticalDigests) {
  // Same configuration, same digest; advancing one run changes it.
  const MultiIslandOutcome a = run_multi_island(2, true, 2);
  const MultiIslandOutcome b = run_multi_island(2, true, 2);
  EXPECT_EQ(a.digest, b.digest);

  MultiIslandSystem longer(2);
  longer.sim.set_threads(2);
  EXPECT_TRUE(longer.run());
  const std::uint64_t at_end = longer.sim.state_digest();
  // A DMA with max_jobs exhausted is idle, so push traffic through port 0
  // directly to perturb state.
  longer.hcs[0]->port_link(0).ar.push(AddrReq{});
  longer.sim.run(4);
  EXPECT_NE(longer.sim.state_digest(), at_end);
}

// ---------------------------------------------------------------------------
// Closed-loop recovery under the engine: the hypervisor poll and the
// RecoveryManager hooks are serial-scope (they reconfigure other components
// through the control bus), which collapses the partition — the engine's
// safe fallback. A run with a latched fault, a full quarantine -> drain ->
// reset -> probation episode, and budget redistribution must stay
// bit-identical to the serial kernel.

constexpr char kRecoveryScenarioIni[] = R"(
[system]
interconnect = hyperconnect
platform = zcu102
ports = 2
cycles = 25000

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
reservation_period = 2000
budgets = 16 8
prot_timeout = 1500

[ha0]
type = dma
mode = readwrite
bytes_per_job = 65536
burst = 16

[ha1]
type = traffic
direction = mixed
burst = 16

[recovery]
poll_period = 500
backoff_base = 500
backoff_max = 4000
probation_window = 1500
max_attempts = 4
drain_timeout = 2000

[fault0]
kind = stall_w
port = 1
start = 3000
duration = 3000
)";

struct RecoveryOutcome {
  std::uint64_t digest = 0;
  Cycle final_cycle = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t demotions = 0;
  std::uint64_t faults_latched = 0;
  std::size_t transition_count = 0;
};

RecoveryOutcome run_recovery_scenario(unsigned threads) {
  ConfiguredSystem cs(IniFile::parse(kRecoveryScenarioIni));
  cs.soc().sim().set_threads(threads);
  cs.run();
  RecoveryOutcome out;
  out.digest = cs.soc().sim().state_digest();
  out.final_cycle = cs.soc().sim().now();
  out.recoveries = cs.recovery()->recoveries();
  out.demotions = cs.recovery()->demotions();
  out.faults_latched = cs.soc().hyperconnect()->faults_latched();
  out.transition_count = cs.recovery()->transitions().size();
  return out;
}

TEST(ParallelTick, FaultRecoveryScenarioBitIdenticalSerialVsEngine) {
  const RecoveryOutcome serial = run_recovery_scenario(1);
  // The scenario must actually exercise the loop, or the equality below
  // proves nothing.
  ASSERT_GE(serial.faults_latched, 1u);
  ASSERT_GE(serial.recoveries, 1u);
  for (const unsigned threads : {2u, 4u}) {
    const RecoveryOutcome engine = run_recovery_scenario(threads);
    EXPECT_EQ(serial.digest, engine.digest) << threads << " threads";
    EXPECT_EQ(serial.final_cycle, engine.final_cycle);
    EXPECT_EQ(serial.recoveries, engine.recoveries);
    EXPECT_EQ(serial.demotions, engine.demotions);
    EXPECT_EQ(serial.faults_latched, engine.faults_latched);
    EXPECT_EQ(serial.transition_count, engine.transition_count);
  }
}

// ---------------------------------------------------------------------------
// Worker pool sanity.

TEST(WorkerPoolTest, RunsEachIndexExactlyOnce) {
  WorkerPool& pool = WorkerPool::shared();
  const unsigned n = std::min(4u, pool.max_participants());
  std::vector<std::atomic<int>> counts(n);
  for (int round = 0; round < 100; ++round) {
    pool.run_tasks(n, [&](unsigned index) {
      counts[index].fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_EQ(counts[i].load(), 100) << "index " << i;
  }
}

TEST(WorkerPoolTest, NestedDispatchDegradesToInline) {
  // A pool task dispatching again must run its tasks inline (no deadlock,
  // no oversubscription) — this is what caps sweep × engine parallelism.
  WorkerPool& pool = WorkerPool::shared();
  std::atomic<int> total{0};
  pool.run_tasks(2, [&](unsigned) {
    pool.run_tasks(4,
                   [&](unsigned) { total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(total.load(), 8);
}

}  // namespace
}  // namespace axihc
