// Register file semantics: decode, read-only behaviour, clamping.
#include "hyperconnect/register_file.hpp"

#include <gtest/gtest.h>

namespace axihc {
namespace {

struct RegFixture : ::testing::Test {
  RegFixture()
      : rf(rt, [this](PortIndex i) { return txn_counts.at(i); }) {
    rt.budgets = {0, 0};
    rt.coupled = {true, true};
    txn_counts = {100, 200};
  }

  HcRuntime rt;
  std::vector<std::uint64_t> txn_counts;
  HcRegisterFile rf{rt, [](PortIndex) { return 0ull; }};
};

TEST_F(RegFixture, CtrlTogglesGlobalEnable) {
  rf.write(hcregs::kCtrl, 0);
  EXPECT_FALSE(rt.global_enable);
  EXPECT_EQ(rf.read(hcregs::kCtrl), 0u);
  rf.write(hcregs::kCtrl, 1);
  EXPECT_TRUE(rt.global_enable);
}

TEST_F(RegFixture, NominalBurstWritesAndClamps) {
  rf.write(hcregs::kNominalBurst, 32);
  EXPECT_EQ(rt.nominal_burst, 32u);
  rf.write(hcregs::kNominalBurst, 100000);
  EXPECT_EQ(rt.nominal_burst, kMaxAxi4BurstBeats);
  rf.write(hcregs::kNominalBurst, 0);  // equalization off
  EXPECT_EQ(rt.nominal_burst, 0u);
}

TEST_F(RegFixture, ReservationPeriodRoundTrips) {
  rf.write(hcregs::kReservationPeriod, 5000);
  EXPECT_EQ(rt.reservation_period, 5000u);
  EXPECT_EQ(rf.read(hcregs::kReservationPeriod), 5000u);
}

TEST_F(RegFixture, OutstandingLimitZeroBecomesOne) {
  rf.write(hcregs::kOutstandingLimit, 0);
  EXPECT_EQ(rt.max_outstanding, 1u);
  rf.write(hcregs::kOutstandingLimit, 7);
  EXPECT_EQ(rt.max_outstanding, 7u);
}

TEST_F(RegFixture, PerPortBudgets) {
  rf.write(hcregs::budget(0), 42);
  rf.write(hcregs::budget(1), 77);
  EXPECT_EQ(rt.budgets[0], 42u);
  EXPECT_EQ(rt.budgets[1], 77u);
  EXPECT_EQ(rf.read(hcregs::budget(1)), 77u);
}

TEST_F(RegFixture, PortCtrlDecouples) {
  rf.write(hcregs::port_ctrl(1), 0);
  EXPECT_FALSE(rt.coupled[1]);
  EXPECT_TRUE(rt.coupled[0]);
  EXPECT_EQ(rf.read(hcregs::port_ctrl(1)), 0u);
  rf.write(hcregs::port_ctrl(1), 1);
  EXPECT_TRUE(rt.coupled[1]);
}

TEST_F(RegFixture, ReadOnlyRegistersIgnoreWrites) {
  rf.write(hcregs::kId, 0xdead);
  EXPECT_EQ(rf.read(hcregs::kId), hcregs::kIdValue);
  rf.write(hcregs::kNumPorts, 99);
  EXPECT_EQ(rf.read(hcregs::kNumPorts), 2u);
  EXPECT_EQ(rf.ignored_writes(), 2u);
}

TEST_F(RegFixture, TxnCountersReadThrough) {
  HcRegisterFile rf2(rt, [this](PortIndex i) { return txn_counts.at(i); });
  EXPECT_EQ(rf2.read(hcregs::txn_count(0)), 100u);
  EXPECT_EQ(rf2.read(hcregs::txn_count(1)), 200u);
}

TEST_F(RegFixture, UnknownOffsetsReadZeroWriteIgnored) {
  EXPECT_EQ(rf.read(0xF000), 0u);
  rf.write(0xF000, 7);
  EXPECT_EQ(rf.ignored_writes(), 1u);
}

TEST_F(RegFixture, BudgetOffsetOutsidePortRangeIgnored) {
  rf.write(hcregs::budget(5), 9);  // only 2 ports exist
  EXPECT_EQ(rf.ignored_writes(), 1u);
}

}  // namespace
}  // namespace axihc
