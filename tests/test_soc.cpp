// SocSystem assembly details and remaining hypervisor/control-interface
// coverage: watchdog in flag-only mode, PS-interference configuration,
// control-bus robustness.
#include <gtest/gtest.h>

#include "driver/hyperconnect_driver.hpp"
#include "ha/dma_engine.hpp"
#include "ha/traffic_gen.hpp"
#include "hypervisor/hypervisor.hpp"
#include "soc/soc.hpp"

namespace axihc {
namespace {

TEST(SocSystem, PropagatesMemoryConfig) {
  SocConfig cfg;
  cfg.mem.row_hit_latency = 3;
  cfg.mem.ps_stall_period = 100;
  cfg.mem.ps_stall_length = 10;
  SocSystem soc(cfg);
  EXPECT_EQ(soc.memory_controller().config().row_hit_latency, 3u);
  EXPECT_EQ(soc.memory_controller().config().ps_stall_period, 100u);
}

TEST(SocSystem, PsInterferenceSlowsTraffic) {
  auto bytes_moved = [](Cycle stall_len) {
    SocConfig cfg;
    cfg.num_ports = 2;
    cfg.mem.ps_stall_period = 100;
    cfg.mem.ps_stall_length = stall_len;
    SocSystem soc(cfg);
    TrafficConfig t;
    t.direction = TrafficDirection::kRead;
    t.burst_beats = 16;
    TrafficGenerator gen("gen", soc.port(0), t);
    soc.add(gen);
    soc.sim().reset();
    soc.sim().run(50000);
    return gen.stats().bytes_read;
  };
  const auto clean = bytes_moved(0);
  const auto stalled = bytes_moved(50);  // 50% of cycles blocked
  EXPECT_LT(stalled, clean * 6 / 10);
  EXPECT_GT(stalled, clean * 3 / 10);
}

TEST(SocSystem, NumPortsOverridesHcConfig) {
  SocConfig cfg;
  cfg.num_ports = 3;
  cfg.hc.num_ports = 7;  // must be overridden by SocConfig::num_ports
  SocSystem soc(cfg);
  EXPECT_EQ(soc.interconnect().num_ports(), 3u);
}

TEST(Watchdog, FlagOnlyModeReportsWithoutIsolating) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  RegisterMaster rm("rm", hc.control_link());
  HyperConnectDriver driver(rm, 2);
  Hypervisor hv("hv", driver);
  hv.add_domain({"d", Criticality::kLow, {0}, 0.5});
  WatchdogPolicy policy;
  policy.poll_period = 2000;
  policy.max_txns_per_poll = {5, 0};
  policy.auto_isolate = false;  // report only
  hv.set_watchdog(policy);

  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 16;
  TrafficGenerator gen("gen", hc.port_link(0), t);
  hc.register_with(sim);
  sim.add(mem);
  sim.add(rm);
  sim.add(hv);
  sim.add(gen);
  sim.reset();
  sim.run(30000);

  EXPECT_FALSE(hv.isolation_events().empty());
  EXPECT_FALSE(hv.port_isolated(0));
  EXPECT_TRUE(hc.runtime().coupled[0]);
  // Repeated violations keep being recorded.
  EXPECT_GT(hv.isolation_events().size(), 1u);
}

TEST(ControlInterface, InterleavedReadsAndWrites) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  RegisterMaster rm("rm", hc.control_link());
  hc.register_with(sim);
  sim.add(mem);
  sim.add(rm);
  sim.reset();

  // Queue a dense interleaving of writes and readbacks; all must complete
  // in order with coherent values.
  std::vector<std::uint64_t> readbacks;
  for (std::uint64_t v = 1; v <= 10; ++v) {
    rm.write_reg(hcregs::kNominalBurst, v);
    rm.read_reg(hcregs::kNominalBurst,
                [&](std::uint64_t x) { readbacks.push_back(x); });
  }
  ASSERT_TRUE(sim.run_until([&] { return rm.idle(); }, 10000));
  ASSERT_EQ(readbacks.size(), 10u);
  for (std::uint64_t v = 1; v <= 10; ++v) EXPECT_EQ(readbacks[v - 1], v);
  EXPECT_EQ(hc.runtime().nominal_burst, 10u);
}

TEST(ControlInterface, SurvivesConfigChurnUnderLoad) {
  // Hammer the control interface while data traffic flows: no deadlock, no
  // corruption, traffic keeps moving.
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  RegisterMaster rm("rm", hc.control_link());
  TrafficConfig t;
  t.direction = TrafficDirection::kMixed;
  t.burst_beats = 16;
  TrafficGenerator gen("gen", hc.port_link(0), t);
  hc.register_with(sim);
  sim.add(mem);
  sim.add(rm);
  sim.add(gen);
  sim.reset();

  for (int round = 0; round < 50; ++round) {
    rm.write_reg(hcregs::kNominalBurst, 4 + (round % 4) * 4);
    rm.write_reg(hcregs::kOutstandingLimit, 1 + (round % 4));
    sim.run(400);
  }
  ASSERT_TRUE(sim.run_until([&] { return rm.idle(); }, 10000));
  EXPECT_GT(gen.stats().reads_completed + gen.stats().writes_completed,
            200u);
}

}  // namespace
}  // namespace axihc
