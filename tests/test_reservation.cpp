// Bandwidth reservation tests [10]: budgets per periodic window, synchronous
// recharge, isolation of a greedy master from a reserved one.
#include <gtest/gtest.h>

#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"

namespace axihc {
namespace {

HyperConnectConfig reserved_cfg(Cycle period,
                                std::vector<std::uint32_t> budgets) {
  HyperConnectConfig cfg;
  cfg.num_ports = static_cast<std::uint32_t>(budgets.size());
  cfg.reservation_period = period;
  cfg.initial_budgets = std::move(budgets);
  return cfg;
}

TEST(Reservation, BudgetNeverExceededPerWindow) {
  // The TS counts transactions at run time and guarantees the budget is
  // never exceeded (§V-B). Count granted sub-transactions per window.
  const Cycle period = 500;
  const std::uint32_t budget = 5;
  Simulator sim;
  BackingStore store;
  HyperConnect hc("hc", reserved_cfg(period, {budget, 0}));
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig greedy;
  greedy.direction = TrafficDirection::kRead;
  greedy.burst_beats = 16;
  TrafficGenerator gen("gen", hc.port_link(0), greedy);
  sim.add(gen);
  sim.reset();

  std::uint64_t prev = 0;
  for (int window = 0; window < 20; ++window) {
    sim.run(period);
    const std::uint64_t now_count = hc.supervisor(0).subtransactions_issued();
    EXPECT_LE(now_count - prev, budget) << "window " << window;
    prev = now_count;
  }
  // And the budget is actually usable: the master gets its full allowance.
  EXPECT_GE(hc.supervisor(0).subtransactions_issued(), 19u * budget);
}

TEST(Reservation, ZeroBudgetStarvesPort) {
  Simulator sim;
  BackingStore store;
  HyperConnect hc("hc", reserved_cfg(200, {0, 10}));
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 16;
  TrafficGenerator starved("starved", hc.port_link(0), cfg);
  TrafficGenerator served("served", hc.port_link(1), cfg);
  sim.add(starved);
  sim.add(served);
  sim.reset();

  sim.run(10000);
  EXPECT_EQ(starved.stats().reads_completed, 0u);
  EXPECT_GT(served.stats().reads_completed, 0u);
}

TEST(Reservation, RechargeIsSynchronousAndPeriodic) {
  const Cycle period = 100;
  Simulator sim;
  BackingStore store;
  HyperConnect hc("hc", reserved_cfg(period, {3, 3}));
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  sim.reset();

  sim.run(1000);
  // Recharges at cycles 0, 100, ..., 900 = 10 events.
  EXPECT_EQ(hc.recharges(), 10u);
}

TEST(Reservation, BandwidthFollowsBudgetRatio) {
  // Two greedy masters with budgets 3:1 — byte throughput splits ~75/25.
  const Cycle period = 400;
  Simulator sim;
  BackingStore store;
  HyperConnect hc("hc", reserved_cfg(period, {9, 3}));
  MemoryControllerConfig mc;
  mc.row_hit_latency = 4;
  mc.row_miss_latency = 8;
  MemoryController mem("ddr", hc.master_link(), store, mc);
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 16;
  cfg.base = 0x4000'0000;
  TrafficGenerator g0("g0", hc.port_link(0), cfg);
  cfg.base = 0x6000'0000;
  TrafficGenerator g1("g1", hc.port_link(1), cfg);
  sim.add(g0);
  sim.add(g1);
  sim.reset();

  sim.run(100000);
  const double a = static_cast<double>(g0.stats().bytes_read);
  const double b = static_cast<double>(g1.stats().bytes_read);
  ASSERT_GT(a + b, 0);
  EXPECT_NEAR(a / (a + b), 0.75, 0.05);
}

TEST(Reservation, UnusedBudgetDoesNotAccumulate) {
  // A master idle for several windows must not burst beyond one window's
  // budget afterwards (budgets recharge, they don't accumulate).
  const Cycle period = 300;
  const std::uint32_t budget = 4;
  Simulator sim;
  BackingStore store;
  HyperConnect hc("hc", reserved_cfg(period, {budget, 0}));
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  sim.reset();

  // Idle for 5 windows.
  sim.run(5 * period);
  EXPECT_EQ(hc.counters(0).ar_granted, 0u);

  TrafficConfig cfg;
  cfg.direction = TrafficDirection::kRead;
  cfg.burst_beats = 16;
  TrafficGenerator gen("gen", hc.port_link(0), cfg);
  sim.add(gen);

  std::uint64_t prev = hc.supervisor(0).subtransactions_issued();
  // Partial window remains until the next multiple of `period`.
  sim.run(period - (sim.now() % period));
  std::uint64_t issued = hc.supervisor(0).subtransactions_issued() - prev;
  EXPECT_LE(issued, budget);
  prev = hc.supervisor(0).subtransactions_issued();
  sim.run(period);
  issued = hc.supervisor(0).subtransactions_issued() - prev;
  EXPECT_LE(issued, budget);
}

TEST(Reservation, DisabledReservationImposesNoLimit) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;  // reservation_period = 0 (off)
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 16;
  TrafficGenerator gen("gen", hc.port_link(0), t);
  sim.add(gen);
  sim.reset();
  sim.run(20000);
  EXPECT_GT(hc.counters(0).ar_granted, 100u);
}

TEST(Reservation, WritesConsumeBudgetToo) {
  const Cycle period = 500;
  const std::uint32_t budget = 4;
  Simulator sim;
  BackingStore store;
  HyperConnect hc("hc", reserved_cfg(period, {budget, 0}));
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig t;
  t.direction = TrafficDirection::kMixed;
  t.burst_beats = 16;
  TrafficGenerator gen("gen", hc.port_link(0), t);
  sim.add(gen);
  sim.reset();

  std::uint64_t prev = 0;
  for (int window = 0; window < 10; ++window) {
    sim.run(period);
    const std::uint64_t issued = hc.supervisor(0).subtransactions_issued();
    EXPECT_LE(issued - prev, budget) << "window " << window;
    prev = issued;
  }
}

}  // namespace
}  // namespace axihc
