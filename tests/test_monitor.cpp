// AXI protocol monitor tests: clean traffic passes, violations are caught.
#include "axi/monitor.hpp"

#include <gtest/gtest.h>

#include "axi/loopback_slave.hpp"
#include "ha/dma_engine.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct MonitorFixture : ::testing::Test {
  MonitorFixture()
      : up("up"), down("down"), mon("mon", up, down), slave("slave", down) {
    up.register_with(sim);
    down.register_with(sim);
    sim.add(mon);
    sim.add(slave);
    sim.reset();
  }

  Simulator sim;
  AxiLink up;
  AxiLink down;
  AxiMonitor mon;
  LoopbackSlave slave;
};

TEST_F(MonitorFixture, CleanReadPasses) {
  AddrReq ar;
  ar.id = 1;
  ar.addr = 0x0;
  ar.beats = 4;
  up.ar.push(ar);
  std::size_t beats = 0;
  sim.run_until(
      [&] {
        while (up.r.can_pop()) {
          up.r.pop();
          ++beats;
        }
        return beats == 4;
      },
      200);
  EXPECT_EQ(beats, 4u);
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.reads_started(), 1u);
  EXPECT_EQ(mon.reads_completed(), 1u);
  EXPECT_EQ(mon.r_beats(), 4u);
}

TEST_F(MonitorFixture, CleanWritePasses) {
  AddrReq aw;
  aw.id = 2;
  aw.addr = 0x100;
  aw.beats = 2;
  up.aw.push(aw);
  up.w.push({1, 0xff, false});
  up.w.push({2, 0xff, true});
  sim.run_until([&] { return up.b.can_pop(); }, 200);
  EXPECT_TRUE(up.b.can_pop());
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.writes_completed(), 1u);
  EXPECT_EQ(mon.w_beats(), 2u);
}

TEST_F(MonitorFixture, OversizedBurstFlagged) {
  AddrReq ar;
  ar.beats = 0;  // illegal
  up.ar.push(ar);
  sim.run(10);
  ASSERT_FALSE(mon.clean());
  EXPECT_NE(mon.violations()[0].find("burst length"), std::string::npos);
}

TEST_F(MonitorFixture, FourKCrossingFlagged) {
  AddrReq ar;
  ar.addr = 0x0FF8;
  ar.beats = 4;  // crosses 0x1000
  up.ar.push(ar);
  sim.run(10);
  ASSERT_FALSE(mon.clean());
  EXPECT_NE(mon.violations()[0].find("4KiB"), std::string::npos);
}

TEST_F(MonitorFixture, IllegalWrapLengthFlagged) {
  AddrReq ar;
  ar.addr = 0x0;
  ar.beats = 6;
  ar.burst = BurstType::kWrap;
  up.ar.push(ar);
  sim.run(10);
  ASSERT_FALSE(mon.clean());
  EXPECT_NE(mon.violations()[0].find("WRAP"), std::string::npos);
}

TEST_F(MonitorFixture, EarlyWlastFlagged) {
  AddrReq aw;
  aw.beats = 4;
  up.aw.push(aw);
  up.w.push({1, 0xff, true});  // WLAST on beat 1 of 4
  sim.run(10);
  ASSERT_FALSE(mon.clean());
  EXPECT_NE(mon.violations()[0].find("WLAST"), std::string::npos);
}

TEST_F(MonitorFixture, Axi3ModeRestrictsBurstLength) {
  Simulator sim3;
  AxiLink up3("u3");
  AxiLink down3("d3");
  AxiMonitor mon3("m3", up3, down3, /*axi3_mode=*/true);
  up3.register_with(sim3);
  down3.register_with(sim3);
  sim3.add(mon3);
  sim3.reset();

  AddrReq ar;
  ar.beats = 32;  // legal in AXI4, illegal in AXI3
  up3.ar.push(ar);
  sim3.run(10);
  EXPECT_FALSE(mon3.clean());
}

TEST_F(MonitorFixture, ThrowModeRaises) {
  mon.set_throw_on_violation(true);
  AddrReq ar;
  ar.beats = 0;
  up.ar.push(ar);
  EXPECT_THROW(sim.run(10), ModelError);
}

TEST_F(MonitorFixture, EndToEndDmaTrafficIsClean) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kReadWrite;
  cfg.bytes_per_job = 1024;
  cfg.burst_beats = 16;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", up, cfg);
  sim.add(dma);
  sim.reset();
  mon.set_throw_on_violation(true);
  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 100000));
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.reads_completed(), 8u);
  EXPECT_EQ(mon.writes_completed(), 8u);
}

}  // namespace
}  // namespace axihc
