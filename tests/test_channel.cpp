// Unit tests for TimingChannel: the two-phase (stage/commit) semantics that
// give every hop exactly one cycle of latency and make the simulation
// independent of component tick order.
#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace axihc {
namespace {

TEST(TimingChannel, PushNotVisibleUntilCommit) {
  TimingChannel<int> ch("ch", 4);
  ch.commit();  // snapshot empty state
  ch.push(1);
  EXPECT_FALSE(ch.can_pop());  // staged, not committed
  ch.commit();
  ASSERT_TRUE(ch.can_pop());
  EXPECT_EQ(ch.front(), 1);
}

TEST(TimingChannel, OneCycleLatencyPerHop) {
  TimingChannel<int> ch("ch", 4);
  ch.commit();
  // Cycle 0: producer pushes.
  ch.push(7);
  ch.commit();
  // Cycle 1: consumer sees it.
  EXPECT_TRUE(ch.can_pop());
  EXPECT_EQ(ch.pop(), 7);
}

TEST(TimingChannel, FifoOrderAcrossCycles) {
  TimingChannel<int> ch("ch", 8);
  ch.commit();
  ch.push(1);
  ch.push(2);
  ch.commit();
  ch.push(3);
  ch.commit();
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 2);
  EXPECT_EQ(ch.pop(), 3);
}

TEST(TimingChannel, BackpressureAtCapacity) {
  TimingChannel<int> ch("ch", 2);
  ch.commit();
  ch.push(1);
  ch.push(2);
  EXPECT_FALSE(ch.can_push());
  EXPECT_THROW(ch.push(3), ModelError);
}

TEST(TimingChannel, CanPushIgnoresSameCyclePops) {
  // A pop this cycle must NOT free space for a push this cycle: occupancy is
  // snapshotted at cycle start. This is what makes tick order irrelevant.
  TimingChannel<int> ch("ch", 1);
  ch.commit();
  ch.push(1);
  ch.commit();
  // Cycle start: channel full (occupancy 1, capacity 1).
  EXPECT_FALSE(ch.can_push());
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_FALSE(ch.can_push()) << "pop freed capacity mid-cycle";
  ch.commit();
  EXPECT_TRUE(ch.can_push());
}

TEST(TimingChannel, PopOnEmptyThrows) {
  TimingChannel<int> ch("ch", 2);
  ch.commit();
  EXPECT_THROW(ch.pop(), ModelError);
  EXPECT_THROW(static_cast<void>(ch.front()), ModelError);
}

TEST(TimingChannel, CountsTraffic) {
  TimingChannel<int> ch("ch", 4);
  ch.commit();
  ch.push(1);
  ch.push(2);
  ch.commit();
  ch.pop();
  EXPECT_EQ(ch.total_pushes(), 2u);
  EXPECT_EQ(ch.total_pops(), 1u);
}

TEST(TimingChannel, ResetDropsEverything) {
  TimingChannel<int> ch("ch", 4);
  ch.commit();
  ch.push(1);
  ch.commit();
  ch.push(2);  // staged
  ch.reset();
  ch.commit();
  EXPECT_FALSE(ch.can_pop());
  EXPECT_EQ(ch.total_pushes(), 0u);
}

TEST(TimingChannel, ClearContentsDropsQueuedAndStaged) {
  TimingChannel<int> ch("ch", 4);
  ch.commit();
  ch.push(1);
  ch.push(2);
  ch.commit();
  ch.push(3);  // staged
  ch.clear_contents();
  EXPECT_FALSE(ch.can_pop());
  EXPECT_EQ(ch.size(), 0u);
  ch.commit();
  EXPECT_FALSE(ch.can_pop()) << "staged element survived the flush";
  EXPECT_TRUE(ch.can_push());
}

TEST(TimingChannel, ClearContentsKeepsTrafficCountersResetZeroesThem) {
  // A flush (eFIFO decoupling) drops the payloads but the port's lifetime
  // traffic counters keep counting; only a hardware reset zeroes them.
  TimingChannel<int> ch("ch", 4);
  ch.commit();
  ch.push(1);
  ch.push(2);
  ch.commit();
  ch.pop();
  ch.clear_contents();
  EXPECT_EQ(ch.total_pushes(), 2u);
  EXPECT_EQ(ch.total_pops(), 1u);

  // The flushed channel is immediately usable with full capacity.
  ch.commit();
  ch.push(5);
  ch.commit();
  EXPECT_EQ(ch.pop(), 5);
  EXPECT_EQ(ch.total_pushes(), 3u);
  EXPECT_EQ(ch.total_pops(), 2u);

  ch.reset();
  EXPECT_EQ(ch.total_pushes(), 0u);
  EXPECT_EQ(ch.total_pops(), 0u);
  EXPECT_FALSE(ch.can_pop());
}

TEST(TimingChannel, ClearContentsRestoresPushHeadroomImmediately) {
  // Unlike a pop (whose freed slot only shows after the commit boundary),
  // a flush grounds the whole port: the occupancy snapshot is flushed with
  // the contents, so producers see full headroom in the same cycle.
  TimingChannel<int> ch("ch", 2);
  ch.commit();
  ch.push(1);
  ch.push(2);
  ch.commit();
  EXPECT_FALSE(ch.can_push());
  ch.clear_contents();
  EXPECT_TRUE(ch.can_push());
  ch.push(9);
  ch.commit();
  EXPECT_EQ(ch.pop(), 9);
}

TEST(TimingChannel, ThroughputFullRateNeedsDepthTwo) {
  // Because readiness is snapshotted at cycle start (registered-ready, as in
  // a hardware register slice), a depth-1 channel alternates push/pop and
  // sustains only half rate; a depth-2 channel (skid buffer) sustains one
  // item per cycle.
  auto measure = [](std::size_t depth) {
    TimingChannel<int> ch("ch", depth);
    ch.commit();
    int received = 0;
    int sent = 0;
    for (int cycle = 0; cycle < 100; ++cycle) {
      if (ch.can_pop()) {
        EXPECT_EQ(ch.pop(), received);
        ++received;
      }
      if (ch.can_push()) ch.push(sent++);
      ch.commit();
    }
    return received;
  };
  EXPECT_EQ(measure(1), 50);
  EXPECT_GE(measure(2), 98);
}

// TimingChannel is final; a minimal ChannelBase subclass exposes mark_dirty
// and counts commit() calls so the dirty-list enqueue discipline itself can
// be observed.
class CommitCountingChannel final : public ChannelBase {
 public:
  explicit CommitCountingChannel(std::string name)
      : ChannelBase(std::move(name)) {}

  void touch() { mark_dirty(); }
  void commit() override {
    ++commits_;
    clear_dirty();
  }
  void reset() override {}
  [[nodiscard]] int commits() const { return commits_; }

 private:
  int commits_ = 0;
};

TEST(DirtyList, MidCycleManualCommitDoesNotEnqueueTwice) {
  // A touch enqueues the channel on the simulator's commit list. A mid-cycle
  // manual commit() clears the dirty flag, so a second touch in the same
  // cycle would re-enqueue under a dirty-flag-only guard — and the end of
  // cycle would then commit (and re-snapshot) the channel twice. The epoch
  // stamp suppresses the duplicate: exactly one end-of-cycle commit.
  Simulator sim;
  CommitCountingChannel ch("ch");
  sim.add(ch);
  sim.reset();  // commits once to snapshot the empty state
  const int base = ch.commits();

  ch.touch();
  ch.commit();  // mid-cycle manual commit
  ch.touch();   // same cycle: dirty again, but already enqueued
  sim.step();
  EXPECT_EQ(ch.commits(), base + 2)
      << "end-of-cycle must commit exactly once";
}

TEST(DirtyList, TouchInLaterCycleReenqueues) {
  // The epoch stamp only suppresses duplicates *within* a cycle: a touch in
  // the next cycle must enqueue again.
  Simulator sim;
  CommitCountingChannel ch("ch");
  sim.add(ch);
  sim.reset();  // commits once to snapshot the empty state
  const int base = ch.commits();

  ch.touch();
  sim.step();
  EXPECT_EQ(ch.commits(), base + 1);
  ch.touch();
  sim.step();
  EXPECT_EQ(ch.commits(), base + 2);
  sim.step();  // quiet cycle: no touch, no commit
  EXPECT_EQ(ch.commits(), base + 2);
}

TEST(DirtyList, StandaloneChannelKeepsFlagLocally) {
  // Without a simulator there is no dirty list; mark_dirty must still work
  // (the flag is purely local) and manual commits behave as before.
  CommitCountingChannel ch("ch");
  ch.touch();
  ch.touch();
  ch.commit();
  ch.touch();
  ch.commit();
  EXPECT_EQ(ch.commits(), 2);
}

}  // namespace
}  // namespace axihc
