// Job-level WCRT analysis: frame/job bounds validated against adversarial
// simulation, and the reservation-sizing inverse.
#include "analysis/job_analysis.hpp"

#include <gtest/gtest.h>

#include "ha/traffic_gen.hpp"
#include "hypervisor/domain.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

TEST(JobProfile, DnnProfileCoversAllLayers) {
  DnnConfig cfg;
  cfg.layers = {{"a", 1024, 512, 256, 10'000}, {"b", 2048, 0, 0, 5'000}};
  cfg.macs_per_cycle = 100;
  const JobProfile job = profile_of(cfg);
  // Layer a: load + compute + store; layer b: load + compute (no store).
  ASSERT_EQ(job.phases.size(), 5u);
  EXPECT_EQ(job.phases[0].read_bytes, 1536u);
  EXPECT_EQ(job.phases[1].compute_cycles, 100u);
  EXPECT_EQ(job.phases[2].write_bytes, 256u);
  EXPECT_EQ(job.total_bytes(), 1024u + 512 + 256 + 2048);
}

TEST(JobProfile, DmaProfileRespectsMode) {
  DmaConfig cfg;
  cfg.bytes_per_job = 4096;
  cfg.mode = DmaMode::kRead;
  EXPECT_EQ(profile_of(cfg).phases[0].read_bytes, 4096u);
  EXPECT_EQ(profile_of(cfg).phases[0].write_bytes, 0u);
  cfg.mode = DmaMode::kReadWrite;
  const JobProfile both = profile_of(cfg);
  EXPECT_EQ(both.total_bytes(), 8192u);
}

TEST(JobAnalysis, SubsForBytes) {
  HcAnalysisConfig cfg;
  cfg.nominal_burst = 16;  // 128 B units
  EXPECT_EQ(subs_for_bytes(cfg, 16, 0), 0u);
  EXPECT_EQ(subs_for_bytes(cfg, 16, 128), 1u);
  EXPECT_EQ(subs_for_bytes(cfg, 16, 129), 2u);
  EXPECT_EQ(subs_for_bytes(cfg, 4, 128), 4u);  // HA bursts smaller: 32 B units
  cfg.nominal_burst = 0;
  EXPECT_EQ(subs_for_bytes(cfg, 16, 1280), 10u);
}

TEST(JobAnalysis, BoundGrowsWithContention) {
  AnalysisPlatform p;
  JobProfile job;
  job.phases.push_back({64 << 10, 0, 0});
  HcAnalysisConfig two;
  two.num_ports = 2;
  HcAnalysisConfig four;
  four.num_ports = 4;
  EXPECT_LT(job_wcrt(two, p, 0, job), job_wcrt(four, p, 0, job));
}

TEST(JobAnalysis, ReservationBoundDominatesSimulatedFrame) {
  // A DNN-like job under reservation, with a flooding adversary: the
  // analytical frame bound must dominate the measured frame time.
  DnnConfig dnn_cfg;
  dnn_cfg.layers = {
      {"l0", 8192, 4096, 2048, 200'000},
      {"l1", 16384, 2048, 1024, 100'000},
  };
  dnn_cfg.macs_per_cycle = 256;
  dnn_cfg.burst_beats = 16;
  dnn_cfg.max_frames = 1;

  const Cycle period = 2000;
  const std::vector<std::uint32_t> budgets = {30, 15};  // 45 * S(16)=41 <= 2000

  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  cfg.reservation_period = period;
  cfg.initial_budgets = budgets;
  HyperConnect hc("hc", cfg);
  MemoryControllerConfig mc;
  mc.row_hit_latency = 10;
  mc.row_miss_latency = 24;
  MemoryController mem("ddr", hc.master_link(), store, mc);
  hc.register_with(sim);
  sim.add(mem);

  DnnAccelerator dnn("dnn", hc.port_link(0), dnn_cfg);
  TrafficConfig adversary;
  adversary.direction = TrafficDirection::kRead;
  adversary.burst_beats = 16;
  adversary.base = 0x6000'0000;
  TrafficGenerator flood("flood", hc.port_link(1), adversary);
  sim.add(dnn);
  sim.add(flood);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return dnn.finished(); }, 10'000'000));
  const Cycle measured = dnn.frame_completion_cycles()[0];

  HcAnalysisConfig a;
  a.num_ports = 2;
  a.nominal_burst = 16;
  a.reservation_period = period;
  a.budgets = budgets;
  a.competitor_backlog = 4;
  AnalysisPlatform p;
  p.mem_latency = mc.row_miss_latency;
  p.turnaround = mc.turnaround;
  ASSERT_TRUE(reservation_feasible(a, p));
  const Cycle bound = job_wcrt(a, p, 0, profile_of(dnn_cfg));

  EXPECT_LE(measured, bound);
  EXPECT_LE(bound, measured * 30) << "uselessly loose job bound";
}

TEST(JobAnalysis, MinBudgetForDeadlineIsTightAndSound) {
  DnnConfig dnn_cfg;
  dnn_cfg.layers = {{"l0", 32768, 8192, 4096, 400'000}};
  dnn_cfg.macs_per_cycle = 256;
  const JobProfile job = profile_of(dnn_cfg);

  HcAnalysisConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  cfg.reservation_period = 2000;
  cfg.budgets = {0, 7};
  AnalysisPlatform p;

  const Cycle deadline = 40'000;
  const std::uint32_t budget =
      min_budget_for_deadline(cfg, p, 0, job, deadline);
  ASSERT_GT(budget, 0u);

  // Sound: the returned budget meets the deadline...
  cfg.budgets[0] = budget;
  EXPECT_LE(job_wcrt(cfg, p, 0, job), deadline);
  // ...and minimal: one less budget unit misses it (or is infeasible).
  if (budget > 1) {
    cfg.budgets[0] = budget - 1;
    const bool feasible = reservation_feasible(cfg, p);
    EXPECT_TRUE(!feasible || job_wcrt(cfg, p, 0, job) > deadline);
  }
}

TEST(JobAnalysis, ImpossibleDeadlineReturnsZero) {
  JobProfile job;
  job.phases.push_back({1 << 20, 0, 0});  // 1 MB
  HcAnalysisConfig cfg;
  cfg.num_ports = 2;
  cfg.reservation_period = 2000;
  cfg.budgets = {0, 0};
  AnalysisPlatform p;
  EXPECT_EQ(min_budget_for_deadline(cfg, p, 0, job, /*deadline=*/100), 0u);
}

}  // namespace
}  // namespace axihc
