// Feature-interaction matrix: every combination of the HyperConnect's
// orthogonal features must compose correctly — protocol-clean HA streams,
// conservation of all requested bytes, and budget enforcement whenever
// reservation is on. 16 combinations, each with monitored mixed traffic.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "axi/monitor.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

/// (out_of_order, reservation, equalization, qos_priority)
using Combo = std::tuple<bool, bool, bool, bool>;

class FeatureMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(FeatureMatrix, ComposesCorrectly) {
  const auto [ooo, reservation, equalization, qos] = GetParam();

  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = equalization ? 16 : 0;
  cfg.max_outstanding = 4;
  cfg.out_of_order = ooo;
  cfg.arbitration =
      qos ? ArbitrationPolicy::kQosPriority : ArbitrationPolicy::kRoundRobin;
  if (reservation) {
    cfg.reservation_period = 1000;
    cfg.initial_budgets = {12, 8};
  }
  HyperConnect hc("hc", cfg);

  MemoryControllerConfig mc;
  mc.row_hit_latency = 6;
  mc.row_miss_latency = 18;
  if (ooo) {
    mc.scheduling = MemScheduling::kFrFcfs;
    mc.id_order_mask = 0xFFFF0000;
  }
  MemoryController mem("ddr", hc.master_link(), store, mc);
  hc.register_with(sim);
  sim.add(mem);

  std::vector<std::unique_ptr<AxiLink>> links;
  std::vector<std::unique_ptr<AxiMonitor>> monitors;
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  for (PortIndex p = 0; p < 2; ++p) {
    links.push_back(std::make_unique<AxiLink>("ha" + std::to_string(p)));
    links.back()->register_with(sim);
    monitors.push_back(std::make_unique<AxiMonitor>(
        "mon" + std::to_string(p), *links.back(), hc.port_link(p)));
    monitors.back()->set_throw_on_violation(true);
    sim.add(*monitors.back());

    TrafficConfig t;
    t.direction = TrafficDirection::kMixed;
    t.burst_beats = p == 0 ? 32 : 8;  // heterogeneous bursts
    t.qos = static_cast<std::uint8_t>(p * 4);
    t.base = 0x4000'0000 + (static_cast<Addr>(p) << 26);
    t.max_transactions = 40;
    t.tolerate_out_of_order = ooo;
    gens.push_back(std::make_unique<TrafficGenerator>(
        "g" + std::to_string(p), *links.back(), t));
    sim.add(*gens.back());
  }
  sim.reset();

  ASSERT_TRUE(sim.run_until(
      [&] { return gens[0]->finished() && gens[1]->finished(); },
      3'000'000))
      << "ooo=" << ooo << " res=" << reservation << " eq=" << equalization
      << " qos=" << qos;

  // Protocol legality survived the combination.
  EXPECT_TRUE(monitors[0]->clean());
  EXPECT_TRUE(monitors[1]->clean());

  // Conservation: every requested byte was delivered.
  for (PortIndex p = 0; p < 2; ++p) {
    const auto expected =
        40ull * (p == 0 ? 32 : 8) * 8;  // txns * beats * bytes
    EXPECT_EQ(gens[p]->stats().bytes_read + gens[p]->stats().bytes_written,
              expected)
        << "port " << p;
  }

  // Budget enforcement when reservation is on (checked over full windows).
  if (reservation) {
    sim.reset();  // fresh deterministic re-run, windows aligned to cycle 0
    std::uint64_t prev0 = 0;
    for (int w = 0; w < 6; ++w) {
      sim.run(1000);
      const auto c0 = hc.supervisor(0).subtransactions_issued();
      EXPECT_LE(c0 - prev0, 12u) << "window " << w;
      prev0 = c0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FeatureMatrix,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Bool()),
    [](const auto& param_info) {
      // No structured bindings here: commas inside [..] would split the
      // macro's arguments.
      std::string name;
      name += std::get<0>(param_info.param) ? "ooo_" : "inorder_";
      name += std::get<1>(param_info.param) ? "res_" : "nores_";
      name += std::get<2>(param_info.param) ? "eq_" : "noeq_";
      name += std::get<3>(param_info.param) ? "qos" : "rr";
      return name;
    });

}  // namespace
}  // namespace axihc
