// Sweep engine (src/sweep) + canonical config digests (src/config/canonical):
// axis expansion, cell purity, scheduler determinism, the result cache's
// hit/miss/invalidate behaviour, shard unions, pins, and reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "config/canonical.hpp"
#include "config/ini.hpp"
#include "sweep/code_version.hpp"
#include "sweep/json_mini.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/sweep.hpp"

namespace axihc {
namespace {

/// Scoped environment override (process-local; tests restore on exit).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

/// Rows embed the code-version digest; blank it out so runs under different
/// AXIHC_CODE_VERSION values can be compared on measurements alone.
std::vector<std::string> without_code(std::vector<std::string> lines) {
  for (std::string& line : lines) {
    const std::size_t key = line.find("\"code\":\"");
    if (key == std::string::npos) continue;
    const std::size_t begin = key + 8;
    const std::size_t end = line.find('"', begin);
    line.replace(begin, end - begin, "*");
  }
  return lines;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "axihc_sweep_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Canonical config serialization + digest

TEST(Canonical, ValueNormalization) {
  EXPECT_EQ(canonical_value("  16   32 "), "16 32");
  EXPECT_EQ(canonical_value("0x40"), "64");
  EXPECT_EQ(canonical_value("yes"), "true");
  EXPECT_EQ(canonical_value("off"), "false");
  EXPECT_EQ(canonical_value("round_robin"), "round_robin");
}

TEST(Canonical, DigestIgnoresSpellingNotMeaning) {
  const std::string a =
      "[system]\nports = 2\ncycles = 0x3E8\n[ha0]\ntype = dma\n";
  const std::string b =
      "; a comment\n[ha0]\ntype = dma\n[system]\ncycles = 1000\n";
  // ports = 2 is the builder default -> elided; hex and decimal cycles
  // match; section and key order never matter.
  EXPECT_EQ(config_digest(a), config_digest(b));
  EXPECT_NE(config_digest(a),
            config_digest("[system]\ncycles = 1001\n[ha0]\ntype = dma\n"));
}

TEST(Canonical, FirstDuplicateWins) {
  // get_* reads the first occurrence, so canonicalization must too.
  EXPECT_EQ(config_digest("[ha0]\ntype = dma\nburst = 8\nburst = 32\n"),
            config_digest("[ha0]\ntype = dma\nburst = 8\n"));
}

TEST(Canonical, DefaultedKeysDropButSectionsSurvive) {
  // Spelling out a default does not change the digest...
  EXPECT_EQ(config_digest("[hyperconnect]\nnominal_burst = 16\n"),
            config_digest("[hyperconnect]\n"));
  // ...but an empty [recovery] is NOT the same system as no [recovery]:
  // the section's presence builds the hypervisor stack.
  EXPECT_NE(config_digest("[system]\n[recovery]\n"),
            config_digest("[system]\n"));
}

TEST(Canonical, DepthAlternativesCollapse) {
  // data_depth = 32 spells the structural default (0 = "unset").
  EXPECT_EQ(config_digest("[hyperconnect]\ndata_depth = 32\n"),
            config_digest("[hyperconnect]\ndata_depth = 0\n"));
  EXPECT_NE(config_digest("[hyperconnect]\ndata_depth = 64\n"),
            config_digest("[hyperconnect]\ndata_depth = 0\n"));
}

TEST(Canonical, IniReplacePrimitive) {
  IniFile ini = IniFile::parse("[a]\nk = 1\nk = 2\nother = x\n");
  ini.get_or_add_section("a").replace("k", "9");
  // replace() updates the first occurrence (the one lookups read).
  EXPECT_EQ(ini.section("a")->get_string("k"), "9");
  ini.get_or_add_section("b").replace("new", "v");
  EXPECT_EQ(ini.section("b")->get_string("new"), "v");
}

// ---------------------------------------------------------------------------
// Spec parsing + axis expansion

TEST(SweepSpec, AxisValueExpansion) {
  EXPECT_EQ(expand_axis_values("8 | 16 | 32"),
            (std::vector<std::string>{"8", "16", "32"}));
  EXPECT_EQ(expand_axis_values("64 7 | 7 64"),
            (std::vector<std::string>{"64 7", "7 64"}));
  EXPECT_EQ(expand_axis_values("single"),
            (std::vector<std::string>{"single"}));
  EXPECT_EQ(expand_axis_values("range 1000 4000 1000"),
            (std::vector<std::string>{"1000", "2000", "3000", "4000"}));
  EXPECT_EQ(expand_axis_values("range 1 10 4"),
            (std::vector<std::string>{"1", "5", "9"}));
  EXPECT_THROW((void)expand_axis_values("8 | | 32"), ModelError);
  EXPECT_THROW((void)expand_axis_values("range 10 1 1"), ModelError);
  EXPECT_THROW((void)expand_axis_values("range 1 10 0"), ModelError);
  EXPECT_THROW((void)expand_axis_values("range 1 10"), ModelError);
}

TEST(SweepSpec, CartesianCountAndOrdering) {
  const IniFile ini = IniFile::parse(
      "[system]\n[ha0]\ntype = traffic\n[sweep]\n"
      "axis.hyperconnect.nominal_burst = 8 | 16 | 32\n"
      "axis.ha0.gap = 0 | 4\n");
  const SweepSpec spec = parse_sweep_spec(ini);
  EXPECT_EQ(spec.cell_count(), 6u);
  // Last axis varies fastest.
  EXPECT_EQ(spec.cell_indices(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(spec.cell_indices(1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(spec.cell_indices(2), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(spec.cell_indices(5), (std::vector<std::size_t>{2, 1}));
}

TEST(SweepSpec, NoAxesMeansOneCell) {
  const IniFile ini =
      IniFile::parse("[system]\n[ha0]\ntype = traffic\n[sweep]\nname = solo\n");
  const SweepSpec spec = parse_sweep_spec(ini);
  EXPECT_EQ(spec.cell_count(), 1u);
  EXPECT_EQ(spec.name, "solo");
}

TEST(SweepSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_sweep_spec(IniFile::parse("[system]\n")),
               ModelError);  // no [sweep]
  EXPECT_THROW(
      (void)parse_sweep_spec(IniFile::parse("[sweep]\nbogus_key = 1\n")),
      ModelError);
  EXPECT_THROW(
      (void)parse_sweep_spec(IniFile::parse("[sweep]\naxis.nokey = 1\n")),
      ModelError);
  EXPECT_THROW((void)parse_sweep_spec(IniFile::parse(
                   "[sweep]\naxis.a.k = 1\naxis.a.k = 2\n")),
               ModelError);  // duplicate axis
  EXPECT_THROW((void)parse_sweep_spec(IniFile::parse(
                   "[sweep]\naxis.sweep.cycles = 1 | 2\n")),
               ModelError);  // cannot sweep [sweep]
  EXPECT_THROW((void)parse_sweep_spec(
                   IniFile::parse("[sweep]\n[campaign]\nruns = 2\n")),
               ModelError);  // campaigns and sweeps don't mix
}

TEST(SweepSpec, CellConfigIsPureOverride) {
  const IniFile ini = IniFile::parse(
      "[system]\ncycles = 99\n[hyperconnect]\nnominal_burst = 16\n"
      "[ha0]\ntype = traffic\n[sweep]\ncycles = 5000\n"
      "axis.hyperconnect.nominal_burst = 8 | 32\n"
      "axis.ha1.gap = 1 | 2\n");
  const SweepSpec spec = parse_sweep_spec(ini);
  const IniFile cell3 = sweep_cell_config(ini, spec, 3);
  // [sweep] is gone; the axis replaced the existing key in place; the
  // missing [ha1] section was created; the horizon override landed in
  // [system] so the config digest covers it.
  EXPECT_EQ(cell3.section("sweep"), nullptr);
  EXPECT_EQ(cell3.section("hyperconnect")->get_u64("nominal_burst", 0), 32u);
  ASSERT_NE(cell3.section("ha1"), nullptr);
  EXPECT_EQ(cell3.section("ha1")->get_u64("gap", 0), 2u);
  EXPECT_EQ(cell3.section("system")->get_u64("cycles", 0), 5000u);
  // Pure function: same (spec, cell) -> same digest, different cell ->
  // different digest.
  EXPECT_EQ(config_digest(sweep_cell_config(ini, spec, 3)),
            config_digest(cell3));
  EXPECT_NE(config_digest(sweep_cell_config(ini, spec, 2)),
            config_digest(cell3));
}

// ---------------------------------------------------------------------------
// Runner: determinism, cache, shards, pins

constexpr const char* kRunnable =
    "[system]\n"
    "interconnect = hyperconnect\n"
    "ports = 2\n"
    "[hyperconnect]\n"
    "reservation_period = 2000\n"
    "budgets = 36 36\n"
    "[ha0]\n"
    "type = traffic\n"
    "direction = read\n"
    "[ha1]\n"
    "type = traffic\n"
    "direction = mixed\n"
    "[sweep]\n"
    "name = unit\n"
    "cycles = 3000\n"
    "axis.hyperconnect.nominal_burst = 8 | 16\n"
    "axis.ha1.gap = 0 | 8\n";

SweepSummary run(const std::string& text, SweepOptions opts) {
  return run_sweep(IniFile::parse(text), opts);
}

TEST(SweepRunner, DeterministicAcrossRerunsAndThreadCounts) {
  SweepOptions opts;
  opts.deterministic = true;
  const SweepSummary serial = [&] {
    ScopedEnv env("AXIHC_BENCH_THREADS", "1");
    return run(kRunnable, opts);
  }();
  const SweepSummary parallel = [&] {
    ScopedEnv env("AXIHC_BENCH_THREADS", "4");
    return run(kRunnable, opts);
  }();
  ASSERT_EQ(serial.lines.size(), 4u);
  // Byte-identical rows: same order, same measurements, no timing fields.
  EXPECT_EQ(serial.lines, parallel.lines);
  EXPECT_EQ(serial.lines, run(kRunnable, opts).lines);
}

TEST(SweepRunner, RowsCarrySchedulerRiders) {
  SweepOptions opts;  // deterministic off -> timing fields present
  const SweepSummary s = run(kRunnable, opts);
  for (const std::string& line : s.lines) {
    const JsonValue row = parse_json(line);
    ASSERT_NE(row.find("wall_ms"), nullptr) << line;
    ASSERT_NE(row.find("rss_kb"), nullptr) << line;
    ASSERT_NE(row.find("cached"), nullptr) << line;
    EXPECT_GT(row.find("rss_kb")->number, 0.0);
    EXPECT_GE(row.find("wall_ms")->number, 0.0);
  }
}

TEST(SweepRunner, CacheHitsMissesAndInvalidation) {
  ScopedEnv ver("AXIHC_CODE_VERSION", "cache_test_v1");
  const std::string dir = fresh_dir("cache");
  SweepOptions opts;
  opts.cache_dir = dir;
  opts.deterministic = true;

  const SweepSummary first = run(kRunnable, opts);
  EXPECT_EQ(first.executed, 4u);
  EXPECT_EQ(first.cache_hits, 0u);

  // Identical re-run: all hits, byte-identical rows.
  const SweepSummary second = run(kRunnable, opts);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.cache_hits, 4u);
  EXPECT_EQ(second.lines, first.lines);

  // Editing one axis value re-runs ONLY the cells it touches: gap 8 -> 12
  // invalidates two cells, the gap-0 cells still hit.
  std::string edited = kRunnable;
  const std::size_t pos = edited.find("0 | 8");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 5, "0 | 12");
  const SweepSummary third = run(edited, opts);
  EXPECT_EQ(third.executed, 2u);
  EXPECT_EQ(third.cache_hits, 2u);

  // A code-version bump invalidates everything, even with identical configs.
  {
    ScopedEnv bump("AXIHC_CODE_VERSION", "cache_test_v2");
    const SweepSummary rebuilt = run(kRunnable, opts);
    EXPECT_EQ(rebuilt.executed, 4u);
    EXPECT_EQ(rebuilt.cache_hits, 0u);
    // The measurements themselves are reproducible: the re-executed rows
    // match the first run bit-for-bit outside the code-version field.
    EXPECT_EQ(without_code(rebuilt.lines), without_code(first.lines));
  }
  std::filesystem::remove_all(dir);
}

TEST(SweepRunner, CacheEntriesAreSharedAcrossIdenticalConfigs) {
  ScopedEnv ver("AXIHC_CODE_VERSION", "shared_test_v1");
  const std::string dir = fresh_dir("shared");
  // Two axis values that canonicalize to the same config (16 == 0x10): the
  // second cell must hit the first cell's entry within a single run.
  const std::string text =
      "[system]\nports = 2\n[ha0]\ntype = traffic\n[sweep]\ncycles = 2000\n"
      "axis.ha0.burst = 0x10 | 16\n";
  SweepOptions opts;
  opts.cache_dir = dir;
  opts.deterministic = true;
  ScopedEnv serial("AXIHC_BENCH_THREADS", "1");
  const SweepSummary s = run(text, opts);
  EXPECT_EQ(s.executed, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  std::filesystem::remove_all(dir);
}

TEST(SweepRunner, ShardUnionEqualsUnsharded) {
  SweepOptions opts;
  opts.deterministic = true;
  const SweepSummary whole = run(kRunnable, opts);

  std::vector<std::string> merged;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    SweepOptions sopts = opts;
    sopts.shard_index = shard;
    sopts.shard_count = 2;
    const SweepSummary part = run(kRunnable, sopts);
    EXPECT_EQ(part.shard_cells, 2u);
    merged.insert(merged.end(), part.lines.begin(), part.lines.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const std::string& a, const std::string& b) {
              return parse_json(a).find("cell")->number <
                     parse_json(b).find("cell")->number;
            });
  EXPECT_EQ(merged, whole.lines);
}

TEST(SweepRunner, PinsCatchDivergence) {
  SweepOptions opts;
  opts.deterministic = true;
  const SweepSummary s = run(kRunnable, opts);
  std::string pins;
  for (const std::string& line : s.lines) pins += line + "\n";

  std::ostringstream quiet;
  EXPECT_EQ(check_pins(s.lines, pins, quiet), 0u);

  // Corrupt one pinned state digest: exactly one mismatch, and it names
  // the cell.
  std::string bad = pins;
  const std::size_t pos = bad.find("\"state_digest\":\"0x");
  ASSERT_NE(pos, std::string::npos);
  bad[pos + 18] = bad[pos + 18] == 'f' ? '0' : 'f';
  std::ostringstream err;
  EXPECT_EQ(check_pins(s.lines, bad, err), 1u);
  EXPECT_NE(err.str().find("cell 0"), std::string::npos);

  // Pins for cells this shard never produced are ignored.
  EXPECT_EQ(check_pins({s.lines[1]}, pins, quiet), 0u);
}

TEST(SweepRunner, RowsExposeRollups) {
  SweepOptions opts;
  opts.deterministic = true;
  const SweepSummary s = run(kRunnable, opts);
  for (const std::string& line : s.lines) {
    const JsonValue row = parse_json(line);
    EXPECT_GT(row.find("total_bytes")->number, 0.0) << line;
    EXPECT_GT(row.find("throughput_bpc")->number, 0.0) << line;
    // Plain hyperconnect + in-order memory: the WCLA bound model is armed
    // and untripped, so the slack is in (0, 1].
    EXPECT_GT(row.find("bound_checked")->number, 0.0) << line;
    EXPECT_EQ(row.find("bound_violations")->number, 0.0) << line;
    EXPECT_GT(row.find("wcla_slack")->number, 0.0) << line;
    EXPECT_GT(row.find("lut")->number, 0.0) << line;
    ASSERT_EQ(row.find("ha")->items.size(), 2u) << line;
  }
}

TEST(SweepRunner, SmartConnectCellsFlagMissingBound) {
  const std::string text =
      "[system]\ninterconnect = smartconnect\nports = 2\n"
      "[ha0]\ntype = traffic\n[sweep]\ncycles = 2000\n"
      "axis.ha0.burst = 8 | 16\n";
  SweepOptions opts;
  opts.deterministic = true;
  const SweepSummary s = run(text, opts);
  for (const std::string& line : s.lines) {
    EXPECT_EQ(parse_json(line).find("wcla_slack")->number, -1.0) << line;
  }
}

// ---------------------------------------------------------------------------
// Report

TEST(SweepReport, ParetoAndSensitivity) {
  SweepOptions opts;
  opts.deterministic = true;
  const SweepSummary s = run(kRunnable, opts);

  const std::string md = sweep_report_markdown(s.lines);
  EXPECT_NE(md.find("# Sweep report: unit"), std::string::npos);
  EXPECT_NE(md.find("## Pareto front"), std::string::npos);
  EXPECT_NE(md.find("## Sensitivity: hyperconnect.nominal_burst"),
            std::string::npos);
  EXPECT_NE(md.find("## Sensitivity: ha1.gap"), std::string::npos);
  EXPECT_NE(md.find("wcla_slack"), std::string::npos);

  const JsonValue rep = parse_json(sweep_report_json(s.lines));
  EXPECT_EQ(rep.find("rows")->number, 4.0);
  EXPECT_EQ(rep.find("metric")->str_or(""), "wcla_slack");
  const JsonValue* pareto = rep.find("pareto");
  ASSERT_NE(pareto, nullptr);
  ASSERT_FALSE(pareto->items.empty());
  // Every Pareto member must be a real cell, and no member may dominate
  // another (spot-check the invariant on the emitted front).
  const JsonValue* sens = rep.find("sensitivity");
  ASSERT_NE(sens, nullptr);
  ASSERT_EQ(sens->members.size(), 2u);
  // Each axis saw 2 values x 2 cells.
  for (const auto& [axis, values] : sens->members) {
    ASSERT_EQ(values.items.size(), 2u) << axis;
    for (const JsonValue& v : values.items) {
      EXPECT_EQ(v.find("cells")->number, 2.0) << axis;
    }
  }
}

TEST(SweepReport, FallsBackToTailLatencyWithoutBounds) {
  const std::string text =
      "[system]\ninterconnect = smartconnect\nports = 2\n"
      "[ha0]\ntype = traffic\n[sweep]\ncycles = 2000\n"
      "axis.ha0.burst = 8 | 16\n";
  SweepOptions opts;
  opts.deterministic = true;
  const SweepSummary s = run(text, opts);
  const JsonValue rep = parse_json(sweep_report_json(s.lines));
  EXPECT_EQ(rep.find("metric")->str_or(""), "neg_read_p99");
}

// ---------------------------------------------------------------------------
// Code version

TEST(CodeVersion, EnvOverridesBakedDigest) {
  const std::string baked = [] {
    ScopedEnv clear("AXIHC_CODE_VERSION", "");
    return code_version();
  }();
  EXPECT_FALSE(baked.empty());
  ScopedEnv env("AXIHC_CODE_VERSION", "pinned");
  EXPECT_EQ(code_version(), "pinned");
}

}  // namespace
}  // namespace axihc
