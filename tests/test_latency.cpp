// Per-channel propagation latency: the cycle-exact reproduction of the
// paper's Fig. 3(a) claims.
//
//   HyperConnect : dAR = dAW = 4,  dR = dW = 2,  dB = 2
//   SmartConnect : dAR = dAW = 12, dR = 11, dW = 3, dB = 2
//
// Method: attach an instrumented zero-latency slave (LoopbackSlave) to the
// interconnect's master port, drive the HA-side channels directly at known
// cycles, and compare push cycles to arrival cycles.
#include <gtest/gtest.h>

#include "axi/loopback_slave.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "interconnect/smartconnect.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

/// Measures the five channel latencies through `icn`.
struct ChannelLatencies {
  Cycle ar = 0;
  Cycle aw = 0;
  Cycle r = 0;
  Cycle w = 0;
  Cycle b = 0;
};

ChannelLatencies measure(Interconnect& icn, Simulator& sim,
                         LoopbackSlave& slave) {
  ChannelLatencies lat;
  AxiLink& port = icn.port_link(0);
  sim.reset();

  // --- read transaction: AR downstream, R upstream -----------------------
  AddrReq ar;
  ar.id = 1;
  ar.addr = 0x100;
  ar.beats = 1;
  const Cycle ar_pushed = sim.now();
  port.ar.push(ar);
  const bool got_r = sim.run_until([&] { return port.r.can_pop(); }, 200);
  EXPECT_TRUE(got_r);
  EXPECT_EQ(slave.ar_arrivals.size(), 1u);
  lat.ar = slave.ar_arrivals[0] - ar_pushed;
  lat.r = sim.now() - slave.r_first_push[0];
  port.r.pop();

  // --- write transaction: AW + W downstream, B upstream ------------------
  AddrReq aw;
  aw.id = 2;
  aw.addr = 0x200;
  aw.beats = 1;
  const Cycle aw_pushed = sim.now();
  port.aw.push(aw);
  port.w.push({0xAB, 0xff, true});
  const bool got_b = sim.run_until([&] { return port.b.can_pop(); }, 200);
  EXPECT_TRUE(got_b);
  EXPECT_EQ(slave.aw_arrivals.size(), 1u);
  lat.aw = slave.aw_arrivals[0] - aw_pushed;
  lat.w = slave.w_first_beat[0] - aw_pushed;
  lat.b = sim.now() - slave.b_pushes[0];
  port.b.pop();
  return lat;
}

TEST(ChannelLatency, HyperConnectMatchesPaperFig3a) {
  Simulator sim;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  LoopbackSlave slave("slave", hc.master_link());
  hc.register_with(sim);
  sim.add(slave);

  const ChannelLatencies lat = measure(hc, sim, slave);
  // eFIFO(1) + TS(1) + EXBAR(1) + eFIFO(1) on address channels.
  EXPECT_EQ(lat.ar, 4u);
  EXPECT_EQ(lat.aw, 4u);
  // eFIFO(1) + eFIFO(1) on data/response channels (TS/EXBAR proactive).
  EXPECT_EQ(lat.r, 2u);
  EXPECT_EQ(lat.b, 2u);
  // W data leaves with the AW; its own path is 2 cycles, but it can only be
  // pulled after the AW grant, so first-W-at-slave == AW arrival time.
  EXPECT_LE(lat.w - lat.aw, 1u);
}

TEST(ChannelLatency, SmartConnectMatchesPaperFig3a) {
  Simulator sim;
  SmartConnect sc("sc", 2, {});
  LoopbackSlave slave("slave", sc.master_link());
  sc.register_with(sim);
  sim.add(slave);

  const ChannelLatencies lat = measure(sc, sim, slave);
  EXPECT_EQ(lat.ar, 12u);
  EXPECT_EQ(lat.aw, 12u);
  EXPECT_EQ(lat.r, 11u);
  EXPECT_EQ(lat.b, 2u);
}

TEST(ChannelLatency, ImprovementPercentagesMatchPaper) {
  Simulator sim_hc;
  HyperConnect hc("hc", {});
  LoopbackSlave sl_hc("s1", hc.master_link());
  hc.register_with(sim_hc);
  sim_hc.add(sl_hc);
  const ChannelLatencies l_hc = measure(hc, sim_hc, sl_hc);

  Simulator sim_sc;
  SmartConnect sc("sc", 2, {});
  LoopbackSlave sl_sc("s2", sc.master_link());
  sc.register_with(sim_sc);
  sim_sc.add(sl_sc);
  const ChannelLatencies l_sc = measure(sc, sim_sc, sl_sc);

  auto improvement = [](Cycle ours, Cycle theirs) {
    return 100.0 * (1.0 - static_cast<double>(ours) /
                              static_cast<double>(theirs));
  };
  // Paper: 66% on AR/AW, 82% on R, equal on B.
  EXPECT_NEAR(improvement(l_hc.ar, l_sc.ar), 66.0, 2.0);
  EXPECT_NEAR(improvement(l_hc.aw, l_sc.aw), 66.0, 2.0);
  EXPECT_NEAR(improvement(l_hc.r, l_sc.r), 82.0, 2.0);
  EXPECT_EQ(l_hc.b, l_sc.b);
  // Whole-transaction improvements: read dAR+dR = 74%.
  EXPECT_NEAR(improvement(l_hc.ar + l_hc.r, l_sc.ar + l_sc.r), 74.0, 2.0);
}

TEST(ChannelLatency, HyperConnectLatencyIndependentOfBurstSize) {
  // The TS adds one cycle per address request regardless of burst length
  // (§V-B): AR propagation is constant in beats.
  for (BeatCount beats : {1u, 4u, 16u}) {
    Simulator sim;
    HyperConnect hc("hc", {});
    LoopbackSlave slave("slave", hc.master_link());
    hc.register_with(sim);
    sim.add(slave);
    sim.reset();

    AddrReq ar;
    ar.id = 1;
    ar.addr = 0x0;
    ar.beats = beats;
    const Cycle pushed = sim.now();
    hc.port_link(0).ar.push(ar);
    ASSERT_TRUE(
        sim.run_until([&] { return !slave.ar_arrivals.empty(); }, 100));
    EXPECT_EQ(slave.ar_arrivals[0] - pushed, 4u) << "beats=" << beats;
  }
}

TEST(ChannelLatency, HyperConnectWorstCaseArbitrationBound) {
  // With N=2 greedy ports, a request waits at most (N-1) = 1 extra
  // transaction slot at the EXBAR (fixed granularity 1): the second port's
  // AR arrives at most one grant-cycle after the first.
  Simulator sim;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  LoopbackSlave slave("slave", hc.master_link());
  hc.register_with(sim);
  sim.add(slave);
  sim.reset();

  AddrReq a;
  a.id = 1;
  a.addr = 0x0;
  a.beats = 1;
  hc.port_link(0).ar.push(a);
  AddrReq b;
  b.id = 2;
  b.addr = 0x80;
  b.beats = 1;
  hc.port_link(1).ar.push(b);
  const Cycle pushed = sim.now();

  ASSERT_TRUE(sim.run_until([&] { return slave.ar_arrivals.size() == 2; },
                            100));
  EXPECT_EQ(slave.ar_arrivals[0] - pushed, 4u);
  EXPECT_EQ(slave.ar_arrivals[1] - pushed, 5u);  // +1 grant slot, no more
}

}  // namespace
}  // namespace axihc
