// Resource-estimation tests: Table I calibration and scaling shape.
#include "resources/resources.hpp"

#include <gtest/gtest.h>

namespace axihc {
namespace {

TEST(Resources, HyperConnectMatchesTable1) {
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  const ResourceUsage u = estimate_hyperconnect(cfg);
  // Paper Table I (ZCU102, Vivado 2018.2): 3020 LUT, 1289 FF, 0 BRAM/DSP.
  EXPECT_NEAR(u.lut, 3020, 3020 * 0.02);
  EXPECT_NEAR(u.ff, 1289, 1289 * 0.02);
  EXPECT_EQ(u.bram, 0u);
  EXPECT_EQ(u.dsp, 0u);
}

TEST(Resources, SmartConnectMatchesTable1) {
  const ResourceUsage u = estimate_smartconnect(2);
  EXPECT_NEAR(u.lut, 3785, 3785 * 0.02);
  EXPECT_NEAR(u.ff, 7137, 7137 * 0.02);
  EXPECT_EQ(u.bram, 0u);
  EXPECT_EQ(u.dsp, 0u);
}

TEST(Resources, HyperConnectUsesFewerResourcesThanSmartConnect) {
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  const ResourceUsage hc = estimate_hyperconnect(cfg);
  const ResourceUsage sc = estimate_smartconnect(2);
  EXPECT_LT(hc.lut, sc.lut);
  EXPECT_LT(hc.ff, sc.ff);
  // The FF gap is the headline: slim 4-stage pipeline vs deep pipelines.
  EXPECT_LT(hc.ff * 4, sc.ff);
}

TEST(Resources, ScalesWithPortCount) {
  HyperConnectConfig small;
  small.num_ports = 2;
  HyperConnectConfig big;
  big.num_ports = 8;
  const ResourceUsage s = estimate_hyperconnect(small);
  const ResourceUsage b = estimate_hyperconnect(big);
  EXPECT_GT(b.lut, s.lut);
  EXPECT_GT(b.ff, s.ff);
  // Sub-linear in ports is wrong; super-quadratic would be too: sanity band.
  EXPECT_LT(b.lut, s.lut * 4);
}

TEST(Resources, ScalesWithFifoDepth) {
  HyperConnectConfig shallow;
  shallow.num_ports = 2;
  HyperConnectConfig deep = shallow;
  deep.port_link_cfg.r_depth = 256;
  deep.port_link_cfg.w_depth = 256;
  EXPECT_GT(estimate_hyperconnect(deep).lut,
            estimate_hyperconnect(shallow).lut);
}

TEST(Resources, EfifoStorageDominatedByDataQueues) {
  AxiLinkConfig cfg;
  const ResourceUsage base = estimate_efifo(cfg);
  AxiLinkConfig deeper = cfg;
  deeper.b_depth *= 2;  // B queue is 8 bits wide: negligible
  AxiLinkConfig deeper_r = cfg;
  deeper_r.r_depth *= 2;  // R queue is 73 bits wide: significant
  EXPECT_LE(estimate_efifo(deeper).lut - base.lut, 1u);
  EXPECT_GT(estimate_efifo(deeper_r).lut, base.lut + 20u);
}

TEST(Resources, UtilizationFormatting) {
  EXPECT_EQ(utilization(3020, 274080), "3020 (1.1%)");
  EXPECT_EQ(utilization(7137, 548160), "7137 (1.3%)");
}

TEST(Resources, DeviceBudgets) {
  EXPECT_EQ(zcu102().lut, 274080u);
  EXPECT_EQ(zcu102().ff, 548160u);
  EXPECT_GT(zcu102().lut, zynq7020().lut);
}

TEST(Resources, UsageAddition) {
  ResourceUsage a{10, 20, 1, 2};
  ResourceUsage b{1, 2, 3, 4};
  const ResourceUsage c = a + b;
  EXPECT_EQ(c.lut, 11u);
  EXPECT_EQ(c.ff, 22u);
  EXPECT_EQ(c.bram, 4u);
  EXPECT_EQ(c.dsp, 6u);
}

}  // namespace
}  // namespace axihc
