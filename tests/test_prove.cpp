// axihc-prove (src/prove): the static predictability certifier. Covers the
// certificate format, each disprover firing on a fixture it exists for, the
// unmodeled classifications, determinism, the lint wiring, the sweep
// screening (disproved annotation rows, structured error rows, cached
// certificates), and the headline soundness gate: over the full pareto1k
// grid every statically proven bound must dominate what the simulation of
// the same cell actually observed.
#include "prove/prove.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "config/ini.hpp"
#include "config/system_builder.hpp"
#include "hyperconnect/config.hpp"
#include "lint/lint.hpp"
#include "sweep/json_mini.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

#ifndef AXIHC_REPO_ROOT
#define AXIHC_REPO_ROOT "."
#endif

namespace axihc {
namespace {

std::string repo_file(const std::string& rel) {
  return std::string(AXIHC_REPO_ROOT) + "/" + rel;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  AXIHC_CHECK_MSG(in.good(), "cannot read " << path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// A plain, fully-modeled two-port system: reservation on, nonzero budgets.
constexpr const char* kHealthy =
    "[system]\n"
    "interconnect = hyperconnect\n"
    "ports = 2\n"
    "cycles = 2000\n"
    "[hyperconnect]\n"
    "nominal_burst = 16\n"
    "max_outstanding = 4\n"
    "reservation_period = 4000\n"  // 72 x S(16) ~ 2952 cycles: feasible
    "budgets = 36 36\n"
    "[ha0]\n"
    "type = traffic\n"
    "direction = read\n"
    "burst = 16\n"
    "outstanding = 8\n"
    "[ha1]\n"
    "type = traffic\n"
    "direction = mixed\n"
    "burst = 16\n"
    "outstanding = 8\n";

ProveReport prove_text(const std::string& ini_text) {
  return build_system(ini_text)->prove();
}

// ---------------------------------------------------------------------------
// Certificate structure + determinism

TEST(ProveCertificate, JsonStructure) {
  const ProveReport proof = prove_text(kHealthy);
  EXPECT_EQ(proof.verdict(), ProveVerdict::kProven);

  const JsonValue cert = parse_json(proof.certificate_json());
  EXPECT_EQ(cert.find("schema")->str_or(""), "axihc-prove-v1");
  EXPECT_EQ(cert.find("verdict")->str_or(""), "proven");
  EXPECT_GE(cert.find("static_backlog_bound")->number, 0.0);

  const JsonValue* reservation = cert.find("reservation");
  ASSERT_NE(reservation, nullptr);
  EXPECT_TRUE(reservation->find("on")->boolean);
  EXPECT_TRUE(reservation->find("feasible")->boolean);
  EXPECT_GT(reservation->find("demand")->number, 0.0);

  const JsonValue* checks = cert.find("checks");
  ASSERT_NE(checks, nullptr);
  ASSERT_EQ(checks->items.size(), 4u);
  const std::vector<std::string> ids = {"deadlock-freedom", "efifo-backlog",
                                        "reservation", "wcla-bound"};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(checks->items[i].find("id")->str_or(""), ids[i]);
    EXPECT_EQ(checks->items[i].find("verdict")->str_or(""), "proven");
    EXPECT_FALSE(checks->items[i].find("detail")->str_or("").empty());
  }

  const JsonValue* ports = cert.find("ports");
  ASSERT_NE(ports, nullptr);
  ASSERT_EQ(ports->items.size(), 2u);
  for (const JsonValue& port : ports->items) {
    const JsonValue* backlog = port.find("backlog");
    ASSERT_NE(backlog, nullptr);
    EXPECT_GT(backlog->find("total")->number, 0.0);
    EXPECT_GT(port.find("wcrt_read")->number, 0.0);
  }
}

TEST(ProveCertificate, DigestIsStableAndContentSensitive) {
  const ProveReport a = prove_text(kHealthy);
  const ProveReport b = prove_text(kHealthy);
  // Pure function of the elaborated system: rebuilding yields the same
  // certificate byte for byte (this is what lets the sweep cache reuse it).
  EXPECT_EQ(a.certificate_json(), b.certificate_json());
  EXPECT_EQ(a.certificate_digest(), b.certificate_digest());
  EXPECT_NE(a.certificate_digest(), 0u);

  std::string tweaked = kHealthy;
  const std::size_t pos = tweaked.find("budgets = 36 36");
  ASSERT_NE(pos, std::string::npos);
  tweaked.replace(pos, 15, "budgets = 40 32");
  EXPECT_NE(prove_text(tweaked).certificate_digest(), a.certificate_digest());
}

TEST(ProveCertificate, VerdictStableAcrossThreadAndBackendEnv) {
  // The prover never simulates, so runtime knobs that select tick kernels
  // or worker counts must not be able to change a verdict or certificate.
  const std::string baseline = prove_text(kHealthy).certificate_json();
  for (const char* threads : {"1", "4"}) {
    ::setenv("AXIHC_BENCH_THREADS", threads, 1);
    EXPECT_EQ(prove_text(kHealthy).certificate_json(), baseline);
  }
  ::unsetenv("AXIHC_BENCH_THREADS");
}

// ---------------------------------------------------------------------------
// Each disprover fires on the fixture it exists for

TEST(ProveDisprovers, DeadlockCycleIsRefutedWithCounterexample) {
  // The INI surface cannot express a cyclic waits-for graph (the builder's
  // topologies all drain to sinks), so hand-build the adversarial input.
  ProveInput in = build_system(kHealthy)->prove_input();
  ASSERT_FALSE(in.edges.empty());
  // Close a loop: the memory's progress waits on a port queue that waits
  // (transitively) on the memory.
  in.edges.push_back({"mem", "port0.ar"});
  const ProveReport proof = prove(in);
  const ProveCheck* deadlock = proof.check("deadlock-freedom");
  ASSERT_NE(deadlock, nullptr);
  EXPECT_EQ(deadlock->verdict, ProveVerdict::kDisproved);
  // The certificate carries the cycle as a counterexample.
  EXPECT_NE(deadlock->detail.find("mem"), std::string::npos);
  EXPECT_NE(deadlock->detail.find("port0.ar"), std::string::npos);
  EXPECT_TRUE(proof.disproved());
}

TEST(ProveDisprovers, IdOverflowUnderOutOfOrderIsRefuted) {
  ProveInput in = build_system(kHealthy)->prove_input();
  in.out_of_order = true;
  in.id_bits = kIdPortShift + 1;  // HA IDs would alias the port tag bits
  const ProveReport proof = prove(in);
  const ProveCheck* reservation = proof.check("reservation");
  ASSERT_NE(reservation, nullptr);
  EXPECT_EQ(reservation->verdict, ProveVerdict::kDisproved);
  EXPECT_TRUE(proof.disproved());
  // Same input with headroom: fine.
  in.id_bits = kIdPortShift;
  EXPECT_NE(prove(in).check("reservation")->verdict,
            ProveVerdict::kDisproved);
}

TEST(ProveDisprovers, ZeroBudgetStarvationIsRefutedAndFailsStrictLint) {
  const auto sys =
      build_system(read_file(repo_file("tests/lint_fixtures/starved_port.ini")));
  const ProveReport proof = sys->prove();
  EXPECT_TRUE(proof.disproved());
  EXPECT_EQ(proof.check("reservation")->verdict, ProveVerdict::kDisproved);
  // No finite bound exists for a port that is never scheduled.
  EXPECT_EQ(proof.check("wcla-bound")->verdict, ProveVerdict::kDisproved);
  EXPECT_NE(proof.check("reservation")->detail.find("budget 0"),
            std::string::npos);

  // Lint folds the disproofs in as strict-fail warnings.
  const LintReport lint = sys->lint();
  EXPECT_TRUE(lint.has_check("prove-reservation"));
  EXPECT_TRUE(lint.has_check("prove-wcla-bound"));
  EXPECT_EQ(lint.count(LintSeverity::kError), 0u);  // plain --lint passes
  EXPECT_GT(lint.count(LintSeverity::kWarning), 0u);
}

TEST(ProveChecks, OvercommitWarnsButDoesNotDisprove) {
  const auto sys =
      build_system(read_file(repo_file("tests/lint_fixtures/overcommit.ini")));
  const ProveReport proof = sys->prove();
  // Overcommit keeps sound (composite-form) bounds: proven, not disproved.
  EXPECT_EQ(proof.verdict(), ProveVerdict::kProven);
  EXPECT_TRUE(proof.reservation_on);
  EXPECT_FALSE(proof.reservation_feasible);
  EXPECT_GT(proof.reservation_demand, 1000u);  // the fixture's period

  const LintReport lint = sys->lint();
  EXPECT_TRUE(lint.has_check("reservation-overcommit"));
  EXPECT_EQ(lint.count(LintSeverity::kError), 0u);
}

// ---------------------------------------------------------------------------
// Unmodeled classifications (the honest "no model" third verdict)

TEST(ProveChecks, SmartConnectIsUnmodeledNotDisproved) {
  const ProveReport proof = prove_text(
      "[system]\ninterconnect = smartconnect\nports = 2\ncycles = 2000\n"
      "[ha0]\ntype = traffic\ndirection = read\n");
  EXPECT_EQ(proof.verdict(), ProveVerdict::kUnmodeled);
  EXPECT_FALSE(proof.disproved());
  EXPECT_EQ(proof.static_backlog_bound(), -1);
  EXPECT_EQ(proof.check("wcla-bound")->verdict, ProveVerdict::kUnmodeled);
}

TEST(ProveChecks, OutOfOrderMemoryIsUnmodeledForWclaOnly) {
  const ProveReport proof =
      prove_text(read_file(repo_file("examples/configs/ooo_future_platform.ini")));
  EXPECT_EQ(proof.check("wcla-bound")->verdict, ProveVerdict::kUnmodeled);
  // The structural checks still run and pass.
  EXPECT_EQ(proof.check("deadlock-freedom")->verdict, ProveVerdict::kProven);
  EXPECT_EQ(proof.check("efifo-backlog")->verdict, ProveVerdict::kProven);
  EXPECT_GE(proof.static_backlog_bound(), 0);
}

// ---------------------------------------------------------------------------
// Backlog bound arithmetic

TEST(ProveChecks, BacklogBoundFollowsFlowControl) {
  const ProveReport proof = prove_text(kHealthy);
  ASSERT_EQ(proof.backlog.size(), 2u);
  // ha0: read-only, outstanding 8, burst 16, default depths (ar 4, r 32):
  // ar = min(8, 4), r = min(8 * 16, 32), no write-side demand.
  EXPECT_EQ(proof.backlog[0].ar, 4u);
  EXPECT_EQ(proof.backlog[0].r, 32u);
  EXPECT_EQ(proof.backlog[0].aw, 0u);
  EXPECT_EQ(proof.backlog[0].w, 0u);
  EXPECT_EQ(proof.backlog[0].b, 0u);
  EXPECT_EQ(proof.backlog[0].total, 36u);
  // ha1 reads and writes: both sides loaded.
  EXPECT_EQ(proof.backlog[1].total,
            proof.backlog[1].ar + proof.backlog[1].aw + proof.backlog[1].w +
                proof.backlog[1].r + proof.backlog[1].b);
  EXPECT_EQ(proof.static_backlog_bound(),
            static_cast<std::int64_t>(proof.backlog[1].total));
  // Demand above the AR depth is flagged as back-pressure, never an error.
  EXPECT_TRUE(proof.backlog[0].backpressure);
}

TEST(ProveChecks, Fig5ReservationDemandPin) {
  // The paper's HC-90-10 case study is overcommitted by design: 64+7
  // budgets at nominal burst 16 need 2911 worst-case cycles per 2000-cycle
  // period on the zcu102 timing model. Pinning the number keeps the demand
  // arithmetic honest.
  const ProveReport proof =
      prove_text(read_file(repo_file("examples/configs/fig5_hc90.ini")));
  EXPECT_EQ(proof.verdict(), ProveVerdict::kProven);
  EXPECT_TRUE(proof.reservation_on);
  EXPECT_FALSE(proof.reservation_feasible);
  EXPECT_EQ(proof.reservation_demand, 2911u);
}

TEST(ProveChecks, Fig4IsFeasibleAndFullyProven) {
  const ProveReport proof =
      prove_text(read_file(repo_file("examples/configs/fig4_isolation.ini")));
  EXPECT_EQ(proof.verdict(), ProveVerdict::kProven);
  for (const ProveCheck& c : proof.checks) {
    EXPECT_EQ(c.verdict, ProveVerdict::kProven) << c.id;
  }
}

// ---------------------------------------------------------------------------
// Sweep wiring: screening, annotation rows, error rows, cached certificates

TEST(ProveSweep, DisprovedCellsBecomeAnnotationRowsWithoutSimulation) {
  const std::string text =
      "[system]\ninterconnect = hyperconnect\nports = 2\n"
      "[hyperconnect]\nreservation_period = 2000\n"
      "[ha0]\ntype = traffic\ndirection = read\n"
      "[ha1]\ntype = traffic\ndirection = mixed\n"
      "[sweep]\nname = screen\ncycles = 2000\n"
      "axis.hyperconnect.budgets = 36 36 | 36 0\n";
  SweepOptions opts;
  opts.deterministic = true;
  const SweepSummary s = run_sweep(IniFile::parse(text), opts);
  ASSERT_EQ(s.lines.size(), 2u);
  EXPECT_EQ(s.disproved, 1u);

  const JsonValue good = parse_json(s.lines[0]);
  EXPECT_EQ(good.find("prove_verdict")->str_or(""), "proven");
  ASSERT_NE(good.find("cycles"), nullptr);
  ASSERT_NE(good.find("efifo_max"), nullptr);
  // Soundness on the simulated cell of this very sweep.
  EXPECT_LE(good.find("efifo_max")->number,
            good.find("static_backlog_bound")->number);

  const JsonValue bad = parse_json(s.lines[1]);
  EXPECT_EQ(bad.find("prove_verdict")->str_or(""), "disproved");
  EXPECT_EQ(bad.find("cycles"), nullptr);        // never simulated
  EXPECT_EQ(bad.find("state_digest"), nullptr);  // nothing to digest
  EXPECT_NE(bad.find("prove_detail")->str_or("").find("reservation"),
            std::string::npos);
  ASSERT_NE(bad.find("prove_certificate"), nullptr);

  // The report excludes the annotation row instead of polluting the front.
  const std::string md = sweep_report_markdown(s.lines);
  EXPECT_NE(md.find("Excluded 1 statically disproved"), std::string::npos);
  const JsonValue rep = parse_json(sweep_report_json(s.lines));
  EXPECT_EQ(rep.find("rows")->number, 1.0);
  EXPECT_EQ(rep.find("disproved")->number, 1.0);
}

TEST(ProveSweep, BuilderRejectionsBecomeStructuredErrorRows) {
  const std::string text =
      "[system]\ninterconnect = hyperconnect\nports = 2\n"
      "[hyperconnect]\nbudgets = 36 36\nreservation_period = 2000\n"
      "[ha0]\ntype = dma\n"
      "[ha1]\ntype = traffic\n"
      "[sweep]\nname = err\ncycles = 2000\naxis.ha0.mode = read | bogus\n";
  SweepOptions opts;
  opts.deterministic = true;
  const SweepSummary s = run_sweep(IniFile::parse(text), opts);
  ASSERT_EQ(s.lines.size(), 2u);
  EXPECT_EQ(s.errors, 1u);
  const JsonValue bad = parse_json(s.lines[1]);
  ASSERT_NE(bad.find("error"), nullptr);
  EXPECT_NE(bad.find("error")->str_or("").find("bogus"), std::string::npos);
  EXPECT_EQ(bad.find("cycles"), nullptr);  // the batch survived the cell
  const std::string md = sweep_report_markdown(s.lines);
  EXPECT_NE(md.find("failed to build"), std::string::npos);
}

TEST(ProveSweep, AnnotationRowsRoundTripThroughTheCache) {
  ::setenv("AXIHC_CODE_VERSION", "prove_cache_v1", 1);
  const std::string dir = testing::TempDir() + "axihc_prove_cache";
  std::filesystem::remove_all(dir);
  const std::string text =
      "[system]\ninterconnect = hyperconnect\nports = 2\n"
      "[hyperconnect]\nreservation_period = 2000\n"
      "[ha0]\ntype = traffic\ndirection = read\n"
      "[ha1]\ntype = traffic\ndirection = mixed\n"
      "[sweep]\nname = screen\ncycles = 2000\n"
      "axis.hyperconnect.budgets = 36 36 | 36 0\n";
  SweepOptions opts;
  opts.cache_dir = dir;
  opts.deterministic = true;
  const SweepSummary first = run_sweep(IniFile::parse(text), opts);
  EXPECT_EQ(first.cache_hits, 0u);
  const SweepSummary second = run_sweep(IniFile::parse(text), opts);
  // Disproved annotation rows (with their certificate digests) are cached
  // and re-served just like measurements, and invalidate with the code
  // version like everything else.
  EXPECT_EQ(second.cache_hits, 2u);
  EXPECT_EQ(second.lines, first.lines);
  EXPECT_EQ(second.disproved, 1u);
  ::setenv("AXIHC_CODE_VERSION", "prove_cache_v2", 1);
  const SweepSummary third = run_sweep(IniFile::parse(text), opts);
  EXPECT_EQ(third.cache_hits, 0u);
  ::unsetenv("AXIHC_CODE_VERSION");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Headline soundness gate: pareto1k, bound vs observation

/// Runs `spec_rel` fresh (no cache) and asserts, per simulated cell, that
/// the statically certified bounds dominate what the run observed.
std::size_t assert_sweep_soundness(const std::string& spec_rel) {
  const IniFile spec = IniFile::parse(read_file(repo_file(spec_rel)));
  SweepOptions opts;
  opts.deterministic = true;  // no cache: every cell simulates fresh
  const SweepSummary s = run_sweep(spec, opts);
  EXPECT_EQ(s.disproved, 0u) << spec_rel;  // shipped grids stay fully proven
  EXPECT_EQ(s.errors, 0u) << spec_rel;
  std::size_t checked = 0;
  for (const std::string& line : s.lines) {
    const JsonValue row = parse_json(line);
    const std::string verdict = row.find("prove_verdict")->str_or("");
    // A shipped grid may contain honestly-unmodeled cells (SmartConnect
    // baseline legs); it must never contain disproved ones.
    EXPECT_NE(verdict, "disproved") << line;
    if (verdict != "proven") continue;
    const double bound = row.find("static_backlog_bound")->number;
    const double observed = row.find("efifo_max")->number;
    EXPECT_GE(bound, 0.0) << line;
    // THE soundness contract: a certified worst case is never beaten by a
    // run of the very configuration it certifies.
    EXPECT_LE(observed, bound) << line;
    // And the certified WCLA bounds held transaction by transaction (the
    // runtime auditor counted zero violations).
    EXPECT_EQ(row.find("bound_violations")->number, 0.0) << line;
    ++checked;
  }
  return checked;
}

TEST(ProveSoundness, StaticBoundsDominateSimulationOverPareto1k) {
  EXPECT_EQ(assert_sweep_soundness("examples/sweeps/pareto1k.ini"), 1280u);
}

TEST(ProveSoundness, StaticBoundsDominateFig4AndFig5Grids) {
  // The paper-figure grids (isolation sweep, HC-90-10 contention grid):
  // the same bound-vs-observation contract on the cells the figures are
  // actually drawn from.
  EXPECT_GT(assert_sweep_soundness("examples/sweeps/fig4_isolation.ini"), 0u);
  EXPECT_GT(assert_sweep_soundness("examples/sweeps/fig5_grid.ini"), 0u);
}

}  // namespace
}  // namespace axihc
