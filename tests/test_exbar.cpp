// EXBAR unit tests: fixed-granularity round-robin and routing memories.
#include "hyperconnect/exbar.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct ExbarFixture : ::testing::Test {
  ExbarFixture() : exbar(3, 16), out("out", 64) {
    for (int i = 0; i < 3; ++i) {
      ins.push_back(std::make_unique<TimingChannel<AddrReq>>(
          "in" + std::to_string(i), 64));
      in_ptrs.push_back(ins.back().get());
      sim.add(*ins.back());
    }
    sim.add(out);
    sim.reset();
  }

  AddrReq req(TxnId id, BeatCount beats = 4, std::uint64_t tag = 1) {
    AddrReq r;
    r.id = id;
    r.beats = beats;
    r.tag = tag;
    return r;
  }

  Simulator sim;
  Exbar exbar;
  std::vector<std::unique_ptr<TimingChannel<AddrReq>>> ins;
  std::vector<TimingChannel<AddrReq>*> in_ptrs;
  TimingChannel<AddrReq> out;
};

TEST_F(ExbarFixture, GrantsNothingWhenIdle) {
  EXPECT_FALSE(exbar.grant_read(in_ptrs, out).has_value());
}

TEST_F(ExbarFixture, SingleRequesterGranted) {
  ins[1]->push(req(10));
  sim.step();
  const auto granted = exbar.grant_read(in_ptrs, out);
  ASSERT_TRUE(granted.has_value());
  EXPECT_EQ(*granted, 1u);
  EXPECT_EQ(exbar.read_route().front().port, 1u);
}

TEST_F(ExbarFixture, FixedGranularityOnePerRound) {
  // All three ports backlogged with 2 requests each: the grant sequence
  // must interleave strictly 0,1,2,0,1,2 — one transaction per port per
  // round-cycle, never two in a row from the same port.
  for (PortIndex p = 0; p < 3; ++p) {
    ins[p]->push(req(p));
    ins[p]->push(req(p + 10));
  }
  sim.step();
  std::vector<PortIndex> grants;
  for (int i = 0; i < 6; ++i) {
    const auto g = exbar.grant_read(in_ptrs, out);
    ASSERT_TRUE(g.has_value());
    grants.push_back(*g);
    sim.step();
  }
  EXPECT_EQ(grants, (std::vector<PortIndex>{0, 1, 2, 0, 1, 2}));
}

TEST_F(ExbarFixture, SkipsEmptyPorts) {
  ins[0]->push(req(1));
  ins[2]->push(req(3));
  sim.step();
  std::vector<PortIndex> grants;
  for (int i = 0; i < 2; ++i) {
    const auto g = exbar.grant_read(in_ptrs, out);
    ASSERT_TRUE(g.has_value());
    grants.push_back(*g);
    sim.step();
  }
  EXPECT_EQ(grants, (std::vector<PortIndex>{0, 2}));
}

TEST_F(ExbarFixture, StallsWhenOutputFull) {
  TimingChannel<AddrReq> tiny("tiny", 1);
  sim.add(tiny);
  ins[0]->push(req(1));
  ins[0]->push(req(2));
  sim.step();
  ASSERT_TRUE(exbar.grant_read(in_ptrs, tiny).has_value());
  sim.step();
  // Output register occupied: no further grant.
  EXPECT_FALSE(exbar.grant_read(in_ptrs, tiny).has_value());
}

TEST_F(ExbarFixture, StallsWhenRouteMemoryFull) {
  Exbar small(1, 2);
  std::vector<TimingChannel<AddrReq>*> one = {in_ptrs[0]};
  ins[0]->push(req(1));
  ins[0]->push(req(2));
  ins[0]->push(req(3));
  sim.step();
  EXPECT_TRUE(small.grant_read(one, out).has_value());
  sim.step();
  EXPECT_TRUE(small.grant_read(one, out).has_value());
  sim.step();
  // Routing memory (capacity 2) is full: the third grant must wait.
  EXPECT_FALSE(small.grant_read(one, out).has_value());
  small.read_route().pop();  // R path retires one transaction
  EXPECT_TRUE(small.grant_read(one, out).has_value());
}

TEST_F(ExbarFixture, WriteGrantRecordsRoutingInfo) {
  ins[2]->push(req(9, 8, /*tag=*/0));  // non-final sub-burst
  sim.step();
  const auto g = exbar.grant_write(in_ptrs, out);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, 2u);
  ASSERT_FALSE(exbar.write_route().empty());
  EXPECT_EQ(exbar.write_route().front().port, 2u);
  EXPECT_EQ(exbar.write_route().front().beats, 8u);
  EXPECT_FALSE(exbar.write_route().front().expects_orig_last);
  ASSERT_FALSE(exbar.b_route().empty());
  EXPECT_EQ(exbar.b_route().front(), 2u);
}

TEST_F(ExbarFixture, ReadAndWriteArbitrationIndependent) {
  // Independent RR pointers: a read grant to port 0 must not advance the
  // write pointer.
  ins[0]->push(req(1));
  sim.step();
  ASSERT_TRUE(exbar.grant_read(in_ptrs, out).has_value());
  ins[0]->push(req(2, 4, 1));
  sim.step();
  const auto g = exbar.grant_write(in_ptrs, out);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, 0u);
}

TEST_F(ExbarFixture, ResetClearsRoutingState) {
  ins[0]->push(req(1));
  sim.step();
  ASSERT_TRUE(exbar.grant_read(in_ptrs, out).has_value());
  EXPECT_FALSE(exbar.read_route().empty());
  exbar.reset();
  EXPECT_TRUE(exbar.read_route().empty());
  EXPECT_TRUE(exbar.write_route().empty());
  EXPECT_TRUE(exbar.b_route().empty());
}

}  // namespace
}  // namespace axihc
