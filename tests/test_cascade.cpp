// Cascaded-interconnect topologies: an upstream HyperConnect feeding one
// port of a downstream HyperConnect through an AxiBridge — the hierarchical
// composition larger FPGA designs use when more HAs exist than one
// interconnect has ports.
#include <gtest/gtest.h>

#include "axi/bridge.hpp"
#include "ha/dma_engine.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

/// Four HAs -> two upstream 2-port HyperConnects -> one downstream 2-port
/// HyperConnect -> memory.
struct CascadeFixture : ::testing::Test {
  CascadeFixture() {
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    root = std::make_unique<HyperConnect>("root", cfg);
    leaf0 = std::make_unique<HyperConnect>("leaf0", cfg);
    leaf1 = std::make_unique<HyperConnect>("leaf1", cfg);
    mem = std::make_unique<MemoryController>("ddr", root->master_link(),
                                             store, MemoryControllerConfig{});
    bridge0 = std::make_unique<AxiBridge>("b0", leaf0->master_link(),
                                          root->port_link(0));
    bridge1 = std::make_unique<AxiBridge>("b1", leaf1->master_link(),
                                          root->port_link(1));
    root->register_with(sim);
    leaf0->register_with(sim);
    leaf1->register_with(sim);
    sim.add(*mem);
    sim.add(*bridge0);
    sim.add(*bridge1);
  }

  Simulator sim;
  BackingStore store;
  std::unique_ptr<HyperConnect> root;
  std::unique_ptr<HyperConnect> leaf0;
  std::unique_ptr<HyperConnect> leaf1;
  std::unique_ptr<MemoryController> mem;
  std::unique_ptr<AxiBridge> bridge0;
  std::unique_ptr<AxiBridge> bridge1;
};

TEST_F(CascadeFixture, CopyThroughTwoLevelsIsLossless) {
  for (Addr a = 0; a < 1024; a += 8) {
    store.write_word(0x1000'0000 + a, a ^ 0x5555);
  }
  DmaConfig cfg;
  cfg.mode = DmaMode::kCopy;
  cfg.bytes_per_job = 1024;
  cfg.burst_beats = 8;
  cfg.max_jobs = 1;
  DmaEngine dma("dma", leaf0->port_link(0), cfg);
  sim.add(dma);
  sim.reset();
  for (Addr a = 0; a < 1024; a += 8) {
    store.write_word(0x1000'0000 + a, a ^ 0x5555);
  }

  ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 500000));
  for (Addr a = 0; a < 1024; a += 8) {
    ASSERT_EQ(store.read_word(0x2000'0000 + a), a ^ 0x5555) << "offset " << a;
  }
}

TEST_F(CascadeFixture, FourLeafMastersShareFairly) {
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 16;
  HyperConnect* leaves[2] = {leaf0.get(), leaf1.get()};
  for (int leaf = 0; leaf < 2; ++leaf) {
    for (PortIndex p = 0; p < 2; ++p) {
      t.base = 0x4000'0000 + (static_cast<Addr>(leaf * 2 + p) << 24);
      gens.push_back(std::make_unique<TrafficGenerator>(
          "g" + std::to_string(leaf * 2 + p), leaves[leaf]->port_link(p), t));
      sim.add(*gens.back());
    }
  }
  sim.reset();
  sim.run(100000);
  double total = 0;
  for (const auto& g : gens) total += static_cast<double>(g->stats().bytes_read);
  ASSERT_GT(total, 0);
  // Two-level fixed-granularity round-robin composes to a fair 4-way split.
  for (const auto& g : gens) {
    EXPECT_NEAR(static_cast<double>(g->stats().bytes_read) / total, 0.25,
                0.04)
        << g->name();
  }
}

TEST_F(CascadeFixture, LeafReservationStillEnforcedUnderRoot) {
  // Budgets on a LEAF port must hold regardless of the extra hierarchy.
  leaf0->registers_backdoor().write(hcregs::kReservationPeriod, 1000);
  leaf0->registers_backdoor().write(hcregs::budget(0), 5);
  leaf0->registers_backdoor().write(hcregs::budget(1), 40);

  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 16;
  t.base = 0x4000'0000;
  TrafficGenerator capped("capped", leaf0->port_link(0), t);
  sim.add(capped);
  sim.reset();
  // Re-apply after reset (reset restores construction-time config).
  leaf0->registers_backdoor().write(hcregs::kReservationPeriod, 1000);
  leaf0->registers_backdoor().write(hcregs::budget(0), 5);

  std::uint64_t prev = 0;
  for (int w = 0; w < 10; ++w) {
    sim.run(1000);
    const auto issued = leaf0->supervisor(0).subtransactions_issued();
    EXPECT_LE(issued - prev, 5u) << "window " << w;
    prev = issued;
  }
}

TEST_F(CascadeFixture, EndToEndLatencyAddsPerLevel) {
  // One quiet master: total AR path = leaf (4) + bridge (1) + root (4) +
  // memory service; measured read latency must exceed the 9-cycle
  // interconnect floor plus memory latency.
  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 1;
  t.max_transactions = 1;
  TrafficGenerator gen("gen", leaf0->port_link(0), t);
  sim.add(gen);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return gen.finished(); }, 10000));
  // AR: 4 (leaf) + 4 (root; the bridge hop IS the root's slave-eFIFO
  // stage) = 8; R: 2 + 1 (bridge) + 2 - 1 = 4; memory >= row_miss (24).
  EXPECT_GE(gen.stats().read_latency.min(), 8u + 4u + 24u);
  EXPECT_LE(gen.stats().read_latency.min(), 8u + 4u + 24u + 10u);
}

}  // namespace
}  // namespace axihc
