// Stress and failure-injection tests: long pseudo-random multi-master runs
// with protocol monitors everywhere, extreme backpressure configurations,
// mid-flight resets, and hostile traffic — the suite that earns trust in
// the model's structural invariants.
#include <gtest/gtest.h>

#include <memory>

#include "axi/monitor.hpp"
#include "ha/dma_engine.hpp"
#include "ha/trace_player.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

/// Deterministic 64-bit LCG (no std::random: runs must be reproducible
/// across standard libraries).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2 + 1) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 11;
  }
  std::uint64_t next(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

/// Builds a random but legal trace: sorted issue cycles, 1..256-beat
/// bursts, 4KiB-safe addresses.
std::vector<TraceEntry> random_trace(std::uint64_t seed, std::size_t count,
                                     Addr base) {
  Lcg rng(seed);
  std::vector<TraceEntry> trace;
  Cycle t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.next(40);
    TraceEntry e;
    e.issue_at = t;
    e.is_write = rng.next(2) == 1;
    const BeatCount pow2[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
    e.beats = pow2[rng.next(9)];
    // Align the start so the burst cannot cross a 4KiB boundary.
    const std::uint64_t burst_bytes = std::uint64_t{e.beats} * 8;
    e.addr = base + rng.next(1024) * 4096 + rng.next(4096 / burst_bytes) *
                                                burst_bytes;
    trace.push_back(e);
  }
  return trace;
}

class RandomStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomStress, MonitoredRandomTrafficStaysClean) {
  const std::uint64_t seed = GetParam();
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 3;
  cfg.nominal_burst = 16;
  cfg.max_outstanding = 6;
  HyperConnect hc("hc", cfg);
  MemoryControllerConfig mc;
  mc.row_hit_latency = 6;
  mc.row_miss_latency = 18;
  MemoryController mem("ddr", hc.master_link(), store, mc);
  hc.register_with(sim);
  sim.add(mem);

  std::vector<std::unique_ptr<AxiLink>> links;
  std::vector<std::unique_ptr<AxiMonitor>> monitors;
  std::vector<std::unique_ptr<TracePlayer>> players;
  for (PortIndex p = 0; p < 3; ++p) {
    links.push_back(std::make_unique<AxiLink>("ha" + std::to_string(p)));
    links.back()->register_with(sim);
    monitors.push_back(std::make_unique<AxiMonitor>(
        "mon" + std::to_string(p), *links.back(), hc.port_link(p)));
    monitors.back()->set_throw_on_violation(true);
    sim.add(*monitors.back());
    players.push_back(std::make_unique<TracePlayer>(
        "p" + std::to_string(p), *links.back(),
        random_trace(seed + p, 120, 0x4000'0000 + (static_cast<Addr>(p)
                                                   << 26))));
    sim.add(*players.back());
  }
  sim.reset();

  ASSERT_TRUE(sim.run_until(
      [&] {
        for (const auto& p : players) {
          if (!p->finished()) return false;
        }
        return true;
      },
      3'000'000));
  std::uint64_t total_txns = 0;
  for (PortIndex p = 0; p < 3; ++p) {
    EXPECT_TRUE(monitors[p]->clean());
    total_txns += players[p]->stats().reads_completed +
                  players[p]->stats().writes_completed;
  }
  EXPECT_EQ(total_txns, 3u * 120u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStress,
                         ::testing::Values(1, 7, 42, 1234, 98765));

TEST(Stress, TinyChannelDepthsStillComplete) {
  // Every queue at its minimum workable depth: progress must still be made
  // (slowly), with nothing lost.
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  AxiLinkConfig tiny;
  tiny.ar_depth = 1;
  tiny.aw_depth = 1;
  tiny.w_depth = 2;
  tiny.r_depth = 2;
  tiny.b_depth = 1;
  cfg.port_link_cfg = tiny;
  cfg.master_link_cfg = tiny;
  cfg.ts_stage_depth = 1;
  cfg.xbar_stage_depth = 1;
  cfg.route_capacity = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  DmaConfig d;
  d.mode = DmaMode::kReadWrite;
  d.bytes_per_job = 2048;
  d.burst_beats = 16;
  d.max_jobs = 1;
  DmaEngine dma0("dma0", hc.port_link(0), d);
  d.read_base = 0x5000'0000;
  d.write_base = 0x6000'0000;
  DmaEngine dma1("dma1", hc.port_link(1), d);
  sim.add(dma0);
  sim.add(dma1);
  sim.reset();

  ASSERT_TRUE(sim.run_until(
      [&] { return dma0.finished() && dma1.finished(); }, 2'000'000));
  EXPECT_EQ(dma0.stats().bytes_read, 2048u);
  EXPECT_EQ(dma1.stats().bytes_written, 2048u);
}

TEST(Stress, RepeatedMidFlightResets) {
  // Reset the whole system at arbitrary points; behaviour after each reset
  // must match a fresh run (prefix determinism).
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.reservation_period = 500;
  cfg.initial_budgets = {10, 10};
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  TrafficConfig t;
  t.direction = TrafficDirection::kMixed;
  t.burst_beats = 16;
  TrafficGenerator gen("gen", hc.port_link(0), t);
  sim.add(gen);

  std::uint64_t reference = 0;
  for (const Cycle horizon : {100u, 777u, 2048u, 5000u}) {
    sim.reset();
    sim.run(horizon);
    if (horizon == 5000u) reference = gen.stats().bytes_read;
  }
  // A final fresh run must reproduce the last measurement exactly.
  sim.reset();
  sim.run(5000);
  EXPECT_EQ(gen.stats().bytes_read, reference);
}

TEST(Stress, MalformedMasterIsContainedByMonitor) {
  // A hostile master pushing raw garbage through a monitor into the
  // HyperConnect: violations are flagged, legal traffic on the other port
  // is unaffected, and nothing crashes.
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  AxiLink hostile_link("hostile");
  hostile_link.register_with(sim);
  AxiMonitor guard("guard", hostile_link, hc.port_link(0));
  sim.add(guard);

  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 8;
  TrafficGenerator good("good", hc.port_link(1), t);
  sim.add(good);
  sim.reset();

  // Inject garbage over 2000 cycles.
  Lcg rng(99);
  for (int i = 0; i < 40; ++i) {
    AddrReq bad;
    bad.id = static_cast<TxnId>(rng.next(100));
    bad.addr = 0x0FF0 + rng.next(64);  // many cross 4KiB
    bad.beats = static_cast<BeatCount>(rng.next(2) == 0 ? 0 : 300);  // illegal
    if (hostile_link.ar.can_push()) hostile_link.ar.push(bad);
    sim.run(50);
  }
  EXPECT_FALSE(guard.clean());
  EXPECT_GT(good.stats().reads_completed, 80u);
  // Garbage never reached memory: everything served belongs to the good
  // master (allowing for its in-flight transactions at sampling time).
  EXPECT_GE(mem.reads_served(), good.stats().reads_completed);
  EXPECT_LE(mem.reads_served(), good.stats().reads_completed + 8);
}

TEST(Stress, LongRunIdWraparound) {
  // Master IDs wrap at 2^16; a long single-master run crossing the wrap
  // boundary must stay consistent. Force the wrap quickly with single-beat
  // transactions and a fast memory.
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 1;
  cfg.nominal_burst = 0;  // no splitting: maximize transaction rate
  cfg.max_outstanding = 8;
  HyperConnect hc("hc", cfg);
  MemoryControllerConfig mc;
  mc.row_hit_latency = 1;
  mc.row_miss_latency = 2;
  mc.turnaround = 0;
  MemoryController mem("ddr", hc.master_link(), store, mc);
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 1;
  t.max_outstanding = 8;
  TrafficGenerator gen("gen", hc.port_link(0), t);
  sim.add(gen);
  sim.reset();

  // ~70k transactions cross the 65535 id wrap at least once.
  sim.run_until([&] { return gen.stats().reads_completed > 70'000; },
                2'000'000);
  EXPECT_GT(gen.stats().reads_completed, 70'000u);
}

}  // namespace
}  // namespace axihc
