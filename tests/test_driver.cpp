// Driver tests: the register master and the typed HyperConnect driver,
// exercised over the simulated control bus (no backdoor).
#include "driver/hyperconnect_driver.hpp"

#include <gtest/gtest.h>

#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct DriverFixture : ::testing::Test {
  DriverFixture()
      : hc("hc", two_ports()),
        mem("ddr", hc.master_link(), store, {}),
        rm("rm", hc.control_link()),
        driver(rm, 2) {
    hc.register_with(sim);
    sim.add(mem);
    sim.add(rm);
    sim.reset();
  }

  static HyperConnectConfig two_ports() {
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    return cfg;
  }

  void settle() {
    ASSERT_TRUE(sim.run_until([&] { return driver.idle(); }, 10000));
  }

  Simulator sim;
  BackingStore store;
  HyperConnect hc;
  MemoryController mem;
  RegisterMaster rm;
  HyperConnectDriver driver;
};

TEST_F(DriverFixture, ReadsIdOverTheBus) {
  std::uint64_t id = 0;
  driver.read_id([&](std::uint64_t v) { id = v; });
  settle();
  EXPECT_EQ(id, hcregs::kIdValue);
}

TEST_F(DriverFixture, ReadsNumPorts) {
  std::uint64_t ports = 0;
  driver.read_num_ports([&](std::uint64_t v) { ports = v; });
  settle();
  EXPECT_EQ(ports, 2u);
}

TEST_F(DriverFixture, WritesReachRuntime) {
  driver.set_nominal_burst(4);
  driver.set_outstanding_limit(2);
  driver.set_budget(1, 9);
  settle();
  EXPECT_EQ(hc.runtime().nominal_burst, 4u);
  EXPECT_EQ(hc.runtime().max_outstanding, 2u);
  EXPECT_EQ(hc.runtime().budgets[1], 9u);
}

TEST_F(DriverFixture, ApplyReservationProgramsEverything) {
  driver.apply_reservation(2000, {12, 3});
  settle();
  EXPECT_EQ(hc.runtime().reservation_period, 2000u);
  EXPECT_EQ(hc.runtime().budgets[0], 12u);
  EXPECT_EQ(hc.runtime().budgets[1], 3u);
}

TEST_F(DriverFixture, DecoupleOverTheBus) {
  driver.set_coupled(0, false);
  settle();
  EXPECT_FALSE(hc.runtime().coupled[0]);
  driver.set_coupled(0, true);
  settle();
  EXPECT_TRUE(hc.runtime().coupled[0]);
}

TEST_F(DriverFixture, OperationsCompleteInOrder) {
  // A read queued after a write must observe the write's effect.
  driver.set_nominal_burst(32);
  std::uint64_t observed = 0;
  rm.read_reg(hcregs::kNominalBurst, [&](std::uint64_t v) { observed = v; });
  settle();
  EXPECT_EQ(observed, 32u);
  EXPECT_EQ(rm.completed_ops(), 2u);
}

TEST_F(DriverFixture, PortRangeChecked) {
  EXPECT_THROW(driver.set_budget(7, 1), ModelError);
  EXPECT_THROW(driver.set_coupled(2, false), ModelError);
  EXPECT_THROW(driver.read_txn_count(9, [](std::uint64_t) {}), ModelError);
}

TEST_F(DriverFixture, TxnCountReflectsTraffic) {
  // Generate some traffic, then read the counter over the bus.
  AddrReq ar;
  ar.id = 1;
  ar.addr = 0;
  ar.beats = 16;
  hc.port_link(0).ar.push(ar);
  sim.run(200);

  std::uint64_t count = 0;
  driver.read_txn_count(0, [&](std::uint64_t v) { count = v; });
  settle();
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace axihc
