// End-to-end error-response propagation: SLVERR/DECERR raised at the memory
// controller must survive the HyperConnect's burst equalization — sticky
// across the R beats of a merged read, worst-of across the B responses of a
// merged write — and reach the HA with correct RLAST/B framing.
#include <gtest/gtest.h>

#include "axi/monitor.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct ErrorPathFixture : ::testing::Test {
  // 64-beat HA bursts over a nominal-16 HyperConnect: 4 sub-bursts each.
  // The memory synthesizes SLVERR for the second sub-burst's address range
  // and DECERR beyond 256 MiB.
  ErrorPathFixture() : hc("hc", hc_cfg()), mem("ddr", hc.master_link(), store, mem_cfg()) {
    hc.register_with(sim);
    sim.add(mem);
    sim.reset();
  }

  static HyperConnectConfig hc_cfg() {
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    cfg.nominal_burst = 16;
    cfg.max_outstanding = 8;
    return cfg;
  }

  static MemoryControllerConfig mem_cfg() {
    MemoryControllerConfig cfg;
    cfg.mapped_ranges = {{0, 0x1000'0000}};
    cfg.slverr_ranges = {{kSlvErrBase, 0x80}};  // beats 16..31 of the burst
    return cfg;
  }

  static constexpr Addr kReadBase = 0x1000;
  static constexpr Addr kSlvErrBase = 0x1080;
  static constexpr Addr kUnmapped = 0x2000'0000;

  std::vector<RBeat> collect_read(Addr addr, BeatCount beats) {
    AddrReq ar;
    ar.id = 5;
    ar.addr = addr;
    ar.beats = beats;
    hc.port_link(0).ar.push(ar);
    std::vector<RBeat> out;
    EXPECT_TRUE(sim.run_until(
        [&] {
          while (hc.port_link(0).r.can_pop()) {
            out.push_back(hc.port_link(0).r.pop());
          }
          return out.size() >= beats;
        },
        100000));
    return out;
  }

  BResp do_write(Addr addr, BeatCount beats) {
    AddrReq aw;
    aw.id = 9;
    aw.addr = addr;
    aw.beats = beats;
    hc.port_link(0).aw.push(aw);
    for (BeatCount i = 0; i < beats; ++i) {
      while (!hc.port_link(0).w.can_push()) sim.step();
      hc.port_link(0).w.push({0xAB00u + i, 0xff, i + 1 == beats});
    }
    BResp resp;
    EXPECT_TRUE(sim.run_until(
        [&] {
          if (!hc.port_link(0).b.can_pop()) return false;
          resp = hc.port_link(0).b.pop();
          return true;
        },
        100000));
    return resp;
  }

  Simulator sim;
  BackingStore store;
  HyperConnect hc;
  MemoryController mem;
};

TEST_F(ErrorPathFixture, ReadSlvErrStickyAcrossMergedSubBursts) {
  for (Addr a = 0; a < 64 * 8; a += 8) store.write_word(kReadBase + a, a);

  const auto beats = collect_read(kReadBase, 64);
  ASSERT_EQ(beats.size(), 64u);
  // Sub-burst 1 (beats 0..15) completes before the error: OKAY. From the
  // first SLVERR beat on, the merged response is sticky — the HA must see
  // the error even if it only checks the tail of the burst.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(beats[i].resp, Resp::kOkay) << "beat " << i;
    EXPECT_EQ(beats[i].data, i * 8) << "beat " << i;
  }
  for (std::size_t i = 16; i < 64; ++i) {
    EXPECT_EQ(beats[i].resp, Resp::kSlvErr) << "beat " << i;
    EXPECT_FALSE(beats[i].last && i != 63) << "beat " << i;
  }
  EXPECT_TRUE(beats[63].last);
  EXPECT_EQ(mem.slv_errors(), 1u);  // only the one sub-burst hit the window
}

TEST_F(ErrorPathFixture, StickyErrorClearsForNextTransaction) {
  (void)collect_read(kReadBase, 64);  // poisons the sticky accumulator
  const auto beats = collect_read(kReadBase, 16);  // clean range
  ASSERT_EQ(beats.size(), 16u);
  for (const RBeat& b : beats) EXPECT_EQ(b.resp, Resp::kOkay);
}

TEST_F(ErrorPathFixture, WriteSlvErrWorstOfMerge) {
  const BResp resp = do_write(kReadBase, 64);
  EXPECT_EQ(resp.id, 9u);
  EXPECT_EQ(resp.resp, Resp::kSlvErr);  // one bad sub-burst poisons the B
  // The error window was skipped; the clean sub-bursts were written.
  EXPECT_EQ(store.read_word(kReadBase), 0xAB00u);
  EXPECT_EQ(store.read_word(kSlvErrBase), 0u);          // beat 16 dropped
  EXPECT_EQ(store.read_word(kReadBase + 32 * 8), 0xAB20u);
}

TEST_F(ErrorPathFixture, WriteAfterErrorGetsCleanB) {
  (void)do_write(kReadBase, 64);
  const BResp resp = do_write(kReadBase + 0x8000, 64);
  EXPECT_EQ(resp.resp, Resp::kOkay) << "worst-of accumulator leaked";
}

TEST_F(ErrorPathFixture, ReadDecErrForUnmappedAddress) {
  const auto beats = collect_read(kUnmapped, 64);
  ASSERT_EQ(beats.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(beats[i].resp, Resp::kDecErr) << "beat " << i;
  }
  EXPECT_TRUE(beats[63].last);
  EXPECT_EQ(mem.decode_errors(), 4u);  // every sub-burst missed decode
}

TEST_F(ErrorPathFixture, WriteDecErrForUnmappedAddress) {
  const BResp resp = do_write(kUnmapped, 64);
  EXPECT_EQ(resp.resp, Resp::kDecErr);
}

TEST_F(ErrorPathFixture, DecodeBoundaryStraddleFlagged) {
  // A burst half inside the mapped range: no single slave decodes all of
  // it, so the whole transaction is DECERR (and nothing is stored).
  const BResp resp = do_write(0x1000'0000 - 8 * 8, 16);
  EXPECT_EQ(resp.resp, Resp::kDecErr);
  EXPECT_EQ(store.read_word(0x1000'0000 - 8 * 8), 0u);
}

TEST(ErrorPathMaster, FailedTransactionsCountedInMasterStats) {
  // A traffic generator whose whole region sits in an SLVERR window: every
  // transaction completes (protocol-wise) but fails (response-wise).
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  HyperConnect hc("hc", cfg);
  MemoryControllerConfig mcfg;
  mcfg.slverr_ranges = {{0x4000'0000, 1u << 20}};
  MemoryController mem("ddr", hc.master_link(), store, mcfg);
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig tcfg;
  tcfg.direction = TrafficDirection::kMixed;
  tcfg.base = 0x4000'0000;
  tcfg.region_bytes = 1u << 20;
  tcfg.max_transactions = 20;
  TrafficGenerator gen("gen", hc.port_link(0), tcfg);
  sim.add(gen);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return gen.idle() && gen.stats().reads_issued +
                                         gen.stats().writes_issued >= 20; },
                            200000));
  const MasterStats& s = gen.stats();
  EXPECT_EQ(s.reads_failed, s.reads_completed);
  EXPECT_EQ(s.writes_failed, s.writes_completed);
  EXPECT_GT(s.reads_failed + s.writes_failed, 0u);
}

TEST(ErrorPathMonitor, ErrorsAreCountedNotViolations) {
  // Error responses are legal AXI: a monitor on the HA link must count them
  // without reporting a protocol violation.
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 8;
  HyperConnect hc("hc", cfg);
  MemoryControllerConfig mcfg;
  mcfg.slverr_ranges = {{0x9000, 0x100}};
  MemoryController mem("ddr", hc.master_link(), store, mcfg);
  hc.register_with(sim);
  sim.add(mem);

  AxiLink ha_link("ha");
  ha_link.register_with(sim);
  AxiMonitor monitor("mon", ha_link, hc.port_link(0));
  monitor.set_throw_on_violation(true);
  sim.add(monitor);

  TrafficConfig tcfg;
  tcfg.direction = TrafficDirection::kMixed;
  tcfg.base = 0x9000;
  tcfg.region_bytes = 0x100;
  tcfg.burst_beats = 16;  // split into two sub-bursts each
  tcfg.max_transactions = 8;
  TrafficGenerator gen("gen", ha_link, tcfg);
  sim.add(gen);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return gen.idle() && gen.stats().reads_issued +
                                         gen.stats().writes_issued >= 8; },
                            200000));
  EXPECT_TRUE(monitor.clean());
  EXPECT_GT(monitor.r_errors() + monitor.b_errors(), 0u);
}

}  // namespace
}  // namespace axihc
