// Latency-provenance and WCLA bound-audit layer (src/obs/latency_audit):
// log-bucketed histogram geometry, flow-event export, exact cause-bucket
// accounting on clean systems, the tightened-bound auditor self-test, and
// digest bit-identity with the auditor on vs off.
#include "obs/latency_audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "config/system_builder.hpp"
#include "ha/dma_engine.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace axihc {
namespace {

// ---------------------------------------------------------------------------
// LogHistogram geometry
// ---------------------------------------------------------------------------

TEST(LogHistogram, ExactRegionIsUnitBuckets) {
  // Below 2^6 every value owns a bucket: index == value, width 1.
  for (Cycle v : {Cycle{0}, Cycle{1}, Cycle{33}, Cycle{62}, Cycle{63}}) {
    const std::size_t idx = LogHistogram::bucket_index(v);
    EXPECT_EQ(idx, v);
    EXPECT_EQ(LogHistogram::bucket_lower(idx), v);
    EXPECT_EQ(LogHistogram::bucket_upper(idx), v);
  }
}

TEST(LogHistogram, OctaveEdges) {
  // 64 is the first bucketed value; 63 the last exact one — adjacent
  // indices, no gap and no overlap.
  EXPECT_EQ(LogHistogram::bucket_index(63), 63u);
  EXPECT_EQ(LogHistogram::bucket_index(64), 64u);
  EXPECT_EQ(LogHistogram::bucket_lower(64), 64u);
  // First octave [64, 128) in 32 sub-buckets of width 2: 64 and 65
  // share a bucket, 66 starts the next.
  EXPECT_EQ(LogHistogram::bucket_index(65), 64u);
  EXPECT_EQ(LogHistogram::bucket_index(66), 65u);

  // Every bucket's [lower, upper] must contain each value mapped to it,
  // and buckets must tile the line: upper(i) + 1 == lower(i + 1).
  for (Cycle v :
       {Cycle{64}, Cycle{127}, Cycle{128}, Cycle{129}, Cycle{255},
        Cycle{256}, Cycle{1000}, Cycle{65535}, Cycle{65536},
        Cycle{1} << 40, (Cycle{1} << 40) + 12345}) {
    const std::size_t idx = LogHistogram::bucket_index(v);
    EXPECT_LE(LogHistogram::bucket_lower(idx), v) << v;
    EXPECT_GE(LogHistogram::bucket_upper(idx), v) << v;
  }
  for (std::size_t i = 0; i + 1 < LogHistogram::bucket_count(); ++i) {
    EXPECT_EQ(LogHistogram::bucket_upper(i) + 1,
              LogHistogram::bucket_lower(i + 1))
        << "gap/overlap at bucket " << i;
  }
}

TEST(LogHistogram, ExactSummariesAndBoundedPercentileError) {
  LogHistogram h;
  std::uint64_t sum = 0;
  std::vector<Cycle> samples;
  for (Cycle v = 1; v <= 5000; v += 7) {
    h.record(v);
    samples.push_back(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.min(), samples.front());
  EXPECT_EQ(h.max(), samples.back());

  for (double p : {50.0, 90.0, 99.0, 99.9, 100.0}) {
    const auto rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(p / 100.0 *
                                        static_cast<double>(samples.size()))));
    const Cycle exact = samples[rank - 1];
    const Cycle reported = h.percentile(p);
    EXPECT_GE(reported, exact) << "p" << p;  // never under-reports
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(exact) * (1.0 + 1.0 / 32.0) + 1.0)
        << "p" << p;  // at most one sub-bucket high
  }
}

TEST(LogHistogram, ExactRegionPercentilesAreExact) {
  LogHistogram h;
  for (Cycle v = 1; v <= 60; ++v) h.record(v);
  EXPECT_EQ(h.percentile(50.0), 30u);
  EXPECT_EQ(h.percentile(100.0), 60u);
}

// ---------------------------------------------------------------------------
// Flow events in the Chrome trace export
// ---------------------------------------------------------------------------

TEST(ChromeTrace, FlowEventsRenderAsArrowPair) {
  EventTrace trace;
  trace.enable(true);
  trace.record_flow_start(10, "hc.port0", "rtxn", 42);
  trace.record_flow_end(60, "mem", "rtxn", 42);
  std::ostringstream os;
  write_chrome_trace(os, trace);
  const std::string json = os.str();
  // Start: ph "s" with the binding id; end: ph "f" with bp:"e" so the
  // arrow anchors to the enclosing slice/instant end.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"txn\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"rtxn\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// System-level fixtures
// ---------------------------------------------------------------------------

constexpr const char* kContentionIni = R"(
[system]
interconnect = hyperconnect
platform = zcu102
ports = 2
cycles = 150000

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
reservation_period = 2000
budgets = 64 7

[ha0]
type = dma
mode = readwrite
bytes_per_job = 262144
burst = 16

[ha1]
type = dma
mode = readwrite
bytes_per_job = 262144
burst = 16
)";

std::unique_ptr<ConfiguredSystem> audited_system(const std::string& ini) {
  auto sys = build_system(ini);
  sys->observe_config().latency_audit = true;
  return sys;
}

TEST(LatencyAudit, CauseBucketsSumExactlyToLatency) {
  auto sys = audited_system(kContentionIni);
  sys->run();
  const LatencyAudit* audit = sys->latency_audit();
  ASSERT_NE(audit, nullptr);
  ASSERT_GT(audit->transactions(), 100u);
  const auto records = audit->flight_recorder().snapshot();
  ASSERT_FALSE(records.empty());
  for (const FlightRecord& rec : records) {
    Cycle accounted = 0;
    for (const Cycle c : rec.cause) accounted += c;
    EXPECT_EQ(accounted, rec.latency)
        << "port " << rec.port << (rec.is_write ? " w" : " r") << " id "
        << rec.id;
    // A clean (fault-free) run reaches every hop: nothing may fall into
    // the recovery/unattributed residual bucket.
    EXPECT_EQ(rec.cause[static_cast<std::size_t>(LatencyCause::kRecoveryStall)],
              0u);
    EXPECT_FALSE(rec.error);
    EXPECT_FALSE(rec.fault_overlap);
  }
}

TEST(LatencyAudit, NoViolationsOnContentionScenario) {
  auto sys = audited_system(kContentionIni);
  sys->run();
  const LatencyAudit* audit = sys->latency_audit();
  ASSERT_NE(audit, nullptr);
  EXPECT_TRUE(audit->bounds_enabled());
  EXPECT_GT(audit->bound_checked(), 0u);
  EXPECT_EQ(audit->bound_violations(), 0u);
  EXPECT_EQ(audit->excluded(), 0u);
  ASSERT_GT(audit->max_latency_ratio(), 0.0);
  EXPECT_LE(audit->max_latency_ratio(), 1.0);
}

TEST(LatencyAudit, RollupReportsEveryActivePortDir) {
  auto sys = audited_system(kContentionIni);
  sys->run();
  std::ostringstream os;
  sys->latency_audit()->write_rollup(os);
  const std::string table = os.str();
  EXPECT_NE(table.find("p99.9"), std::string::npos);
  EXPECT_NE(table.find("causes:"), std::string::npos);
  EXPECT_NE(table.find("violations=0"), std::string::npos) << table;
}

/// Identical 2-port contention system; optionally fully audited.
struct ManualSystem {
  Simulator sim;
  BackingStore store;
  HyperConnect hc;
  MemoryController mem;
  DmaEngine dma0;
  DmaEngine dma1;
  LatencyAudit audit;

  static DmaConfig dma_cfg() {
    DmaConfig d;
    d.mode = DmaMode::kReadWrite;
    d.bytes_per_job = 1u << 18;
    return d;
  }

  explicit ManualSystem(bool audited)
      : hc("hc", HyperConnectConfig{}),
        mem("ddr", hc.master_link(), store, {}),
        dma0("dma0", hc.port_link(0), dma_cfg()),
        dma1("dma1", hc.port_link(1), dma_cfg()),
        audit(2, 256) {
    hc.register_with(sim);
    sim.add(mem);
    sim.add(dma0);
    sim.add(dma1);
    if (audited) {
      audit.set_enabled(true);
      hc.set_latency_audit(&audit);
      mem.set_latency_audit(&audit);
      dma0.set_latency_audit(&audit, 0);
      dma1.set_latency_audit(&audit, 1);
    }
    sim.reset();
  }
};

TEST(LatencyAudit, DigestIdenticalWithAuditOnAndOff) {
  ManualSystem plain(false);
  ManualSystem audited(true);
  for (int i = 0; i < 30000; ++i) {
    plain.sim.step();
    audited.sim.step();
  }
  // The auditor mirrors pipeline stages in its own state and never writes
  // into simulated components — bit-identical evolution is the contract.
  EXPECT_EQ(plain.sim.state_digest(), audited.sim.state_digest());
  EXPECT_GT(audited.audit.transactions(), 0u);
  EXPECT_EQ(plain.audit.transactions(), 0u);
}

// ---------------------------------------------------------------------------
// The auditor's own fault-injection test: a deliberately-tightened bound
// must fire the violation machinery (metric, flight flag, trace instant).
// ---------------------------------------------------------------------------

TEST(LatencyAudit, TightenedBoundFires) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  DmaConfig d;
  d.mode = DmaMode::kReadWrite;
  d.bytes_per_job = 1u << 16;
  DmaEngine dma("dma", hc.port_link(0), d);
  sim.add(dma);

  EventTrace trace;
  trace.enable(true);
  LatencyAudit audit(cfg.num_ports, 256);
  audit.set_enabled(true);
  audit.set_trace(&trace);
  audit.set_bound_override(1);  // nothing real completes in one cycle
  hc.set_latency_audit(&audit);
  mem.set_latency_audit(&audit);
  dma.set_latency_audit(&audit, 0);

  sim.reset();
  for (int i = 0; i < 20000; ++i) sim.step();

  ASSERT_GT(audit.transactions(), 0u);
  EXPECT_GT(audit.bound_violations(), 0u);
  EXPECT_EQ(audit.bound_violations(), audit.bound_checked());
  EXPECT_GT(audit.max_latency_ratio(), 1.0);
  EXPECT_GT(trace.count("hc.port0", "bound_violation"), 0u);
  const auto records = audit.flight_recorder().snapshot();
  ASSERT_FALSE(records.empty());
  EXPECT_TRUE(std::all_of(records.begin(), records.end(),
                          [](const FlightRecord& r) { return r.violation; }));
}

// A disabled auditor must observe nothing even when attached everywhere.
TEST(LatencyAudit, DisabledAuditorRecordsNothing) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  DmaConfig d;
  d.mode = DmaMode::kRead;
  d.bytes_per_job = 1u << 16;
  DmaEngine dma("dma", hc.port_link(0), d);
  sim.add(dma);

  LatencyAudit audit(cfg.num_ports, 256);  // default-disabled
  hc.set_latency_audit(&audit);
  mem.set_latency_audit(&audit);
  dma.set_latency_audit(&audit, 0);

  sim.reset();
  for (int i = 0; i < 5000; ++i) sim.step();
  EXPECT_EQ(audit.transactions(), 0u);
  EXPECT_EQ(audit.flight_recorder().size(), 0u);
}

}  // namespace
}  // namespace axihc
