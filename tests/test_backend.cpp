// Sweep-kernel backends (sim/backend.hpp) and the hot-state pool
// (sim/soa_pool.hpp).
//
// Part 1 — kernel unit tests: the SIMD commit and min-reduce kernels are
// checked element-for-element against the scalar reference over edge shapes
// (empty arrays, single lanes, vector-width tails, all-quiescent
// certificates, values straddling the 2^63 sign-bias boundary and the
// kNoCycle sentinel). Backends the host CPU lacks are skipped.
//
// Part 2 — policy/handle tests: backend resolution (explicit request, auto,
// AXIHC_FORCE_BACKEND override, unparseable override), the auto-tune probe,
// and PooledWords/PooledCycle adoption semantics.
//
// Part 3 — backend-matrix bit-identity: three INI scenarios (Fig. 4-style
// isolation, Fig. 5-style contention, a fault-recovery run) executed under
// every available backend × thread count {0, 1, 2, 4} × fast-forward
// on/off must reproduce the scalar reference bit-for-bit: equal state
// digests, final cycles and full trace streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "config/system_builder.hpp"
#include "sim/backend.hpp"
#include "sim/simulator.hpp"
#include "sim/soa_pool.hpp"

namespace axihc {
namespace {

std::vector<BackendKind> available_backends() {
  std::vector<BackendKind> kinds = {BackendKind::kScalar};
  const CpuFeatures cpu = detect_cpu_features();
  if (cpu.sse2) kinds.push_back(BackendKind::kSse2);
  if (cpu.avx2) kinds.push_back(BackendKind::kAvx2);
  return kinds;
}

// ---------------------------------------------------------------------------
// Part 1: kernels vs the scalar reference.

constexpr std::uint64_t kMax64 = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t kBias = std::uint64_t{1} << 63;

std::uint64_t reference_min(const std::vector<std::uint64_t>& v) {
  std::uint64_t best = kMax64;
  for (std::uint64_t x : v) {
    if (x < best) best = x;
  }
  return best;
}

TEST(MinReduce, EmptyIslandIsIdentity) {
  for (BackendKind kind : available_backends()) {
    const BackendKernels& k = kernels_for(kind);
    EXPECT_EQ(k.min_reduce(nullptr, 0), kMax64) << to_string(kind);
  }
}

TEST(MinReduce, SingleLane) {
  for (BackendKind kind : available_backends()) {
    const BackendKernels& k = kernels_for(kind);
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{17},
                            kBias - 1, kBias, kBias + 1, kMax64}) {
      EXPECT_EQ(k.min_reduce(&v, 1), v) << to_string(kind);
    }
  }
}

TEST(MinReduce, AllQuiescentStaysNoCycle) {
  // Every certificate at kNoCycle (== UINT64_MAX): the bound must stay at
  // the sentinel, not clamp or wrap through the sign-biased compare.
  std::vector<std::uint64_t> certs(37, kNoCycle);
  for (BackendKind kind : available_backends()) {
    const BackendKernels& k = kernels_for(kind);
    EXPECT_EQ(k.min_reduce(certs.data(), certs.size()), kNoCycle)
        << to_string(kind);
  }
}

TEST(MinReduce, TailLanesEveryLengthMatchesReference) {
  // Lengths 0..33 cover every SSE2 (2-lane) and AVX2 (4-lane) tail shape.
  // Values deliberately straddle 2^32 and the 2^63 sign-bias boundary.
  std::vector<std::uint64_t> pool = {
      5,           1,          kMax64,   kBias, kBias - 1,     kBias + 1,
      0x100000000, 0xffffffff, kNoCycle, 3,     2,             7,
      kBias + 99,  42,         11,       9,     0x10000000000, kMax64 - 1};
  for (std::size_t n = 0; n <= 33; ++n) {
    std::vector<std::uint64_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = pool[(i * 7 + n) % pool.size()];
    const std::uint64_t expected = reference_min(v);
    for (BackendKind kind : available_backends()) {
      const BackendKernels& k = kernels_for(kind);
      EXPECT_EQ(k.min_reduce(v.data(), n), expected)
          << to_string(kind) << " n=" << n;
    }
  }
}

TEST(MinReduce, MinimumPositionIndependent) {
  for (std::size_t pos = 0; pos < 9; ++pos) {
    std::vector<std::uint64_t> v(9, kNoCycle);
    v[pos] = 123456789;
    for (BackendKind kind : available_backends()) {
      const BackendKernels& k = kernels_for(kind);
      EXPECT_EQ(k.min_reduce(v.data(), v.size()), 123456789u)
          << to_string(kind) << " pos=" << pos;
    }
  }
}

std::vector<ChannelHot> make_lanes(std::size_t n) {
  std::vector<ChannelHot> lanes(n);
  for (std::size_t i = 0; i < n; ++i) {
    ChannelHot& h = lanes[i];
    h.head = static_cast<std::uint32_t>(i * 3);
    h.committed = static_cast<std::uint32_t>(i % 5);
    if (i % 3 == 0) {
      // Clean lane: staged == 0, snapshot == committed (the dense-sweep
      // no-op invariant).
      h.staged = 0;
      h.snapshot = h.committed;
    } else {
      h.staged = static_cast<std::uint32_t>(1 + i % 4);
      h.snapshot = h.committed + (i % 2);
    }
  }
  return lanes;
}

void commit_reference(std::vector<ChannelHot>& lanes) {
  for (ChannelHot& h : lanes) {
    h.committed += h.staged;
    h.staged = 0;
    h.snapshot = h.committed;
  }
}

bool equal_lanes(const std::vector<ChannelHot>& a,
                 const std::vector<ChannelHot>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].head != b[i].head || a[i].committed != b[i].committed ||
        a[i].staged != b[i].staged || a[i].snapshot != b[i].snapshot) {
      return false;
    }
  }
  return true;
}

TEST(CommitKernels, DenseMatchesReferenceEveryTailShape) {
  for (std::size_t n = 0; n <= 19; ++n) {
    std::vector<ChannelHot> expected = make_lanes(n);
    commit_reference(expected);
    for (BackendKind kind : available_backends()) {
      std::vector<ChannelHot> lanes = make_lanes(n);
      kernels_for(kind).commit_dense(lanes.data(), n);
      EXPECT_TRUE(equal_lanes(lanes, expected))
          << to_string(kind) << " n=" << n;
    }
  }
}

TEST(CommitKernels, DenseIsNoOpOnCleanLanes) {
  // A committed pool is all-clean; a second dense sweep must change nothing
  // (this is what makes cross-island early commits idempotent).
  std::vector<ChannelHot> lanes = make_lanes(16);
  commit_reference(lanes);
  const std::vector<ChannelHot> snapshot = lanes;
  for (BackendKind kind : available_backends()) {
    kernels_for(kind).commit_dense(lanes.data(), lanes.size());
    EXPECT_TRUE(equal_lanes(lanes, snapshot)) << to_string(kind);
  }
}

TEST(CommitKernels, SparseMatchesReferenceAndSkipsOthers) {
  const std::vector<std::uint32_t> dirty = {1, 4, 5, 11};
  std::vector<ChannelHot> expected = make_lanes(12);
  for (std::uint32_t lane : dirty) {
    ChannelHot& h = expected[lane];
    h.committed += h.staged;
    h.staged = 0;
    h.snapshot = h.committed;
  }
  for (BackendKind kind : available_backends()) {
    std::vector<ChannelHot> lanes = make_lanes(12);
    kernels_for(kind).commit_sparse(lanes.data(), dirty.data(), dirty.size());
    EXPECT_TRUE(equal_lanes(lanes, expected)) << to_string(kind);
  }
}

// ---------------------------------------------------------------------------
// Part 2: policy resolution and pool handles.

TEST(BackendPolicy, ParseBackendRoundTrips) {
  BackendKind kind = BackendKind::kScalar;
  EXPECT_TRUE(parse_backend("scalar", kind));
  EXPECT_EQ(kind, BackendKind::kScalar);
  EXPECT_TRUE(parse_backend("sse2", kind));
  EXPECT_EQ(kind, BackendKind::kSse2);
  EXPECT_TRUE(parse_backend("avx2", kind));
  EXPECT_EQ(kind, BackendKind::kAvx2);
  EXPECT_TRUE(parse_backend("auto", kind));
  EXPECT_EQ(kind, BackendKind::kAuto);
  EXPECT_FALSE(parse_backend("neon", kind));
  EXPECT_FALSE(parse_backend("", kind));
}

TEST(BackendPolicy, ExplicitScalarAlwaysHonoured) {
  const BackendPolicy policy = resolve_backend(BackendKind::kScalar);
  EXPECT_EQ(policy.chosen, BackendKind::kScalar);
  EXPECT_FALSE(policy.report().empty());
}

TEST(BackendPolicy, AutoPicksSomethingSupported) {
  const BackendPolicy policy = resolve_backend(BackendKind::kAuto);
  const auto kinds = available_backends();
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), policy.chosen),
            kinds.end());
  // Auto never leaves SIMD on the table: the chosen backend is the widest.
  EXPECT_EQ(policy.chosen, kinds.back());
}

TEST(BackendPolicy, EnvOverrideWinsAndUnparseableIsIgnored) {
  ::setenv("AXIHC_FORCE_BACKEND", "scalar", 1);
  BackendPolicy forced = resolve_backend(BackendKind::kAuto);
  EXPECT_EQ(forced.chosen, BackendKind::kScalar);
  EXPECT_TRUE(forced.forced_by_env);

  ::setenv("AXIHC_FORCE_BACKEND", "m68k", 1);
  BackendPolicy garbled = resolve_backend(BackendKind::kScalar);
  EXPECT_EQ(garbled.chosen, BackendKind::kScalar);
  EXPECT_FALSE(garbled.forced_by_env);
  EXPECT_NE(garbled.reason.find("unparseable"), std::string::npos);
  ::unsetenv("AXIHC_FORCE_BACKEND");
}

TEST(BackendPolicy, KernelTablesMatchTheirKind) {
  for (BackendKind kind : available_backends()) {
    EXPECT_EQ(kernels_for(kind).kind, kind);
  }
}

TEST(BackendPolicy, AutoTuneReturnsAvailableBackend) {
  std::string note;
  const BackendKind kind = auto_tune_backend(&note);
  const auto kinds = available_backends();
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), kind), kinds.end());
  EXPECT_NE(note.find("auto-tune"), std::string::npos);
}

TEST(PooledWords, InlineThenAdoptedKeepsValuesAndWrites) {
  HotStatePool pool;
  PooledWords w(std::vector<std::uint32_t>{10, 20, 30});
  EXPECT_EQ(w.size(), 3u);
  w[1] = 21;  // pre-adoption write goes to inline storage
  w.adopt(pool, nullptr, "test_words");
  EXPECT_EQ(w.get(0), 10u);
  EXPECT_EQ(w.get(1), 21u);
  EXPECT_EQ(w.get(2), 30u);
  w[2] = 31;  // post-adoption write goes to the pool slot
  EXPECT_EQ(w.get(2), 31u);
  w = std::vector<std::uint32_t>{1, 2, 3};  // same-size assign, post-adopt
  EXPECT_EQ(w.get(0), 1u);
  ASSERT_EQ(pool.slots().size(), 1u);
  EXPECT_EQ(pool.slots()[0].what, "test_words");
  EXPECT_EQ(pool.slots()[0].words, 3u);
}

TEST(PooledWords, HandlesSurviveLaterAllocations) {
  HotStatePool pool;
  PooledWords first(std::vector<std::uint32_t>{7});
  first.adopt(pool, nullptr, "first");
  const std::uint32_t* before = first.begin();
  for (int i = 0; i < 64; ++i) {
    PooledWords extra(std::vector<std::uint32_t>(17, 0));
    extra.adopt(pool, nullptr, "extra");
  }
  EXPECT_EQ(first.begin(), before);  // per-slot blocks: no relocation
  EXPECT_EQ(first.get(0), 7u);
}

TEST(PooledCycle, AdoptPreservesValue) {
  HotStatePool pool;
  PooledCycle c(42);
  EXPECT_EQ(c.get(), 42u);
  c.adopt(pool, nullptr, "deadline");
  EXPECT_EQ(c.get(), 42u);
  c.set(99);
  EXPECT_EQ(c.get(), 99u);
}

// ---------------------------------------------------------------------------
// Part 3: backend-matrix bit-identity on whole systems.

// Scaled-down versions of examples/configs: small enough for a matrix of
// runs, large enough to exercise the reservation machinery, both HA models,
// and (third scenario) the protection/recovery path.
constexpr char kIsolationIni[] = R"(
[system]
interconnect = hyperconnect
platform = zcu102
ports = 2
cycles = 120000

[hyperconnect]
nominal_burst = 16
max_outstanding = 4

[ha0]
type = dnn
network = googlenet
scale = 256

[ha1]
type = traffic
gap = 20000
burst = 16
direction = read
outstanding = 1

[observe]
trace = true
)";

constexpr char kContentionIni[] = R"(
[system]
interconnect = hyperconnect
platform = zcu102
ports = 2
cycles = 120000

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
reservation_period = 2000
budgets = 64 7

[ha0]
type = dnn
network = googlenet
scale = 256

[ha1]
type = dma
mode = readwrite
bytes_per_job = 16384
burst = 16

[observe]
trace = true
)";

constexpr char kRecoveryIni[] = R"(
[system]
interconnect = hyperconnect
platform = zcu102
ports = 2
cycles = 60000
fault_seed = 7

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
reservation_period = 2000
budgets = 16 8
prot_timeout = 2500

[ha0]
type = dma
mode = readwrite
bytes_per_job = 65536
burst = 16

[ha1]
type = traffic
direction = mixed
burst = 16

[recovery]
poll_period = 500
backoff_base = 500
backoff_max = 4000
probation_window = 1500
max_attempts = 4
drain_timeout = 2000

[fault0]
kind = stall_w
port = 0
start = 5000
duration = 6000

[observe]
trace = true
)";

struct MatrixOutcome {
  Cycle final_cycle = 0;
  std::uint64_t digest = 0;
  std::string trace;
};

MatrixOutcome run_matrix_point(const char* ini, BackendKind backend,
                               unsigned threads, bool fast_forward) {
  auto system = build_system(ini);
  Simulator& sim = system->soc().sim();
  sim.set_backend(backend);
  sim.set_threads(threads);
  sim.set_fast_forward(fast_forward);
  MatrixOutcome out;
  out.final_cycle = system->run(0);
  out.digest = sim.state_digest();
  std::ostringstream trace;
  system->write_trace(trace);
  out.trace = trace.str();
  return out;
}

void run_matrix(const char* name, const char* ini) {
  SCOPED_TRACE(name);
  const MatrixOutcome ref =
      run_matrix_point(ini, BackendKind::kScalar, 0, true);
  EXPECT_NE(ref.digest, 0u);
  EXPECT_GT(ref.trace.size(), 2u);  // non-degenerate stream
  for (BackendKind backend : available_backends()) {
    for (unsigned threads : {0u, 1u, 2u, 4u}) {
      for (bool ff : {true, false}) {
        if (backend == BackendKind::kScalar && threads == 0 && ff) {
          continue;  // the reference point itself
        }
        const MatrixOutcome got = run_matrix_point(ini, backend, threads, ff);
        EXPECT_EQ(got.final_cycle, ref.final_cycle)
            << to_string(backend) << " threads=" << threads << " ff=" << ff;
        EXPECT_EQ(got.digest, ref.digest)
            << to_string(backend) << " threads=" << threads << " ff=" << ff;
        EXPECT_EQ(got.trace, ref.trace)
            << to_string(backend) << " threads=" << threads << " ff=" << ff;
      }
    }
  }
}

TEST(BackendMatrix, IsolationScenarioBitIdentical) {
  run_matrix("fig4-isolation", kIsolationIni);
}

TEST(BackendMatrix, ContentionScenarioBitIdentical) {
  run_matrix("fig5-contention", kContentionIni);
}

TEST(BackendMatrix, FaultRecoveryScenarioBitIdentical) {
  run_matrix("campaign-recovery", kRecoveryIni);
}

}  // namespace
}  // namespace axihc
