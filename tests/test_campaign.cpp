// Fault-campaign runner tests: spec parsing/validation, deterministic
// scenario generation, byte-identical repeated runs, and single-run replay
// reproducing the campaign row's state digest.
#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/check.hpp"
#include "config/ini.hpp"
#include "config/system_builder.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

// Small but real: two contending HAs, full recovery stack, four runs with
// fault windows long enough (> prot_timeout) to latch and recover from.
constexpr char kSpec[] = R"(
[system]
interconnect = hyperconnect
platform = zcu102
ports = 2
cycles = 20000

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
reservation_period = 2000
budgets = 16 8
prot_timeout = 1500

[ha0]
type = dma
mode = readwrite
bytes_per_job = 65536
burst = 16

[ha1]
type = traffic
direction = mixed
burst = 16

[recovery]
poll_period = 500
backoff_base = 500
backoff_max = 4000
probation_window = 1500
max_attempts = 4
drain_timeout = 2000

[campaign]
runs = 4
seed = 11
min_faults = 1
max_faults = 2
start_min = 2000
start_max = 6000
duration_min = 2000
duration_max = 5000
)";

TEST(CampaignSpecTest, ParsesWithResolvedDefaults) {
  const CampaignSpec spec = parse_campaign_spec(IniFile::parse(kSpec));
  EXPECT_EQ(spec.runs, 4u);
  EXPECT_EQ(spec.seed, 11u);
  EXPECT_EQ(spec.cycles, 20000u);      // resolved from [system]
  EXPECT_EQ(spec.kinds.size(), 9u);    // default: all injector kinds
  ASSERT_EQ(spec.ports.size(), 2u);    // default: every [haN] port
  EXPECT_EQ(spec.min_faults, 1u);
  EXPECT_EQ(spec.max_faults, 2u);
}

TEST(CampaignSpecTest, RejectsMissingCampaignSection) {
  std::string no_campaign(kSpec);
  no_campaign.erase(no_campaign.find("[campaign]"));
  EXPECT_THROW(parse_campaign_spec(IniFile::parse(no_campaign)), ModelError);
}

TEST(CampaignSpecTest, RejectsStrayFaultSections) {
  std::string with_fault(kSpec);
  with_fault +=
      "\n[fault0]\nkind = stall_w\nport = 0\nstart = 100\nduration = 10\n";
  EXPECT_THROW(parse_campaign_spec(IniFile::parse(with_fault)), ModelError);
}

TEST(CampaignScenarioTest, PureFunctionOfSpecAndIndex) {
  const CampaignSpec spec = parse_campaign_spec(IniFile::parse(kSpec));
  for (std::uint64_t r = 0; r < spec.runs; ++r) {
    const FaultScenario a = campaign_scenario(spec, r);
    const FaultScenario b = campaign_scenario(spec, r);
    EXPECT_EQ(a.seed, b.seed);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    // Generated faults inside the configured ranges, then one never-active
    // sentinel per candidate port pinning the injector topology.
    ASSERT_GE(a.faults.size(), spec.ports.size() + spec.min_faults);
    const std::size_t generated = a.faults.size() - spec.ports.size();
    EXPECT_LE(generated, spec.max_faults);
    for (std::size_t i = 0; i < generated; ++i) {
      const FaultSpec& f = a.faults[i];
      EXPECT_GE(f.start, spec.start_min);
      EXPECT_LE(f.start, spec.start_max);
      EXPECT_GE(f.duration, spec.duration_min);
      EXPECT_LE(f.duration, spec.duration_max);
      EXPECT_EQ(f.kind, b.faults[i].kind);
      EXPECT_EQ(f.start, b.faults[i].start);
    }
    for (std::size_t i = generated; i < a.faults.size(); ++i) {
      EXPECT_FALSE(a.faults[i].active_at(spec.cycles));  // sentinel
    }
  }
  // Different runs draw different scenarios (seeds decorrelate).
  EXPECT_NE(campaign_scenario(spec, 0).seed, campaign_scenario(spec, 1).seed);
}

TEST(CampaignRunTest, RepeatedRunsAreByteIdentical) {
  const IniFile ini = IniFile::parse(kSpec);
  const CampaignOutput a = run_campaign(ini);
  const CampaignOutput b = run_campaign(ini);
  ASSERT_EQ(a.lines.size(), 5u);  // header + 4 runs
  EXPECT_EQ(a.lines, b.lines);
  EXPECT_EQ(a.non_converged, b.non_converged);
  EXPECT_EQ(a.total_recoveries, b.total_recoveries);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.conservation_violations, 0u);
}

TEST(CampaignRunTest, DifferentSeedDifferentScenarios) {
  std::string reseeded(kSpec);
  const std::size_t pos = reseeded.find("seed = 11");
  ASSERT_NE(pos, std::string::npos);
  reseeded.replace(pos, 9, "seed = 12");
  const CampaignOutput a = run_campaign(IniFile::parse(kSpec));
  const CampaignOutput b = run_campaign(IniFile::parse(reseeded));
  EXPECT_NE(a.lines, b.lines);
}

TEST(CampaignRunTest, ReplayReproducesTheRowDigest) {
  const IniFile ini = IniFile::parse(kSpec);
  const CampaignOutput out = run_campaign(ini);
  ASSERT_EQ(out.lines.size(), 5u);

  for (std::uint64_t r = 0; r < 4; ++r) {
    // The digest the campaign recorded for this run...
    const std::string& row = out.lines[r + 1];
    const std::string key = "\"digest\":\"";
    const std::size_t at = row.find(key);
    ASSERT_NE(at, std::string::npos) << row;
    const std::string want =
        row.substr(at + key.size(), row.find('"', at + key.size()) -
                                        (at + key.size()));

    // ...must fall out of a standalone run of the reconstructed config.
    ConfiguredSystem replay(IniFile::parse(campaign_replay_ini(ini, r)));
    replay.run();
    char got[32];
    std::snprintf(got, sizeof got, "0x%016llx",
                  static_cast<unsigned long long>(
                      replay.soc().sim().state_digest()));
    EXPECT_EQ(want, std::string(got)) << "run " << r;
  }
}

}  // namespace
}  // namespace axihc
