// Fault-injection and protection-unit tests: the HyperConnect must detect a
// misbehaving port (hung handshake, malformed burst), synthesize terminal
// SLVERR completions so both sides drain, quarantine the port, and keep the
// healthy ports' reserved bandwidth intact. Faults are latched in the
// FAULT_* registers for the hypervisor's watchdog.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "config/system_builder.hpp"
#include "driver/hyperconnect_driver.hpp"
#include "fault/fault_injector.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

struct ProtectionFixture : ::testing::Test {
  explicit ProtectionFixture(Cycle prot_timeout = 50)
      : hc("hc", config(prot_timeout)), mem("ddr", hc.master_link(), store, {}) {
    hc.register_with(sim);
    sim.add(mem);
    sim.reset();
  }

  static HyperConnectConfig config(Cycle prot_timeout) {
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    cfg.nominal_burst = 16;
    cfg.max_outstanding = 4;
    cfg.prot_timeout = prot_timeout;
    // Shallow port R queue so a permanent RREADY stall wedges the shared
    // read path quickly (head-of-line stall, not just buffered slack).
    cfg.port_link_cfg.r_depth = 4;
    return cfg;
  }

  Simulator sim;
  BackingStore store;
  HyperConnect hc;
  MemoryController mem;
};

TEST_F(ProtectionFixture, HungWriteStreamSynthesizesSlvErrB) {
  // 16-beat write whose W stream dies after 8 beats: the granted sub-write
  // wedges the shared W path until the protection unit times out.
  AddrReq aw;
  aw.id = 11;
  aw.addr = 0x2000;
  aw.beats = 16;
  hc.port_link(0).aw.push(aw);
  for (BeatCount i = 0; i < 8; ++i) {
    while (!hc.port_link(0).w.can_push()) sim.step();
    hc.port_link(0).w.push({i, 0xff, false});
  }

  BResp resp;
  ASSERT_TRUE(sim.run_until(
      [&] {
        if (!hc.port_link(0).b.can_pop()) return false;
        resp = hc.port_link(0).b.pop();
        return true;
      },
      5000));
  EXPECT_EQ(resp.id, 11u);
  EXPECT_EQ(resp.resp, Resp::kSlvErr);

  EXPECT_EQ(hc.faults_latched(), 1u);
  EXPECT_TRUE(hc.port_fault(0).faulted);
  EXPECT_EQ(hc.port_fault(0).cause, FaultCause::kWriteStall);
  EXPECT_EQ(hc.port_fault(0).count, 1u);
  EXPECT_FALSE(hc.port_fault(1).faulted);

  // The granted sub-write is zero-filled so the memory side drains too.
  ASSERT_TRUE(sim.run_until([&] { return mem.writes_served() == 1; }, 5000));
}

TEST_F(ProtectionFixture, PermanentRreadyStallSynthesizesTerminalRBeats) {
  // Four reads issued, R never drained (RREADY held low forever): once the
  // port's R queue is full the shared read path wedges head-of-line.
  for (TxnId id = 1; id <= 4; ++id) {
    AddrReq ar;
    ar.id = id;
    ar.addr = 0x1000 * id;
    ar.beats = 16;
    hc.port_link(0).ar.push(ar);
    sim.step();
  }
  ASSERT_TRUE(sim.run_until([&] { return hc.faults_latched() == 1; }, 5000));
  EXPECT_EQ(hc.port_fault(0).cause, FaultCause::kReadStall);

  // The fault must not erase completions. Data buffered before the fault is
  // kept (the HA is still owed it), and every read still holding a record
  // gets a terminal SLVERR RLAST beat, delivered as R-queue capacity frees
  // (the queue was full at fault time — the stall is what caused it). Drain
  // with the simulator ticking so the owed completions can flow.
  std::vector<RBeat> beats;
  for (int i = 0; i < 200; ++i) {
    sim.step();
    while (hc.port_link(0).r.can_pop()) {
      beats.push_back(hc.port_link(0).r.pop());
    }
  }
  ASSERT_FALSE(beats.empty());
  std::map<TxnId, int> terminals;
  for (const RBeat& b : beats) {
    if (b.last) {
      // No 16-beat read fit through the depth-4 queue before the wedge, so
      // every terminal beat is a synthesized error completion.
      EXPECT_EQ(b.resp, Resp::kSlvErr);
      ++terminals[b.id];
    } else {
      EXPECT_EQ(b.resp, Resp::kOkay);  // retained pre-fault data
    }
  }
  ASSERT_FALSE(terminals.empty());
  for (const auto& [id, n] : terminals) {
    EXPECT_EQ(n, 1) << "duplicate terminal beat for id " << id;
  }
}

TEST_F(ProtectionFixture, FaultedPortDoesNotBlockHealthyPort) {
  // Port 0 wedges (hung W); port 1 keeps issuing reads throughout and must
  // see them all complete cleanly.
  AddrReq aw;
  aw.id = 3;
  aw.addr = 0x2000;
  aw.beats = 16;
  hc.port_link(0).aw.push(aw);  // no W data at all

  std::uint64_t completed = 0;
  TxnId next_id = 1;
  std::uint32_t in_flight = 0;
  ASSERT_TRUE(sim.run_until(
      [&] {
        if (in_flight < 2 && hc.port_link(1).ar.can_push()) {
          AddrReq ar;
          ar.id = next_id++;
          ar.addr = 0x8000;
          ar.beats = 16;
          hc.port_link(1).ar.push(ar);
          ++in_flight;
        }
        while (hc.port_link(1).r.can_pop()) {
          const RBeat b = hc.port_link(1).r.pop();
          EXPECT_EQ(b.resp, Resp::kOkay);
          if (b.last) {
            ++completed;
            --in_flight;
          }
        }
        return completed >= 20;
      },
      20000));
  EXPECT_TRUE(hc.port_fault(0).faulted);
  EXPECT_FALSE(hc.port_fault(1).faulted);
}

struct MalformedFixture : ProtectionFixture {
  MalformedFixture() : ProtectionFixture(0) {}  // timeout disabled
};

TEST_F(MalformedFixture, EarlyWlastFaultsEvenWithTimeoutDisabled) {
  AddrReq aw;
  aw.id = 21;
  aw.addr = 0x3000;
  aw.beats = 16;
  hc.port_link(0).aw.push(aw);
  for (BeatCount i = 0; i < 9; ++i) {
    while (!hc.port_link(0).w.can_push()) sim.step();
    hc.port_link(0).w.push({i, 0xff, i == 8});  // WLAST 7 beats early
  }

  BResp resp;
  ASSERT_TRUE(sim.run_until(
      [&] {
        if (!hc.port_link(0).b.can_pop()) return false;
        resp = hc.port_link(0).b.pop();
        return true;
      },
      5000));
  EXPECT_EQ(resp.resp, Resp::kSlvErr);
  EXPECT_EQ(hc.port_fault(0).cause, FaultCause::kMalformed);
  // Downstream stream was completed legally regardless.
  ASSERT_TRUE(sim.run_until([&] { return mem.writes_served() == 1; }, 5000));
}

TEST_F(ProtectionFixture, FaultRegistersLatchAndClearViaBackdoor) {
  AddrReq aw;
  aw.id = 11;
  aw.addr = 0x2000;
  aw.beats = 16;
  hc.port_link(0).aw.push(aw);  // hung W: no data
  ASSERT_TRUE(sim.run_until([&] { return hc.faults_latched() == 1; }, 5000));
  const Cycle fault_cycle = sim.now();

  HcRegisterFile& regs = hc.registers_backdoor();
  const std::uint64_t status = regs.read(hcregs::fault_status(0));
  EXPECT_EQ(status & hcregs::kFaultStatusFaultedBit, 1u);
  EXPECT_EQ(status >> hcregs::kFaultStatusCauseShift,
            static_cast<std::uint64_t>(FaultCause::kWriteStall));
  EXPECT_EQ(regs.read(hcregs::fault_count(0)), 1u);
  EXPECT_GE(fault_cycle, regs.read(hcregs::fault_cycle(0)));

  // Drain the synthesized B and let the zero-filled write retire.
  ASSERT_TRUE(sim.run_until([&] { return mem.writes_served() == 1; }, 5000));
  while (hc.port_link(0).b.can_pop()) hc.port_link(0).b.pop();

  // Any write to FAULT_STATUS acknowledges the fault; count is preserved.
  regs.write(hcregs::fault_status(0), 0);
  sim.run(5);
  EXPECT_FALSE(hc.port_fault(0).faulted);
  EXPECT_EQ(regs.read(hcregs::fault_count(0)), 1u);

  // The re-armed port serves traffic again.
  AddrReq ar;
  ar.id = 12;
  ar.addr = 0x4000;
  ar.beats = 16;
  hc.port_link(0).ar.push(ar);
  std::size_t got = 0;
  ASSERT_TRUE(sim.run_until(
      [&] {
        while (hc.port_link(0).r.can_pop()) {
          EXPECT_EQ(hc.port_link(0).r.pop().resp, Resp::kOkay);
          ++got;
        }
        return got >= 16;
      },
      5000));
  EXPECT_EQ(hc.faults_latched(), 1u) << "spurious re-fault after re-arm";
}

TEST(ProtectionDriver, TimeoutConfiguredAndFaultReadOverControlBus) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  HyperConnect hc("hc", cfg);  // prot_timeout 0: armed over the bus below
  MemoryController mem("ddr", hc.master_link(), store, {});
  RegisterMaster rm("rm", hc.control_link());
  HyperConnectDriver driver(rm, 2);
  hc.register_with(sim);
  sim.add(mem);
  sim.add(rm);
  sim.reset();

  driver.set_prot_timeout(50);
  ASSERT_TRUE(sim.run_until([&] { return driver.idle(); }, 10000));

  AddrReq aw;
  aw.id = 1;
  aw.addr = 0x2000;
  aw.beats = 16;
  hc.port_link(0).aw.push(aw);  // hung W stream
  ASSERT_TRUE(sim.run_until([&] { return hc.faults_latched() == 1; }, 5000));

  std::uint64_t status = 0;
  driver.read_fault_status(0, [&](std::uint64_t v) { status = v; });
  std::uint64_t count = 0;
  driver.read_fault_count(0, [&](std::uint64_t v) { count = v; });
  ASSERT_TRUE(sim.run_until([&] { return driver.idle(); }, 10000));
  EXPECT_EQ(status & hcregs::kFaultStatusFaultedBit, 1u);
  EXPECT_EQ(status >> hcregs::kFaultStatusCauseShift,
            static_cast<std::uint64_t>(FaultCause::kWriteStall));
  EXPECT_EQ(count, 1u);

  driver.clear_fault(0);
  ASSERT_TRUE(sim.run_until([&] { return driver.idle(); }, 10000));
  sim.run(5);
  EXPECT_FALSE(hc.port_fault(0).faulted);
}

TEST(FaultInjectorUnit, StallWHoldsDataAfterStart) {
  Simulator sim;
  AxiLink ha("ha"), bus("bus");
  ha.register_with(sim);
  bus.register_with(sim);
  FaultScenario scenario;
  scenario.faults = {{FaultKind::kStallW, 0, 0, 0, 0, 1.0}};
  FaultInjector inj("inj", ha, bus, scenario, 0);
  sim.add(inj);
  sim.reset();

  AddrReq aw;
  aw.beats = 4;
  ha.aw.push(aw);
  for (BeatCount i = 0; i < 4; ++i) ha.w.push({i, 0xff, i == 3});
  sim.run(100);
  EXPECT_TRUE(bus.aw.can_pop());  // AW channel unaffected
  std::size_t w_forwarded = 0;
  while (bus.w.can_pop()) {
    bus.w.pop();
    ++w_forwarded;
  }
  EXPECT_EQ(w_forwarded, 0u) << "stall_w did not hold the W stream";
  EXPECT_GT(inj.stats().w_stalled, 0u);
}

TEST(FaultInjectorUnit, TruncateWriteForcesEarlyWlast) {
  Simulator sim;
  AxiLink ha("ha"), bus("bus");
  ha.register_with(sim);
  bus.register_with(sim);
  FaultScenario scenario;
  scenario.faults = {{FaultKind::kTruncateWrite, 0, 0, 0, 1, 1.0}};
  FaultInjector inj("inj", ha, bus, scenario, 0);
  sim.add(inj);
  sim.reset();

  AddrReq aw;
  aw.beats = 4;
  ha.aw.push(aw);
  for (BeatCount i = 0; i < 4; ++i) ha.w.push({i, 0xff, i == 3});
  sim.run(100);

  ASSERT_TRUE(bus.aw.can_pop());
  EXPECT_EQ(bus.aw.pop().beats, 4u);  // AW still advertises the full length
  std::vector<WBeat> beats;
  while (bus.w.can_pop()) beats.push_back(bus.w.pop());
  ASSERT_EQ(beats.size(), 3u);  // one beat cut
  EXPECT_TRUE(beats.back().last);
  EXPECT_FALSE(beats[0].last);
  EXPECT_EQ(inj.stats().bursts_truncated, 1u);
}

TEST(FaultInjectorUnit, SeededScenarioIsReproducible) {
  // Two injectors built from the same seeded scenario must make identical
  // probabilistic choices.
  for (int run = 0; run < 2; ++run) {
    SCOPED_TRACE(run);
    Simulator sim;
    AxiLink ha("ha"), bus("bus");
    ha.register_with(sim);
    bus.register_with(sim);
    FaultScenario scenario;
    scenario.seed = 1234;
    scenario.faults = {{FaultKind::kDropW, 0, 0, 0, 0, 0.5}};
    FaultInjector inj("inj", ha, bus, scenario, 0);
    sim.add(inj);
    sim.reset();

    static std::uint64_t first_run_dropped = 0;
    for (int burst = 0; burst < 8; ++burst) {
      AddrReq aw;
      aw.beats = 4;
      while (!ha.aw.can_push()) sim.step();
      ha.aw.push(aw);
      for (BeatCount i = 0; i < 4; ++i) {
        while (!ha.w.can_push()) sim.step();
        ha.w.push({i, 0xff, i == 3});
      }
      sim.run(10);
      while (bus.aw.can_pop()) bus.aw.pop();
      while (bus.w.can_pop()) bus.w.pop();
    }
    if (run == 0) {
      first_run_dropped = inj.stats().w_dropped;
      EXPECT_GT(first_run_dropped, 0u);
      EXPECT_LT(first_run_dropped, 32u);
    } else {
      EXPECT_EQ(inj.stats().w_dropped, first_run_dropped);
    }
  }
}

TEST(FaultInjectionIni, MemSlvErrWindowConfiguredFromIni) {
  const auto cs = build_system(R"(
[system]
ports = 2
cycles = 1000
mem_bytes = 1073741824

[ha0]
type = traffic
direction = write
burst = 16
base = 0x40000000

[fault0]
kind = mem_slverr
base = 0x40000000
bytes = 1048576
)");
  EXPECT_EQ(cs->injector_count(), 0u);  // mem_slverr is not an injector fault
  cs->run(20000);
  const MasterStats& s = cs->ha(0).stats();
  EXPECT_GT(s.writes_completed, 0u);
  EXPECT_EQ(s.writes_failed, s.writes_completed);
}

// The ISSUE acceptance scenario: a seeded stress with a permanently hung W
// stream on port 0 and a permanent RREADY stall on port 1, both starting
// mid-run. The protection units must time out, synthesize SLVERR, decouple
// the faulty ports, and the healthy ports' bandwidth must recover to their
// reservation. The whole system must keep simulating (no deadlock).
TEST(FaultInjectionIni, SeededStressRecoversReservedBandwidth) {
  const auto cs = build_system(R"(
[system]
ports = 4
cycles = 40000
fault_seed = 7

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
reservation_period = 1000
budgets = 10 10 10 10
prot_timeout = 400

[ha0]
type = traffic
direction = write
burst = 16

[ha1]
type = traffic
direction = read
burst = 16

[ha2]
type = traffic
direction = read
burst = 16

[ha3]
type = traffic
direction = write
burst = 16

[fault0]
kind = stall_w
port = 0
start = 2000

[fault1]
kind = stall_r
port = 1
start = 2000
)");
  ASSERT_EQ(cs->injector_count(), 2u);
  HyperConnect* hc = cs->soc().hyperconnect();
  ASSERT_NE(hc, nullptr);

  // Warm-up + fault + recovery phase.
  cs->run(20000);
  EXPECT_EQ(hc->faults_latched(), 2u);
  EXPECT_TRUE(hc->port_fault(0).faulted);
  EXPECT_EQ(hc->port_fault(0).cause, FaultCause::kWriteStall);
  EXPECT_TRUE(hc->port_fault(1).faulted);
  EXPECT_EQ(hc->port_fault(1).cause, FaultCause::kReadStall);
  EXPECT_FALSE(hc->port_fault(2).faulted);
  EXPECT_FALSE(hc->port_fault(3).faulted);

  // Fault visibility through the register map.
  HcRegisterFile& regs = hc->registers_backdoor();
  for (PortIndex p : {PortIndex{0}, PortIndex{1}}) {
    EXPECT_EQ(regs.read(hcregs::fault_status(p)) & hcregs::kFaultStatusFaultedBit,
              1u)
        << "port " << p;
    EXPECT_GE(regs.read(hcregs::fault_count(p)), 1u);
  }
  EXPECT_EQ(regs.read(hcregs::fault_status(2)), 0u);

  // Measure the healthy ports over 20 reservation periods after recovery.
  const std::uint64_t read_before = cs->ha(2).stats().bytes_read;
  const std::uint64_t write_before = cs->ha(3).stats().bytes_written;
  cs->run(20000);
  const std::uint64_t read_delta = cs->ha(2).stats().bytes_read - read_before;
  const std::uint64_t write_delta =
      cs->ha(3).stats().bytes_written - write_before;

  // Reservation: 10 txns/period x 16 beats x 8 B over 20 periods.
  const double expected = 20.0 * 10 * 16 * 8;
  EXPECT_GE(read_delta, 0.95 * expected) << "healthy read port starved";
  EXPECT_LE(read_delta, 1.05 * expected);
  EXPECT_GE(write_delta, 0.95 * expected) << "healthy write port starved";
  EXPECT_LE(write_delta, 1.05 * expected);

  // Healthy ports never saw an error completion.
  EXPECT_EQ(cs->ha(2).stats().reads_failed, 0u);
  EXPECT_EQ(cs->ha(3).stats().writes_failed, 0u);
}

}  // namespace
}  // namespace axihc
