// Trace format, recording (AxiMonitor) and replay (TracePlayer) tests:
// the record-and-replay loop must reproduce the original traffic.
#include <gtest/gtest.h>

#include <sstream>

#include "axi/monitor.hpp"
#include "axi/trace_format.hpp"
#include "ha/dma_engine.hpp"
#include "ha/trace_player.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

TEST(TraceFormat, ParsesWellFormedText) {
  const auto entries = parse_trace(
      "# a comment\n"
      "10 R 0x1000 16\n"
      "\n"
      "25 W 0x2000 4   # trailing comment\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].issue_at, 10u);
  EXPECT_FALSE(entries[0].is_write);
  EXPECT_EQ(entries[0].addr, 0x1000u);
  EXPECT_EQ(entries[0].beats, 16u);
  EXPECT_TRUE(entries[1].is_write);
  EXPECT_EQ(entries[1].addr, 0x2000u);
}

TEST(TraceFormat, RejectsMalformedLines) {
  EXPECT_THROW(parse_trace("10 X 0x0 4\n"), ModelError);
  EXPECT_THROW(parse_trace("10 R 0x0 0\n"), ModelError);
  EXPECT_THROW(parse_trace("10 R 0x0 300\n"), ModelError);
  EXPECT_THROW(parse_trace("10 R\n"), ModelError);
}

TEST(TraceFormat, WriteParseRoundTrip) {
  std::vector<TraceEntry> original = {
      {5, false, 0xABC0, 8}, {9, true, 0x1'0000'0000ull, 256}};
  std::ostringstream os;
  write_trace(os, original);
  const auto reparsed = parse_trace(os.str());
  ASSERT_EQ(reparsed.size(), 2u);
  EXPECT_EQ(reparsed[1].addr, 0x1'0000'0000ull);
  EXPECT_EQ(reparsed[1].beats, 256u);
  EXPECT_TRUE(reparsed[1].is_write);
}

TEST(TracePlayer, RejectsUnsortedTrace) {
  AxiLink link("l");
  EXPECT_THROW(TracePlayer("p", link, {{10, false, 0, 1}, {5, false, 0, 1}}),
               ModelError);
}

TEST(TracePlayer, ReplaysAtRecordedCycles) {
  Simulator sim;
  AxiLink link("l");
  BackingStore store;
  MemoryController mem("ddr", link, store, {});
  // The player issues at most one request per cycle, so entries carry
  // distinct issue cycles here (coincident entries would count as slip).
  std::vector<TraceEntry> trace = {
      {10, false, 0x100, 4}, {50, true, 0x200, 2}, {51, false, 0x300, 1}};
  TracePlayer player("p", link, trace);
  link.register_with(sim);
  sim.add(mem);
  sim.add(player);
  sim.reset();

  ASSERT_TRUE(sim.run_until([&] { return player.finished(); }, 10000));
  EXPECT_EQ(player.stats().reads_completed, 2u);
  EXPECT_EQ(player.stats().writes_completed, 1u);
  EXPECT_EQ(player.slipped(), 0u);
}

TEST(TracePlayer, RecordAndReplayReproducesTraffic) {
  // Record a DMA's address stream through a monitor, then replay the trace
  // against a fresh memory: same transaction counts, same byte totals.
  std::vector<TraceEntry> trace;
  {
    Simulator sim;
    AxiLink up("up");
    AxiLink down("down");
    BackingStore store;
    MemoryController mem("ddr", down, store, {});
    AxiMonitor mon("mon", up, down);
    mon.set_trace_sink(&trace);
    DmaConfig cfg;
    cfg.mode = DmaMode::kReadWrite;
    cfg.bytes_per_job = 2048;
    cfg.burst_beats = 16;
    cfg.max_jobs = 1;
    DmaEngine dma("dma", up, cfg);
    up.register_with(sim);
    down.register_with(sim);
    sim.add(mem);
    sim.add(mon);
    sim.add(dma);
    sim.reset();
    trace.clear();  // reset() may have replayed nothing, but be safe
    ASSERT_TRUE(sim.run_until([&] { return dma.finished(); }, 100000));
  }
  ASSERT_EQ(trace.size(), 32u);  // 16 reads + 16 writes of 16 beats

  Simulator sim;
  AxiLink link("l");
  BackingStore store;
  MemoryController mem("ddr", link, store, {});
  TracePlayer player("p", link, trace);
  link.register_with(sim);
  sim.add(mem);
  sim.add(player);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return player.finished(); }, 100000));
  EXPECT_EQ(player.stats().reads_completed, 16u);
  EXPECT_EQ(player.stats().writes_completed, 16u);
  EXPECT_EQ(player.stats().bytes_read, 2048u);
  EXPECT_EQ(player.stats().bytes_written, 2048u);
}

TEST(TracePlayer, SlipCountsBackpressure) {
  // A trace demanding more than the outstanding limit allows must slip.
  std::vector<TraceEntry> trace;
  for (Cycle c = 0; c < 20; ++c) trace.push_back({c, false, c * 256, 16});
  Simulator sim;
  AxiLink link("l");
  BackingStore store;
  MemoryControllerConfig slow;
  slow.row_miss_latency = 40;
  slow.row_hit_latency = 30;
  MemoryController mem("ddr", link, store, slow);
  TracePlayer player("p", link, trace, /*max_outstanding=*/2);
  link.register_with(sim);
  sim.add(mem);
  sim.add(player);
  sim.reset();
  ASSERT_TRUE(sim.run_until([&] { return player.finished(); }, 100000));
  EXPECT_GT(player.slipped(), 0u);
}

}  // namespace
}  // namespace axihc
