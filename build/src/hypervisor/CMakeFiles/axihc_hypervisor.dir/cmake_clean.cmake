file(REMOVE_RECURSE
  "CMakeFiles/axihc_hypervisor.dir/domain.cpp.o"
  "CMakeFiles/axihc_hypervisor.dir/domain.cpp.o.d"
  "CMakeFiles/axihc_hypervisor.dir/hypervisor.cpp.o"
  "CMakeFiles/axihc_hypervisor.dir/hypervisor.cpp.o.d"
  "CMakeFiles/axihc_hypervisor.dir/integrator.cpp.o"
  "CMakeFiles/axihc_hypervisor.dir/integrator.cpp.o.d"
  "libaxihc_hypervisor.a"
  "libaxihc_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
