
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypervisor/domain.cpp" "src/hypervisor/CMakeFiles/axihc_hypervisor.dir/domain.cpp.o" "gcc" "src/hypervisor/CMakeFiles/axihc_hypervisor.dir/domain.cpp.o.d"
  "/root/repo/src/hypervisor/hypervisor.cpp" "src/hypervisor/CMakeFiles/axihc_hypervisor.dir/hypervisor.cpp.o" "gcc" "src/hypervisor/CMakeFiles/axihc_hypervisor.dir/hypervisor.cpp.o.d"
  "/root/repo/src/hypervisor/integrator.cpp" "src/hypervisor/CMakeFiles/axihc_hypervisor.dir/integrator.cpp.o" "gcc" "src/hypervisor/CMakeFiles/axihc_hypervisor.dir/integrator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/axihc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/axihc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/axi/CMakeFiles/axihc_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/axihc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/ipxact/CMakeFiles/axihc_ipxact.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/axihc_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
