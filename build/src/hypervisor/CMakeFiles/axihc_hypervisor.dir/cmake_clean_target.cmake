file(REMOVE_RECURSE
  "libaxihc_hypervisor.a"
)
