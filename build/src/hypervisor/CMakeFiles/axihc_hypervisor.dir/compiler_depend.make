# Empty compiler generated dependencies file for axihc_hypervisor.
# This may be replaced when dependencies are built.
