file(REMOVE_RECURSE
  "libaxihc_soc.a"
)
