# Empty dependencies file for axihc_soc.
# This may be replaced when dependencies are built.
