file(REMOVE_RECURSE
  "CMakeFiles/axihc_soc.dir/soc.cpp.o"
  "CMakeFiles/axihc_soc.dir/soc.cpp.o.d"
  "libaxihc_soc.a"
  "libaxihc_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
