file(REMOVE_RECURSE
  "CMakeFiles/axihc_platform.dir/platform.cpp.o"
  "CMakeFiles/axihc_platform.dir/platform.cpp.o.d"
  "libaxihc_platform.a"
  "libaxihc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
