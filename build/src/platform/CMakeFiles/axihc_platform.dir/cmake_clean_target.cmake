file(REMOVE_RECURSE
  "libaxihc_platform.a"
)
