# Empty dependencies file for axihc_platform.
# This may be replaced when dependencies are built.
