# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("stats")
subdirs("axi")
subdirs("mem")
subdirs("ha")
subdirs("interconnect")
subdirs("hyperconnect")
subdirs("driver")
subdirs("hypervisor")
subdirs("ipxact")
subdirs("resources")
subdirs("analysis")
subdirs("ps")
subdirs("platform")
subdirs("config")
subdirs("soc")
