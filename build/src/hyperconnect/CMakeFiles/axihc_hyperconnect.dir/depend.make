# Empty dependencies file for axihc_hyperconnect.
# This may be replaced when dependencies are built.
