file(REMOVE_RECURSE
  "CMakeFiles/axihc_hyperconnect.dir/efifo.cpp.o"
  "CMakeFiles/axihc_hyperconnect.dir/efifo.cpp.o.d"
  "CMakeFiles/axihc_hyperconnect.dir/exbar.cpp.o"
  "CMakeFiles/axihc_hyperconnect.dir/exbar.cpp.o.d"
  "CMakeFiles/axihc_hyperconnect.dir/hyperconnect.cpp.o"
  "CMakeFiles/axihc_hyperconnect.dir/hyperconnect.cpp.o.d"
  "CMakeFiles/axihc_hyperconnect.dir/register_file.cpp.o"
  "CMakeFiles/axihc_hyperconnect.dir/register_file.cpp.o.d"
  "CMakeFiles/axihc_hyperconnect.dir/transaction_supervisor.cpp.o"
  "CMakeFiles/axihc_hyperconnect.dir/transaction_supervisor.cpp.o.d"
  "libaxihc_hyperconnect.a"
  "libaxihc_hyperconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_hyperconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
