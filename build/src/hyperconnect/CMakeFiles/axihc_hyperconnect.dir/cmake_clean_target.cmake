file(REMOVE_RECURSE
  "libaxihc_hyperconnect.a"
)
