
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyperconnect/efifo.cpp" "src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/efifo.cpp.o" "gcc" "src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/efifo.cpp.o.d"
  "/root/repo/src/hyperconnect/exbar.cpp" "src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/exbar.cpp.o" "gcc" "src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/exbar.cpp.o.d"
  "/root/repo/src/hyperconnect/hyperconnect.cpp" "src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/hyperconnect.cpp.o" "gcc" "src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/hyperconnect.cpp.o.d"
  "/root/repo/src/hyperconnect/register_file.cpp" "src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/register_file.cpp.o" "gcc" "src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/register_file.cpp.o.d"
  "/root/repo/src/hyperconnect/transaction_supervisor.cpp" "src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/transaction_supervisor.cpp.o" "gcc" "src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/transaction_supervisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/axihc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/axihc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/axi/CMakeFiles/axihc_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/axihc_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
