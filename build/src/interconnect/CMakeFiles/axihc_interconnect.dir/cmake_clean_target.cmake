file(REMOVE_RECURSE
  "libaxihc_interconnect.a"
)
