# Empty dependencies file for axihc_interconnect.
# This may be replaced when dependencies are built.
