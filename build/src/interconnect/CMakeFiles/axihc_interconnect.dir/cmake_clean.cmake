file(REMOVE_RECURSE
  "CMakeFiles/axihc_interconnect.dir/interconnect.cpp.o"
  "CMakeFiles/axihc_interconnect.dir/interconnect.cpp.o.d"
  "CMakeFiles/axihc_interconnect.dir/smartconnect.cpp.o"
  "CMakeFiles/axihc_interconnect.dir/smartconnect.cpp.o.d"
  "libaxihc_interconnect.a"
  "libaxihc_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
