file(REMOVE_RECURSE
  "libaxihc_common.a"
)
