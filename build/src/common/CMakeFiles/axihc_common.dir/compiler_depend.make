# Empty compiler generated dependencies file for axihc_common.
# This may be replaced when dependencies are built.
