file(REMOVE_RECURSE
  "CMakeFiles/axihc_common.dir/log.cpp.o"
  "CMakeFiles/axihc_common.dir/log.cpp.o.d"
  "libaxihc_common.a"
  "libaxihc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
