file(REMOVE_RECURSE
  "libaxihc_stats.a"
)
