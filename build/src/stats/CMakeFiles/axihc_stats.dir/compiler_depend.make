# Empty compiler generated dependencies file for axihc_stats.
# This may be replaced when dependencies are built.
