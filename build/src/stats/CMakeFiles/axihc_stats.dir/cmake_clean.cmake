file(REMOVE_RECURSE
  "CMakeFiles/axihc_stats.dir/bandwidth_probe.cpp.o"
  "CMakeFiles/axihc_stats.dir/bandwidth_probe.cpp.o.d"
  "CMakeFiles/axihc_stats.dir/stats.cpp.o"
  "CMakeFiles/axihc_stats.dir/stats.cpp.o.d"
  "CMakeFiles/axihc_stats.dir/table.cpp.o"
  "CMakeFiles/axihc_stats.dir/table.cpp.o.d"
  "libaxihc_stats.a"
  "libaxihc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
