file(REMOVE_RECURSE
  "CMakeFiles/axihc_axi.dir/axi.cpp.o"
  "CMakeFiles/axihc_axi.dir/axi.cpp.o.d"
  "CMakeFiles/axihc_axi.dir/bridge.cpp.o"
  "CMakeFiles/axihc_axi.dir/bridge.cpp.o.d"
  "CMakeFiles/axihc_axi.dir/loopback_slave.cpp.o"
  "CMakeFiles/axihc_axi.dir/loopback_slave.cpp.o.d"
  "CMakeFiles/axihc_axi.dir/monitor.cpp.o"
  "CMakeFiles/axihc_axi.dir/monitor.cpp.o.d"
  "CMakeFiles/axihc_axi.dir/trace_format.cpp.o"
  "CMakeFiles/axihc_axi.dir/trace_format.cpp.o.d"
  "libaxihc_axi.a"
  "libaxihc_axi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_axi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
