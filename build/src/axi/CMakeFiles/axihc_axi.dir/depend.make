# Empty dependencies file for axihc_axi.
# This may be replaced when dependencies are built.
