
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/axi/axi.cpp" "src/axi/CMakeFiles/axihc_axi.dir/axi.cpp.o" "gcc" "src/axi/CMakeFiles/axihc_axi.dir/axi.cpp.o.d"
  "/root/repo/src/axi/bridge.cpp" "src/axi/CMakeFiles/axihc_axi.dir/bridge.cpp.o" "gcc" "src/axi/CMakeFiles/axihc_axi.dir/bridge.cpp.o.d"
  "/root/repo/src/axi/loopback_slave.cpp" "src/axi/CMakeFiles/axihc_axi.dir/loopback_slave.cpp.o" "gcc" "src/axi/CMakeFiles/axihc_axi.dir/loopback_slave.cpp.o.d"
  "/root/repo/src/axi/monitor.cpp" "src/axi/CMakeFiles/axihc_axi.dir/monitor.cpp.o" "gcc" "src/axi/CMakeFiles/axihc_axi.dir/monitor.cpp.o.d"
  "/root/repo/src/axi/trace_format.cpp" "src/axi/CMakeFiles/axihc_axi.dir/trace_format.cpp.o" "gcc" "src/axi/CMakeFiles/axihc_axi.dir/trace_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/axihc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/axihc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
