file(REMOVE_RECURSE
  "libaxihc_axi.a"
)
