file(REMOVE_RECURSE
  "CMakeFiles/axihc_driver.dir/hyperconnect_driver.cpp.o"
  "CMakeFiles/axihc_driver.dir/hyperconnect_driver.cpp.o.d"
  "CMakeFiles/axihc_driver.dir/register_master.cpp.o"
  "CMakeFiles/axihc_driver.dir/register_master.cpp.o.d"
  "libaxihc_driver.a"
  "libaxihc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
