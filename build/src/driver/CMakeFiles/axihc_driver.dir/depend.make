# Empty dependencies file for axihc_driver.
# This may be replaced when dependencies are built.
