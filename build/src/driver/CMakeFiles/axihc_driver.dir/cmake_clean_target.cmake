file(REMOVE_RECURSE
  "libaxihc_driver.a"
)
