# Empty dependencies file for axihc_analysis.
# This may be replaced when dependencies are built.
