file(REMOVE_RECURSE
  "CMakeFiles/axihc_analysis.dir/job_analysis.cpp.o"
  "CMakeFiles/axihc_analysis.dir/job_analysis.cpp.o.d"
  "CMakeFiles/axihc_analysis.dir/wcla.cpp.o"
  "CMakeFiles/axihc_analysis.dir/wcla.cpp.o.d"
  "libaxihc_analysis.a"
  "libaxihc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
