file(REMOVE_RECURSE
  "libaxihc_analysis.a"
)
