# Empty compiler generated dependencies file for axihc_resources.
# This may be replaced when dependencies are built.
