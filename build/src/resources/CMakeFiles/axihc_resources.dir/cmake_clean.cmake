file(REMOVE_RECURSE
  "CMakeFiles/axihc_resources.dir/resources.cpp.o"
  "CMakeFiles/axihc_resources.dir/resources.cpp.o.d"
  "libaxihc_resources.a"
  "libaxihc_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
