file(REMOVE_RECURSE
  "libaxihc_resources.a"
)
