
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/backing_store.cpp" "src/mem/CMakeFiles/axihc_mem.dir/backing_store.cpp.o" "gcc" "src/mem/CMakeFiles/axihc_mem.dir/backing_store.cpp.o.d"
  "/root/repo/src/mem/dual_port_controller.cpp" "src/mem/CMakeFiles/axihc_mem.dir/dual_port_controller.cpp.o" "gcc" "src/mem/CMakeFiles/axihc_mem.dir/dual_port_controller.cpp.o.d"
  "/root/repo/src/mem/memory_controller.cpp" "src/mem/CMakeFiles/axihc_mem.dir/memory_controller.cpp.o" "gcc" "src/mem/CMakeFiles/axihc_mem.dir/memory_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/axihc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/axihc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/axi/CMakeFiles/axihc_axi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
