file(REMOVE_RECURSE
  "CMakeFiles/axihc_mem.dir/backing_store.cpp.o"
  "CMakeFiles/axihc_mem.dir/backing_store.cpp.o.d"
  "CMakeFiles/axihc_mem.dir/dual_port_controller.cpp.o"
  "CMakeFiles/axihc_mem.dir/dual_port_controller.cpp.o.d"
  "CMakeFiles/axihc_mem.dir/memory_controller.cpp.o"
  "CMakeFiles/axihc_mem.dir/memory_controller.cpp.o.d"
  "libaxihc_mem.a"
  "libaxihc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
