# Empty dependencies file for axihc_mem.
# This may be replaced when dependencies are built.
