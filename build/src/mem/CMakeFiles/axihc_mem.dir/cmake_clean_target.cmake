file(REMOVE_RECURSE
  "libaxihc_mem.a"
)
