file(REMOVE_RECURSE
  "CMakeFiles/axihc_ipxact.dir/ipxact.cpp.o"
  "CMakeFiles/axihc_ipxact.dir/ipxact.cpp.o.d"
  "CMakeFiles/axihc_ipxact.dir/xml.cpp.o"
  "CMakeFiles/axihc_ipxact.dir/xml.cpp.o.d"
  "libaxihc_ipxact.a"
  "libaxihc_ipxact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_ipxact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
