# Empty compiler generated dependencies file for axihc_ipxact.
# This may be replaced when dependencies are built.
