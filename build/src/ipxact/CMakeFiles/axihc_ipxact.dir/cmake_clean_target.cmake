file(REMOVE_RECURSE
  "libaxihc_ipxact.a"
)
