# Empty dependencies file for axihc_sim.
# This may be replaced when dependencies are built.
