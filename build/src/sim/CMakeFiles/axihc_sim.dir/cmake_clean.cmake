file(REMOVE_RECURSE
  "CMakeFiles/axihc_sim.dir/simulator.cpp.o"
  "CMakeFiles/axihc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/axihc_sim.dir/trace.cpp.o"
  "CMakeFiles/axihc_sim.dir/trace.cpp.o.d"
  "libaxihc_sim.a"
  "libaxihc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
