file(REMOVE_RECURSE
  "libaxihc_sim.a"
)
