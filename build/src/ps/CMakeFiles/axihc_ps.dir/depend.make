# Empty dependencies file for axihc_ps.
# This may be replaced when dependencies are built.
