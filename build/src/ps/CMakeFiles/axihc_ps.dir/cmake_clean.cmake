file(REMOVE_RECURSE
  "CMakeFiles/axihc_ps.dir/ha_control_slave.cpp.o"
  "CMakeFiles/axihc_ps.dir/ha_control_slave.cpp.o.d"
  "CMakeFiles/axihc_ps.dir/interrupt.cpp.o"
  "CMakeFiles/axihc_ps.dir/interrupt.cpp.o.d"
  "CMakeFiles/axihc_ps.dir/sw_task.cpp.o"
  "CMakeFiles/axihc_ps.dir/sw_task.cpp.o.d"
  "libaxihc_ps.a"
  "libaxihc_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
