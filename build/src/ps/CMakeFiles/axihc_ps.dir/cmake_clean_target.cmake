file(REMOVE_RECURSE
  "libaxihc_ps.a"
)
