
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ps/ha_control_slave.cpp" "src/ps/CMakeFiles/axihc_ps.dir/ha_control_slave.cpp.o" "gcc" "src/ps/CMakeFiles/axihc_ps.dir/ha_control_slave.cpp.o.d"
  "/root/repo/src/ps/interrupt.cpp" "src/ps/CMakeFiles/axihc_ps.dir/interrupt.cpp.o" "gcc" "src/ps/CMakeFiles/axihc_ps.dir/interrupt.cpp.o.d"
  "/root/repo/src/ps/sw_task.cpp" "src/ps/CMakeFiles/axihc_ps.dir/sw_task.cpp.o" "gcc" "src/ps/CMakeFiles/axihc_ps.dir/sw_task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/axihc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/axihc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/axi/CMakeFiles/axihc_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/ha/CMakeFiles/axihc_ha.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/axihc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
