file(REMOVE_RECURSE
  "CMakeFiles/axihc_ha.dir/dma_engine.cpp.o"
  "CMakeFiles/axihc_ha.dir/dma_engine.cpp.o.d"
  "CMakeFiles/axihc_ha.dir/dnn_accelerator.cpp.o"
  "CMakeFiles/axihc_ha.dir/dnn_accelerator.cpp.o.d"
  "CMakeFiles/axihc_ha.dir/master_base.cpp.o"
  "CMakeFiles/axihc_ha.dir/master_base.cpp.o.d"
  "CMakeFiles/axihc_ha.dir/trace_player.cpp.o"
  "CMakeFiles/axihc_ha.dir/trace_player.cpp.o.d"
  "CMakeFiles/axihc_ha.dir/traffic_gen.cpp.o"
  "CMakeFiles/axihc_ha.dir/traffic_gen.cpp.o.d"
  "libaxihc_ha.a"
  "libaxihc_ha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_ha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
