# Empty compiler generated dependencies file for axihc_ha.
# This may be replaced when dependencies are built.
