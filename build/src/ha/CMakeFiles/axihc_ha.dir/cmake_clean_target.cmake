file(REMOVE_RECURSE
  "libaxihc_ha.a"
)
