
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ha/dma_engine.cpp" "src/ha/CMakeFiles/axihc_ha.dir/dma_engine.cpp.o" "gcc" "src/ha/CMakeFiles/axihc_ha.dir/dma_engine.cpp.o.d"
  "/root/repo/src/ha/dnn_accelerator.cpp" "src/ha/CMakeFiles/axihc_ha.dir/dnn_accelerator.cpp.o" "gcc" "src/ha/CMakeFiles/axihc_ha.dir/dnn_accelerator.cpp.o.d"
  "/root/repo/src/ha/master_base.cpp" "src/ha/CMakeFiles/axihc_ha.dir/master_base.cpp.o" "gcc" "src/ha/CMakeFiles/axihc_ha.dir/master_base.cpp.o.d"
  "/root/repo/src/ha/trace_player.cpp" "src/ha/CMakeFiles/axihc_ha.dir/trace_player.cpp.o" "gcc" "src/ha/CMakeFiles/axihc_ha.dir/trace_player.cpp.o.d"
  "/root/repo/src/ha/traffic_gen.cpp" "src/ha/CMakeFiles/axihc_ha.dir/traffic_gen.cpp.o" "gcc" "src/ha/CMakeFiles/axihc_ha.dir/traffic_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/axihc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/axihc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/axi/CMakeFiles/axihc_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/axihc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
