file(REMOVE_RECURSE
  "CMakeFiles/axihc_config.dir/ini.cpp.o"
  "CMakeFiles/axihc_config.dir/ini.cpp.o.d"
  "CMakeFiles/axihc_config.dir/system_builder.cpp.o"
  "CMakeFiles/axihc_config.dir/system_builder.cpp.o.d"
  "libaxihc_config.a"
  "libaxihc_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
