file(REMOVE_RECURSE
  "libaxihc_config.a"
)
