# Empty dependencies file for axihc_config.
# This may be replaced when dependencies are built.
