file(REMOVE_RECURSE
  "CMakeFiles/test_hypervisor.dir/test_hypervisor.cpp.o"
  "CMakeFiles/test_hypervisor.dir/test_hypervisor.cpp.o.d"
  "test_hypervisor"
  "test_hypervisor.pdb"
  "test_hypervisor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
