file(REMOVE_RECURSE
  "CMakeFiles/test_equalization.dir/test_equalization.cpp.o"
  "CMakeFiles/test_equalization.dir/test_equalization.cpp.o.d"
  "test_equalization"
  "test_equalization.pdb"
  "test_equalization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
