# Empty compiler generated dependencies file for test_equalization.
# This may be replaced when dependencies are built.
