# Empty dependencies file for test_smartconnect.
# This may be replaced when dependencies are built.
