file(REMOVE_RECURSE
  "CMakeFiles/test_smartconnect.dir/test_smartconnect.cpp.o"
  "CMakeFiles/test_smartconnect.dir/test_smartconnect.cpp.o.d"
  "test_smartconnect"
  "test_smartconnect.pdb"
  "test_smartconnect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smartconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
