file(REMOVE_RECURSE
  "CMakeFiles/test_ipxact.dir/test_ipxact.cpp.o"
  "CMakeFiles/test_ipxact.dir/test_ipxact.cpp.o.d"
  "test_ipxact"
  "test_ipxact.pdb"
  "test_ipxact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipxact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
