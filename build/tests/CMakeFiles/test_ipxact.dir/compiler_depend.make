# Empty compiler generated dependencies file for test_ipxact.
# This may be replaced when dependencies are built.
