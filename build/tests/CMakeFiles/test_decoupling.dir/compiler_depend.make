# Empty compiler generated dependencies file for test_decoupling.
# This may be replaced when dependencies are built.
