file(REMOVE_RECURSE
  "CMakeFiles/test_decoupling.dir/test_decoupling.cpp.o"
  "CMakeFiles/test_decoupling.dir/test_decoupling.cpp.o.d"
  "test_decoupling"
  "test_decoupling.pdb"
  "test_decoupling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
