# Empty dependencies file for test_master_models.
# This may be replaced when dependencies are built.
