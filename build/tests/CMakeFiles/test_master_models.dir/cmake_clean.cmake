file(REMOVE_RECURSE
  "CMakeFiles/test_master_models.dir/test_master_models.cpp.o"
  "CMakeFiles/test_master_models.dir/test_master_models.cpp.o.d"
  "test_master_models"
  "test_master_models.pdb"
  "test_master_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_master_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
