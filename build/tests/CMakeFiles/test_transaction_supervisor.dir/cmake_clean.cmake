file(REMOVE_RECURSE
  "CMakeFiles/test_transaction_supervisor.dir/test_transaction_supervisor.cpp.o"
  "CMakeFiles/test_transaction_supervisor.dir/test_transaction_supervisor.cpp.o.d"
  "test_transaction_supervisor"
  "test_transaction_supervisor.pdb"
  "test_transaction_supervisor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transaction_supervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
