# Empty dependencies file for test_transaction_supervisor.
# This may be replaced when dependencies are built.
