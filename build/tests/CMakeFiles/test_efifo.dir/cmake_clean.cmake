file(REMOVE_RECURSE
  "CMakeFiles/test_efifo.dir/test_efifo.cpp.o"
  "CMakeFiles/test_efifo.dir/test_efifo.cpp.o.d"
  "test_efifo"
  "test_efifo.pdb"
  "test_efifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_efifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
