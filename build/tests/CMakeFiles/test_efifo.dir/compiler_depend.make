# Empty compiler generated dependencies file for test_efifo.
# This may be replaced when dependencies are built.
