file(REMOVE_RECURSE
  "CMakeFiles/test_wcla.dir/test_wcla.cpp.o"
  "CMakeFiles/test_wcla.dir/test_wcla.cpp.o.d"
  "test_wcla"
  "test_wcla.pdb"
  "test_wcla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wcla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
