# Empty dependencies file for test_wcla.
# This may be replaced when dependencies are built.
