file(REMOVE_RECURSE
  "CMakeFiles/test_axi3.dir/test_axi3.cpp.o"
  "CMakeFiles/test_axi3.dir/test_axi3.cpp.o.d"
  "test_axi3"
  "test_axi3.pdb"
  "test_axi3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_axi3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
