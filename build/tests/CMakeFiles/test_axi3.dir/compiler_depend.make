# Empty compiler generated dependencies file for test_axi3.
# This may be replaced when dependencies are built.
