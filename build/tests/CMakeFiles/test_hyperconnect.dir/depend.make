# Empty dependencies file for test_hyperconnect.
# This may be replaced when dependencies are built.
