file(REMOVE_RECURSE
  "CMakeFiles/test_hyperconnect.dir/test_hyperconnect.cpp.o"
  "CMakeFiles/test_hyperconnect.dir/test_hyperconnect.cpp.o.d"
  "test_hyperconnect"
  "test_hyperconnect.pdb"
  "test_hyperconnect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyperconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
