file(REMOVE_RECURSE
  "CMakeFiles/test_exbar.dir/test_exbar.cpp.o"
  "CMakeFiles/test_exbar.dir/test_exbar.cpp.o.d"
  "test_exbar"
  "test_exbar.pdb"
  "test_exbar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
