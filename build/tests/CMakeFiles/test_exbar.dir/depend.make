# Empty dependencies file for test_exbar.
# This may be replaced when dependencies are built.
