# Empty dependencies file for test_feature_matrix.
# This may be replaced when dependencies are built.
