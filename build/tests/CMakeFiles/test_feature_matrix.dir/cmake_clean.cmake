file(REMOVE_RECURSE
  "CMakeFiles/test_feature_matrix.dir/test_feature_matrix.cpp.o"
  "CMakeFiles/test_feature_matrix.dir/test_feature_matrix.cpp.o.d"
  "test_feature_matrix"
  "test_feature_matrix.pdb"
  "test_feature_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
