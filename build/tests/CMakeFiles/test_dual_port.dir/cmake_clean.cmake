file(REMOVE_RECURSE
  "CMakeFiles/test_dual_port.dir/test_dual_port.cpp.o"
  "CMakeFiles/test_dual_port.dir/test_dual_port.cpp.o.d"
  "test_dual_port"
  "test_dual_port.pdb"
  "test_dual_port[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
