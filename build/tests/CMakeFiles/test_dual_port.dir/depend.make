# Empty dependencies file for test_dual_port.
# This may be replaced when dependencies are built.
