file(REMOVE_RECURSE
  "CMakeFiles/test_job_analysis.dir/test_job_analysis.cpp.o"
  "CMakeFiles/test_job_analysis.dir/test_job_analysis.cpp.o.d"
  "test_job_analysis"
  "test_job_analysis.pdb"
  "test_job_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
