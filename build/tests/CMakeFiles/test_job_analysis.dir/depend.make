# Empty dependencies file for test_job_analysis.
# This may be replaced when dependencies are built.
