file(REMOVE_RECURSE
  "CMakeFiles/axihc_cli.dir/axihc.cpp.o"
  "CMakeFiles/axihc_cli.dir/axihc.cpp.o.d"
  "axihc"
  "axihc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axihc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
