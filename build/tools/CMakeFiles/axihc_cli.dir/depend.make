# Empty dependencies file for axihc_cli.
# This may be replaced when dependencies are built.
