file(REMOVE_RECURSE
  "CMakeFiles/ablation_cpu_protection.dir/ablation_cpu_protection.cpp.o"
  "CMakeFiles/ablation_cpu_protection.dir/ablation_cpu_protection.cpp.o.d"
  "ablation_cpu_protection"
  "ablation_cpu_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
