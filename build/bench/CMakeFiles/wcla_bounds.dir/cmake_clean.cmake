file(REMOVE_RECURSE
  "CMakeFiles/wcla_bounds.dir/wcla_bounds.cpp.o"
  "CMakeFiles/wcla_bounds.dir/wcla_bounds.cpp.o.d"
  "wcla_bounds"
  "wcla_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcla_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
