# Empty dependencies file for wcla_bounds.
# This may be replaced when dependencies are built.
