# Empty dependencies file for fig5_contention.
# This may be replaced when dependencies are built.
