file(REMOVE_RECURSE
  "CMakeFiles/fig5_contention.dir/fig5_contention.cpp.o"
  "CMakeFiles/fig5_contention.dir/fig5_contention.cpp.o.d"
  "fig5_contention"
  "fig5_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
