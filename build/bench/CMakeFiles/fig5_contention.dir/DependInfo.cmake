
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_contention.cpp" "bench/CMakeFiles/fig5_contention.dir/fig5_contention.cpp.o" "gcc" "bench/CMakeFiles/fig5_contention.dir/fig5_contention.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ps/CMakeFiles/axihc_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/axihc_config.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/axihc_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/axihc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/ipxact/CMakeFiles/axihc_ipxact.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/axihc_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/axihc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/axihc_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/axihc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/axihc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ha/CMakeFiles/axihc_ha.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/axihc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hyperconnect/CMakeFiles/axihc_hyperconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/axihc_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/axi/CMakeFiles/axihc_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/axihc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/axihc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
