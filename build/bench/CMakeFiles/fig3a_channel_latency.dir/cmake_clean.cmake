file(REMOVE_RECURSE
  "CMakeFiles/fig3a_channel_latency.dir/fig3a_channel_latency.cpp.o"
  "CMakeFiles/fig3a_channel_latency.dir/fig3a_channel_latency.cpp.o.d"
  "fig3a_channel_latency"
  "fig3a_channel_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_channel_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
