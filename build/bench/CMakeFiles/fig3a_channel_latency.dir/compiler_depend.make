# Empty compiler generated dependencies file for fig3a_channel_latency.
# This may be replaced when dependencies are built.
