file(REMOVE_RECURSE
  "CMakeFiles/ablation_equalization.dir/ablation_equalization.cpp.o"
  "CMakeFiles/ablation_equalization.dir/ablation_equalization.cpp.o.d"
  "ablation_equalization"
  "ablation_equalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_equalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
