# Empty dependencies file for ablation_equalization.
# This may be replaced when dependencies are built.
