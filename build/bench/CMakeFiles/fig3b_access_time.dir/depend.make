# Empty dependencies file for fig3b_access_time.
# This may be replaced when dependencies are built.
