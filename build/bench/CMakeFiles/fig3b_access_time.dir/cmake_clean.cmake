file(REMOVE_RECURSE
  "CMakeFiles/fig3b_access_time.dir/fig3b_access_time.cpp.o"
  "CMakeFiles/fig3b_access_time.dir/fig3b_access_time.cpp.o.d"
  "fig3b_access_time"
  "fig3b_access_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_access_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
