file(REMOVE_RECURSE
  "CMakeFiles/fig4_isolation.dir/fig4_isolation.cpp.o"
  "CMakeFiles/fig4_isolation.dir/fig4_isolation.cpp.o.d"
  "fig4_isolation"
  "fig4_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
