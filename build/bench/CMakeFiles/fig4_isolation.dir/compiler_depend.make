# Empty compiler generated dependencies file for fig4_isolation.
# This may be replaced when dependencies are built.
