# Empty dependencies file for ablation_ooo.
# This may be replaced when dependencies are built.
