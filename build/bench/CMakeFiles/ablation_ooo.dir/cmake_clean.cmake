file(REMOVE_RECURSE
  "CMakeFiles/ablation_ooo.dir/ablation_ooo.cpp.o"
  "CMakeFiles/ablation_ooo.dir/ablation_ooo.cpp.o.d"
  "ablation_ooo"
  "ablation_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
