# Empty compiler generated dependencies file for ablation_reservation.
# This may be replaced when dependencies are built.
