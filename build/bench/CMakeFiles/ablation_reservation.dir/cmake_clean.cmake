file(REMOVE_RECURSE
  "CMakeFiles/ablation_reservation.dir/ablation_reservation.cpp.o"
  "CMakeFiles/ablation_reservation.dir/ablation_reservation.cpp.o.d"
  "ablation_reservation"
  "ablation_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
