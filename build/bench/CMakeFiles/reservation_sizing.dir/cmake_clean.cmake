file(REMOVE_RECURSE
  "CMakeFiles/reservation_sizing.dir/reservation_sizing.cpp.o"
  "CMakeFiles/reservation_sizing.dir/reservation_sizing.cpp.o.d"
  "reservation_sizing"
  "reservation_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservation_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
