# Empty dependencies file for reservation_sizing.
# This may be replaced when dependencies are built.
