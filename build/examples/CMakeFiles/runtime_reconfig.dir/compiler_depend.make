# Empty compiler generated dependencies file for runtime_reconfig.
# This may be replaced when dependencies are built.
