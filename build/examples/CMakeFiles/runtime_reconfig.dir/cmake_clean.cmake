file(REMOVE_RECURSE
  "CMakeFiles/runtime_reconfig.dir/runtime_reconfig.cpp.o"
  "CMakeFiles/runtime_reconfig.dir/runtime_reconfig.cpp.o.d"
  "runtime_reconfig"
  "runtime_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
