# Empty compiler generated dependencies file for sw_task_offload.
# This may be replaced when dependencies are built.
