file(REMOVE_RECURSE
  "CMakeFiles/sw_task_offload.dir/sw_task_offload.cpp.o"
  "CMakeFiles/sw_task_offload.dir/sw_task_offload.cpp.o.d"
  "sw_task_offload"
  "sw_task_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_task_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
