// Ablation: burst equalization [11] on/off.
//
// A bandwidth stealer issuing maximal 256-beat bursts against a victim with
// 4-beat bursts. With equalization off (nominal burst = 0) the HyperConnect
// degenerates to transaction-granular round-robin and the stealer wins;
// with equalization on, arbitration units are uniform and the victim's
// share is restored. Sweeps the nominal burst size.
#include <iostream>

#include "bench_common.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "interconnect/smartconnect.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

struct Shares {
  double victim = 0;
  double stealer = 0;
};

template <typename MakeIcn>
Shares run_share(MakeIcn make_icn) {
  Simulator sim;
  BackingStore store;
  auto icn = make_icn();
  MemoryController mem("ddr", icn->master_link(), store,
                       bench::bench_mem_cfg());
  icn->register_with(sim);
  sim.add(mem);

  TrafficConfig small;
  small.direction = TrafficDirection::kRead;
  small.burst_beats = 4;
  small.max_outstanding = 8;
  small.base = 0x4000'0000;
  TrafficGenerator victim("victim", icn->port_link(0), small);
  TrafficGenerator stealer("stealer", icn->port_link(1),
                           TrafficGenerator::bandwidth_stealer(0x6000'0000));
  sim.add(victim);
  sim.add(stealer);
  sim.reset();
  sim.run(300000);

  Shares s;
  const double v = static_cast<double>(victim.stats().bytes_read);
  const double st = static_cast<double>(stealer.stats().bytes_read);
  s.victim = v / (v + st);
  s.stealer = st / (v + st);
  return s;
}

void run() {
  std::cout << "==== Ablation: burst equalization (victim 4-beat vs "
               "stealer 256-beat) ====\n\n";
  Table t({"configuration", "victim share", "stealer share"});

  const Shares sc = run_share(
      [] { return std::make_unique<SmartConnect>("sc", 2,
                                                 SmartConnectConfig{}); });
  t.add_row({"SmartConnect (baseline)", Table::num(100 * sc.victim, 1) + "%",
             Table::num(100 * sc.stealer, 1) + "%"});

  for (const BeatCount nominal : {0u, 64u, 16u, 4u}) {
    const Shares s = run_share([nominal] {
      HyperConnectConfig cfg;
      cfg.num_ports = 2;
      cfg.nominal_burst = nominal;
      cfg.max_outstanding = 8;
      return std::make_unique<HyperConnect>("hc", cfg);
    });
    const std::string label =
        nominal == 0 ? "HyperConnect, equalization OFF"
                     : "HyperConnect, nominal burst " + std::to_string(nominal);
    t.add_row({label, Table::num(100 * s.victim, 1) + "%",
               Table::num(100 * s.stealer, 1) + "%"});
  }
  t.print_markdown(std::cout);
  std::cout << "\nExpected shape: without equalization the 256-beat stealer "
               "monopolizes the bus\n(as under SmartConnect); equalizing to "
               "a small nominal burst restores the\nvictim toward its "
               "request ratio (4/(4+nominal) of the bytes).\n";
}

}  // namespace
}  // namespace axihc

int main() {
  axihc::run();
  return 0;
}
