// Ablation: eFIFO depth vs throughput/latency vs resource cost.
//
// The eFIFO depths are the HyperConnect's main structural knob. Because the
// eFIFO queues are proactive (always ready) and every stage moves one beat
// per cycle, the pipeline sustains full rate without any buffering slack —
// so the throughput column is expected to be FLAT across depths. That
// insensitivity is the point: it supports the paper's slim-architecture
// claim (no deep buffers needed for performance), while the resource model
// shows what deeper queues would cost.
#include <iostream>

#include "bench_common.hpp"
#include "ha/dma_engine.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "resources/resources.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

struct DepthResult {
  double mbytes_per_s = 0;
  Cycle read_latency_max = 0;
  ResourceUsage usage;
};

DepthResult run_depth(std::size_t data_depth) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.port_link_cfg.r_depth = data_depth;
  cfg.port_link_cfg.w_depth = data_depth;
  cfg.master_link_cfg.r_depth = data_depth;
  cfg.master_link_cfg.w_depth = data_depth;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store,
                       bench::bench_mem_cfg());
  hc.register_with(sim);
  sim.add(mem);

  DmaConfig dcfg;
  dcfg.mode = DmaMode::kRead;
  dcfg.bytes_per_job = 1u << 20;
  dcfg.burst_beats = 16;
  dcfg.max_outstanding = 8;
  DmaEngine dma("dma", hc.port_link(0), dcfg);
  sim.add(dma);
  sim.reset();
  sim.run(400000);

  DepthResult res;
  res.mbytes_per_s = bench::rate_meter().bytes_per_second(
                         dma.stats().bytes_read, sim.now()) /
                     1e6;
  res.read_latency_max = dma.stats().read_latency.count() > 0
                             ? dma.stats().read_latency.max()
                             : 0;
  res.usage = estimate_hyperconnect(cfg);
  return res;
}

void run() {
  std::cout << "==== Ablation: eFIFO data-queue depth ====\n\n";
  Table t({"R/W depth", "read bandwidth (MB/s)", "max txn latency (cycles)",
           "est. LUT", "est. FF"});
  for (const std::size_t depth : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const DepthResult r = run_depth(depth);
    t.add_row({std::to_string(depth), Table::num(r.mbytes_per_s, 1),
               std::to_string(r.read_latency_max),
               std::to_string(r.usage.lut), std::to_string(r.usage.ff)});
  }
  t.print_markdown(std::cout);
  std::cout << "\nExpected shape: bandwidth and latency are INSENSITIVE to "
               "depth — the matched\n1-beat/cycle pipeline never needs the "
               "slack — while LUT cost grows linearly with\ndepth. Slim "
               "queues are sufficient, which is exactly the architecture's "
               "low-\nresource argument (Table I).\n";
}

}  // namespace
}  // namespace axihc

int main() {
  axihc::run();
  return 0;
}
