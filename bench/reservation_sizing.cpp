// Reservation sizing: the job-level analysis used the way a system
// integrator would — "what budget does the DNN need to meet a frame
// deadline, no matter what the other HAs do?" — and each sized budget
// validated against an adversarial simulation.
//
// This is the analytical counterpart of Fig. 5: the paper finds workable
// X/Y splits by measurement; the analysis derives them with a guarantee.
#include <iostream>

#include "analysis/job_analysis.hpp"
#include "bench_common.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

constexpr Cycle kPeriod = 2000;

/// Simulated frame time for the given budget split under a flooding
/// adversary.
Cycle simulate_frame(const DnnConfig& dnn_cfg, std::uint32_t dnn_budget,
                     std::uint32_t dma_budget) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  cfg.reservation_period = kPeriod;
  cfg.initial_budgets = {dnn_budget, dma_budget};
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store,
                       bench::bench_mem_cfg());
  hc.register_with(sim);
  sim.add(mem);

  DnnConfig one_frame = dnn_cfg;
  one_frame.max_frames = 1;
  DnnAccelerator dnn("dnn", hc.port_link(0), one_frame);
  TrafficConfig flood;
  flood.direction = TrafficDirection::kRead;
  flood.burst_beats = 16;
  flood.base = 0x6000'0000;
  TrafficGenerator adversary("flood", hc.port_link(1), flood);
  sim.add(dnn);
  sim.add(adversary);
  sim.reset();
  if (!sim.run_until([&] { return dnn.finished(); }, 1'000'000'000ull)) {
    return 0;
  }
  return dnn.frame_completion_cycles()[0];
}

void run(std::uint64_t scale) {
  bench::print_header("Reservation sizing from the job-level analysis",
                      scale);
  const DnnConfig dnn_cfg = bench::scaled_googlenet(scale, 1);
  const JobProfile job = profile_of(dnn_cfg);

  const MemoryControllerConfig mc = bench::bench_mem_cfg();
  AnalysisPlatform p;
  p.mem_latency = mc.row_miss_latency;
  p.turnaround = mc.turnaround;
  HcAnalysisConfig a;
  a.num_ports = 2;
  a.nominal_burst = 16;
  a.reservation_period = kPeriod;
  a.budgets = {0, 4};  // adversary floor: 4 txns/window
  a.competitor_backlog = 4;

  const RateMeter meter = bench::rate_meter();
  std::cout << "GoogleNet frame (1/" << scale << " scale): "
            << job.total_bytes() / 1024 << " KB of bus traffic.\n\n";

  Table t({"frame deadline (ms)", "min budget (txns/2000cyc)",
           "analytical frame bound (ms)", "simulated frame (ms)",
           "deadline met"});
  for (const double deadline_ms : {120.0, 90.0, 70.0, 60.0, 55.0}) {
    const auto deadline =
        static_cast<Cycle>(deadline_ms / 1000.0 * meter.clock_hz());
    const std::uint32_t budget =
        min_budget_for_deadline(a, p, 0, job, deadline);
    if (budget == 0) {
      t.add_row({Table::num(deadline_ms, 0), "infeasible", "-", "-", "-"});
      continue;
    }
    HcAnalysisConfig sized = a;
    sized.budgets[0] = budget;
    const Cycle bound = job_wcrt(sized, p, 0, job);
    const Cycle simulated = simulate_frame(dnn_cfg, budget, 4);
    t.add_row({Table::num(deadline_ms, 0), std::to_string(budget),
               Table::num(meter.to_us(bound) / 1000.0, 1),
               Table::num(meter.to_us(simulated) / 1000.0, 1),
               simulated != 0 && simulated <= deadline ? "yes" : "NO"});
  }
  t.print_markdown(std::cout);
  std::cout << "\nExpected shape: tighter deadlines demand larger budgets; "
               "every sized budget's\nsimulated frame meets its deadline "
               "(the bound is sound), with slack (the bound\nis "
               "conservative).\n";
}

}  // namespace
}  // namespace axihc

int main(int argc, char** argv) {
  axihc::run(axihc::bench::parse_scale(argc, argv));
  return 0;
}
