// Analytical worst-case bounds vs observed worst cases — the analysis the
// paper declares possible ("the proposed architecture makes AXI
// HyperConnect prone to worst-case timing analysis", §V-B) carried out and
// validated against the cycle-accurate model.
#include <iostream>
#include <memory>

#include "analysis/wcla.hpp"
#include "bench_common.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "interconnect/smartconnect.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

Cycle observe(std::unique_ptr<Interconnect> icn, BeatCount victim_beats,
              BeatCount adversary_beats) {
  Simulator sim;
  BackingStore store;
  MemoryController mem("ddr", icn->master_link(), store,
                       bench::bench_mem_cfg());
  icn->register_with(sim);
  sim.add(mem);

  TrafficConfig vcfg;
  vcfg.direction = TrafficDirection::kRead;
  vcfg.burst_beats = victim_beats;
  vcfg.gap_cycles = 97;
  vcfg.max_outstanding = 1;
  vcfg.base = 0x4000'0000;
  TrafficGenerator victim("victim", icn->port_link(0), vcfg);
  sim.add(victim);

  std::vector<std::unique_ptr<TrafficGenerator>> advs;
  for (PortIndex p = 1; p < icn->num_ports(); ++p) {
    TrafficConfig a;
    a.direction = TrafficDirection::kRead;
    a.burst_beats = adversary_beats;
    a.max_outstanding = 4;
    a.base = 0x6000'0000 + (static_cast<Addr>(p) << 24);
    advs.push_back(std::make_unique<TrafficGenerator>(
        "adv" + std::to_string(p), icn->port_link(p), a));
    sim.add(*advs.back());
  }
  sim.reset();
  sim.run(400000);
  return victim.stats().read_latency.count() ? victim.stats().read_latency.max()
                                             : 0;
}

void run() {
  std::cout << "==== Worst-case latency analysis vs observation ====\n\n";
  const MemoryControllerConfig mc = bench::bench_mem_cfg();
  AnalysisPlatform hc_p;
  hc_p.mem_latency = mc.row_miss_latency;
  hc_p.turnaround = mc.turnaround;
  AnalysisPlatform sc_p = hc_p;
  sc_p.ar_latency = 12;
  sc_p.r_latency = 11;

  Table t({"scenario", "victim read", "observed worst (cyc)",
           "analytical bound (cyc)", "bound/observed"});

  struct Case {
    std::uint32_t ports;
    BeatCount victim;
    BeatCount adversary;
  };
  for (const Case c : {Case{2, 16, 16}, Case{2, 16, 256}, Case{4, 16, 16},
                       Case{2, 64, 16}}) {
    HyperConnectConfig cfg;
    cfg.num_ports = c.ports;
    cfg.nominal_burst = 16;
    cfg.max_outstanding = 4;
    const Cycle obs = observe(std::make_unique<HyperConnect>("hc", cfg),
                              c.victim, c.adversary);
    HcAnalysisConfig a;
    a.num_ports = c.ports;
    a.nominal_burst = 16;
    a.competitor_backlog = 4;
    const Cycle bound = wcrt_read(a, hc_p, 0, c.victim);
    t.add_row({"HC N=" + std::to_string(c.ports) + " adv " +
                   std::to_string(c.adversary) + "-beat",
               std::to_string(c.victim) + " beats", std::to_string(obs),
               std::to_string(bound),
               Table::num(static_cast<double>(bound) /
                              static_cast<double>(obs),
                          2)});
  }

  // SmartConnect: the bound must cover unequalized 256-beat interference at
  // granularity up to 4 — an order of magnitude worse.
  {
    SmartConnectConfig cfg;
    cfg.grant_granularity = 4;
    const Cycle obs = observe(std::make_unique<SmartConnect>("sc", 2, cfg),
                              16, 256);
    const Cycle bound = smartconnect_wcrt_read(sc_p, 2, 4, 256, 16);
    t.add_row({"SC g=4 adv 256-beat", "16 beats", std::to_string(obs),
               std::to_string(bound),
               Table::num(static_cast<double>(bound) /
                              static_cast<double>(obs),
                          2)});
  }
  t.print_markdown(std::cout);
  std::cout << "\nAll bounds dominate the observed worst case (soundness); "
               "the HyperConnect's\nbound is an order of magnitude below "
               "the SmartConnect's because equalization\ncaps competitor "
               "units and the EXBAR fixes the round-robin granularity.\n";
}

}  // namespace
}  // namespace axihc

int main() {
  axihc::run();
  return 0;
}
