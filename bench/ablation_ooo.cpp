// Ablation: out-of-order completion (the paper's future work, §V-A).
//
// Today's Zynq platforms serve memory transactions in order, so the
// HyperConnect ships without out-of-order support. This bench quantifies
// what the extension buys on a future platform: an FR-FCFS controller
// (row hits may overtake misses across ports) behind the ID-extension
// HyperConnect, for a row-friendly streamer sharing the bus with a
// row-hostile scatter reader.
#include <iostream>

#include "bench_common.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

struct OooResult {
  double total_mb_s = 0;
  double stream_mb_s = 0;
  double scatter_mb_s = 0;
  std::uint64_t reordered = 0;
  std::uint64_t row_hit_pct = 0;
};

OooResult run_mode(bool out_of_order) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.out_of_order = out_of_order;
  HyperConnect hc("hc", cfg);
  MemoryControllerConfig mc = bench::bench_mem_cfg();
  if (out_of_order) {
    mc.scheduling = MemScheduling::kFrFcfs;
    mc.id_order_mask = 0xFFFF0000;
  }
  MemoryController mem("ddr", hc.master_link(), store, mc);
  hc.register_with(sim);
  sim.add(mem);

  // Streamer: sequential 16-beat reads inside a small region (row hits).
  TrafficConfig stream;
  stream.direction = TrafficDirection::kRead;
  stream.burst_beats = 16;
  stream.base = 0x6000'0000;
  stream.region_bytes = 4096;
  stream.tolerate_out_of_order = true;
  TrafficGenerator streamer("stream", hc.port_link(0), stream);

  // Scatterer: 4-beat reads sweeping a huge region (row misses).
  TrafficConfig scatter;
  scatter.direction = TrafficDirection::kRead;
  scatter.burst_beats = 4;
  scatter.base = 0x4000'0000;
  scatter.region_bytes = 64ull << 20;
  scatter.tolerate_out_of_order = true;
  TrafficGenerator scatterer("scatter", hc.port_link(1), scatter);

  sim.add(streamer);
  sim.add(scatterer);
  sim.reset();
  sim.run(400000);

  OooResult r;
  const RateMeter meter = bench::rate_meter();
  r.stream_mb_s =
      meter.bytes_per_second(streamer.stats().bytes_read, sim.now()) / 1e6;
  r.scatter_mb_s =
      meter.bytes_per_second(scatterer.stats().bytes_read, sim.now()) / 1e6;
  r.total_mb_s = r.stream_mb_s + r.scatter_mb_s;
  r.reordered = mem.reordered();
  const auto hits = mem.row_hits();
  const auto total = mem.row_hits() + mem.row_misses();
  r.row_hit_pct = total ? 100 * hits / total : 0;
  return r;
}

void run() {
  std::cout << "==== Ablation: out-of-order completion (future-work "
               "extension) ====\n\n";
  Table t({"configuration", "total BW (MB/s)", "streamer (MB/s)",
           "scatterer (MB/s)", "row-hit rate", "reordered txns"});
  const OooResult in_order = run_mode(false);
  const OooResult ooo = run_mode(true);
  t.add_row({"in-order (today's platforms)", Table::num(in_order.total_mb_s, 1),
             Table::num(in_order.stream_mb_s, 1),
             Table::num(in_order.scatter_mb_s, 1),
             std::to_string(in_order.row_hit_pct) + "%",
             std::to_string(in_order.reordered)});
  t.add_row({"FR-FCFS + ID-extension HC", Table::num(ooo.total_mb_s, 1),
             Table::num(ooo.stream_mb_s, 1), Table::num(ooo.scatter_mb_s, 1),
             std::to_string(ooo.row_hit_pct) + "%",
             std::to_string(ooo.reordered)});
  t.print_markdown(std::cout);
  std::cout << "\nExpected shape: with FR-FCFS the streamer's row hits stop "
               "waiting behind the\nscatterer's row misses — total bandwidth "
               "and row-hit rate rise, per-port\nprotocol order is "
               "preserved (see tests/test_ooo.cpp).\n";
}

}  // namespace
}  // namespace axihc

int main() {
  axihc::run();
  return 0;
}
