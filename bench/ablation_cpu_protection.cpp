// Ablation: protecting PS software from FPGA memory traffic (§V-A).
//
// The paper motivates bandwidth reservation not only for HA-to-HA isolation
// but to control "the overall memory traffic coming from the FPGA fabric
// directed to the shared memory subsystem (which can delay the execution of
// software running on the processors of the PS)". Here the full path is
// modelled: a CPU-like master on the DDR controller's PS port while two
// greedy DMAs flood through the HyperConnect on the FPGA port. Sweeping the
// TOTAL FPGA budget shows CPU memory latency recover — even with the DDRC's
// PS-priority disabled (worst case for the CPU).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "ha/dma_engine.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/dual_port_controller.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

struct CpuResult {
  double cpu_mean_latency = 0;
  Cycle cpu_max_latency = 0;
  double fpga_mb_s = 0;
};

/// `fpga_budget_total` = transactions per 2000-cycle window across both
/// DMAs (0 = reservation off).
CpuResult run_case(std::uint32_t fpga_budget_total, bool ps_priority) {
  Simulator sim;
  BackingStore store;

  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.nominal_burst = 16;
  if (fpga_budget_total != 0) {
    cfg.reservation_period = 2000;
    cfg.initial_budgets = {fpga_budget_total / 2, fpga_budget_total / 2};
  }
  HyperConnect hc("hc", cfg);

  AxiLink cpu_link("cpu");
  cpu_link.register_with(sim);
  DualPortConfig dpc;
  dpc.row_hit_latency = 10;
  dpc.row_miss_latency = 24;
  dpc.ps_priority = ps_priority;
  DualPortMemoryController ddr("ddr", cpu_link, hc.master_link(), store, dpc);
  hc.register_with(sim);
  sim.add(ddr);

  // CPU-like master: sparse single-beat reads (cache-miss pattern).
  TrafficConfig cpu_cfg;
  cpu_cfg.direction = TrafficDirection::kRead;
  cpu_cfg.burst_beats = 8;  // one 64-byte cache line
  cpu_cfg.gap_cycles = 150;
  cpu_cfg.max_outstanding = 1;
  cpu_cfg.base = 0x0100'0000;
  TrafficGenerator cpu("cpu", cpu_link, cpu_cfg);
  sim.add(cpu);

  // Two greedy DMAs on the FPGA side.
  DmaConfig d;
  d.mode = DmaMode::kReadWrite;
  d.bytes_per_job = 1u << 20;
  DmaEngine dma0("dma0", hc.port_link(0), d);
  d.read_base = 0x5000'0000;
  d.write_base = 0x6000'0000;
  DmaEngine dma1("dma1", hc.port_link(1), d);
  sim.add(dma0);
  sim.add(dma1);
  sim.reset();
  sim.run(300000);

  CpuResult r;
  if (cpu.stats().read_latency.count() > 0) {
    r.cpu_mean_latency = cpu.stats().read_latency.mean();
    r.cpu_max_latency = cpu.stats().read_latency.max();
  }
  r.fpga_mb_s = bench::rate_meter().bytes_per_second(
                    dma0.stats().bytes_read + dma0.stats().bytes_written +
                        dma1.stats().bytes_read + dma1.stats().bytes_written,
                    sim.now()) /
                1e6;
  return r;
}

void run() {
  std::cout << "==== Ablation: protecting PS software from FPGA traffic "
               "====\n\n";
  for (const bool prio : {false, true}) {
    std::cout << (prio ? "DDRC with PS-priority port weighting:\n\n"
                       : "DDRC with fair (FIFO) port arbitration — worst "
                         "case for the CPU:\n\n");
    Table t({"FPGA budget (txn/2000cyc)", "CPU mean read lat (cyc)",
             "CPU max read lat (cyc)", "FPGA traffic (MB/s)"});
    const CpuResult idle = run_case(2, prio);  // near-silent FPGA
    t.add_row({"2 (near-idle FPGA)", Table::num(idle.cpu_mean_latency, 1),
               std::to_string(idle.cpu_max_latency),
               Table::num(idle.fpga_mb_s, 1)});
    for (const std::uint32_t budget : {16u, 32u, 48u, 0u}) {
      const CpuResult r = run_case(budget, prio);
      t.add_row({budget == 0 ? "unlimited (reservation off)"
                             : std::to_string(budget),
                 Table::num(r.cpu_mean_latency, 1),
                 std::to_string(r.cpu_max_latency),
                 Table::num(r.fpga_mb_s, 1)});
    }
    t.print_markdown(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: without PS priority, unlimited FPGA traffic "
               "inflates CPU memory\nlatency several-fold; tightening the "
               "FPGA budget walks it back toward the idle\nbaseline — the "
               "paper's \"control the overall memory traffic coming from "
               "the\nFPGA\" use case. PS-priority hardware helps, but the "
               "budget still controls the\nbandwidth the FPGA can take.\n";
}

}  // namespace
}  // namespace axihc

int main() {
  axihc::run();
  return 0;
}
