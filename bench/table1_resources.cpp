// Table I: resource consumption of the 2-input AXI HyperConnect vs the AXI
// SmartConnect on the ZCU102 (XCZU9EG), via the calibrated structural
// estimation model (we have no Vivado; see resources/resources.hpp).
//
// Paper values:                LUT          FF           BRAM  DSP
//   HyperConnect               3020         1289         0     0
//   SmartConnect               3785         7137         0     0
#include <iostream>

#include "resources/resources.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

void run() {
  std::cout << "==== Table I: resource consumption (ZCU102) ====\n\n";
  const DeviceBudget dev = zcu102();

  HyperConnectConfig cfg;
  cfg.num_ports = 2;  // the paper's case-study instance
  const ResourceUsage hc = estimate_hyperconnect(cfg);
  const ResourceUsage sc = estimate_smartconnect(2);

  Table t({"ZCU102", "LUT (274080)", "FF (548160)", "BRAM", "DSP"});
  t.add_row({"HyperConnect", utilization(hc.lut, dev.lut),
             utilization(hc.ff, dev.ff), std::to_string(hc.bram),
             std::to_string(hc.dsp)});
  t.add_row({"SmartConnect", utilization(sc.lut, dev.lut),
             utilization(sc.ff, dev.ff), std::to_string(sc.bram),
             std::to_string(sc.dsp)});
  t.add_row({"paper: HyperConnect", "3020 (1.1%)", "1289 (0.3%)", "0", "0"});
  t.add_row({"paper: SmartConnect", "3785 (1.4%)", "7137 (1.3%)", "0", "0"});
  t.print_markdown(std::cout);

  // Per-module breakdown (the openness claim: the architecture is
  // inspectable down to its pieces).
  std::cout << "\nHyperConnect breakdown (2 ports, default depths):\n\n";
  const ResourceUsage efifo = estimate_efifo(cfg.port_link_cfg);
  Table b({"module", "LUT", "FF"});
  b.add_row({"eFIFO (per instance, 3 total)", std::to_string(efifo.lut),
             std::to_string(efifo.ff)});
  b.add_row({"total", std::to_string(hc.lut), std::to_string(hc.ff)});
  b.print_markdown(std::cout);

  // Scaling with port count — beyond the paper, enabled by the model.
  std::cout << "\nScaling with input ports:\n\n";
  Table s({"ports", "HyperConnect LUT/FF", "SmartConnect LUT/FF"});
  for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
    HyperConnectConfig c;
    c.num_ports = n;
    const ResourceUsage h = estimate_hyperconnect(c);
    const ResourceUsage m = estimate_smartconnect(n);
    s.add_row({std::to_string(n),
               std::to_string(h.lut) + " / " + std::to_string(h.ff),
               std::to_string(m.lut) + " / " + std::to_string(m.ff)});
  }
  s.print_markdown(std::cout);
}

}  // namespace
}  // namespace axihc

int main() {
  axihc::run();
  return 0;
}
