// Ablation: round-robin grant granularity (§V-B, EXBAR).
//
// The paper found that SmartConnect uses a VARIABLE round-robin granularity
// g, which inflates the worst-case interference on a pending request to
// g×(N−1) transactions, while the EXBAR fixes g = 1.
//
// Measurement 1 (arbitration-level): while the victim has an address
// request pending at the arbiter, count how many interferer transactions
// get granted before the victim's — the paper's interference bound,
// observed directly. Expected: ≈ g×(N−1) for the SmartConnect model, 1 for
// the EXBAR.
//
// Measurement 2 (end-to-end): the victim's worst-case read latency, which
// folds in the interconnect pipeline and memory queueing on top of the
// arbitration term.
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "ha/traffic_gen.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "interconnect/smartconnect.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

struct GranularityResult {
  std::uint64_t worst_interference_txns = 0;
  Cycle worst_read_latency = 0;
};

template <typename MakeIcn>
GranularityResult measure(MakeIcn make_icn) {
  Simulator sim;
  BackingStore store;
  auto icn = make_icn();
  MemoryController mem("ddr", icn->master_link(), store,
                       bench::bench_mem_cfg());
  icn->register_with(sim);
  sim.add(mem);

  // Victim: sparse single-beat reads, one at a time, so each request meets
  // the arbiter fresh. Interferer: saturates its port with 16-beat reads.
  TrafficConfig victim_cfg;
  victim_cfg.direction = TrafficDirection::kRead;
  victim_cfg.burst_beats = 1;
  victim_cfg.gap_cycles = 120;
  victim_cfg.max_outstanding = 1;
  victim_cfg.base = 0x4000'0000;
  TrafficGenerator victim("victim", icn->port_link(0), victim_cfg);

  TrafficConfig greedy;
  greedy.direction = TrafficDirection::kRead;
  greedy.burst_beats = 16;
  greedy.max_outstanding = 16;
  greedy.base = 0x6000'0000;
  TrafficGenerator interferer("greedy", icn->port_link(1), greedy);

  sim.add(victim);
  sim.add(interferer);
  sim.reset();

  GranularityResult res;
  bool waiting = false;
  std::uint64_t interferer_grants_at_issue = 0;
  std::uint64_t victim_grants_seen = 0;
  std::uint64_t victim_issued_seen = 0;
  for (int i = 0; i < 150000; ++i) {
    sim.step();
    const std::uint64_t issued = victim.transactions_issued();
    const std::uint64_t granted = icn->counters(0).ar_granted;
    if (!waiting && issued > victim_issued_seen) {
      // A fresh victim request is pending at (or on its way to) the
      // arbiter.
      waiting = true;
      victim_issued_seen = issued;
      interferer_grants_at_issue = icn->counters(1).ar_granted;
    }
    if (waiting && granted > victim_grants_seen) {
      victim_grants_seen = granted;
      waiting = false;
      const std::uint64_t interference =
          icn->counters(1).ar_granted - interferer_grants_at_issue;
      res.worst_interference_txns =
          std::max(res.worst_interference_txns, interference);
    }
  }
  if (victim.stats().read_latency.count() > 0) {
    res.worst_read_latency = victim.stats().read_latency.max();
  }
  return res;
}

void run() {
  std::cout << "==== Ablation: round-robin grant granularity ====\n\n";

  const std::vector<std::uint32_t> grans{1, 2, 4, 8};
  std::vector<std::function<GranularityResult()>> jobs;
  for (const std::uint32_t g : grans) {
    jobs.emplace_back([g] {
      return measure([g] {
        SmartConnectConfig cfg;
        cfg.grant_granularity = g;
        cfg.max_outstanding_reads = 8;  // bound memory queueing so the
                                        // arbitration term is visible
        return std::make_unique<SmartConnect>("sc", 2, cfg);
      });
    });
  }
  jobs.emplace_back([] {
    return measure([] {
      HyperConnectConfig cfg;
      cfg.num_ports = 2;
      cfg.route_capacity = 8;
      return std::make_unique<HyperConnect>("hc", cfg);
    });
  });
  const std::vector<GranularityResult> results =
      bench::run_parallel(std::move(jobs));

  Table t({"arbiter", "granularity g", "paper bound g x (N-1)",
           "worst observed interference (txns)",
           "victim worst-case read latency (cyc)"});
  for (std::size_t i = 0; i < grans.size(); ++i) {
    t.add_row({"SmartConnect model", std::to_string(grans[i]),
               std::to_string(grans[i]),
               std::to_string(results[i].worst_interference_txns),
               std::to_string(results[i].worst_read_latency)});
  }
  const GranularityResult& hc = results.back();
  t.add_row({"HyperConnect (EXBAR)", "1 (fixed)", "1",
             std::to_string(hc.worst_interference_txns),
             std::to_string(hc.worst_read_latency)});
  t.print_markdown(std::cout);
  std::cout << "\nExpected shape: observed interference tracks the paper's "
               "g x (N-1) bound\n(small slack comes from the victim request "
               "being timestamped before it reaches\nthe arbiter); the "
               "EXBAR's fixed g=1 gives the tightest bound and the lowest\n"
               "worst-case latency.\n";
}

}  // namespace
}  // namespace axihc

int main() {
  axihc::run();
  return 0;
}
