// Fig. 3(b): maximum memory access time for different amounts of data, AXI
// HyperConnect vs AXI SmartConnect, plus throughput on large transfers.
//
// Paper setup: one Xilinx AXI DMA reading from DRAM through the
// interconnect; payloads of 1 word (8 B), one 16-word burst (128 B), 16 KB
// (256 bursts) and 4 MB (65536 bursts). Paper results: single-word response
// 28% faster, 16-word burst 25% faster, identical throughput at 16 KB and
// 4 MB (the interconnect is not the bottleneck there).
//
// Max-vs-average: the paper reports maxima and notes averages differ by
// <5%; we report both.
#include <iostream>

#include "bench_common.hpp"
#include "ha/dma_engine.hpp"
#include "soc/soc.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

struct AccessResult {
  Cycle max_cycles = 0;
  double mean_cycles = 0;
};

/// Measures per-job completion time for `repetitions` back-to-back DMA
/// reads of `bytes` each.
AccessResult measure(InterconnectKind kind, std::uint64_t bytes,
                     std::uint64_t repetitions) {
  SocSystem soc(bench::bench_soc_cfg(kind));
  DmaConfig cfg;
  cfg.mode = DmaMode::kRead;
  cfg.bytes_per_job = bytes;
  cfg.burst_beats = 16;
  cfg.max_outstanding = 8;
  cfg.max_jobs = repetitions;
  DmaEngine dma("dma", soc.port(0), cfg);
  soc.add(dma);
  soc.sim().reset();
  const bool done = soc.sim().run_until([&] { return dma.finished(); },
                                        2'000'000'000ull);
  AccessResult res;
  if (!done) return res;
  const auto& cycles = dma.job_completion_cycles();
  Cycle prev = 0;
  double sum = 0;
  for (const Cycle c : cycles) {
    const Cycle dur = c - prev;
    prev = c;
    res.max_cycles = std::max(res.max_cycles, dur);
    sum += static_cast<double>(dur);
  }
  res.mean_cycles = sum / static_cast<double>(cycles.size());
  return res;
}

void run(std::uint64_t scale) {
  bench::print_header("Fig. 3(b): memory access time vs data size", scale);
  const RateMeter meter = bench::rate_meter();

  struct Point {
    const char* label;
    std::uint64_t bytes;
    std::uint64_t reps;
    const char* paper;
  };
  const Point points[] = {
      {"1 word (8 B)", 8, 64, "-28%"},
      {"16-word burst (128 B)", 128, 64, "-25%"},
      {"16 KB (256 bursts)", 16 << 10, 16, "~0% (throughput-bound)"},
      {"4 MB (65536 bursts)", (4 << 20) / scale, 3, "~0% (throughput-bound)"},
  };

  Table t({"data size", "HC max (cyc)", "SC max (cyc)", "HC mean", "SC mean",
           "improvement (max)", "paper"});
  for (const Point& p : points) {
    const AccessResult hc =
        measure(InterconnectKind::kHyperConnect, p.bytes, p.reps);
    const AccessResult sc =
        measure(InterconnectKind::kSmartConnect, p.bytes, p.reps);
    const double impr =
        100.0 * (1.0 - static_cast<double>(hc.max_cycles) /
                           static_cast<double>(sc.max_cycles));
    t.add_row({p.label, std::to_string(hc.max_cycles),
               std::to_string(sc.max_cycles), Table::num(hc.mean_cycles, 1),
               Table::num(sc.mean_cycles, 1),
               "-" + Table::num(impr, 0) + "%", p.paper});
  }
  t.print_markdown(std::cout);

  // Throughput check on the large transfer (the paper's "comparable
  // throughput" claim).
  const std::uint64_t big = (4 << 20) / scale;
  const AccessResult hc_big = measure(InterconnectKind::kHyperConnect, big, 3);
  const AccessResult sc_big = measure(InterconnectKind::kSmartConnect, big, 3);
  std::cout << "\n4 MB-transfer throughput: HyperConnect "
            << Table::num(meter.bytes_per_second(
                              big, static_cast<Cycle>(hc_big.mean_cycles)) /
                              1e6,
                          1)
            << " MB/s vs SmartConnect "
            << Table::num(meter.bytes_per_second(
                              big, static_cast<Cycle>(sc_big.mean_cycles)) /
                              1e6,
                          1)
            << " MB/s\n";
}

}  // namespace
}  // namespace axihc

int main(int argc, char** argv) {
  axihc::run(axihc::bench::parse_scale(argc, argv));
  return 0;
}
