// Fig. 4: performance of CHaiDNN (frames/s) and HA_DMA (4 MB moves/s) in
// ISOLATION, AXI HyperConnect vs AXI SmartConnect.
//
// Paper claim: "no performance degradation is experienced when using the
// AXI HyperConnect with respect to the use of the AXI SmartConnect" — the
// two interconnects deliver the same isolated throughput for both HAs (the
// extra propagation latency of SmartConnect is hidden by pipelining once a
// single master streams continuously).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

double dnn_fps(InterconnectKind kind, std::uint64_t scale) {
  SocSystem soc(bench::bench_soc_cfg(kind));
  DnnAccelerator dnn("chaidnn", soc.port(0),
                     bench::scaled_googlenet(scale, 3));
  soc.add(dnn);
  soc.sim().reset();
  if (!soc.sim().run_until([&] { return dnn.finished(); },
                           2'000'000'000ull)) {
    return 0;
  }
  // Rate is per *scaled* frame; normalize back to full GoogleNet frames.
  return bench::rate_per_second(dnn.frame_completion_cycles()) /
         static_cast<double>(scale);
}

double dma_rate(InterconnectKind kind, std::uint64_t scale) {
  SocSystem soc(bench::bench_soc_cfg(kind));
  DmaEngine dma("ha_dma", soc.port(1), bench::paper_dma(scale, 4));
  soc.add(dma);
  soc.sim().reset();
  if (!soc.sim().run_until([&] { return dma.finished(); },
                           2'000'000'000ull)) {
    return 0;
  }
  return bench::rate_per_second(dma.job_completion_cycles()) /
         static_cast<double>(scale);
}

void run(std::uint64_t scale) {
  bench::print_header("Fig. 4: CHaiDNN and HA_DMA in isolation", scale);

  // Four independent simulations — sweep them across the thread pool.
  const std::vector<double> r =
      bench::run_parallel<double>(
          {[=] { return dnn_fps(InterconnectKind::kHyperConnect, scale); },
           [=] { return dnn_fps(InterconnectKind::kSmartConnect, scale); },
           [=] { return dma_rate(InterconnectKind::kHyperConnect, scale); },
           [=] { return dma_rate(InterconnectKind::kSmartConnect, scale); }});
  const double fps_hc = r[0];
  const double fps_sc = r[1];
  const double dma_hc = r[2];
  const double dma_sc = r[3];

  Table t({"HA (metric)", "HyperConnect", "SmartConnect", "HC/SC ratio",
           "paper"});
  t.add_row({"CHaiDNN GoogleNet (frames/s)", Table::num(fps_hc, 2),
             Table::num(fps_sc, 2), Table::num(fps_hc / fps_sc, 3),
             "~1.0 (no degradation)"});
  t.add_row({"HA_DMA 4MB+4MB moves (jobs/s)", Table::num(dma_hc, 2),
             Table::num(dma_sc, 2), Table::num(dma_hc / dma_sc, 3),
             "~1.0 (no degradation)"});
  t.print_markdown(std::cout);
}

}  // namespace
}  // namespace axihc

int main(int argc, char** argv) {
  axihc::run(axihc::bench::parse_scale(argc, argv));
  return 0;
}
