// Fig. 3(a): propagation latency introduced on each AXI channel by the AXI
// HyperConnect vs the AXI SmartConnect.
//
// Paper values (ZCU102, Vivado 2018.2):
//   channel       HC   SC   improvement
//   AR/AW         4    12   66%
//   R             2    11   82%
//   W             2    3    33%
//   B             2    2    0%
//   read txn      6    23   74%
//   write txn     8    17   (paper reports 41%)
//
// Method: instrumented zero-latency slave on the master port; drive the
// HA-side channels directly; compare push cycles to arrival cycles.
#include <iostream>

#include "axi/loopback_slave.hpp"
#include "bench_common.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "interconnect/smartconnect.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

struct ChannelLatencies {
  Cycle ar = 0, aw = 0, r = 0, w = 0, b = 0;
};

ChannelLatencies measure(Interconnect& icn, Simulator& sim,
                         LoopbackSlave& slave) {
  ChannelLatencies lat;
  AxiLink& port = icn.port_link(0);
  sim.reset();

  AddrReq ar;
  ar.id = 1;
  ar.addr = 0x100;
  ar.beats = 1;
  const Cycle ar_pushed = sim.now();
  port.ar.push(ar);
  sim.run_until([&] { return port.r.can_pop(); }, 1000);
  lat.ar = slave.ar_arrivals.at(0) - ar_pushed;
  lat.r = sim.now() - slave.r_first_push.at(0);
  port.r.pop();

  // AW latency: push the address first, with no W data yet — the AW
  // traverses alone.
  AddrReq aw;
  aw.id = 2;
  aw.addr = 0x200;
  aw.beats = 1;
  const Cycle aw_pushed = sim.now();
  port.aw.push(aw);
  sim.run_until([&] { return !slave.aw_arrivals.empty(); }, 1000);
  lat.aw = slave.aw_arrivals.at(0) - aw_pushed;

  // W latency: the route is established (AW already at the slave), so a W
  // beat pushed now traverses the pure W path.
  const Cycle w_pushed = sim.now();
  port.w.push({0xAB, 0xff, true});
  sim.run_until([&] { return !slave.w_first_beat.empty(); }, 1000);
  lat.w = slave.w_first_beat.at(0) - w_pushed;

  // B latency: the slave emits B with the last W beat.
  sim.run_until([&] { return port.b.can_pop(); }, 1000);
  lat.b = sim.now() - slave.b_pushes.at(0);
  port.b.pop();
  return lat;
}

void run() {
  Simulator sim_hc;
  HyperConnectConfig hcfg;
  hcfg.num_ports = 2;
  HyperConnect hc("hc", hcfg);
  LoopbackSlave slave_hc("slave", hc.master_link());
  hc.register_with(sim_hc);
  sim_hc.add(slave_hc);
  const ChannelLatencies l_hc = measure(hc, sim_hc, slave_hc);

  Simulator sim_sc;
  SmartConnect sc("sc", 2, {});
  LoopbackSlave slave_sc("slave", sc.master_link());
  sc.register_with(sim_sc);
  sim_sc.add(slave_sc);
  const ChannelLatencies l_sc = measure(sc, sim_sc, slave_sc);

  auto improvement = [](Cycle ours, Cycle theirs) {
    return Table::num(
               100.0 * (1.0 - static_cast<double>(ours) /
                                  static_cast<double>(theirs)),
               0) + "%";
  };

  std::cout << "==== Fig. 3(a): per-channel propagation latency (cycles) "
               "====\n\n";
  Table t({"channel", "HyperConnect", "SmartConnect", "improvement",
           "paper"});
  t.add_row({"AR", std::to_string(l_hc.ar), std::to_string(l_sc.ar),
             improvement(l_hc.ar, l_sc.ar), "66%"});
  t.add_row({"AW", std::to_string(l_hc.aw), std::to_string(l_sc.aw),
             improvement(l_hc.aw, l_sc.aw), "66%"});
  t.add_row({"R", std::to_string(l_hc.r), std::to_string(l_sc.r),
             improvement(l_hc.r, l_sc.r), "82%"});
  t.add_row({"W", std::to_string(l_hc.w), std::to_string(l_sc.w),
             improvement(l_hc.w, l_sc.w), "33%"});
  t.add_row({"B", std::to_string(l_hc.b), std::to_string(l_sc.b),
             improvement(l_hc.b, l_sc.b), "0%"});
  const Cycle rd_hc = l_hc.ar + l_hc.r;
  const Cycle rd_sc = l_sc.ar + l_sc.r;
  const Cycle wr_hc = l_hc.aw + l_hc.w + l_hc.b;
  const Cycle wr_sc = l_sc.aw + l_sc.w + l_sc.b;
  t.add_row({"read txn (AR+R)", std::to_string(rd_hc), std::to_string(rd_sc),
             improvement(rd_hc, rd_sc), "74%"});
  t.add_row({"write txn (AW+W+B)", std::to_string(wr_hc),
             std::to_string(wr_sc), improvement(wr_hc, wr_sc), "41%*"});
  t.print_markdown(std::cout);
  std::cout << "\n* the paper's per-channel percentages imply ~53% for the "
               "write transaction;\n  we report the per-channel-consistent "
               "value (see EXPERIMENTS.md).\n";
}

}  // namespace
}  // namespace axihc

int main() {
  axihc::run();
  return 0;
}
