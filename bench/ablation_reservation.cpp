// Ablation: bandwidth reservation [10] — measured share vs configured share,
// and the effect of the reservation period.
//
// Two greedy 16-beat masters; port 0's budget sweeps from 10% to 90% of the
// window capacity (port 1 gets the rest). The measured byte share must track
// the configured share (the staircase Fig. 5 exploits). A second sweep
// varies the period at a fixed 70/30 split: shorter periods give finer
// interleaving at the same long-run share.
#include <functional>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ha/traffic_gen.hpp"
#include "hypervisor/domain.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

constexpr double kCyclesPerTxn = 27.0;

double measured_share(Cycle period, double share0) {
  Simulator sim;
  BackingStore store;
  const ReservationPlan plan =
      plan_bandwidth_split(period, kCyclesPerTxn, {share0, 1.0 - share0});
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  cfg.reservation_period = plan.period;
  cfg.initial_budgets = plan.budgets;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store,
                       bench::bench_mem_cfg());
  hc.register_with(sim);
  sim.add(mem);

  TrafficConfig t;
  t.direction = TrafficDirection::kRead;
  t.burst_beats = 16;
  t.base = 0x4000'0000;
  TrafficGenerator g0("g0", hc.port_link(0), t);
  t.base = 0x6000'0000;
  TrafficGenerator g1("g1", hc.port_link(1), t);
  sim.add(g0);
  sim.add(g1);
  sim.reset();
  sim.run(400000);

  const double a = static_cast<double>(g0.stats().bytes_read);
  const double b = static_cast<double>(g1.stats().bytes_read);
  return a / (a + b);
}

void run() {
  std::cout << "==== Ablation: reservation budgets ====\n\n";

  // Both grids are independent simulations: run every point in parallel.
  const std::vector<double> shares{0.1, 0.3, 0.5, 0.7, 0.9};
  const std::vector<Cycle> periods{500, 1000, 2000, 8000, 32000};
  std::vector<std::function<double()>> jobs;
  for (const double share : shares) {
    jobs.emplace_back([=] { return measured_share(2000, share); });
  }
  for (const Cycle period : periods) {
    jobs.emplace_back([=] { return measured_share(period, 0.7); });
  }
  const std::vector<double> results = bench::run_parallel(std::move(jobs));

  std::cout << "Configured vs measured bandwidth share (period 2000):\n\n";
  Table t({"configured share (port 0)", "measured share", "error"});
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const double m = results[i];
    t.add_row({Table::num(100 * shares[i], 0) + "%",
               Table::num(100 * m, 1) + "%",
               Table::num(100 * (m - shares[i]), 1) + " pp"});
  }
  t.print_markdown(std::cout);

  std::cout << "\nPeriod sweep at a 70/30 split:\n\n";
  Table p({"period (cycles)", "measured share (port 0)"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    p.add_row({std::to_string(periods[i]),
               Table::num(100 * results[shares.size() + i], 1) + "%"});
  }
  p.print_markdown(std::cout);
  std::cout << "\nExpected shape: measured share tracks the configured "
               "share within a few points\n(quantization of budgets to "
               "whole transactions explains the residual), stable\nacross "
               "periods.\n";
}

}  // namespace
}  // namespace axihc

int main() {
  axihc::run();
  return 0;
}
