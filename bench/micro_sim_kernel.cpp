// Microbenchmarks of the simulation kernel itself (google-benchmark):
// channel hop cost, simulator step cost, full 2-port HyperConnect system
// cycles/second. These guard the simulator's own performance so the
// reproduction benches stay fast.
#include <benchmark/benchmark.h>

#include "ha/dma_engine.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {
namespace {

void BM_ChannelPushPop(benchmark::State& state) {
  TimingChannel<AddrReq> ch("ch", 8);
  ch.commit();
  AddrReq req;
  for (auto _ : state) {
    ch.push(req);
    ch.commit();
    benchmark::DoNotOptimize(ch.pop());
    ch.commit();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChannelPushPop);

void BM_SimulatorStepEmpty(benchmark::State& state) {
  Simulator sim;
  std::vector<std::unique_ptr<TimingChannel<int>>> chans;
  for (int i = 0; i < state.range(0); ++i) {
    chans.push_back(
        std::make_unique<TimingChannel<int>>("c" + std::to_string(i), 4));
    sim.add(*chans.back());
  }
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorStepEmpty)->Arg(8)->Arg(64)->Arg(512);

void BM_HyperConnectSystemCycle(benchmark::State& state) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = static_cast<std::uint32_t>(state.range(0));
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  std::vector<std::unique_ptr<DmaEngine>> dmas;
  for (PortIndex p = 0; p < cfg.num_ports; ++p) {
    DmaConfig d;
    d.mode = DmaMode::kReadWrite;
    d.bytes_per_job = 1u << 20;
    dmas.push_back(std::make_unique<DmaEngine>("dma" + std::to_string(p),
                                               hc.port_link(p), d));
    sim.add(*dmas.back());
  }
  sim.reset();
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HyperConnectSystemCycle)->Arg(2)->Arg(4)->Arg(8);

void BM_DmaJobThroughHyperConnect(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    BackingStore store;
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    HyperConnect hc("hc", cfg);
    MemoryController mem("ddr", hc.master_link(), store, {});
    hc.register_with(sim);
    sim.add(mem);
    DmaConfig d;
    d.mode = DmaMode::kRead;
    d.bytes_per_job = 64 << 10;
    d.max_jobs = 1;
    DmaEngine dma("dma", hc.port_link(0), d);
    sim.add(dma);
    sim.reset();
    sim.run_until([&] { return dma.finished(); }, 10'000'000);
    benchmark::DoNotOptimize(dma.jobs_completed());
  }
}
BENCHMARK(BM_DmaJobThroughHyperConnect)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace axihc

BENCHMARK_MAIN();
