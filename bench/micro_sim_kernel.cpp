// Microbenchmarks of the simulation kernel itself (google-benchmark):
// channel hop cost, simulator step cost, full 2-port HyperConnect system
// cycles/second. These guard the simulator's own performance so the
// reproduction benches stay fast.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"
#include "hyperconnect/hyperconnect.hpp"
#include "hypervisor/domain.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "obs/latency_audit.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "soc/soc.hpp"

namespace axihc {
namespace {

void BM_ChannelPushPop(benchmark::State& state) {
  TimingChannel<AddrReq> ch("ch", 8);
  ch.commit();
  AddrReq req;
  for (auto _ : state) {
    ch.push(req);
    ch.commit();
    benchmark::DoNotOptimize(ch.pop());
    ch.commit();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChannelPushPop);

void BM_SimulatorStepEmpty(benchmark::State& state) {
  Simulator sim;
  std::vector<std::unique_ptr<TimingChannel<int>>> chans;
  for (int i = 0; i < state.range(0); ++i) {
    chans.push_back(
        std::make_unique<TimingChannel<int>>("c" + std::to_string(i), 4));
    sim.add(*chans.back());
  }
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorStepEmpty)->Arg(8)->Arg(64)->Arg(512);

void BM_HyperConnectSystemCycle(benchmark::State& state) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = static_cast<std::uint32_t>(state.range(0));
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);

  std::vector<std::unique_ptr<DmaEngine>> dmas;
  for (PortIndex p = 0; p < cfg.num_ports; ++p) {
    DmaConfig d;
    d.mode = DmaMode::kReadWrite;
    d.bytes_per_job = 1u << 20;
    dmas.push_back(std::make_unique<DmaEngine>("dma" + std::to_string(p),
                                               hc.port_link(p), d));
    sim.add(*dmas.back());
  }
  sim.reset();
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HyperConnectSystemCycle)->Arg(2)->Arg(4)->Arg(8);

// Whole-system throughput at the fig5 contention workload: GoogleNet DNN
// plus a greedy 4 MB read+write DMA behind an HC-90-10 reservation. This is
// the headline "simulated cycles per wall-second" number guarded by
// BENCH_kernel.json; the throttled DMA windows and DNN compute phases are
// exactly the quiescent stretches the kernel fast path exists to skip.
void fig5_contention_run(benchmark::State& state, BackendKind backend) {
  const std::uint64_t scale = 64;  // fig5 shapes, sized for bench iterations
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    SocConfig cfg = bench::bench_soc_cfg(InterconnectKind::kHyperConnect);
    const ReservationPlan plan =
        plan_bandwidth_split(2000, 27.0, {0.9, 0.1});
    cfg.hc.reservation_period = plan.period;
    cfg.hc.initial_budgets = plan.budgets;
    SocSystem soc(cfg);
    DnnAccelerator dnn("chaidnn", soc.port(0),
                       bench::scaled_googlenet(scale, 1));
    DmaEngine dma("ha_dma", soc.port(1), bench::paper_dma(scale, 0));
    soc.add(dnn);
    soc.add(dma);
    soc.sim().set_backend(backend);
    soc.sim().reset();
    soc.sim().run_until(
        [&] { return dnn.finished() && dma.jobs_completed() >= 2; },
        4'000'000'000ull);
    cycles += soc.sim().now();
    benchmark::DoNotOptimize(dma.jobs_completed());
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_Fig5ContentionSystem(benchmark::State& state) {
  fig5_contention_run(state, BackendKind::kAuto);
}
BENCHMARK(BM_Fig5ContentionSystem)->Unit(benchmark::kMillisecond);

// Maps the benchmark Arg (0 = scalar, 1 = sse2, 2 = avx2) to a backend and
// verifies it is what would actually execute: skipped when the host lacks
// the ISA or AXIHC_FORCE_BACKEND repoints the choice (the CI backend matrix
// pins the env per leg; the per-arg variants would otherwise run mislabeled
// kernels). The skip message carries the full policy report.
bool backend_for_arg(benchmark::State& state, BackendKind& out) {
  out = state.range(0) == 0   ? BackendKind::kScalar
        : state.range(0) == 1 ? BackendKind::kSse2
                              : BackendKind::kAvx2;
  const BackendPolicy policy = resolve_backend(out);
  if (policy.chosen != out) {
    state.SkipWithError(policy.report().c_str());
    return false;
  }
  state.SetLabel(to_string(out));
  return true;
}

// Per-backend variants of the headline number (CI backend matrix);
// unsupported or env-overridden ISAs are skipped, so the matrix is safe to
// run on any host.
void BM_Fig5ContentionBackend(benchmark::State& state) {
  BackendKind requested;
  if (!backend_for_arg(state, requested)) return;
  fig5_contention_run(state, requested);
}
BENCHMARK(BM_Fig5ContentionBackend)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// The sweep kernels in isolation: one dense commit pass / one certificate
// min-reduction over a 512-lane synthetic pool per iteration. Pure kernel
// cost, no system around it — the number the --auto-tune probe estimates.
void BM_CommitDenseKernel(benchmark::State& state) {
  BackendKind requested;
  if (!backend_for_arg(state, requested)) return;
  const BackendKernels& kernels = kernels_for(requested);
  std::vector<ChannelHot> lanes(512);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    lanes[i].committed = static_cast<std::uint32_t>(i % 7);
    lanes[i].staged = static_cast<std::uint32_t>(i % 3);
    lanes[i].snapshot = lanes[i].committed;
  }
  for (auto _ : state) {
    kernels.commit_dense(lanes.data(), lanes.size());
    benchmark::DoNotOptimize(lanes.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * lanes.size()));
}
BENCHMARK(BM_CommitDenseKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_MinReduceKernel(benchmark::State& state) {
  BackendKind requested;
  if (!backend_for_arg(state, requested)) return;
  const BackendKernels& kernels = kernels_for(requested);
  std::vector<Cycle> certs(512);
  for (std::size_t i = 0; i < certs.size(); ++i) {
    certs[i] = (i % 11 == 0) ? kNoCycle : 1000 + i * 37;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels.min_reduce(certs.data(), certs.size()));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * certs.size()));
}
BENCHMARK(BM_MinReduceKernel)->Arg(0)->Arg(1)->Arg(2);

// Observability cost pair: the same busy 2-port DMA system with no
// observability objects at all vs. with an EventTrace attached-but-disabled
// and every metric registered (but never sampled). The obs layer promises
// one branch per record site when disabled, so these two must stay within
// noise of each other (the CI smoke job asserts < 2%).
void obs_cost_system(benchmark::State& state, bool attach_idle_obs) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  std::vector<std::unique_ptr<DmaEngine>> dmas;
  for (PortIndex p = 0; p < cfg.num_ports; ++p) {
    DmaConfig d;
    d.mode = DmaMode::kReadWrite;
    d.bytes_per_job = 1u << 20;
    dmas.push_back(std::make_unique<DmaEngine>("dma" + std::to_string(p),
                                               hc.port_link(p), d));
    sim.add(*dmas.back());
  }
  EventTrace trace;  // default-disabled: record sites cost one branch
  MetricsRegistry registry;
  if (attach_idle_obs) {
    hc.set_trace(&trace);
    mem.set_trace(&trace);
    hc.register_metrics(registry);
    mem.register_metrics(registry);
    for (auto& d : dmas) {
      d->set_trace(&trace);
      d->register_metrics(registry);
    }
  }
  sim.reset();
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_ObsOff(benchmark::State& state) { obs_cost_system(state, false); }
BENCHMARK(BM_ObsOff);

void BM_ObsIdleAttached(benchmark::State& state) {
  obs_cost_system(state, true);
}
BENCHMARK(BM_ObsIdleAttached);

// Latency-auditor cost pair, same contract as the trace/metrics pair above:
// detached (nullptr, the compiled-out-cheap default) vs attached to every
// hook site but disabled. Every hook early-returns on the enabled flag, so
// the attached-idle system must stay within noise (< 2%, CI-gated) of the
// detached one.
void audit_cost_system(benchmark::State& state, bool attach_idle_audit) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  std::vector<std::unique_ptr<DmaEngine>> dmas;
  for (PortIndex p = 0; p < cfg.num_ports; ++p) {
    DmaConfig d;
    d.mode = DmaMode::kReadWrite;
    d.bytes_per_job = 1u << 20;
    dmas.push_back(std::make_unique<DmaEngine>("dma" + std::to_string(p),
                                               hc.port_link(p), d));
    sim.add(*dmas.back());
  }
  LatencyAudit audit(cfg.num_ports, 1024);  // default-disabled
  if (attach_idle_audit) {
    hc.set_latency_audit(&audit);
    mem.set_latency_audit(&audit);
    for (PortIndex p = 0; p < cfg.num_ports; ++p) {
      dmas[p]->set_latency_audit(&audit, p);
    }
  }
  sim.reset();
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_AuditOff(benchmark::State& state) {
  audit_cost_system(state, false);
}
BENCHMARK(BM_AuditOff);

void BM_AuditIdleAttached(benchmark::State& state) {
  audit_cost_system(state, true);
}
BENCHMARK(BM_AuditIdleAttached);

// The full enabled auditor on the same system — bound model, histograms,
// flight ring, stall classifier. Not CI-gated (enabling it is an explicit
// opt-in), reported so the cost of `--latency-audit` is a number, not a
// guess.
void BM_AuditEnabled(benchmark::State& state) {
  Simulator sim;
  BackingStore store;
  HyperConnectConfig cfg;
  cfg.num_ports = 2;
  HyperConnect hc("hc", cfg);
  MemoryController mem("ddr", hc.master_link(), store, {});
  hc.register_with(sim);
  sim.add(mem);
  std::vector<std::unique_ptr<DmaEngine>> dmas;
  for (PortIndex p = 0; p < cfg.num_ports; ++p) {
    DmaConfig d;
    d.mode = DmaMode::kReadWrite;
    d.bytes_per_job = 1u << 20;
    dmas.push_back(std::make_unique<DmaEngine>("dma" + std::to_string(p),
                                               hc.port_link(p), d));
    sim.add(*dmas.back());
  }
  LatencyAudit audit(cfg.num_ports, 1024);
  audit.set_enabled(true);
  hc.set_latency_audit(&audit);
  mem.set_latency_audit(&audit);
  for (PortIndex p = 0; p < cfg.num_ports; ++p) {
    dmas[p]->set_latency_audit(&audit, p);
  }
  sim.reset();
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AuditEnabled);

// Parallel tick engine scaling: a widened fig5-class topology — several
// independent HC+DDR+DMA subsystems in one Simulator — so the island
// partitioner finds one island per subsystem and the compute phase can fan
// out. Arg 0 runs the serial kernel (set_parallel_tick(false)) as the
// baseline; Arg 1 configures the engine with one thread, which resolves to
// the serial kernel (the zero-overhead-by-construction case CI asserts);
// Args 2/4 dispatch across the worker pool. Bit-identity is spot-checked
// once before any timing: the engine must land on the same state digest as
// the serial kernel or the numbers are meaningless.
struct ParallelTickSystem {
  Simulator sim;
  std::vector<std::unique_ptr<BackingStore>> stores;
  std::vector<std::unique_ptr<HyperConnect>> hcs;
  std::vector<std::unique_ptr<MemoryController>> mems;
  std::vector<std::unique_ptr<DmaEngine>> dmas;

  explicit ParallelTickSystem(std::uint32_t subsystems) {
    for (std::uint32_t s = 0; s < subsystems; ++s) {
      HyperConnectConfig cfg;
      cfg.num_ports = 2;
      hcs.push_back(
          std::make_unique<HyperConnect>("hc" + std::to_string(s), cfg));
      stores.push_back(std::make_unique<BackingStore>());
      mems.push_back(std::make_unique<MemoryController>(
          "ddr" + std::to_string(s), hcs.back()->master_link(),
          *stores.back(), MemoryControllerConfig{}));
      hcs.back()->register_with(sim);
      sim.add(*mems.back());
      for (PortIndex p = 0; p < cfg.num_ports; ++p) {
        DmaConfig d;
        d.mode = DmaMode::kReadWrite;
        d.bytes_per_job = 1u << 20;
        dmas.push_back(std::make_unique<DmaEngine>(
            "dma" + std::to_string(s) + "_" + std::to_string(p),
            hcs.back()->port_link(p), d));
        sim.add(*dmas.back());
      }
    }
  }
};

bool parallel_tick_digest_matches_serial() {
  ParallelTickSystem serial(8);
  ParallelTickSystem engine(8);
  serial.sim.set_parallel_tick(false);
  engine.sim.set_threads(2);
  serial.sim.reset();
  engine.sim.reset();
  for (int i = 0; i < 10'000; ++i) {
    serial.sim.step();
    engine.sim.step();
  }
  return serial.sim.state_digest() == engine.sim.state_digest();
}

void BM_ParallelTick(benchmark::State& state) {
  static const bool digest_ok = parallel_tick_digest_matches_serial();
  if (!digest_ok) {
    state.SkipWithError("engine digest diverged from serial kernel");
    return;
  }
  ParallelTickSystem system(8);
  const long threads = state.range(0);
  if (threads == 0) {
    system.sim.set_parallel_tick(false);  // serial-kernel baseline
  } else {
    system.sim.set_threads(static_cast<unsigned>(threads));
  }
  system.sim.reset();
  for (auto _ : state) system.sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["islands"] =
      static_cast<double>(system.sim.island_count());
}
BENCHMARK(BM_ParallelTick)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_DmaJobThroughHyperConnect(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    BackingStore store;
    HyperConnectConfig cfg;
    cfg.num_ports = 2;
    HyperConnect hc("hc", cfg);
    MemoryController mem("ddr", hc.master_link(), store, {});
    hc.register_with(sim);
    sim.add(mem);
    DmaConfig d;
    d.mode = DmaMode::kRead;
    d.bytes_per_job = 64 << 10;
    d.max_jobs = 1;
    DmaEngine dma("dma", hc.port_link(0), d);
    sim.add(dma);
    sim.reset();
    sim.run_until([&] { return dma.finished(); }, 10'000'000);
    benchmark::DoNotOptimize(dma.jobs_completed());
  }
}
BENCHMARK(BM_DmaJobThroughHyperConnect)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace axihc

BENCHMARK_MAIN();
