// Shared helpers for the reproduction benches: the paper's experimental
// setup (§VI-A) expressed once.
//
// Platform model: ZCU102-like — 64-bit FPGA-PS data path at 150 MHz, DDR
// controller with open-row tracking. Both interconnects are instantiated
// with N = 2 ports as in the paper unless a bench says otherwise.
//
// Every bench accepts `--fast` (scale the workload down ~16x, for smoke
// runs) and `--full` (the paper's full workload sizes). The default is a
// 4x-scaled workload: same shapes, minutes -> seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"
#include "sim/parallel_jobs.hpp"
#include "soc/soc.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

namespace axihc::bench {

/// Workload scale divisor parsed from argv: 1 (--full), 4 (default),
/// 16 (--fast).
inline std::uint64_t parse_scale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") return 1;
    if (arg == "--fast") return 16;
  }
  return 4;
}

/// The paper's fabric clock (a common CHaiDNN/DMA design point on ZCU102).
inline RateMeter rate_meter() { return RateMeter(150e6); }

/// Memory configuration used by all benches (one DDR channel, open rows).
inline MemoryControllerConfig bench_mem_cfg() {
  MemoryControllerConfig c;
  c.row_hit_latency = 10;
  c.row_miss_latency = 24;
  c.turnaround = 1;
  return c;
}

/// SocConfig for the paper's N=2 setup on either interconnect.
inline SocConfig bench_soc_cfg(InterconnectKind kind) {
  SocConfig cfg;
  cfg.kind = kind;
  cfg.num_ports = 2;
  cfg.mem = bench_mem_cfg();
  return cfg;
}

/// GoogleNet schedule scaled down by `scale` (traffic and MACs alike).
inline DnnConfig scaled_googlenet(std::uint64_t scale,
                                  std::uint64_t max_frames) {
  DnnConfig cfg;
  cfg.layers = googlenet_layers();
  for (auto& l : cfg.layers) {
    l.weight_bytes /= scale;
    l.ifmap_bytes /= scale;
    l.ofmap_bytes /= scale;
    l.macs /= scale;
  }
  cfg.macs_per_cycle = 256;
  cfg.burst_beats = 16;
  cfg.max_outstanding = 4;
  cfg.max_frames = max_frames;
  return cfg;
}

/// The paper's HA_DMA: move 4 MB of reads and 4 MB of writes per job.
inline DmaConfig paper_dma(std::uint64_t scale, std::uint64_t max_jobs) {
  DmaConfig cfg;
  cfg.mode = DmaMode::kReadWrite;
  cfg.bytes_per_job = (4ull << 20) / scale;
  cfg.burst_beats = 16;
  cfg.max_outstanding = 8;
  cfg.max_jobs = max_jobs;
  return cfg;
}

/// Completions-per-second from recorded completion cycles (steady state:
/// first completion is treated as warm-up when there are >= 2 samples).
inline double rate_per_second(const std::vector<Cycle>& completions) {
  if (completions.empty()) return 0.0;
  const RateMeter meter = rate_meter();
  if (completions.size() == 1) {
    return meter.per_second(1, completions[0]);
  }
  const Cycle span = completions.back() - completions.front();
  return meter.per_second(completions.size() - 1, span);
}

/// Worker threads for run_parallel: AXIHC_BENCH_THREADS overrides (0 or
/// unset = one per hardware thread). Shared with the campaign runner —
/// see sim/parallel_jobs.hpp.
inline unsigned bench_threads() { return parallel_job_threads(); }

/// Runs independent scenario jobs across the shared worker pool and returns
/// their results in job order (the printed sweep is identical to a serial
/// run). Thin alias of run_parallel_jobs (sim/parallel_jobs.hpp), kept so
/// benches read as before; the oversubscription warning lives in the shared
/// scheduler now, so every fan-out client gets it.
template <typename Result>
std::vector<Result> run_parallel(std::vector<std::function<Result()>> jobs) {
  return run_parallel_jobs<Result>(std::move(jobs));
}

inline void print_header(const std::string& title, std::uint64_t scale) {
  std::cout << "\n==== " << title << " ====\n";
  std::cout << "(workload scale 1/" << scale
            << "; pass --full for paper-size workloads, --fast for smoke)\n\n";
}

}  // namespace axihc::bench
