// Fig. 5: CHaiDNN + HA_DMA under contention.
//
// Paper scenario: HA_CHaiDNN (GoogleNet inference) and HA_DMA (4 MB reads +
// 4 MB writes, looping) share the interconnect.
//  * Under SmartConnect, the greedy DMA takes most of the bandwidth and
//    CHaiDNN's frame rate collapses — and there is no way to redistribute.
//  * Under HyperConnect, the reservation mechanism assigns X% of the bus to
//    CHaiDNN and Y=100-X% to the DMA (HC-90-10 ... HC-10-90); HC-90-10
//    brings CHaiDNN close to its isolation performance.
#include <iostream>

#include "bench_common.hpp"
#include "hypervisor/domain.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

struct PairResult {
  double dnn_fps = 0;
  double dma_rate = 0;
};

/// Memory service time of one nominal 16-beat transaction (row hit +
/// streaming + turnaround) — the capacity estimate behind the budget split.
constexpr double kCyclesPerTxn = 27.0;
constexpr Cycle kPeriod = 2000;

PairResult run_pair(InterconnectKind kind, std::uint64_t scale,
                    double dnn_share, std::uint64_t frames) {
  SocConfig cfg = bench::bench_soc_cfg(kind);
  if (kind == InterconnectKind::kHyperConnect && dnn_share > 0) {
    const ReservationPlan plan = plan_bandwidth_split(
        kPeriod, kCyclesPerTxn, {dnn_share, 1.0 - dnn_share});
    cfg.hc.reservation_period = plan.period;
    cfg.hc.initial_budgets = plan.budgets;
  }
  SocSystem soc(cfg);
  DnnAccelerator dnn("chaidnn", soc.port(0),
                     bench::scaled_googlenet(scale, frames));
  DmaEngine dma("ha_dma", soc.port(1), bench::paper_dma(scale, 0));
  soc.add(dnn);
  soc.add(dma);
  soc.sim().reset();

  PairResult res;
  // Run until the DNN finished its frames AND the (possibly heavily
  // throttled) DMA completed enough jobs for a rate sample.
  if (!soc.sim().run_until(
          [&] { return dnn.finished() && dma.jobs_completed() >= 2; },
          4'000'000'000ull)) {
    return res;
  }
  res.dnn_fps = bench::rate_per_second(dnn.frame_completion_cycles()) /
                static_cast<double>(scale);
  res.dma_rate = bench::rate_per_second(dma.job_completion_cycles()) /
                 static_cast<double>(scale);
  return res;
}

PairResult run_isolation(std::uint64_t scale, std::uint64_t frames) {
  // Each HA alone on a HyperConnect (Fig. 4 shows HC == SC in isolation).
  PairResult res;
  {
    SocSystem soc(bench::bench_soc_cfg(InterconnectKind::kHyperConnect));
    DnnAccelerator dnn("chaidnn", soc.port(0),
                       bench::scaled_googlenet(scale, frames));
    soc.add(dnn);
    soc.sim().reset();
    if (soc.sim().run_until([&] { return dnn.finished(); },
                            4'000'000'000ull)) {
      res.dnn_fps = bench::rate_per_second(dnn.frame_completion_cycles()) /
                    static_cast<double>(scale);
    }
  }
  {
    SocSystem soc(bench::bench_soc_cfg(InterconnectKind::kHyperConnect));
    DmaEngine dma("ha_dma", soc.port(1), bench::paper_dma(scale, 4));
    soc.add(dma);
    soc.sim().reset();
    if (soc.sim().run_until([&] { return dma.finished(); },
                            4'000'000'000ull)) {
      res.dma_rate = bench::rate_per_second(dma.job_completion_cycles()) /
                     static_cast<double>(scale);
    }
  }
  return res;
}

void run(std::uint64_t scale) {
  bench::print_header("Fig. 5: CHaiDNN + HA_DMA under contention", scale);
  const std::uint64_t frames = 2;

  Table t({"configuration", "CHaiDNN (fps)", "HA_DMA (jobs/s)",
           "CHaiDNN vs isolation"});
  const PairResult iso = run_isolation(scale, frames);
  t.add_row({"isolation", Table::num(iso.dnn_fps, 2),
             Table::num(iso.dma_rate, 2), "100%"});

  auto add = [&](const std::string& label, const PairResult& r) {
    t.add_row({label, Table::num(r.dnn_fps, 2), Table::num(r.dma_rate, 2),
               Table::num(100.0 * r.dnn_fps / iso.dnn_fps, 0) + "%"});
  };

  add("SmartConnect (contention)",
      run_pair(InterconnectKind::kSmartConnect, scale, 0, frames));
  for (const double share : {0.9, 0.7, 0.5, 0.3, 0.1}) {
    const int x = static_cast<int>(share * 100);
    add("HC-" + std::to_string(x) + "-" + std::to_string(100 - x),
        run_pair(InterconnectKind::kHyperConnect, scale, share, frames));
  }
  t.print_markdown(std::cout);
  std::cout << "\nPaper shape: SmartConnect lets the DMA starve CHaiDNN; "
               "HC-90-10 restores CHaiDNN\nto near-isolation performance, "
               "with a monotone trade-off across HC-X-Y.\n";
}

}  // namespace
}  // namespace axihc

int main(int argc, char** argv) {
  axihc::run(axihc::bench::parse_scale(argc, argv));
  return 0;
}
