// Fig. 5: CHaiDNN + HA_DMA under contention.
//
// Paper scenario: HA_CHaiDNN (GoogleNet inference) and HA_DMA (4 MB reads +
// 4 MB writes, looping) share the interconnect.
//  * Under SmartConnect, the greedy DMA takes most of the bandwidth and
//    CHaiDNN's frame rate collapses — and there is no way to redistribute.
//  * Under HyperConnect, the reservation mechanism assigns X% of the bus to
//    CHaiDNN and Y=100-X% to the DMA (HC-90-10 ... HC-10-90); HC-90-10
//    brings CHaiDNN close to its isolation performance.
#include <functional>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "hypervisor/domain.hpp"
#include "stats/table.hpp"

namespace axihc {
namespace {

struct PairResult {
  double dnn_fps = 0;
  double dma_rate = 0;
};

/// Memory service time of one nominal 16-beat transaction (row hit +
/// streaming + turnaround) — the capacity estimate behind the budget split.
constexpr double kCyclesPerTxn = 27.0;
constexpr Cycle kPeriod = 2000;

PairResult run_pair(InterconnectKind kind, std::uint64_t scale,
                    double dnn_share, std::uint64_t frames) {
  SocConfig cfg = bench::bench_soc_cfg(kind);
  if (kind == InterconnectKind::kHyperConnect && dnn_share > 0) {
    const ReservationPlan plan = plan_bandwidth_split(
        kPeriod, kCyclesPerTxn, {dnn_share, 1.0 - dnn_share});
    cfg.hc.reservation_period = plan.period;
    cfg.hc.initial_budgets = plan.budgets;
  }
  SocSystem soc(cfg);
  DnnAccelerator dnn("chaidnn", soc.port(0),
                     bench::scaled_googlenet(scale, frames));
  DmaEngine dma("ha_dma", soc.port(1), bench::paper_dma(scale, 0));
  soc.add(dnn);
  soc.add(dma);
  soc.sim().reset();

  PairResult res;
  // Run until the DNN finished its frames AND the (possibly heavily
  // throttled) DMA completed enough jobs for a rate sample.
  if (!soc.sim().run_until(
          [&] { return dnn.finished() && dma.jobs_completed() >= 2; },
          4'000'000'000ull)) {
    return res;
  }
  res.dnn_fps = bench::rate_per_second(dnn.frame_completion_cycles()) /
                static_cast<double>(scale);
  res.dma_rate = bench::rate_per_second(dma.job_completion_cycles()) /
                 static_cast<double>(scale);
  return res;
}

PairResult run_isolation(std::uint64_t scale, std::uint64_t frames) {
  // Each HA alone on a HyperConnect (Fig. 4 shows HC == SC in isolation).
  PairResult res;
  {
    SocSystem soc(bench::bench_soc_cfg(InterconnectKind::kHyperConnect));
    DnnAccelerator dnn("chaidnn", soc.port(0),
                       bench::scaled_googlenet(scale, frames));
    soc.add(dnn);
    soc.sim().reset();
    if (soc.sim().run_until([&] { return dnn.finished(); },
                            4'000'000'000ull)) {
      res.dnn_fps = bench::rate_per_second(dnn.frame_completion_cycles()) /
                    static_cast<double>(scale);
    }
  }
  {
    SocSystem soc(bench::bench_soc_cfg(InterconnectKind::kHyperConnect));
    DmaEngine dma("ha_dma", soc.port(1), bench::paper_dma(scale, 4));
    soc.add(dma);
    soc.sim().reset();
    if (soc.sim().run_until([&] { return dma.finished(); },
                            4'000'000'000ull)) {
      res.dma_rate = bench::rate_per_second(dma.job_completion_cycles()) /
                     static_cast<double>(scale);
    }
  }
  return res;
}

void run(std::uint64_t scale) {
  bench::print_header("Fig. 5: CHaiDNN + HA_DMA under contention", scale);
  const std::uint64_t frames = 2;

  // Every configuration is an independent simulation; sweep them across the
  // thread pool and print in fixed order afterwards.
  std::vector<std::string> labels{"isolation", "SmartConnect (contention)"};
  std::vector<std::function<PairResult()>> jobs;
  jobs.emplace_back([=] { return run_isolation(scale, frames); });
  jobs.emplace_back([=] {
    return run_pair(InterconnectKind::kSmartConnect, scale, 0, frames);
  });
  for (const double share : {0.9, 0.7, 0.5, 0.3, 0.1}) {
    const int x = static_cast<int>(share * 100);
    labels.push_back("HC-" + std::to_string(x) + "-" +
                     std::to_string(100 - x));
    jobs.emplace_back([=] {
      return run_pair(InterconnectKind::kHyperConnect, scale, share, frames);
    });
  }
  const std::vector<PairResult> results = bench::run_parallel(std::move(jobs));

  const PairResult& iso = results[0];
  Table t({"configuration", "CHaiDNN (fps)", "HA_DMA (jobs/s)",
           "CHaiDNN vs isolation"});
  t.add_row({labels[0], Table::num(iso.dnn_fps, 2),
             Table::num(iso.dma_rate, 2), "100%"});
  for (std::size_t i = 1; i < results.size(); ++i) {
    t.add_row({labels[i], Table::num(results[i].dnn_fps, 2),
               Table::num(results[i].dma_rate, 2),
               Table::num(100.0 * results[i].dnn_fps / iso.dnn_fps, 0) +
                   "%"});
  }
  t.print_markdown(std::cout);
  std::cout << "\nPaper shape: SmartConnect lets the DMA starve CHaiDNN; "
               "HC-90-10 restores CHaiDNN\nto near-isolation performance, "
               "with a monotone trade-off across HC-X-Y.\n";
}

}  // namespace
}  // namespace axihc

int main(int argc, char** argv) {
  axihc::run(axihc::bench::parse_scale(argc, argv));
  return 0;
}
