// axihc — run an interconnect experiment from an INI description.
//
//   axihc <config.ini> [--cycles N]
//   axihc --example            # print a ready-to-edit sample config
//
// See src/config/system_builder.hpp for the full config reference.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/check.hpp"
#include "config/system_builder.hpp"

namespace {

constexpr const char* kExample = R"(# axihc experiment: CHaiDNN-class DNN vs greedy DMA with a 90/10 reservation
[system]
interconnect = hyperconnect   ; hyperconnect | smartconnect
platform = zcu102             ; zcu102 | zynq7020
ports = 2
cycles = 2000000

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
reservation_period = 2000
budgets = 64 7                ; ~90% / ~10% of the window capacity

[ha0]
type = dnn                    ; dma | traffic | dnn
network = googlenet           ; googlenet | alexnet
scale = 16                    ; divide the workload for quick runs

[ha1]
type = dma
mode = readwrite
bytes_per_job = 262144
burst = 16
)";

void usage() {
  std::cerr << "usage: axihc <config.ini> [--cycles N]\n"
               "       axihc --example > experiment.ini\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  if (std::strcmp(argv[1], "--example") == 0) {
    std::cout << kExample;
    return 0;
  }

  axihc::Cycle override_cycles = 0;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--cycles") == 0) {
      override_cycles = std::strtoull(argv[i + 1], nullptr, 0);
    }
  }

  std::ifstream file(argv[1]);
  if (!file) {
    std::cerr << "axihc: cannot open '" << argv[1] << "'\n";
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();

  try {
    auto system = axihc::build_system(text.str());
    system->run(override_cycles);
    std::cout << system->report();
  } catch (const axihc::ModelError& e) {
    std::cerr << "axihc: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
