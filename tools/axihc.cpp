// axihc — run an interconnect experiment from an INI description.
//
//   axihc <config.ini> [--cycles N] [--trace-out f.json]
//         [--metrics-out f.csv] [--sample-every N] [--no-fast-forward]
//         [--threads N] [--no-parallel-tick] [--digest]
//         [--backend scalar|sse2|avx2|auto] [--auto-tune]
//         [--latency-audit] [--flight-out f.jsonl]
//   axihc <config.ini> --lint [--lint-strict] [--lint-json f.json]
//   axihc <config.ini> --prove [--prove-json f.json]
//   axihc <spec.ini> --campaign [--campaign-out f.jsonl]
//   axihc <spec.ini> --campaign --campaign-replay N
//   axihc <spec.ini> --sweep [--sweep-out f.jsonl] [--sweep-cache DIR]
//         [--sweep-no-cache] [--sweep-shard i/N] [--sweep-deterministic]
//         [--sweep-check pins.jsonl] [--sweep-report f.md]
//         [--sweep-report-json f.json]
//   axihc <results.jsonl> --sweep-report f.md      # report from saved rows
//   axihc <config.ini> --config-digest | --config-canonical
//   axihc --example            # print a ready-to-edit sample config
//
// --sweep expands the file's [sweep] section (axes over any config key;
// see src/sweep/sweep.hpp) into its cartesian grid and runs every cell as a
// shared-nothing parallel job, streaming one JSON-lines row per cell.
// Results are cached under (config digest, code version) — the default
// directory is .axihc-sweep-cache next to the spec — so re-running a sweep
// only simulates cells whose config or code actually changed.
// --sweep-shard i/N runs the cells with index % N == i (fan out across
// machines; the sorted union of shard outputs equals the unsharded run).
// --sweep-check compares each produced cell's config + state digest against
// a pinned row file and exits nonzero on any mismatch. --sweep-report /
// --sweep-report-json render Pareto fronts and per-axis sensitivity tables
// from this run's rows — or, without --sweep, from a saved row file ("-"
// writes to stdout).
//
// --config-digest prints the 64-bit digest of the config's canonical form
// (stable across key order, whitespace, comments, numeric base, and
// explicitly-spelled defaults — see src/config/canonical.hpp);
// --config-canonical prints the canonical text itself.
//
// --campaign runs the Monte Carlo fault campaign described by the file's
// [campaign] section (src/campaign): seeded randomized fault mixes against
// the base system's recovery stack, JSON-lines survivability metrics on
// stdout (or --campaign-out). Exits nonzero when any run ends with a
// non-converged recovery FSM or a budget-conservation violation.
// --campaign-replay N prints a standalone config reproducing run N.
//
// --latency-audit enables the per-transaction latency-provenance layer
// (src/obs/latency_audit): after the run it prints the per-port roll-up
// (p50/p99/p99.9/max vs analytic WCLA bound, cause breakdown) and exits
// nonzero when any transaction exceeded its bound. --flight-out dumps the
// flight-recorder ring (the last [observe] flight_capacity completed
// transactions) as JSON-lines; it implies --latency-audit.
//
// --prove elaborates the system and runs the static predictability
// certifier (src/prove) with ZERO simulated cycles: deadlock-freedom over
// the waits-for graph, per-port eFIFO backlog bounds, reservation
// feasibility/starvation-freedom/ID headroom, and WCLA boundedness
// classification. Exits nonzero iff any check is disproved. --prove-json
// writes the machine-readable certificate (plus the code-version digest
// certificates are cached under in sweeps).
//
// --lint elaborates the system, runs the design-rule checker (src/lint) and
// exits nonzero when any error-severity finding is present. In builds
// configured with -DAXIHC_PHASE_CHECK=ON it first runs a short simulation
// (the --cycles value, or 20000) on the serial kernel with the channel
// instrumentation armed, so the ledger-backed checks (undeclared endpoints,
// island-scope violations, two-phase races) have accesses to audit.
//
// See src/config/system_builder.hpp for the full config reference.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "common/check.hpp"
#include "config/canonical.hpp"
#include "config/system_builder.hpp"
#include "sim/backend.hpp"
#include "sim/phase_check.hpp"
#include "sweep/code_version.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace {

constexpr const char* kExample = R"(# axihc experiment: CHaiDNN-class DNN vs greedy DMA with a 90/10 reservation
[system]
interconnect = hyperconnect   ; hyperconnect | smartconnect
platform = zcu102             ; zcu102 | zynq7020
ports = 2
cycles = 2000000

[hyperconnect]
nominal_burst = 16
max_outstanding = 4
reservation_period = 2000
budgets = 64 7                ; ~90% / ~10% of the window capacity

[ha0]
type = dnn                    ; dma | traffic | dnn
network = googlenet           ; googlenet | alexnet
scale = 16                    ; divide the workload for quick runs

[ha1]
type = dma
mode = readwrite
bytes_per_job = 262144
burst = 16

[observe]                     ; optional; --trace-out/--metrics-out imply it
trace = false                 ; record typed events (Chrome trace JSON)
metrics = false               ; sample every counter/gauge in the registry
sample_every = 1000           ; sampler period / APM window, in cycles
trace_capacity = 0            ; max retained events; 0 = unbounded
latency_audit = false         ; per-txn provenance + WCLA bound auditing
flight_capacity = 4096        ; flight-recorder ring size (transactions)
)";

void usage() {
  std::cerr << "usage: axihc <config.ini> [--cycles N] [--trace-out f.json]\n"
               "             [--metrics-out f.csv] [--sample-every N]\n"
               "             [--no-fast-forward] [--threads N]\n"
               "             [--no-parallel-tick] [--digest]\n"
               "             [--backend scalar|sse2|avx2|auto] [--auto-tune]\n"
               "             [--latency-audit] [--flight-out f.jsonl]\n"
               "       axihc <config.ini> --lint [--lint-strict]\n"
               "             [--lint-json f.json]\n"
               "       axihc <config.ini> --prove [--prove-json f.json]\n"
               "       axihc <spec.ini> --campaign [--campaign-out f.jsonl]\n"
               "       axihc <spec.ini> --campaign --campaign-replay N\n"
               "       axihc <spec.ini> --sweep [--sweep-out f.jsonl]\n"
               "             [--sweep-cache DIR] [--sweep-no-cache]\n"
               "             [--sweep-shard i/N] [--sweep-deterministic]\n"
               "             [--sweep-check pins.jsonl] [--sweep-report f.md]\n"
               "             [--sweep-report-json f.json]\n"
               "       axihc <results.jsonl> --sweep-report f.md\n"
               "       axihc <config.ini> --config-digest\n"
               "       axihc <config.ini> --config-canonical\n"
               "       axihc --example > experiment.ini\n";
}

/// Writes `content` to `path`, with "-" meaning stdout. Returns false (and
/// complains) when the file cannot be opened.
bool write_output(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::cout << content;
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "axihc: cannot write '" << path << "'\n";
    return false;
  }
  out << content;
  std::cerr << "axihc: wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  if (std::strcmp(argv[1], "--example") == 0) {
    std::cout << kExample;
    return 0;
  }

  axihc::Cycle override_cycles = 0;
  std::string trace_out;
  std::string metrics_out;
  axihc::Cycle sample_every = 0;  // 0 = keep the config's value
  bool fast_forward = true;
  unsigned threads = 0;  // 0 = serial kernel
  bool parallel_tick = true;
  bool print_digest = false;
  bool lint_mode = false;
  bool lint_strict = false;
  std::string lint_json;
  bool prove_mode = false;
  std::string prove_json;
  bool campaign_mode = false;
  std::string campaign_out;
  long long campaign_replay = -1;
  bool latency_audit = false;
  std::string flight_out;
  bool sweep_mode = false;
  std::string sweep_out;
  std::string sweep_cache;
  bool sweep_no_cache = false;
  std::size_t sweep_shard_index = 0;
  std::size_t sweep_shard_count = 1;
  bool sweep_deterministic = false;
  std::string sweep_check;
  std::string sweep_report;
  std::string sweep_report_json;
  bool config_digest_mode = false;
  bool config_canonical_mode = false;
  axihc::BackendKind backend = axihc::BackendKind::kAuto;
  bool backend_flag = false;
  bool auto_tune = false;
  for (int i = 2; i < argc; ++i) {
    const bool has_value = i + 1 < argc;
    if (std::strcmp(argv[i], "--cycles") == 0 && has_value) {
      override_cycles = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && has_value) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && has_value) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--sample-every") == 0 && has_value) {
      sample_every = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--no-fast-forward") == 0) {
      fast_forward = false;
    } else if (std::strcmp(argv[i], "--threads") == 0 && has_value) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    } else if (std::strcmp(argv[i], "--no-parallel-tick") == 0) {
      parallel_tick = false;
    } else if (std::strcmp(argv[i], "--digest") == 0) {
      print_digest = true;
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint_mode = true;
    } else if (std::strcmp(argv[i], "--lint-strict") == 0) {
      lint_mode = true;
      lint_strict = true;
    } else if (std::strcmp(argv[i], "--lint-json") == 0 && has_value) {
      lint_mode = true;
      lint_json = argv[++i];
    } else if (std::strcmp(argv[i], "--prove") == 0) {
      prove_mode = true;
    } else if (std::strcmp(argv[i], "--prove-json") == 0 && has_value) {
      prove_mode = true;
      prove_json = argv[++i];
    } else if (std::strcmp(argv[i], "--campaign") == 0) {
      campaign_mode = true;
    } else if (std::strcmp(argv[i], "--campaign-out") == 0 && has_value) {
      campaign_mode = true;
      campaign_out = argv[++i];
    } else if (std::strcmp(argv[i], "--campaign-replay") == 0 && has_value) {
      campaign_mode = true;
      campaign_replay = std::strtoll(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep_mode = true;
    } else if (std::strcmp(argv[i], "--sweep-out") == 0 && has_value) {
      sweep_mode = true;
      sweep_out = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-cache") == 0 && has_value) {
      sweep_mode = true;
      sweep_cache = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-no-cache") == 0) {
      sweep_mode = true;
      sweep_no_cache = true;
    } else if (std::strcmp(argv[i], "--sweep-shard") == 0 && has_value) {
      sweep_mode = true;
      unsigned long long idx = 0;
      unsigned long long count = 0;
      if (std::sscanf(argv[++i], "%llu/%llu", &idx, &count) != 2 ||
          count == 0 || idx >= count) {
        std::cerr << "axihc: --sweep-shard wants i/N with i < N, got '"
                  << argv[i] << "'\n";
        return 2;
      }
      sweep_shard_index = static_cast<std::size_t>(idx);
      sweep_shard_count = static_cast<std::size_t>(count);
    } else if (std::strcmp(argv[i], "--sweep-deterministic") == 0) {
      sweep_mode = true;
      sweep_deterministic = true;
    } else if (std::strcmp(argv[i], "--sweep-check") == 0 && has_value) {
      sweep_mode = true;
      sweep_check = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-report") == 0 && has_value) {
      sweep_report = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-report-json") == 0 &&
               has_value) {
      sweep_report_json = argv[++i];
    } else if (std::strcmp(argv[i], "--config-digest") == 0) {
      config_digest_mode = true;
    } else if (std::strcmp(argv[i], "--config-canonical") == 0) {
      config_canonical_mode = true;
    } else if (std::strcmp(argv[i], "--latency-audit") == 0) {
      latency_audit = true;
    } else if (std::strcmp(argv[i], "--flight-out") == 0 && has_value) {
      latency_audit = true;
      flight_out = argv[++i];
    } else if (std::strcmp(argv[i], "--backend") == 0 && has_value) {
      if (!axihc::parse_backend(argv[++i], backend)) {
        std::cerr << "axihc: unknown backend '" << argv[i]
                  << "' (scalar|sse2|avx2|auto)\n";
        return 2;
      }
      backend_flag = true;
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      if (!axihc::parse_backend(argv[i] + 10, backend)) {
        std::cerr << "axihc: unknown backend '" << (argv[i] + 10)
                  << "' (scalar|sse2|avx2|auto)\n";
        return 2;
      }
      backend_flag = true;
    } else if (std::strcmp(argv[i], "--auto-tune") == 0) {
      auto_tune = true;
    }
  }

  std::ifstream file(argv[1]);
  if (!file) {
    std::cerr << "axihc: cannot open '" << argv[1] << "'\n";
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();

  try {
    if (config_digest_mode || config_canonical_mode) {
      const axihc::IniFile ini = axihc::IniFile::parse(text.str());
      if (config_canonical_mode) std::cout << axihc::canonical_ini(ini);
      if (config_digest_mode) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "0x%016llx",
                      static_cast<unsigned long long>(
                          axihc::config_digest(ini)));
        std::cout << buf << "\n";
      }
      return 0;
    }

    if ((!sweep_report.empty() || !sweep_report_json.empty()) &&
        !sweep_mode) {
      // Standalone report mode: argv[1] is a saved row file, not a config.
      std::vector<std::string> lines;
      std::istringstream rows(text.str());
      for (std::string line; std::getline(rows, line);) {
        if (!line.empty()) lines.push_back(line);
      }
      if (!sweep_report.empty() &&
          !write_output(sweep_report, axihc::sweep_report_markdown(lines))) {
        return 1;
      }
      if (!sweep_report_json.empty() &&
          !write_output(sweep_report_json,
                        axihc::sweep_report_json(lines))) {
        return 1;
      }
      return 0;
    }

    if (sweep_mode) {
      const axihc::IniFile ini = axihc::IniFile::parse(text.str());
      axihc::SweepOptions opts;
      if (!sweep_no_cache) {
        // Default cache next to the spec file, so re-running the same
        // command line hits it without any extra flags.
        opts.cache_dir = sweep_cache.empty()
                             ? std::string(argv[1]) + ".cache"
                             : sweep_cache;
      }
      opts.shard_index = sweep_shard_index;
      opts.shard_count = sweep_shard_count;
      opts.deterministic = sweep_deterministic;

      std::ofstream out_file;
      if (!sweep_out.empty()) {
        out_file.open(sweep_out);
        if (!out_file) {
          std::cerr << "axihc: cannot write '" << sweep_out << "'\n";
          return 1;
        }
        opts.out = &out_file;
      } else {
        opts.out = &std::cout;
      }

      const axihc::SweepSummary summary = axihc::run_sweep(ini, opts);
      std::cerr << "axihc: sweep '" << summary.name << "': "
                << summary.cells << " cells";
      if (sweep_shard_count > 1) {
        std::cerr << " (" << summary.shard_cells << " in shard "
                  << sweep_shard_index << "/" << sweep_shard_count << ")";
      }
      std::cerr << ", " << summary.executed << " executed, "
                << summary.cache_hits << " cache hits";
      if (summary.disproved != 0) {
        std::cerr << ", " << summary.disproved << " statically disproved";
      }
      if (summary.errors != 0) {
        std::cerr << ", " << summary.errors << " config errors";
      }
      std::cerr << "\n";
      if (!sweep_out.empty()) {
        std::cerr << "axihc: wrote sweep rows to " << sweep_out << "\n";
      }

      if (!sweep_report.empty() &&
          !write_output(sweep_report,
                        axihc::sweep_report_markdown(summary.lines))) {
        return 1;
      }
      if (!sweep_report_json.empty() &&
          !write_output(sweep_report_json,
                        axihc::sweep_report_json(summary.lines))) {
        return 1;
      }

      if (!sweep_check.empty()) {
        std::ifstream pins(sweep_check);
        if (!pins) {
          std::cerr << "axihc: cannot open '" << sweep_check << "'\n";
          return 1;
        }
        std::ostringstream pins_text;
        pins_text << pins.rdbuf();
        const std::size_t mismatches =
            axihc::check_pins(summary.lines, pins_text.str(), std::cerr);
        if (mismatches != 0) {
          std::cerr << "axihc: " << mismatches
                    << " cell(s) diverged from " << sweep_check << "\n";
          return 1;
        }
        std::cerr << "axihc: all pinned cells match " << sweep_check << "\n";
      }
      return 0;
    }

    if (campaign_mode) {
      const axihc::IniFile ini = axihc::IniFile::parse(text.str());
      if (campaign_replay >= 0) {
        std::cout << axihc::campaign_replay_ini(
            ini, static_cast<std::uint64_t>(campaign_replay));
        return 0;
      }
      const axihc::CampaignOutput out = axihc::run_campaign(ini);
      std::ofstream out_file;
      if (!campaign_out.empty()) {
        out_file.open(campaign_out);
        if (!out_file) {
          std::cerr << "axihc: cannot write '" << campaign_out << "'\n";
          return 1;
        }
      }
      std::ostream& os = campaign_out.empty() ? std::cout : out_file;
      for (const std::string& line : out.lines) os << line << "\n";
      std::cerr << "axihc: campaign: " << (out.lines.size() - 1)
                << " runs, " << out.total_recoveries << " recoveries, "
                << out.total_escalations << " escalations, "
                << out.non_converged << " non-converged, "
                << out.conservation_violations
                << " budget-conservation violations, "
                << out.total_bound_violations << " WCLA bound violations\n";
      if (!campaign_out.empty()) {
        std::cerr << "axihc: wrote campaign results to " << campaign_out
                  << "\n";
      }
      return out.ok() ? 0 : 1;
    }

    auto system = axihc::build_system(text.str());

    if (prove_mode) {
      const axihc::ProveReport proof = system->prove();
      std::cout << "axihc-prove: " << argv[1] << "\n";
      proof.write_text(std::cout);
      if (!prove_json.empty()) {
        std::ofstream out(prove_json);
        if (!out) {
          std::cerr << "axihc: cannot write '" << prove_json << "'\n";
          return 1;
        }
        // The certificate itself is code-version-free (pure function of
        // the elaborated system); the wrapper adds the digest sweeps cache
        // certificates under, so an exported file can be matched against
        // cache entries.
        out << "{\"code\":\"" << axihc::code_version()
            << "\",\"certificate\":" << proof.certificate_json() << "}\n";
        std::cerr << "axihc: wrote prove certificate to " << prove_json
                  << "\n";
      }
      return proof.disproved() ? 1 : 0;
    }

    // Sweep-kernel backend: --auto-tune micro-probes the candidates on this
    // host and picks the fastest; otherwise the request (default: auto =
    // widest supported) goes through the resolve chain, which also honours
    // the AXIHC_FORCE_BACKEND environment override. Results are
    // bit-identical on every backend — only wall time changes.
    if (auto_tune) {
      std::string note;
      backend = axihc::auto_tune_backend(&note);
      std::cerr << "axihc: " << note << "\n";
      backend_flag = true;
    }
    system->soc().sim().set_backend(backend);
    if (backend_flag || std::getenv("AXIHC_FORCE_BACKEND") != nullptr) {
      std::cerr << "axihc: "
                << system->soc().sim().backend_policy().report() << "\n";
    }

    if (lint_mode) {
      if (axihc::kPhaseCheckAvailable) {
        // Populate the access ledger: short armed run on the serial kernel
        // (the checks cover exactly what ran, and serial keeps the ledger
        // race-free even for the broken systems lint exists to catch).
        axihc::PhaseCheck::arm(true);
        system->soc().sim().set_threads(0);
        system->run(override_cycles != 0 ? override_cycles : 20000);
      }
      const axihc::LintReport report = system->lint();
      report.write_text(std::cout);
      if (!lint_json.empty()) {
        std::ofstream out(lint_json);
        if (!out) {
          std::cerr << "axihc: cannot write '" << lint_json << "'\n";
          return 1;
        }
        report.write_json(out);
        std::cerr << "axihc: wrote lint report to " << lint_json << "\n";
      }
      const bool failed =
          report.has_errors() ||
          (lint_strict &&
           report.count(axihc::LintSeverity::kWarning) != 0);
      return failed ? 1 : 0;
    }

    // CLI flags layer on top of the [observe] section: an output file turns
    // the corresponding half on, --sample-every overrides the period.
    axihc::ObserveConfig& obs = system->observe_config();
    if (!trace_out.empty()) obs.trace = true;
    if (!metrics_out.empty()) obs.metrics = true;
    if (sample_every != 0) obs.sample_every = sample_every;
    if (latency_audit) obs.latency_audit = true;
    // Kernel fast-forward is on by default and bit-exact; --no-fast-forward
    // forces the naive one-tick-per-cycle loop (kernel debugging aid).
    system->soc().sim().set_fast_forward(fast_forward);
    // --threads N (>= 2) selects the island-partitioned parallel tick
    // engine, bit-identical to the serial kernel; 0/1 and
    // --no-parallel-tick run the serial kernel.
    system->soc().sim().set_threads(threads);
    system->soc().sim().set_parallel_tick(parallel_tick);

    system->run(override_cycles);
    std::cout << system->report();
    const axihc::LatencyAudit* audit = system->latency_audit();
    if (audit != nullptr) {
      std::cout << "\n";
      audit->write_rollup(std::cout);
    }
    if (!flight_out.empty() && audit != nullptr) {
      std::ofstream out(flight_out);
      if (!out) {
        std::cerr << "axihc: cannot write '" << flight_out << "'\n";
        return 1;
      }
      audit->flight_recorder().write_jsonl(out);
      std::cerr << "axihc: wrote flight records to " << flight_out << "\n";
    }
    if (print_digest) {
      // Machine-checkable bit-identity: equal configs must print equal
      // digests at any --threads / fast-forward setting.
      std::cout << "state_digest: " << std::hex
                << system->soc().sim().state_digest() << std::dec << "\n";
    }

    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        std::cerr << "axihc: cannot write '" << trace_out << "'\n";
        return 1;
      }
      system->write_trace(out);
      std::cerr << "axihc: wrote trace to " << trace_out << "\n";
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::cerr << "axihc: cannot write '" << metrics_out << "'\n";
        return 1;
      }
      system->write_metrics_csv(out);
      std::cerr << "axihc: wrote metrics to " << metrics_out << "\n";
    }
    if (audit != nullptr && audit->bound_violations() != 0) {
      std::cerr << "axihc: " << audit->bound_violations()
                << " transaction(s) exceeded the analytic WCLA bound\n";
      return 1;
    }
  } catch (const axihc::ModelError& e) {
    std::cerr << "axihc: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
