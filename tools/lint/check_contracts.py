#!/usr/bin/env python3
"""Source-level contract scanner for the axihc component model (lint layer 3).

AST-free (regex + brace matching) checks over src/**/*.hpp + the matching
.cpp files, complementing the runtime access ledger (which only audits code
that actually executed) with whole-source coverage:

  explicit-tick-scope   every class deriving (transitively) from Component
                        must override tick_scope() somewhere in its
                        inheritance chain below Component itself. The default
                        is a safe kSerial, but an *implicit* default means
                        nobody decided — the parallel-tick contract requires
                        an explicit, auditable answer.

  endpoint-declaration  every Component subclass that owns TimingChannel or
                        AxiLink members must call add_endpoint()/
                        attach_endpoint() somewhere in its header or
                        implementation file, so the island partitioner sees
                        the edges to its channels.

  pool-adoption         every Component subclass that owns PooledWords /
                        PooledCycle members (sim/soa_pool.hpp) must override
                        adopt_hot_state() and call .adopt() somewhere in its
                        header or implementation file — an unadopted handle
                        silently falls back to inline storage, so the slot
                        never gets the owner declaration axihc-lint's
                        undeclared-pool-slot check and the AXIHC_PHASE_CHECK
                        write ledger audit.

Suppressions (put the comment inside the class body):
  // contracts: allow-default-scope   -- the implicit kSerial is intentional
  // contracts: allow-no-endpoint     -- channels are private plumbing that
                                         no island partition needs to see
  // contracts: allow-inline-pool     -- the handle intentionally stays on
                                         inline storage (never simulated
                                         under a Simulator-owned pool)

Exit code: number of violations (0 = clean). Run from anywhere:
  python3 tools/lint/check_contracts.py [--root <repo>]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(?::\s*([^{;]+?))?\s*\{",
    re.DOTALL,
)
BASE_RE = re.compile(r"(?:public|protected|private|virtual|\s)*([A-Za-z_]\w*)")
# An owned channel member: TimingChannel<...> / AxiLink by value, or wrapped
# in unique_ptr / containers. Pointer/reference members are foreign state.
OWNED_CHANNEL_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?:TimingChannel\s*<[^;]*>\s*(?!\s*[*&])[A-Za-z_]\w*\s*[;{=]"
    r"|AxiLink\s+[A-Za-z_]\w*\s*[;{=]"
    r"|std::(?:vector|array|deque)\s*<\s*(?:std::unique_ptr\s*<\s*)?"
    r"(?:TimingChannel\s*<[^;]*?>|AxiLink)\s*>?\s*>\s*[A-Za-z_]\w*\s*[;{=]"
    r"|std::unique_ptr\s*<\s*(?:TimingChannel\s*<[^;]*?>|AxiLink)\s*>\s*"
    r"[A-Za-z_]\w*\s*[;{=])"
)
# An owned hot-state pool handle (sim/soa_pool.hpp): by value only — a
# pointer/reference is a view of someone else's slot.
OWNED_POOLED_RE = re.compile(
    r"^\s*(?:mutable\s+)?Pooled(?:Words|Cycle)\s+[A-Za-z_]\w*\s*[;{=]"
)


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments (keeps line structure for matching)."""
    text = re.sub(r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group(0)),
                  text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def class_bodies(text: str):
    """Yields (name, bases, body) for each top-ish class in `text`.

    `text` must be comment-stripped; bodies are extracted by brace matching
    from the declaration's opening brace. Nested classes are reported too
    (harmless: they rarely derive from Component).
    """
    for m in CLASS_RE.finditer(text):
        name, base_list = m.group(1), m.group(2) or ""
        bases = []
        for chunk in base_list.split(","):
            bm = BASE_RE.match(chunk.strip())
            if bm:
                bases.append(bm.group(1))
        depth = 0
        start = m.end() - 1
        for i in range(start, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    yield name, bases, text[start:i + 1]
                    break


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up)")
    args = parser.parse_args()
    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parents[2]
    src = root / "src"
    if not src.is_dir():
        print(f"check_contracts: no src/ under {root}", file=sys.stderr)
        return 1

    headers = sorted(src.rglob("*.hpp"))
    raw_texts = {p: p.read_text(encoding="utf-8") for p in headers}

    # Pass 1: the class graph and per-class facts.
    bases_of: dict[str, list[str]] = {}
    body_of: dict[str, str] = {}
    file_of: dict[str, pathlib.Path] = {}
    for path, raw in raw_texts.items():
        for name, bases, body in class_bodies(strip_comments(raw)):
            if name in bases_of:
                continue  # first definition wins; duplicates are rare
            bases_of[name] = bases
            body_of[name] = body
            file_of[name] = path

    def derives_from_component(name: str, seen=None) -> bool:
        if seen is None:
            seen = set()
        if name in seen:
            return False
        seen.add(name)
        for b in bases_of.get(name, []):
            if b == "Component" or derives_from_component(b, seen):
                return True
        return False

    def chain_declares_tick_scope(name: str) -> bool:
        if "tick_scope" in body_of.get(name, ""):
            return True
        return any(b != "Component" and chain_declares_tick_scope(b)
                   for b in bases_of.get(name, []))

    def raw_body(name: str) -> str:
        """The class body with comments intact (suppression markers)."""
        raw = raw_texts[file_of[name]]
        for n, _, body in class_bodies(raw):
            if n == name:
                return body
        return ""

    def impl_text(name: str) -> str:
        """Header text + the sibling .cpp of the class's header, if any."""
        path = file_of[name]
        text = raw_texts[path]
        cpp = path.with_suffix(".cpp")
        if cpp.exists():
            text += cpp.read_text(encoding="utf-8")
        return text

    violations = 0
    components = sorted(n for n in bases_of if derives_from_component(n))
    for name in components:
        rel = file_of[name].relative_to(root)
        marker_body = raw_body(name)

        if not chain_declares_tick_scope(name):
            if "contracts: allow-default-scope" not in marker_body:
                violations += 1
                print(f"{rel}: class {name}: no tick_scope() override "
                      f"anywhere in its inheritance chain — state the "
                      f"parallel-tick contract explicitly (kSerial is fine, "
                      f"implicit is not)")

        owns_channels = any(OWNED_CHANNEL_RE.match(line)
                            for line in body_of[name].splitlines())
        if owns_channels:
            text = impl_text(name)
            if ("add_endpoint" not in text and "attach_endpoint" not in text
                    and "contracts: allow-no-endpoint" not in marker_body):
                violations += 1
                print(f"{rel}: class {name}: owns TimingChannel/AxiLink "
                      f"members but never calls add_endpoint()/"
                      f"attach_endpoint() — the island partitioner cannot "
                      f"see its channel edges")

        owns_pooled = any(OWNED_POOLED_RE.match(line)
                          for line in body_of[name].splitlines())
        if owns_pooled:
            text = impl_text(name)
            if (("adopt_hot_state" not in text or ".adopt(" not in text)
                    and "contracts: allow-inline-pool" not in marker_body):
                violations += 1
                print(f"{rel}: class {name}: owns PooledWords/PooledCycle "
                      f"members but never adopts them into the hot-state "
                      f"pool (override adopt_hot_state() and call .adopt()) "
                      f"— the slots stay inline and unauditable")

    print(f"check_contracts: {len(components)} Component subclass(es), "
          f"{violations} violation(s)")
    return violations


if __name__ == "__main__":
    sys.exit(main())
