#!/usr/bin/env python3
"""Source-level contract scanner for the axihc component model (lint layer 3).

Checks over src/**/*.hpp + the matching .cpp files, complementing the
runtime access ledger (which only audits code that actually executed) with
whole-source coverage:

  explicit-tick-scope   every class deriving (transitively) from Component
                        must override tick_scope() somewhere in its
                        inheritance chain below Component itself. The default
                        is a safe kSerial, but an *implicit* default means
                        nobody decided — the parallel-tick contract requires
                        an explicit, auditable answer.

  endpoint-declaration  every Component subclass that owns TimingChannel or
                        AxiLink members must call add_endpoint()/
                        attach_endpoint() somewhere in its header or
                        implementation file, so the island partitioner sees
                        the edges to its channels.

  pool-adoption         every Component subclass that owns PooledWords /
                        PooledCycle members (sim/soa_pool.hpp) must override
                        adopt_hot_state() and call .adopt() somewhere in its
                        header or implementation file — an unadopted handle
                        silently falls back to inline storage, so the slot
                        never gets the owner declaration axihc-lint's
                        undeclared-pool-slot check and the AXIHC_PHASE_CHECK
                        write ledger audit.

Two fact collectors feed one shared checker:

  --mode ast     libclang (python `clang` bindings): the class graph, base
                 specifiers and member types come from a real parse, so
                 macro-heavy or unusually-formatted declarations cannot slip
                 past the matcher.
  --mode regex   the dependency-free fallback: regex + brace matching.
  --mode auto    (default) ast when the clang bindings and a loadable
                 libclang are available, regex otherwise — so the check is
                 never skipped just because the toolchain is minimal.

Suppressions (put the comment inside the class body):
  // contracts: allow-default-scope   -- the implicit kSerial is intentional
  // contracts: allow-no-endpoint     -- channels are private plumbing that
                                         no island partition needs to see
  // contracts: allow-inline-pool     -- the handle intentionally stays on
                                         inline storage (never simulated
                                         under a Simulator-owned pool)

Exit code: number of violations (0 = clean). Run from anywhere:
  python3 tools/lint/check_contracts.py [--root <repo>] [--mode auto|ast|regex]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(?::\s*([^{;]+?))?\s*\{",
    re.DOTALL,
)
BASE_RE = re.compile(r"(?:public|protected|private|virtual|\s)*([A-Za-z_]\w*)")
# An owned channel member: TimingChannel<...> / AxiLink by value, or wrapped
# in unique_ptr / containers. Pointer/reference members are foreign state.
OWNED_CHANNEL_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?:TimingChannel\s*<[^;]*>\s*(?!\s*[*&])[A-Za-z_]\w*\s*[;{=]"
    r"|AxiLink\s+[A-Za-z_]\w*\s*[;{=]"
    r"|std::(?:vector|array|deque)\s*<\s*(?:std::unique_ptr\s*<\s*)?"
    r"(?:TimingChannel\s*<[^;]*?>|AxiLink)\s*>?\s*>\s*[A-Za-z_]\w*\s*[;{=]"
    r"|std::unique_ptr\s*<\s*(?:TimingChannel\s*<[^;]*?>|AxiLink)\s*>\s*"
    r"[A-Za-z_]\w*\s*[;{=])"
)
# An owned hot-state pool handle (sim/soa_pool.hpp): by value only — a
# pointer/reference is a view of someone else's slot.
OWNED_POOLED_RE = re.compile(
    r"^\s*(?:mutable\s+)?Pooled(?:Words|Cycle)\s+[A-Za-z_]\w*\s*[;{=]"
)
# Member-type names as libclang renders them (qualified or not).
AST_CHANNEL_TYPE_RE = re.compile(
    r"\b(?:axihc::)?(?:TimingChannel\s*<|AxiLink\b)")
AST_POOLED_TYPE_RE = re.compile(r"\b(?:axihc::)?Pooled(?:Words|Cycle)\b")


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments (keeps line structure for matching)."""
    text = re.sub(r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group(0)),
                  text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def class_bodies(text: str):
    """Yields (name, bases, body) for each top-ish class in `text`.

    `text` must be comment-stripped; bodies are extracted by brace matching
    from the declaration's opening brace. Nested classes are reported too
    (harmless: they rarely derive from Component).
    """
    for m in CLASS_RE.finditer(text):
        name, base_list = m.group(1), m.group(2) or ""
        bases = []
        for chunk in base_list.split(","):
            bm = BASE_RE.match(chunk.strip())
            if bm:
                bases.append(bm.group(1))
        depth = 0
        start = m.end() - 1
        for i in range(start, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    yield name, bases, text[start:i + 1]
                    break


class ClassFacts:
    """What the checker needs to know about one class, however collected."""

    def __init__(self, name: str, path: pathlib.Path):
        self.name = name
        self.path = path
        self.bases: list[str] = []
        self.declares_tick_scope = False
        self.owns_channels = False
        self.owns_pooled = False


def collect_regex(src: pathlib.Path) -> dict[str, ClassFacts]:
    """The dependency-free collector: regex + brace matching."""
    facts: dict[str, ClassFacts] = {}
    for path in sorted(src.rglob("*.hpp")):
        raw = path.read_text(encoding="utf-8")
        for name, bases, body in class_bodies(strip_comments(raw)):
            if name in facts:
                continue  # first definition wins; duplicates are rare
            f = ClassFacts(name, path)
            f.bases = bases
            f.declares_tick_scope = "tick_scope" in body
            f.owns_channels = any(OWNED_CHANNEL_RE.match(line)
                                  for line in body.splitlines())
            f.owns_pooled = any(OWNED_POOLED_RE.match(line)
                                for line in body.splitlines())
            facts[name] = f
    return facts


def load_libclang():
    """Returns a working clang.cindex module, or None with a reason."""
    try:
        import clang.cindex as cindex  # noqa: PLC0415 (optional dependency)
    except ImportError as e:
        return None, f"python clang bindings unavailable ({e})"
    try:
        cindex.Index.create()
        return cindex, None
    except Exception as e:  # libclang .so missing / version mismatch
        return None, f"libclang not loadable ({e})"


def collect_ast(src: pathlib.Path, cindex) -> dict[str, ClassFacts]:
    """The libclang collector: real base specifiers and member types.

    Each header parses standalone with the repo include path; unresolved
    includes degrade individual types to `int` but never hide a class
    definition, so the class graph stays complete.
    """
    index = cindex.Index.create()
    args = ["-x", "c++", "-std=c++17", f"-I{src}", "-fsyntax-only"]
    facts: dict[str, ClassFacts] = {}

    def visit(cursor, path):
        for child in cursor.get_children():
            kind = child.kind
            if kind in (cindex.CursorKind.NAMESPACE,
                        cindex.CursorKind.UNEXPOSED_DECL,
                        cindex.CursorKind.LINKAGE_SPEC):
                visit(child, path)
                continue
            if kind not in (cindex.CursorKind.CLASS_DECL,
                            cindex.CursorKind.STRUCT_DECL,
                            cindex.CursorKind.CLASS_TEMPLATE):
                continue
            if not child.is_definition() or not child.spelling:
                continue
            name = child.spelling
            if name in facts:
                visit(child, path)  # still recurse for nested classes
                continue
            f = ClassFacts(name, path)
            for node in child.get_children():
                nk = node.kind
                if nk == cindex.CursorKind.CXX_BASE_SPECIFIER:
                    base = node.type.spelling.split("<")[0]
                    f.bases.append(base.split("::")[-1].strip())
                elif nk == cindex.CursorKind.CXX_METHOD and \
                        node.spelling == "tick_scope":
                    f.declares_tick_scope = True
                elif nk == cindex.CursorKind.FIELD_DECL:
                    t = node.type.spelling
                    if "*" in t or "&" in t:
                        continue  # views of foreign state
                    if AST_CHANNEL_TYPE_RE.search(t):
                        f.owns_channels = True
                    if AST_POOLED_TYPE_RE.search(t):
                        f.owns_pooled = True
            facts[name] = f
            visit(child, path)  # nested classes

    for path in sorted(src.rglob("*.hpp")):
        tu = index.parse(str(path), args=args)
        visit(tu.cursor, path)
    return facts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up)")
    parser.add_argument("--mode", choices=("auto", "ast", "regex"),
                        default="auto",
                        help="fact collector (auto: ast if libclang works)")
    args = parser.parse_args()
    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parents[2]
    src = root / "src"
    if not src.is_dir():
        print(f"check_contracts: no src/ under {root}", file=sys.stderr)
        return 1

    mode = args.mode
    cindex = None
    if mode in ("auto", "ast"):
        cindex, why = load_libclang()
        if cindex is None:
            # Graceful fallback: an explicit --mode ast degrades with a
            # warning rather than skipping the check — a missing optional
            # toolchain must never turn the contract scan off.
            print(f"check_contracts: AST mode unavailable: {why}; "
                  f"falling back to regex", file=sys.stderr)
            mode = "regex"
        else:
            mode = "ast"

    if mode == "ast":
        facts = collect_ast(src, cindex)
    else:
        facts = collect_regex(src)

    # Suppression markers and call-site search work on raw text in both
    # modes (a call site is a textual fact; no parse needed to find it).
    raw_texts = {p: p.read_text(encoding="utf-8")
                 for p in sorted(src.rglob("*.hpp"))}

    def derives_from_component(name: str, seen=None) -> bool:
        if seen is None:
            seen = set()
        if name in seen:
            return False
        seen.add(name)
        for b in facts[name].bases if name in facts else []:
            if b == "Component" or derives_from_component(b, seen):
                return True
        return False

    def chain_declares_tick_scope(name: str) -> bool:
        if name not in facts:
            return False
        if facts[name].declares_tick_scope:
            return True
        return any(b != "Component" and chain_declares_tick_scope(b)
                   for b in facts[name].bases)

    def raw_body(name: str) -> str:
        """The class body with comments intact (suppression markers)."""
        raw = raw_texts.get(facts[name].path, "")
        for n, _, body in class_bodies(raw):
            if n == name:
                return body
        return ""

    def impl_text(name: str) -> str:
        """Header text + the sibling .cpp of the class's header, if any."""
        path = facts[name].path
        text = raw_texts.get(path, "")
        cpp = path.with_suffix(".cpp")
        if cpp.exists():
            text += cpp.read_text(encoding="utf-8")
        return text

    violations = 0
    components = sorted(n for n in facts if derives_from_component(n))
    for name in components:
        rel = facts[name].path.relative_to(root)
        marker_body = raw_body(name)

        if not chain_declares_tick_scope(name):
            if "contracts: allow-default-scope" not in marker_body:
                violations += 1
                print(f"{rel}: class {name}: no tick_scope() override "
                      f"anywhere in its inheritance chain — state the "
                      f"parallel-tick contract explicitly (kSerial is fine, "
                      f"implicit is not)")

        if facts[name].owns_channels:
            text = impl_text(name)
            if ("add_endpoint" not in text and "attach_endpoint" not in text
                    and "contracts: allow-no-endpoint" not in marker_body):
                violations += 1
                print(f"{rel}: class {name}: owns TimingChannel/AxiLink "
                      f"members but never calls add_endpoint()/"
                      f"attach_endpoint() — the island partitioner cannot "
                      f"see its channel edges")

        if facts[name].owns_pooled:
            text = impl_text(name)
            if (("adopt_hot_state" not in text or ".adopt(" not in text)
                    and "contracts: allow-inline-pool" not in marker_body):
                violations += 1
                print(f"{rel}: class {name}: owns PooledWords/PooledCycle "
                      f"members but never adopts them into the hot-state "
                      f"pool (override adopt_hot_state() and call .adopt()) "
                      f"— the slots stay inline and unauditable")

    print(f"check_contracts ({mode}): {len(components)} Component "
          f"subclass(es), {violations} violation(s)")
    return violations


if __name__ == "__main__":
    sys.exit(main())
