#!/usr/bin/env python3
"""clang-tidy runner for the axihc static-analysis job (lint layer 3).

Runs clang-tidy (profile: the repo's .clang-tidy) over every src/ source in
compile_commands.json and diffs the warnings against the checked-in baseline
(tools/lint/clang_tidy_baseline.txt). Only NEW warnings fail the run, so the
wall can be adopted incrementally: existing debt is frozen in the baseline
and burned down over time, while regressions are caught immediately.

  python3 tools/lint/run_clang_tidy.py --build build [--update-baseline]

Exit codes: 0 clean (or clang-tidy unavailable — the tool degrades to a
notice so uninstrumented dev machines aren't blocked; CI installs it),
1 new warnings, 2 setup error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import shutil
import subprocess
import sys

# warning line:  /abs/path/file.cpp:12:3: warning: message [check-name]
WARNING_RE = re.compile(r"^(.*?):(\d+):\d+: warning: (.*?) (\[[\w.,-]+\])$")


def normalize(path: str, root: pathlib.Path) -> str:
    p = pathlib.Path(path)
    try:
        return str(p.resolve().relative_to(root))
    except ValueError:
        return str(p)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build",
                        help="build dir containing compile_commands.json")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with current findings")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args()

    root = pathlib.Path(__file__).resolve().parents[2]
    baseline_path = root / "tools" / "lint" / "clang_tidy_baseline.txt"

    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("run_clang_tidy: clang-tidy not installed; skipping "
              "(the CI static-analysis job runs it)")
        return 0

    ccj = root / args.build / "compile_commands.json"
    if not ccj.exists():
        print(f"run_clang_tidy: {ccj} not found — configure with CMake "
              f"first (compile_commands export is always on)",
              file=sys.stderr)
        return 2

    sources = sorted(
        {e["file"] for e in json.loads(ccj.read_text())
         if "/src/" in e["file"] and e["file"].endswith(".cpp")})
    print(f"run_clang_tidy: {len(sources)} src/ files, profile "
          f"{root / '.clang-tidy'}")

    findings: set[str] = set()
    for i in range(0, len(sources), args.jobs):
        batch = sources[i:i + args.jobs]
        procs = [subprocess.Popen(
            [tidy, "-p", str(ccj.parent), "--quiet", s],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
            for s in batch]
        for proc in procs:
            out, _ = proc.communicate()
            for line in out.splitlines():
                m = WARNING_RE.match(line)
                if m:
                    # Baseline entries carry no line numbers: adding a line
                    # above old debt must not read as a regression.
                    findings.add(f"{normalize(m.group(1), root)}: "
                                 f"{m.group(3)} {m.group(4)}")

    if args.update_baseline:
        baseline_path.write_text(
            "\n".join(sorted(findings)) + ("\n" if findings else ""))
        print(f"run_clang_tidy: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    baseline = set()
    if baseline_path.exists():
        baseline = {l for l in baseline_path.read_text().splitlines()
                    if l and not l.startswith("#")}

    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)
    for f in new:
        print(f"NEW: {f}")
    if fixed:
        print(f"run_clang_tidy: {len(fixed)} baseline entr(ies) no longer "
              f"fire — consider --update-baseline to lock in the progress")
    print(f"run_clang_tidy: {len(findings)} finding(s), "
          f"{len(new)} new vs baseline")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
