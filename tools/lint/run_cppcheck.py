#!/usr/bin/env python3
"""cppcheck runner for the axihc static-analysis job (lint layer 3).

Runs cppcheck (warning/performance/portability profiles) over src/ and diffs
the findings against the checked-in baseline
(tools/lint/cppcheck_baseline.txt). Only NEW findings fail the run — the
same freeze-the-debt model as run_clang_tidy.py: existing findings are
locked in the baseline and burned down over time, while regressions are
caught immediately.

Baseline entries carry no line numbers (adding a line above old debt must
not read as a regression): `path: (severity) message [id]`.

  python3 tools/lint/run_cppcheck.py [--update-baseline]

Exit codes: 0 clean (or cppcheck unavailable — the tool degrades to a
notice so uninstrumented dev machines aren't blocked; CI installs it),
1 new findings, 2 setup error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import subprocess
import sys

# finding line (via --template):  path|line|severity|id|message
FINDING_RE = re.compile(r"^(.*?)\|(\d+)\|(\w+)\|([\w-]+)\|(.*)$")

# Noise that a whole-program checker cannot decide without the full build
# graph; the compiler warning wall (-Wall -Wextra, AXIHC_WERROR in CI) and
# clang-tidy already cover the real versions of these.
SUPPRESS = [
    "missingIncludeSystem",   # no stdlib headers on the cppcheck path
    "unusedFunction",         # library entry points look unused per-TU
    "unmatchedSuppression",
]


def normalize(path: str, root: pathlib.Path) -> str:
    p = pathlib.Path(path)
    try:
        return str(p.resolve().relative_to(root))
    except ValueError:
        return str(p)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with current findings")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args()

    root = pathlib.Path(__file__).resolve().parents[2]
    baseline_path = root / "tools" / "lint" / "cppcheck_baseline.txt"

    cppcheck = shutil.which("cppcheck")
    if cppcheck is None:
        print("run_cppcheck: cppcheck not installed; skipping "
              "(the CI static-analysis job runs it)")
        return 0

    src = root / "src"
    if not src.is_dir():
        print(f"run_cppcheck: no src/ under {root}", file=sys.stderr)
        return 2

    cmd = [
        cppcheck,
        "--enable=warning,performance,portability",
        "--std=c++17",
        "--inline-suppr",
        f"-j{args.jobs}",
        f"-I{src}",
        "--template={file}|{line}|{severity}|{id}|{message}",
        "--quiet",
    ]
    cmd += [f"--suppress={s}" for s in SUPPRESS]
    cmd.append(str(src))
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)

    findings: set[str] = set()
    for line in proc.stderr.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add(f"{normalize(m.group(1), root)}: ({m.group(3)}) "
                         f"{m.group(5)} [{m.group(4)}]")

    if args.update_baseline:
        baseline_path.write_text(
            "\n".join(sorted(findings)) + ("\n" if findings else ""))
        print(f"run_cppcheck: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    baseline = set()
    if baseline_path.exists():
        baseline = {l for l in baseline_path.read_text().splitlines()
                    if l and not l.startswith("#")}

    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)
    for f in new:
        print(f"NEW: {f}")
    if fixed:
        print(f"run_cppcheck: {len(fixed)} baseline entr(ies) no longer "
              f"fire — consider --update-baseline to lock in the progress")
    print(f"run_cppcheck: {len(findings)} finding(s), "
          f"{len(new)} new vs baseline")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
