#include "interconnect/interconnect.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

Interconnect::Interconnect(std::string name, std::uint32_t num_ports,
                           AxiLinkConfig port_link_cfg,
                           AxiLinkConfig master_link_cfg)
    : Component(std::move(name)), counters_(num_ports) {
  AXIHC_CHECK_MSG(num_ports >= 1, "interconnect needs at least one port");
  port_links_.reserve(num_ports);
  for (std::uint32_t i = 0; i < num_ports; ++i) {
    port_links_.push_back(std::make_unique<AxiLink>(
        Component::name() + ".s" + std::to_string(i), port_link_cfg));
  }
  master_link_ = std::make_unique<AxiLink>(Component::name() + ".m",
                                           master_link_cfg);
  // The interconnect is an endpoint of every link it terminates, so the
  // island partition keeps it connected to all its masters and its slave.
  for (auto& link : port_links_) link->attach_endpoint(*this);
  master_link_->attach_endpoint(*this);
}

void Interconnect::append_digest(StateDigest& d) const {
  for (const PortCounters& c : counters_) {
    d.mix(c.ar_granted);
    d.mix(c.aw_granted);
    d.mix(c.r_beats);
    d.mix(c.w_beats);
    d.mix(c.b_resps);
  }
}

Interconnect::~Interconnect() = default;

AxiLink& Interconnect::port_link(PortIndex i) {
  AXIHC_CHECK(i < port_links_.size());
  return *port_links_[i];
}

const AxiLink& Interconnect::port_link(PortIndex i) const {
  AXIHC_CHECK(i < port_links_.size());
  return *port_links_[i];
}

void Interconnect::register_with(Simulator& sim) {
  for (auto& link : port_links_) link->register_with(sim);
  master_link_->register_with(sim);
  sim.add(*this);
}

const PortCounters& Interconnect::counters(PortIndex i) const {
  AXIHC_CHECK(i < counters_.size());
  return counters_[i];
}

PortCounters& Interconnect::mutable_counters(PortIndex i) {
  AXIHC_CHECK(i < counters_.size());
  return counters_[i];
}

}  // namespace axihc
