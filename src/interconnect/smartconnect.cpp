#include "interconnect/smartconnect.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace axihc {

SmartConnect::SmartConnect(std::string name, std::uint32_t num_ports,
                           SmartConnectConfig cfg)
    : Interconnect(std::move(name), num_ports, cfg.port_link_cfg,
                   cfg.master_link_cfg),
      cfg_(cfg),
      read_route_(cfg.max_outstanding_reads),
      w_pull_(cfg.max_outstanding_writes),
      b_route_(cfg.max_outstanding_writes) {
  AXIHC_CHECK(cfg_.grant_granularity >= 1);
}

void SmartConnect::reset() {
  rr_ar_ = rr_aw_ = 0;
  ar_grants_left_ = aw_grants_left_ = 0;
  ar_pipe_.clear();
  aw_pipe_.clear();
  r_pipe_.clear();
  w_pipe_.clear();
  b_pipe_.clear();
  read_route_.clear();
  w_pull_.clear();
  b_route_.clear();
  for (PortIndex i = 0; i < num_ports(); ++i) {
    mutable_counters(i) = PortCounters{};
  }
}

bool SmartConnect::arbitrate_addr(bool is_write, Cycle now) {
  PortIndex& rr = is_write ? rr_aw_ : rr_ar_;
  std::uint32_t& grants_left = is_write ? aw_grants_left_ : ar_grants_left_;

  auto pending = [&](PortIndex p) {
    auto& ch = is_write ? port_link(p).aw : port_link(p).ar;
    return ch.can_pop();
  };

  // Keep granting the current winner while it has queued requests and
  // granularity budget; otherwise rotate to the next requester.
  if (grants_left == 0 || !pending(rr)) {
    PortIndex candidate = rr;
    bool found = false;
    for (std::uint32_t i = 1; i <= num_ports(); ++i) {
      candidate = (rr + i) % num_ports();
      if (pending(candidate)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
    rr = candidate;
    grants_left = cfg_.grant_granularity;
  }

  // Route-memory capacity acts as the interconnect's outstanding limit.
  if (is_write) {
    if (w_pull_.full() || b_route_.full()) return false;
  } else {
    if (read_route_.full()) return false;
  }

  AxiLink& link = port_link(rr);
  if (is_write) {
    AddrReq req = link.aw.pop();
    w_pull_.push({rr, req.beats});
    b_route_.push(rr);
    aw_pipe_.push_back({now + cfg_.aw_extra_delay, req});
    ++mutable_counters(rr).aw_granted;
  } else {
    AddrReq req = link.ar.pop();
    read_route_.push({rr});
    ar_pipe_.push_back({now + cfg_.ar_extra_delay, req});
    ++mutable_counters(rr).ar_granted;
  }
  --grants_left;
  return true;
}

void SmartConnect::drain_pipes(Cycle now) {
  if (!ar_pipe_.empty() && ar_pipe_.front().ready_at <= now &&
      master_link().ar.can_push()) {
    master_link().ar.push(ar_pipe_.front().payload);
    ar_pipe_.pop_front();
  }
  if (!aw_pipe_.empty() && aw_pipe_.front().ready_at <= now &&
      master_link().aw.can_push()) {
    master_link().aw.push(aw_pipe_.front().payload);
    aw_pipe_.pop_front();
  }
  if (!w_pipe_.empty() && w_pipe_.front().ready_at <= now &&
      master_link().w.can_push()) {
    master_link().w.push(w_pipe_.front().payload);
    w_pipe_.pop_front();
  }
  // R exits toward the port recorded at AR grant time (in-order).
  if (!r_pipe_.empty() && r_pipe_.front().ready_at <= now) {
    AXIHC_CHECK_MSG(!read_route_.empty(),
                    name() << ": R data with no routing info");
    const PortIndex port = read_route_.front().port;
    auto& r_up = port_link(port).r;
    if (r_up.can_push()) {
      const RBeat beat = r_pipe_.front().payload;
      r_up.push(beat);
      r_pipe_.pop_front();
      ++mutable_counters(port).r_beats;
      if (beat.last) read_route_.pop();
    }
  }
  if (!b_pipe_.empty() && b_pipe_.front().ready_at <= now) {
    AXIHC_CHECK_MSG(!b_route_.empty(),
                    name() << ": B response with no routing info");
    const PortIndex port = b_route_.front();
    auto& b_up = port_link(port).b;
    if (b_up.can_push()) {
      b_up.push(b_pipe_.front().payload);
      b_pipe_.pop_front();
      ++mutable_counters(port).b_resps;
      b_route_.pop();
    }
  }
}

Cycle SmartConnect::next_activity(Cycle now) const {
  // Returning R/B to capture, or upstream requests/data to arbitrate/pull.
  if (master_link().r.can_pop() || master_link().b.can_pop()) return now;
  for (PortIndex i = 0; i < num_ports(); ++i) {
    const AxiLink& link = port_link(i);
    if (link.ar.can_pop() || link.aw.can_pop() || link.w.can_pop()) {
      return now;
    }
  }
  // Only pipeline stages remain: the next interesting cycle is the earliest
  // ready_at among the pipe heads (earlier ticks cannot move anything — the
  // world is frozen, so no new input appears and can_push headroom only
  // matters once a head is ready).
  Cycle next = kNoCycle;
  auto consider = [&](const auto& pipe) {
    if (pipe.empty()) return;
    const Cycle at = pipe.front().ready_at;
    next = std::min(next, at > now ? at : now);
  };
  consider(ar_pipe_);
  consider(aw_pipe_);
  consider(r_pipe_);
  consider(w_pipe_);
  consider(b_pipe_);
  return next;
}

void SmartConnect::tick(Cycle now) {
  // Capture returning R/B into the response pipelines first, so a zero-extra
  // delay stage can exit in the same tick (B achieves its 2-cycle total).
  if (master_link().r.can_pop()) {
    r_pipe_.push_back({now + cfg_.r_extra_delay, master_link().r.pop()});
  }
  if (master_link().b.can_pop()) {
    b_pipe_.push_back({now + cfg_.b_extra_delay, master_link().b.pop()});
  }

  // Address arbitration: at most one grant per address channel per cycle.
  arbitrate_addr(/*is_write=*/false, now);
  arbitrate_addr(/*is_write=*/true, now);

  // Pull one W beat per cycle from the port whose AW was granted first.
  if (!w_pull_.empty()) {
    auto& pull = w_pull_.front();
    auto& w_in = port_link(pull.port).w;
    if (w_in.can_pop()) {
      w_pipe_.push_back({now + cfg_.w_extra_delay, w_in.pop()});
      ++mutable_counters(pull.port).w_beats;
      AXIHC_CHECK(pull.beats > 0);
      --pull.beats;
      if (pull.beats == 0) w_pull_.pop();
    }
  }

  drain_pipes(now);
}

}  // namespace axihc
