// Behavioural model of the Xilinx AXI SmartConnect (PG247), the
// state-of-the-art baseline the paper compares against.
//
// SmartConnect is closed-source; the paper characterizes it externally and
// this model is calibrated to exactly that characterization:
//  * round-robin arbitration that IGNORES the AXI QoS signals (PG247 p.6/p.8,
//    paper §II) — note this model never reads AddrReq::qos;
//  * *variable* grant granularity: once a master wins arbitration it can be
//    granted up to `grant_granularity` back-to-back transactions before the
//    pointer advances (the paper found experimentally that SmartConnect's
//    round-robin granularity varies, worsening worst-case interference to
//    g×(N−1) transactions, §V-B);
//  * deeper internal pipeline than HyperConnect: per-channel propagation
//    latencies of 12 (AR), 12 (AW), 11 (R), 3 (W), 2 (B) cycles, the values
//    measured in the paper's Fig. 3(a);
//  * no bandwidth reservation, no burst equalization, no decoupling, no
//    runtime reconfiguration.
//
// Latency bookkeeping: a master push costs 1 cycle to become visible at the
// input port and the final push costs 1 cycle to become visible at the
// output, so the internal extra delay is (target − 2).
#pragma once

#include <cstdint>
#include <deque>

#include "interconnect/interconnect.hpp"

namespace axihc {

struct SmartConnectConfig {
  /// Extra internal pipeline cycles per channel (total = extra + 2).
  Cycle ar_extra_delay = 10;  // total AR latency 12
  Cycle aw_extra_delay = 10;  // total AW latency 12
  Cycle r_extra_delay = 9;    // total R latency 11
  Cycle w_extra_delay = 1;    // total W latency 3
  Cycle b_extra_delay = 0;    // total B latency 2
  /// Maximum consecutive transactions granted to one master per round.
  std::uint32_t grant_granularity = 4;
  /// Interconnect-wide outstanding limits (route-memory capacity).
  std::uint32_t max_outstanding_reads = 32;
  std::uint32_t max_outstanding_writes = 32;
  AxiLinkConfig port_link_cfg{};
  AxiLinkConfig master_link_cfg{};
};

class SmartConnect final : public Interconnect {
 public:
  SmartConnect(std::string name, std::uint32_t num_ports,
               SmartConnectConfig cfg = {});

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override;

  [[nodiscard]] const SmartConnectConfig& config() const { return cfg_; }

 private:
  template <typename T>
  struct Delayed {
    Cycle ready_at = 0;
    T payload{};
  };

  /// Picks the next port to grant on an address channel under
  /// variable-granularity round-robin. Returns true if a grant happened.
  bool arbitrate_addr(bool is_write, Cycle now);

  void drain_pipes(Cycle now);

  SmartConnectConfig cfg_;

  // Arbitration state.
  PortIndex rr_ar_ = 0;
  std::uint32_t ar_grants_left_ = 0;
  PortIndex rr_aw_ = 0;
  std::uint32_t aw_grants_left_ = 0;

  // Internal pipeline stages (the modelled "depth" of the closed IP).
  std::deque<Delayed<AddrReq>> ar_pipe_;
  std::deque<Delayed<AddrReq>> aw_pipe_;
  std::deque<Delayed<RBeat>> r_pipe_;
  std::deque<Delayed<WBeat>> w_pipe_;
  std::deque<Delayed<BResp>> b_pipe_;

  // Response-routing order memories.
  RingBuffer<ReadRoute> read_route_;
  RingBuffer<WriteRoute> w_pull_;   // W data pull order
  RingBuffer<PortIndex> b_route_;   // B return order
};

}  // namespace axihc
