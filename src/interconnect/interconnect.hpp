// Common interface for N-master/1-slave AXI interconnects (§II
// "Multi-Master architecture"): a set of slave input ports for HAs and one
// master output port toward the FPGA-PS interface.
//
// Both the AXI HyperConnect and the SmartConnect baseline implement this
// interface, so benches and examples can swap them freely.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "axi/axi.hpp"
#include "common/ring_buffer.hpp"
#include "sim/component.hpp"
#include "sim/simulator.hpp"

namespace axihc {

/// Per-port traffic counters every interconnect maintains.
struct PortCounters {
  std::uint64_t ar_granted = 0;  // read (sub-)transactions sent downstream
  std::uint64_t aw_granted = 0;  // write (sub-)transactions sent downstream
  std::uint64_t r_beats = 0;
  std::uint64_t w_beats = 0;
  std::uint64_t b_resps = 0;
};

class Interconnect : public Component {
 public:
  /// An interconnect with `num_ports` HA-facing slave ports and one
  /// master port. Port links are created internally; HAs attach via
  /// `port_link(i)` and the memory side via `master_link()`.
  Interconnect(std::string name, std::uint32_t num_ports,
               AxiLinkConfig port_link_cfg, AxiLinkConfig master_link_cfg);
  ~Interconnect() override;

  [[nodiscard]] std::uint32_t num_ports() const {
    return static_cast<std::uint32_t>(port_links_.size());
  }

  /// The link a hardware accelerator's master port connects to.
  [[nodiscard]] AxiLink& port_link(PortIndex i);
  [[nodiscard]] const AxiLink& port_link(PortIndex i) const;

  /// The link connected to the FPGA-PS interface (memory controller).
  [[nodiscard]] AxiLink& master_link() { return *master_link_; }
  [[nodiscard]] const AxiLink& master_link() const { return *master_link_; }

  /// Registers every internal channel with the simulator. Subclasses extend
  /// it for their private pipeline channels.
  virtual void register_with(Simulator& sim);

  [[nodiscard]] const PortCounters& counters(PortIndex i) const;

  /// Interconnect models are channel-pure: their tick() touches only their
  /// own registers and the links/internal channels they terminate.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

  void append_digest(StateDigest& d) const override;

 protected:
  [[nodiscard]] PortCounters& mutable_counters(PortIndex i);

  std::vector<std::unique_ptr<AxiLink>> port_links_;
  std::unique_ptr<AxiLink> master_link_;

 private:
  std::vector<PortCounters> counters_;
};

/// Order-based response routing, shared by both interconnect models.
/// AXI R/W/B data follows the order in which address requests were granted
/// (§II: "data channels depend on address channels"); these FIFOs remember
/// that order.
struct ReadRoute {
  PortIndex port = 0;
};

struct WriteRoute {
  PortIndex port = 0;
  BeatCount beats = 0;  // W beats to pull for this (sub-)transaction
};

}  // namespace axihc
