// Execution domains of the mixed-criticality framework (§IV).
//
// Each application comprises a software system running on the PS inside a
// hypervisor domain plus a set of hardware accelerators on the FPGA fabric.
// The hypervisor grants each domain access to its own HAs only and
// supervises the bus traffic of all of them through the HyperConnect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace axihc {

enum class Criticality { kLow, kMedium, kHigh };

struct Domain {
  std::string name;
  Criticality criticality = Criticality::kLow;
  /// HyperConnect input ports owned by this domain's HAs.
  std::vector<PortIndex> ports;
  /// Bus-bandwidth fraction the integrator assigned to this domain
  /// (0..1; the hypervisor turns it into reservation budgets).
  double bandwidth_fraction = 0.0;
};

[[nodiscard]] const char* to_string(Criticality c);

/// A reservation plan: the period T and the per-port budgets programmed
/// into the HyperConnect.
struct ReservationPlan {
  Cycle period = 0;
  std::vector<std::uint32_t> budgets;
};

/// Turns per-port bandwidth fractions into a reservation plan.
///
/// `cycles_per_txn` is the memory-side service time of one nominal-burst
/// transaction (measure it or estimate first-word latency + beats +
/// turnaround); the plan hands each port floor(fraction * period /
/// cycles_per_txn) transactions per window. Fractions must sum to <= 1.
[[nodiscard]] ReservationPlan plan_bandwidth_split(
    Cycle period, double cycles_per_txn,
    const std::vector<double>& fractions);

}  // namespace axihc
