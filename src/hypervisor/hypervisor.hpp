// Hypervisor model: the software-side owner of the AXI HyperConnect (§IV).
//
// The hypervisor is the only agent allowed to touch the HyperConnect's
// control interface. It:
//  * registers the execution domains and their HA-to-port bindings;
//  * programs the reservation plan (bandwidth isolation between domains);
//  * watches per-port transaction counters and automatically decouples a
//    port that exceeds its policed rate (misbehaving/faulty HA detection,
//    §V-A "Decoupling from the memory subsystem");
//  * supports explicit isolate/restore of whole domains (e.g. around
//    dynamic partial reconfiguration);
//  * optionally drives a RecoveryManager (src/recovery) so a detected fault
//    starts a closed-loop recovery episode instead of retiring the port.
//
// All configuration travels over the control bus through the driver — the
// hypervisor never back-doors the hardware state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "driver/hyperconnect_driver.hpp"
#include "hypervisor/domain.hpp"
#include "obs/metrics.hpp"
#include "sim/component.hpp"
#include "sim/trace.hpp"

namespace axihc {

class RecoveryManager;

struct WatchdogPolicy {
  /// Poll period in cycles; 0 disables the watchdog.
  Cycle poll_period = 0;
  /// Max sub-transactions a port may issue between two polls before it is
  /// considered misbehaving (0 = no limit for that port).
  std::vector<std::uint64_t> max_txns_per_poll;
  /// Decouple offending ports automatically.
  bool auto_isolate = true;
  /// Also read each port's FAULT_STATUS register at every poll; on a latched
  /// fault, formally decouple the port (the hardware protection unit has
  /// already quarantined it). Without a RecoveryManager the fault is then
  /// acknowledged and the port stays retired; with one (set_recovery) the
  /// acknowledgment is deferred to the recovery FSM's Resetting step, which
  /// re-arms the protection unit just before recoupling.
  bool isolate_on_fault = true;
};

/// Record of a watchdog intervention.
struct IsolationEvent {
  Cycle cycle = 0;
  PortIndex port = 0;
  std::uint64_t observed_txns = 0;
  std::uint64_t allowed_txns = 0;
};

/// Record of a hardware fault observed through the FAULT_STATUS registers.
struct FaultEvent {
  Cycle cycle = 0;  // when the hypervisor observed it (poll granularity)
  PortIndex port = 0;
  FaultCause cause = FaultCause::kNone;
};

class Hypervisor final : public Component {
 public:
  Hypervisor(std::string name, HyperConnectDriver& driver);

  /// Registers a domain; returns its index. Port indices must be unique
  /// across domains (one HA master port per HyperConnect input port).
  std::size_t add_domain(Domain domain);

  [[nodiscard]] const std::vector<Domain>& domains() const {
    return domains_;
  }

  /// Programs the HyperConnect with a reservation plan computed from the
  /// domains' bandwidth fractions (see plan_bandwidth_split).
  void configure_reservation(Cycle period, double cycles_per_txn);

  /// Applies an explicit reservation plan.
  void apply_plan(const ReservationPlan& plan);

  void set_watchdog(WatchdogPolicy policy);

  /// Attaches a recovery manager: instead of retiring a faulty/overrunning
  /// port forever, the watchdog hands it to the manager's per-port FSM
  /// (quarantine -> drain -> reset -> probation), and each poll additionally
  /// reads FAULT_COUNT (new-fault detection survives a latched status) and
  /// INFLIGHT (the drain gate). nullptr detaches (legacy retire-on-fault
  /// behavior).
  void set_recovery(RecoveryManager* recovery);

  /// Decouples / recouples every port of a domain.
  void isolate_domain(std::size_t domain_index);
  void restore_domain(std::size_t domain_index);

  [[nodiscard]] bool port_isolated(PortIndex port) const;
  [[nodiscard]] const std::vector<IsolationEvent>& isolation_events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<FaultEvent>& fault_events() const {
    return fault_events_;
  }

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override {
    if (watchdog_.poll_period == 0) return kNoCycle;
    // A poll in flight completes via driver/bus callbacks that this tick
    // must observe; otherwise sleep until the next scheduled poll.
    if (poll_in_flight_) return now;
    return now < next_poll_ ? next_poll_ : now;
  }
  [[nodiscard]] TickScope tick_scope() const override {
    // Serial: tick() calls straight into the HyperConnect driver
    // (reconfiguration, decouple/recouple, watchdog polls) — direct
    // mutation of another component.
    return TickScope::kSerial;
  }

  /// Observability: watchdog isolations and observed faults become trace
  /// instants. nullptr (the default) disables the hooks.
  void set_trace(EventTrace* trace) { trace_ = trace; }

  /// Registers intervention counters (isolations, faults observed, ports
  /// currently isolated) with `reg`.
  void register_metrics(MetricsRegistry& reg);

  void append_digest(StateDigest& d) const override;

 private:
  void poll_counters(Cycle now);
  [[nodiscard]] bool tracing() const {
    return trace_ != nullptr && trace_->enabled();
  }

  HyperConnectDriver& driver_;
  RecoveryManager* recovery_ = nullptr;
  std::vector<Domain> domains_;
  WatchdogPolicy watchdog_{};
  std::vector<bool> isolated_;
  std::vector<std::uint64_t> last_txn_count_;
  std::vector<std::uint64_t> last_fault_count_;
  std::vector<std::optional<std::uint64_t>> poll_results_;
  std::vector<std::optional<std::uint64_t>> fault_results_;
  // Extra per-poll reads issued only with a recovery manager attached.
  std::vector<std::optional<std::uint64_t>> fault_count_results_;
  std::vector<std::optional<std::uint64_t>> inflight_results_;
  Cycle next_poll_ = 0;
  bool poll_in_flight_ = false;
  std::vector<IsolationEvent> events_;
  std::vector<FaultEvent> fault_events_;
  EventTrace* trace_ = nullptr;
};

}  // namespace axihc
