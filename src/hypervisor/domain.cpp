#include "hypervisor/domain.hpp"

#include <cmath>

#include "common/check.hpp"

namespace axihc {

const char* to_string(Criticality c) {
  switch (c) {
    case Criticality::kLow:
      return "low";
    case Criticality::kMedium:
      return "medium";
    case Criticality::kHigh:
      return "high";
  }
  return "?";
}

ReservationPlan plan_bandwidth_split(Cycle period, double cycles_per_txn,
                                     const std::vector<double>& fractions) {
  AXIHC_CHECK(period > 0);
  AXIHC_CHECK(cycles_per_txn > 0);
  double total = 0;
  for (double f : fractions) {
    AXIHC_CHECK_MSG(f >= 0.0 && f <= 1.0, "fraction out of range: " << f);
    total += f;
  }
  AXIHC_CHECK_MSG(total <= 1.0 + 1e-9,
                  "bandwidth fractions sum to " << total << " > 1");

  ReservationPlan plan;
  plan.period = period;
  plan.budgets.reserve(fractions.size());
  const double txn_capacity = static_cast<double>(period) / cycles_per_txn;
  for (double f : fractions) {
    plan.budgets.push_back(
        static_cast<std::uint32_t>(std::floor(f * txn_capacity)));
  }
  return plan;
}

}  // namespace axihc
