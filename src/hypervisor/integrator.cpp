#include "hypervisor/integrator.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

void SystemIntegrator::add_accelerator(AcceleratorIp ip) {
  bool has_master = false;
  for (const auto& iface : ip.description.bus_interfaces) {
    if (iface.mode == BusInterfaceMode::kMaster && iface.bus_type == "aximm") {
      has_master = true;
      break;
    }
  }
  AXIHC_CHECK_MSG(has_master, "accelerator '" << ip.description.name
                                              << "' exposes no AXI master "
                                                 "data interface");
  AXIHC_CHECK_MSG(!ip.domain_name.empty(),
                  "accelerator '" << ip.description.name
                                  << "' has no domain assignment");
  ips_.push_back(std::move(ip));
}

SocDesign SystemIntegrator::integrate(const HyperConnectConfig& cfg) const {
  AXIHC_CHECK_MSG(ips_.size() <= cfg.num_ports,
                  "design needs " << ips_.size()
                                  << " interconnect ports but the "
                                     "HyperConnect has only "
                                  << cfg.num_ports);
  SocDesign design;
  design.interconnect = describe_hyperconnect(cfg);

  double total_fraction = 0.0;
  for (PortIndex port = 0; port < ips_.size(); ++port) {
    const AcceleratorIp& ip = ips_[port];
    design.port_assignment.push_back(ip.description.name);

    Domain* domain = nullptr;
    for (auto& d : design.domains) {
      if (d.name == ip.domain_name) {
        domain = &d;
        break;
      }
    }
    if (domain == nullptr) {
      design.domains.push_back(Domain{ip.domain_name, ip.criticality, {}, 0});
      domain = &design.domains.back();
    }
    AXIHC_CHECK_MSG(domain->criticality == ip.criticality,
                    "domain '" << ip.domain_name
                               << "' declared with inconsistent criticality");
    domain->ports.push_back(port);
    domain->bandwidth_fraction += ip.bandwidth_fraction;
    total_fraction += ip.bandwidth_fraction;
  }
  AXIHC_CHECK_MSG(total_fraction <= 1.0 + 1e-9,
                  "bandwidth fractions sum to " << total_fraction << " > 1");
  return design;
}

}  // namespace axihc
