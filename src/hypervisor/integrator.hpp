// System integrator model (§IV "Considered framework").
//
// Applications hand their HAs to the system integrator as IP-XACT
// descriptions; the integrator embeds them into an FPGA design, connecting
// each HA master port to a HyperConnect input port and the HyperConnect
// master port to the FPGA-PS interface, then "synthesizes" the design. Here
// that means: validate the IP descriptions, perform the port assignment,
// and produce a design report (our stand-in for the bitstream) that the
// hypervisor uses to know which port belongs to which domain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hypervisor/domain.hpp"
#include "ipxact/ipxact.hpp"

namespace axihc {

/// One HA contributed by an application.
struct AcceleratorIp {
  IpxactComponent description;
  std::string domain_name;
  Criticality criticality = Criticality::kLow;
  double bandwidth_fraction = 0.0;
};

/// Result of the integration phase.
struct SocDesign {
  /// Port assignment: entry i names the HA connected to HyperConnect port i.
  std::vector<std::string> port_assignment;
  /// Domains with their resolved port lists and bandwidth fractions.
  std::vector<Domain> domains;
  /// The HyperConnect IP-XACT description instantiated in the design.
  IpxactComponent interconnect;
};

class SystemIntegrator {
 public:
  /// Registers an application HA. The description must expose an AXI master
  /// data interface (this is what connects to the HyperConnect).
  void add_accelerator(AcceleratorIp ip);

  /// Performs the integration against a HyperConnect with `cfg`:
  /// assigns ports in registration order, groups HAs into domains, and
  /// validates that the interconnect has enough input ports.
  [[nodiscard]] SocDesign integrate(const HyperConnectConfig& cfg) const;

  [[nodiscard]] std::size_t accelerator_count() const { return ips_.size(); }

 private:
  std::vector<AcceleratorIp> ips_;
};

}  // namespace axihc
