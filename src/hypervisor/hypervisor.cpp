#include "hypervisor/hypervisor.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "recovery/recovery_manager.hpp"

namespace axihc {

Hypervisor::Hypervisor(std::string name, HyperConnectDriver& driver)
    : Component(std::move(name)),
      driver_(driver),
      isolated_(driver.num_ports(), false),
      last_txn_count_(driver.num_ports(), 0),
      last_fault_count_(driver.num_ports(), 0),
      poll_results_(driver.num_ports()),
      fault_results_(driver.num_ports()),
      fault_count_results_(driver.num_ports()),
      inflight_results_(driver.num_ports()) {}

void Hypervisor::set_recovery(RecoveryManager* recovery) {
  recovery_ = recovery;
}

void Hypervisor::reset() {
  isolated_.assign(driver_.num_ports(), false);
  last_txn_count_.assign(driver_.num_ports(), 0);
  last_fault_count_.assign(driver_.num_ports(), 0);
  poll_results_.assign(driver_.num_ports(), std::nullopt);
  fault_results_.assign(driver_.num_ports(), std::nullopt);
  fault_count_results_.assign(driver_.num_ports(), std::nullopt);
  inflight_results_.assign(driver_.num_ports(), std::nullopt);
  next_poll_ = 0;
  poll_in_flight_ = false;
  events_.clear();
  fault_events_.clear();
}

void Hypervisor::append_digest(StateDigest& d) const {
  for (const bool b : isolated_) d.mix(static_cast<std::uint64_t>(b));
  for (const std::uint64_t c : last_txn_count_) d.mix(c);
  for (const std::uint64_t c : last_fault_count_) d.mix(c);
  d.mix(next_poll_);
  d.mix(static_cast<std::uint64_t>(poll_in_flight_));
  d.mix(static_cast<std::uint64_t>(events_.size()));
  d.mix(static_cast<std::uint64_t>(fault_events_.size()));
}

void Hypervisor::register_metrics(MetricsRegistry& reg) {
  reg.add_counter(name() + ".isolations", [this] {
    return static_cast<double>(events_.size());
  });
  reg.add_counter(name() + ".faults_observed", [this] {
    return static_cast<double>(fault_events_.size());
  });
  reg.add_gauge(name() + ".ports_isolated", [this] {
    return static_cast<double>(
        std::count(isolated_.begin(), isolated_.end(), true));
  });
}

std::size_t Hypervisor::add_domain(Domain domain) {
  for (const PortIndex p : domain.ports) {
    AXIHC_CHECK_MSG(p < driver_.num_ports(),
                    "domain port " << p << " out of range");
    for (const auto& existing : domains_) {
      for (const PortIndex q : existing.ports) {
        AXIHC_CHECK_MSG(p != q, "port " << p << " already owned by domain '"
                                        << existing.name << "'");
      }
    }
  }
  domains_.push_back(std::move(domain));
  return domains_.size() - 1;
}

void Hypervisor::configure_reservation(Cycle period, double cycles_per_txn) {
  std::vector<double> fractions(driver_.num_ports(), 0.0);
  for (const auto& d : domains_) {
    // A domain's fraction is divided evenly among its ports.
    AXIHC_CHECK(!d.ports.empty());
    const double per_port = d.bandwidth_fraction /
                            static_cast<double>(d.ports.size());
    for (const PortIndex p : d.ports) fractions[p] = per_port;
  }
  apply_plan(plan_bandwidth_split(period, cycles_per_txn, fractions));
}

void Hypervisor::apply_plan(const ReservationPlan& plan) {
  AXIHC_CHECK(plan.budgets.size() == driver_.num_ports());
  driver_.apply_reservation(plan.period, plan.budgets);
  // The plan is the baseline split the recovery manager defends (graceful
  // degradation) and restores (on recovery).
  if (recovery_ != nullptr) recovery_->set_baseline_budgets(plan.budgets);
}

void Hypervisor::set_watchdog(WatchdogPolicy policy) {
  if (policy.poll_period != 0) {
    AXIHC_CHECK(policy.max_txns_per_poll.size() == driver_.num_ports());
  }
  watchdog_ = std::move(policy);
  next_poll_ = watchdog_.poll_period;
}

void Hypervisor::isolate_domain(std::size_t domain_index) {
  AXIHC_CHECK(domain_index < domains_.size());
  for (const PortIndex p : domains_[domain_index].ports) {
    driver_.set_coupled(p, false);
    isolated_[p] = true;
  }
}

void Hypervisor::restore_domain(std::size_t domain_index) {
  AXIHC_CHECK(domain_index < domains_.size());
  for (const PortIndex p : domains_[domain_index].ports) {
    driver_.set_coupled(p, true);
    isolated_[p] = false;
  }
}

bool Hypervisor::port_isolated(PortIndex port) const {
  AXIHC_CHECK(port < isolated_.size());
  return isolated_[port];
}

void Hypervisor::poll_counters(Cycle now) {
  // All reads have returned; evaluate the policy.
  const bool recovering = recovery_ != nullptr;
  std::vector<std::uint64_t> inflight;
  if (recovering) inflight.resize(driver_.num_ports(), 0);

  for (PortIndex p = 0; p < driver_.num_ports(); ++p) {
    AXIHC_CHECK(poll_results_[p].has_value());
    const std::uint64_t count = *poll_results_[p];
    const std::uint64_t delta = count - last_txn_count_[p];
    last_txn_count_[p] = count;
    poll_results_[p] = std::nullopt;

    const std::uint64_t allowed = watchdog_.max_txns_per_poll[p];
    if (allowed != 0 && delta > allowed && !isolated_[p]) {
      events_.push_back({now, p, delta, allowed});
      if (tracing()) {
        trace_->record(now, name(),
                       "watchdog_isolate p" + std::to_string(p));
      }
      AXIHC_LOG_INFO() << name() << ": port " << p << " issued " << delta
                       << " txns (allowed " << allowed << ") — "
                       << (watchdog_.auto_isolate ? "decoupling"
                                                  : "flagging");
      if (watchdog_.auto_isolate) {
        driver_.set_coupled(p, false);
        isolated_[p] = true;
        if (recovering) recovery_->on_watchdog_overrun(p, now);
      }
    }

    // Hardware-fault handling: the protection unit latched a fault (timeout
    // / stall / malformed burst) and quarantined the port internally.
    AXIHC_CHECK(fault_results_[p].has_value());
    const std::uint64_t status = *fault_results_[p];
    fault_results_[p] = std::nullopt;
    const bool latched = (status & hcregs::kFaultStatusFaultedBit) != 0;
    const auto cause = static_cast<FaultCause>(
        (status >> hcregs::kFaultStatusCauseShift) & 0x7);

    if (recovering) {
      // With a recovery manager the status latch stays set for the whole
      // quarantine (only the FSM's Resetting step clears it), so a latched
      // status is not news by itself. New faults are FAULT_COUNT deltas —
      // that also catches a port faulting again during probation.
      AXIHC_CHECK(fault_count_results_[p].has_value());
      const std::uint64_t fcount = *fault_count_results_[p];
      const std::uint64_t fdelta = fcount - last_fault_count_[p];
      last_fault_count_[p] = fcount;
      fault_count_results_[p] = std::nullopt;
      AXIHC_CHECK(inflight_results_[p].has_value());
      inflight[p] = *inflight_results_[p];
      inflight_results_[p] = std::nullopt;

      if (fdelta > 0) {
        fault_events_.push_back({now, p, cause});
        if (tracing()) {
          trace_->record(now, name(),
                         "fault_observed p" + std::to_string(p));
        }
        AXIHC_LOG_INFO() << name() << ": port " << p << " latched " << fdelta
                         << " new fault(s) (cause "
                         << static_cast<unsigned>(cause)
                         << ") — handing to recovery";
        if (watchdog_.isolate_on_fault) {
          driver_.set_coupled(p, false);
          isolated_[p] = true;
          recovery_->on_fault(p, cause, now);
        }
      }
      continue;
    }

    if (latched) {
      fault_events_.push_back({now, p, cause});
      if (tracing()) {
        trace_->record(now, name(),
                       "fault_observed p" + std::to_string(p));
      }
      AXIHC_LOG_INFO() << name() << ": port " << p
                       << " fault latched (cause "
                       << static_cast<unsigned>(cause) << ") — "
                       << (watchdog_.isolate_on_fault ? "isolating"
                                                      : "flagging");
      if (watchdog_.isolate_on_fault) {
        driver_.set_coupled(p, false);
        isolated_[p] = true;
        // Acknowledge the fault: the FAULT_STATUS write re-arms the port's
        // protection unit. Without a recovery manager nobody ever recouples
        // the port, so this is pure bookkeeping (FAULT_COUNT / FAULT_CYCLE
        // stay for postmortems); attach a RecoveryManager (set_recovery)
        // for an actual recovery attempt — there the clear is deferred to
        // the FSM's Resetting step.
        driver_.clear_fault(p);
      }
    }
  }

  if (recovering) {
    // Advance every port's recovery FSM, then mirror its coupling decisions
    // into the isolation ledger (ports it recoupled are no longer isolated;
    // ports it holds out of service are).
    recovery_->on_poll(now, inflight);
    for (PortIndex p = 0; p < driver_.num_ports(); ++p) {
      if (recovery_->state(p) != RecoveryState::kHealthy) {
        isolated_[p] = !recovery_->wants_coupled(p);
      }
    }
  }
}

void Hypervisor::tick(Cycle now) {
  if (watchdog_.poll_period == 0) return;

  if (poll_in_flight_) {
    bool all_back = true;
    for (PortIndex p = 0; p < driver_.num_ports(); ++p) {
      if (!poll_results_[p].has_value() || !fault_results_[p].has_value()) {
        all_back = false;
        break;
      }
      if (recovery_ != nullptr && (!fault_count_results_[p].has_value() ||
                                   !inflight_results_[p].has_value())) {
        all_back = false;
        break;
      }
    }
    if (all_back && driver_.idle()) {
      poll_in_flight_ = false;
      poll_counters(now);
    }
    return;
  }

  if (now >= next_poll_) {
    next_poll_ = now + watchdog_.poll_period;
    poll_in_flight_ = true;
    for (PortIndex p = 0; p < driver_.num_ports(); ++p) {
      poll_results_[p] = std::nullopt;
      fault_results_[p] = std::nullopt;
      driver_.read_txn_count(
          p, [this, p](std::uint64_t v) { poll_results_[p] = v; });
      driver_.read_fault_status(
          p, [this, p](std::uint64_t v) { fault_results_[p] = v; });
      if (recovery_ != nullptr) {
        fault_count_results_[p] = std::nullopt;
        inflight_results_[p] = std::nullopt;
        driver_.read_fault_count(
            p, [this, p](std::uint64_t v) { fault_count_results_[p] = v; });
        driver_.read_inflight(
            p, [this, p](std::uint64_t v) { inflight_results_[p] = v; });
      }
    }
  }
}

}  // namespace axihc
