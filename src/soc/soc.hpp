// SocSystem — convenience assembly of the platform in the paper's Figure 1:
// N hardware accelerators -> one AXI interconnect (HyperConnect or
// SmartConnect) -> FPGA-PS interface -> memory controller -> DRAM.
//
// Owns the simulator, the memory subsystem and the interconnect; callers
// construct their HAs against `port(i)` and register them with `add()`.
#pragma once

#include <cstdint>
#include <memory>

#include "hyperconnect/hyperconnect.hpp"
#include "interconnect/smartconnect.hpp"
#include "mem/backing_store.hpp"
#include "mem/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace axihc {

enum class InterconnectKind { kHyperConnect, kSmartConnect };

struct SocConfig {
  InterconnectKind kind = InterconnectKind::kHyperConnect;
  std::uint32_t num_ports = 2;
  HyperConnectConfig hc{};        // used when kind == kHyperConnect
  SmartConnectConfig sc{};        // used when kind == kSmartConnect
  MemoryControllerConfig mem{};
};

class SocSystem {
 public:
  explicit SocSystem(SocConfig cfg);

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] BackingStore& memory() { return store_; }
  [[nodiscard]] MemoryController& memory_controller() { return *mem_; }
  [[nodiscard]] Interconnect& interconnect() { return *icn_; }

  /// The HyperConnect instance, or nullptr when running the baseline.
  [[nodiscard]] HyperConnect* hyperconnect();

  /// The link HA number `i` connects its master port to.
  [[nodiscard]] AxiLink& port(PortIndex i) { return icn_->port_link(i); }

  /// Registers an externally-owned component (an HA, a monitor, ...).
  void add(Component& component) { sim_.add(component); }

  [[nodiscard]] const SocConfig& config() const { return cfg_; }

 private:
  SocConfig cfg_;
  Simulator sim_;
  BackingStore store_;
  std::unique_ptr<Interconnect> icn_;
  std::unique_ptr<MemoryController> mem_;
};

}  // namespace axihc
