#include "soc/soc.hpp"

#include "common/check.hpp"

namespace axihc {

SocSystem::SocSystem(SocConfig cfg) : cfg_(cfg) {
  if (cfg_.kind == InterconnectKind::kHyperConnect) {
    cfg_.hc.num_ports = cfg_.num_ports;
    auto hc = std::make_unique<HyperConnect>("hc", cfg_.hc);
    hc->register_with(sim_);
    icn_ = std::move(hc);
  } else {
    auto sc = std::make_unique<SmartConnect>("sc", cfg_.num_ports, cfg_.sc);
    sc->register_with(sim_);
    icn_ = std::move(sc);
  }
  mem_ = std::make_unique<MemoryController>("ddr", icn_->master_link(),
                                            store_, cfg_.mem);
  sim_.add(*mem_);
}

HyperConnect* SocSystem::hyperconnect() {
  return dynamic_cast<HyperConnect*>(icn_.get());
}

}  // namespace axihc
