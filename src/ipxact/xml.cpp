#include "ipxact/xml.hpp"

#include <cctype>

#include "common/check.hpp"

namespace axihc {

void XmlNode::set_attribute(const std::string& key, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(key, std::move(value));
}

const std::string* XmlNode::attribute(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return &v;
  }
  return nullptr;
}

XmlNode& XmlNode::add_child(std::string tag) {
  children_.push_back(std::make_unique<XmlNode>(std::move(tag)));
  return *children_.back();
}

XmlNode& XmlNode::add_text_child(std::string tag, std::string text) {
  XmlNode& child = add_child(std::move(tag));
  child.set_text(std::move(text));
  return child;
}

const XmlNode* XmlNode::child(const std::string& tag) const {
  for (const auto& c : children_) {
    if (c->tag() == tag) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    const std::string& tag) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children_) {
    if (c->tag() == tag) out.push_back(c.get());
  }
  return out;
}

std::string XmlNode::child_text(const std::string& tag) const {
  const XmlNode* c = child(tag);
  return c ? c->text() : std::string{};
}

std::string xml_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {
std::string xml_unescape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size();) {
    if (raw[i] != '&') {
      out += raw[i++];
      continue;
    }
    const auto semi = raw.find(';', i);
    AXIHC_CHECK_MSG(semi != std::string::npos, "unterminated XML entity");
    const std::string entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else {
      AXIHC_CHECK_MSG(false, "unknown XML entity &" << entity << ";");
    }
    i = semi + 1;
  }
  return out;
}
}  // namespace

void XmlNode::write(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out += pad + "<" + tag_;
  for (const auto& [k, v] : attributes_) {
    out += " " + k + "=\"" + xml_escape(v) + "\"";
  }
  if (children_.empty() && text_.empty()) {
    out += "/>\n";
    return;
  }
  out += ">";
  if (children_.empty()) {
    out += xml_escape(text_) + "</" + tag_ + ">\n";
    return;
  }
  out += "\n";
  for (const auto& c : children_) c->write(out, indent + 1);
  out += pad + "</" + tag_ + ">\n";
}

std::string XmlNode::to_string() const {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  write(out, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& input) : in_(input) {}

  std::unique_ptr<XmlNode> parse_document() {
    skip_misc();
    auto root = parse_element();
    skip_ws();
    AXIHC_CHECK_MSG(pos_ == in_.size(), "trailing content after XML root");
    return root;
  }

 private:
  void skip_ws() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  /// Skips whitespace, the XML declaration, and comments.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (in_.compare(pos_, 2, "<?") == 0) {
        const auto end = in_.find("?>", pos_);
        AXIHC_CHECK_MSG(end != std::string::npos, "unterminated <? ... ?>");
        pos_ = end + 2;
      } else if (in_.compare(pos_, 4, "<!--") == 0) {
        const auto end = in_.find("-->", pos_);
        AXIHC_CHECK_MSG(end != std::string::npos, "unterminated comment");
        pos_ = end + 3;
      } else {
        return;
      }
    }
  }

  [[nodiscard]] bool is_name_char(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == ':' ||
           c == '_' || c == '-' || c == '.';
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < in_.size() && is_name_char(in_[pos_])) ++pos_;
    AXIHC_CHECK_MSG(pos_ > start, "expected XML name at offset " << start);
    return in_.substr(start, pos_ - start);
  }

  std::unique_ptr<XmlNode> parse_element() {
    AXIHC_CHECK_MSG(pos_ < in_.size() && in_[pos_] == '<',
                    "expected '<' at offset " << pos_);
    ++pos_;
    auto node = std::make_unique<XmlNode>(parse_name());

    // Attributes.
    for (;;) {
      skip_ws();
      AXIHC_CHECK_MSG(pos_ < in_.size(), "unexpected end inside tag");
      if (in_[pos_] == '/') {
        AXIHC_CHECK_MSG(in_.compare(pos_, 2, "/>") == 0, "malformed tag end");
        pos_ += 2;
        return node;
      }
      if (in_[pos_] == '>') {
        ++pos_;
        break;
      }
      const std::string key = parse_name();
      skip_ws();
      AXIHC_CHECK_MSG(pos_ < in_.size() && in_[pos_] == '=',
                      "expected '=' after attribute " << key);
      ++pos_;
      skip_ws();
      AXIHC_CHECK_MSG(pos_ < in_.size() && in_[pos_] == '"',
                      "expected '\"' in attribute " << key);
      ++pos_;
      const auto end = in_.find('"', pos_);
      AXIHC_CHECK_MSG(end != std::string::npos, "unterminated attribute");
      node->set_attribute(key, xml_unescape(in_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }

    // Content: children and/or text until the closing tag.
    std::string text;
    for (;;) {
      AXIHC_CHECK_MSG(pos_ < in_.size(), "unexpected end inside element <"
                                             << node->tag() << ">");
      if (in_[pos_] == '<') {
        if (in_.compare(pos_, 2, "</") == 0) {
          pos_ += 2;
          const std::string closing = parse_name();
          AXIHC_CHECK_MSG(closing == node->tag(),
                          "mismatched closing tag </"
                              << closing << "> for <" << node->tag() << ">");
          skip_ws();
          AXIHC_CHECK_MSG(pos_ < in_.size() && in_[pos_] == '>',
                          "malformed closing tag");
          ++pos_;
          break;
        }
        if (in_.compare(pos_, 4, "<!--") == 0) {
          const auto end = in_.find("-->", pos_);
          AXIHC_CHECK_MSG(end != std::string::npos, "unterminated comment");
          pos_ = end + 3;
          continue;
        }
        // Child element: preserved via recursion; interleaved text between
        // children is not meaningful in IP-XACT and is discarded.
        auto parsed = parse_element();
        XmlNode& slot = node->add_child(parsed->tag());
        slot = std::move(*parsed);
      } else {
        const auto lt = in_.find('<', pos_);
        AXIHC_CHECK_MSG(lt != std::string::npos,
                        "unterminated element <" << node->tag() << ">");
        text += in_.substr(pos_, lt - pos_);
        pos_ = lt;
      }
    }

    // Trim and store text content only for leaf elements.
    if (node->children().empty()) {
      std::size_t b = 0;
      std::size_t e = text.size();
      while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
      while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
      node->set_text(xml_unescape(text.substr(b, e - b)));
    }
    return node;
  }

  const std::string& in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<XmlNode> parse_xml(const std::string& input) {
  return Parser(input).parse_document();
}

}  // namespace axihc
