// IP-XACT component descriptions (§V-A "Openness", §IV integration flow).
//
// The paper exports the AXI HyperConnect following the IP-XACT standard so
// it can be consumed by commercial system-integration tools (Xilinx Vivado,
// Intel Platform Designer). This module writes and reads the subset of
// IP-XACT 2014 (spirit namespace) needed to describe the components of this
// library: the VLNV identity, bus interfaces (AXI master/slave) and
// configuration parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hyperconnect/config.hpp"

namespace axihc {

enum class BusInterfaceMode { kMaster, kSlave };

struct IpxactBusInterface {
  std::string name;
  BusInterfaceMode mode = BusInterfaceMode::kSlave;
  /// Bus definition type, e.g. "aximm" or "aximm-lite".
  std::string bus_type = "aximm";
};

struct IpxactParameter {
  std::string name;
  std::string value;
};

struct IpxactComponent {
  std::string vendor;
  std::string library;
  std::string name;
  std::string version;
  std::vector<IpxactBusInterface> bus_interfaces;
  std::vector<IpxactParameter> parameters;

  /// VLNV identity string, "vendor:library:name:version".
  [[nodiscard]] std::string vlnv() const;
};

/// Serializes to IP-XACT XML (spirit:component document).
[[nodiscard]] std::string to_ipxact_xml(const IpxactComponent& component);

/// Parses an IP-XACT XML document produced by to_ipxact_xml (or a
/// compatible subset). Throws ModelError on malformed input.
[[nodiscard]] IpxactComponent parse_ipxact_xml(const std::string& xml);

/// The IP-XACT description of an AXI HyperConnect instance: N slave ports,
/// one master port, the control slave interface, and the synthesis
/// parameters.
[[nodiscard]] IpxactComponent describe_hyperconnect(
    const HyperConnectConfig& cfg);

/// The IP-XACT description of a generic HA (control slave + data master),
/// as an application would hand it to the system integrator.
[[nodiscard]] IpxactComponent describe_accelerator(const std::string& name,
                                                   const std::string& vendor);

}  // namespace axihc
