// Minimal XML tree: enough of the format to write and re-read IP-XACT
// component descriptions (elements, attributes, text; no DTDs, namespaces
// are treated as part of the tag name, as IP-XACT tooling conventionally
// does for the spirit:/ipxact: prefixes).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace axihc {

class XmlNode {
 public:
  explicit XmlNode(std::string tag) : tag_(std::move(tag)) {}

  [[nodiscard]] const std::string& tag() const { return tag_; }
  [[nodiscard]] const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  void set_attribute(const std::string& key, std::string value);
  [[nodiscard]] const std::string* attribute(const std::string& key) const;

  XmlNode& add_child(std::string tag);
  /// Convenience: adds <tag>text</tag>.
  XmlNode& add_text_child(std::string tag, std::string text);

  [[nodiscard]] const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }

  /// First child with the given tag, or nullptr.
  [[nodiscard]] const XmlNode* child(const std::string& tag) const;
  /// All children with the given tag.
  [[nodiscard]] std::vector<const XmlNode*> children_named(
      const std::string& tag) const;
  /// Text of the first child with the given tag ("" if absent).
  [[nodiscard]] std::string child_text(const std::string& tag) const;

  /// Serializes with 2-space indentation and proper escaping.
  [[nodiscard]] std::string to_string() const;

 private:
  void write(std::string& out, int indent) const;

  std::string tag_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// Parses a single-root XML document (throws ModelError on malformed input).
/// Comments and processing instructions are skipped.
[[nodiscard]] std::unique_ptr<XmlNode> parse_xml(const std::string& input);

/// Escapes &, <, >, ", ' for use in text/attribute content.
[[nodiscard]] std::string xml_escape(const std::string& raw);

}  // namespace axihc
