#include "ipxact/ipxact.hpp"

#include "common/check.hpp"
#include "ipxact/xml.hpp"

namespace axihc {

std::string IpxactComponent::vlnv() const {
  return vendor + ":" + library + ":" + name + ":" + version;
}

std::string to_ipxact_xml(const IpxactComponent& component) {
  XmlNode root("spirit:component");
  root.set_attribute("xmlns:spirit",
                     "http://www.spiritconsortium.org/XMLSchema/SPIRIT/1685-2009");
  root.add_text_child("spirit:vendor", component.vendor);
  root.add_text_child("spirit:library", component.library);
  root.add_text_child("spirit:name", component.name);
  root.add_text_child("spirit:version", component.version);

  XmlNode& interfaces = root.add_child("spirit:busInterfaces");
  for (const auto& iface : component.bus_interfaces) {
    XmlNode& node = interfaces.add_child("spirit:busInterface");
    node.add_text_child("spirit:name", iface.name);
    XmlNode& bus_type = node.add_child("spirit:busType");
    bus_type.set_attribute("spirit:name", iface.bus_type);
    node.add_child(iface.mode == BusInterfaceMode::kMaster ? "spirit:master"
                                                           : "spirit:slave");
  }

  XmlNode& params = root.add_child("spirit:parameters");
  for (const auto& p : component.parameters) {
    XmlNode& node = params.add_child("spirit:parameter");
    node.add_text_child("spirit:name", p.name);
    node.add_text_child("spirit:value", p.value);
  }
  return root.to_string();
}

IpxactComponent parse_ipxact_xml(const std::string& xml) {
  const auto root = parse_xml(xml);
  AXIHC_CHECK_MSG(root->tag() == "spirit:component",
                  "not an IP-XACT component document (root <" << root->tag()
                                                              << ">)");
  IpxactComponent out;
  out.vendor = root->child_text("spirit:vendor");
  out.library = root->child_text("spirit:library");
  out.name = root->child_text("spirit:name");
  out.version = root->child_text("spirit:version");
  AXIHC_CHECK_MSG(!out.name.empty(), "IP-XACT component without a name");

  if (const XmlNode* interfaces = root->child("spirit:busInterfaces")) {
    for (const XmlNode* node :
         interfaces->children_named("spirit:busInterface")) {
      IpxactBusInterface iface;
      iface.name = node->child_text("spirit:name");
      if (const XmlNode* bus_type = node->child("spirit:busType")) {
        if (const std::string* type_name =
                bus_type->attribute("spirit:name")) {
          iface.bus_type = *type_name;
        }
      }
      iface.mode = node->child("spirit:master") != nullptr
                       ? BusInterfaceMode::kMaster
                       : BusInterfaceMode::kSlave;
      out.bus_interfaces.push_back(std::move(iface));
    }
  }
  if (const XmlNode* params = root->child("spirit:parameters")) {
    for (const XmlNode* node : params->children_named("spirit:parameter")) {
      out.parameters.push_back(
          {node->child_text("spirit:name"), node->child_text("spirit:value")});
    }
  }
  return out;
}

IpxactComponent describe_hyperconnect(const HyperConnectConfig& cfg) {
  IpxactComponent c;
  c.vendor = "sssa.it";
  c.library = "interconnect";
  c.name = "axi_hyperconnect";
  c.version = "1.0";
  for (std::uint32_t i = 0; i < cfg.num_ports; ++i) {
    c.bus_interfaces.push_back(
        {"S" + std::to_string(i) + "_AXI", BusInterfaceMode::kSlave, "aximm"});
  }
  c.bus_interfaces.push_back({"M_AXI", BusInterfaceMode::kMaster, "aximm"});
  c.bus_interfaces.push_back(
      {"S_AXI_CTRL", BusInterfaceMode::kSlave, "aximm-lite"});
  c.parameters.push_back({"NUM_PORTS", std::to_string(cfg.num_ports)});
  c.parameters.push_back(
      {"NOMINAL_BURST", std::to_string(cfg.nominal_burst)});
  c.parameters.push_back(
      {"MAX_OUTSTANDING", std::to_string(cfg.max_outstanding)});
  c.parameters.push_back(
      {"RESERVATION_PERIOD", std::to_string(cfg.reservation_period)});
  c.parameters.push_back(
      {"ROUTE_CAPACITY", std::to_string(cfg.route_capacity)});
  return c;
}

IpxactComponent describe_accelerator(const std::string& name,
                                     const std::string& vendor) {
  IpxactComponent c;
  c.vendor = vendor;
  c.library = "accelerators";
  c.name = name;
  c.version = "1.0";
  c.bus_interfaces.push_back({"M_AXI_DATA", BusInterfaceMode::kMaster,
                              "aximm"});
  c.bus_interfaces.push_back({"S_AXI_CTRL", BusInterfaceMode::kSlave,
                              "aximm-lite"});
  return c;
}

}  // namespace axihc
