// Markdown/CSV table printer for bench output. Benches print the same rows
// the paper's tables/figures report, so results diff cleanly run-to-run.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace axihc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders as a GitHub-flavored markdown table.
  void print_markdown(std::ostream& os) const;

  /// Renders as CSV.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `digits` decimal places.
  static std::string num(double value, int digits = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace axihc
