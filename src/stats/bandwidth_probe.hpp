// Non-intrusive per-window bandwidth probe — the role the Xilinx AXI
// Performance Monitor (APM) plays in real evaluations of this kind.
//
// Observes an AxiLink's data channels through their traffic counters
// (producer-side pushes) without touching the payload stream, and
// accumulates bytes per fixed window. Because observation is purely
// counter-based, attaching a probe cannot change timing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/axi.hpp"
#include "obs/metrics.hpp"
#include "sim/component.hpp"

namespace axihc {

class BandwidthProbe final : public Component {
 public:
  /// Watches `link`'s R and W channels with windows of `window` cycles
  /// (64-bit bus: 8 bytes per beat).
  BandwidthProbe(std::string name, AxiLink& link, Cycle window);

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override {
    // New pushes since the last tick must be accumulated into the current
    // window. During a frozen stretch the traffic counters cannot change,
    // so only the window boundary itself needs a tick (it closes the window
    // and appends to the series — observable state).
    if (link_.r.total_pushes() != last_r_pushes_ ||
        link_.w.total_pushes() != last_w_pushes_) {
      return now;
    }
    return window_end_ > now ? window_end_ : now;
  }

  /// Closed windows so far: bytes moved per window, per direction.
  [[nodiscard]] const std::vector<std::uint64_t>& read_window_bytes() const {
    return read_windows_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& write_window_bytes() const {
    return write_windows_;
  }

  [[nodiscard]] std::uint64_t total_read_bytes() const { return read_total_; }
  [[nodiscard]] std::uint64_t total_write_bytes() const {
    return write_total_;
  }

  /// Peak single-window read/write bytes (burstiness indicator).
  [[nodiscard]] std::uint64_t peak_read_window() const;
  [[nodiscard]] std::uint64_t peak_write_window() const;

  /// Average bandwidth over everything observed so far, in bytes/second.
  [[nodiscard]] double average_read_bw(double clock_hz, Cycle now) const;

  /// Registers cumulative byte counters with `reg`. Sampled as counters,
  /// the per-sample deltas reproduce the windowed series and the final
  /// sample equals total_read_bytes()/total_write_bytes() exactly.
  void register_metrics(MetricsRegistry& reg);

  /// Reads only its link's R/W traffic counters — the probe registers as an
  /// endpoint of those channels, so it islands together with their users.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

  void append_digest(StateDigest& d) const override {
    d.mix(read_total_);
    d.mix(write_total_);
    d.mix(static_cast<std::uint64_t>(read_windows_.size()));
    for (std::uint64_t w : read_windows_) d.mix(w);
    for (std::uint64_t w : write_windows_) d.mix(w);
  }

 private:
  static constexpr std::uint64_t kBusBytes = 8;

  AxiLink& link_;
  Cycle window_;
  std::uint64_t last_r_pushes_ = 0;
  std::uint64_t last_w_pushes_ = 0;
  std::uint64_t current_read_ = 0;
  std::uint64_t current_write_ = 0;
  std::uint64_t read_total_ = 0;
  std::uint64_t write_total_ = 0;
  Cycle window_end_ = 0;
  std::vector<std::uint64_t> read_windows_;
  std::vector<std::uint64_t> write_windows_;
};

}  // namespace axihc
