#include "stats/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace axihc {

void LatencyStats::record(Cycle latency) {
  samples_.push_back(latency);
  sorted_valid_ = false;
}

const std::vector<Cycle>& LatencyStats::sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

Cycle LatencyStats::min() const {
  AXIHC_CHECK(!samples_.empty());
  if (sorted_valid_) return sorted_.front();
  return *std::min_element(samples_.begin(), samples_.end());
}

Cycle LatencyStats::max() const {
  AXIHC_CHECK(!samples_.empty());
  if (sorted_valid_) return sorted_.back();
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyStats::mean() const {
  AXIHC_CHECK(!samples_.empty());
  double sum = 0;
  for (Cycle s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

Cycle LatencyStats::percentile(double p) const {
  AXIHC_CHECK(!samples_.empty());
  AXIHC_CHECK(p > 0 && p <= 100);
  const std::vector<Cycle>& s = sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(s.size())));
  return s[rank == 0 ? 0 : rank - 1];
}

double RateMeter::per_second(std::uint64_t completions, Cycle cycles) const {
  AXIHC_CHECK(cycles > 0);
  return static_cast<double>(completions) * clock_hz_ /
         static_cast<double>(cycles);
}

double RateMeter::bytes_per_second(std::uint64_t bytes, Cycle cycles) const {
  return per_second(bytes, cycles);
}

double RateMeter::to_us(Cycle cycles) const {
  return static_cast<double>(cycles) / clock_hz_ * 1e6;
}

WindowCounter::WindowCounter(Cycle window_length)
    : window_length_(window_length) {
  AXIHC_CHECK(window_length_ > 0);
}

void WindowCounter::roll_to(std::uint64_t window_index) {
  while (current_window_ < window_index) {
    history_.push_back(current_count_);
    current_count_ = 0;
    ++current_window_;
  }
}

void WindowCounter::record(Cycle now) {
  roll_to(now / window_length_);
  ++current_count_;
  ++total_;
}

void WindowCounter::flush(Cycle now) {
  // Close every window that started before `now`; a window beginning
  // exactly at `now` has not elapsed and is not opened.
  roll_to(now / window_length_ + (now % window_length_ != 0 ? 1 : 0));
}

std::uint64_t WindowCounter::max_window() const {
  std::uint64_t max = current_count_;
  for (auto w : history_) max = std::max(max, w);
  return max;
}

}  // namespace axihc
