#include "stats/bandwidth_probe.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace axihc {

BandwidthProbe::BandwidthProbe(std::string name, AxiLink& link, Cycle window)
    : Component(std::move(name)), link_(link), window_(window) {
  AXIHC_CHECK(window_ > 0);
  window_end_ = window_;
  // Counter reads are still cross-component state: co-island with the
  // link's producer/consumer so the observed counters are tick-order stable.
  link_.r.add_endpoint(*this);
  link_.w.add_endpoint(*this);
}

void BandwidthProbe::register_metrics(MetricsRegistry& reg) {
  reg.add_counter(name() + ".read_bytes", &read_total_);
  reg.add_counter(name() + ".write_bytes", &write_total_);
}

void BandwidthProbe::reset() {
  last_r_pushes_ = 0;
  last_w_pushes_ = 0;
  current_read_ = current_write_ = 0;
  read_total_ = write_total_ = 0;
  window_end_ = window_;
  read_windows_.clear();
  write_windows_.clear();
}

void BandwidthProbe::tick(Cycle now) {
  while (now >= window_end_) {
    read_windows_.push_back(current_read_);
    write_windows_.push_back(current_write_);
    current_read_ = current_write_ = 0;
    window_end_ += window_;
  }
  const std::uint64_t r = link_.r.total_pushes();
  const std::uint64_t w = link_.w.total_pushes();
  const std::uint64_t dr = (r - last_r_pushes_) * kBusBytes;
  const std::uint64_t dw = (w - last_w_pushes_) * kBusBytes;
  last_r_pushes_ = r;
  last_w_pushes_ = w;
  current_read_ += dr;
  current_write_ += dw;
  read_total_ += dr;
  write_total_ += dw;
}

std::uint64_t BandwidthProbe::peak_read_window() const {
  std::uint64_t peak = current_read_;
  for (const auto v : read_windows_) peak = std::max(peak, v);
  return peak;
}

std::uint64_t BandwidthProbe::peak_write_window() const {
  std::uint64_t peak = current_write_;
  for (const auto v : write_windows_) peak = std::max(peak, v);
  return peak;
}

double BandwidthProbe::average_read_bw(double clock_hz, Cycle now) const {
  AXIHC_CHECK(now > 0);
  return static_cast<double>(read_total_) * clock_hz /
         static_cast<double>(now);
}

}  // namespace axihc
