#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace axihc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AXIHC_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  AXIHC_CHECK_MSG(cells.size() == headers_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print_markdown(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::num(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace axihc
