// Measurement primitives: latency distributions, throughput/rate meters.
// These play the role of the paper's "custom-developed timer implemented in
// the FPGA fabric" (§VI-B): cycle-exact observation without disturbing the
// traffic.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace axihc {

/// Accumulates latency samples (in cycles) and reports min/max/mean and
/// percentiles. Samples are retained, so percentiles are exact. The sorted
/// order is cached across queries and invalidated by record(), so report
/// code asking for several percentiles sorts once, not per query.
class LatencyStats {
 public:
  void record(Cycle latency);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] Cycle min() const;
  [[nodiscard]] Cycle max() const;
  [[nodiscard]] double mean() const;

  /// Exact p-th percentile (0 < p <= 100) by nearest-rank. Requires samples.
  [[nodiscard]] Cycle percentile(double p) const;

  void clear() {
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = false;
  }
  [[nodiscard]] const std::vector<Cycle>& samples() const { return samples_; }

 private:
  [[nodiscard]] const std::vector<Cycle>& sorted() const;

  std::vector<Cycle> samples_;
  mutable std::vector<Cycle> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Converts (work completed, elapsed cycles) into per-second rates given the
/// fabric clock frequency. The ZCU102 designs in the paper clock the fabric
/// at 150..300 MHz; we default to 150 MHz (a common CHaiDNN configuration).
class RateMeter {
 public:
  explicit RateMeter(double clock_hz = kDefaultClockHz) : clock_hz_(clock_hz) {}

  static constexpr double kDefaultClockHz = 150e6;

  /// Completions per second for `completions` pieces of work in `cycles`.
  [[nodiscard]] double per_second(std::uint64_t completions,
                                  Cycle cycles) const;

  /// Bytes-per-second throughput.
  [[nodiscard]] double bytes_per_second(std::uint64_t bytes,
                                        Cycle cycles) const;

  /// Converts a cycle count into microseconds.
  [[nodiscard]] double to_us(Cycle cycles) const;

  [[nodiscard]] double clock_hz() const { return clock_hz_; }

 private:
  double clock_hz_;
};

/// Periodic-window bandwidth accounting: counts events per fixed window and
/// keeps the per-window history (used to validate reservation budgets:
/// "transactions per window never exceed the budget").
class WindowCounter {
 public:
  explicit WindowCounter(Cycle window_length);

  /// Notes one event at cycle `now`. Calls may not go back in time.
  void record(Cycle now);

  /// Closes all windows up to `now` (call at end of run before reading).
  void flush(Cycle now);

  [[nodiscard]] const std::vector<std::uint64_t>& windows() const {
    return history_;
  }
  [[nodiscard]] std::uint64_t max_window() const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  void roll_to(std::uint64_t window_index);

  Cycle window_length_;
  std::uint64_t current_window_ = 0;
  std::uint64_t current_count_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> history_;
};

}  // namespace axihc
