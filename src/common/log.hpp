// Minimal leveled logger for simulation diagnostics. Off by default so test
// and bench output stays clean; enable with Logger::set_level.
#pragma once

#include <sstream>
#include <string>

namespace axihc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Emits `message` to stderr if `level` is enabled.
  static void write(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) { os_ << tag; }
  ~LogLine() { Logger::write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace axihc

#define AXIHC_LOG_DEBUG() \
  ::axihc::detail::LogLine(::axihc::LogLevel::kDebug, "[debug] ")
#define AXIHC_LOG_INFO() \
  ::axihc::detail::LogLine(::axihc::LogLevel::kInfo, "[info ] ")
#define AXIHC_LOG_WARN() \
  ::axihc::detail::LogLine(::axihc::LogLevel::kWarn, "[warn ] ")
#define AXIHC_LOG_ERROR() \
  ::axihc::detail::LogLine(::axihc::LogLevel::kError, "[error] ")
