// Fixed-capacity circular buffer.
//
// This mirrors the hardware structure the paper uses everywhere: the eFIFO
// queues and the EXBAR routing-information memory are both "proactive
// circular buffers" (§V-B). Capacity is fixed at construction, exactly like
// a synthesized FIFO whose depth is a generic parameter.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace axihc {

template <typename T>
class RingBuffer {
 public:
  /// Creates a buffer holding at most `capacity` elements. A zero-capacity
  /// FIFO is meaningless in hardware and rejected.
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity) {
    AXIHC_CHECK(capacity > 0);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t free_slots() const { return capacity() - size_; }

  /// Appends an element. The caller must have checked `!full()` — pushing
  /// into a full hardware FIFO is a protocol violation, not a resize.
  void push(T value) {
    AXIHC_CHECK_MSG(!full(), "push into full RingBuffer(capacity="
                                 << capacity() << ")");
    slots_[tail_] = std::move(value);
    tail_ = next(tail_);
    ++size_;
  }

  /// Oldest element. Requires `!empty()`.
  [[nodiscard]] const T& front() const {
    AXIHC_CHECK(!empty());
    return slots_[head_];
  }

  [[nodiscard]] T& front() {
    AXIHC_CHECK(!empty());
    return slots_[head_];
  }

  /// Removes and returns the oldest element. Requires `!empty()`.
  T pop() {
    AXIHC_CHECK(!empty());
    T value = std::move(slots_[head_]);
    head_ = next(head_);
    --size_;
    return value;
  }

  /// Element `i` positions behind the head (0 == front). Requires i < size().
  [[nodiscard]] const T& at(std::size_t i) const {
    AXIHC_CHECK(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  /// Drops all contents (hardware reset).
  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t next(std::size_t i) const {
    return (i + 1) % slots_.size();
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace axihc
