// Fundamental scalar types shared by every module of the AXI HyperConnect
// simulation library.
#pragma once

#include <cstdint>
#include <limits>

namespace axihc {

/// Simulation time, in clock cycles of the FPGA-fabric clock domain.
using Cycle = std::uint64_t;

/// Byte address on the AXI bus (the paper's platforms use 32/40-bit physical
/// addresses; 64 bits cover both).
using Addr = std::uint64_t;

/// AXI transaction identifier (the AxID signal).
using TxnId = std::uint32_t;

/// Index of a slave input port on an interconnect (which HA it serves).
using PortIndex = std::uint32_t;

/// Number of data beats in a burst (AXI4 INCR allows 1..256).
using BeatCount = std::uint32_t;

/// Sentinel for "no cycle recorded yet".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/// Maximum burst length allowed by AXI4 for INCR bursts.
inline constexpr BeatCount kMaxAxi4BurstBeats = 256;

/// Maximum burst length allowed by AXI3.
inline constexpr BeatCount kMaxAxi3BurstBeats = 16;

/// Half-open byte range [base, base + bytes) in the physical address space.
/// Used by the memory path for address decode (mapped / error-synthesizing
/// windows).
struct AddrRange {
  Addr base = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] constexpr bool contains(Addr addr) const {
    return addr >= base && addr - base < bytes;
  }
  /// True if [addr, addr + len) lies entirely inside the range.
  [[nodiscard]] constexpr bool contains_span(Addr addr,
                                             std::uint64_t len) const {
    return addr >= base && len <= bytes && addr - base <= bytes - len;
  }
  /// True if [addr, addr + len) overlaps the range anywhere.
  [[nodiscard]] constexpr bool overlaps(Addr addr, std::uint64_t len) const {
    return addr < base + bytes && base < addr + len;
  }
};

}  // namespace axihc
