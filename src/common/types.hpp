// Fundamental scalar types shared by every module of the AXI HyperConnect
// simulation library.
#pragma once

#include <cstdint>
#include <limits>

namespace axihc {

/// Simulation time, in clock cycles of the FPGA-fabric clock domain.
using Cycle = std::uint64_t;

/// Byte address on the AXI bus (the paper's platforms use 32/40-bit physical
/// addresses; 64 bits cover both).
using Addr = std::uint64_t;

/// AXI transaction identifier (the AxID signal).
using TxnId = std::uint32_t;

/// Index of a slave input port on an interconnect (which HA it serves).
using PortIndex = std::uint32_t;

/// Number of data beats in a burst (AXI4 INCR allows 1..256).
using BeatCount = std::uint32_t;

/// Sentinel for "no cycle recorded yet".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/// Maximum burst length allowed by AXI4 for INCR bursts.
inline constexpr BeatCount kMaxAxi4BurstBeats = 256;

/// Maximum burst length allowed by AXI3.
inline constexpr BeatCount kMaxAxi3BurstBeats = 16;

}  // namespace axihc
