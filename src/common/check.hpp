// Run-time invariant checking. Simulation models are full of structural
// invariants ("a FIFO is never popped empty", "a B response always matches an
// outstanding AW"); violating one means the model itself is broken, so we
// throw instead of limping on with corrupted state (P.7: catch run-time
// errors early).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace axihc {

/// Raised when a model invariant is violated. Carries the failed condition
/// and the source location.
class ModelError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw ModelError(os.str());
}
}  // namespace detail

}  // namespace axihc

/// Always-on invariant check (models are not perf-critical enough to strip).
#define AXIHC_CHECK(cond)                                             \
  do {                                                                \
    if (!(cond))                                                      \
      ::axihc::detail::check_failed(#cond, __FILE__, __LINE__, {});   \
  } while (false)

/// Invariant check with an explanatory message (streamed into a string).
#define AXIHC_CHECK_MSG(cond, msg)                                    \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream axihc_os_;                                   \
      axihc_os_ << msg;                                               \
      ::axihc::detail::check_failed(#cond, __FILE__, __LINE__,        \
                                    axihc_os_.str());                 \
    }                                                                 \
  } while (false)
