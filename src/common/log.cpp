#include "common/log.hpp"

#include <iostream>

namespace axihc {

LogLevel Logger::level_ = LogLevel::kWarn;

void Logger::set_level(LogLevel level) { level_ = level; }

LogLevel Logger::level() { return level_; }

void Logger::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::cerr << message << '\n';
}

}  // namespace axihc
