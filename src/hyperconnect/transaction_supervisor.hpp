// Transaction Supervisor (TS) — the core bandwidth-management module of the
// AXI HyperConnect (§V-B).
//
// One TS per input port. Read and write transactions are managed by
// independent subsystems (AXI's parallel channels allow it):
//
//  * Burst equalization [11]: address requests longer than the programmable
//    nominal burst are split into sub-requests of nominal size. On reads the
//    returning data is merged back (RLAST is cleared on intermediate
//    sub-bursts); on writes the W stream is re-chunked and only the final
//    sub-burst's B response is forwarded to the HA. Every sub-request is one
//    arbitration unit at the EXBAR, so masters with heterogeneous burst
//    sizes compete fairly.
//
//  * Outstanding-transaction limiting: at most `max_outstanding`
//    sub-transactions in flight per port and direction.
//
//  * Bandwidth reservation [10]: each sub-transaction issued consumes one
//    unit of the port's budget; the central unit recharges all budgets
//    synchronously every reservation period. A port whose budget is
//    exhausted is stalled until the next recharge.
//
// The TS adds one cycle of latency per address request (its output is a
// pipeline stage) and zero cycles on R/W/B, which it processes proactively.
#pragma once

#include <cstdint>
#include <optional>

#include "axi/axi.hpp"
#include "common/ring_buffer.hpp"
#include "hyperconnect/config.hpp"
#include "hyperconnect/efifo.hpp"
#include "sim/channel.hpp"

namespace axihc {

class TransactionSupervisor {
 public:
  /// Per-port supervisor reading shared runtime state `rt` (owned by the
  /// HyperConnect, programmed via the control interface).
  TransactionSupervisor(PortIndex port, const HcRuntime& rt);

  /// Description of one sub-transaction issued this cycle (consumed by the
  /// protection unit's in-flight tracking). `id` is the HA-side ID, before
  /// any ID extension.
  struct IssuedSub {
    TxnId id = 0;
    bool is_final = false;
  };

  /// Read-management issue step: moves at most one sub-AR from the port
  /// eFIFO into the TS output stage. `budget_left` is the port's remaining
  /// reservation budget (shared between read and write subsystems).
  /// Returns the sub-transaction issued this cycle, if any.
  std::optional<IssuedSub> tick_read_issue(Efifo& in,
                                           TimingChannel<AddrReq>& ts_ar,
                                           std::uint32_t& budget_left);

  /// Write-management issue step (sub-AW), symmetric to reads.
  std::optional<IssuedSub> tick_write_issue(Efifo& in,
                                            TimingChannel<AddrReq>& ts_aw,
                                            std::uint32_t& budget_left);

  /// Read merge: fixes up RLAST across split sub-bursts and tracks
  /// outstanding reads. Call for every R beat routed to this port. Error
  /// responses are sticky across the sub-bursts of one HA transaction: once
  /// any merged beat carried SLVERR/DECERR, every later beat of the same HA
  /// burst reports (at least) that response.
  [[nodiscard]] RBeat process_r_beat(RBeat beat);

  /// Write-response merge: returns true if this B response corresponds to
  /// the final sub-burst of an HA transaction and must be forwarded. The
  /// forwarded response is rewritten to the worst of all sub-burst
  /// responses of the merged transaction.
  [[nodiscard]] bool process_b(BResp& resp);

  /// True if the next issue tick could make progress: a fresh HA request is
  /// waiting in the eFIFO, or an in-progress split may issue its next
  /// sub-request (stage headroom, outstanding slot and budget permitting).
  /// Pure observation for the kernel's activity scheduling.
  [[nodiscard]] bool issue_pending(const Efifo& in,
                                   const TimingChannel<AddrReq>& ts_ar,
                                   const TimingChannel<AddrReq>& ts_aw,
                                   std::uint32_t budget_left) const;

  [[nodiscard]] std::uint32_t reads_outstanding() const {
    return reads_outstanding_;
  }
  [[nodiscard]] std::uint32_t writes_outstanding() const {
    return writes_outstanding_;
  }

  /// Sub-transactions issued since reset (read + write) — exported through
  /// the TXN_COUNT register.
  [[nodiscard]] std::uint64_t subtransactions_issued() const {
    return sub_issued_;
  }

  void reset();

  /// Drops the not-yet-issued remainder of any in-progress burst split
  /// (decoupling flush). Sub-transactions already issued keep their merge
  /// bookkeeping so in-flight responses stay consistent.
  void abort_pending_issue() {
    read_split_ = SplitProgress{};
    write_split_ = SplitProgress{};
  }

  /// HA-side ID of the read transaction currently being split, if any (the
  /// protection unit synthesizes its terminal completion on a fault, since
  /// the final sub-request was never issued downstream).
  [[nodiscard]] std::optional<TxnId> active_read_id() const {
    if (read_split_.active) return read_split_.orig.id;
    return std::nullopt;
  }
  [[nodiscard]] std::optional<TxnId> active_write_id() const {
    if (write_split_.active) return write_split_.orig.id;
    return std::nullopt;
  }

 private:
  /// Progress of splitting one HA transaction into sub-requests.
  struct SplitProgress {
    bool active = false;
    AddrReq orig{};
    BeatCount remaining = 0;
    Addr next_addr = 0;
  };

  [[nodiscard]] BeatCount next_sub_beats(const SplitProgress& sp) const;
  IssuedSub issue_sub(SplitProgress& sp, TimingChannel<AddrReq>& out,
                      RingBuffer<std::uint8_t>& pending_finals,
                      std::uint32_t& outstanding, std::uint32_t& budget_left);
  [[nodiscard]] bool may_issue(const TimingChannel<AddrReq>& out,
                               std::uint32_t outstanding,
                               std::uint32_t budget_left) const;

  PortIndex port_;
  const HcRuntime& rt_;

  SplitProgress read_split_;
  SplitProgress write_split_;
  /// is-final flags of in-flight sub-bursts, in issue order.
  RingBuffer<std::uint8_t> pending_split_reads_{512};
  RingBuffer<std::uint8_t> pending_split_writes_{512};
  std::uint32_t reads_outstanding_ = 0;
  std::uint32_t writes_outstanding_ = 0;
  std::uint64_t sub_issued_ = 0;
  /// Worst-of accumulator over the sub-burst B responses of the write
  /// transaction currently being merged.
  Resp b_accum_ = Resp::kOkay;
  /// Sticky error response across the merged sub-bursts of the current read
  /// transaction.
  Resp r_sticky_ = Resp::kOkay;
};

}  // namespace axihc
