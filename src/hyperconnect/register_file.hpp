// Memory-mapped register file of the AXI HyperConnect control interface
// (§V-A "Runtime reconfiguration").
//
// The HyperConnect exports a control AXI slave interface so its
// configuration can be changed from the PS at run time; in the considered
// framework this interface is managed exclusively by the hypervisor. This
// file defines the register map (also implemented by the open-source driver
// in src/driver) and the register-access semantics.
//
// Register map (64-bit registers, byte offsets):
//   0x000 CTRL                rw  bit0 = global enable
//   0x008 NOMINAL_BURST       rw  equalization burst size in beats; 0 = off
//   0x010 RESERVATION_PERIOD  rw  budget recharge period in cycles; 0 = off
//   0x018 OUTSTANDING_LIMIT   rw  per-port, per-direction sub-txn limit
//   0x020 NUM_PORTS           ro
//   0x028 ID                  ro  0xA81C0001
//   0x030 PROT_TIMEOUT        rw  protection-unit timeout in cycles; 0 = off
//   0x100 + 8*i BUDGET[i]     rw  transactions per period for port i
//   0x200 + 8*i PORT_CTRL[i]  rw  bit0 = coupled (0 decouples the port)
//   0x300 + 8*i TXN_COUNT[i]  ro  sub-transactions issued by port i
//   0x400 + 8*i FAULT_STATUS[i] rw1c bit0 = faulted, bits[3:1] = cause
//                                  (FaultCause); any write clears the latch
//                                  and re-arms the port
//   0x500 + 8*i FAULT_COUNT[i]  ro faults latched on port i since reset
//   0x600 + 8*i FAULT_CYCLE[i]  ro cycle of port i's most recent fault
//   0x700 + 8*i INFLIGHT[i]     ro sub-transactions of port i still pending
//                                  downstream (reads + writes); the recovery
//                                  FSM's drain gate
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "hyperconnect/config.hpp"

namespace axihc::hcregs {

inline constexpr Addr kCtrl = 0x000;
inline constexpr Addr kNominalBurst = 0x008;
inline constexpr Addr kReservationPeriod = 0x010;
inline constexpr Addr kOutstandingLimit = 0x018;
inline constexpr Addr kNumPorts = 0x020;
inline constexpr Addr kId = 0x028;
inline constexpr Addr kProtTimeout = 0x030;
inline constexpr Addr kBudgetBase = 0x100;
inline constexpr Addr kPortCtrlBase = 0x200;
inline constexpr Addr kTxnCountBase = 0x300;
inline constexpr Addr kFaultStatusBase = 0x400;
inline constexpr Addr kFaultCountBase = 0x500;
inline constexpr Addr kFaultCycleBase = 0x600;
inline constexpr Addr kInflightBase = 0x700;
inline constexpr Addr kRegStride = 8;

inline constexpr std::uint64_t kIdValue = 0xA81C0001;

/// FAULT_STATUS layout: bit 0 = faulted, bits [3:1] = FaultCause.
inline constexpr std::uint64_t kFaultStatusFaultedBit = 1;
inline constexpr std::uint32_t kFaultStatusCauseShift = 1;

[[nodiscard]] inline Addr budget(PortIndex i) {
  return kBudgetBase + kRegStride * i;
}
[[nodiscard]] inline Addr port_ctrl(PortIndex i) {
  return kPortCtrlBase + kRegStride * i;
}
[[nodiscard]] inline Addr txn_count(PortIndex i) {
  return kTxnCountBase + kRegStride * i;
}
[[nodiscard]] inline Addr fault_status(PortIndex i) {
  return kFaultStatusBase + kRegStride * i;
}
[[nodiscard]] inline Addr fault_count(PortIndex i) {
  return kFaultCountBase + kRegStride * i;
}
[[nodiscard]] inline Addr fault_cycle(PortIndex i) {
  return kFaultCycleBase + kRegStride * i;
}
[[nodiscard]] inline Addr inflight(PortIndex i) {
  return kInflightBase + kRegStride * i;
}

}  // namespace axihc::hcregs

namespace axihc {

/// Decodes register reads/writes against the HcRuntime it supervises.
/// TXN_COUNT and INFLIGHT reads are served through callbacks into the
/// TS/PU counters.
class HcRegisterFile {
 public:
  /// `runtime` is borrowed (owned by the HyperConnect). `txn_count_fn`
  /// returns the sub-transaction count of a port; `inflight_fn` the number
  /// of its sub-transactions still pending downstream (nullptr reads as 0 —
  /// register-file unit tests don't model the protection units).
  HcRegisterFile(HcRuntime& runtime,
                 std::function<std::uint64_t(PortIndex)> txn_count_fn,
                 std::function<std::uint64_t(PortIndex)> inflight_fn = {});

  /// Applies a register write. Unknown/read-only offsets are ignored
  /// (hardware-style: writes to RO registers have no effect) but counted.
  void write(Addr offset, std::uint64_t value);

  /// Reads a register. Unknown offsets read as zero.
  [[nodiscard]] std::uint64_t read(Addr offset) const;

  [[nodiscard]] std::uint64_t ignored_writes() const {
    return ignored_writes_;
  }

 private:
  [[nodiscard]] std::uint32_t num_ports() const {
    return static_cast<std::uint32_t>(runtime_.budgets.size());
  }

  HcRuntime& runtime_;
  std::function<std::uint64_t(PortIndex)> txn_count_fn_;
  std::function<std::uint64_t(PortIndex)> inflight_fn_;
  std::uint64_t ignored_writes_ = 0;
};

}  // namespace axihc
