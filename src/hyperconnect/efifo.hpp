// eFIFO — efficient first-in-first-out queuing module (§V-B).
//
// Each HA-facing slave port of the HyperConnect is an eFIFO: five
// independent proactive (always-ready) circular-buffer queues, one per AXI
// channel, each adding exactly one cycle of latency. In this model the five
// queues are the TimingChannels of the port's AxiLink (a TimingChannel *is*
// a one-cycle circular-buffer queue); the Efifo class adds the part that is
// specific to the paper: the decoupling mechanism.
//
// When a port is decoupled, the AXI handshake signals are held low and all
// other signals grounded, completely disconnecting the HA (used by the
// hypervisor to isolate misbehaving/faulty HAs and during dynamic partial
// reconfiguration). Here that means: the interconnect side stops popping
// AR/AW/W (the HA back-pressures and stalls) and stops pushing R/B
// (responses for a decoupled port are dropped, as they would be on a
// grounded wire).
#pragma once

#include "axi/axi.hpp"

namespace axihc {

class Efifo {
 public:
  /// Wraps the five queues of `link` (borrowed; must outlive the Efifo).
  explicit Efifo(AxiLink& link) : link_(&link) {}

  [[nodiscard]] bool coupled() const { return coupled_; }
  void set_coupled(bool on) { coupled_ = on; }

  /// Fault latch set by the protection unit on a protocol timeout or a
  /// malformed burst. A faulted port behaves like a decoupled one on the
  /// request side (inputs grounded, responses dropped) but its R/B queues
  /// are *not* continuously flushed, so the synthesized SLVERR completions
  /// stay deliverable to the (misbehaving) HA. Cleared by a hypervisor
  /// write to the port's FAULT_STATUS register.
  [[nodiscard]] bool faulted() const { return faulted_; }
  void set_faulted(bool on) { faulted_ = on; }

  /// Port carries traffic: coupled and not latched as faulted.
  [[nodiscard]] bool active() const { return coupled_ && !faulted_; }

  // --- slave side as seen by the interconnect logic --------------------
  [[nodiscard]] bool ar_available() const {
    return active() && link_->ar.can_pop();
  }
  [[nodiscard]] const AddrReq& peek_ar() const { return link_->ar.front(); }
  AddrReq pop_ar() { return link_->ar.pop(); }

  [[nodiscard]] bool aw_available() const {
    return active() && link_->aw.can_pop();
  }
  [[nodiscard]] const AddrReq& peek_aw() const { return link_->aw.front(); }
  AddrReq pop_aw() { return link_->aw.pop(); }

  [[nodiscard]] bool w_available() const {
    return active() && link_->w.can_pop();
  }
  WBeat pop_w() { return link_->w.pop(); }

  [[nodiscard]] bool can_push_r() const {
    return active() && link_->r.can_push();
  }
  void push_r(const RBeat& beat) { link_->r.push(beat); }

  [[nodiscard]] bool can_push_b() const {
    return active() && link_->b.can_push();
  }
  void push_b(const BResp& resp) { link_->b.push(resp); }

  /// Total occupancy across the five channel queues (the paper's eFIFO
  /// fill level, exported as the `efifo_level` gauge). The counts live in
  /// the Simulator's hot-state pool — TimingChannel::size() reads the
  /// pooled head/committed words — so sampling this is pure reads.
  [[nodiscard]] std::size_t level() const {
    return link_->ar.size() + link_->aw.size() + link_->w.size() +
           link_->r.size() + link_->b.size();
  }

  [[nodiscard]] AxiLink& link() { return *link_; }

 private:
  AxiLink* link_;
  bool coupled_ = true;
  bool faulted_ = false;
};

}  // namespace axihc
