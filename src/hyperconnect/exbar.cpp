#include "hyperconnect/exbar.hpp"

#include "common/check.hpp"

namespace axihc {

Exbar::Exbar(std::uint32_t num_ports, std::uint32_t route_capacity,
             bool order_based_routing, ArbitrationPolicy policy)
    : num_ports_(num_ports),
      order_based_(order_based_routing),
      policy_(policy),
      read_route_(route_capacity),
      write_route_(route_capacity),
      b_route_(route_capacity) {
  AXIHC_CHECK(num_ports_ >= 1);
  AXIHC_CHECK(route_capacity >= 1);
}

void Exbar::reset() {
  rr_ar_ = 0;
  rr_aw_ = 0;
  read_route_.clear();
  write_route_.clear();
  b_route_.clear();
}

std::optional<PortIndex> Exbar::pick(
    std::vector<TimingChannel<AddrReq>*>& chans, PortIndex& rr) const {
  // The candidate scan wraps rr+i with a compare-subtract instead of a
  // modulo: both operands are < num_ports_, and the hardware divide was the
  // single hottest instruction of the whole kernel (per-port, per-channel,
  // per-cycle).
  if (policy_ == ArbitrationPolicy::kQosPriority) {
    // Highest AxQOS wins; round-robin pointer breaks ties among equals.
    std::optional<PortIndex> best;
    std::uint8_t best_qos = 0;
    for (std::uint32_t i = 0; i < num_ports_; ++i) {
      PortIndex cand = rr + i;
      if (cand >= num_ports_) cand -= num_ports_;
      if (!chans[cand]->can_pop()) continue;
      const std::uint8_t qos = chans[cand]->front().qos;
      if (!best.has_value() || qos > best_qos) {
        best = cand;
        best_qos = qos;
      }
    }
    return best;
  }
  // Fixed granularity round-robin: after granting port p, the pointer moves
  // past p, so each port gets at most one transaction per round-cycle.
  for (std::uint32_t i = 0; i < num_ports_; ++i) {
    PortIndex cand = rr + i;
    if (cand >= num_ports_) cand -= num_ports_;
    if (chans[cand]->can_pop()) return cand;
  }
  return std::nullopt;
}

std::optional<PortIndex> Exbar::grant_read(
    std::vector<TimingChannel<AddrReq>*>& ts_ar, TimingChannel<AddrReq>& out) {
  if (!out.can_push() || (order_based_ && read_route_.full())) {
    return std::nullopt;
  }
  const std::optional<PortIndex> cand = pick(ts_ar, rr_ar_);
  if (!cand.has_value()) return std::nullopt;
  out.push(ts_ar[*cand]->pop());
  if (order_based_) read_route_.push({*cand});
  rr_ar_ = *cand + 1 == num_ports_ ? 0 : *cand + 1;
  return cand;
}

std::optional<PortIndex> Exbar::grant_write(
    std::vector<TimingChannel<AddrReq>*>& ts_aw, TimingChannel<AddrReq>& out) {
  if (!out.can_push() || write_route_.full() ||
      (order_based_ && b_route_.full())) {
    return std::nullopt;
  }
  const std::optional<PortIndex> cand = pick(ts_aw, rr_aw_);
  if (!cand.has_value()) return std::nullopt;
  const AddrReq req = ts_aw[*cand]->pop();
  write_route_.push({*cand, req.beats, req.tag != 0});
  if (order_based_) b_route_.push(*cand);
  out.push(req);
  rr_aw_ = *cand + 1 == num_ports_ ? 0 : *cand + 1;
  return cand;
}

}  // namespace axihc
