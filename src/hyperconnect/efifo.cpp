// Efifo is header-only; this translation unit exists so the module has an
// object file (and a place for future non-inline logic).
#include "hyperconnect/efifo.hpp"
