#include "hyperconnect/transaction_supervisor.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace axihc {

TransactionSupervisor::TransactionSupervisor(PortIndex port,
                                             const HcRuntime& rt)
    : port_(port), rt_(rt) {}

void TransactionSupervisor::reset() {
  read_split_ = SplitProgress{};
  write_split_ = SplitProgress{};
  pending_split_reads_.clear();
  pending_split_writes_.clear();
  reads_outstanding_ = 0;
  writes_outstanding_ = 0;
  sub_issued_ = 0;
  b_accum_ = Resp::kOkay;
  r_sticky_ = Resp::kOkay;
}

BeatCount TransactionSupervisor::next_sub_beats(
    const SplitProgress& sp) const {
  // Equalization applies to FIXED and INCR bursts; WRAP bursts (rare,
  // cache-line refills) pass unsplit because splitting would change their
  // wrapping semantics.
  if (rt_.nominal_burst == 0 || sp.orig.burst == BurstType::kWrap) {
    return sp.remaining;
  }
  return std::min<BeatCount>(sp.remaining, rt_.nominal_burst);
}

bool TransactionSupervisor::may_issue(const TimingChannel<AddrReq>& out,
                                      std::uint32_t outstanding,
                                      std::uint32_t budget_left) const {
  if (!rt_.global_enable) return false;
  if (!out.can_push()) return false;
  if (outstanding >= rt_.max_outstanding) return false;
  if (rt_.reservation_period != 0 && budget_left == 0) return false;
  return true;
}

TransactionSupervisor::IssuedSub TransactionSupervisor::issue_sub(
    SplitProgress& sp, TimingChannel<AddrReq>& out,
    RingBuffer<std::uint8_t>& pending_finals, std::uint32_t& outstanding,
    std::uint32_t& budget_left) {
  const BeatCount sub_beats = next_sub_beats(sp);
  AXIHC_CHECK(sub_beats > 0 && sub_beats <= sp.remaining);

  const bool is_final = sp.remaining == sub_beats;
  AddrReq sub = sp.orig;
  sub.addr = sp.next_addr;
  sub.beats = sub_beats;
  if (rt_.out_of_order) {
    // ID-extension mode: prepend the source port so out-of-order responses
    // remain routable (and per-port order enforceable) downstream.
    AXIHC_CHECK_MSG(sp.orig.id < (TxnId{1} << kIdPortShift),
                    "HA id too wide for ID-extension mode");
    sub.id = sp.orig.id | (static_cast<TxnId>(port_) << kIdPortShift);
  }
  // The tag tells the EXBAR whether this sub-burst ends the HA transaction
  // (it expects the HA's original WLAST on the final W beat).
  sub.tag = is_final ? 1 : 0;
  out.push(sub);

  AXIHC_CHECK_MSG(!pending_finals.full(),
                  "TS port " << port_ << ": split bookkeeping overflow");
  pending_finals.push(is_final ? 1 : 0);
  ++outstanding;
  ++sub_issued_;
  if (rt_.reservation_period != 0) --budget_left;

  sp.remaining -= sub_beats;
  if (sp.orig.burst != BurstType::kFixed) {
    sp.next_addr += std::uint64_t{sub_beats} << sp.orig.size_log2;
  }
  if (sp.remaining == 0) sp.active = false;
  return {sp.orig.id, is_final};
}

bool TransactionSupervisor::issue_pending(
    const Efifo& in, const TimingChannel<AddrReq>& ts_ar,
    const TimingChannel<AddrReq>& ts_aw, std::uint32_t budget_left) const {
  if (rt_.global_enable && !read_split_.active && in.ar_available()) {
    return true;
  }
  if (rt_.global_enable && !write_split_.active && in.aw_available()) {
    return true;
  }
  if (read_split_.active && may_issue(ts_ar, reads_outstanding_, budget_left)) {
    return true;
  }
  if (write_split_.active &&
      may_issue(ts_aw, writes_outstanding_, budget_left)) {
    return true;
  }
  return false;
}

std::optional<TransactionSupervisor::IssuedSub>
TransactionSupervisor::tick_read_issue(Efifo& in,
                                       TimingChannel<AddrReq>& ts_ar,
                                       std::uint32_t& budget_left) {
  if (!read_split_.active && rt_.global_enable && in.ar_available()) {
    const AddrReq req = in.pop_ar();
    read_split_ = {true, req, req.beats, req.addr};
  }
  if (read_split_.active &&
      may_issue(ts_ar, reads_outstanding_, budget_left)) {
    return issue_sub(read_split_, ts_ar, pending_split_reads_,
                     reads_outstanding_, budget_left);
  }
  return std::nullopt;
}

std::optional<TransactionSupervisor::IssuedSub>
TransactionSupervisor::tick_write_issue(Efifo& in,
                                        TimingChannel<AddrReq>& ts_aw,
                                        std::uint32_t& budget_left) {
  if (!write_split_.active && rt_.global_enable && in.aw_available()) {
    const AddrReq req = in.pop_aw();
    write_split_ = {true, req, req.beats, req.addr};
  }
  if (write_split_.active &&
      may_issue(ts_aw, writes_outstanding_, budget_left)) {
    return issue_sub(write_split_, ts_aw, pending_split_writes_,
                     writes_outstanding_, budget_left);
  }
  return std::nullopt;
}

RBeat TransactionSupervisor::process_r_beat(RBeat beat) {
  AXIHC_CHECK_MSG(!pending_split_reads_.empty(),
                  "TS port " << port_ << ": R beat with no sub-read pending");
  // Sticky error merge: an error on any sub-burst beat poisons the rest of
  // the HA transaction, so the HA sees the error even if it only checks the
  // final beat.
  r_sticky_ = worst_resp(r_sticky_, beat.resp);
  beat.resp = r_sticky_;
  if (beat.last) {
    // End of one sub-burst at the memory side. Only the final sub-burst of
    // the HA's original transaction keeps RLAST.
    const bool is_final = pending_split_reads_.front() != 0;
    pending_split_reads_.pop();
    AXIHC_CHECK(reads_outstanding_ > 0);
    --reads_outstanding_;
    beat.last = is_final;
    if (is_final) r_sticky_ = Resp::kOkay;
  }
  return beat;
}

bool TransactionSupervisor::process_b(BResp& resp) {
  AXIHC_CHECK_MSG(!pending_split_writes_.empty(),
                  "TS port " << port_ << ": B with no sub-write pending");
  const bool is_final = pending_split_writes_.front() != 0;
  pending_split_writes_.pop();
  AXIHC_CHECK(writes_outstanding_ > 0);
  --writes_outstanding_;
  b_accum_ = worst_resp(b_accum_, resp.resp);
  if (!is_final) return false;
  // The single B forwarded to the HA reports the worst sub-burst response.
  resp.resp = b_accum_;
  b_accum_ = Resp::kOkay;
  return true;
}

}  // namespace axihc
