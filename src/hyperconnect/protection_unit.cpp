#include "hyperconnect/protection_unit.hpp"

#include "common/check.hpp"

namespace axihc {

void ProtectionUnit::reset() {
  reads_.clear();
  writes_.clear();
  w_stall_ = r_stall_ = b_stall_ = 0;
  malformed_ = false;
  synth_dropped_ = 0;
}

void ProtectionUnit::on_issue_read(TxnId id, bool is_final, Cycle now) {
  reads_.push_back({id, is_final, now});
}

void ProtectionUnit::on_issue_write(TxnId id, bool is_final, Cycle now) {
  writes_.push_back({id, is_final, now});
}

void ProtectionUnit::on_read_sub_complete() {
  AXIHC_CHECK_MSG(!reads_.empty(),
                  "PU port " << port_ << ": read completion with no record");
  reads_.pop_front();
}

void ProtectionUnit::on_write_sub_complete() {
  AXIHC_CHECK_MSG(!writes_.empty(),
                  "PU port " << port_ << ": write completion with no record");
  writes_.pop_front();
}

void ProtectionUnit::observe_w_stall(bool stalled) {
  w_stall_ = stalled ? w_stall_ + 1 : 0;
}

void ProtectionUnit::observe_r_stall(bool stalled) {
  r_stall_ = stalled ? r_stall_ + 1 : 0;
}

void ProtectionUnit::observe_b_stall(bool stalled) {
  b_stall_ = stalled ? b_stall_ + 1 : 0;
}

FaultCause ProtectionUnit::evaluate_stalls() const {
  // A malformed burst is a hard protocol violation: fault immediately, even
  // with timeouts disabled.
  if (malformed_) return FaultCause::kMalformed;
  if (rt_.prot_timeout == 0) return FaultCause::kNone;
  if (w_stall_ >= rt_.prot_timeout) return FaultCause::kWriteStall;
  if (r_stall_ >= rt_.prot_timeout) return FaultCause::kReadStall;
  if (b_stall_ >= rt_.prot_timeout) return FaultCause::kRespStall;
  return FaultCause::kNone;
}

std::optional<Cycle> ProtectionUnit::oldest_issue() const {
  std::optional<Cycle> oldest;
  if (!reads_.empty()) oldest = reads_.front().issued_at;
  if (!writes_.empty() &&
      (!oldest.has_value() || writes_.front().issued_at < *oldest)) {
    oldest = writes_.front().issued_at;
  }
  return oldest;
}

void ProtectionUnit::restamp(Cycle now) {
  for (auto& r : reads_) r.issued_at = now;
  for (auto& w : writes_) w.issued_at = now;
}

void ProtectionUnit::clear_stalls() {
  w_stall_ = r_stall_ = b_stall_ = 0;
  malformed_ = false;
}

}  // namespace axihc
