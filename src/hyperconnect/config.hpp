// Configuration of the AXI HyperConnect: synthesis-time structure
// (HyperConnectConfig) and run-time state programmable through the control
// interface (HcRuntime + the register map in hyperconnect/register_file.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "axi/axi.hpp"
#include "common/types.hpp"

namespace axihc {

/// EXBAR arbitration policy. The paper's EXBAR is fixed-granularity
/// round-robin (kRoundRobin) — the predictable choice. kQosPriority is an
/// opt-in extension honouring the AXI AxQOS signal that SmartConnect
/// ignores: strict priority by QoS value, round-robin among equals. It can
/// starve low-QoS masters; pair it with bandwidth reservation.
enum class ArbitrationPolicy { kRoundRobin, kQosPriority };

/// Synthesis-time parameters (fixed when the bitstream is built).
struct HyperConnectConfig {
  std::uint32_t num_ports = 2;

  /// eFIFO queue depths for each HA-facing slave port (five queues each).
  AxiLinkConfig port_link_cfg{};
  /// eFIFO queue depths for the master port toward the FPGA-PS interface.
  AxiLinkConfig master_link_cfg{};
  /// Depths of the control-interface AXI-Lite-style link.
  AxiLinkConfig control_link_cfg{.ar_depth = 4, .aw_depth = 4, .w_depth = 4,
                                 .r_depth = 4, .b_depth = 4};

  /// Depth of the per-port TS -> EXBAR pipeline stage.
  std::size_t ts_stage_depth = 2;
  /// Depth of the EXBAR -> master-eFIFO pipeline stage.
  std::size_t xbar_stage_depth = 2;
  /// Capacity of the EXBAR routing-information memories (bounds the
  /// interconnect-wide outstanding transactions).
  std::uint32_t route_capacity = 64;

  // --- initial values of the run-time registers ------------------------
  /// Nominal burst size for transaction equalization [11], in beats.
  /// 0 disables equalization (transactions pass unsplit).
  BeatCount nominal_burst = 16;
  /// Per-port outstanding (sub-)transaction limit, per direction.
  std::uint32_t max_outstanding = 4;
  /// Bandwidth-reservation period T in cycles [10]. 0 disables reservation.
  Cycle reservation_period = 0;
  /// Per-port budgets (transactions per period). Sized/padded to num_ports.
  std::vector<std::uint32_t> initial_budgets{};
  /// Protection-unit timeout in cycles: a port whose handshake makes no
  /// progress for this long (or whose oldest sub-transaction outlives it
  /// end-to-end) is faulted — SLVERR completions are synthesized and the
  /// port is isolated. 0 disables the timeout (malformed-burst detection
  /// stays active).
  Cycle prot_timeout = 0;

  /// EXBAR arbitration policy (see above).
  ArbitrationPolicy arbitration = ArbitrationPolicy::kRoundRobin;

  /// FUTURE-WORK EXTENSION (paper §V-A "Compatibility"): support memory
  /// subsystems that complete transactions out of order. When enabled, the
  /// TS extends every downstream ID with the source-port number
  /// (id | port << kIdPortShift) and the R/B paths route by ID instead of
  /// by grant order. HA-side IDs must stay below 2^kIdPortShift.
  bool out_of_order = false;
};

/// Bit position where the ID-extension mode inserts the port number.
inline constexpr std::uint32_t kIdPortShift = 16;

/// Why the protection unit faulted a port (FAULT_STATUS bits [3:1]).
enum class FaultCause : std::uint8_t {
  kNone = 0,
  /// The HA stopped accepting read data (RREADY held low) and its full R
  /// queue blocked the shared read path.
  kReadStall = 1,
  /// A granted sub-write starved for W data (hung W stream).
  kWriteStall = 2,
  /// The HA stopped accepting write responses (BREADY held low).
  kRespStall = 3,
  /// WLAST did not line up with the advertised burst length.
  kMalformed = 4,
  /// End-to-end sub-transaction age exceeded the timeout with no specific
  /// handshake to blame (backstop).
  kTimeout = 5,
};

/// Per-port fault latch maintained by the protection unit, exposed through
/// the FAULT_STATUS / FAULT_COUNT / FAULT_CYCLE registers.
struct PortFault {
  bool faulted = false;
  FaultCause cause = FaultCause::kNone;
  /// Faults latched since reset (read-only; survives clearing the latch).
  std::uint64_t count = 0;
  /// Cycle of the most recent fault.
  Cycle last_cycle = 0;
};

/// Run-time state, owned by the HyperConnect and mutated only through the
/// register file (i.e. by the hypervisor over the control interface).
struct HcRuntime {
  bool global_enable = true;
  BeatCount nominal_burst = 16;
  std::uint32_t max_outstanding = 4;
  Cycle reservation_period = 0;
  std::vector<std::uint32_t> budgets;  // per port
  std::vector<bool> coupled;           // per port decoupling state
  /// Protection-unit timeout in cycles (0 = timeouts off).
  Cycle prot_timeout = 0;
  /// Per-port protection-unit fault latches.
  std::vector<PortFault> fault;
  /// Synthesis-time (not register-mapped): ID-extension / out-of-order mode.
  bool out_of_order = false;
};

}  // namespace axihc
