// AXI HyperConnect — the paper's contribution (§V): a predictable,
// hypervisor-level AXI interconnect.
//
// Architecture (Fig. 2): each HA-facing slave port is an eFIFO feeding a
// Transaction Supervisor; all TS modules feed the EXBAR crossbar, whose
// output goes through a master eFIFO to the FPGA-PS interface. A central
// unit recharges reservation budgets synchronously, and a control AXI slave
// interface exposes the register file for run-time reconfiguration by the
// hypervisor.
//
// Pipeline latency (matches Fig. 3(a)):
//   AR/AW : 4 cycles (slave eFIFO, TS, EXBAR, master eFIFO — 1 each)
//   R/W/B : 2 cycles (slave eFIFO + master eFIFO; TS and EXBAR handle these
//           channels proactively, adding no latency)
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "hyperconnect/config.hpp"
#include "hyperconnect/efifo.hpp"
#include "hyperconnect/exbar.hpp"
#include "hyperconnect/protection_unit.hpp"
#include "hyperconnect/register_file.hpp"
#include "hyperconnect/transaction_supervisor.hpp"
#include "interconnect/interconnect.hpp"
#include "obs/audit_hooks.hpp"
#include "obs/metrics.hpp"
#include "sim/soa_pool.hpp"
#include "sim/trace.hpp"

namespace axihc {

class HyperConnect final : public Interconnect {
 public:
  HyperConnect(std::string name, HyperConnectConfig cfg = {});

  void tick(Cycle now) override;
  void reset() override;
  void register_with(Simulator& sim) override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override;

  /// Moves the per-port budget counters and the recharge-deadline cache
  /// into the Simulator's hot-state pool (sim/soa_pool.hpp).
  void adopt_hot_state(HotStatePool& pool) override;

  /// The control AXI slave interface (AXI-Lite-style: single-beat
  /// transactions). In the considered framework only the hypervisor masters
  /// this link.
  [[nodiscard]] AxiLink& control_link() { return control_link_; }

  /// Current run-time configuration (read-only observation).
  [[nodiscard]] const HcRuntime& runtime() const { return runtime_; }

  /// Direct register access, bypassing the control bus. This is the
  /// test/bench backdoor; production configuration goes through the driver
  /// over control_link().
  [[nodiscard]] HcRegisterFile& registers_backdoor() { return regfile_; }

  /// Remaining reservation budget of a port in the current window.
  [[nodiscard]] std::uint32_t budget_left(PortIndex i) const;

  /// Number of synchronous budget recharges performed by the central unit.
  [[nodiscard]] std::uint64_t recharges() const { return recharges_; }

  [[nodiscard]] const HyperConnectConfig& config() const { return cfg_; }

  [[nodiscard]] const TransactionSupervisor& supervisor(PortIndex i) const;

  /// Read-only view of a port's protection unit (fault diagnostics).
  [[nodiscard]] const ProtectionUnit& protection(PortIndex i) const;

  /// Port fault latch (production software reads the FAULT_* registers;
  /// this is the test/bench observation point).
  [[nodiscard]] const PortFault& port_fault(PortIndex i) const;

  /// Faults latched by the protection units since reset (all ports).
  [[nodiscard]] std::uint64_t faults_latched() const {
    return faults_latched_;
  }

  /// Observability: records typed events into `trace` — window recharges
  /// with per-port budget accounting, EXBAR grants, decouple/recouple
  /// transitions and fault instants. nullptr (the default) disables the
  /// hooks at the cost of one branch each.
  void set_trace(EventTrace* trace) { trace_ = trace; }

  /// Attaches the latency auditor (src/obs/latency_audit.*): the tick loop
  /// reports eFIFO accepts, sub-transaction issues, stall causes, EXBAR
  /// grants, master-side exits and port disturbances through the hook
  /// interface. nullptr (the default) disables at one branch per site; the
  /// audit mutates no simulated state, so digests are unaffected.
  void set_latency_audit(LatencyAuditHooks* audit) { audit_ = audit; }

  /// Observability: track the per-port peak of Efifo::level() (the five
  /// channel queues of the port link summed), sampled once per tick. Exact
  /// under fast-forward (levels are constant while the system is
  /// quiescent) and excluded from append_digest — pure observation, used
  /// by the prover soundness cross-check (static backlog bound >= observed
  /// peak). Off by default: one max-pass per tick when enabled.
  void set_track_efifo_peaks(bool on) { track_efifo_peaks_ = on; }
  /// Peak eFIFO occupancy of a port since reset (0 while tracking is off).
  [[nodiscard]] std::size_t efifo_peak(PortIndex i) const;

  /// Registers this instance's gauges and counters (per-port budget
  /// remaining, eFIFO occupancy, grants/beats, outstanding sub-transactions,
  /// fault telemetry) with `reg`. The readers borrow `this`, which must
  /// outlive the registry's sampling.
  void register_metrics(MetricsRegistry& reg);

  /// Base port counters plus reservation/protection state (budgets,
  /// recharges, latched faults, per-port sub-transaction counts).
  void append_digest(StateDigest& d) const override;

 private:
  [[nodiscard]] bool tracing() const {
    return trace_ != nullptr && trace_->enabled();
  }
  [[nodiscard]] bool auditing() const {
    return audit_ != nullptr && audit_->enabled();
  }
  [[nodiscard]] std::string port_source(PortIndex i) const;

  void tick_control_interface();
  void tick_central_unit(Cycle now);
  void tick_protection(Cycle now);
  void trigger_fault(PortIndex i, FaultCause cause, Cycle now);
  void tick_r_path();
  void tick_b_path();
  void tick_w_path();

  HyperConnectConfig cfg_;
  HcRuntime runtime_;

  std::vector<Efifo> efifos_;  // one per slave port, wrapping port links
  std::vector<std::unique_ptr<TransactionSupervisor>> ts_;
  std::vector<std::unique_ptr<ProtectionUnit>> pu_;
  // Pipeline stages: TS output (one per port) and EXBAR output registers.
  std::vector<std::unique_ptr<TimingChannel<AddrReq>>> ts_ar_;
  std::vector<std::unique_ptr<TimingChannel<AddrReq>>> ts_aw_;
  std::vector<TimingChannel<AddrReq>*> ts_ar_ptrs_;
  std::vector<TimingChannel<AddrReq>*> ts_aw_ptrs_;
  TimingChannel<AddrReq> xbar_ar_;
  TimingChannel<AddrReq> xbar_aw_;
  Exbar exbar_;

  // Synthesized SLVERR completions a faulted port still owes its HA but
  // could not push immediately (full R/B queue at fault time). Drained into
  // the port link as capacity frees, so a completion is never silently
  // dropped — a lost completion wedges the HA forever on an in-flight
  // transaction. Discarded (and counted as synth drops) when the port is
  // decoupled: the HA behind a decoupled port is reset before recoupling.
  std::vector<std::deque<RBeat>> owed_r_;
  std::vector<std::deque<BResp>> owed_b_;
  // Completions queued across all owed_r_/owed_b_ deques: lets the fault-
  // free tick skip the per-port drain walk with one compare.
  std::size_t owed_pending_ = 0;

  // Hot state, pool-adopted at elaboration (adopt_hot_state): the per-port
  // reservation budgets and the next recharge-boundary cache. The cache
  // keeps the `now % period == 0` divide off the per-cycle path — it fires
  // only on actual boundaries (and after a runtime period change, detected
  // via recharge_period_).
  PooledWords budget_left_;
  PooledCycle recharge_next_;
  Cycle recharge_period_ = 0;  // period recharge_next_ was computed for
  std::uint64_t recharges_ = 0;
  std::uint64_t faults_latched_ = 0;

  // Observation-only watermark (set_track_efifo_peaks); not digested.
  std::vector<std::size_t> efifo_peak_;
  bool track_efifo_peaks_ = false;

  HcRegisterFile regfile_;
  AxiLink control_link_;
  EventTrace* trace_ = nullptr;
  LatencyAuditHooks* audit_ = nullptr;
};

}  // namespace axihc
