#include "hyperconnect/register_file.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

HcRegisterFile::HcRegisterFile(
    HcRuntime& runtime, std::function<std::uint64_t(PortIndex)> txn_count_fn,
    std::function<std::uint64_t(PortIndex)> inflight_fn)
    : runtime_(runtime),
      txn_count_fn_(std::move(txn_count_fn)),
      inflight_fn_(std::move(inflight_fn)) {
  AXIHC_CHECK(txn_count_fn_ != nullptr);
  AXIHC_CHECK(runtime_.budgets.size() == runtime_.coupled.size());
}

void HcRegisterFile::write(Addr offset, std::uint64_t value) {
  using namespace hcregs;
  if (offset == kCtrl) {
    runtime_.global_enable = (value & 1) != 0;
    return;
  }
  if (offset == kNominalBurst) {
    // Clamp to the AXI4 maximum; 0 keeps its "equalization off" meaning.
    runtime_.nominal_burst = static_cast<BeatCount>(
        value > kMaxAxi4BurstBeats ? kMaxAxi4BurstBeats : value);
    return;
  }
  if (offset == kReservationPeriod) {
    runtime_.reservation_period = value;
    return;
  }
  if (offset == kOutstandingLimit) {
    runtime_.max_outstanding =
        static_cast<std::uint32_t>(value == 0 ? 1 : value);
    return;
  }
  if (offset == kProtTimeout) {
    runtime_.prot_timeout = value;
    return;
  }
  if (offset >= kBudgetBase && offset < kBudgetBase + kRegStride * num_ports()) {
    const auto i = static_cast<PortIndex>((offset - kBudgetBase) / kRegStride);
    runtime_.budgets[i] = static_cast<std::uint32_t>(value);
    return;
  }
  if (offset >= kPortCtrlBase &&
      offset < kPortCtrlBase + kRegStride * num_ports()) {
    const auto i =
        static_cast<PortIndex>((offset - kPortCtrlBase) / kRegStride);
    runtime_.coupled[i] = (value & 1) != 0;
    return;
  }
  if (offset >= kFaultStatusBase &&
      offset < kFaultStatusBase + kRegStride * runtime_.fault.size()) {
    // Write-one-to-clear semantics (any write value clears): the hypervisor
    // acknowledges the fault and re-arms the port's protection unit. The
    // fault count and cycle stamp are preserved for postmortems.
    const auto i =
        static_cast<PortIndex>((offset - kFaultStatusBase) / kRegStride);
    runtime_.fault[i].faulted = false;
    runtime_.fault[i].cause = FaultCause::kNone;
    return;
  }
  ++ignored_writes_;
}

std::uint64_t HcRegisterFile::read(Addr offset) const {
  using namespace hcregs;
  if (offset == kCtrl) return runtime_.global_enable ? 1 : 0;
  if (offset == kNominalBurst) return runtime_.nominal_burst;
  if (offset == kReservationPeriod) return runtime_.reservation_period;
  if (offset == kOutstandingLimit) return runtime_.max_outstanding;
  if (offset == kNumPorts) return num_ports();
  if (offset == kId) return kIdValue;
  if (offset == kProtTimeout) return runtime_.prot_timeout;
  if (offset >= kBudgetBase &&
      offset < kBudgetBase + kRegStride * num_ports()) {
    const auto i = static_cast<PortIndex>((offset - kBudgetBase) / kRegStride);
    return runtime_.budgets[i];
  }
  if (offset >= kPortCtrlBase &&
      offset < kPortCtrlBase + kRegStride * num_ports()) {
    const auto i =
        static_cast<PortIndex>((offset - kPortCtrlBase) / kRegStride);
    return runtime_.coupled[i] ? 1 : 0;
  }
  if (offset >= kTxnCountBase &&
      offset < kTxnCountBase + kRegStride * num_ports()) {
    const auto i =
        static_cast<PortIndex>((offset - kTxnCountBase) / kRegStride);
    return txn_count_fn_(i);
  }
  if (offset >= kFaultStatusBase &&
      offset < kFaultStatusBase + kRegStride * runtime_.fault.size()) {
    const auto i =
        static_cast<PortIndex>((offset - kFaultStatusBase) / kRegStride);
    const PortFault& f = runtime_.fault[i];
    return (f.faulted ? kFaultStatusFaultedBit : 0) |
           (static_cast<std::uint64_t>(f.cause) << kFaultStatusCauseShift);
  }
  if (offset >= kFaultCountBase &&
      offset < kFaultCountBase + kRegStride * runtime_.fault.size()) {
    const auto i =
        static_cast<PortIndex>((offset - kFaultCountBase) / kRegStride);
    return runtime_.fault[i].count;
  }
  if (offset >= kFaultCycleBase &&
      offset < kFaultCycleBase + kRegStride * runtime_.fault.size()) {
    const auto i =
        static_cast<PortIndex>((offset - kFaultCycleBase) / kRegStride);
    return runtime_.fault[i].last_cycle;
  }
  if (offset >= kInflightBase &&
      offset < kInflightBase + kRegStride * num_ports()) {
    const auto i =
        static_cast<PortIndex>((offset - kInflightBase) / kRegStride);
    return inflight_fn_ ? inflight_fn_(i) : 0;
  }
  return 0;
}

}  // namespace axihc
