// EXBAR — efficient crossbar (§V-B).
//
// Solves conflicts among the address requests propagated by the TS modules
// with round-robin arbitration at a FIXED granularity of one transaction per
// TS module per round-cycle (unlike SmartConnect's variable granularity,
// which inflates worst-case interference to g×(N−1) transactions). It keeps
// the grant order ("routing information") in circular buffers and uses it to
// route the R, W and B channels proactively, adding one cycle of latency on
// address requests and none on data/response channels.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>


#include "axi/axi.hpp"
#include "common/ring_buffer.hpp"
#include "hyperconnect/config.hpp"
#include "interconnect/interconnect.hpp"
#include "sim/channel.hpp"

namespace axihc {

/// One entry of the write routing memory: which port's W data to pull next,
/// for how many beats, and whether the HA's original WLAST is expected on
/// the final beat (i.e. this is the last sub-burst of the HA transaction).
struct ExbarWriteRoute {
  PortIndex port = 0;
  BeatCount beats = 0;
  bool expects_orig_last = false;
};

class Exbar {
 public:
  /// Crossbar over `num_ports` TS outputs with routing memories of
  /// `route_capacity` entries each. With `order_based_routing == false`
  /// (the out-of-order extension) the R and B routing memories are unused:
  /// responses are routed by their extended IDs instead; only the W pull
  /// order (an AXI4 requirement regardless) is recorded.
  Exbar(std::uint32_t num_ports, std::uint32_t route_capacity,
        bool order_based_routing = true,
        ArbitrationPolicy policy = ArbitrationPolicy::kRoundRobin);

  /// Round-robin grant of at most one read address request: pops from one of
  /// `ts_ar` into `out` and records routing info. Returns the granted port.
  std::optional<PortIndex> grant_read(
      std::vector<TimingChannel<AddrReq>*>& ts_ar,
      TimingChannel<AddrReq>& out);

  /// Round-robin grant of at most one write address request. The sub-AW's
  /// tag (set by the TS) says whether it is the final sub-burst of its HA
  /// transaction.
  std::optional<PortIndex> grant_write(
      std::vector<TimingChannel<AddrReq>*>& ts_aw,
      TimingChannel<AddrReq>& out);

  /// Routing memories, consumed by the HyperConnect's proactive R/W/B paths.
  [[nodiscard]] RingBuffer<ReadRoute>& read_route() { return read_route_; }
  [[nodiscard]] RingBuffer<ExbarWriteRoute>& write_route() {
    return write_route_;
  }
  [[nodiscard]] const RingBuffer<ExbarWriteRoute>& write_route() const {
    return write_route_;
  }
  [[nodiscard]] RingBuffer<PortIndex>& b_route() { return b_route_; }

  void reset();

 private:
  /// Picks the next port among those with a pending request at the heads
  /// of `chans`, honouring the configured policy.
  std::optional<PortIndex> pick(
      std::vector<TimingChannel<AddrReq>*>& chans, PortIndex& rr) const;

  std::uint32_t num_ports_;
  bool order_based_;
  ArbitrationPolicy policy_;
  PortIndex rr_ar_ = 0;
  PortIndex rr_aw_ = 0;
  RingBuffer<ReadRoute> read_route_;
  RingBuffer<ExbarWriteRoute> write_route_;
  RingBuffer<PortIndex> b_route_;
};

}  // namespace axihc
