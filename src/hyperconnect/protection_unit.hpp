// Per-port protocol protection unit (PU).
//
// The TS polices transaction *rates*; the PU polices transaction
// *liveness*. Without it, a single misbehaving HA can wedge the whole
// interconnect despite reservation and decoupling: a hung W stream starves
// the shared write path head-of-line, a never-asserted RREADY fills the
// port's R queue and blocks the single read-return stream, and a malformed
// WLAST corrupts the equalizer's re-chunking. The PU (inspired by
// AXI-REALM's per-manager protection, see PAPERS.md) gives each port:
//
//  * in-flight sub-transaction tracking — one record per sub-request issued
//    by the TS, retired when the sub-burst's last R beat / B response
//    passes the merge logic;
//  * handshake-stall detectors — per-channel counters that accumulate only
//    while *this* port is the head-of-line blocker of a shared path, so
//    blame lands on the culprit and not on the victims queued behind it;
//  * a malformed-burst latch (WLAST misaligned with the advertised length);
//  * an end-to-end age backstop — the oldest in-flight sub-transaction
//    exceeding the timeout with no specific handshake to blame.
//
// The HyperConnect evaluates the PUs once per cycle; on expiry it
// synthesizes SLVERR completions from the PU's records, isolates the port
// (eFIFO fault latch) and stamps the FAULT_* registers. See
// HyperConnect::tick_protection / trigger_fault.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/types.hpp"
#include "hyperconnect/config.hpp"

namespace axihc {

class ProtectionUnit {
 public:
  /// One in-flight sub-transaction. `id` is the HA-side ID; `is_final`
  /// marks the sub-burst that carries the HA transaction's completion.
  struct SubRecord {
    TxnId id = 0;
    bool is_final = false;
    Cycle issued_at = 0;
  };

  ProtectionUnit(PortIndex port, const HcRuntime& rt) : port_(port), rt_(rt) {}

  void reset();

  // --- issue/retire bookkeeping (driven by the HyperConnect tick) ------
  void on_issue_read(TxnId id, bool is_final, Cycle now);
  void on_issue_write(TxnId id, bool is_final, Cycle now);
  void on_read_sub_complete();
  void on_write_sub_complete();

  // --- per-cycle handshake observations --------------------------------
  /// `stalled` = this port is the head of the shared path and refuses to
  /// make progress this cycle. false resets the counter (progress or not
  /// at the head).
  void observe_w_stall(bool stalled);
  void observe_r_stall(bool stalled);
  void observe_b_stall(bool stalled);
  /// Latches a protocol violation (WLAST misaligned with burst length).
  void flag_malformed() { malformed_ = true; }

  /// Culprit-first evaluation: malformed bursts fault immediately; stall
  /// counters fault once they reach the timeout. kNone otherwise.
  [[nodiscard]] FaultCause evaluate_stalls() const;

  /// True while any stall counter is accumulating (or a malformed burst is
  /// latched) — the port is a fault suspect, and the age backstop of every
  /// port is suppressed until the suspect is resolved (victims of a shared
  /// wedge must not be blamed for their age).
  [[nodiscard]] bool suspected() const {
    return malformed_ || w_stall_ > 0 || r_stall_ > 0 || b_stall_ > 0;
  }

  /// Issue cycle of the oldest in-flight sub-transaction (age backstop).
  [[nodiscard]] std::optional<Cycle> oldest_issue() const;

  /// Amnesty after another port faulted (or after this port's latch was
  /// cleared): restamp every record to `now` so time spent wedged behind
  /// the culprit does not count against the timeout.
  void restamp(Cycle now);

  /// Clears the stall counters and the malformed latch (after the fault was
  /// latched in the runtime state, or on hypervisor re-arm).
  void clear_stalls();

  [[nodiscard]] const std::deque<SubRecord>& reads() const { return reads_; }
  [[nodiscard]] const std::deque<SubRecord>& writes() const {
    return writes_;
  }

  /// Synthesized completions that could not be queued (port queue full).
  [[nodiscard]] std::uint64_t synth_dropped() const { return synth_dropped_; }
  void count_synth_drop() { ++synth_dropped_; }

 private:
  PortIndex port_;
  const HcRuntime& rt_;

  std::deque<SubRecord> reads_;
  std::deque<SubRecord> writes_;
  Cycle w_stall_ = 0;
  Cycle r_stall_ = 0;
  Cycle b_stall_ = 0;
  bool malformed_ = false;
  std::uint64_t synth_dropped_ = 0;
};

}  // namespace axihc
