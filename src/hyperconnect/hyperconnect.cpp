#include "hyperconnect/hyperconnect.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace axihc {

namespace {
HcRuntime make_runtime(const HyperConnectConfig& cfg) {
  HcRuntime rt;
  rt.global_enable = true;
  rt.nominal_burst = cfg.nominal_burst;
  rt.max_outstanding = cfg.max_outstanding;
  rt.reservation_period = cfg.reservation_period;
  rt.budgets = cfg.initial_budgets;
  rt.budgets.resize(cfg.num_ports, 0);
  rt.coupled.assign(cfg.num_ports, true);
  rt.prot_timeout = cfg.prot_timeout;
  rt.fault.assign(cfg.num_ports, PortFault{});
  rt.out_of_order = cfg.out_of_order;
  return rt;
}
}  // namespace

HyperConnect::HyperConnect(std::string name, HyperConnectConfig cfg)
    : Interconnect(std::move(name), cfg.num_ports, cfg.port_link_cfg,
                   cfg.master_link_cfg),
      cfg_(cfg),
      runtime_(make_runtime(cfg)),
      xbar_ar_(Component::name() + ".xbar_ar", cfg.xbar_stage_depth),
      xbar_aw_(Component::name() + ".xbar_aw", cfg.xbar_stage_depth),
      exbar_(cfg.num_ports, cfg.route_capacity,
             /*order_based_routing=*/!cfg.out_of_order, cfg.arbitration),
      budget_left_(runtime_.budgets),
      regfile_(runtime_,
               [this](PortIndex i) {
                 return ts_[i]->subtransactions_issued();
               },
               [this](PortIndex i) {
                 // Sub-transactions still pending downstream: the PU's live
                 // records. Zero means the port is fully drained — safe to
                 // reset/recouple (the recovery FSM's Draining gate).
                 return static_cast<std::uint64_t>(pu_[i]->reads().size() +
                                                   pu_[i]->writes().size());
               }),
      control_link_(Component::name() + ".ctrl", cfg.control_link_cfg) {
  AXIHC_CHECK(cfg_.max_outstanding >= 1);
  owed_r_.resize(cfg_.num_ports);
  owed_b_.resize(cfg_.num_ports);
  efifo_peak_.assign(cfg_.num_ports, 0);
  efifos_.reserve(cfg_.num_ports);
  for (PortIndex i = 0; i < cfg_.num_ports; ++i) {
    efifos_.emplace_back(port_link(i));
    ts_.push_back(std::make_unique<TransactionSupervisor>(i, runtime_));
    pu_.push_back(std::make_unique<ProtectionUnit>(i, runtime_));
    ts_ar_.push_back(std::make_unique<TimingChannel<AddrReq>>(
        Component::name() + ".ts_ar" + std::to_string(i),
        cfg_.ts_stage_depth));
    ts_aw_.push_back(std::make_unique<TimingChannel<AddrReq>>(
        Component::name() + ".ts_aw" + std::to_string(i),
        cfg_.ts_stage_depth));
    ts_ar_ptrs_.push_back(ts_ar_.back().get());
    ts_aw_ptrs_.push_back(ts_aw_.back().get());
    ts_ar_.back()->add_endpoint(*this);
    ts_aw_.back()->add_endpoint(*this);
  }
  xbar_ar_.add_endpoint(*this);
  xbar_aw_.add_endpoint(*this);
  control_link_.attach_endpoint(*this);
}

void HyperConnect::register_with(Simulator& sim) {
  Interconnect::register_with(sim);
  for (auto& ch : ts_ar_) sim.add(*ch);
  for (auto& ch : ts_aw_) sim.add(*ch);
  sim.add(xbar_ar_);
  sim.add(xbar_aw_);
  control_link_.register_with(sim);
}

void HyperConnect::adopt_hot_state(HotStatePool& pool) {
  budget_left_.adopt(pool, this, "budget_left");
  recharge_next_.adopt(pool, this, "recharge_deadline");
}

void HyperConnect::reset() {
  runtime_ = make_runtime(cfg_);
  for (auto& ts : ts_) ts->reset();
  for (auto& pu : pu_) pu->reset();
  exbar_.reset();
  budget_left_ = runtime_.budgets;
  recharge_next_.set(0);
  recharge_period_ = 0;
  recharges_ = 0;
  faults_latched_ = 0;
  for (PortIndex i = 0; i < num_ports(); ++i) {
    efifos_[i].set_coupled(true);
    efifos_[i].set_faulted(false);
    owed_r_[i].clear();
    owed_b_[i].clear();
    mutable_counters(i) = PortCounters{};
    efifo_peak_[i] = 0;
  }
  owed_pending_ = 0;
}

std::string HyperConnect::port_source(PortIndex i) const {
  return name() + ".port" + std::to_string(i);
}

void HyperConnect::append_digest(StateDigest& d) const {
  Interconnect::append_digest(d);
  for (std::uint32_t b : budget_left_) d.mix(b);
  d.mix(recharges_);
  d.mix(faults_latched_);
  for (const auto& ts : ts_) d.mix(ts->subtransactions_issued());
  for (PortIndex i = 0; i < num_ports(); ++i) {
    d.mix(static_cast<std::uint64_t>(efifos_[i].coupled()) |
          (static_cast<std::uint64_t>(efifos_[i].faulted()) << 1));
    d.mix(static_cast<std::uint64_t>(owed_r_[i].size()));
    for (const RBeat& beat : owed_r_[i]) d.mix(beat.id);
    d.mix(static_cast<std::uint64_t>(owed_b_[i].size()));
    for (const BResp& resp : owed_b_[i]) d.mix(resp.id);
  }
}

void HyperConnect::register_metrics(MetricsRegistry& reg) {
  // runtime_ and budget_left_ are wholesale reassigned by reset(), so their
  // readers capture the port index and go through `this`, never a pointer
  // into the vectors.
  reg.add_counter(name() + ".recharges", &recharges_);
  reg.add_counter(name() + ".faults_latched", &faults_latched_);
  for (PortIndex i = 0; i < num_ports(); ++i) {
    const std::string p = port_source(i);
    reg.add_gauge(p + ".budget_left", [this, i] {
      return static_cast<double>(budget_left_.get(i));
    });
    reg.add_gauge(p + ".efifo_level", [this, i] {
      return static_cast<double>(efifos_[i].level());
    });
    reg.add_gauge(p + ".efifo_peak", [this, i] {
      return static_cast<double>(efifo_peak_[i]);
    });
    reg.add_gauge(p + ".reads_outstanding", [this, i] {
      return static_cast<double>(ts_[i]->reads_outstanding());
    });
    reg.add_gauge(p + ".writes_outstanding", [this, i] {
      return static_cast<double>(ts_[i]->writes_outstanding());
    });
    reg.add_gauge(p + ".coupled", [this, i] {
      return runtime_.coupled[i] ? 1.0 : 0.0;
    });
    reg.add_gauge(p + ".faulted", [this, i] {
      return runtime_.fault[i].faulted ? 1.0 : 0.0;
    });
    reg.add_counter(p + ".fault_count", [this, i] {
      return static_cast<double>(runtime_.fault[i].count);
    });
    const PortCounters& c = counters(i);  // stable element of counters_
    reg.add_counter(p + ".ar_granted", &c.ar_granted);
    reg.add_counter(p + ".aw_granted", &c.aw_granted);
    reg.add_counter(p + ".r_beats", &c.r_beats);
    reg.add_counter(p + ".w_beats", &c.w_beats);
    reg.add_counter(p + ".b_resps", &c.b_resps);
  }
}

std::size_t HyperConnect::efifo_peak(PortIndex i) const {
  AXIHC_CHECK(i < efifo_peak_.size());
  return efifo_peak_[i];
}

std::uint32_t HyperConnect::budget_left(PortIndex i) const {
  AXIHC_CHECK(i < budget_left_.size());
  return budget_left_[i];
}

const TransactionSupervisor& HyperConnect::supervisor(PortIndex i) const {
  AXIHC_CHECK(i < ts_.size());
  return *ts_[i];
}

const ProtectionUnit& HyperConnect::protection(PortIndex i) const {
  AXIHC_CHECK(i < pu_.size());
  return *pu_[i];
}

const PortFault& HyperConnect::port_fault(PortIndex i) const {
  AXIHC_CHECK(i < runtime_.fault.size());
  return runtime_.fault[i];
}

void HyperConnect::tick_control_interface() {
  // Register write: AW + single W beat -> B.
  if (control_link_.aw.can_pop() && control_link_.w.can_pop() &&
      control_link_.b.can_push()) {
    const AddrReq aw = control_link_.aw.pop();
    AXIHC_CHECK_MSG(aw.beats == 1,
                    name() << ": control interface writes must be single-beat");
    const WBeat wb = control_link_.w.pop();
    AXIHC_CHECK(wb.last);
    regfile_.write(aw.addr, wb.data);
    control_link_.b.push({aw.id, Resp::kOkay});
  }
  // Register read: AR -> single R beat.
  if (control_link_.ar.can_pop() && control_link_.r.can_push()) {
    const AddrReq ar = control_link_.ar.pop();
    AXIHC_CHECK_MSG(ar.beats == 1,
                    name() << ": control interface reads must be single-beat");
    control_link_.r.push({ar.id, regfile_.read(ar.addr), true, Resp::kOkay});
  }
}

void HyperConnect::tick_central_unit(Cycle now) {
  // Keep the eFIFO decoupling state in sync with the PORT_CTRL registers.
  // While a port is decoupled its signals are grounded: anything queued in
  // or pushed toward its eFIFO is dropped continuously, and any half-split
  // burst is aborted — as under dynamic partial reconfiguration, where the
  // HA behind the port is being replaced and is reset before recoupling.
  for (PortIndex i = 0; i < num_ports(); ++i) {
    const bool want = runtime_.coupled[i];
    if (want != efifos_[i].coupled()) {
      if (tracing()) {
        trace_->record(now, port_source(i), want ? "recouple" : "decouple");
      }
      if (!want && auditing()) audit_->on_port_disturbed(i, now);
    }
    if (!want) {
      AxiLink& link = port_link(i);
      link.ar.clear_contents();
      link.aw.clear_contents();
      link.w.clear_contents();
      link.r.clear_contents();
      link.b.clear_contents();
      ts_[i]->abort_pending_issue();
      // Undelivered synthesized completions die with the decouple (the HA
      // is reset before the port recouples); account for them.
      for (std::size_t n = owed_r_[i].size() + owed_b_[i].size(); n != 0;
           --n) {
        pu_[i]->count_synth_drop();
        --owed_pending_;
      }
      owed_r_[i].clear();
      owed_b_[i].clear();
    }
    efifos_[i].set_coupled(want);

    // Sync the eFIFO fault latch with the FAULT_STATUS register. A
    // hypervisor write cleared the runtime latch -> re-arm the protection
    // unit (stall counters reset, record ages restamped so in-fault time
    // does not count against the timeout).
    const bool faulted = runtime_.fault[i].faulted;
    if (efifos_[i].faulted() && !faulted) {
      pu_[i]->clear_stalls();
      pu_[i]->restamp(now);
    }
    efifos_[i].set_faulted(faulted);
  }
  // Synchronous budget recharge for all TS modules every period T. The
  // boundary test is `now % T == 0`, but the divide runs only when the
  // cached next-boundary deadline is due (or stale after a runtime period
  // write): between boundaries this is a single compare.
  const Cycle period = runtime_.reservation_period;
  if (period != 0) {
    if (period != recharge_period_) {
      recharge_period_ = period;
      recharge_next_.set(0);  // stale: re-derive from `now` below
    }
    if (now >= recharge_next_.get()) {
      if (now % period == 0) {
        if (tracing()) {
          trace_->record(now, name() + ".central", "window_recharge");
          // Budget consumed in the window that just closed, per port — the
          // reservation-window accounting behind the Fig. 5 bandwidth
          // plots.
          for (PortIndex i = 0; i < num_ports(); ++i) {
            trace_->record_counter(
                now, port_source(i), "budget_used",
                static_cast<double>(runtime_.budgets[i] -
                                    budget_left_.get(i)));
          }
        }
        budget_left_ = runtime_.budgets;
        ++recharges_;
      }
      recharge_next_.set((now / period + 1) * period);
    }
  }
}

void HyperConnect::tick_protection(Cycle now) {
  if (runtime_.fault.empty()) return;
  // Culprit-first: a handshake stall or malformed burst identifies the
  // misbehaving port precisely (stall counters only accumulate for the
  // head-of-line blocker of a shared path). At most one fault per cycle.
  for (PortIndex i = 0; i < num_ports(); ++i) {
    if (runtime_.fault[i].faulted) continue;
    const FaultCause cause = pu_[i]->evaluate_stalls();
    if (cause != FaultCause::kNone) {
      trigger_fault(i, cause, now);
      return;
    }
  }
  if (runtime_.prot_timeout == 0) return;
  // Age backstop, suppressed while any port is a stall suspect: a port
  // queued behind a wedge has old sub-transactions through no fault of its
  // own and must not be blamed (the culprit faults first, and
  // trigger_fault's restamp amnesty resets everyone else's ages).
  for (PortIndex i = 0; i < num_ports(); ++i) {
    if (!runtime_.fault[i].faulted && pu_[i]->suspected()) return;
  }
  for (PortIndex i = 0; i < num_ports(); ++i) {
    if (runtime_.fault[i].faulted) continue;
    const auto oldest = pu_[i]->oldest_issue();
    if (oldest.has_value() && now - *oldest >= 2 * runtime_.prot_timeout) {
      trigger_fault(i, FaultCause::kTimeout, now);
      return;
    }
  }
}

void HyperConnect::trigger_fault(PortIndex i, FaultCause cause, Cycle now) {
  PortFault& f = runtime_.fault[i];
  f.faulted = true;
  f.cause = cause;
  ++f.count;
  f.last_cycle = now;
  ++faults_latched_;
  efifos_[i].set_faulted(true);
  if (tracing()) {
    trace_->record(now, port_source(i),
                   "fault cause=" + std::to_string(static_cast<int>(cause)));
  }
  AXIHC_LOG_WARN() << name() << " @" << now << ": port " << i
                   << " faulted (cause " << static_cast<int>(cause)
                   << ") — isolating and synthesizing SLVERR completions";

  // Ground the request side with a one-time flush. R/B contents are KEPT:
  // beats already queued toward the HA belong to sub-transactions that may
  // have retired their records — dropping them would erase completions the
  // HA is still owed (it would then see the next transaction's completion
  // while waiting on the current one: a protocol violation on an in-order
  // port, a wedge on any port).
  AxiLink& link = port_link(i);
  link.ar.clear_contents();
  link.aw.clear_contents();
  link.w.clear_contents();

  // Synthesize a terminal SLVERR completion for every HA transaction that
  // still owes one: in-flight final sub-bursts, plus the transaction being
  // split (its final sub-request never went downstream). The PU/TS records
  // are kept — in-flight sub-bursts still complete downstream (read data is
  // dropped at the faulted port, granted writes are zero-filled) and retire
  // their records, so the merge bookkeeping stays consistent. Completions
  // go through the owed queues (drained in tick() as R/B capacity frees,
  // behind whatever legitimate beats were kept above), so none is ever
  // dropped on a full queue.
  for (const auto& rec : pu_[i]->reads()) {
    if (rec.is_final) {
      owed_r_[i].push_back({rec.id, 0, true, Resp::kSlvErr});
      ++owed_pending_;
    }
  }
  if (const auto id = ts_[i]->active_read_id()) {
    owed_r_[i].push_back({*id, 0, true, Resp::kSlvErr});
    ++owed_pending_;
  }
  for (const auto& rec : pu_[i]->writes()) {
    if (rec.is_final) {
      owed_b_[i].push_back({rec.id, Resp::kSlvErr});
      ++owed_pending_;
    }
  }
  if (const auto id = ts_[i]->active_write_id()) {
    owed_b_[i].push_back({*id, Resp::kSlvErr});
    ++owed_pending_;
  }
  ts_[i]->abort_pending_issue();
  pu_[i]->clear_stalls();
  if (auditing()) audit_->on_port_disturbed(i, now);

  // Amnesty for the bystanders: time their sub-transactions spent wedged
  // behind the culprit must not count against the age backstop.
  for (PortIndex j = 0; j < num_ports(); ++j) {
    if (j != i) pu_[j]->restamp(now);
  }
}

void HyperConnect::tick_r_path() {
  if (!master_link().r.can_pop()) return;

  PortIndex port = 0;
  if (runtime_.out_of_order) {
    // ID-extension mode: the source port is encoded in the upper ID bits.
    port = static_cast<PortIndex>(master_link().r.front().id >> kIdPortShift);
    AXIHC_CHECK_MSG(port < num_ports(),
                    name() << ": R beat with unroutable extended id");
  } else {
    auto& route = exbar_.read_route();
    AXIHC_CHECK_MSG(!route.empty(), name() << ": R data with no routing info");
    port = route.front().port;
  }
  Efifo& fifo = efifos_[port];

  if (fifo.active() && !fifo.can_push_r()) {
    // Upstream backpressure: this port is the head-of-line blocker of the
    // shared read-return stream (its HA holds RREADY low with a full R
    // queue) — exactly the stall the protection unit polices.
    pu_[port]->observe_r_stall(true);
    return;
  }
  pu_[port]->observe_r_stall(false);

  RBeat raw = master_link().r.pop();
  const bool subburst_end = raw.last;  // controller-level LAST
  if (runtime_.out_of_order) {
    raw.id &= (TxnId{1} << kIdPortShift) - 1;  // restore the HA's ID
  }
  const RBeat merged = ts_[port]->process_r_beat(raw);
  if (fifo.active()) {
    fifo.push_r(merged);
    ++mutable_counters(port).r_beats;
  }
  // A decoupled/faulted port's signals are grounded: the beat is dropped,
  // but the routing/merge bookkeeping above stays consistent.
  if (subburst_end) pu_[port]->on_read_sub_complete();
  if (!runtime_.out_of_order && subburst_end) exbar_.read_route().pop();
}

void HyperConnect::tick_b_path() {
  if (!master_link().b.can_pop()) return;

  PortIndex port = 0;
  if (runtime_.out_of_order) {
    port = static_cast<PortIndex>(master_link().b.front().id >> kIdPortShift);
    AXIHC_CHECK_MSG(port < num_ports(),
                    name() << ": B with unroutable extended id");
  } else {
    auto& route = exbar_.b_route();
    AXIHC_CHECK_MSG(!route.empty(), name() << ": B with no routing info");
    port = route.front();
  }
  Efifo& fifo = efifos_[port];

  if (fifo.active() && !fifo.can_push_b()) {
    pu_[port]->observe_b_stall(true);
    return;
  }
  pu_[port]->observe_b_stall(false);

  BResp resp = master_link().b.pop();
  if (runtime_.out_of_order) {
    resp.id &= (TxnId{1} << kIdPortShift) - 1;
  }
  const bool forward = ts_[port]->process_b(resp);
  pu_[port]->on_write_sub_complete();
  if (forward && fifo.active()) {
    fifo.push_b(resp);
    ++mutable_counters(port).b_resps;
  }
  if (!runtime_.out_of_order) exbar_.b_route().pop();
}

void HyperConnect::tick_w_path() {
  auto& route = exbar_.write_route();
  if (route.empty()) return;
  auto& entry = route.front();
  Efifo& fifo = efifos_[entry.port];
  if (!master_link().w.can_push()) return;
  AXIHC_CHECK(entry.beats > 0);
  const bool sub_end = entry.beats == 1;

  WBeat beat;
  if (fifo.active()) {
    if (!fifo.w_available()) {
      // A granted sub-write is starving for W data: this port wedges the
      // shared write path head-of-line (hung W stream / truncated burst).
      pu_[entry.port]->observe_w_stall(true);
      return;
    }
    pu_[entry.port]->observe_w_stall(false);
    beat = fifo.pop_w();
    const bool orig_last = beat.last;
    // WLAST legality at the re-chunk boundary. A mismatch (early, late or
    // missing WLAST — e.g. a corrupted AWLEN) is a protocol fault handled
    // gracefully by the protection unit; the stream stays legal downstream
    // because WLAST is rewritten to the sub-burst boundary below.
    if (orig_last != (sub_end && entry.expects_orig_last)) {
      pu_[entry.port]->flag_malformed();
    }
    ++mutable_counters(entry.port).w_beats;
  } else {
    // Decoupled/faulted port with an already-granted sub-AW: its W input is
    // grounded. Feed zero beats so the granted transaction completes and
    // the shared W path cannot be wedged by the isolated HA.
    beat = WBeat{0, 0xff, false};
  }
  // Re-chunk WLAST to the sub-burst boundary created by the TS split.
  beat.last = sub_end;
  master_link().w.push(beat);
  --entry.beats;
  if (sub_end) route.pop();
}

Cycle HyperConnect::next_activity(Cycle now) const {
  // Control-interface traffic to serve.
  if (control_link_.ar.can_pop() || control_link_.aw.can_pop() ||
      control_link_.w.can_pop()) {
    return now;
  }
  // Proactive data/response paths: returning R/B, or granted sub-writes
  // still pulling W beats (the route entry drives the pull even when the
  // port's W data has not arrived — that is exactly a PU stall observation).
  if (master_link().r.can_pop() || master_link().b.can_pop()) return now;
  if (!exbar_.write_route().empty()) return now;
  // EXBAR output registers draining into the master eFIFO.
  if (xbar_ar_.can_pop() || xbar_aw_.can_pop()) return now;

  for (PortIndex i = 0; i < num_ports(); ++i) {
    // Central-unit state sync pending (decouple/recouple or fault latch).
    if (efifos_[i].coupled() != runtime_.coupled[i]) return now;
    if (efifos_[i].faulted() != runtime_.fault[i].faulted) return now;
    // A decoupled port grounds its signals continuously: queued traffic is
    // still being flushed and a half-split burst aborted on the next tick.
    if (!runtime_.coupled[i]) {
      const AxiLink& link = port_link(i);
      if (!link.ar.empty() || !link.aw.empty() || !link.w.empty() ||
          !link.r.empty() || !link.b.empty() ||
          ts_[i]->active_read_id().has_value() ||
          ts_[i]->active_write_id().has_value()) {
        return now;
      }
    }
    // Owed synthesized completions wait for R/B capacity (or, decoupled,
    // for the central unit to discard them).
    if (!owed_r_[i].empty() || !owed_b_[i].empty()) return now;
    // TS output stages feeding the EXBAR.
    if (ts_ar_[i]->can_pop() || ts_aw_[i]->can_pop()) return now;
    // Protection unit: in-flight records age and stall counters accumulate
    // every cycle; conservative while anything is outstanding or suspected.
    if (pu_[i]->oldest_issue().has_value() || pu_[i]->suspected()) return now;
    if (ts_[i]->reads_outstanding() > 0 || ts_[i]->writes_outstanding() > 0) {
      return now;
    }
    // Issue step could make progress (new request, or a split with budget).
    if (ts_[i]->issue_pending(efifos_[i], *ts_ar_[i], *ts_aw_[i],
                              budget_left_[i])) {
      return now;
    }
  }

  // Quiescent except for the central unit's synchronous recharge, which is
  // observable (recharges_ counter, budget refill, trace instants) at every
  // window boundary — and a budget-starved split resumes exactly there.
  if (runtime_.reservation_period != 0) {
    const Cycle p = runtime_.reservation_period;
    return now % p == 0 ? now : (now / p + 1) * p;
  }
  return kNoCycle;
}

void HyperConnect::tick(Cycle now) {
  if (track_efifo_peaks_) {
    for (PortIndex i = 0; i < num_ports(); ++i) {
      efifo_peak_[i] = std::max(efifo_peak_[i], efifos_[i].level());
    }
  }
  tick_control_interface();
  tick_central_unit(now);

  // Protection units: evaluate the stall/age observations accumulated by
  // the data paths up to the previous cycle, before this cycle's traffic.
  tick_protection(now);

  // Deliver owed synthesized completions as R/B capacity frees. Runs before
  // the data paths so owed beats always land ahead of any newer traffic.
  // owed_pending_ counts queued completions across all ports, so the
  // fault-free common case skips the per-port deque walk entirely.
  if (owed_pending_ != 0) {
    for (PortIndex i = 0; i < num_ports(); ++i) {
      if (!efifos_[i].coupled()) continue;
      AxiLink& link = port_link(i);
      while (!owed_r_[i].empty() && link.r.can_push()) {
        link.r.push(owed_r_[i].front());
        owed_r_[i].pop_front();
        --owed_pending_;
      }
      while (!owed_b_[i].empty() && link.b.can_push()) {
        link.b.push(owed_b_[i].front());
        owed_b_[i].pop_front();
        --owed_pending_;
      }
    }
  }

  // Proactive data/response paths (no added latency).
  tick_r_path();
  tick_b_path();
  tick_w_path();

  // TS modules: one sub-request per port per direction per cycle. Every
  // issued sub-transaction is registered with the port's protection unit.
  const bool audit = auditing();
  if (audit) audit_->on_hc_tick(now);
  for (PortIndex i = 0; i < num_ports(); ++i) {
    // The TS pops the next original request before issuing; observe the pop
    // (peek + precondition) so the auditor sees the accept with its payload.
    bool accept_r = false;
    bool accept_w = false;
    AddrReq orig_r;
    AddrReq orig_w;
    if (audit && runtime_.global_enable) {
      if (!ts_[i]->active_read_id().has_value() &&
          efifos_[i].ar_available()) {
        accept_r = true;
        orig_r = efifos_[i].peek_ar();
      }
      if (!ts_[i]->active_write_id().has_value() &&
          efifos_[i].aw_available()) {
        accept_w = true;
        orig_w = efifos_[i].peek_aw();
      }
    }
    if (const auto sub =
            ts_[i]->tick_read_issue(efifos_[i], *ts_ar_[i], budget_left_[i])) {
      pu_[i]->on_issue_read(sub->id, sub->is_final, now);
      if (audit) {
        if (accept_r) audit_->on_accept(i, false, orig_r, now);
        audit_->on_sub_issue(i, false, sub->is_final, now);
      }
    } else if (audit && accept_r) {
      audit_->on_accept(i, false, orig_r, now);
    }
    if (const auto sub = ts_[i]->tick_write_issue(efifos_[i], *ts_aw_[i],
                                                  budget_left_[i])) {
      pu_[i]->on_issue_write(sub->id, sub->is_final, now);
      if (audit) {
        if (accept_w) audit_->on_accept(i, true, orig_w, now);
        audit_->on_sub_issue(i, true, sub->is_final, now);
      }
    } else if (audit && accept_w) {
      audit_->on_accept(i, true, orig_w, now);
    }
  }
  // Classify why each still-active split could not issue this cycle; the
  // auditor charges the cycles until the next evaluation to this cause.
  if (audit) {
    const auto classify = [this](PortIndex i,
                                 std::uint32_t outstanding,
                                 const TimingChannel<AddrReq>& stage) {
      if (!runtime_.global_enable) return LatencyCause::kBackpressure;
      if (runtime_.reservation_period != 0 && budget_left_.get(i) == 0) {
        return LatencyCause::kBudgetWait;
      }
      if (!stage.can_push()) return LatencyCause::kArbitration;
      if (outstanding >= runtime_.max_outstanding) {
        return LatencyCause::kBackpressure;
      }
      return LatencyCause::kPipeline;  // will issue next cycle
    };
    for (PortIndex i = 0; i < num_ports(); ++i) {
      if (ts_[i]->active_read_id().has_value()) {
        audit_->on_stall_cause(
            i, false, classify(i, ts_[i]->reads_outstanding(), *ts_ar_[i]));
      }
      if (ts_[i]->active_write_id().has_value()) {
        audit_->on_stall_cause(
            i, true, classify(i, ts_[i]->writes_outstanding(), *ts_aw_[i]));
      }
    }
  }

  // EXBAR: fixed-granularity round-robin, one grant per address channel.
  if (auto p = exbar_.grant_read(ts_ar_ptrs_, xbar_ar_)) {
    ++mutable_counters(*p).ar_granted;
    if (tracing()) {
      trace_->record(now, name() + ".exbar",
                     "ar_grant_p" + std::to_string(*p));
    }
    if (audit) audit_->on_grant(*p, false, now);
  }
  if (auto p = exbar_.grant_write(ts_aw_ptrs_, xbar_aw_)) {
    ++mutable_counters(*p).aw_granted;
    if (tracing()) {
      trace_->record(now, name() + ".exbar",
                     "aw_grant_p" + std::to_string(*p));
    }
    if (audit) audit_->on_grant(*p, true, now);
  }

  // Master eFIFO stage toward the FPGA-PS interface.
  if (xbar_ar_.can_pop() && master_link().ar.can_push()) {
    master_link().ar.push(xbar_ar_.pop());
    if (audit) audit_->on_hc_exit(false, now);
  }
  if (xbar_aw_.can_pop() && master_link().aw.can_push()) {
    master_link().aw.push(xbar_aw_.pop());
    if (audit) audit_->on_hc_exit(true, now);
  }
}

}  // namespace axihc
