#include "hyperconnect/hyperconnect.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

namespace {
HcRuntime make_runtime(const HyperConnectConfig& cfg) {
  HcRuntime rt;
  rt.global_enable = true;
  rt.nominal_burst = cfg.nominal_burst;
  rt.max_outstanding = cfg.max_outstanding;
  rt.reservation_period = cfg.reservation_period;
  rt.budgets = cfg.initial_budgets;
  rt.budgets.resize(cfg.num_ports, 0);
  rt.coupled.assign(cfg.num_ports, true);
  rt.out_of_order = cfg.out_of_order;
  return rt;
}
}  // namespace

HyperConnect::HyperConnect(std::string name, HyperConnectConfig cfg)
    : Interconnect(std::move(name), cfg.num_ports, cfg.port_link_cfg,
                   cfg.master_link_cfg),
      cfg_(cfg),
      runtime_(make_runtime(cfg)),
      xbar_ar_(Component::name() + ".xbar_ar", cfg.xbar_stage_depth),
      xbar_aw_(Component::name() + ".xbar_aw", cfg.xbar_stage_depth),
      exbar_(cfg.num_ports, cfg.route_capacity,
             /*order_based_routing=*/!cfg.out_of_order, cfg.arbitration),
      budget_left_(runtime_.budgets),
      regfile_(runtime_,
               [this](PortIndex i) {
                 return ts_[i]->subtransactions_issued();
               }),
      control_link_(Component::name() + ".ctrl", cfg.control_link_cfg) {
  AXIHC_CHECK(cfg_.max_outstanding >= 1);
  efifos_.reserve(cfg_.num_ports);
  for (PortIndex i = 0; i < cfg_.num_ports; ++i) {
    efifos_.emplace_back(port_link(i));
    ts_.push_back(std::make_unique<TransactionSupervisor>(i, runtime_));
    ts_ar_.push_back(std::make_unique<TimingChannel<AddrReq>>(
        Component::name() + ".ts_ar" + std::to_string(i),
        cfg_.ts_stage_depth));
    ts_aw_.push_back(std::make_unique<TimingChannel<AddrReq>>(
        Component::name() + ".ts_aw" + std::to_string(i),
        cfg_.ts_stage_depth));
    ts_ar_ptrs_.push_back(ts_ar_.back().get());
    ts_aw_ptrs_.push_back(ts_aw_.back().get());
  }
}

void HyperConnect::register_with(Simulator& sim) {
  Interconnect::register_with(sim);
  for (auto& ch : ts_ar_) sim.add(*ch);
  for (auto& ch : ts_aw_) sim.add(*ch);
  sim.add(xbar_ar_);
  sim.add(xbar_aw_);
  control_link_.register_with(sim);
}

void HyperConnect::reset() {
  runtime_ = make_runtime(cfg_);
  for (auto& ts : ts_) ts->reset();
  exbar_.reset();
  budget_left_ = runtime_.budgets;
  recharges_ = 0;
  for (PortIndex i = 0; i < num_ports(); ++i) {
    efifos_[i].set_coupled(true);
    mutable_counters(i) = PortCounters{};
  }
}

std::uint32_t HyperConnect::budget_left(PortIndex i) const {
  AXIHC_CHECK(i < budget_left_.size());
  return budget_left_[i];
}

const TransactionSupervisor& HyperConnect::supervisor(PortIndex i) const {
  AXIHC_CHECK(i < ts_.size());
  return *ts_[i];
}

void HyperConnect::tick_control_interface() {
  // Register write: AW + single W beat -> B.
  if (control_link_.aw.can_pop() && control_link_.w.can_pop() &&
      control_link_.b.can_push()) {
    const AddrReq aw = control_link_.aw.pop();
    AXIHC_CHECK_MSG(aw.beats == 1,
                    name() << ": control interface writes must be single-beat");
    const WBeat wb = control_link_.w.pop();
    AXIHC_CHECK(wb.last);
    regfile_.write(aw.addr, wb.data);
    control_link_.b.push({aw.id, Resp::kOkay});
  }
  // Register read: AR -> single R beat.
  if (control_link_.ar.can_pop() && control_link_.r.can_push()) {
    const AddrReq ar = control_link_.ar.pop();
    AXIHC_CHECK_MSG(ar.beats == 1,
                    name() << ": control interface reads must be single-beat");
    control_link_.r.push({ar.id, regfile_.read(ar.addr), true, Resp::kOkay});
  }
}

void HyperConnect::tick_central_unit(Cycle now) {
  // Keep the eFIFO decoupling state in sync with the PORT_CTRL registers.
  // While a port is decoupled its signals are grounded: anything queued in
  // or pushed toward its eFIFO is dropped continuously, and any half-split
  // burst is aborted — as under dynamic partial reconfiguration, where the
  // HA behind the port is being replaced and is reset before recoupling.
  for (PortIndex i = 0; i < num_ports(); ++i) {
    const bool want = runtime_.coupled[i];
    if (!want) {
      AxiLink& link = port_link(i);
      link.ar.clear_contents();
      link.aw.clear_contents();
      link.w.clear_contents();
      link.r.clear_contents();
      link.b.clear_contents();
      ts_[i]->abort_pending_issue();
    }
    efifos_[i].set_coupled(want);
  }
  // Synchronous budget recharge for all TS modules every period T.
  if (runtime_.reservation_period != 0 &&
      now % runtime_.reservation_period == 0) {
    budget_left_ = runtime_.budgets;
    ++recharges_;
  }
}

void HyperConnect::tick_r_path() {
  if (!master_link().r.can_pop()) return;

  PortIndex port = 0;
  if (runtime_.out_of_order) {
    // ID-extension mode: the source port is encoded in the upper ID bits.
    port = static_cast<PortIndex>(master_link().r.front().id >> kIdPortShift);
    AXIHC_CHECK_MSG(port < num_ports(),
                    name() << ": R beat with unroutable extended id");
  } else {
    auto& route = exbar_.read_route();
    AXIHC_CHECK_MSG(!route.empty(), name() << ": R data with no routing info");
    port = route.front().port;
  }
  Efifo& fifo = efifos_[port];

  if (fifo.coupled() && !fifo.can_push_r()) return;  // upstream backpressure

  RBeat raw = master_link().r.pop();
  const bool subburst_end = raw.last;  // controller-level LAST
  if (runtime_.out_of_order) {
    raw.id &= (TxnId{1} << kIdPortShift) - 1;  // restore the HA's ID
  }
  const RBeat merged = ts_[port]->process_r_beat(raw);
  if (fifo.coupled()) {
    fifo.push_r(merged);
    ++mutable_counters(port).r_beats;
  }
  // A decoupled port's signals are grounded: the beat is dropped, but the
  // routing/merge bookkeeping above stays consistent.
  if (!runtime_.out_of_order && subburst_end) exbar_.read_route().pop();
}

void HyperConnect::tick_b_path() {
  if (!master_link().b.can_pop()) return;

  PortIndex port = 0;
  if (runtime_.out_of_order) {
    port = static_cast<PortIndex>(master_link().b.front().id >> kIdPortShift);
    AXIHC_CHECK_MSG(port < num_ports(),
                    name() << ": B with unroutable extended id");
  } else {
    auto& route = exbar_.b_route();
    AXIHC_CHECK_MSG(!route.empty(), name() << ": B with no routing info");
    port = route.front();
  }
  Efifo& fifo = efifos_[port];

  if (fifo.coupled() && !fifo.can_push_b()) return;

  BResp resp = master_link().b.pop();
  if (runtime_.out_of_order) {
    resp.id &= (TxnId{1} << kIdPortShift) - 1;
  }
  const bool forward = ts_[port]->process_b(resp);
  if (forward && fifo.coupled()) {
    fifo.push_b(resp);
    ++mutable_counters(port).b_resps;
  }
  if (!runtime_.out_of_order) exbar_.b_route().pop();
}

void HyperConnect::tick_w_path() {
  auto& route = exbar_.write_route();
  if (route.empty()) return;
  auto& entry = route.front();
  Efifo& fifo = efifos_[entry.port];
  if (!master_link().w.can_push()) return;
  AXIHC_CHECK(entry.beats > 0);
  const bool sub_end = entry.beats == 1;

  WBeat beat;
  if (fifo.coupled()) {
    if (!fifo.w_available()) return;
    beat = fifo.pop_w();
    const bool orig_last = beat.last;
    if (sub_end) {
      AXIHC_CHECK_MSG(orig_last == entry.expects_orig_last,
                      name() << ": HA WLAST misaligned with burst length");
    } else {
      AXIHC_CHECK_MSG(!orig_last,
                      name() << ": HA raised WLAST mid-burst");
    }
    ++mutable_counters(entry.port).w_beats;
  } else {
    // Decoupled port with an already-granted sub-AW: its W input is
    // grounded. Feed zero beats so the granted transaction completes and
    // the shared W path cannot be wedged by the isolated HA.
    beat = WBeat{0, 0xff, false};
  }
  // Re-chunk WLAST to the sub-burst boundary created by the TS split.
  beat.last = sub_end;
  master_link().w.push(beat);
  --entry.beats;
  if (sub_end) route.pop();
}

void HyperConnect::tick(Cycle now) {
  tick_control_interface();
  tick_central_unit(now);

  // Proactive data/response paths (no added latency).
  tick_r_path();
  tick_b_path();
  tick_w_path();

  // TS modules: one sub-request per port per direction per cycle.
  for (PortIndex i = 0; i < num_ports(); ++i) {
    ts_[i]->tick_read_issue(efifos_[i], *ts_ar_[i], budget_left_[i]);
    ts_[i]->tick_write_issue(efifos_[i], *ts_aw_[i], budget_left_[i]);
  }

  // EXBAR: fixed-granularity round-robin, one grant per address channel.
  if (auto p = exbar_.grant_read(ts_ar_ptrs_, xbar_ar_)) {
    ++mutable_counters(*p).ar_granted;
  }
  if (auto p = exbar_.grant_write(ts_aw_ptrs_, xbar_aw_)) {
    ++mutable_counters(*p).aw_granted;
  }

  // Master eFIFO stage toward the FPGA-PS interface.
  if (xbar_ar_.can_pop() && master_link().ar.can_push()) {
    master_link().ar.push(xbar_ar_.pop());
  }
  if (xbar_aw_.can_pop() && master_link().aw.can_push()) {
    master_link().aw.push(xbar_aw_.pop());
  }
}

}  // namespace axihc
