// Trace format shared by recorders (AxiMonitor) and players (TracePlayer):
// one address request per line,
//   <issue_cycle> R|W <hex_address> <beats>
// with '#' comments. Traces close the loop between real systems and this
// simulator: capture an HA's address stream, replay it against either
// interconnect.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace axihc {

struct TraceEntry {
  Cycle issue_at = 0;
  bool is_write = false;
  Addr addr = 0;
  BeatCount beats = 1;
};

/// Parses the text trace format. Throws ModelError on malformed input.
[[nodiscard]] std::vector<TraceEntry> parse_trace(std::istream& in);
[[nodiscard]] std::vector<TraceEntry> parse_trace(const std::string& text);

/// Serializes entries in the text trace format.
void write_trace(std::ostream& os, const std::vector<TraceEntry>& entries);

}  // namespace axihc
