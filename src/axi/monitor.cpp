#include "axi/monitor.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/log.hpp"

namespace axihc {

AxiMonitor::AxiMonitor(std::string name, AxiLink& upstream,
                       AxiLink& downstream, bool axi3_mode)
    : Component(std::move(name)),
      up_(upstream),
      down_(downstream),
      axi3_mode_(axi3_mode) {
  up_.attach_endpoint(*this);
  down_.attach_endpoint(*this);
}

void AxiMonitor::reset() {
  outstanding_reads_.clear();
  pending_w_.clear();
  awaiting_b_.clear();
  violations_.clear();
  reads_started_ = reads_completed_ = 0;
  writes_started_ = writes_completed_ = 0;
  r_beats_ = w_beats_ = 0;
  r_errors_ = b_errors_ = 0;
  read_idle_ = write_idle_ = 0;
  read_hang_flagged_ = write_hang_flagged_ = false;
  hangs_flagged_ = 0;
}

void AxiMonitor::check_hang(Cycle now, bool owes_progress, bool progressed,
                            Cycle& counter, bool& flagged,
                            const char* direction) {
  if (hang_timeout_ == 0) return;
  if (!owes_progress || progressed) {
    counter = 0;
    flagged = false;
    return;
  }
  ++counter;
  if (counter >= hang_timeout_ && !flagged) {
    flagged = true;  // one violation per stall episode
    ++hangs_flagged_;
    std::ostringstream os;
    os << direction << " path hung: no progress for " << counter
       << " cycles with transactions outstanding";
    violation(now, os.str());
  }
}

void AxiMonitor::violation(Cycle now, const std::string& what) {
  std::ostringstream os;
  os << name() << " @" << now << ": " << what;
  violations_.push_back(os.str());
  AXIHC_LOG_WARN() << violations_.back();
  if (throw_on_violation_) throw ModelError(violations_.back());
}

bool AxiMonitor::check_addr_req(Cycle now, const AddrReq& req,
                                const char* channel) {
  bool forwardable = true;
  const BeatCount max_beats =
      axi3_mode_ ? kMaxAxi3BurstBeats : kMaxAxi4BurstBeats;
  if (req.beats == 0 || req.beats > max_beats) {
    std::ostringstream os;
    os << channel << " burst length " << req.beats << " outside 1.."
       << max_beats;
    violation(now, os.str());
    // A zero/oversized burst cannot be represented downstream: drop it
    // after flagging rather than poisoning the slave.
    forwardable = false;
  }
  if (req.burst == BurstType::kWrap) {
    const bool legal = req.beats == 2 || req.beats == 4 || req.beats == 8 ||
                       req.beats == 16;
    if (!legal) {
      violation(now, std::string(channel) + " WRAP burst length must be 2/4/8/16");
    }
  }
  if (crosses_4k(req)) {
    violation(now, std::string(channel) + " INCR burst crosses 4KiB boundary");
  }
  return forwardable;
}

void AxiMonitor::tick(Cycle now) {
  bool read_progress = false;
  bool write_progress = false;

  // AR: master -> slave, one request per cycle.
  if (up_.ar.can_pop() && down_.ar.can_push() && !outstanding_reads_.full()) {
    AddrReq req = up_.ar.pop();
    if (check_addr_req(now, req, "AR")) {
      outstanding_reads_.push({req.id, req.beats});
      ++reads_started_;
      if (trace_sink_) trace_sink_->push_back({now, false, req.addr, req.beats});
      down_.ar.push(req);
    }
  }

  // R: slave -> master.
  if (down_.r.can_pop() && up_.r.can_push()) {
    RBeat beat = down_.r.pop();
    ++r_beats_;
    read_progress = true;
    if (is_error(beat.resp)) ++r_errors_;
    if (outstanding_reads_.empty()) {
      violation(now, "R beat with no outstanding AR");
    } else {
      auto& head = outstanding_reads_.front();
      if (beat.id != head.id) {
        std::ostringstream os;
        os << "R beat id " << beat.id << " != oldest outstanding AR id "
           << head.id << " (out-of-order read data)";
        violation(now, os.str());
      }
      AXIHC_CHECK(head.beats_left > 0);
      --head.beats_left;
      const bool expect_last = head.beats_left == 0;
      if (beat.last != expect_last) {
        violation(now, expect_last ? "missing RLAST on final beat"
                                   : "spurious RLAST mid-burst");
        beat.last = expect_last;  // repair after flagging
      }
      if (expect_last) {
        outstanding_reads_.pop();
        ++reads_completed_;
      }
    }
    up_.r.push(beat);
  }

  // AW: master -> slave.
  if (up_.aw.can_pop() && down_.aw.can_push() && !pending_w_.full()) {
    AddrReq req = up_.aw.pop();
    if (check_addr_req(now, req, "AW")) {
      pending_w_.push({req.id, req.beats});
      ++writes_started_;
      if (trace_sink_) trace_sink_->push_back({now, true, req.addr, req.beats});
      down_.aw.push(req);
    }
  }

  // W: master -> slave. This library requires AW before its W data.
  if (up_.w.can_pop() && down_.w.can_push()) {
    WBeat beat = up_.w.front();
    if (pending_w_.empty()) {
      // Leave the beat queued: it may belong to an AW still in flight
      // (pushed this cycle, visible next). Only flag if nothing shows up.
      if (up_.aw.empty()) {
        violation(now, "W beat with no pending AW and no AW in flight");
        up_.w.pop();  // drop to avoid livelock after a real violation
      }
    } else {
      up_.w.pop();
      ++w_beats_;
      write_progress = true;
      auto& head = pending_w_.front();
      AXIHC_CHECK(head.beats_left > 0);
      --head.beats_left;
      const bool expect_last = head.beats_left == 0;
      if (beat.last != expect_last) {
        violation(now, expect_last ? "missing WLAST on final beat"
                                   : "spurious WLAST mid-burst");
        beat.last = expect_last;  // repair after flagging
      }
      if (expect_last) {
        if (awaiting_b_.full()) {
          violation(now, "too many writes awaiting B");
        } else {
          awaiting_b_.push(pending_w_.front().id);
        }
        pending_w_.pop();
      }
      down_.w.push(beat);
    }
  }

  // B: slave -> master.
  if (down_.b.can_pop() && up_.b.can_push()) {
    BResp resp = down_.b.pop();
    write_progress = true;
    if (is_error(resp.resp)) ++b_errors_;
    if (awaiting_b_.empty()) {
      violation(now, "B response before all W data transferred (or spurious)");
    } else {
      const TxnId expected = awaiting_b_.front();
      if (resp.id != expected) {
        std::ostringstream os;
        os << "B id " << resp.id << " != oldest completed write id "
           << expected << " (out-of-order write response)";
        violation(now, os.str());
      }
      awaiting_b_.pop();
      ++writes_completed_;
    }
    up_.b.push(resp);
  }

  check_hang(now, !outstanding_reads_.empty(), read_progress, read_idle_,
             read_hang_flagged_, "read");
  check_hang(now, !pending_w_.empty() || !awaiting_b_.empty(), write_progress,
             write_idle_, write_hang_flagged_, "write");
}

}  // namespace axihc
