#include "axi/loopback_slave.hpp"

#include <utility>

#include "common/check.hpp"

namespace axihc {

LoopbackSlave::LoopbackSlave(std::string name, AxiLink& link)
    : Component(std::move(name)), link_(link) {
  link_.attach_endpoint(*this);
}

void LoopbackSlave::reset() {
  ar_arrivals.clear();
  aw_arrivals.clear();
  w_first_beat.clear();
  w_last_beat.clear();
  r_first_push.clear();
  r_last_push.clear();
  b_pushes.clear();
  reads_.clear();
  writes_.clear();
}

void LoopbackSlave::tick(Cycle now) {
  if (link_.ar.can_pop()) {
    const AddrReq req = link_.ar.pop();
    ar_arrivals.push_back(now);
    reads_.push_back({req.id, req.beats, req.beats});
  }
  if (link_.aw.can_pop()) {
    const AddrReq req = link_.aw.pop();
    aw_arrivals.push_back(now);
    writes_.push_back({req.id, req.beats, req.beats});
  }

  // Read data: one beat per cycle, zero service latency.
  if (!reads_.empty() && link_.r.can_push()) {
    Job& job = reads_.front();
    if (job.beats_left == job.beats_total) r_first_push.push_back(now);
    --job.beats_left;
    const bool last = job.beats_left == 0;
    link_.r.push({job.id, 0xC0DE0000u + job.beats_left, last, Resp::kOkay});
    if (last) {
      r_last_push.push_back(now);
      reads_.pop_front();
    }
  }

  // Write data: consume one beat per cycle; B with the last beat.
  if (!writes_.empty() && link_.w.can_pop() && link_.b.can_push()) {
    Job& job = writes_.front();
    const WBeat beat = link_.w.pop();
    if (job.beats_left == job.beats_total) w_first_beat.push_back(now);
    AXIHC_CHECK(job.beats_left > 0);
    --job.beats_left;
    if (job.beats_left == 0) {
      AXIHC_CHECK_MSG(beat.last, name() << ": missing WLAST");
      w_last_beat.push_back(now);
      link_.b.push({job.id, Resp::kOkay});
      b_pushes.push_back(now);
      writes_.pop_front();
    } else {
      AXIHC_CHECK_MSG(!beat.last, name() << ": early WLAST");
    }
  }
}

}  // namespace axihc
