// Instrumented zero-latency AXI slave.
//
// Serves read data and write responses with no service delay (one beat per
// cycle, B in the same cycle as the last W beat) and records the cycle of
// every channel event. With service latency out of the picture, the
// difference between a master-side push and the corresponding slave-side
// arrival is exactly the interconnect's propagation latency — this is the
// C++ twin of the paper's "custom-developed timer implemented in the FPGA
// fabric" (§VI-B) and the instrument behind Fig. 3(a).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/axi.hpp"
#include "sim/component.hpp"

namespace axihc {

class LoopbackSlave final : public Component {
 public:
  LoopbackSlave(std::string name, AxiLink& link);

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override {
    if (link_.ar.can_pop() || link_.aw.can_pop() || link_.w.can_pop() ||
        !reads_.empty() || !writes_.empty()) {
      return now;
    }
    return kNoCycle;
  }

  /// Channel-pure: serves only its own link.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

  // Arrival timestamps, one entry per event, in order.
  std::vector<Cycle> ar_arrivals;
  std::vector<Cycle> aw_arrivals;
  std::vector<Cycle> w_first_beat;  // first W beat of each burst
  std::vector<Cycle> w_last_beat;   // last W beat of each burst
  std::vector<Cycle> r_first_push;  // first R beat pushed per burst
  std::vector<Cycle> r_last_push;
  std::vector<Cycle> b_pushes;

 private:
  struct Job {
    TxnId id = 0;
    BeatCount beats_left = 0;
    BeatCount beats_total = 0;
  };

  AxiLink& link_;
  std::deque<Job> reads_;
  std::deque<Job> writes_;
};

}  // namespace axihc
