#include "axi/bridge.hpp"

#include <utility>

namespace axihc {

AxiBridge::AxiBridge(std::string name, AxiLink& upstream, AxiLink& downstream)
    : Component(std::move(name)), up_(upstream), down_(downstream) {
  up_.attach_endpoint(*this);
  down_.attach_endpoint(*this);
}

void AxiBridge::tick(Cycle) {
  if (up_.ar.can_pop() && down_.ar.can_push()) down_.ar.push(up_.ar.pop());
  if (up_.aw.can_pop() && down_.aw.can_push()) down_.aw.push(up_.aw.pop());
  if (up_.w.can_pop() && down_.w.can_push()) down_.w.push(up_.w.pop());
  if (down_.r.can_pop() && up_.r.can_push()) up_.r.push(down_.r.pop());
  if (down_.b.can_pop() && up_.b.can_push()) up_.b.push(down_.b.pop());
}

}  // namespace axihc
