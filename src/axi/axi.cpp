#include "axi/axi.hpp"

namespace axihc {

std::uint64_t burst_bytes(const AddrReq& req) {
  return static_cast<std::uint64_t>(req.beats) << req.size_log2;
}

Addr burst_end(const AddrReq& req) {
  if (req.burst == BurstType::kFixed) {
    return req.addr + (std::uint64_t{1} << req.size_log2);
  }
  return req.addr + burst_bytes(req);
}

bool crosses_4k(const AddrReq& req) {
  if (req.burst != BurstType::kIncr) return false;
  constexpr Addr kBoundary = 4096;
  const Addr first = req.addr / kBoundary;
  const Addr last = (burst_end(req) - 1) / kBoundary;
  return first != last;
}

AxiLink::AxiLink(const std::string& name, AxiLinkConfig cfg)
    : ar(name + ".AR", cfg.ar_depth),
      r(name + ".R", cfg.r_depth),
      aw(name + ".AW", cfg.aw_depth),
      w(name + ".W", cfg.w_depth),
      b(name + ".B", cfg.b_depth),
      name_(name),
      data_bits_(cfg.data_bits),
      id_bits_(cfg.id_bits) {}

void AxiLink::register_with(Simulator& sim) {
  sim.add(ar);
  sim.add(r);
  sim.add(aw);
  sim.add(w);
  sim.add(b);
}

void AxiLink::attach_endpoint(const Component& component) {
  ar.add_endpoint(component);
  r.add_endpoint(component);
  aw.add_endpoint(component);
  w.add_endpoint(component);
  b.add_endpoint(component);
}

}  // namespace axihc
