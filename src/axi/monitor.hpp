// AXI protocol monitor: an in-line checker inserted between a master-side
// link and a slave-side link (like a protocol-checker IP in an FPGA design).
// It forwards traffic unchanged at one beat per channel per cycle and
// verifies the protocol invariants this library relies on:
//
//  * burst legality: 1..256 beats (INCR), WRAP length in {2,4,8,16}, no
//    4 KiB boundary crossing for INCR bursts;
//  * in-order read data: R beats carry the id of the oldest outstanding AR,
//    RLAST exactly on the final beat of each burst;
//  * write data follows write addresses: W beat count per AW matches the
//    advertised burst length, WLAST on the final beat;
//  * one B response per write transaction, in AW order, only after all W
//    data has been transferred.
//
// Violations are recorded; optionally the monitor throws ModelError
// immediately (used by the tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/axi.hpp"
#include "axi/trace_format.hpp"
#include "common/ring_buffer.hpp"
#include "sim/component.hpp"

namespace axihc {

class AxiMonitor final : public Component {
 public:
  /// Monitors traffic flowing from `upstream` (master side) to `downstream`
  /// (slave side). `axi3_mode` restricts bursts to 16 beats as in AXI3.
  AxiMonitor(std::string name, AxiLink& upstream, AxiLink& downstream,
             bool axi3_mode = false);

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override {
    // Traffic to forward this cycle?
    if (up_.ar.can_pop() || up_.aw.can_pop() || up_.w.can_pop() ||
        down_.r.can_pop() || down_.b.can_pop()) {
      return now;
    }
    // The hang watchdog counts no-progress cycles while a direction owes
    // data/responses — conservative while anything is outstanding.
    if (!outstanding_reads_.empty() || !pending_w_.empty() ||
        !awaiting_b_.empty()) {
      return now;
    }
    return kNoCycle;
  }

  /// Channel-pure: observes only its two links and its own bookkeeping.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

  /// If set, a violation throws ModelError instead of only being recorded.
  void set_throw_on_violation(bool on) { throw_on_violation_ = on; }

  /// Hang watchdog: flags a violation when a direction owes progress (data
  /// or responses are outstanding) but none happens for `cycles` in a row.
  /// One violation per stall episode. 0 (default) disables the check.
  void set_hang_timeout(Cycle cycles) { hang_timeout_ = cycles; }

  /// Records every forwarded AR/AW into `sink` as a trace entry (nullptr
  /// stops recording). Replay with TracePlayer.
  void set_trace_sink(std::vector<TraceEntry>* sink) { trace_sink_ = sink; }

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool clean() const { return violations_.empty(); }

  [[nodiscard]] std::uint64_t reads_started() const { return reads_started_; }
  [[nodiscard]] std::uint64_t reads_completed() const {
    return reads_completed_;
  }
  [[nodiscard]] std::uint64_t writes_started() const {
    return writes_started_;
  }
  [[nodiscard]] std::uint64_t writes_completed() const {
    return writes_completed_;
  }
  [[nodiscard]] std::uint64_t r_beats() const { return r_beats_; }
  [[nodiscard]] std::uint64_t w_beats() const { return w_beats_; }

  /// Error responses observed (legal AXI — counted, not violations).
  [[nodiscard]] std::uint64_t r_errors() const { return r_errors_; }
  [[nodiscard]] std::uint64_t b_errors() const { return b_errors_; }
  /// Hang-watchdog episodes flagged (also recorded in violations()).
  [[nodiscard]] std::uint64_t hangs_flagged() const { return hangs_flagged_; }

 private:
  struct OutstandingBurst {
    TxnId id = 0;
    BeatCount beats_left = 0;
  };

  void violation(Cycle now, const std::string& what);
  /// Returns false if the request is too malformed to forward downstream.
  bool check_addr_req(Cycle now, const AddrReq& req, const char* channel);
  /// Per-direction no-progress accounting for the hang watchdog.
  void check_hang(Cycle now, bool owes_progress, bool progressed,
                  Cycle& counter, bool& flagged, const char* direction);

  AxiLink& up_;
  AxiLink& down_;
  std::vector<TraceEntry>* trace_sink_ = nullptr;
  bool axi3_mode_;
  bool throw_on_violation_ = false;

  RingBuffer<OutstandingBurst> outstanding_reads_{256};
  RingBuffer<OutstandingBurst> pending_w_{256};   // AWs awaiting W data
  RingBuffer<TxnId> awaiting_b_{256};             // writes with all W sent

  std::vector<std::string> violations_;
  std::uint64_t reads_started_ = 0;
  std::uint64_t reads_completed_ = 0;
  std::uint64_t writes_started_ = 0;
  std::uint64_t writes_completed_ = 0;
  std::uint64_t r_beats_ = 0;
  std::uint64_t w_beats_ = 0;
  std::uint64_t r_errors_ = 0;
  std::uint64_t b_errors_ = 0;

  Cycle hang_timeout_ = 0;
  Cycle read_idle_ = 0;
  Cycle write_idle_ = 0;
  bool read_hang_flagged_ = false;
  bool write_hang_flagged_ = false;
  std::uint64_t hangs_flagged_ = 0;
};

}  // namespace axihc
