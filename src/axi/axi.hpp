// AMBA AXI channel payloads and link bundles.
//
// AXI defines five independent channels (§II of the paper): AR (read
// address), R (read data), AW (write address), W (write data), B (write
// response). Each channel is modelled as a TimingChannel carrying one of the
// payload structs below; a full master/slave connection is an AxiLink
// bundling the five.
//
// In-order model: the paper's target platforms serve transactions in order at
// the memory controller and route R/W data in AR/AW grant order. All
// components in this library preserve that ordering, and the AxiMonitor
// enforces it.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"

namespace axihc {

/// AXI burst type (AxBURST).
enum class BurstType : std::uint8_t { kFixed, kIncr, kWrap };

/// AXI response code (xRESP).
enum class Resp : std::uint8_t { kOkay, kExOkay, kSlvErr, kDecErr };

/// True for the two error responses (SLVERR/DECERR).
[[nodiscard]] constexpr bool is_error(Resp r) {
  return r == Resp::kSlvErr || r == Resp::kDecErr;
}

/// Merge rule for responses of sub-bursts that equalization re-joins into
/// one HA-visible transaction: keep the worst. The enum's numeric order
/// happens to be the severity order (OKAY < EXOKAY < SLVERR < DECERR);
/// EXOKAY never occurs here because the model carries no exclusive accesses.
[[nodiscard]] constexpr Resp worst_resp(Resp a, Resp b) {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

/// Payload of the AR and AW channels.
struct AddrReq {
  TxnId id = 0;
  Addr addr = 0;
  /// Number of data beats (AxLEN + 1); AXI4 INCR allows 1..256.
  BeatCount beats = 1;
  /// Bytes per beat = 1 << size_log2 (AxSIZE). 3 → 64-bit data bus.
  std::uint8_t size_log2 = 3;
  BurstType burst = BurstType::kIncr;
  /// AXI QoS signal (ignored by SmartConnect per its product guide; carried
  /// for completeness).
  std::uint8_t qos = 0;
  /// Cycle the originating master issued the request (latency probes).
  Cycle issued_at = kNoCycle;
  /// Opaque bookkeeping field for interconnect models (e.g. sub-burst
  /// sequence numbers created by the Transaction Supervisor).
  std::uint64_t tag = 0;
};

/// Payload of the R channel: one read-data beat.
struct RBeat {
  TxnId id = 0;
  std::uint64_t data = 0;
  bool last = false;
  Resp resp = Resp::kOkay;
};

/// Payload of the W channel: one write-data beat. AXI4 has no WID; beats
/// follow AW order.
struct WBeat {
  std::uint64_t data = 0;
  /// Byte-enable strobe (bit per byte of the beat).
  std::uint8_t strb = 0xff;
  bool last = false;
};

/// Payload of the B channel: write acknowledgement.
struct BResp {
  TxnId id = 0;
  Resp resp = Resp::kOkay;
};

/// State-digest folds for the channel payloads (field-wise, never raw struct
/// bytes — padding is indeterminate). Found by ADL from
/// TimingChannel::append_digest.
inline void append_digest(StateDigest& d, const AddrReq& req) {
  d.mix(req.id);
  d.mix(req.addr);
  d.mix(req.beats);
  d.mix(static_cast<std::uint64_t>(req.size_log2) |
        (static_cast<std::uint64_t>(req.burst) << 8) |
        (static_cast<std::uint64_t>(req.qos) << 16));
  d.mix(static_cast<std::uint64_t>(req.issued_at));
  d.mix(req.tag);
}

inline void append_digest(StateDigest& d, const RBeat& beat) {
  d.mix(beat.id);
  d.mix(beat.data);
  d.mix(static_cast<std::uint64_t>(beat.last) |
        (static_cast<std::uint64_t>(beat.resp) << 8));
}

inline void append_digest(StateDigest& d, const WBeat& beat) {
  d.mix(beat.data);
  d.mix(static_cast<std::uint64_t>(beat.strb) |
        (static_cast<std::uint64_t>(beat.last) << 8));
}

inline void append_digest(StateDigest& d, const BResp& resp) {
  d.mix(resp.id);
  d.mix(static_cast<std::uint64_t>(resp.resp));
}

/// Total bytes transferred by a burst.
[[nodiscard]] std::uint64_t burst_bytes(const AddrReq& req);

/// First byte address after the burst.
[[nodiscard]] Addr burst_end(const AddrReq& req);

/// True if an INCR burst crosses a 4 KiB boundary (forbidden by AXI).
[[nodiscard]] bool crosses_4k(const AddrReq& req);

/// FIFO depths of the five channels of a link, plus the static interface
/// widths the design-rule checker (src/lint) validates at bridges and
/// ID-extension boundaries. The behavioural model carries 64-bit beats
/// regardless; the widths describe the modelled hardware interface.
struct AxiLinkConfig {
  std::size_t ar_depth = 4;
  std::size_t aw_depth = 4;
  std::size_t w_depth = 32;
  std::size_t r_depth = 32;
  std::size_t b_depth = 4;
  /// Data-bus width in bits (AXI allows 8..1024; the paper's platforms
  /// use 64/128-bit HP ports).
  std::uint32_t data_bits = 64;
  /// AxID width in bits. Must stay <= kIdPortShift on HA-side links when
  /// the HyperConnect's ID-extension (out-of-order) mode is enabled.
  std::uint32_t id_bits = 16;
};

/// A point-to-point AXI connection: five independent channels.
/// The master pushes AR/AW/W and pops R/B; the slave does the opposite.
class AxiLink {
 public:
  explicit AxiLink(const std::string& name, AxiLinkConfig cfg = {});

  /// Registers all five channels with `sim` for end-of-cycle commit.
  void register_with(Simulator& sim);

  /// Declares `component` as an endpoint of all five channels (island
  /// discovery; see ChannelBase::add_endpoint). Masters and slaves call this
  /// from their constructors.
  void attach_endpoint(const Component& component);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Static interface widths (design-rule checks; see AxiLinkConfig).
  [[nodiscard]] std::uint32_t data_bits() const { return data_bits_; }
  [[nodiscard]] std::uint32_t id_bits() const { return id_bits_; }

  TimingChannel<AddrReq> ar;
  TimingChannel<RBeat> r;
  TimingChannel<AddrReq> aw;
  TimingChannel<WBeat> w;
  TimingChannel<BResp> b;

 private:
  std::string name_;
  std::uint32_t data_bits_;
  std::uint32_t id_bits_;
};

}  // namespace axihc
