// AXI register-slice bridge: forwards all five channels between two links,
// one beat per channel per cycle, adding one pipeline stage per hop.
//
// Used to compose topologies the paper's Figure 1 hints at (and real SoC
// designs use): cascading interconnects (an upstream HyperConnect feeding a
// port of a downstream one), inserting monitors, or simply closing timing
// with an extra register stage.
#pragma once

#include "axi/axi.hpp"
#include "sim/component.hpp"

namespace axihc {

class AxiBridge final : public Component {
 public:
  /// Forwards master-side traffic from `upstream` to `downstream` and
  /// responses back.
  AxiBridge(std::string name, AxiLink& upstream, AxiLink& downstream);

  void tick(Cycle now) override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override {
    if (up_.ar.can_pop() || up_.aw.can_pop() || up_.w.can_pop() ||
        down_.r.can_pop() || down_.b.can_pop()) {
      return now;
    }
    return kNoCycle;
  }

  /// Channel-pure: moves beats between its two links only.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kIsland;
  }

 private:
  AxiLink& up_;
  AxiLink& down_;
};

}  // namespace axihc
