#include "axi/trace_format.hpp"

#include <sstream>

#include "axi/axi.hpp"
#include "common/check.hpp"

namespace axihc {

std::vector<TraceEntry> parse_trace(std::istream& in) {
  std::vector<TraceEntry> entries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    TraceEntry e;
    std::string dir;
    if (!(ls >> e.issue_at)) continue;  // blank/comment-only line
    AXIHC_CHECK_MSG(static_cast<bool>(ls >> dir >> std::hex >> e.addr >>
                                      std::dec >> e.beats),
                    "trace line " << line_no << ": malformed");
    AXIHC_CHECK_MSG(dir == "R" || dir == "W",
                    "trace line " << line_no << ": direction must be R or W");
    e.is_write = dir == "W";
    AXIHC_CHECK_MSG(e.beats >= 1 && e.beats <= kMaxAxi4BurstBeats,
                    "trace line " << line_no << ": bad burst length");
    entries.push_back(e);
  }
  return entries;
}

std::vector<TraceEntry> parse_trace(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

void write_trace(std::ostream& os, const std::vector<TraceEntry>& entries) {
  for (const auto& e : entries) {
    os << e.issue_at << ' ' << (e.is_write ? 'W' : 'R') << " 0x" << std::hex
       << e.addr << std::dec << ' ' << e.beats << '\n';
  }
}

}  // namespace axihc
