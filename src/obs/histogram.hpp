// Log-bucketed latency histogram with bounded memory (HDR-histogram style).
//
// LatencyStats (src/stats/stats.hpp) retains every sample, which makes its
// percentiles exact but its memory proportional to run length — fine for
// tests, wrong for unbounded-lifetime hot paths (a Fig. 5 run completes
// millions of transactions). LogHistogram trades percentile accuracy for a
// fixed footprint:
//
//  * values below 2^kSubBucketBits (64 cycles) land in exact unit-width
//    buckets — short latencies, the common case, lose nothing;
//  * above that, each power-of-two octave is split into kSubBuckets (32)
//    linear sub-buckets, so any reported quantile is at most one sub-bucket
//    width above the true sample: a relative error of at most
//    1/kSubBuckets ≈ 3.1%, always an OVER-estimate (percentiles report the
//    bucket's upper edge, never below the sample that landed there);
//  * count/sum/mean/min/max are tracked exactly on the side, so digests and
//    max-vs-bound comparisons are unaffected by bucketing.
//
// Total footprint: 64 + 58*32 = 1920 buckets of 8 bytes (~15 KiB),
// independent of sample count. Keep LatencyStats where tests need exact
// percentiles; use LogHistogram wherever lifetime is unbounded.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace axihc {

class LogHistogram {
 public:
  /// Values below 2^kSubBucketBits get exact unit buckets.
  static constexpr unsigned kSubBucketBits = 6;
  /// Linear sub-buckets per octave above the exact region.
  static constexpr std::size_t kSubBuckets = std::size_t{1}
                                             << (kSubBucketBits - 1);

  LogHistogram();

  void record(Cycle latency);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] Cycle min() const;
  [[nodiscard]] Cycle max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::uint64_t sum() const { return sum_; }

  /// p-th percentile (0 < p <= 100) by nearest-rank over buckets. Reports
  /// the holding bucket's upper edge (clamped to the exact max), so the
  /// result is >= the true nearest-rank sample and within ~3.1% of it.
  /// Requires samples.
  [[nodiscard]] Cycle percentile(double p) const;

  void clear();

  /// Bucket geometry, exposed so tests can pin the edge behaviour.
  [[nodiscard]] static std::size_t bucket_index(Cycle value);
  [[nodiscard]] static Cycle bucket_lower(std::size_t index);
  [[nodiscard]] static Cycle bucket_upper(std::size_t index);
  [[nodiscard]] static std::size_t bucket_count();

 private:
  std::vector<std::uint64_t> counts_;
  std::size_t count_ = 0;
  std::uint64_t sum_ = 0;
  Cycle min_ = 0;
  Cycle max_ = 0;
};

}  // namespace axihc
