// Metrics registry + periodic sampler — the numeric half of the
// observability layer (the trace half is sim/trace.hpp + chrome_trace.hpp).
//
// Any component can register named metrics as read callbacks; nothing is
// stored per event, so registration is free at simulation time. A
// MetricsSampler snapshots every registered metric every N cycles into an
// in-memory time series that can be written as CSV or JSON-lines — the
// software analogue of the paper's fabric timer feeding the Fig. 3–5 plots,
// generalized to every counter the model already maintains.
//
// Two metric kinds, mirroring the usual monitoring vocabulary:
//  * kGauge   — an instantaneous level (eFIFO occupancy, budget remaining,
//               outstanding transactions, queue depth);
//  * kCounter — a monotonically increasing total (grants, beats, faults,
//               bytes). Rates are differences between samples, so the sum of
//               per-window deltas always equals the end-of-run total.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/component.hpp"

namespace axihc {

enum class MetricKind : std::uint8_t { kGauge, kCounter };

/// A flat list of named read callbacks. Names use dotted paths
/// ("hc.port0.budget_left"); see docs/OBSERVABILITY.md for the catalog.
class MetricsRegistry {
 public:
  using Reader = std::function<double()>;

  /// Registers a metric. The callback is invoked at every sample and must
  /// stay valid for the registry's lifetime (components register metrics
  /// reading their own members, and outlive the registry's owner).
  void add(std::string name, MetricKind kind, Reader read);

  /// Convenience for the common case of exposing an integer member.
  void add_counter(std::string name, const std::uint64_t* value);
  void add_gauge(std::string name, const std::uint64_t* value);

  /// Kind-tagged callback registration (lambdas computing the value).
  void add_counter(std::string name, Reader read) {
    add(std::move(name), MetricKind::kCounter, std::move(read));
  }
  void add_gauge(std::string name, Reader read) {
    add(std::move(name), MetricKind::kGauge, std::move(read));
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const;
  [[nodiscard]] MetricKind kind(std::size_t i) const;
  [[nodiscard]] double read(std::size_t i) const;

  /// Index of a metric by exact name, or size() when absent.
  [[nodiscard]] std::size_t find(const std::string& name) const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    Reader read;
  };
  std::vector<Entry> entries_;
};

/// One row of the time series: every registered metric at one cycle.
struct MetricsSnapshot {
  Cycle cycle = 0;
  std::vector<double> values;
};

/// Clocked sampler: snapshots the registry every `sample_every` cycles
/// (cycles 0, N, 2N, ...). Reading metrics cannot disturb the simulation —
/// all readers are observation-only by construction.
class MetricsSampler final : public Component {
 public:
  MetricsSampler(std::string name, const MetricsRegistry& registry,
                 Cycle sample_every);

  void tick(Cycle now) override;
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle now) const override {
    // Strictly clocked: only sample boundaries are observable. The sampled
    // values are frozen along with the rest of the world between boundaries,
    // so skipping the in-between cycles cannot change any snapshot.
    const Cycle n = sample_every_;
    return now % n == 0 ? now : (now / n + 1) * n;
  }
  [[nodiscard]] TickScope tick_scope() const override {
    // Serial: tick() reads every counter/gauge in the registry — foreign
    // component state far outside any declared channel edge. Sampling
    // mid-parallel-phase would also see half-updated cycles.
    return TickScope::kSerial;
  }

  /// Takes one snapshot immediately (used by tick, and by end-of-run
  /// finalization so the last partial window is never lost).
  void sample(Cycle now);

  /// Samples at `now` unless a snapshot for that cycle already exists.
  void finalize(Cycle now);

  [[nodiscard]] Cycle sample_every() const { return sample_every_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }
  [[nodiscard]] const std::vector<MetricsSnapshot>& snapshots() const {
    return snapshots_;
  }

  /// CSV: header row `cycle,<name>,...`, one row per snapshot. Integral
  /// values print without a decimal point.
  void write_csv(std::ostream& os) const;

  /// JSON-lines: one `{"cycle":N,"<name>":v,...}` object per line.
  void write_jsonl(std::ostream& os) const;

 private:
  const MetricsRegistry& registry_;
  Cycle sample_every_;
  std::vector<MetricsSnapshot> snapshots_;
};

}  // namespace axihc
