// Per-transaction latency provenance and live WCLA bound auditing.
//
// The analysis layer (src/analysis/wcla.*) proves per-port latency bounds;
// this module closes the loop at runtime: every HA transaction is stamped at
// each lifecycle hop (master issue -> eFIFO accept -> final sub issued ->
// EXBAR grant -> HyperConnect exit -> memory service -> response delivered),
// every cycle of its latency is attributed to a cause bucket, and the
// observed latency is compared against the analytic bound. A violation is a
// soundness bug in either the analysis or the interconnect, surfaced as a
// first-class metric and trace instant.
//
// How the hops are matched without touching simulated state: on an in-order
// HyperConnect every pipeline stage (TS output stage, EXBAR output register,
// master eFIFO, in-order memory queue) is a FIFO per port or per direction,
// so the audit mirrors each stage with its own token queue and matches
// events positionally. Nothing is written into AddrReq or any component —
// state digests are bit-identical with the auditor on or off, and the whole
// layer costs one pointer test per hook site when detached.
//
// What is audited: the analytic bound assumes the request arrives to an
// otherwise-idle own port (the validation fixtures use max_outstanding = 1
// victims). Real workloads pipeline requests, so raw end-to-end latency
// includes self-queuing behind the port's own earlier requests — delay the
// port asked for, not interference. The auditor therefore checks the
// busy-period-normalized latency: completion minus max(issue, previous
// completion on the same port). Both raw and normalized values are recorded.
//
// Excluded from the bound check (still recorded): error completions,
// transactions whose port faulted or was decoupled during their lifetime,
// and configurations the analysis does not model (out-of-order mode,
// FR-FCFS memory scheduling, PS-stall interference, SmartConnect).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/wcla.hpp"
#include "axi/axi.hpp"
#include "obs/audit_hooks.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace axihc {

class LatencyAudit final : public LatencyAuditHooks {
 public:
  LatencyAudit(PortIndex num_ports, std::size_t flight_capacity);

  /// Master switch. Hooks early-return when disabled, so an attached-but-
  /// disabled auditor costs one call + branch per hook site (benchmarked by
  /// BM_AuditIdleAttached, CI-gated like the observability pair).
  void set_enabled(bool on) { enabled_ = on; }

  /// Enables bound checking against audit_wcrt_read/audit_wcrt_write for
  /// the given interconnect/platform model. Without a bound model the audit
  /// still collects provenance, histograms and flight records.
  void set_bound_model(HcAnalysisConfig cfg, AnalysisPlatform platform);

  /// Test hook: forces every bound to `bound` (0 = use the model). A
  /// deliberately-tightened bound must make the auditor fire — that is the
  /// auditor's own fault-injection test.
  void set_bound_override(Cycle bound) { bound_override_ = bound; }

  /// Trace sink for flow events (request->response arrows), violation
  /// instants. nullptr disables.
  void set_trace(EventTrace* trace) { trace_ = trace; }
  /// Source names used on trace events (defaults: "hc.portN" / "mem").
  void set_port_source(PortIndex port, std::string source);
  void set_mem_source(std::string source) { mem_source_ = std::move(source); }

  void register_metrics(MetricsRegistry& reg);

  // --- hooks: HyperConnect -------------------------------------------------
  /// Once per HyperConnect tick, before the TS issue loop: charges the
  /// cycles since the last tick to each stalled split's frozen cause
  /// (span-based, so fast-forwarded stretches are attributed correctly).
  void on_hc_tick(Cycle now) override;
  /// TS popped `orig` from the port's eFIFO (split begins).
  void on_accept(PortIndex port, bool is_write, const AddrReq& orig,
                 Cycle now) override;
  /// TS issued one sub-request into its output stage.
  void on_sub_issue(PortIndex port, bool is_write, bool is_final,
                    Cycle now) override;
  /// Why the port's active split could not issue this cycle (evaluated by
  /// the HyperConnect after the issue loop; charged on the next on_hc_tick).
  void on_stall_cause(PortIndex port, bool is_write,
                      LatencyCause cause) override;
  /// EXBAR granted this port's oldest staged sub-request.
  void on_grant(PortIndex port, bool is_write, Cycle now) override;
  /// A sub-request left the HyperConnect into the master eFIFO.
  void on_hc_exit(bool is_write, Cycle now) override;
  /// The port faulted or was decoupled: close its stall classifiers and
  /// mark its in-flight transactions fault-affected (excluded from bounds).
  void on_port_disturbed(PortIndex port, Cycle now) override;

  // --- hooks: memory controller (in-order scheduling only) -----------------
  void on_mem_start(bool is_write, Cycle now) override;
  void on_mem_done(Cycle now) override;

  // --- hooks: masters ------------------------------------------------------
  /// Response delivered. `req` is the original HA-side request.
  void on_complete(PortIndex port, bool is_write, const AddrReq& req,
                   bool failed, Cycle now) override;

  // --- results -------------------------------------------------------------
  [[nodiscard]] std::uint64_t transactions() const { return txns_; }
  [[nodiscard]] std::uint64_t bound_checked() const { return bound_checked_; }
  [[nodiscard]] std::uint64_t bound_violations() const {
    return bound_violations_;
  }
  [[nodiscard]] std::uint64_t excluded() const { return excluded_; }
  [[nodiscard]] bool bounds_enabled() const { return bound_model_.has_value(); }

  /// Worst audited-latency / bound ratio observed across all checked
  /// transactions (0 when none was checked). <= 1.0 means every observed
  /// latency respected its bound.
  [[nodiscard]] double max_latency_ratio() const { return max_ratio_; }

  [[nodiscard]] const FlightRecorder& flight_recorder() const {
    return flight_;
  }

  [[nodiscard]] const LogHistogram& histogram(PortIndex port,
                                              bool is_write) const;
  [[nodiscard]] Cycle max_latency(PortIndex port, bool is_write) const;
  [[nodiscard]] Cycle max_audited(PortIndex port, bool is_write) const;
  [[nodiscard]] Cycle bound_for(PortIndex port, bool is_write,
                                BeatCount beats);

  /// Per-port roll-up table: count, p50/p99/p99.9/max, audited max vs bound,
  /// slack, violations, and the cause breakdown.
  void write_rollup(std::ostream& os) const;

 private:
  struct StageToken {
    PortIndex port = 0;
    bool is_final = false;
  };

  struct PortDirState {
    std::deque<FlightRecord> open;  // accepted, not yet completed
    // Stall classifier for the (single) active split of this port+dir.
    bool stall_active = false;
    Cycle last_eval = 0;
    LatencyCause frozen = LatencyCause::kPipeline;
    std::deque<bool> ts_stage;  // is_final, per sub in the TS output stage
    LogHistogram hist;
    std::array<std::uint64_t, kLatencyCauseCount> cause_total{};
    Cycle max_latency = 0;
    Cycle max_audited = 0;
    std::uint64_t violations = 0;
  };

  [[nodiscard]] PortDirState& state(PortIndex port, bool is_write);
  [[nodiscard]] const PortDirState& state(PortIndex port,
                                          bool is_write) const;
  [[nodiscard]] std::string port_source(PortIndex port) const;
  void flush_stall(PortDirState& pd, Cycle now);
  /// First open record of `pd` whose `field` is unset and whose
  /// prerequisite hop is set — hop events fill records strictly in order.
  FlightRecord* fill_target(PortDirState& pd, Cycle FlightRecord::*field);
  void finalize(PortIndex port, bool is_write, FlightRecord rec, Cycle now);

  PortIndex num_ports_;
  std::vector<PortDirState> per_port_dir_;  // [port * 2 + is_write]
  std::array<std::deque<StageToken>, 2> xbar_stage_;   // [is_write]
  std::array<std::deque<StageToken>, 2> mem_pending_;  // [is_write]
  std::optional<StageToken> mem_current_;
  bool mem_current_write_ = false;
  std::vector<Cycle> prev_completion_;  // per port, any direction

  std::optional<HcAnalysisConfig> bound_model_;
  AnalysisPlatform bound_platform_;
  Cycle bound_override_ = 0;
  std::map<std::uint64_t, Cycle> bound_cache_;

  EventTrace* trace_ = nullptr;
  std::vector<std::string> port_sources_;
  std::string mem_source_ = "mem";
  std::uint64_t flow_seq_ = 0;

  FlightRecorder flight_;
  std::uint64_t txns_ = 0;
  std::uint64_t bound_checked_ = 0;
  std::uint64_t bound_violations_ = 0;
  std::uint64_t excluded_ = 0;
  std::uint64_t untracked_ = 0;
  double max_ratio_ = 0.0;

  /// Cap on open-record queues: recovery resets abandon master transactions
  /// whose completions never arrive; their stale records are pruned here.
  static constexpr std::size_t kOpenCap = 256;
};

}  // namespace axihc
