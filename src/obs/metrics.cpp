#include "obs/metrics.hpp"

#include <cmath>
#include <ostream>
#include <utility>

#include "common/check.hpp"

namespace axihc {

namespace {

/// Most metrics are integer counters read into doubles; print those without
/// a decimal point so the CSV diffs cleanly and parses as int where it is
/// one.
void print_value(std::ostream& os, double v) {
  if (std::floor(v) == v && std::abs(v) < 9.0e15) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
}

}  // namespace

void MetricsRegistry::add(std::string name, MetricKind kind, Reader read) {
  AXIHC_CHECK_MSG(static_cast<bool>(read),
                  "metric '" << name << "' needs a reader");
  AXIHC_CHECK_MSG(find(name) == size(),
                  "duplicate metric name '" << name << "'");
  entries_.push_back({std::move(name), kind, std::move(read)});
}

void MetricsRegistry::add_counter(std::string name,
                                  const std::uint64_t* value) {
  add(std::move(name), MetricKind::kCounter,
      [value] { return static_cast<double>(*value); });
}

void MetricsRegistry::add_gauge(std::string name, const std::uint64_t* value) {
  add(std::move(name), MetricKind::kGauge,
      [value] { return static_cast<double>(*value); });
}

const std::string& MetricsRegistry::name(std::size_t i) const {
  AXIHC_CHECK(i < entries_.size());
  return entries_[i].name;
}

MetricKind MetricsRegistry::kind(std::size_t i) const {
  AXIHC_CHECK(i < entries_.size());
  return entries_[i].kind;
}

double MetricsRegistry::read(std::size_t i) const {
  AXIHC_CHECK(i < entries_.size());
  return entries_[i].read();
}

std::size_t MetricsRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return i;
  }
  return entries_.size();
}

MetricsSampler::MetricsSampler(std::string name,
                               const MetricsRegistry& registry,
                               Cycle sample_every)
    : Component(std::move(name)),
      registry_(registry),
      sample_every_(sample_every) {
  AXIHC_CHECK_MSG(sample_every_ > 0, "sample period must be >= 1 cycle");
}

void MetricsSampler::tick(Cycle now) {
  if (now % sample_every_ == 0) sample(now);
}

void MetricsSampler::reset() { snapshots_.clear(); }

void MetricsSampler::sample(Cycle now) {
  MetricsSnapshot snap;
  snap.cycle = now;
  snap.values.reserve(registry_.size());
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    snap.values.push_back(registry_.read(i));
  }
  snapshots_.push_back(std::move(snap));
}

void MetricsSampler::finalize(Cycle now) {
  if (!snapshots_.empty() && snapshots_.back().cycle == now) return;
  sample(now);
}

void MetricsSampler::write_csv(std::ostream& os) const {
  os << "cycle";
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    os << ',' << registry_.name(i);
  }
  os << '\n';
  for (const auto& snap : snapshots_) {
    os << snap.cycle;
    for (const double v : snap.values) {
      os << ',';
      print_value(os, v);
    }
    os << '\n';
  }
}

void MetricsSampler::write_jsonl(std::ostream& os) const {
  for (const auto& snap : snapshots_) {
    os << "{\"cycle\":" << snap.cycle;
    for (std::size_t i = 0; i < snap.values.size(); ++i) {
      os << ",\"" << registry_.name(i) << "\":";
      print_value(os, snap.values[i]);
    }
    os << "}\n";
  }
}

}  // namespace axihc
