#include "obs/latency_audit.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "common/check.hpp"

namespace axihc {

LatencyAudit::LatencyAudit(PortIndex num_ports, std::size_t flight_capacity)
    : num_ports_(num_ports),
      per_port_dir_(static_cast<std::size_t>(num_ports) * 2),
      prev_completion_(num_ports, kNoCycle),
      flight_(flight_capacity) {
  AXIHC_CHECK(num_ports >= 1);
  port_sources_.reserve(num_ports);
  for (PortIndex i = 0; i < num_ports; ++i) {
    port_sources_.push_back("hc.port" + std::to_string(i));
  }
}

void LatencyAudit::set_bound_model(HcAnalysisConfig cfg,
                                   AnalysisPlatform platform) {
  AXIHC_CHECK(cfg.num_ports == num_ports_);
  bound_model_ = std::move(cfg);
  bound_platform_ = platform;
  bound_cache_.clear();
}

void LatencyAudit::set_port_source(PortIndex port, std::string source) {
  AXIHC_CHECK(port < num_ports_);
  port_sources_[port] = std::move(source);
}

void LatencyAudit::register_metrics(MetricsRegistry& reg) {
  reg.add_counter("audit.txns", &txns_);
  reg.add_counter("audit.bound_checked", &bound_checked_);
  reg.add_counter("audit.bound_violations", &bound_violations_);
  reg.add_counter("audit.excluded", &excluded_);
  reg.add_gauge("audit.flight_dropped",
                [this] { return static_cast<double>(flight_.dropped()); });
  reg.add_gauge("audit.max_latency_ratio", [this] { return max_ratio_; });
  for (PortIndex i = 0; i < num_ports_; ++i) {
    const std::string base = "audit.port" + std::to_string(i);
    reg.add_gauge(base + ".read_max", [this, i] {
      return static_cast<double>(state(i, false).max_latency);
    });
    reg.add_gauge(base + ".write_max", [this, i] {
      return static_cast<double>(state(i, true).max_latency);
    });
  }
}

LatencyAudit::PortDirState& LatencyAudit::state(PortIndex port,
                                                bool is_write) {
  AXIHC_CHECK(port < num_ports_);
  return per_port_dir_[static_cast<std::size_t>(port) * 2 +
                       (is_write ? 1 : 0)];
}

const LatencyAudit::PortDirState& LatencyAudit::state(PortIndex port,
                                                      bool is_write) const {
  AXIHC_CHECK(port < num_ports_);
  return per_port_dir_[static_cast<std::size_t>(port) * 2 +
                       (is_write ? 1 : 0)];
}

std::string LatencyAudit::port_source(PortIndex port) const {
  return port_sources_[port];
}

void LatencyAudit::flush_stall(PortDirState& pd, Cycle now) {
  if (!pd.stall_active) return;
  if (pd.open.empty()) {  // defensive: owner vanished (fault prune)
    pd.stall_active = false;
    return;
  }
  const Cycle delta = now - pd.last_eval;
  if (delta != 0) {
    pd.open.back().cause[static_cast<std::size_t>(pd.frozen)] += delta;
  }
  pd.last_eval = now;
}

void LatencyAudit::on_hc_tick(Cycle now) {
  if (!enabled_) return;
  for (PortDirState& pd : per_port_dir_) flush_stall(pd, now);
}

void LatencyAudit::on_accept(PortIndex port, bool is_write,
                             const AddrReq& orig, Cycle now) {
  if (!enabled_) return;
  PortDirState& pd = state(port, is_write);
  FlightRecord rec;
  rec.port = port;
  rec.is_write = is_write;
  rec.id = orig.id;
  rec.beats = orig.beats;
  rec.issued_at = orig.issued_at;  // kNoCycle for non-stamping sources
  rec.accepted_at = now;
  pd.open.push_back(rec);
  if (pd.open.size() > kOpenCap) pd.open.pop_front();  // abandoned txns
  // The split is now active; until the final sub issues, every cycle is
  // charged to the classifier's frozen cause.
  pd.stall_active = true;
  pd.last_eval = now;
  pd.frozen = LatencyCause::kPipeline;
}

void LatencyAudit::on_sub_issue(PortIndex port, bool is_write, bool is_final,
                                Cycle now) {
  if (!enabled_) return;
  PortDirState& pd = state(port, is_write);
  pd.ts_stage.push_back(is_final);
  if (!is_final) return;
  flush_stall(pd, now);
  pd.stall_active = false;
  if (FlightRecord* rec =
          fill_target(pd, &FlightRecord::final_issued_at)) {
    rec->final_issued_at = now;
  }
}

void LatencyAudit::on_stall_cause(PortIndex port, bool is_write,
                                  LatencyCause cause) {
  if (!enabled_) return;
  PortDirState& pd = state(port, is_write);
  if (pd.stall_active) pd.frozen = cause;
}

FlightRecord* LatencyAudit::fill_target(PortDirState& pd,
                                        Cycle FlightRecord::*field) {
  for (FlightRecord& rec : pd.open) {
    if (rec.*field == kNoCycle) {
      // Hop events arrive in record order; the first record with the field
      // unset is the one this event belongs to. A record can only be
      // filled after its accept, which is guaranteed by construction.
      return &rec;
    }
  }
  return nullptr;  // record already retired (fault-truncated) — drop event
}

void LatencyAudit::on_grant(PortIndex port, bool is_write, Cycle now) {
  if (!enabled_) return;
  PortDirState& pd = state(port, is_write);
  if (pd.ts_stage.empty()) return;  // pre-enable residue
  const bool is_final = pd.ts_stage.front();
  pd.ts_stage.pop_front();
  if (is_final) {
    if (FlightRecord* rec = fill_target(pd, &FlightRecord::granted_at)) {
      if (rec->final_issued_at != kNoCycle) rec->granted_at = now;
    }
  }
  xbar_stage_[is_write ? 1 : 0].push_back({port, is_final});
}

void LatencyAudit::on_hc_exit(bool is_write, Cycle now) {
  if (!enabled_) return;
  auto& stage = xbar_stage_[is_write ? 1 : 0];
  if (stage.empty()) return;  // pre-enable residue
  const StageToken tok = stage.front();
  stage.pop_front();
  if (tok.is_final) {
    PortDirState& pd = state(tok.port, is_write);
    if (FlightRecord* rec = fill_target(pd, &FlightRecord::hc_exit_at)) {
      if (rec->granted_at != kNoCycle) rec->hc_exit_at = now;
    }
  }
  auto& pending = mem_pending_[is_write ? 1 : 0];
  pending.push_back(tok);
  // Systems without memory-stage hooks (FR-FCFS / out-of-order configs)
  // never pop this queue; the cap keeps it bounded. Attached in-order
  // systems stay far below it (in-flight <= EXBAR route capacity).
  if (pending.size() > kOpenCap) pending.pop_front();
}

void LatencyAudit::on_mem_start(bool is_write, Cycle now) {
  if (!enabled_) return;
  auto& pending = mem_pending_[is_write ? 1 : 0];
  if (pending.empty()) return;  // pre-enable residue
  const StageToken tok = pending.front();
  pending.pop_front();
  mem_current_ = tok;
  mem_current_write_ = is_write;
  if (tok.is_final) {
    PortDirState& pd = state(tok.port, is_write);
    if (FlightRecord* rec = fill_target(pd, &FlightRecord::mem_start_at)) {
      if (rec->hc_exit_at != kNoCycle) rec->mem_start_at = now;
    }
  }
}

void LatencyAudit::on_mem_done(Cycle now) {
  if (!enabled_) return;
  if (!mem_current_.has_value()) return;
  const StageToken tok = *mem_current_;
  mem_current_.reset();
  if (!tok.is_final) return;
  PortDirState& pd = state(tok.port, mem_current_write_);
  if (FlightRecord* rec = fill_target(pd, &FlightRecord::mem_done_at)) {
    if (rec->mem_start_at != kNoCycle) rec->mem_done_at = now;
  }
}

void LatencyAudit::on_port_disturbed(PortIndex port, Cycle now) {
  if (!enabled_) return;
  for (const bool dir : {false, true}) {
    PortDirState& pd = state(port, dir);
    flush_stall(pd, now);
    pd.stall_active = false;
    for (FlightRecord& rec : pd.open) rec.fault_overlap = true;
  }
}

Cycle LatencyAudit::bound_for(PortIndex port, bool is_write,
                              BeatCount beats) {
  if (bound_override_ != 0) return bound_override_;
  if (!bound_model_.has_value()) return 0;
  const std::uint64_t key = (static_cast<std::uint64_t>(port) << 33) |
                            (static_cast<std::uint64_t>(is_write) << 32) |
                            beats;
  const auto it = bound_cache_.find(key);
  if (it != bound_cache_.end()) return it->second;
  const Cycle b =
      is_write ? audit_wcrt_write(*bound_model_, bound_platform_, port, beats)
               : audit_wcrt_read(*bound_model_, bound_platform_, port, beats);
  bound_cache_.emplace(key, b);
  return b;
}

void LatencyAudit::on_complete(PortIndex port, bool is_write,
                               const AddrReq& req, bool failed, Cycle now) {
  if (!enabled_) return;
  PortDirState& pd = state(port, is_write);
  // Match by (id, issued_at): completions on an in-order port arrive in
  // accept order, but ID-extension (out-of-order) configurations can
  // reorder them, so scan rather than assume the front.
  auto it = std::find_if(pd.open.begin(), pd.open.end(),
                         [&](const FlightRecord& r) {
                           return r.id == req.id &&
                                  r.issued_at == req.issued_at;
                         });
  FlightRecord rec;
  if (it != pd.open.end()) {
    // The classifier owner is open.back(); if that record is completing
    // (synthesized fault error while the split was mid-flight), close the
    // classifier first so its charge lands before retirement.
    if (pd.stall_active && &*it == &pd.open.back()) {
      flush_stall(pd, now);
      pd.stall_active = false;
    }
    rec = *it;
    pd.open.erase(it);
  } else {
    // Untracked completion: no HyperConnect provenance (SmartConnect system
    // or a pre-enable in-flight). End-to-end latency and the flight record
    // are still useful; hops stay null and no cause is attributed.
    rec.port = port;
    rec.is_write = is_write;
    rec.id = req.id;
    rec.beats = req.beats;
    rec.issued_at = req.issued_at;
    ++untracked_;
  }
  rec.error = failed;
  finalize(port, is_write, rec, now);
}

void LatencyAudit::finalize(PortIndex port, bool is_write, FlightRecord rec,
                            Cycle now) {
  PortDirState& pd = state(port, is_write);
  rec.completed_at = now;
  // Non-stamping sources (raw link pushes in unit tests) have no issue
  // cycle; fall back to the accept cycle, then the completion itself.
  Cycle t0 = rec.issued_at;
  if (t0 == kNoCycle) t0 = rec.accepted_at;
  if (t0 == kNoCycle) t0 = now;
  rec.latency = now >= t0 ? now - t0 : 0;

  // Remaining exact spans (the classifier covered accept -> final issue).
  // Each hop-to-hop span splits into a fixed pipeline portion and the
  // variable cause; missing hops contribute zero and leave a residual.
  auto charge = [&rec](std::size_t c, Cycle v) { rec.cause[c] += v; };
  const auto kPipe = static_cast<std::size_t>(LatencyCause::kPipeline);
  if (rec.accepted_at != kNoCycle && rec.accepted_at > t0) {
    charge(static_cast<std::size_t>(LatencyCause::kEfifoQueue),
           rec.accepted_at - t0);
  }
  Cycle cur = rec.final_issued_at;
  auto span_to = [&](Cycle hop, std::size_t cause, Cycle pipe_cap) {
    if (cur == kNoCycle || hop == kNoCycle || hop < cur) return;
    const Cycle span = hop - cur;
    const Cycle pipe = std::min(span, pipe_cap);
    charge(kPipe, pipe);
    charge(cause, span - pipe);
    cur = hop;
  };
  span_to(rec.granted_at, static_cast<std::size_t>(LatencyCause::kArbitration),
          1);
  span_to(rec.hc_exit_at,
          static_cast<std::size_t>(LatencyCause::kBackpressure), 1);
  span_to(rec.mem_start_at, static_cast<std::size_t>(LatencyCause::kMemQueue),
          2);
  span_to(rec.mem_done_at, static_cast<std::size_t>(LatencyCause::kMemService),
          0);
  span_to(now, static_cast<std::size_t>(LatencyCause::kReturnPath), 0);
  // Residual cycles (fault-truncated hop chains) are recovery/quarantine
  // time. Clean transactions have zero residual — tested.
  Cycle accounted = 0;
  for (const Cycle c : rec.cause) accounted += c;
  if (accounted < rec.latency) {
    charge(static_cast<std::size_t>(LatencyCause::kRecoveryStall),
           rec.latency - accounted);
  }

  // Busy-period normalization: subtract self-queuing behind the port's own
  // earlier transactions (the bound models a request arriving to an idle
  // own port; see header).
  Cycle busy_start = t0;
  const Cycle prev = prev_completion_[port];
  if (prev != kNoCycle && prev > busy_start) busy_start = prev;
  rec.audited_latency = now >= busy_start ? now - busy_start : 0;
  prev_completion_[port] = now;

  // Bound check. Excluded: errors, fault-affected, untracked provenance.
  const bool eligible =
      !rec.error && !rec.fault_overlap && rec.accepted_at != kNoCycle;
  if (eligible) {
    rec.bound = bound_for(port, is_write, rec.beats);
  }
  if (rec.bound != 0) {
    ++bound_checked_;
    const double ratio = static_cast<double>(rec.audited_latency) /
                         static_cast<double>(rec.bound);
    if (ratio > max_ratio_) max_ratio_ = ratio;
    if (rec.audited_latency > rec.bound) {
      rec.violation = true;
      ++bound_violations_;
      ++pd.violations;
      if (trace_ != nullptr) {
        trace_->record(now, port_source(port), "bound_violation");
      }
    }
  } else if (!eligible) {
    ++excluded_;
  }

  ++txns_;
  pd.hist.record(rec.latency);
  if (rec.latency > pd.max_latency) pd.max_latency = rec.latency;
  if (rec.bound != 0 && rec.audited_latency > pd.max_audited) {
    pd.max_audited = rec.audited_latency;
  }
  for (std::size_t c = 0; c < kLatencyCauseCount; ++c) {
    pd.cause_total[c] += rec.cause[c];
  }

  if (trace_ != nullptr && trace_->enabled()) {
    const std::uint64_t flow = ++flow_seq_;
    const char* name = is_write ? "wtxn" : "rtxn";
    trace_->record_flow_start(t0, port_source(port), name, flow);
    trace_->record_flow_end(now, mem_source_, name, flow);
  }

  flight_.append(rec);
}

const LogHistogram& LatencyAudit::histogram(PortIndex port,
                                            bool is_write) const {
  return state(port, is_write).hist;
}

Cycle LatencyAudit::max_latency(PortIndex port, bool is_write) const {
  return state(port, is_write).max_latency;
}

Cycle LatencyAudit::max_audited(PortIndex port, bool is_write) const {
  return state(port, is_write).max_audited;
}

void LatencyAudit::write_rollup(std::ostream& os) const {
  os << "latency audit roll-up (cycles; aud_max = busy-period-normalized "
        "worst case vs bound)\n";
  os << std::left << std::setw(6) << "port" << std::setw(5) << "dir"
     << std::right << std::setw(9) << "count" << std::setw(8) << "p50"
     << std::setw(8) << "p99" << std::setw(9) << "p99.9" << std::setw(9)
     << "max" << std::setw(9) << "aud_max" << std::setw(9) << "bound"
     << std::setw(9) << "slack" << std::setw(6) << "viol" << "\n";
  for (PortIndex port = 0; port < num_ports_; ++port) {
    for (const bool dir : {false, true}) {
      const PortDirState& pd = state(port, dir);
      if (pd.hist.count() == 0) continue;
      // The bound varies per beat count; report against the worst audited.
      Cycle bound = 0;
      for (const FlightRecord& r : flight_.snapshot()) {
        if (r.port == port && r.is_write == dir && r.bound > bound) {
          bound = r.bound;
        }
      }
      os << std::left << std::setw(6) << static_cast<unsigned>(port)
         << std::setw(5) << (dir ? "w" : "r") << std::right << std::setw(9)
         << pd.hist.count() << std::setw(8) << pd.hist.percentile(50.0)
         << std::setw(8) << pd.hist.percentile(99.0) << std::setw(9)
         << pd.hist.percentile(99.9) << std::setw(9) << pd.max_latency
         << std::setw(9) << pd.max_audited;
      if (bound != 0) {
        os << std::setw(9) << bound << std::setw(9)
           << (bound >= pd.max_audited
                   ? static_cast<std::int64_t>(bound - pd.max_audited)
                   : -static_cast<std::int64_t>(pd.max_audited - bound));
      } else {
        os << std::setw(9) << "-" << std::setw(9) << "-";
      }
      os << std::setw(6) << pd.violations << "\n";
      // Cause breakdown: where this port+dir's cycles went.
      std::uint64_t total = 0;
      for (const std::uint64_t c : pd.cause_total) total += c;
      if (total != 0) {
        os << "      causes:";
        for (std::size_t c = 0; c < kLatencyCauseCount; ++c) {
          if (pd.cause_total[c] == 0) continue;
          os << ' ' << latency_cause_name(static_cast<LatencyCause>(c)) << '='
             << std::fixed << std::setprecision(1)
             << 100.0 * static_cast<double>(pd.cause_total[c]) /
                    static_cast<double>(total)
             << '%';
          os.unsetf(std::ios::fixed);
        }
        os << "\n";
      }
    }
  }
  os << "txns=" << txns_ << " checked=" << bound_checked_
     << " violations=" << bound_violations_ << " excluded=" << excluded_
     << " untracked=" << untracked_ << " flight_dropped=" << flight_.dropped()
     << "\n";
}

}  // namespace axihc
