// Transaction flight recorder: a bounded ring of the most recent completed
// transactions with their full latency provenance (per-hop timestamps and
// cause buckets), dumpable as JSON-lines on fault, bound violation, or exit.
// Like a hardware trace buffer, it never grows: once full, each new record
// overwrites the oldest (counted in dropped()).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hpp"
#include "obs/audit_hooks.hpp"  // LatencyCause

namespace axihc {

/// One completed transaction. Hop timestamps are kNoCycle when the hop was
/// never reached (fault-truncated transactions).
struct FlightRecord {
  PortIndex port = 0;
  bool is_write = false;
  TxnId id = 0;
  BeatCount beats = 0;
  Cycle issued_at = kNoCycle;      // master pushed AR/AW
  Cycle accepted_at = kNoCycle;    // TS popped the request from the eFIFO
  Cycle final_issued_at = kNoCycle;  // TS issued the final sub-transaction
  Cycle granted_at = kNoCycle;     // EXBAR granted the final sub
  Cycle hc_exit_at = kNoCycle;     // final sub left the HyperConnect
  Cycle mem_start_at = kNoCycle;   // memory controller started serving it
  Cycle mem_done_at = kNoCycle;    // last beat / B response left the memory
  Cycle completed_at = kNoCycle;   // response delivered to the master
  std::array<Cycle, kLatencyCauseCount> cause{};
  Cycle latency = 0;          // completed_at - issued_at
  Cycle audited_latency = 0;  // busy-period-normalized (vs the bound)
  Cycle bound = 0;            // 0 = bound not audited for this transaction
  bool error = false;         // completed with SLVERR/DECERR
  bool fault_overlap = false;  // port faulted/decoupled during its lifetime
  bool violation = false;      // audited_latency > bound
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  void append(const FlightRecord& rec);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Records in completion order, oldest first.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  /// One JSON object per line, oldest first (completion order).
  void write_jsonl(std::ostream& os) const;

  void clear();

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // next overwrite position once full
  std::uint64_t dropped_ = 0;
  std::vector<FlightRecord> ring_;
};

}  // namespace axihc
