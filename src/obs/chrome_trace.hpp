// Chrome trace-event JSON exporter (the "JSON array format" understood by
// Perfetto and chrome://tracing).
//
// Renders an EventTrace — and optionally the MetricsSampler's time series as
// counter tracks — as a timeline: one process ("axihc"), one thread track
// per distinct event source (named via thread_name metadata), so a
// fig5_contention-class run shows EXBAR grants, reservation-window
// rollovers, HA job/layer slices and fault instants side by side, with
// eFIFO occupancy and bandwidth counters plotted underneath.
//
// Timestamp unit: the trace-event format counts microseconds; we emit one
// microsecond per simulated cycle, so viewer time reads directly in cycles.
#pragma once

#include <iosfwd>

#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace axihc {

/// Writes `trace` (and `metrics`' snapshots, when given) to `os` as a
/// Chrome trace-event JSON array. Records are emitted in non-decreasing
/// timestamp order; metadata records come first.
void write_chrome_trace(std::ostream& os, const EventTrace& trace,
                        const MetricsSampler* metrics = nullptr);

}  // namespace axihc
