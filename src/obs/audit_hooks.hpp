// Header-only hook interface between simulated components and the latency
// auditor (src/obs/latency_audit.*).
//
// Components (HyperConnect, memory controller, masters) hold a
// LatencyAuditHooks* and invoke the hooks through it; the concrete
// LatencyAudit lives in axihc_obs, which links axihc_analysis, which links
// the component libraries — so the components cannot link axihc_obs back
// without a cycle. This pure-virtual interface breaks the cycle: including
// it creates no link dependency, and an unattached component pays one null
// test per hook site.
#pragma once

#include <cstdint>

#include "axi/axi.hpp"
#include "common/types.hpp"

namespace axihc {

/// Where a transaction's cycles went. Every completed transaction's buckets
/// sum exactly to its end-to-end latency (see docs/OBSERVABILITY.md).
enum class LatencyCause : std::uint8_t {
  kPipeline = 0,    // fixed channel/stage latencies on the request path
  kEfifoQueue,      // waiting behind earlier own-port requests (HA link+eFIFO)
  kBudgetWait,      // reservation budget exhausted at the TS
  kArbitration,     // waiting for an EXBAR grant (round-robin loss)
  kBackpressure,    // outstanding limit / downstream stage full
  kMemQueue,        // queued at the memory controller behind other commands
  kMemService,      // DRAM service (first-word latency + streaming + refresh)
  kReturnPath,      // response propagation back to the master
  kRecoveryStall,   // quarantine/recovery residual (fault-affected txns only)
  kCount,
};

inline constexpr std::size_t kLatencyCauseCount =
    static_cast<std::size_t>(LatencyCause::kCount);

[[nodiscard]] const char* latency_cause_name(LatencyCause c);

class LatencyAuditHooks {
 public:
  virtual ~LatencyAuditHooks() = default;

  /// Non-virtual on purpose: every hook site guards with
  /// `audit_ != nullptr && audit_->enabled()`, so a disabled attached
  /// auditor costs an inline load+branch — never a virtual dispatch.
  [[nodiscard]] bool enabled() const { return enabled_; }

  // --- HyperConnect --------------------------------------------------------
  /// Once per tick, before the TS issue loop: charge the cycles since the
  /// last tick to each stalled split's frozen cause.
  virtual void on_hc_tick(Cycle now) = 0;
  /// TS popped `orig` from the port's eFIFO (split begins).
  virtual void on_accept(PortIndex port, bool is_write, const AddrReq& orig,
                         Cycle now) = 0;
  /// TS issued one sub-request into its output stage.
  virtual void on_sub_issue(PortIndex port, bool is_write, bool is_final,
                            Cycle now) = 0;
  /// Why the port's active split could not issue this cycle.
  virtual void on_stall_cause(PortIndex port, bool is_write,
                              LatencyCause cause) = 0;
  /// EXBAR granted this port's oldest staged sub-request.
  virtual void on_grant(PortIndex port, bool is_write, Cycle now) = 0;
  /// A sub-request left the HyperConnect into the master eFIFO.
  virtual void on_hc_exit(bool is_write, Cycle now) = 0;
  /// The port faulted or was decoupled.
  virtual void on_port_disturbed(PortIndex port, Cycle now) = 0;

  // --- memory controller (in-order scheduling only) ------------------------
  virtual void on_mem_start(bool is_write, Cycle now) = 0;
  virtual void on_mem_done(Cycle now) = 0;

  // --- masters -------------------------------------------------------------
  /// Response delivered. `req` is the original HA-side request.
  virtual void on_complete(PortIndex port, bool is_write, const AddrReq& req,
                           bool failed, Cycle now) = 0;

 protected:
  bool enabled_ = false;
};

}  // namespace axihc
