#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace axihc {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_number(double v) {
  if (std::floor(v) == v && std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

struct Record {
  Cycle ts = 0;
  std::string json;
};

/// One JSON object: {"name":…,"ph":…,"ts":…,"pid":0,"tid":…<extra>}.
Record make_record(Cycle ts, const std::string& name, char phase, int tid,
                   const std::string& extra) {
  Record r;
  r.ts = ts;
  r.json = "{\"name\":\"";
  append_escaped(r.json, name);
  r.json += "\",\"ph\":\"";
  r.json += phase;
  r.json += "\",\"ts\":" + std::to_string(ts) + ",\"pid\":0,\"tid\":" +
            std::to_string(tid) + extra + "}";
  return r;
}

Record metadata_record(const std::string& kind, int tid,
                       const std::string& label) {
  std::string extra = ",\"args\":{\"name\":\"";
  append_escaped(extra, label);
  extra += "\"}";
  return make_record(0, kind, 'M', tid, extra);
}

}  // namespace

void write_chrome_trace(std::ostream& os, const EventTrace& trace,
                        const MetricsSampler* metrics) {
  // Track assignment: tid 0 carries the counter tracks (counters are keyed
  // by name, not tid, so they can share); each event source gets tid 1+ in
  // order of first appearance.
  std::map<std::string, int> tids;
  std::vector<Record> meta;
  std::vector<Record> records;
  meta.push_back(metadata_record("process_name", 0, "axihc"));
  meta.push_back(metadata_record("thread_name", 0, "metrics"));

  auto tid_for = [&](const std::string& source) {
    auto it = tids.find(source);
    if (it != tids.end()) return it->second;
    const int tid = static_cast<int>(tids.size()) + 1;
    tids.emplace(source, tid);
    meta.push_back(metadata_record("thread_name", tid, source));
    return tid;
  };

  for (const TraceEvent& e : trace.events()) {
    const int tid = tid_for(e.source);
    switch (e.kind) {
      case TraceKind::kInstant:
        records.push_back(
            make_record(e.cycle, e.event, 'i', tid, ",\"s\":\"t\""));
        break;
      case TraceKind::kBegin:
        records.push_back(make_record(e.cycle, e.event, 'B', tid, ""));
        break;
      case TraceKind::kEnd:
        records.push_back(make_record(e.cycle, e.event, 'E', tid, ""));
        break;
      case TraceKind::kCounter:
        records.push_back(make_record(
            e.cycle, e.source + "." + e.event, 'C', 0,
            ",\"args\":{\"value\":" + json_number(e.value) + "}"));
        break;
      // Flow arrows ("s" start, "f" finish): same cat+id pairs the two ends;
      // bp:"e" binds the finish to the enclosing slice so viewers draw the
      // arrow even when the anchors are bare points.
      case TraceKind::kFlowStart:
        records.push_back(make_record(
            e.cycle, e.event, 's', tid,
            ",\"cat\":\"txn\",\"id\":" + json_number(e.value)));
        break;
      case TraceKind::kFlowEnd:
        records.push_back(make_record(
            e.cycle, e.event, 'f', tid,
            ",\"cat\":\"txn\",\"id\":" + json_number(e.value) +
                ",\"bp\":\"e\""));
        break;
    }
  }

  if (metrics != nullptr) {
    const MetricsRegistry& reg = metrics->registry();
    for (const MetricsSnapshot& snap : metrics->snapshots()) {
      for (std::size_t i = 0; i < snap.values.size(); ++i) {
        records.push_back(make_record(
            snap.cycle, reg.name(i), 'C', 0,
            ",\"args\":{\"value\":" + json_number(snap.values[i]) + "}"));
      }
    }
  }

  // EventTrace records are appended in simulation order and metric samples
  // are periodic, but the two streams interleave: merge to a single
  // non-decreasing timeline (stable, so same-cycle order is preserved).
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) { return a.ts < b.ts; });

  os << "[\n";
  bool first = true;
  for (const auto* list : {&meta, &records}) {
    for (const Record& r : *list) {
      if (!first) os << ",\n";
      first = false;
      os << r.json;
    }
  }
  os << "\n]\n";
}

}  // namespace axihc
