#include "obs/histogram.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace axihc {

namespace {

constexpr std::size_t kLinearBuckets = std::size_t{1}
                                       << LogHistogram::kSubBucketBits;
constexpr unsigned kFirstOctave = LogHistogram::kSubBucketBits;
constexpr unsigned kLastOctave = 63;
constexpr std::size_t kTotalBuckets =
    kLinearBuckets +
    (kLastOctave - kFirstOctave + 1) * LogHistogram::kSubBuckets;

}  // namespace

LogHistogram::LogHistogram() : counts_(kTotalBuckets, 0) {}

std::size_t LogHistogram::bucket_count() { return kTotalBuckets; }

std::size_t LogHistogram::bucket_index(Cycle value) {
  if (value < kLinearBuckets) return static_cast<std::size_t>(value);
  const unsigned octave = 63u - static_cast<unsigned>(
                                    std::countl_zero(std::uint64_t{value}));
  const unsigned shift = octave - (kSubBucketBits - 1);
  const std::size_t minor = static_cast<std::size_t>(
      (value - (Cycle{1} << octave)) >> shift);
  return kLinearBuckets + (octave - kFirstOctave) * kSubBuckets + minor;
}

Cycle LogHistogram::bucket_lower(std::size_t index) {
  AXIHC_CHECK(index < kTotalBuckets);
  if (index < kLinearBuckets) return static_cast<Cycle>(index);
  const std::size_t rel = index - kLinearBuckets;
  const unsigned octave = kFirstOctave + static_cast<unsigned>(rel / kSubBuckets);
  const std::size_t minor = rel % kSubBuckets;
  const unsigned shift = octave - (kSubBucketBits - 1);
  return (Cycle{1} << octave) + (static_cast<Cycle>(minor) << shift);
}

Cycle LogHistogram::bucket_upper(std::size_t index) {
  AXIHC_CHECK(index < kTotalBuckets);
  if (index < kLinearBuckets) return static_cast<Cycle>(index);
  const std::size_t rel = index - kLinearBuckets;
  const unsigned octave = kFirstOctave + static_cast<unsigned>(rel / kSubBuckets);
  const unsigned shift = octave - (kSubBucketBits - 1);
  return bucket_lower(index) + ((Cycle{1} << shift) - 1);
}

void LogHistogram::record(Cycle latency) {
  ++counts_[bucket_index(latency)];
  if (count_ == 0 || latency < min_) min_ = latency;
  if (count_ == 0 || latency > max_) max_ = latency;
  ++count_;
  sum_ += latency;
}

Cycle LogHistogram::min() const {
  AXIHC_CHECK_MSG(count_ > 0, "min() on empty histogram");
  return min_;
}

Cycle LogHistogram::max() const {
  AXIHC_CHECK_MSG(count_ > 0, "max() on empty histogram");
  return max_;
}

double LogHistogram::mean() const {
  AXIHC_CHECK_MSG(count_ > 0, "mean() on empty histogram");
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

Cycle LogHistogram::percentile(double p) const {
  AXIHC_CHECK_MSG(count_ > 0, "percentile() on empty histogram");
  AXIHC_CHECK(p > 0.0 && p <= 100.0);
  // Nearest-rank: the k-th smallest sample, k = ceil(p/100 * count).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      const Cycle upper = bucket_upper(i);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

void LogHistogram::clear() {
  counts_.assign(kTotalBuckets, 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace axihc
