#include "obs/flight_recorder.hpp"

#include <ostream>

#include "common/check.hpp"

namespace axihc {

const char* latency_cause_name(LatencyCause c) {
  switch (c) {
    case LatencyCause::kPipeline:
      return "pipeline";
    case LatencyCause::kEfifoQueue:
      return "efifo_queue";
    case LatencyCause::kBudgetWait:
      return "budget_wait";
    case LatencyCause::kArbitration:
      return "arbitration";
    case LatencyCause::kBackpressure:
      return "backpressure";
    case LatencyCause::kMemQueue:
      return "mem_queue";
    case LatencyCause::kMemService:
      return "mem_service";
    case LatencyCause::kReturnPath:
      return "return_path";
    case LatencyCause::kRecoveryStall:
      return "recovery_stall";
    case LatencyCause::kCount:
      break;
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  AXIHC_CHECK_MSG(capacity_ > 0, "flight recorder needs a nonzero capacity");
  ring_.reserve(capacity_);
}

void FlightRecorder::append(const FlightRecord& rec) {
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
    return;
  }
  ring_[head_] = rec;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

namespace {

void append_cycle_field(std::ostream& os, const char* key, Cycle v) {
  os << ",\"" << key << "\":";
  if (v == kNoCycle) {
    os << "null";
  } else {
    os << v;
  }
}

}  // namespace

void FlightRecorder::write_jsonl(std::ostream& os) const {
  for (const FlightRecord& r : snapshot()) {
    os << "{\"port\":" << r.port << ",\"dir\":\"" << (r.is_write ? 'w' : 'r')
       << "\",\"id\":" << r.id << ",\"beats\":" << r.beats;
    append_cycle_field(os, "issued", r.issued_at);
    append_cycle_field(os, "accepted", r.accepted_at);
    append_cycle_field(os, "final_issued", r.final_issued_at);
    append_cycle_field(os, "granted", r.granted_at);
    append_cycle_field(os, "hc_exit", r.hc_exit_at);
    append_cycle_field(os, "mem_start", r.mem_start_at);
    append_cycle_field(os, "mem_done", r.mem_done_at);
    append_cycle_field(os, "completed", r.completed_at);
    os << ",\"cause\":{";
    for (std::size_t c = 0; c < kLatencyCauseCount; ++c) {
      if (c != 0) os << ',';
      os << '"' << latency_cause_name(static_cast<LatencyCause>(c))
         << "\":" << r.cause[c];
    }
    os << "},\"latency\":" << r.latency
       << ",\"audited\":" << r.audited_latency << ",\"bound\":";
    if (r.bound == 0) {
      os << "null";
    } else {
      os << r.bound;
    }
    os << ",\"error\":" << (r.error ? "true" : "false")
       << ",\"fault_overlap\":" << (r.fault_overlap ? "true" : "false")
       << ",\"violation\":" << (r.violation ? "true" : "false") << "}\n";
  }
}

void FlightRecorder::clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

}  // namespace axihc
