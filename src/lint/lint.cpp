#include "lint/lint.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "axi/axi.hpp"
#include "sim/channel.hpp"
#include "sim/component.hpp"
#include "sim/island.hpp"
#include "sim/phase_check.hpp"
#include "sim/simulator.hpp"

namespace axihc {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string hex(Addr a) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(a));
  return buf;
}

std::string range_str(const AddrRange& r) {
  return "[" + hex(r.base) + ", " + hex(r.base + r.bytes) + ")";
}

}  // namespace

const char* to_string(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

void LintReport::add(LintFinding finding) {
  findings_.push_back(std::move(finding));
}

std::size_t LintReport::count(LintSeverity severity) const {
  std::size_t n = 0;
  for (const auto& f : findings_) {
    if (f.severity == severity) ++n;
  }
  return n;
}

bool LintReport::has_check(const std::string& check) const {
  return std::any_of(findings_.begin(), findings_.end(),
                     [&](const LintFinding& f) { return f.check == check; });
}

void LintReport::write_text(std::ostream& os) const {
  for (const auto& f : findings_) {
    os << to_string(f.severity) << ": [" << f.check << "] " << f.subject
       << ": " << f.message << "\n";
    if (!f.hint.empty()) os << "    hint: " << f.hint << "\n";
  }
  os << "lint: " << count(LintSeverity::kError) << " error(s), "
     << count(LintSeverity::kWarning) << " warning(s), "
     << count(LintSeverity::kNote) << " note(s)\n";
}

void LintReport::write_json(std::ostream& os) const {
  std::string out = "{\"findings\":[";
  bool first = true;
  for (const auto& f : findings_) {
    if (!first) out += ",";
    first = false;
    out += "{\"severity\":\"";
    out += to_string(f.severity);
    out += "\",\"check\":\"";
    append_escaped(out, f.check);
    out += "\",\"subject\":\"";
    append_escaped(out, f.subject);
    out += "\",\"message\":\"";
    append_escaped(out, f.message);
    out += "\",\"hint\":\"";
    append_escaped(out, f.hint);
    out += "\"}";
  }
  out += "],\"errors\":" + std::to_string(count(LintSeverity::kError));
  out += ",\"warnings\":" + std::to_string(count(LintSeverity::kWarning));
  out += ",\"notes\":" + std::to_string(count(LintSeverity::kNote));
  out += "}\n";
  os << out;
}

void DesignRuleChecker::expect_connected(const AxiLink& link,
                                         std::string role) {
  links_.push_back({&link, std::move(role)});
}

void DesignRuleChecker::add_address_range(std::string owner, AddrRange range,
                                          AddressKind kind) {
  ranges_.push_back({std::move(owner), range, kind});
}

void DesignRuleChecker::add_bridge(std::string name, const AxiLink& upstream,
                                   const AxiLink& downstream) {
  bridges_.push_back({std::move(name), &upstream, &downstream});
}

void DesignRuleChecker::require_id_headroom(const AxiLink& link,
                                            std::uint32_t max_id_bits,
                                            std::string reason) {
  id_rules_.push_back({&link, max_id_bits, std::move(reason)});
}

LintReport DesignRuleChecker::run() const {
  LintReport report;
  check_connectivity(report);
  check_address_map(report);
  check_widths(report);
  check_ledger(report);
  check_pool_slots(report);
  return report;
}

void DesignRuleChecker::check_connectivity(LintReport& report) const {
  for (const auto& exp : links_) {
    // A bundle counts as connected when at least two distinct components
    // attached to it (e.g. the interconnect terminating the port and the HA
    // mastering it). Per-channel declarations all flow through
    // attach_endpoint, so the union over the five channels suffices.
    std::unordered_set<const Component*> attached;
    const ChannelBase* chans[] = {&exp.link->ar, &exp.link->r, &exp.link->aw,
                                  &exp.link->w, &exp.link->b};
    for (const ChannelBase* ch : chans) {
      for (const Component* c : ch->endpoints()) attached.insert(c);
    }
    if (attached.size() < 2) {
      report.add({LintSeverity::kWarning, "unconnected-link",
                  exp.link->name(),
                  exp.role + " has " + std::to_string(attached.size()) +
                      " attached component(s); a connected bundle needs a "
                      "producer and a consumer",
                  "attach the missing master/slave (or drop the unused "
                  "port from the configuration)"});
    }
  }
}

void DesignRuleChecker::check_address_map(LintReport& report) const {
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    const NamedRange& a = ranges_[i];
    if (a.range.bytes == 0) continue;
    for (std::size_t j = i + 1; j < ranges_.size(); ++j) {
      const NamedRange& b = ranges_[j];
      if (b.range.bytes == 0) continue;
      if (!a.range.overlaps(b.range.base, b.range.bytes)) continue;
      if (a.kind == AddressKind::kDecode && b.kind == AddressKind::kDecode) {
        report.add({LintSeverity::kError, "address-overlap",
                    a.owner + " / " + b.owner,
                    "decode-map entries " + range_str(a.range) + " and " +
                        range_str(b.range) + " overlap (aliased decode)",
                    "make the decode map disjoint"});
      } else if (a.kind == AddressKind::kMasterWindow &&
                 b.kind == AddressKind::kMasterWindow &&
                 a.owner != b.owner) {
        report.add({LintSeverity::kWarning, "address-overlap",
                    a.owner + " / " + b.owner,
                    "HA job windows " + range_str(a.range) + " and " +
                        range_str(b.range) +
                        " share bytes — two accelerators (potentially in "
                        "different domains) write the same buffer",
                    "separate the base addresses, or confirm the sharing "
                    "is intended"});
      }
      // kErrorWindow overlaps are intentional (SLVERR windows target
      // mapped memory by construction).
    }
  }

  // Containment: with a decode map present, a master window that no single
  // decode entry covers will complete with DECERR at the memory controller
  // (resolve_resp requires the whole burst inside one entry).
  const bool have_decode =
      std::any_of(ranges_.begin(), ranges_.end(), [](const NamedRange& r) {
        return r.kind == AddressKind::kDecode && r.range.bytes != 0;
      });
  if (!have_decode) return;
  for (const NamedRange& w : ranges_) {
    if (w.kind != AddressKind::kMasterWindow || w.range.bytes == 0) continue;
    const bool covered =
        std::any_of(ranges_.begin(), ranges_.end(), [&](const NamedRange& d) {
          return d.kind == AddressKind::kDecode &&
                 d.range.contains_span(w.range.base, w.range.bytes);
        });
    if (!covered) {
      report.add({LintSeverity::kWarning, "address-unmapped", w.owner,
                  "HA job window " + range_str(w.range) +
                      " is not contained in any decode-map entry; accesses "
                      "will complete with DECERR",
                  "grow mem_bytes / the mapped ranges, or move the window"});
    }
  }
}

void DesignRuleChecker::check_widths(LintReport& report) const {
  for (const auto& br : bridges_) {
    if (br.up->data_bits() != br.down->data_bits()) {
      report.add({LintSeverity::kError, "width-mismatch", br.name,
                  "bridge joins a " + std::to_string(br.up->data_bits()) +
                      "-bit link ('" + br.up->name() + "') to a " +
                      std::to_string(br.down->data_bits()) + "-bit link ('" +
                      br.down->name() +
                      "') — a register slice performs no width conversion",
                  "match the data widths or insert a width converter"});
    }
    if (br.up->id_bits() > br.down->id_bits()) {
      report.add({LintSeverity::kError, "width-mismatch", br.name,
                  "bridge narrows AxID from " +
                      std::to_string(br.up->id_bits()) + " to " +
                      std::to_string(br.down->id_bits()) +
                      " bits — upstream IDs would alias downstream",
                  "give the downstream link at least as many ID bits"});
    }
  }
  for (const auto& rule : id_rules_) {
    if (rule.link->id_bits() > rule.max_id_bits) {
      report.add({LintSeverity::kError, "width-mismatch", rule.link->name(),
                  "link carries " + std::to_string(rule.link->id_bits()) +
                      "-bit IDs but " + rule.reason + " only leaves room "
                      "for " + std::to_string(rule.max_id_bits) + " bits",
                  "shrink the HA-side ID width below the extension "
                  "boundary"});
    }
  }
}

void DesignRuleChecker::check_ledger(LintReport& report) const {
  if (!kPhaseCheckAvailable) {
    report.add(
        {LintSeverity::kNote, "lint-coverage", "access-ledger",
         "undeclared-endpoint / island-scope / phase-race checks skipped: "
         "this build has no channel instrumentation",
         "reconfigure with -DAXIHC_PHASE_CHECK=ON to run them"});
    return;
  }

  const auto& components = sim_->components();
  const auto& channels = sim_->channels();
  const IslandPartition part = partition_islands(components, channels);
  std::unordered_map<const Component*, std::size_t> island_of;
  if (!part.collapsed) {
    for (std::size_t i = 0; i < part.islands.size(); ++i) {
      for (const Component* c : part.islands[i].components) {
        island_of.emplace(c, i);
      }
    }
  }

  for (std::size_t ci = 0; ci < channels.size(); ++ci) {
    const ChannelBase* ch = channels[ci];
    for (const Component* accessor : ch->observed_accessors()) {
      // Serial-scope components are licensed to touch foreign state: their
      // presence collapses the partition, so the engine never runs them
      // concurrently with anything (see TickScope).
      if (accessor->tick_scope() == TickScope::kSerial) continue;
      const auto& eps = ch->endpoints();
      if (std::find(eps.begin(), eps.end(), accessor) == eps.end()) {
        report.add({LintSeverity::kError, "undeclared-endpoint",
                    accessor->name(),
                    "island-scope component accessed channel '" + ch->name() +
                        "' without declaring itself an endpoint — island "
                        "partitioning cannot see this edge",
                    "call add_endpoint()/attach_endpoint() for every "
                    "touched channel in the constructor, or return "
                    "TickScope::kSerial until the component is audited"});
      }
      if (!part.collapsed &&
          part.channel_island[ci] != IslandPartition::kUnassigned) {
        const auto it = island_of.find(accessor);
        if (it != island_of.end() && it->second != part.channel_island[ci]) {
          report.add(
              {LintSeverity::kError, "island-scope-violation",
               accessor->name(),
               "island-scope component (island " +
                   std::to_string(it->second) + ") accessed channel '" +
                   ch->name() + "' owned by island " +
                   std::to_string(part.channel_island[ci]) +
                   " — a data race under the parallel tick engine",
               "declare the endpoint (merging the islands) or return "
               "TickScope::kSerial"});
        }
      }
    }
  }

  for (const PhaseViolation& v : PhaseCheck::snapshot()) {
    report.add({LintSeverity::kError, "phase-race", v.channel,
                (v.component.empty() ? std::string("<outside tick>")
                                     : v.component) +
                    ": " + v.what + " (epoch " + std::to_string(v.epoch) +
                    ")",
                "keep tick() two-phase: stage pushes, consume committed "
                "elements, and leave commit() to the engine"});
  }
}

void DesignRuleChecker::check_pool_slots(LintReport& report) const {
  const HotStatePool& pool = sim_->hot_pool();
  const auto& slots = pool.slots();
  for (std::uint32_t s = 0; s < slots.size(); ++s) {
    const HotStatePool::SlotInfo& slot = slots[s];
    if (slot.owner == nullptr) {
      report.add({LintSeverity::kWarning, "undeclared-pool-slot",
                  "pool:" + slot.what,
                  "hot-state pool slot '" + slot.what + "' (" +
                      std::to_string(slot.words) +
                      " words) was allocated without an owning component — "
                      "its writes cannot be audited against the island "
                      "partition",
                  "pass the owning component to alloc_u32/alloc_u64 "
                  "(adopt() from the component's adopt_hot_state)"});
      continue;
    }
    // Ledger cross-check (AXIHC_PHASE_CHECK builds; empty otherwise): pool
    // writes are stamped like channel writes, so a foreign island-scope
    // writer is the slot analogue of undeclared-endpoint.
    for (const Component* accessor : pool.slot_accessors(s)) {
      if (accessor == slot.owner ||
          accessor->tick_scope() == TickScope::kSerial) {
        continue;
      }
      report.add({LintSeverity::kError, "undeclared-pool-slot",
                  accessor->name(),
                  "island-scope component wrote hot-state pool slot '" +
                      slot.what + "' owned by '" + slot.owner->name() +
                      "' — island partitioning cannot see this edge",
                  "move the shared state behind a channel, or return "
                  "TickScope::kSerial until the component is audited"});
    }
  }
}

}  // namespace axihc
