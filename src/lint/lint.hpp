// axihc-lint — elaboration-time design-rule checker (layer 1 of the
// static-analysis wall; see docs/STATIC_ANALYSIS.md).
//
// The simulation kernel's strongest properties — bit-identical results
// across tick engines, thread counts and fast-forward settings — are
// theorems whose premises are structural contracts on the component graph:
// complete endpoint declarations, truthful tick scopes, two-phase channel
// discipline, a consistent address map. The DesignRuleChecker walks the
// elaborated (component, channel) graph after a system is assembled and
// verifies the premises, so a missed `add_endpoint` or a lying
// `tick_scope()` becomes a diagnostic with a fix hint instead of a silent
// bit-identity break under `--threads N`.
//
// Checks (ids as reported):
//   undeclared-endpoint     island-scope component touched a channel it
//                           never declared (needs AXIHC_PHASE_CHECK ledger)
//   island-scope-violation  island-scope component touched a channel owned
//                           by another island (ledger)
//   phase-race              two-phase discipline violation recorded by the
//                           race detector (sim/phase_check.hpp); covers
//                           hot-pool slot writes during the commit phase
//   undeclared-pool-slot    hot-state pool slot (sim/soa_pool.hpp) with no
//                           owner declaration, or written by an island-scope
//                           component other than its owner (ledger)
//   unconnected-link        a port bundle with fewer than two attached
//                           components (dangling master/slave port)
//   address-overlap         overlapping decode-map entries, or two HA job
//                           windows sharing bytes
//   address-unmapped        HA job window not contained in the decode map
//   width-mismatch          data/ID width discontinuity at a bridge, or an
//                           ID too wide for the ID-extension boundary
//   lint-coverage           note: ledger checks skipped (uninstrumented
//                           build or no armed run)
//
// ConfiguredSystem::lint() appends configuration-level rules on top:
//   recovery-probation-window  [recovery] probation_window shorter than the
//                              watchdog poll_period (probation can never
//                              observe a fault before promoting the port)
//
// Severities: kError findings fail `axihc --lint` (nonzero exit); kWarning
// findings are reported but pass; kNote is informational.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace axihc {

class AxiLink;
class Simulator;

enum class LintSeverity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] const char* to_string(LintSeverity severity);

/// One design-rule finding.
struct LintFinding {
  LintSeverity severity = LintSeverity::kWarning;
  std::string check;    // stable kebab-case id (see header comment)
  std::string subject;  // component / channel / range the finding is about
  std::string message;
  std::string hint;     // how to fix it
};

class LintReport {
 public:
  void add(LintFinding finding);

  [[nodiscard]] const std::vector<LintFinding>& findings() const {
    return findings_;
  }
  [[nodiscard]] std::size_t count(LintSeverity severity) const;
  [[nodiscard]] bool has_errors() const {
    return count(LintSeverity::kError) != 0;
  }
  /// True if any finding carries `check` (test helper).
  [[nodiscard]] bool has_check(const std::string& check) const;

  /// Human-readable listing, one finding per line plus a summary.
  void write_text(std::ostream& os) const;
  /// Machine-readable export (`axihc --lint-json`, CI artifact).
  void write_json(std::ostream& os) const;

 private:
  std::vector<LintFinding> findings_;
};

/// How an address range participates in the overlap checks.
enum class AddressKind : std::uint8_t {
  /// Memory decode-map entry: entries must not overlap one another.
  kDecode,
  /// SLVERR-synthesis window (fault injection): may overlap anything.
  kErrorWindow,
  /// An HA's job buffer: two HAs sharing bytes is flagged (hypervisor-level
  /// isolation), as is a window outside the decode map.
  kMasterWindow,
};

/// Collects topology facts about an elaborated system, then runs every
/// design rule over them plus the Simulator's registered graph.
/// ConfiguredSystem::lint() assembles one from an INI system; tests and
/// hand-built systems feed it directly.
class DesignRuleChecker {
 public:
  explicit DesignRuleChecker(const Simulator& sim) : sim_(&sim) {}

  /// Declares that `link` must have at least two attached components
  /// (e.g. an interconnect port and the HA mastering it).
  void expect_connected(const AxiLink& link, std::string role);

  void add_address_range(std::string owner, AddrRange range,
                         AddressKind kind);

  /// Declares a register-slice bridge between two links: a bridge performs
  /// no width conversion, so both sides must agree on data and ID width.
  void add_bridge(std::string name, const AxiLink& upstream,
                  const AxiLink& downstream);

  /// Declares an ID-extension boundary: IDs entering on `link` must fit in
  /// `max_id_bits` (e.g. kIdPortShift for the HyperConnect's out-of-order
  /// mode, which packs the port index above the HA-side ID).
  void require_id_headroom(const AxiLink& link, std::uint32_t max_id_bits,
                           std::string reason);

  /// Runs all design rules. The ledger-backed checks (undeclared-endpoint,
  /// island-scope-violation, phase-race) cover whatever accesses an armed
  /// instrumented run has recorded so far; in uninstrumented builds they
  /// degrade to a single lint-coverage note.
  [[nodiscard]] LintReport run() const;

 private:
  struct NamedRange {
    std::string owner;
    AddrRange range;
    AddressKind kind;
  };
  struct BridgeInfo {
    std::string name;
    const AxiLink* up;
    const AxiLink* down;
  };
  struct LinkExpectation {
    const AxiLink* link;
    std::string role;
  };
  struct IdRule {
    const AxiLink* link;
    std::uint32_t max_id_bits;
    std::string reason;
  };

  void check_connectivity(LintReport& report) const;
  void check_address_map(LintReport& report) const;
  void check_widths(LintReport& report) const;
  void check_ledger(LintReport& report) const;
  void check_pool_slots(LintReport& report) const;

  const Simulator* sim_;
  std::vector<LinkExpectation> links_;
  std::vector<NamedRange> ranges_;
  std::vector<BridgeInfo> bridges_;
  std::vector<IdRule> id_rules_;
};

}  // namespace axihc
