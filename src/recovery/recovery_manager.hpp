// RecoveryManager — closes the hypervisor's detect -> isolate loop (§V-A
// leaves it open: the protection unit decouples a faulty port and the
// watchdog acknowledges the fault, but nothing ever attempts to bring the
// accelerator back).
//
// One FSM per HyperConnect port, driven from the hypervisor's watchdog poll
// (the manager never touches the hardware outside a poll):
//
//            fault / overrun observed
//   Healthy ─────────────────────────> Quarantined
//                                        │ backoff expired
//                                        v            INFLIGHT == 0
//   Probation <── Resetting <──────── Draining        (or drain timeout)
//      │              clear_fault + recouple (HA reset runs when Resetting
//      │              advances, after the recouple write has landed)
//      │ window expires fault-free
//      v
//   Healthy    (recovery recorded; backoff and attempts reset)
//
// A new fault observed in Draining / Resetting / Probation DEMOTES the port
// back to Quarantined with its backoff doubled (capped at backoff_max); a
// demotion arriving after `max_attempts` re-couple attempts ESCALATES the
// port to PermanentlyIsolated, a terminal state.
//
// Graceful degradation: while a port is Quarantined / Draining /
// PermanentlyIsolated its reservation budget is reclaimed and redistributed
// across the remaining ports, proportionally to their baseline budgets
// (largest-remainder apportionment, so the result is deterministic and
// integer-exact). The original split is restored the moment the port is
// recoupled (Resetting). Invariant, checked at every recomputation: the sum
// of programmed budgets equals the sum of baseline budgets — survivors keep
// the full reserved capacity of the window, preserving the predictability
// guarantee.
//
// All hardware effects travel through the HyperConnectDriver over the
// control bus (budget writes, FAULT_STATUS clear, PORT_CTRL recouple), like
// every other hypervisor action.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "driver/hyperconnect_driver.hpp"
#include "obs/metrics.hpp"
#include "sim/component.hpp"
#include "sim/trace.hpp"

namespace axihc {

enum class RecoveryState : std::uint8_t {
  kHealthy = 0,
  kQuarantined,
  kDraining,
  kResetting,
  kProbation,
  kPermanentlyIsolated,
};

[[nodiscard]] const char* to_string(RecoveryState s);

struct RecoveryPolicy {
  /// First wait between quarantine and the drain/re-couple attempt.
  Cycle backoff_base = 1000;
  /// Backoff ceiling (doubling stops here).
  Cycle backoff_max = 16000;
  /// Fault-free cycles a recoupled port must survive to count as recovered.
  Cycle probation_window = 2000;
  /// Re-couple attempts before a demotion escalates to PermanentlyIsolated.
  std::uint32_t max_attempts = 4;
  /// Max cycles to wait in Draining for INFLIGHT to reach zero.
  Cycle drain_timeout = 4000;
};

/// One FSM transition, for tests and postmortems.
struct RecoveryTransition {
  Cycle cycle = 0;
  PortIndex port = 0;
  RecoveryState from = RecoveryState::kHealthy;
  RecoveryState to = RecoveryState::kHealthy;
};

class RecoveryManager final : public Component {
 public:
  RecoveryManager(std::string name, HyperConnectDriver& driver,
                  RecoveryPolicy policy);

  /// The reservation split to defend and restore. Also programs nothing by
  /// itself — the budgets are assumed to already be in the hardware (the
  /// hypervisor's apply_plan forwards them here).
  void set_baseline_budgets(std::vector<std::uint32_t> budgets);

  /// Software HA reset performed when Resetting advances to Probation —
  /// after the recouple write has landed, so the restarted accelerator
  /// issues into a live port (DPR semantics: the accelerator behind a
  /// decoupled port must not resume with pre-fault in-flight state).
  /// Optional.
  void set_ha_reset(std::function<void(PortIndex)> fn) {
    ha_reset_ = std::move(fn);
  }

  // --- Hooks called by the Hypervisor during its poll (serial scope). ---

  /// A new hardware fault was observed on `port` (FAULT_COUNT advanced).
  /// The hypervisor has already decoupled the port.
  void on_fault(PortIndex port, FaultCause cause, Cycle now);
  /// The watchdog observed a transaction-budget overrun on `port` (already
  /// decoupled by the hypervisor).
  void on_watchdog_overrun(PortIndex port, Cycle now);
  /// Advances every port's FSM. `inflight[p]` is the freshly polled
  /// INFLIGHT register value of port p.
  void on_poll(Cycle now, const std::vector<std::uint64_t>& inflight);

  // --- Introspection. ---

  [[nodiscard]] RecoveryState state(PortIndex port) const;
  [[nodiscard]] Cycle backoff(PortIndex port) const;
  [[nodiscard]] std::uint32_t attempts(PortIndex port) const;
  /// The budget this manager wants programmed for `port` right now.
  [[nodiscard]] std::uint32_t intended_budget(PortIndex port) const;
  /// True when the FSM has recoupled (or never decoupled) the port.
  [[nodiscard]] bool wants_coupled(PortIndex port) const;
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] std::uint64_t escalations() const { return escalations_; }
  [[nodiscard]] std::uint64_t demotions() const { return demotions_; }
  /// Mean cycles from quarantine entry to Probation -> Healthy, over all
  /// completed recoveries (0 when none completed).
  [[nodiscard]] double mean_time_to_recovery() const;
  /// Times the budget-conservation invariant failed (must stay 0).
  [[nodiscard]] std::uint64_t conservation_violations() const {
    return conservation_violations_;
  }
  [[nodiscard]] const std::vector<RecoveryTransition>& transitions() const {
    return transitions_;
  }
  /// Every port is Healthy or PermanentlyIsolated (no episode in flight) —
  /// the campaign runner's convergence criterion.
  [[nodiscard]] bool all_converged() const;

  // --- Component contract. ---

  /// The manager acts only from the hypervisor's poll hooks; its own tick
  /// is empty (it still registers with the simulator so its state is part
  /// of the digest).
  void tick(Cycle /*now*/) override {}
  void reset() override;
  [[nodiscard]] Cycle next_activity(Cycle /*now*/) const override {
    return kNoCycle;
  }
  /// Serial like the hypervisor that drives it: its hooks reconfigure other
  /// components through the driver.
  [[nodiscard]] TickScope tick_scope() const override {
    return TickScope::kSerial;
  }
  void append_digest(StateDigest& d) const override;

  /// Observability: every FSM transition becomes a trace instant.
  void set_trace(EventTrace* trace) { trace_ = trace; }
  /// Registers recovery counters and per-port state/backoff gauges.
  void register_metrics(MetricsRegistry& reg);

 private:
  struct PortFsm {
    RecoveryState state = RecoveryState::kHealthy;
    Cycle backoff = 0;          // current wait before the next attempt
    std::uint32_t attempts = 0; // re-couple attempts this episode
    Cycle wait_until = 0;       // Quarantined: when to start draining
    Cycle drain_deadline = 0;   // Draining: give-up time
    Cycle probation_until = 0;  // Probation: promotion time
    Cycle quarantined_at = 0;   // episode start (for time-to-recovery)
  };

  void transition(PortIndex port, RecoveryState to, Cycle now);
  /// New fault/overrun while an episode is in flight: back to Quarantined
  /// with doubled backoff, or PermanentlyIsolated past the attempt budget.
  void demote(PortIndex port, Cycle now);
  /// Begins an episode from Healthy.
  void quarantine(PortIndex port, Cycle now);
  /// Recomputes the intended budget split from the current donor set and
  /// programs every changed budget through the driver.
  void redistribute_budgets(Cycle now);
  [[nodiscard]] bool tracing() const {
    return trace_ != nullptr && trace_->enabled();
  }

  HyperConnectDriver& driver_;
  RecoveryPolicy policy_;
  std::vector<PortFsm> ports_;
  std::vector<std::uint32_t> baseline_budgets_;
  std::vector<std::uint32_t> intended_budgets_;

  std::uint64_t recoveries_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t total_recovery_cycles_ = 0;
  std::uint64_t conservation_violations_ = 0;
  std::vector<RecoveryTransition> transitions_;

  std::function<void(PortIndex)> ha_reset_;
  EventTrace* trace_ = nullptr;
};

}  // namespace axihc
