#include "recovery/recovery_manager.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace axihc {

const char* to_string(RecoveryState s) {
  switch (s) {
    case RecoveryState::kHealthy: return "healthy";
    case RecoveryState::kQuarantined: return "quarantined";
    case RecoveryState::kDraining: return "draining";
    case RecoveryState::kResetting: return "resetting";
    case RecoveryState::kProbation: return "probation";
    case RecoveryState::kPermanentlyIsolated: return "permanently_isolated";
  }
  return "?";
}

RecoveryManager::RecoveryManager(std::string name,
                                 HyperConnectDriver& driver,
                                 RecoveryPolicy policy)
    : Component(std::move(name)),
      driver_(driver),
      policy_(policy),
      ports_(driver.num_ports()),
      baseline_budgets_(driver.num_ports(), 0),
      intended_budgets_(driver.num_ports(), 0) {
  AXIHC_CHECK_MSG(policy_.backoff_base >= 1,
                  Component::name() << ": backoff_base must be >= 1");
  AXIHC_CHECK_MSG(policy_.backoff_max >= policy_.backoff_base,
                  Component::name() << ": backoff_max < backoff_base");
  AXIHC_CHECK_MSG(policy_.max_attempts >= 1,
                  Component::name() << ": max_attempts must be >= 1");
}

void RecoveryManager::set_baseline_budgets(
    std::vector<std::uint32_t> budgets) {
  budgets.resize(driver_.num_ports(), 0);
  // Must be called at configuration time: the caller has programmed these
  // values into the hardware, so the manager's view starts in sync and only
  // deltas are ever written from here on.
  for (const PortFsm& f : ports_) {
    AXIHC_CHECK_MSG(f.state == RecoveryState::kHealthy,
                    name() << ": baseline changed during a recovery episode");
  }
  baseline_budgets_ = std::move(budgets);
  intended_budgets_ = baseline_budgets_;
}

void RecoveryManager::reset() {
  ports_.assign(driver_.num_ports(), PortFsm{});
  intended_budgets_ = baseline_budgets_;
  recoveries_ = 0;
  escalations_ = 0;
  demotions_ = 0;
  total_recovery_cycles_ = 0;
  conservation_violations_ = 0;
  transitions_.clear();
}

RecoveryState RecoveryManager::state(PortIndex port) const {
  AXIHC_CHECK(port < ports_.size());
  return ports_[port].state;
}

Cycle RecoveryManager::backoff(PortIndex port) const {
  AXIHC_CHECK(port < ports_.size());
  return ports_[port].backoff;
}

std::uint32_t RecoveryManager::attempts(PortIndex port) const {
  AXIHC_CHECK(port < ports_.size());
  return ports_[port].attempts;
}

std::uint32_t RecoveryManager::intended_budget(PortIndex port) const {
  AXIHC_CHECK(port < intended_budgets_.size());
  return intended_budgets_[port];
}

bool RecoveryManager::wants_coupled(PortIndex port) const {
  AXIHC_CHECK(port < ports_.size());
  switch (ports_[port].state) {
    case RecoveryState::kHealthy:
    case RecoveryState::kResetting:
    case RecoveryState::kProbation:
      return true;
    case RecoveryState::kQuarantined:
    case RecoveryState::kDraining:
    case RecoveryState::kPermanentlyIsolated:
      return false;
  }
  return true;
}

double RecoveryManager::mean_time_to_recovery() const {
  if (recoveries_ == 0) return 0.0;
  return static_cast<double>(total_recovery_cycles_) /
         static_cast<double>(recoveries_);
}

bool RecoveryManager::all_converged() const {
  for (const PortFsm& f : ports_) {
    if (f.state != RecoveryState::kHealthy &&
        f.state != RecoveryState::kPermanentlyIsolated) {
      return false;
    }
  }
  return true;
}

void RecoveryManager::transition(PortIndex port, RecoveryState to,
                                 Cycle now) {
  PortFsm& f = ports_[port];
  transitions_.push_back({now, port, f.state, to});
  if (tracing()) {
    trace_->record(now, name(),
                   "p" + std::to_string(port) + " " +
                       std::string(to_string(f.state)) + "->" +
                       to_string(to));
  }
  AXIHC_LOG_INFO() << name() << " @" << now << ": port " << port << " "
                   << to_string(f.state) << " -> " << to_string(to);
  f.state = to;
}

void RecoveryManager::quarantine(PortIndex port, Cycle now) {
  PortFsm& f = ports_[port];
  f.attempts = 0;
  f.backoff = policy_.backoff_base;
  f.quarantined_at = now;
  f.wait_until = now + f.backoff;
  transition(port, RecoveryState::kQuarantined, now);
  redistribute_budgets(now);
}

void RecoveryManager::demote(PortIndex port, Cycle now) {
  PortFsm& f = ports_[port];
  ++demotions_;
  if (f.attempts >= policy_.max_attempts) {
    // Attempt budget exhausted: this accelerator keeps faulting straight
    // through recovery — retire it for good. Its bandwidth stays with the
    // survivors.
    ++escalations_;
    transition(port, RecoveryState::kPermanentlyIsolated, now);
  } else {
    f.backoff = std::min(f.backoff * 2, policy_.backoff_max);
    f.wait_until = now + f.backoff;
    transition(port, RecoveryState::kQuarantined, now);
  }
  redistribute_budgets(now);
}

void RecoveryManager::on_fault(PortIndex port, FaultCause /*cause*/,
                               Cycle now) {
  AXIHC_CHECK(port < ports_.size());
  switch (ports_[port].state) {
    case RecoveryState::kHealthy:
      quarantine(port, now);
      break;
    case RecoveryState::kDraining:
    case RecoveryState::kResetting:
    case RecoveryState::kProbation:
      demote(port, now);
      break;
    case RecoveryState::kQuarantined:
    case RecoveryState::kPermanentlyIsolated:
      // Already out of service; nothing new to do.
      break;
  }
}

void RecoveryManager::on_watchdog_overrun(PortIndex port, Cycle now) {
  // An overrun is handled exactly like a hardware fault: the port has
  // proven it cannot be trusted with its current coupling.
  on_fault(port, FaultCause::kNone, now);
}

void RecoveryManager::on_poll(Cycle now,
                              const std::vector<std::uint64_t>& inflight) {
  for (PortIndex p = 0; p < ports_.size(); ++p) {
    PortFsm& f = ports_[p];
    if (f.state == RecoveryState::kQuarantined && now >= f.wait_until) {
      ++f.attempts;
      f.drain_deadline = now + policy_.drain_timeout;
      transition(p, RecoveryState::kDraining, now);
      // Fall through: the port may already be drained this very poll.
    }
    if (f.state == RecoveryState::kDraining) {
      const bool drained = p < inflight.size() && inflight[p] == 0;
      if (drained || now >= f.drain_deadline) {
        // Resetting: acknowledge the latched fault — the FAULT_STATUS
        // write re-arms the protection unit (stall counters cleared, record
        // ages restamped) — restore the baseline budget split, and
        // recouple. The HA reset is deferred one poll (below): resetting
        // it now would let it re-issue requests while the recouple write
        // is still queued on the control bus, and a decoupled port grounds
        // them silently — wedging the accelerator it was meant to revive.
        driver_.clear_fault(p);
        driver_.set_coupled(p, true);
        transition(p, RecoveryState::kResetting, now);
        redistribute_budgets(now);
      }
    } else if (f.state == RecoveryState::kResetting) {
      // Reaching the next poll means the driver completed the re-couple
      // writes (the hypervisor evaluates polls only when the driver is
      // idle): the port is live again — NOW reset the accelerator behind
      // it (abandon pre-fault in-flight state, restart the job engine) and
      // start the probation clock.
      if (ha_reset_) ha_reset_(p);
      f.probation_until = now + policy_.probation_window;
      transition(p, RecoveryState::kProbation, now);
    } else if (f.state == RecoveryState::kProbation &&
               now >= f.probation_until) {
      ++recoveries_;
      total_recovery_cycles_ += now - f.quarantined_at;
      f.attempts = 0;
      f.backoff = 0;
      transition(p, RecoveryState::kHealthy, now);
    }
  }
}

void RecoveryManager::redistribute_budgets(Cycle now) {
  // Donors: ports currently out of service whose budget is reclaimed.
  // Resetting/Probation ports are recoupled and need their budget back to
  // prove themselves.
  std::vector<PortIndex> donors;
  std::vector<PortIndex> recipients;
  for (PortIndex p = 0; p < ports_.size(); ++p) {
    switch (ports_[p].state) {
      case RecoveryState::kQuarantined:
      case RecoveryState::kDraining:
      case RecoveryState::kPermanentlyIsolated:
        donors.push_back(p);
        break;
      default:
        recipients.push_back(p);
        break;
    }
  }

  std::vector<std::uint32_t> next = baseline_budgets_;
  if (!donors.empty() && !recipients.empty()) {
    std::uint64_t pool = 0;
    for (const PortIndex d : donors) {
      pool += baseline_budgets_[d];
      next[d] = 0;
    }
    if (pool > 0) {
      std::uint64_t base_total = 0;
      for (const PortIndex r : recipients) base_total += baseline_budgets_[r];
      std::vector<std::uint64_t> extra(recipients.size(), 0);
      if (base_total > 0) {
        // Largest-remainder apportionment proportional to the baseline
        // split: integer-exact (sum of extras == pool) and deterministic
        // (ties broken by port index).
        std::uint64_t assigned = 0;
        std::vector<std::pair<std::uint64_t, std::size_t>> remainders;
        for (std::size_t i = 0; i < recipients.size(); ++i) {
          const std::uint64_t b = baseline_budgets_[recipients[i]];
          extra[i] = pool * b / base_total;
          assigned += extra[i];
          remainders.emplace_back(pool * b % base_total, i);
        }
        std::sort(remainders.begin(), remainders.end(),
                  [](const auto& a, const auto& b) {
                    if (a.first != b.first) return a.first > b.first;
                    return a.second < b.second;
                  });
        for (std::uint64_t left = pool - assigned, i = 0; left > 0;
             --left, ++i) {
          ++extra[remainders[i % remainders.size()].second];
        }
      } else {
        // No baseline to be proportional to: split evenly, low ports first.
        for (std::size_t i = 0; i < recipients.size(); ++i) {
          extra[i] = pool / recipients.size() +
                     (i < pool % recipients.size() ? 1 : 0);
        }
      }
      for (std::size_t i = 0; i < recipients.size(); ++i) {
        next[recipients[i]] =
            static_cast<std::uint32_t>(baseline_budgets_[recipients[i]] +
                                       extra[i]);
      }
    }
  }
  // When every port is a donor there is nobody to redistribute to; `next`
  // stays at the baseline (the ports are decoupled anyway).

  // Budget-conservation invariant: the window's reserved capacity never
  // changes, whoever holds it.
  std::uint64_t baseline_sum = 0;
  std::uint64_t next_sum = 0;
  for (PortIndex p = 0; p < ports_.size(); ++p) {
    baseline_sum += baseline_budgets_[p];
    next_sum += next[p];
  }
  if (next_sum != baseline_sum) {
    ++conservation_violations_;
    AXIHC_LOG_WARN() << name() << " @" << now
                     << ": budget conservation violated (" << next_sum
                     << " != " << baseline_sum << ")";
  }

  for (PortIndex p = 0; p < ports_.size(); ++p) {
    if (next[p] == intended_budgets_[p]) continue;
    driver_.set_budget(p, next[p]);
    if (tracing()) {
      trace_->record(now, name(),
                     "budget p" + std::to_string(p) + "=" +
                         std::to_string(next[p]));
    }
  }
  intended_budgets_ = std::move(next);
}

void RecoveryManager::append_digest(StateDigest& d) const {
  for (const PortFsm& f : ports_) {
    d.mix(static_cast<std::uint64_t>(f.state));
    d.mix(f.backoff);
    d.mix(f.attempts);
    d.mix(f.wait_until);
    d.mix(f.drain_deadline);
    d.mix(f.probation_until);
    d.mix(f.quarantined_at);
  }
  for (const std::uint32_t b : intended_budgets_) d.mix(b);
  d.mix(recoveries_);
  d.mix(escalations_);
  d.mix(demotions_);
  d.mix(total_recovery_cycles_);
  d.mix(conservation_violations_);
  d.mix(static_cast<std::uint64_t>(transitions_.size()));
}

void RecoveryManager::register_metrics(MetricsRegistry& reg) {
  reg.add_counter(name() + ".recoveries", &recoveries_);
  reg.add_counter(name() + ".escalations", &escalations_);
  reg.add_counter(name() + ".demotions", &demotions_);
  // Survivability summary fields (the same numbers the fault-campaign rows
  // report), so --metrics-out series carry them too.
  reg.add_gauge(name() + ".mttr_cycles",
                [this] { return mean_time_to_recovery(); });
  reg.add_gauge(name() + ".converged",
                [this] { return all_converged() ? 1.0 : 0.0; });
  for (PortIndex p = 0; p < ports_.size(); ++p) {
    const std::string s = name() + ".port" + std::to_string(p);
    reg.add_gauge(s + ".state", [this, p] {
      return static_cast<double>(ports_[p].state);
    });
    reg.add_gauge(s + ".backoff", [this, p] {
      return static_cast<double>(ports_[p].backoff);
    });
    reg.add_gauge(s + ".budget", [this, p] {
      return static_cast<double>(intended_budgets_[p]);
    });
  }
}

}  // namespace axihc
