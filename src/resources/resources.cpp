#include "resources/resources.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace axihc {

ResourceUsage& ResourceUsage::operator+=(const ResourceUsage& other) {
  lut += other.lut;
  ff += other.ff;
  bram += other.bram;
  dsp += other.dsp;
  return *this;
}

DeviceBudget zcu102() { return {"ZCU102 (XCZU9EG)", 274080, 548160, 912, 2520}; }

DeviceBudget zynq7020() { return {"Zynq Z-7020", 53200, 106400, 140, 220}; }

namespace {

// Payload widths in bits on a 64-bit data bus (address 40 + id 6 + len 8 +
// size 3 + burst 2 + qos 4 ≈ 64 for AR/AW; data 64 + strb 8 + last 1 for W;
// data 64 + id 6 + resp 2 + last 1 for R; id 6 + resp 2 for B).
constexpr std::uint32_t kArWidth = 64;
constexpr std::uint32_t kAwWidth = 64;
constexpr std::uint32_t kWWidth = 73;
constexpr std::uint32_t kRWidth = 73;
constexpr std::uint32_t kBWidth = 8;

// A LUT6 used as distributed RAM stores 64 bits.
constexpr std::uint32_t kBitsPerLutram = 64;
// Read/write pointer + occupancy logic per queue.
constexpr std::uint32_t kQueueControlLut = 12;

// Per-port Transaction Supervisor: split/merge state machines, outstanding
// and budget counters. Calibrated against Table I.
constexpr std::uint32_t kTsLutPerPort = 700;
constexpr std::uint32_t kTsFfPerPort = 330;

// EXBAR: arbitration base cost, per-port mux slice, routing memories.
constexpr std::uint32_t kExbarBaseLut = 180;
constexpr std::uint32_t kExbarMuxLutPerPort = 180;
constexpr std::uint32_t kExbarBaseFf = 40;
constexpr std::uint32_t kExbarFfPerPort = 10;
constexpr std::uint32_t kRouteEntryBits = 10;  // port index + beat counter

// Central unit + control slave interface + configuration registers.
constexpr std::uint32_t kControlLut = 624;
constexpr std::uint32_t kControlFf = 383;

// SmartConnect: behavioural totals (the IP is closed; constants match the
// Vivado 2018.2 utilization the paper reports for the 2-port instance and
// Xilinx's published per-port growth).
constexpr std::uint32_t kScBaseLut = 1885;
constexpr std::uint32_t kScLutPerPort = 950;
constexpr std::uint32_t kScBaseFf = 1937;
constexpr std::uint32_t kScFfPerPort = 2600;

std::uint32_t queue_ff(std::size_t depth) {
  const auto bits = static_cast<std::uint32_t>(
      std::ceil(std::log2(static_cast<double>(depth < 2 ? 2 : depth))));
  return 2 * bits + 6;
}

std::uint32_t div_ceil(std::uint32_t a, std::uint32_t b) {
  return (a + b - 1) / b;
}

}  // namespace

ResourceUsage estimate_efifo(const AxiLinkConfig& depths) {
  const std::uint32_t storage_bits =
      kArWidth * static_cast<std::uint32_t>(depths.ar_depth) +
      kAwWidth * static_cast<std::uint32_t>(depths.aw_depth) +
      kWWidth * static_cast<std::uint32_t>(depths.w_depth) +
      kRWidth * static_cast<std::uint32_t>(depths.r_depth) +
      kBWidth * static_cast<std::uint32_t>(depths.b_depth);
  ResourceUsage usage;
  usage.lut = div_ceil(storage_bits, kBitsPerLutram) + 5 * kQueueControlLut;
  usage.ff = queue_ff(depths.ar_depth) + queue_ff(depths.aw_depth) +
             queue_ff(depths.w_depth) + queue_ff(depths.r_depth) +
             queue_ff(depths.b_depth);
  // Distributed RAM only — no BRAM, no DSP (as in Table I).
  return usage;
}

ResourceUsage estimate_hyperconnect(const HyperConnectConfig& cfg) {
  ResourceUsage usage;
  // N slave eFIFOs + 1 master eFIFO.
  for (std::uint32_t i = 0; i < cfg.num_ports; ++i) {
    usage += estimate_efifo(cfg.port_link_cfg);
  }
  usage += estimate_efifo(cfg.master_link_cfg);

  usage.lut += kTsLutPerPort * cfg.num_ports;
  usage.ff += kTsFfPerPort * cfg.num_ports;

  usage.lut += kExbarBaseLut + kExbarMuxLutPerPort * cfg.num_ports +
               div_ceil(3 * cfg.route_capacity * kRouteEntryBits,
                        kBitsPerLutram);
  usage.ff += kExbarBaseFf + kExbarFfPerPort * cfg.num_ports;

  usage.lut += kControlLut;
  usage.ff += kControlFf;
  return usage;
}

ResourceUsage estimate_smartconnect(std::uint32_t num_ports) {
  AXIHC_CHECK(num_ports >= 1);
  ResourceUsage usage;
  usage.lut = kScBaseLut + kScLutPerPort * num_ports;
  usage.ff = kScBaseFf + kScFfPerPort * num_ports;
  return usage;
}

std::string utilization(std::uint32_t used, std::uint32_t available) {
  AXIHC_CHECK(available > 0);
  std::ostringstream os;
  const double pct = 100.0 * used / available;
  os << used << " (";
  os.precision(pct < 10 ? 2 : 3);
  os << pct << "%)";
  return os.str();
}

}  // namespace axihc
