// FPGA resource estimation (Table I substitute).
//
// We cannot run Vivado synthesis, so resource consumption is estimated with
// a parametric structural model: LUTRAM storage for the circular buffers,
// per-port supervisor/pipeline logic, crossbar muxing that grows with port
// count, and fixed control overhead. The per-component constants are
// calibrated so that the paper's exact configuration (2-port, 64-bit data,
// default depths, Vivado 2018.2 on the ZCU102) reproduces Table I:
//
//                LUT   FF    BRAM  DSP
//   HyperConnect 3020  1289  0     0
//   SmartConnect 3785  7137  0     0
//
// The value of the model is the *comparison and scaling shape*: the
// HyperConnect is LUT-comparable but dramatically lighter in flip-flops
// (its slim 4-stage pipeline vs. SmartConnect's deep per-channel pipelines),
// and neither uses BRAM or DSP blocks.
#pragma once

#include <cstdint>
#include <string>

#include "hyperconnect/config.hpp"
#include "interconnect/smartconnect.hpp"

namespace axihc {

struct ResourceUsage {
  std::uint32_t lut = 0;
  std::uint32_t ff = 0;
  std::uint32_t bram = 0;
  std::uint32_t dsp = 0;

  ResourceUsage& operator+=(const ResourceUsage& other);
  friend ResourceUsage operator+(ResourceUsage a, const ResourceUsage& b) {
    a += b;
    return a;
  }
};

/// Resource capacity of a target device.
struct DeviceBudget {
  std::string name;
  std::uint32_t lut = 0;
  std::uint32_t ff = 0;
  std::uint32_t bram = 0;
  std::uint32_t dsp = 0;
};

/// The ZCU102's XCZU9EG (the paper's reported platform).
[[nodiscard]] DeviceBudget zcu102();

/// The Zynq-7020 (the paper's second platform).
[[nodiscard]] DeviceBudget zynq7020();

/// Estimates one eFIFO module's cost given its five queue depths.
[[nodiscard]] ResourceUsage estimate_efifo(const AxiLinkConfig& depths);

/// Estimates a full AXI HyperConnect instance.
[[nodiscard]] ResourceUsage estimate_hyperconnect(
    const HyperConnectConfig& cfg);

/// Estimates an AXI SmartConnect instance with `num_ports` inputs.
[[nodiscard]] ResourceUsage estimate_smartconnect(std::uint32_t num_ports);

/// "1234 (0.45%)" — count and share of the device budget.
[[nodiscard]] std::string utilization(std::uint32_t used,
                                      std::uint32_t available);

}  // namespace axihc
