// Monte Carlo fault-campaign runner (`axihc --campaign <spec.ini>`).
//
// A campaign file is a normal experiment description (the base system:
// [system], [hyperconnect], [haN], [recovery], ...) plus one [campaign]
// section describing the fault space to sweep:
//
//   [campaign]
//   runs = 100
//   seed = 1                  ; master seed; run r derives seed_r = f(seed,r)
//   cycles = 0                ; per-run horizon; 0 = [system] cycles
//   min_faults = 1            ; faults injected per run, uniform in
//   max_faults = 3            ;   [min_faults, max_faults]
//   kinds = stall_w drop_w    ; candidate kinds; default: all injector kinds
//   ports = 0 1               ; candidate ports; default: every [haN] port
//   start_min = 2000          ; activation-window start, uniform range
//   start_max = 20000
//   duration_min = 200        ; window length, uniform range (>= 1: the
//   duration_max = 2000       ;   campaign never injects permanent faults)
//   probability = 1.0         ; per-event probability of every spec
//
// The base config must not contain [faultN] sections — the campaign owns
// the fault description (each run replaces it wholesale), and must contain
// [recovery]: survivability is measured through the recovery FSM.
//
// Determinism: everything derives from the master seed via splitmix64 — no
// wall clock, no std:: distributions (their mappings vary across standard
// libraries). Two invocations of the same campaign produce byte-identical
// JSON-lines output at any worker-thread count; any row is replayable as a
// single `axihc` run (campaign_replay_ini reconstructs the exact config,
// including the per-run fault_seed).
//
// Injector-topology pinning: every candidate port carries a never-active
// sentinel spec (start = 2^64-1, probability 0) in the baseline AND every
// run, so all runs — and the fault-free baseline — elaborate the identical
// component graph (same injector latencies, same digest composition). The
// baseline's state digest and per-HA byte counts anchor the survivability
// metrics (bandwidth retained = run bytes / baseline bytes).
//
// Output is JSON lines: one header object (campaign metadata + baseline
// digest), then one object per run in run order with the generated fault
// list, recovery counters (recoveries / escalations / demotions / mean
// time-to-recovery), per-port final FSM states, the budget-conservation
// verdict, per-HA bandwidth retained, and the final state digest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "config/ini.hpp"
#include "fault/scenario.hpp"

namespace axihc {

/// Parsed [campaign] section with resolved defaults.
struct CampaignSpec {
  std::uint64_t runs = 100;
  std::uint64_t seed = 1;
  Cycle cycles = 0;  ///< resolved per-run horizon (never 0 after parsing)
  std::uint32_t min_faults = 1;
  std::uint32_t max_faults = 3;
  std::vector<FaultKind> kinds;
  std::vector<PortIndex> ports;
  Cycle start_min = 0;
  Cycle start_max = 0;
  Cycle duration_min = 0;
  Cycle duration_max = 0;
  double probability = 1.0;
};

/// Parses + validates the [campaign] section against the base system in the
/// same file (throws ModelError on a missing section, a missing [recovery],
/// stray [faultN] sections, empty kind/port sets, inverted ranges).
[[nodiscard]] CampaignSpec parse_campaign_spec(const IniFile& ini);

/// The scenario run `run_index` executes: seed_r plus min..max generated
/// fault specs, followed by one never-active sentinel per candidate port.
/// Pure function of (spec, run_index) — the replay path and the runner call
/// the same code.
[[nodiscard]] FaultScenario campaign_scenario(const CampaignSpec& spec,
                                              std::uint64_t run_index);

/// Campaign results: the JSON-lines output plus the aggregate verdicts the
/// CLI turns into an exit code.
struct CampaignOutput {
  /// Header line + one line per run, in run order.
  std::vector<std::string> lines;
  std::uint64_t non_converged = 0;  ///< runs ending mid-episode
  std::uint64_t conservation_violations = 0;
  std::uint64_t total_recoveries = 0;
  std::uint64_t total_escalations = 0;
  /// WCLA bound violations across all runs' audited transactions
  /// (informational: injected interference like delay_w legitimately
  /// exceeds the fault-free bound, so this does not fail the campaign).
  std::uint64_t total_bound_violations = 0;

  /// Every run converged and the budget-conservation invariant held.
  [[nodiscard]] bool ok() const {
    return non_converged == 0 && conservation_violations == 0;
  }
};

/// Runs the whole campaign (baseline + `runs` randomized runs, fanned out
/// over the shared worker pool; AXIHC_BENCH_THREADS overrides the width).
[[nodiscard]] CampaignOutput run_campaign(const IniFile& ini);

/// Reconstructs a standalone axihc config that reproduces run `run_index`
/// exactly: the base sections (minus [campaign]) with the run's fault_seed,
/// plus one [faultN] section per generated spec and sentinel.
[[nodiscard]] std::string campaign_replay_ini(const IniFile& ini,
                                              std::uint64_t run_index);

}  // namespace axihc
