#include "campaign/campaign.hpp"

#include <cinttypes>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "config/system_builder.hpp"
#include "recovery/recovery_manager.hpp"
#include "sim/parallel_jobs.hpp"

namespace axihc {

namespace {

/// Sentinel activation cycle: active_at(now) is false for every reachable
/// simulation cycle, so the spec pins an injector onto the port without
/// ever perturbing traffic.
constexpr Cycle kNeverActive = std::numeric_limits<Cycle>::max();

/// splitmix64 — the campaign's only randomness primitive. Fully specified
/// arithmetic (no std:: distributions, whose value mappings differ between
/// standard libraries), so campaigns are bit-reproducible everywhere.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform draw in [lo, hi] (inclusive). The modulo bias is irrelevant for
/// fault sampling and keeps the mapping trivially portable.
std::uint64_t draw(std::uint64_t& state, std::uint64_t lo, std::uint64_t hi) {
  AXIHC_CHECK(hi >= lo);
  return lo + splitmix64(state) % (hi - lo + 1);
}

std::vector<FaultKind> all_injector_kinds() {
  return {FaultKind::kStallAr, FaultKind::kStallAw,  FaultKind::kStallW,
          FaultKind::kStallR,  FaultKind::kStallB,   FaultKind::kDropW,
          FaultKind::kDelayW,  FaultKind::kTruncateWrite,
          FaultKind::kCorruptLen};
}

/// Kind-specific parameter range (see FaultSpec::param).
std::uint64_t draw_param(std::uint64_t& state, FaultKind kind) {
  switch (kind) {
    case FaultKind::kDelayW:
      return draw(state, 1, 16);  // extra cycles per W beat
    case FaultKind::kTruncateWrite:
      return draw(state, 1, 4);  // beats cut from the burst
    case FaultKind::kCorruptLen:
      return draw(state, 1, 32);  // corrupted burst length
    default:
      return 0;
  }
}

void append_sentinels(const CampaignSpec& spec, FaultScenario& scenario) {
  for (const PortIndex p : spec.ports) {
    FaultSpec f;
    f.kind = FaultKind::kStallW;
    f.port = p;
    f.start = kNeverActive;
    f.duration = 1;
    f.param = 0;
    f.probability = 0.0;
    scenario.faults.push_back(f);
  }
}

[[nodiscard]] bool is_sentinel(const FaultSpec& f) {
  return f.start == kNeverActive;
}

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string hex_digest(std::uint64_t d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, d);
  return buf;
}

/// One run's contribution to the JSON-lines output and the exit verdict.
struct RunRow {
  std::string line;
  bool converged = true;
  std::uint64_t conservation_violations = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t escalations = 0;
  std::uint64_t bound_violations = 0;
};

std::string fault_list_json(const FaultScenario& scenario) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const FaultSpec& f : scenario.faults) {
    if (is_sentinel(f)) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"kind\":\"" << fault_kind_name(f.kind) << "\",\"port\":"
       << f.port << ",\"start\":" << f.start << ",\"duration\":"
       << f.duration << ",\"param\":" << f.param << ",\"probability\":"
       << json_double(f.probability) << "}";
  }
  os << "]";
  return os.str();
}

RunRow execute_run(const IniFile& ini, const CampaignSpec& spec,
                   std::uint64_t run_index,
                   const std::vector<std::uint64_t>& baseline_bytes) {
  const FaultScenario scenario = campaign_scenario(spec, run_index);
  ConfiguredSystem sys(ini, scenario);
  // Latency provenance rides along on every run: fault recovery is exactly
  // when the bound-exclusion logic earns its keep, and the audited/violation
  // counters join the survivability row. The auditor never touches simulated
  // state, so digests stay comparable with non-audited runs.
  sys.observe_config().latency_audit = true;
  sys.run(spec.cycles);

  const RecoveryManager* rec = sys.recovery();
  AXIHC_CHECK(rec != nullptr);
  const LatencyAudit* audit = sys.latency_audit();
  AXIHC_CHECK(audit != nullptr);
  const std::uint32_t num_ports = sys.soc().config().num_ports;

  RunRow row;
  row.converged = rec->all_converged();
  row.conservation_violations = rec->conservation_violations();
  row.recoveries = rec->recoveries();
  row.escalations = rec->escalations();
  row.bound_violations = audit->bound_violations();

  std::ostringstream os;
  os << "{\"run\":" << run_index << ",\"seed\":" << scenario.seed
     << ",\"cycles\":" << spec.cycles << ",\"faults\":"
     << fault_list_json(scenario) << ",\"recoveries\":" << rec->recoveries()
     << ",\"escalations\":" << rec->escalations() << ",\"demotions\":"
     << rec->demotions() << ",\"mttr_cycles\":"
     << json_double(rec->mean_time_to_recovery()) << ",\"converged\":"
     << (row.converged ? "true" : "false") << ",\"budget_conserved\":"
     << (row.conservation_violations == 0 ? "true" : "false")
     << ",\"audit_txns\":" << audit->transactions() << ",\"bound_checked\":"
     << audit->bound_checked() << ",\"bound_violations\":"
     << audit->bound_violations() << ",\"max_latency_ratio\":"
     << json_double(audit->max_latency_ratio()) << ",\"final_states\":[";
  for (PortIndex p = 0; p < num_ports; ++p) {
    if (p != 0) os << ",";
    os << "\"" << to_string(rec->state(p)) << "\"";
  }
  os << "],\"bw_retained\":[";
  for (std::size_t i = 0; i < sys.ha_count(); ++i) {
    if (i != 0) os << ",";
    const MasterStats& s = sys.ha(i).stats();
    const std::uint64_t bytes = s.bytes_read + s.bytes_written;
    const std::uint64_t base =
        i < baseline_bytes.size() ? baseline_bytes[i] : 0;
    os << json_double(base == 0 ? 1.0
                                : static_cast<double>(bytes) /
                                      static_cast<double>(base));
  }
  os << "],\"digest\":\"" << hex_digest(sys.soc().sim().state_digest())
     << "\"}";
  row.line = os.str();
  return row;
}

}  // namespace

CampaignSpec parse_campaign_spec(const IniFile& ini) {
  const IniSection* camp = ini.section("campaign");
  AXIHC_CHECK_MSG(camp != nullptr,
                  "a campaign file needs a [campaign] section");
  const IniSection* system = ini.section("system");
  AXIHC_CHECK_MSG(system != nullptr, "config needs a [system] section");
  AXIHC_CHECK_MSG(ini.section("recovery") != nullptr,
                  "campaigns measure survivability through the recovery "
                  "FSM — add a [recovery] section");
  AXIHC_CHECK_MSG(ini.sections_with_prefix("fault").empty(),
                  "the campaign owns the fault description — remove the "
                  "[faultN] sections from the base config");

  CampaignSpec spec;
  spec.runs = camp->get_u64("runs", 100);
  AXIHC_CHECK_MSG(spec.runs >= 1, "[campaign] runs must be >= 1");
  spec.seed = camp->get_u64("seed", 1);
  spec.cycles = camp->get_u64("cycles", 0);
  if (spec.cycles == 0) spec.cycles = system->get_u64("cycles", 1'000'000);

  spec.min_faults =
      static_cast<std::uint32_t>(camp->get_u64("min_faults", 1));
  spec.max_faults =
      static_cast<std::uint32_t>(camp->get_u64("max_faults", 3));
  AXIHC_CHECK_MSG(spec.max_faults >= spec.min_faults,
                  "[campaign] max_faults < min_faults");

  std::istringstream kinds(camp->get_string("kinds", ""));
  for (std::string word; kinds >> word;) {
    const auto kind = fault_kind_from_string(word);
    AXIHC_CHECK_MSG(kind.has_value(),
                    "[campaign] unknown fault kind '" << word << "'");
    spec.kinds.push_back(*kind);
  }
  if (spec.kinds.empty()) spec.kinds = all_injector_kinds();

  const std::uint64_t num_ports = system->get_u64("ports", 2);
  for (const std::uint32_t p : camp->get_u32_list("ports")) {
    spec.ports.push_back(p);
  }
  if (spec.ports.empty()) {
    // Default: every port with an HA behind it (faults on empty ports
    // would never materialize — no injector is built there).
    const std::size_t ha_count = ini.sections_with_prefix("ha").size();
    for (PortIndex p = 0; p < ha_count; ++p) spec.ports.push_back(p);
  }
  AXIHC_CHECK_MSG(!spec.ports.empty(), "[campaign] no candidate ports");
  for (const PortIndex p : spec.ports) {
    AXIHC_CHECK_MSG(p < num_ports,
                    "[campaign] port " << p << " out of range");
  }

  spec.start_min = camp->get_u64("start_min", spec.cycles / 10);
  spec.start_max = camp->get_u64("start_max", spec.cycles / 2);
  AXIHC_CHECK_MSG(spec.start_max >= spec.start_min,
                  "[campaign] start_max < start_min");
  spec.duration_min = camp->get_u64("duration_min", 200);
  spec.duration_max = camp->get_u64("duration_max", 2000);
  AXIHC_CHECK_MSG(spec.duration_min >= 1,
                  "[campaign] duration_min must be >= 1 (duration 0 means "
                  "a permanent fault; campaigns sweep transient windows)");
  AXIHC_CHECK_MSG(spec.duration_max >= spec.duration_min,
                  "[campaign] duration_max < duration_min");

  spec.probability = camp->get_double("probability", 1.0);
  AXIHC_CHECK_MSG(spec.probability > 0.0 && spec.probability <= 1.0,
                  "[campaign] probability must be in (0, 1]");
  return spec;
}

FaultScenario campaign_scenario(const CampaignSpec& spec,
                                std::uint64_t run_index) {
  // Per-run seed: one splitmix64 step over a golden-ratio-spread input, so
  // neighbouring run indices get uncorrelated streams.
  std::uint64_t derive = spec.seed ^ (0x9e3779b97f4a7c15ULL * (run_index + 1));
  FaultScenario scenario;
  scenario.seed = splitmix64(derive);

  std::uint64_t state = scenario.seed;
  const std::uint64_t n = draw(state, spec.min_faults, spec.max_faults);
  for (std::uint64_t i = 0; i < n; ++i) {
    FaultSpec f;
    f.kind = spec.kinds[draw(state, 0, spec.kinds.size() - 1)];
    f.port = spec.ports[draw(state, 0, spec.ports.size() - 1)];
    f.start = draw(state, spec.start_min, spec.start_max);
    f.duration = draw(state, spec.duration_min, spec.duration_max);
    f.param = draw_param(state, f.kind);
    f.probability = spec.probability;
    scenario.faults.push_back(f);
  }
  append_sentinels(spec, scenario);
  return scenario;
}

CampaignOutput run_campaign(const IniFile& ini) {
  const CampaignSpec spec = parse_campaign_spec(ini);

  // Fault-free baseline under the identical component graph (sentinel
  // injectors on every candidate port): anchors bandwidth-retained and
  // pins the digest composition every run shares.
  FaultScenario baseline_scenario;
  baseline_scenario.seed = spec.seed;
  append_sentinels(spec, baseline_scenario);
  ConfiguredSystem baseline(ini, baseline_scenario);
  // Same observability wiring as every run (execute_run): the probe and
  // auditor join the digest composition, so baseline and run digests stay
  // comparable.
  baseline.observe_config().latency_audit = true;
  baseline.run(spec.cycles);
  std::vector<std::uint64_t> baseline_bytes;
  for (std::size_t i = 0; i < baseline.ha_count(); ++i) {
    const MasterStats& s = baseline.ha(i).stats();
    baseline_bytes.push_back(s.bytes_read + s.bytes_written);
  }

  CampaignOutput out;
  {
    std::ostringstream os;
    os << "{\"campaign\":{\"runs\":" << spec.runs << ",\"seed\":"
       << spec.seed << ",\"cycles\":" << spec.cycles << ",\"min_faults\":"
       << spec.min_faults << ",\"max_faults\":" << spec.max_faults
       << ",\"kinds\":[";
    for (std::size_t i = 0; i < spec.kinds.size(); ++i) {
      if (i != 0) os << ",";
      os << "\"" << fault_kind_name(spec.kinds[i]) << "\"";
    }
    os << "],\"ports\":[";
    for (std::size_t i = 0; i < spec.ports.size(); ++i) {
      if (i != 0) os << ",";
      os << spec.ports[i];
    }
    os << "],\"probability\":" << json_double(spec.probability)
       << "},\"baseline\":{\"digest\":\""
       << hex_digest(baseline.soc().sim().state_digest())
       << "\",\"bytes\":[";
    for (std::size_t i = 0; i < baseline_bytes.size(); ++i) {
      if (i != 0) os << ",";
      os << baseline_bytes[i];
    }
    os << "]}}";
    out.lines.push_back(os.str());
  }

  std::vector<std::function<RunRow()>> jobs;
  jobs.reserve(spec.runs);
  for (std::uint64_t r = 0; r < spec.runs; ++r) {
    jobs.push_back([&ini, &spec, &baseline_bytes, r] {
      return execute_run(ini, spec, r, baseline_bytes);
    });
  }
  std::vector<RunRow> rows = run_parallel_jobs<RunRow>(std::move(jobs));

  for (RunRow& row : rows) {
    if (!row.converged) ++out.non_converged;
    out.conservation_violations += row.conservation_violations;
    out.total_recoveries += row.recoveries;
    out.total_escalations += row.escalations;
    out.total_bound_violations += row.bound_violations;
    out.lines.push_back(std::move(row.line));
  }
  return out;
}

std::string campaign_replay_ini(const IniFile& ini,
                                std::uint64_t run_index) {
  const CampaignSpec spec = parse_campaign_spec(ini);
  AXIHC_CHECK_MSG(run_index < spec.runs,
                  "run " << run_index << " out of range (campaign has "
                         << spec.runs << " runs)");
  const FaultScenario scenario = campaign_scenario(spec, run_index);

  std::ostringstream os;
  os << "; standalone replay of campaign run " << run_index
     << " (campaign seed " << spec.seed << ")\n";
  bool saw_observe = false;
  for (const IniSection& s : ini.sections()) {
    if (s.name() == "campaign") continue;
    os << "[" << s.name() << "]\n";
    for (const auto& [key, value] : s.entries()) {
      // The campaign overrides the horizon and owns the injector seed.
      if (s.name() == "system" && (key == "fault_seed" || key == "cycles")) {
        continue;
      }
      // Campaign runs always audit; the replay must elaborate the same
      // observability objects or its digest diverges from the row's.
      if (s.name() == "observe" && key == "latency_audit") continue;
      os << key << " = " << value << "\n";
    }
    if (s.name() == "system") {
      os << "cycles = " << spec.cycles << "\n";
      os << "fault_seed = " << scenario.seed << "\n";
    }
    if (s.name() == "observe") {
      saw_observe = true;
      os << "latency_audit = true\n";
    }
    os << "\n";
  }
  if (!saw_observe) {
    os << "[observe]\n";
    os << "latency_audit = true\n\n";
  }
  for (std::size_t i = 0; i < scenario.faults.size(); ++i) {
    const FaultSpec& f = scenario.faults[i];
    os << "[fault" << i << "]\n";
    os << "kind = " << fault_kind_name(f.kind) << "\n";
    os << "port = " << f.port << "\n";
    os << "start = " << f.start << "\n";
    os << "duration = " << f.duration << "\n";
    os << "param = " << f.param << "\n";
    char prob[64];
    std::snprintf(prob, sizeof prob, "%.17g", f.probability);
    os << "probability = " << prob << "\n\n";
  }
  return os.str();
}

}  // namespace axihc
