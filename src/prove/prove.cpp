#include "prove/prove.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "hyperconnect/config.hpp"

namespace axihc {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string quoted(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

/// ceil(a / b) for b >= 1.
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

// ---------------------------------------------------------------------------
// deadlock-freedom: cycle analysis over the waits-for graph

ProveCheck check_deadlock(const ProveInput& in) {
  ProveCheck c;
  c.id = "deadlock-freedom";

  // Index the nodes; edges may reference endpoints the caller never listed
  // explicitly (hand-built inputs), which simply become nodes.
  std::map<std::string, std::size_t> index;
  std::vector<std::string> names;
  const auto intern = [&](const std::string& name) {
    const auto [it, fresh] = index.emplace(name, names.size());
    if (fresh) names.push_back(name);
    return it->second;
  };
  for (const std::string& n : in.nodes) intern(n);
  std::vector<std::vector<std::size_t>> adj;
  for (const ProveEdge& e : in.edges) {
    const std::size_t from = intern(e.from);
    const std::size_t to = intern(e.to);
    adj.resize(names.size());
    adj[from].push_back(to);
  }
  adj.resize(names.size());

  // Iterative three-color DFS; a back edge to an in-progress node is a
  // waits-for cycle, reported as the certificate's counterexample.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(names.size(), kWhite);
  std::vector<std::size_t> parent(names.size(), SIZE_MAX);
  std::vector<std::size_t> cycle;
  for (std::size_t root = 0; root < names.size() && cycle.empty(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    color[root] = kGray;
    while (!stack.empty() && cycle.empty()) {
      auto& [node, next] = stack.back();
      if (next >= adj[node].size()) {
        color[node] = kBlack;
        stack.pop_back();
        continue;
      }
      const std::size_t to = adj[node][next++];
      if (color[to] == kGray) {
        // Unwind node -> ... -> to along the parent chain.
        cycle.push_back(to);
        for (std::size_t at = node; at != to; at = parent[at]) {
          cycle.push_back(at);
        }
        std::reverse(cycle.begin(), cycle.end());
        cycle.push_back(to);  // close the loop for readability
      } else if (color[to] == kWhite) {
        color[to] = kGray;
        parent[to] = node;
        stack.emplace_back(to, 0);
      }
    }
  }

  c.facts.emplace_back("nodes", std::to_string(names.size()));
  c.facts.emplace_back("edges", std::to_string(in.edges.size()));
  if (cycle.empty()) {
    c.verdict = ProveVerdict::kProven;
    std::ostringstream os;
    os << "waits-for graph is acyclic (" << names.size() << " endpoints, "
       << in.edges.size()
       << " dependency edges incl. owed-completion back-edges): every "
          "queue drains toward a sink, so no set of full queues can wait "
          "on itself";
    c.detail = os.str();
  } else {
    c.verdict = ProveVerdict::kDisproved;
    std::ostringstream path;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i != 0) path << " -> ";
      path << names[cycle[i]];
    }
    c.detail = "waits-for cycle found: " + path.str() +
               " — each endpoint's progress requires the next, so a state "
               "with all of them blocked never drains";
    c.facts.emplace_back("cycle", quoted(path.str()));
  }
  return c;
}

// ---------------------------------------------------------------------------
// efifo-backlog: arrival curves vs the reservation / round-robin service

ProveCheck check_backlog(const ProveInput& in,
                         std::vector<ProveBacklogBound>& out) {
  ProveCheck c;
  c.id = "efifo-backlog";
  if (!in.hyperconnect) {
    c.verdict = ProveVerdict::kUnmodeled;
    c.detail =
        "SmartConnect baseline: no eFIFO structure to bound (the paper's "
        "predictability analysis does not cover it)";
    return c;
  }

  std::vector<std::uint32_t> budgets = in.analysis.budgets;
  budgets.resize(in.num_ports, 0);
  const bool reservation_on = in.analysis.reservation_period != 0;
  HcAnalysisConfig feas = in.analysis;
  feas.budgets = budgets;
  const bool feasible =
      reservation_on && reservation_feasible(feas, in.platform);

  bool any_backpressure = false;
  bool curve_applied = false;
  std::uint64_t worst_total = 0;
  for (std::size_t p = 0; p < in.has.size(); ++p) {
    const ProveHaModel& ha = in.has[p];
    // Flow-control demand: every queued AR/AW is an in-flight request of
    // this HA, every queued W/R beat belongs to one, so the outstanding
    // limit caps each queue's occupancy regardless of service timing.
    std::uint64_t demand_ar = ha.reads ? ha.max_outstanding : 0;
    std::uint64_t demand_aw = ha.writes ? ha.max_outstanding : 0;

    // Arrival-curve refinement for paced single-direction HAs under a
    // feasible reservation: arrivals obey the leaky bucket of 1 request
    // per gap+1 cycles, and the supply curve guarantees
    // floor(budget / subs-per-request) request completions per period once
    // service starts. When the guaranteed service rate strictly exceeds
    // the arrival rate, the backlog peaks before the first supply period
    // completes: at most ceil(period / (gap+1)) arrivals plus one
    // in-service request.
    if (feasible && ha.gap_cycles > 0 && ha.reads != ha.writes &&
        budgets[p] > 0) {
      const std::uint32_t subs =
          sub_transaction_count(in.analysis, ha.burst_beats);
      const std::uint64_t service_per_period = budgets[p] / subs;
      const std::uint64_t arrivals_per_period =
          ceil_div(in.analysis.reservation_period, ha.gap_cycles + 1);
      if (service_per_period >= arrivals_per_period + 1) {
        const std::uint64_t curve = arrivals_per_period + 1;
        std::uint64_t& demand = ha.reads ? demand_ar : demand_aw;
        if (curve < demand) {
          demand = curve;
          curve_applied = true;
        }
      }
    }

    ProveBacklogBound b;
    b.ar = std::min<std::uint64_t>(demand_ar, in.ar_depth);
    b.aw = std::min<std::uint64_t>(demand_aw, in.aw_depth);
    b.w = std::min<std::uint64_t>(demand_aw * ha.burst_beats, in.w_depth);
    b.r = std::min<std::uint64_t>(demand_ar * ha.burst_beats, in.r_depth);
    b.b = std::min<std::uint64_t>(demand_aw, in.b_depth);
    b.total = b.ar + b.aw + b.w + b.r + b.b;
    b.backpressure = demand_ar > in.ar_depth || demand_aw > in.aw_depth ||
                     demand_aw * ha.burst_beats > in.w_depth ||
                     demand_ar * ha.burst_beats > in.r_depth;
    any_backpressure |= b.backpressure;
    worst_total = std::max(worst_total, b.total);
    out.push_back(b);
  }
  // Ports with no attached HA receive no traffic: zero backlog.
  out.resize(in.num_ports);

  c.verdict = ProveVerdict::kProven;
  c.facts.emplace_back("worst_port_backlog", std::to_string(worst_total));
  c.facts.emplace_back("backpressure",
                       any_backpressure ? "true" : "false");
  c.facts.emplace_back("arrival_curve_applied",
                       curve_applied ? "true" : "false");
  std::ostringstream os;
  os << "worst-case per-port eFIFO occupancy " << worst_total
     << " entries across the five channel queues (flow-control demand from "
        "per-HA outstanding limits"
     << (curve_applied ? ", tightened by the arrival/service-curve backlog"
                       : "")
     << ", clamped to configured depths)";
  if (any_backpressure) {
    os << "; request-side demand exceeds the AR/AW depth on at least one "
          "port, so the eFIFO always-ready premise is not certified "
          "(back-pressure, not overflow)";
  }
  c.detail = os.str();
  return c;
}

// ---------------------------------------------------------------------------
// reservation: starvation-freedom, feasibility, ID headroom

ProveCheck check_reservation(const ProveInput& in, ProveReport& report) {
  ProveCheck c;
  c.id = "reservation";
  if (!in.hyperconnect) {
    c.verdict = ProveVerdict::kUnmodeled;
    c.detail = "SmartConnect baseline: no reservation unit to analyse";
    return c;
  }

  std::vector<std::uint32_t> budgets = in.analysis.budgets;
  budgets.resize(in.num_ports, 0);
  report.reservation_on = in.analysis.reservation_period != 0;

  std::vector<std::string> problems;

  // ID headroom under the out-of-order ID extension: the port index is
  // packed above bit kIdPortShift, so a wider HA-side ID would alias ports.
  if (in.out_of_order && in.id_bits > kIdPortShift) {
    std::ostringstream os;
    os << "HA-side AxID width " << in.id_bits
       << " exceeds the ID-extension boundary (kIdPortShift = "
       << kIdPortShift
       << "): extended IDs alias across ports and responses misroute";
    problems.push_back(os.str());
    c.facts.emplace_back("id_headroom", "false");
  } else {
    c.facts.emplace_back("id_headroom", "true");
  }

  if (!report.reservation_on) {
    c.facts.emplace_back("reservation", "\"off\"");
    report.reservation_feasible = true;
    if (problems.empty()) {
      c.verdict = ProveVerdict::kProven;
      c.detail =
          "reservation disabled: fixed-granularity round-robin alone "
          "guarantees every backlogged port a grant each round "
          "(starvation-free by construction)";
    }
  } else {
    // Starvation: the central unit recharges a zero budget to zero, so the
    // TS never issues for that port again — an attached HA wedges forever.
    for (std::size_t p = 0; p < in.has.size(); ++p) {
      if (budgets[p] != 0) continue;
      std::ostringstream os;
      os << "port " << p << " (" << in.has[p].name
         << ") has budget 0 under an active reservation (period "
         << in.analysis.reservation_period
         << "): the transaction supervisor never issues for it, so the "
            "attached HA starves";
      problems.push_back(os.str());
    }

    HcAnalysisConfig feas = in.analysis;
    feas.budgets = budgets;
    report.reservation_feasible = reservation_feasible(feas, in.platform);
    const std::uint64_t demand = reservation_demand(feas, in.platform);
    report.reservation_demand = demand;

    c.facts.emplace_back("reservation", "\"on\"");
    {
      // The certificate must state the plan it certifies: two plans with
      // equal total demand are different guarantees per port.
      std::ostringstream os;
      os << "[";
      for (std::size_t p = 0; p < budgets.size(); ++p) {
        os << (p != 0 ? "," : "") << budgets[p];
      }
      os << "]";
      c.facts.emplace_back("budgets", os.str());
    }
    c.facts.emplace_back("period",
                         std::to_string(in.analysis.reservation_period));
    c.facts.emplace_back("demand", std::to_string(demand));
    c.facts.emplace_back("feasible",
                         report.reservation_feasible ? "true" : "false");
    if (problems.empty()) {
      c.verdict = ProveVerdict::kProven;
      std::ostringstream os;
      os << "every attached port has a nonzero budget (starvation-free); "
         << "plan demand " << demand << " cycles per " <<
          in.analysis.reservation_period << "-cycle period ("
         << (report.reservation_feasible
                 ? "feasible: the supply-bound WCLA form applies"
                 : "overcommitted: budgets cannot all be served at "
                   "worst-case memory timing, so only the composite "
                   "supply+arbitration bound is sound — see the "
                   "reservation-overcommit lint warning");
      os << ")";
      c.detail = os.str();
    }
  }

  if (!problems.empty()) {
    c.verdict = ProveVerdict::kDisproved;
    std::ostringstream os;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      if (i != 0) os << "; ";
      os << problems[i];
    }
    c.detail = os.str();
  }
  return c;
}

// ---------------------------------------------------------------------------
// wcla-bound: boundedness classification + per-port bounds

ProveCheck check_wcla(const ProveInput& in, ProveReport& report) {
  ProveCheck c;
  c.id = "wcla-bound";

  std::vector<std::string> excluded;
  if (!in.hyperconnect) excluded.emplace_back("SmartConnect interconnect");
  if (in.out_of_order) {
    excluded.emplace_back("out-of-order ID-extension mode");
  }
  if (!in.in_order_memory) {
    excluded.emplace_back("non-in-order (FR-FCFS) memory scheduling");
  }
  if (in.ps_stall) excluded.emplace_back("PS-originated stall interference");
  if (!excluded.empty()) {
    c.verdict = ProveVerdict::kUnmodeled;
    std::ostringstream os;
    os << "no analytic latency bound for this configuration (";
    for (std::size_t i = 0; i < excluded.size(); ++i) {
      if (i != 0) os << ", ";
      os << excluded[i];
    }
    os << ") — the same exclusions as the runtime latency auditor";
    c.detail = os.str();
    c.facts.emplace_back("modeled", "false");
    return c;
  }

  HcAnalysisConfig acfg = in.analysis;
  acfg.budgets.resize(in.num_ports, 0);
  const bool reservation_on = acfg.reservation_period != 0;
  Cycle worst = 0;
  bool starved = false;
  for (std::size_t p = 0; p < in.has.size(); ++p) {
    const ProveHaModel& ha = in.has[p];
    if (reservation_on && acfg.budgets[p] == 0) {
      // No finite bound exists for a starved port; the reservation check
      // disproves the system, this check just refuses to certify a number.
      report.wcrt_read.push_back(0);
      report.wcrt_write.push_back(0);
      starved = true;
      continue;
    }
    const Cycle rd =
        ha.reads ? audit_wcrt_read(acfg, in.platform,
                                   static_cast<PortIndex>(p), ha.burst_beats)
                 : 0;
    const Cycle wr = ha.writes
                         ? audit_wcrt_write(acfg, in.platform,
                                            static_cast<PortIndex>(p),
                                            ha.burst_beats)
                         : 0;
    report.wcrt_read.push_back(rd);
    report.wcrt_write.push_back(wr);
    worst = std::max({worst, rd, wr});
  }

  c.facts.emplace_back("modeled", "true");
  c.facts.emplace_back("worst_wcrt", std::to_string(worst));
  if (starved) {
    c.verdict = ProveVerdict::kDisproved;
    c.detail =
        "a zero-budget port under an active reservation has no finite "
        "latency bound (see the reservation check)";
  } else {
    c.verdict = ProveVerdict::kProven;
    std::ostringstream os;
    os << "WCLA model covers this configuration; worst accept-to-complete "
          "bound over attached ports: "
       << worst
       << " cycles (analysis::audit_wcrt_*, the same bounds the runtime "
          "latency auditor enforces per transaction)";
    c.detail = os.str();
  }
  return c;
}

}  // namespace

const char* to_string(ProveVerdict verdict) {
  switch (verdict) {
    case ProveVerdict::kProven:
      return "proven";
    case ProveVerdict::kDisproved:
      return "disproved";
    case ProveVerdict::kUnmodeled:
      return "unmodeled";
  }
  return "?";
}

ProveVerdict ProveReport::verdict() const {
  ProveVerdict v = ProveVerdict::kProven;
  for (const ProveCheck& c : checks) {
    if (c.verdict == ProveVerdict::kDisproved) return c.verdict;
    if (c.verdict == ProveVerdict::kUnmodeled) v = c.verdict;
  }
  return v;
}

std::int64_t ProveReport::static_backlog_bound() const {
  const ProveCheck* c = check("efifo-backlog");
  if (c == nullptr || c->verdict == ProveVerdict::kUnmodeled) return -1;
  std::uint64_t worst = 0;
  for (const ProveBacklogBound& b : backlog) {
    worst = std::max(worst, b.total);
  }
  return static_cast<std::int64_t>(worst);
}

const ProveCheck* ProveReport::check(const std::string& id) const {
  for (const ProveCheck& c : checks) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

std::string ProveReport::certificate_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"axihc-prove-v1\",\"verdict\":\""
     << to_string(verdict()) << "\",\"static_backlog_bound\":"
     << static_backlog_bound() << ",\"reservation\":{\"on\":"
     << (reservation_on ? "true" : "false") << ",\"feasible\":"
     << (reservation_feasible ? "true" : "false") << ",\"demand\":"
     << reservation_demand << "},\"checks\":[";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const ProveCheck& c = checks[i];
    if (i != 0) os << ",";
    os << "{\"id\":\"" << c.id << "\",\"verdict\":\""
       << to_string(c.verdict) << "\",\"detail\":\""
       << json_escape(c.detail) << "\"";
    for (const auto& [key, value] : c.facts) {
      os << ",\"" << key << "\":" << value;
    }
    os << "}";
  }
  os << "],\"ports\":[";
  const std::size_t ports =
      std::max(backlog.size(), wcrt_read.size());
  for (std::size_t p = 0; p < ports; ++p) {
    if (p != 0) os << ",";
    os << "{\"port\":" << p;
    if (p < backlog.size()) {
      const ProveBacklogBound& b = backlog[p];
      os << ",\"backlog\":{\"ar\":" << b.ar << ",\"aw\":" << b.aw
         << ",\"w\":" << b.w << ",\"r\":" << b.r << ",\"b\":" << b.b
         << ",\"total\":" << b.total << ",\"backpressure\":"
         << (b.backpressure ? "true" : "false") << "}";
    }
    if (p < wcrt_read.size()) {
      os << ",\"wcrt_read\":" << wcrt_read[p]
         << ",\"wcrt_write\":" << wcrt_write[p];
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::uint64_t ProveReport::certificate_digest() const {
  // FNV-1a over the certificate text: cheap, stable, and good enough to
  // fingerprint a certificate inside a cache entry (the cache key itself
  // already carries the collision-relevant config + code digests).
  std::uint64_t h = 14695981039346656037ull;
  for (const char ch : certificate_json()) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

void ProveReport::write_text(std::ostream& os) const {
  for (const ProveCheck& c : checks) {
    os << "  [" << to_string(c.verdict) << "] " << c.id << ": " << c.detail
       << "\n";
  }
  os << "verdict: " << to_string(verdict());
  const std::int64_t bound = static_backlog_bound();
  if (bound >= 0) os << "; static backlog bound: " << bound;
  os << "\n";
}

ProveReport prove(const ProveInput& in) {
  AXIHC_CHECK_MSG(in.num_ports >= 1, "prove: a system needs ports");
  AXIHC_CHECK_MSG(in.has.size() <= in.num_ports,
                  "prove: more HA models than ports");
  ProveReport report;
  report.checks.push_back(check_deadlock(in));
  report.checks.push_back(check_backlog(in, report.backlog));
  report.checks.push_back(check_reservation(in, report));
  report.checks.push_back(check_wcla(in, report));
  return report;
}

}  // namespace axihc
