// axihc-prove — static predictability certification of an elaborated
// system (layer 2 of the static-analysis wall, between axihc-lint and the
// cycle-accurate simulation; see docs/STATIC_ANALYSIS.md).
//
// The paper's central claim is that the HyperConnect's slim architecture is
// "prone to worst-case timing analysis". src/analysis/wcla derives the
// bounds and the PR 7 auditor checks them *dynamically*, transaction by
// transaction. This module closes the remaining gap: with ZERO simulated
// cycles it either proves a configuration's predictability obligations or
// refutes them, and emits a machine-readable certificate either way.
//
// Checks (ids as reported):
//   deadlock-freedom   cycle analysis over the channel/endpoint waits-for
//                      graph (request edges, response edges, and the
//                      owed-completion back-edges from outstanding-slot
//                      recycling). A cycle of full queues could stall
//                      forever; acyclic means every queue drains to a sink.
//   efifo-backlog      per-port worst-case eFIFO occupancy from HA arrival
//                      curves (burst/outstanding/gap of each HA model,
//                      equalization caps) against the reservation /
//                      round-robin service curve, checked against the
//                      configured data_depth/addr_depth. Request-side
//                      demand above the AR/AW depth is flagged as
//                      back-pressure (the eFIFO "always ready" premise is
//                      then not certified).
//   reservation        reservation-plan analysis: per-port
//                      starvation-freedom (a port with a zero budget under
//                      an active reservation is never served — disproved),
//                      feasibility (sum of budget x worst-case service vs
//                      the recharge period; overcommitted plans keep sound
//                      latency bounds but lose the supply-bound form, so
//                      they warn instead of disprove), and ID headroom vs
//                      kIdPortShift under the out-of-order ID extension.
//   wcla-bound         boundedness classification: configurations the WCLA
//                      model covers get per-port worst-case latency bounds
//                      (analysis::audit_wcrt_*); SmartConnect,
//                      out-of-order / FR-FCFS memory and PS-stall
//                      interference are flagged unmodeled, exactly the
//                      configurations the PR 7 auditor excludes.
//
// Verdicts: kDisproved on a hard refutation (deadlock cycle, starvation,
// ID overflow); kUnmodeled when a check has no model for the
// configuration; kProven otherwise. Soundness contract: on a kProven
// system, every certified bound dominates anything a simulation of the
// same configuration can observe — the test suite cross-validates this
// over the full pareto1k grid (tests/test_prove.cpp).
//
// Wiring: `axihc --prove/--prove-json` (tools/axihc.cpp),
// ConfiguredSystem::prove() assembles the ProveInput from an elaborated
// INI system, ConfiguredSystem::lint() folds disproofs in as strict-fail
// warnings, and the sweep runner screens every cell statically before
// spending simulation time on it (src/sweep/runner.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "analysis/wcla.hpp"
#include "common/types.hpp"

namespace axihc {

enum class ProveVerdict : std::uint8_t { kProven, kDisproved, kUnmodeled };

[[nodiscard]] const char* to_string(ProveVerdict verdict);

/// The arrival model of one attached hardware accelerator, extracted from
/// its configuration (ConfiguredSystem::add_ha records one per [haN]).
struct ProveHaModel {
  std::string name;  // config section, e.g. "ha0"
  std::string type;  // dma | traffic | dnn
  /// Burst length (beats) of the requests this HA issues.
  BeatCount burst_beats = 16;
  /// HA-side in-flight limit (requests issued but not completed).
  std::uint32_t max_outstanding = 8;
  /// Idle cycles between consecutive issues (traffic generators; 0 =
  /// greedy). The leaky-bucket arrival rate is 1 request per gap+1 cycles.
  Cycle gap_cycles = 0;
  bool reads = true;
  bool writes = false;
};

/// One waits-for edge: `from`'s progress can require `to`'s progress.
struct ProveEdge {
  std::string from;
  std::string to;
};

/// Everything the prover needs about an elaborated system. Assembled by
/// ConfiguredSystem::prove(); tests may hand-build adversarial inputs the
/// INI surface cannot express (e.g. a cyclic waits-for graph).
struct ProveInput {
  bool hyperconnect = true;  // false: SmartConnect baseline (unmodeled)
  std::uint32_t num_ports = 2;
  /// WCLA-side view (nominal burst, reservation plan, outstanding caps).
  HcAnalysisConfig analysis{};
  AnalysisPlatform platform{};
  /// Port-side eFIFO queue depths (AxiLinkConfig of the port links).
  std::size_t ar_depth = 4;
  std::size_t aw_depth = 4;
  std::size_t w_depth = 32;
  std::size_t r_depth = 32;
  std::size_t b_depth = 4;
  bool out_of_order = false;
  std::uint32_t id_bits = 16;
  bool in_order_memory = true;
  bool ps_stall = false;
  /// Attached HAs, index = port. May be shorter than num_ports (idle
  /// ports contribute no arrivals and cannot starve).
  std::vector<ProveHaModel> has{};
  /// Waits-for graph over named endpoints.
  std::vector<std::string> nodes{};
  std::vector<ProveEdge> edges{};
};

/// One check's verdict with its machine-readable evidence. Fact values are
/// pre-rendered JSON (numbers, strings with quotes, booleans) so the
/// certificate serializer can embed them verbatim.
struct ProveCheck {
  std::string id;
  ProveVerdict verdict = ProveVerdict::kProven;
  std::string detail;
  std::vector<std::pair<std::string, std::string>> facts;
};

/// Certified worst-case eFIFO occupancy of one port, per channel queue.
/// Each entry is min(arrival-side demand, configured depth), so the total
/// is sound against the observed peak of Efifo::level() by construction of
/// the demand bounds (flow control: a queued element is an in-flight
/// request/beat, capped by the HA's outstanding limit, tightened by the
/// arrival/service-curve backlog when the reservation supply outpaces the
/// arrival rate).
struct ProveBacklogBound {
  std::uint64_t ar = 0;
  std::uint64_t aw = 0;
  std::uint64_t w = 0;
  std::uint64_t r = 0;
  std::uint64_t b = 0;
  std::uint64_t total = 0;
  /// Request-side demand exceeded the AR/AW depth: the queue itself stays
  /// bounded by its depth, but the "always ready" eFIFO premise is not
  /// certified (the HA will see back-pressure).
  bool backpressure = false;
};

struct ProveReport {
  std::vector<ProveCheck> checks;
  /// Per attached port (empty when the backlog check is unmodeled).
  std::vector<ProveBacklogBound> backlog;
  /// Per attached port, accept-to-complete WCLA bounds at the HA's burst
  /// length (0 for a starved port; empty when wcla-bound is unmodeled).
  std::vector<Cycle> wcrt_read;
  std::vector<Cycle> wcrt_write;
  bool reservation_on = false;
  bool reservation_feasible = true;
  std::uint64_t reservation_demand = 0;  // cycles needed per period

  /// Disproved if any check is disproved; else unmodeled if any check is
  /// unmodeled; else proven.
  [[nodiscard]] ProveVerdict verdict() const;
  [[nodiscard]] bool disproved() const {
    return verdict() == ProveVerdict::kDisproved;
  }
  /// Max certified per-port backlog total, or -1 when unmodeled.
  [[nodiscard]] std::int64_t static_backlog_bound() const;
  [[nodiscard]] const ProveCheck* check(const std::string& id) const;

  /// The machine-readable certificate (one JSON object).
  [[nodiscard]] std::string certificate_json() const;
  /// FNV-1a digest of certificate_json(). Sweep cache entries store it
  /// under the (config, code-version) key, so certificates invalidate with
  /// the code-version digest like every other cached measurement.
  [[nodiscard]] std::uint64_t certificate_digest() const;
  /// Human-readable listing, one check per line plus the verdict summary.
  void write_text(std::ostream& os) const;
};

/// Runs every check. Pure function of the input: no simulation, no global
/// state, deterministic across threads/backends by construction.
[[nodiscard]] ProveReport prove(const ProveInput& in);

}  // namespace axihc
