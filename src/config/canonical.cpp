#include "config/canonical.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "sim/digest.hpp"

namespace axihc {

namespace {

/// Default values per (section pattern, key). A pattern ending in '*'
/// matches by prefix ([ha0], [ha1], ... via "ha*"). The default string may
/// list '|'-separated alternatives when several spellings build the same
/// structure (e.g. [hyperconnect] data_depth: 0 = "unset" and 32 = the
/// AxiLinkConfig default depth are the same hardware).
struct DefaultEntry {
  const char* section;
  const char* key;
  const char* value;
};

constexpr DefaultEntry kDefaults[] = {
    {"system", "platform", "zcu102"},
    {"system", "interconnect", "hyperconnect"},
    {"system", "ports", "2"},
    {"system", "cycles", "1000000"},
    {"system", "mem_bytes", "0"},
    {"system", "fault_seed", "0"},
    {"hyperconnect", "nominal_burst", "16"},
    {"hyperconnect", "max_outstanding", "4"},
    {"hyperconnect", "reservation_period", "0"},
    {"hyperconnect", "prot_timeout", "0"},
    {"hyperconnect", "out_of_order", "false"},
    {"hyperconnect", "arbitration", "round_robin"},
    {"hyperconnect", "data_depth", "0|32"},
    {"hyperconnect", "addr_depth", "0|4"},
    {"observe", "trace", "false"},
    {"observe", "metrics", "false"},
    {"observe", "sample_every", "1000"},
    {"observe", "trace_capacity", "0"},
    {"observe", "latency_audit", "false"},
    {"observe", "flight_capacity", "4096"},
    {"recovery", "poll_period", "500"},
    {"recovery", "max_txns_per_poll", "0"},
    {"recovery", "backoff_base", "1000"},
    {"recovery", "backoff_max", "16000"},
    {"recovery", "probation_window", "2000"},
    {"recovery", "max_attempts", "4"},
    {"recovery", "drain_timeout", "4000"},
    {"ha*", "burst", "16"},
    {"ha*", "outstanding", "8"},
    {"ha*", "mode", "readwrite"},
    {"ha*", "bytes_per_job", "1048576"},
    {"ha*", "max_jobs", "0"},
    {"ha*", "network", "googlenet"},
    {"ha*", "scale", "1"},
    {"ha*", "macs_per_cycle", "256"},
    {"ha*", "max_frames", "0"},
    {"ha*", "direction", "read"},
    {"ha*", "gap", "0"},
    {"ha*", "qos", "0"},
    {"fault*", "port", "0"},
    {"fault*", "start", "0"},
    {"fault*", "duration", "0"},
    {"fault*", "param", "0"},
    {"campaign", "runs", "100"},
    {"campaign", "seed", "1"},
    {"campaign", "cycles", "0"},
    {"campaign", "min_faults", "1"},
    {"campaign", "max_faults", "3"},
    {"sweep", "name", "sweep"},
    {"sweep", "cycles", "0"},
};

bool pattern_matches(const std::string& section, const char* pattern) {
  const std::string p = pattern;
  if (!p.empty() && p.back() == '*') {
    return section.rfind(p.substr(0, p.size() - 1), 0) == 0;
  }
  return section == p;
}

/// True when the canonical value equals the builder default for this key —
/// the key can be dropped without changing the built system.
bool is_default(const std::string& section, const std::string& key,
                const std::string& canonical) {
  for (const DefaultEntry& d : kDefaults) {
    if (d.key != key || !pattern_matches(section, d.section)) continue;
    std::istringstream alts{std::string(d.value)};
    std::string alt;
    while (std::getline(alts, alt, '|')) {
      if (canonical == alt) return true;
    }
    return false;
  }
  return false;
}

}  // namespace

std::string canonical_value(const std::string& raw) {
  // Tokenize on whitespace (the parser already trimmed the ends), reprint
  // fully-numeric tokens in decimal, rejoin with single spaces.
  std::istringstream is(raw);
  std::string token;
  std::vector<std::string> tokens;
  while (is >> token) {
    std::size_t used = 0;
    try {
      const std::uint64_t v = std::stoull(token, &used, 0);
      if (used == token.size()) token = std::to_string(v);
    } catch (const std::exception&) {
      // non-numeric token: keep verbatim
    }
    tokens.push_back(token);
  }
  std::string joined;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i != 0) joined += ' ';
    joined += tokens[i];
  }
  if (joined == "yes" || joined == "on") return "true";
  if (joined == "no" || joined == "off") return "false";
  return joined;
}

std::string canonical_ini(const IniFile& ini) {
  // Stable sort keeps file order among equal names ([haN] names are
  // distinct, so prefix-order semantics survive the sort).
  std::vector<const IniSection*> sections;
  sections.reserve(ini.sections().size());
  for (const IniSection& s : ini.sections()) sections.push_back(&s);
  std::stable_sort(sections.begin(), sections.end(),
                   [](const IniSection* a, const IniSection* b) {
                     return a->name() < b->name();
                   });

  std::ostringstream os;
  for (const IniSection* s : sections) {
    os << "[" << s->name() << "]\n";
    // First occurrence per key (what get_* reads), then sort by key.
    std::vector<std::pair<std::string, std::string>> kept;
    for (const auto& [key, value] : s->entries()) {
      const bool seen =
          std::any_of(kept.begin(), kept.end(),
                      [&key](const auto& kv) { return kv.first == key; });
      if (seen) continue;
      const std::string canon = canonical_value(value);
      if (is_default(s->name(), key, canon)) continue;
      kept.emplace_back(key, canon);
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (const auto& [key, value] : kept) {
      os << key << " = " << value << "\n";
    }
  }
  return os.str();
}

std::uint64_t config_digest(const IniFile& ini) {
  StateDigest d;
  d.mix(canonical_ini(ini));
  return d.value();
}

std::uint64_t config_digest(const std::string& ini_text) {
  return config_digest(IniFile::parse(ini_text));
}

}  // namespace axihc
