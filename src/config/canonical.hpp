// Canonical config serialization + digest (`axihc --config-digest`).
//
// Two experiment descriptions that build the SAME system must digest to the
// SAME 64-bit value — this is what makes the sweep result cache
// (src/sweep/runner.hpp) safe to key on configs. Canonicalization:
//
//  * sections are sorted by name (stable, so repeated names keep file
//    order); entries within a section are sorted by key;
//  * duplicate keys collapse to the FIRST occurrence (the one every
//    IniSection::get_* lookup reads);
//  * values are whitespace-normalized (internal runs collapse to one
//    space) and numeric tokens are reprinted in decimal (0x40 == 64);
//    whole-value boolean synonyms normalize (yes/on -> true, no/off ->
//    false);
//  * keys whose normalized value equals the system builder's default for
//    that (section, key) are DROPPED — writing `ports = 2` explicitly does
//    not change the digest of a config that omitted it. Section headers are
//    never dropped (an empty [recovery] is not the same system as no
//    [recovery] at all).
//
// The default table must track src/config/system_builder.cpp (and the
// [campaign]/[sweep] spec parsers); tests/test_sweep.cpp pins
// representative entries.
#pragma once

#include <cstdint>
#include <string>

#include "config/ini.hpp"

namespace axihc {

/// One value in canonical form (whitespace/numeric/boolean normalization,
/// no default elision — that needs the section context).
[[nodiscard]] std::string canonical_value(const std::string& raw);

/// The full canonical text form described above.
[[nodiscard]] std::string canonical_ini(const IniFile& ini);

/// FNV-1a over canonical_ini(). Stable across key order, whitespace,
/// comments, numeric base, and explicitly-spelled defaults.
[[nodiscard]] std::uint64_t config_digest(const IniFile& ini);
[[nodiscard]] std::uint64_t config_digest(const std::string& ini_text);

}  // namespace axihc
