#include "config/ini.hpp"

#include <cctype>
#include <sstream>

#include "common/check.hpp"

namespace axihc {

namespace {
std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}
}  // namespace

void IniSection::set(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, value);
}

void IniSection::replace(const std::string& key, const std::string& value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  entries_.emplace_back(key, value);
}

bool IniSection::has(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

std::string IniSection::get_string(const std::string& key,
                                   const std::string& fallback) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return fallback;
}

std::uint64_t IniSection::get_u64(const std::string& key,
                                  std::uint64_t fallback) const {
  if (!has(key)) return fallback;
  const std::string raw = get_string(key);
  std::size_t used = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(raw, &used, 0);
  } catch (const std::exception&) {
    used = 0;
  }
  AXIHC_CHECK_MSG(used == raw.size() && !raw.empty(),
                  "[" << name_ << "] " << key << " = '" << raw
                      << "' is not an unsigned integer");
  return value;
}

double IniSection::get_double(const std::string& key, double fallback) const {
  if (!has(key)) return fallback;
  const std::string raw = get_string(key);
  std::size_t used = 0;
  double value = 0;
  try {
    value = std::stod(raw, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  AXIHC_CHECK_MSG(used == raw.size() && !raw.empty(),
                  "[" << name_ << "] " << key << " = '" << raw
                      << "' is not a number");
  return value;
}

bool IniSection::get_bool(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  const std::string raw = get_string(key);
  if (raw == "true" || raw == "1" || raw == "yes" || raw == "on") return true;
  if (raw == "false" || raw == "0" || raw == "no" || raw == "off") {
    return false;
  }
  AXIHC_CHECK_MSG(false, "[" << name_ << "] " << key << " = '" << raw
                             << "' is not a boolean");
  return fallback;
}

std::vector<std::uint32_t> IniSection::get_u32_list(
    const std::string& key) const {
  std::vector<std::uint32_t> out;
  if (!has(key)) return out;
  std::istringstream is(get_string(key));
  std::string token;
  while (is >> token) {
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(token, &used, 0);
    } catch (const std::exception&) {
      used = 0;
    }
    AXIHC_CHECK_MSG(used == token.size(),
                    "[" << name_ << "] " << key << ": bad list element '"
                        << token << "'");
    out.push_back(static_cast<std::uint32_t>(value));
  }
  return out;
}

IniFile IniFile::parse(const std::string& text) {
  IniFile file;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments (';' or '#').
    for (const char marker : {';', '#'}) {
      const auto pos = line.find(marker);
      if (pos != std::string::npos) line.erase(pos);
    }
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;

    if (trimmed.front() == '[') {
      AXIHC_CHECK_MSG(trimmed.back() == ']',
                      "ini line " << line_no << ": unterminated section");
      const std::string name = trim(trimmed.substr(1, trimmed.size() - 2));
      AXIHC_CHECK_MSG(!name.empty(), "ini line " << line_no
                                                 << ": empty section name");
      file.sections_.emplace_back(name);
      continue;
    }

    const auto eq = trimmed.find('=');
    AXIHC_CHECK_MSG(eq != std::string::npos,
                    "ini line " << line_no << ": expected key = value");
    AXIHC_CHECK_MSG(!file.sections_.empty(),
                    "ini line " << line_no << ": key outside any section");
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    AXIHC_CHECK_MSG(!key.empty(), "ini line " << line_no << ": empty key");
    file.sections_.back().set(key, value);
  }
  return file;
}

const IniSection* IniFile::section(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

IniSection* IniFile::mutable_section(const std::string& name) {
  for (auto& s : sections_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

IniSection& IniFile::add_section(const std::string& name) {
  sections_.emplace_back(name);
  return sections_.back();
}

IniSection& IniFile::get_or_add_section(const std::string& name) {
  if (IniSection* s = mutable_section(name)) return *s;
  return add_section(name);
}

std::vector<const IniSection*> IniFile::sections_with_prefix(
    const std::string& prefix) const {
  std::vector<const IniSection*> out;
  for (const auto& s : sections_) {
    if (s.name().rfind(prefix, 0) == 0) out.push_back(&s);
  }
  return out;
}

}  // namespace axihc
