#include "config/system_builder.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "hyperconnect/config.hpp"
#include "obs/chrome_trace.hpp"
#include "stats/table.hpp"

namespace axihc {

namespace {

Platform platform_by_name(const std::string& name) {
  if (name == "zcu102") return zcu102_platform();
  if (name == "zynq7020") return zynq7020_platform();
  AXIHC_CHECK_MSG(false, "unknown platform '" << name
                                              << "' (zcu102 | zynq7020)");
  return zcu102_platform();
}

DmaMode dma_mode_by_name(const std::string& name) {
  if (name == "read") return DmaMode::kRead;
  if (name == "write") return DmaMode::kWrite;
  if (name == "readwrite") return DmaMode::kReadWrite;
  if (name == "copy") return DmaMode::kCopy;
  AXIHC_CHECK_MSG(false, "unknown dma mode '"
                             << name << "' (read | write | readwrite | copy)");
  return DmaMode::kRead;
}

TrafficDirection direction_by_name(const std::string& name) {
  if (name == "read") return TrafficDirection::kRead;
  if (name == "write") return TrafficDirection::kWrite;
  if (name == "mixed") return TrafficDirection::kMixed;
  AXIHC_CHECK_MSG(false, "unknown traffic direction '"
                             << name << "' (read | write | mixed)");
  return TrafficDirection::kRead;
}

std::vector<DnnLayer> network_by_name(const std::string& name) {
  if (name == "googlenet") return googlenet_layers();
  if (name == "alexnet") return alexnet_layers();
  AXIHC_CHECK_MSG(false,
                  "unknown network '" << name << "' (googlenet | alexnet)");
  return {};
}

}  // namespace

ConfiguredSystem::ConfiguredSystem(const IniFile& ini) {
  build(ini, nullptr);
}

ConfiguredSystem::ConfiguredSystem(const IniFile& ini,
                                   const FaultScenario& scenario) {
  build(ini, &scenario);
}

void ConfiguredSystem::build(const IniFile& ini,
                             const FaultScenario* scenario_override) {
  const IniSection* system = ini.section("system");
  AXIHC_CHECK_MSG(system != nullptr, "config needs a [system] section");

  platform_ = platform_by_name(system->get_string("platform", "zcu102"));
  configured_cycles_ = system->get_u64("cycles", 1'000'000);

  SocConfig cfg;
  const std::string icn = system->get_string("interconnect", "hyperconnect");
  if (icn == "hyperconnect") {
    cfg.kind = InterconnectKind::kHyperConnect;
  } else if (icn == "smartconnect") {
    cfg.kind = InterconnectKind::kSmartConnect;
  } else {
    AXIHC_CHECK_MSG(false, "unknown interconnect '"
                               << icn
                               << "' (hyperconnect | smartconnect)");
  }
  cfg.num_ports =
      static_cast<std::uint32_t>(system->get_u64("ports", 2));
  cfg.mem = platform_.mem;

  // Bounded address decode: accesses beyond mem_bytes get DECERR.
  const std::uint64_t mem_bytes = system->get_u64("mem_bytes", 0);
  if (mem_bytes != 0) cfg.mem.mapped_ranges.push_back({0, mem_bytes});

  // [memN] sections: additional decode-map entries (base/bytes) for
  // scattered mapped regions. The lint address-map check flags overlaps.
  for (const IniSection* ms : ini.sections_with_prefix("mem")) {
    cfg.mem.mapped_ranges.push_back(
        {ms->get_u64("base", 0), ms->get_u64("bytes", 0)});
  }

  if (const IniSection* hc = ini.section("hyperconnect")) {
    cfg.hc.nominal_burst =
        static_cast<BeatCount>(hc->get_u64("nominal_burst", 16));
    cfg.hc.max_outstanding =
        static_cast<std::uint32_t>(hc->get_u64("max_outstanding", 4));
    cfg.hc.reservation_period = hc->get_u64("reservation_period", 0);
    cfg.hc.initial_budgets = hc->get_u32_list("budgets");
    cfg.hc.prot_timeout = hc->get_u64("prot_timeout", 0);
    cfg.hc.out_of_order = hc->get_bool("out_of_order", false);
    // eFIFO structural knobs (the fifo-depth ablation sweep): data_depth
    // sets the R/W queue depths, addr_depth the AR/AW queue depths, on the
    // port AND master eFIFOs. 0 keeps the AxiLinkConfig defaults (32 / 4).
    const std::uint64_t data_depth = hc->get_u64("data_depth", 0);
    if (data_depth != 0) {
      AXIHC_CHECK_MSG(data_depth >= 1, "[hyperconnect] data_depth >= 1");
      cfg.hc.port_link_cfg.r_depth = data_depth;
      cfg.hc.port_link_cfg.w_depth = data_depth;
      cfg.hc.master_link_cfg.r_depth = data_depth;
      cfg.hc.master_link_cfg.w_depth = data_depth;
    }
    const std::uint64_t addr_depth = hc->get_u64("addr_depth", 0);
    if (addr_depth != 0) {
      cfg.hc.port_link_cfg.ar_depth = addr_depth;
      cfg.hc.port_link_cfg.aw_depth = addr_depth;
      cfg.hc.master_link_cfg.ar_depth = addr_depth;
      cfg.hc.master_link_cfg.aw_depth = addr_depth;
    }
    if (hc->get_string("arbitration", "round_robin") == "qos_priority") {
      cfg.hc.arbitration = ArbitrationPolicy::kQosPriority;
    }
    if (cfg.hc.out_of_order) {
      cfg.mem.scheduling = MemScheduling::kFrFcfs;
      cfg.mem.id_order_mask = 0xFFFF0000;
    }
  }

  // [faultN] sections: mem_slverr windows configure the memory controller;
  // everything else becomes an injector fault spec. A scenario override
  // (campaign runs) replaces the file's fault description wholesale.
  if (scenario_override != nullptr) {
    AXIHC_CHECK_MSG(ini.sections_with_prefix("fault").empty(),
                    "a scenario override replaces all [faultN] sections — "
                    "remove them from the base config");
    for (const FaultSpec& spec : scenario_override->faults) {
      AXIHC_CHECK_MSG(spec.port < cfg.num_ports,
                      "scenario fault port " << spec.port << " out of range");
    }
    scenario_ = *scenario_override;
  } else {
    scenario_.seed = system->get_u64("fault_seed", 0);
    for (const IniSection* fs : ini.sections_with_prefix("fault")) {
      const std::string kind = fs->get_string("kind", "");
      if (kind == "mem_slverr") {
        cfg.mem.slverr_ranges.push_back(
            {fs->get_u64("base", 0), fs->get_u64("bytes", 4096)});
        continue;
      }
      const auto parsed = fault_kind_from_string(kind);
      AXIHC_CHECK_MSG(parsed.has_value(),
                      "[" << fs->name() << "] unknown fault kind '" << kind
                          << "'");
      FaultSpec spec;
      spec.kind = *parsed;
      spec.port = static_cast<PortIndex>(fs->get_u64("port", 0));
      AXIHC_CHECK_MSG(spec.port < cfg.num_ports,
                      "[" << fs->name() << "] port " << spec.port
                          << " out of range");
      spec.start = fs->get_u64("start", 0);
      spec.duration = fs->get_u64("duration", 0);
      spec.param = fs->get_u64("param", 0);
      spec.probability = fs->get_double("probability", 1.0);
      scenario_.faults.push_back(spec);
    }
  }

  soc_ = std::make_unique<SocSystem>(cfg);

  const auto ha_sections = ini.sections_with_prefix("ha");
  AXIHC_CHECK_MSG(!ha_sections.empty(),
                  "config needs at least one [haN] section");
  AXIHC_CHECK_MSG(ha_sections.size() <= cfg.num_ports,
                  "more [haN] sections (" << ha_sections.size()
                                          << ") than interconnect ports ("
                                          << cfg.num_ports << ")");
  for (PortIndex port = 0; port < ha_sections.size(); ++port) {
    add_ha(*ha_sections[port], port);
  }

  // [recovery] wants the masters built (the HA-reset hook targets them), so
  // it wires after the HA loop.
  if (const IniSection* rec = ini.section("recovery")) {
    AXIHC_CHECK_MSG(cfg.kind == InterconnectKind::kHyperConnect,
                    "[recovery] requires interconnect = hyperconnect "
                    "(the stack drives the HyperConnect control interface)");
    wire_recovery(*rec);
  }

  if (const IniSection* obs = ini.section("observe")) {
    observe_.trace = obs->get_bool("trace", false);
    observe_.metrics = obs->get_bool("metrics", false);
    observe_.sample_every = obs->get_u64("sample_every", 1000);
    observe_.trace_capacity =
        static_cast<std::size_t>(obs->get_u64("trace_capacity", 0));
    observe_.latency_audit = obs->get_bool("latency_audit", false);
    observe_.flight_capacity =
        static_cast<std::size_t>(obs->get_u64("flight_capacity", 4096));
    AXIHC_CHECK_MSG(observe_.sample_every >= 1,
                    "[observe] sample_every must be >= 1");
    AXIHC_CHECK_MSG(observe_.flight_capacity >= 1,
                    "[observe] flight_capacity must be >= 1");
  }

  soc_->sim().reset();
}

void ConfiguredSystem::wire_recovery(const IniSection& rec) {
  HyperConnect* hc = soc_->hyperconnect();
  AXIHC_CHECK(hc != nullptr);
  const std::uint32_t num_ports = soc_->config().num_ports;

  register_master_ =
      std::make_unique<RegisterMaster>("hv_rm", hc->control_link());
  driver_ = std::make_unique<HyperConnectDriver>(*register_master_,
                                                 num_ports);
  hypervisor_ = std::make_unique<Hypervisor>("hv", *driver_);

  RecoveryPolicy pol;
  pol.backoff_base = rec.get_u64("backoff_base", 1000);
  pol.backoff_max = rec.get_u64("backoff_max", 16000);
  pol.probation_window = rec.get_u64("probation_window", 2000);
  pol.max_attempts =
      static_cast<std::uint32_t>(rec.get_u64("max_attempts", 4));
  pol.drain_timeout = rec.get_u64("drain_timeout", 4000);
  recovery_ = std::make_unique<RecoveryManager>("recovery", *driver_, pol);
  hypervisor_->set_recovery(recovery_.get());

  // Baseline split = the [hyperconnect] budgets the hardware was built with
  // (missing entries are 0 = unthrottled); graceful degradation defends it.
  std::vector<std::uint32_t> baseline = soc_->config().hc.initial_budgets;
  baseline.resize(num_ports, 0);
  recovery_->set_baseline_budgets(baseline);

  // DPR-style HA reset at the FSM's Resetting step: abandon everything the
  // accelerator still has in flight (the flushed link will never deliver
  // those responses) and restart its job engine.
  recovery_->set_ha_reset([this](PortIndex p) {
    if (p < masters_.size()) masters_[p]->abandon_in_flight();
  });

  WatchdogPolicy wd;
  recovery_poll_period_ = rec.get_u64("poll_period", 500);
  AXIHC_CHECK_MSG(recovery_poll_period_ >= 1,
                  "[recovery] poll_period must be >= 1");
  recovery_probation_window_ = pol.probation_window;
  wd.poll_period = recovery_poll_period_;
  wd.max_txns_per_poll.assign(num_ports,
                              rec.get_u64("max_txns_per_poll", 0));
  wd.auto_isolate = true;
  wd.isolate_on_fault = true;
  hypervisor_->set_watchdog(std::move(wd));

  soc_->add(*register_master_);
  soc_->add(*hypervisor_);
  soc_->add(*recovery_);
}

void ConfiguredSystem::wire_observability() {
  observability_wired_ = true;
  trace_.enable(observe_.trace);
  trace_.set_capacity(observe_.trace_capacity);

  if (HyperConnect* hc = soc_->hyperconnect()) {
    hc->set_trace(&trace_);
    hc->register_metrics(registry_);
  }
  soc_->memory_controller().set_trace(&trace_);
  soc_->memory_controller().register_metrics(registry_);
  for (auto& m : masters_) {
    m->set_trace(&trace_);
    m->register_metrics(registry_);
  }
  if (hypervisor_) {
    hypervisor_->set_trace(&trace_);
    hypervisor_->register_metrics(registry_);
  }
  if (recovery_) {
    recovery_->set_trace(&trace_);
    recovery_->register_metrics(registry_);
  }

  // APM-style probe on the FPGA-PS link; its window is the sample period so
  // per-sample counter deltas line up with the probe's window series.
  probe_ = std::make_unique<BandwidthProbe>(
      "apm", soc_->interconnect().master_link(), observe_.sample_every);
  probe_->register_metrics(registry_);
  soc_->add(*probe_);

  // Trace-capacity drops as a first-class metric: a capped trace silently
  // losing events would skew any analysis built on it.
  registry_.add_counter("trace.dropped",
                        [this] { return static_cast<double>(trace_.dropped()); });

  if (observe_.latency_audit) {
    const SocConfig& cfg = soc_->config();
    audit_ =
        std::make_unique<LatencyAudit>(cfg.num_ports, observe_.flight_capacity);
    audit_->set_enabled(true);
    audit_->set_trace(&trace_);
    audit_->set_mem_source(soc_->memory_controller().name());
    if (HyperConnect* hc = soc_->hyperconnect()) {
      hc->set_latency_audit(audit_.get());
      // Watermark for the prover soundness cross-check: every audited run
      // also records the observed per-port eFIFO peak, so a simulated cell
      // can be compared against the static backlog bound.
      hc->set_track_efifo_peaks(true);
      for (PortIndex p = 0; p < cfg.num_ports; ++p) {
        audit_->set_port_source(p, hc->name() + ".port" + std::to_string(p));
      }
      // Positional memory-stage matching needs the in-order pipeline on
      // both sides; out-of-order HC mode or FR-FCFS scheduling fall back
      // to provenance-only auditing at the memory stage.
      const bool positional =
          !cfg.hc.out_of_order &&
          cfg.mem.scheduling == MemScheduling::kInOrder;
      if (positional) {
        soc_->memory_controller().set_latency_audit(audit_.get());
        // The analytic bound additionally assumes no PS-originated stall
        // interference (the model has no term for it).
        if (cfg.mem.ps_stall_period == 0) {
          HcAnalysisConfig acfg;
          acfg.num_ports = cfg.num_ports;
          acfg.nominal_burst = cfg.hc.nominal_burst;
          acfg.reservation_period = cfg.hc.reservation_period;
          acfg.budgets = cfg.hc.initial_budgets;
          acfg.budgets.resize(cfg.num_ports, 0);
          acfg.competitor_backlog = cfg.hc.max_outstanding;
          AnalysisPlatform ap;
          ap.mem_latency = cfg.mem.row_miss_latency;
          ap.turnaround = cfg.mem.turnaround;
          ap.refresh_period = cfg.mem.refresh_period;
          ap.refresh_duration = cfg.mem.refresh_duration;
          audit_->set_bound_model(acfg, ap);
        }
      }
    }
    for (PortIndex p = 0; p < masters_.size(); ++p) {
      masters_[p]->set_latency_audit(audit_.get(), p);
    }
    audit_->register_metrics(registry_);
    // The audit state is shared by components on different tick islands
    // (masters, interconnect, memory); only the serial kernel orders their
    // hook calls deterministically.
    soc_->sim().set_threads(0);
  }

  if (observe_.metrics) {
    sampler_ = std::make_unique<MetricsSampler>("sampler", registry_,
                                                observe_.sample_every);
    soc_->add(*sampler_);
  }
}

void ConfiguredSystem::write_trace(std::ostream& os) const {
  write_chrome_trace(os, trace_, sampler_.get());
}

void ConfiguredSystem::write_metrics_csv(std::ostream& os) const {
  AXIHC_CHECK_MSG(sampler_ != nullptr,
                  "metrics were not enabled for this system");
  sampler_->write_csv(os);
}

AxiLink& ConfiguredSystem::attach_port(PortIndex port) {
  bool targeted = false;
  for (const FaultSpec& f : scenario_.faults) {
    if (f.port == port) {
      targeted = true;
      break;
    }
  }
  if (!targeted) return soc_->port(port);
  fault_links_.push_back(
      std::make_unique<AxiLink>("fault_link" + std::to_string(port)));
  AxiLink& ha_side = *fault_links_.back();
  ha_side.register_with(soc_->sim());
  injectors_.push_back(std::make_unique<FaultInjector>(
      "fault_inj" + std::to_string(port), ha_side, soc_->port(port),
      scenario_, port));
  soc_->add(*injectors_.back());
  return ha_side;
}

void ConfiguredSystem::add_ha(const IniSection& section, PortIndex port) {
  const std::string type = section.get_string("type", "");
  const std::string name = section.name();
  AxiLink& link = attach_port(port);
  const bool ooo = soc_->config().kind == InterconnectKind::kHyperConnect &&
                   soc_->config().hc.out_of_order;

  if (type == "dma") {
    DmaConfig cfg;
    cfg.mode = dma_mode_by_name(section.get_string("mode", "readwrite"));
    cfg.bytes_per_job = section.get_u64("bytes_per_job", 1u << 20);
    cfg.burst_beats = static_cast<BeatCount>(section.get_u64("burst", 16));
    cfg.max_outstanding =
        static_cast<std::uint32_t>(section.get_u64("outstanding", 8));
    cfg.max_jobs = section.get_u64("max_jobs", 0);
    cfg.read_base = section.get_u64("read_base", 0x1000'0000 +
                                                     (Addr{port} << 26));
    cfg.write_base = section.get_u64("write_base", 0x2000'0000 +
                                                       (Addr{port} << 26));
    cfg.tolerate_out_of_order = ooo;
    ProveHaModel model;
    model.name = name;
    model.type = type;
    model.burst_beats = cfg.burst_beats;
    model.max_outstanding = cfg.max_outstanding;
    model.reads = cfg.mode != DmaMode::kWrite;
    model.writes = cfg.mode != DmaMode::kRead;
    prove_has_.push_back(model);
    if (cfg.mode != DmaMode::kWrite) {
      lint_windows_.push_back(
          {name + " read buffer", {cfg.read_base, cfg.bytes_per_job}});
    }
    if (cfg.mode != DmaMode::kRead) {
      lint_windows_.push_back(
          {name + " write buffer", {cfg.write_base, cfg.bytes_per_job}});
    }
    masters_.push_back(
        std::make_unique<DmaEngine>(name, link, cfg));
  } else if (type == "traffic") {
    TrafficConfig cfg;
    cfg.direction = direction_by_name(section.get_string("direction", "read"));
    cfg.burst_beats = static_cast<BeatCount>(section.get_u64("burst", 16));
    cfg.gap_cycles = section.get_u64("gap", 0);
    cfg.max_outstanding =
        static_cast<std::uint32_t>(section.get_u64("outstanding", 8));
    cfg.qos = static_cast<std::uint8_t>(section.get_u64("qos", 0));
    cfg.base = section.get_u64("base", 0x4000'0000 + (Addr{port} << 26));
    cfg.tolerate_out_of_order = ooo;
    ProveHaModel model;
    model.name = name;
    model.type = type;
    model.burst_beats = cfg.burst_beats;
    model.max_outstanding = cfg.max_outstanding;
    model.gap_cycles = cfg.gap_cycles;
    model.reads = cfg.direction != TrafficDirection::kWrite;
    model.writes = cfg.direction != TrafficDirection::kRead;
    prove_has_.push_back(model);
    lint_windows_.push_back({name + " region", {cfg.base, cfg.region_bytes}});
    masters_.push_back(
        std::make_unique<TrafficGenerator>(name, link, cfg));
  } else if (type == "dnn") {
    DnnConfig cfg;
    cfg.layers = network_by_name(section.get_string("network", "googlenet"));
    const std::uint64_t scale = section.get_u64("scale", 1);
    AXIHC_CHECK_MSG(scale >= 1, "[" << name << "] scale must be >= 1");
    for (auto& l : cfg.layers) {
      l.weight_bytes /= scale;
      l.ifmap_bytes /= scale;
      l.ofmap_bytes /= scale;
      l.macs /= scale;
    }
    cfg.macs_per_cycle = section.get_u64("macs_per_cycle", 256);
    cfg.max_frames = section.get_u64("max_frames", 0);
    cfg.tolerate_out_of_order = ooo;
    ProveHaModel model;
    model.name = name;
    model.type = type;
    model.burst_beats = cfg.burst_beats;
    model.max_outstanding = cfg.max_outstanding;
    model.reads = true;   // weight/ifmap loads
    model.writes = true;  // ofmap stores
    prove_has_.push_back(model);
    std::uint64_t load_max = 0;
    std::uint64_t store_max = 0;
    for (const DnnLayer& l : cfg.layers) {
      load_max = std::max(load_max, l.weight_bytes + l.ifmap_bytes);
      store_max = std::max(store_max, l.ofmap_bytes);
    }
    lint_windows_.push_back(
        {name + " weight/ifmap buffer", {cfg.weight_base, load_max}});
    lint_windows_.push_back(
        {name + " ofmap buffer", {cfg.buffer_base, store_max}});
    masters_.push_back(
        std::make_unique<DnnAccelerator>(name, link, cfg));
  } else {
    AXIHC_CHECK_MSG(false, "[" << name << "] unknown HA type '" << type
                               << "' (dma | traffic | dnn)");
  }
  ha_types_.push_back(type);
  soc_->add(*masters_.back());
}

Cycle ConfiguredSystem::run(Cycle override_cycles) {
  if (observe_.any() && !observability_wired_) wire_observability();
  const Cycle cycles =
      override_cycles != 0 ? override_cycles : configured_cycles_;
  soc_->sim().run(cycles);
  // Final cumulative sample: the last row of the time series then matches
  // the end-of-run totals (e.g. apm.read_bytes == total_read_bytes()).
  if (sampler_) sampler_->finalize(soc_->sim().now());
  if (trace_.dropped() != 0) {
    AXIHC_LOG_WARN() << "trace capacity " << trace_.capacity() << " dropped "
                     << trace_.dropped()
                     << " events; raise [observe] trace_capacity or check "
                        "trace.dropped in the metrics series";
  }
  return soc_->sim().now();
}

const AxiMasterBase& ConfiguredSystem::ha(std::size_t i) const {
  AXIHC_CHECK(i < masters_.size());
  return *masters_[i];
}

const FaultInjector& ConfiguredSystem::injector(std::size_t i) const {
  AXIHC_CHECK(i < injectors_.size());
  return *injectors_[i];
}

const std::string& ConfiguredSystem::ha_type(std::size_t i) const {
  AXIHC_CHECK(i < ha_types_.size());
  return ha_types_[i];
}

ProveInput ConfiguredSystem::prove_input() const {
  const SocConfig& cfg = soc_->config();
  ProveInput in;
  in.hyperconnect = cfg.kind == InterconnectKind::kHyperConnect;
  in.num_ports = cfg.num_ports;

  in.analysis.num_ports = cfg.num_ports;
  in.analysis.nominal_burst = cfg.hc.nominal_burst;
  in.analysis.reservation_period = cfg.hc.reservation_period;
  in.analysis.budgets = cfg.hc.initial_budgets;
  in.analysis.budgets.resize(cfg.num_ports, 0);
  in.analysis.competitor_backlog = cfg.hc.max_outstanding;
  in.platform.mem_latency = cfg.mem.row_miss_latency;
  in.platform.turnaround = cfg.mem.turnaround;
  in.platform.refresh_period = cfg.mem.refresh_period;
  in.platform.refresh_duration = cfg.mem.refresh_duration;

  const AxiLinkConfig& plc = cfg.hc.port_link_cfg;
  in.ar_depth = plc.ar_depth;
  in.aw_depth = plc.aw_depth;
  in.w_depth = plc.w_depth;
  in.r_depth = plc.r_depth;
  in.b_depth = plc.b_depth;
  in.out_of_order = in.hyperconnect && cfg.hc.out_of_order;
  in.id_bits = plc.id_bits;
  in.in_order_memory = cfg.mem.scheduling == MemScheduling::kInOrder;
  in.ps_stall = cfg.mem.ps_stall_period != 0;
  in.has = prove_has_;

  // Waits-for graph over the elaborated pipeline. Forward edges follow the
  // request path (a full queue drains into the next stage), response edges
  // follow R/B back out to the HA, which always consumes beats (a sink
  // node, NOT the HA's issue side — consuming responses never requires
  // issuing new requests). The owed-completion back-edges model the TS's
  // outstanding limit: accepting new work can require a completion slot,
  // i.e. the port's R/B queues draining.
  const auto edge = [&in](std::string from, std::string to) {
    in.edges.push_back({std::move(from), std::move(to)});
  };
  if (in.hyperconnect) {
    in.nodes = {"exbar",    "master.ar", "master.aw", "master.w",
                "master.r", "master.b",  "mem"};
    edge("exbar", "master.ar");
    edge("exbar", "master.aw");
    edge("exbar", "master.w");
    edge("master.ar", "mem");
    edge("master.aw", "mem");
    edge("master.w", "mem");
    edge("mem", "master.r");
    edge("mem", "master.b");
    for (std::size_t p = 0; p < prove_has_.size(); ++p) {
      const std::string ha = prove_has_[p].name;
      const std::string port = "port" + std::to_string(p);
      const std::string ts = "ts" + std::to_string(p);
      for (const char* ch : {".ar", ".aw", ".w", ".r", ".b"}) {
        in.nodes.push_back(port + ch);
      }
      in.nodes.push_back(ha);
      in.nodes.push_back(ha + ".sink");
      in.nodes.push_back(ts);
      edge(ha, port + ".ar");
      edge(ha, port + ".aw");
      edge(ha, port + ".w");
      edge(port + ".ar", ts);
      edge(port + ".aw", ts);
      edge(port + ".w", ts);
      edge(ts, "exbar");
      edge(ts, port + ".r");  // owed completion (outstanding limit)
      edge(ts, port + ".b");
      edge("master.r", port + ".r");
      edge("master.b", port + ".b");
      edge(port + ".r", ha + ".sink");
      edge(port + ".b", ha + ".sink");
    }
  } else {
    in.nodes = {"smartconnect.req", "smartconnect.resp", "mem"};
    edge("smartconnect.req", "mem");
    edge("mem", "smartconnect.resp");
    for (const ProveHaModel& ha : prove_has_) {
      in.nodes.push_back(ha.name);
      in.nodes.push_back(ha.name + ".sink");
      edge(ha.name, "smartconnect.req");
      edge("smartconnect.resp", ha.name + ".sink");
    }
  }
  return in;
}

ProveReport ConfiguredSystem::prove() const {
  return axihc::prove(prove_input());
}

LintReport ConfiguredSystem::lint() const {
  const SocConfig& cfg = soc_->config();
  DesignRuleChecker drc(soc_->sim());

  for (const AddrRange& r : cfg.mem.mapped_ranges) {
    drc.add_address_range("memory decode map", r, AddressKind::kDecode);
  }
  for (const AddrRange& r : cfg.mem.slverr_ranges) {
    drc.add_address_range("SLVERR window", r, AddressKind::kErrorWindow);
  }
  for (const LintWindow& w : lint_windows_) {
    drc.add_address_range(w.owner, w.range, AddressKind::kMasterWindow);
  }

  const bool ooo =
      cfg.kind == InterconnectKind::kHyperConnect && cfg.hc.out_of_order;
  for (PortIndex p = 0; p < cfg.num_ports; ++p) {
    AxiLink& port_link = soc_->port(p);
    drc.expect_connected(port_link,
                         "interconnect port " + std::to_string(p));
    if (ooo) {
      drc.require_id_headroom(
          port_link, kIdPortShift,
          "the ID-extension (port index packed above bit " +
              std::to_string(kIdPortShift) + ")");
    }
  }
  drc.expect_connected(soc_->interconnect().master_link(),
                       "FPGA-PS master link");
  for (const auto& fl : fault_links_) {
    drc.expect_connected(*fl, "fault-injector HA-side link");
  }

  LintReport report = drc.run();

  // Recovery-loop timing rule: a probation window shorter than the watchdog
  // poll period promotes a recoupled port straight back to Healthy at the
  // first post-recouple poll — before a single fault observation could
  // demote it, defeating probation entirely.
  if (recovery_ != nullptr &&
      recovery_probation_window_ < recovery_poll_period_) {
    std::ostringstream msg;
    msg << "probation_window (" << recovery_probation_window_
        << " cycles) is shorter than the watchdog poll_period ("
        << recovery_poll_period_
        << " cycles): a recoupled port is promoted back to Healthy at the "
           "first poll, before any new fault could be observed";
    report.add({LintSeverity::kWarning, "recovery-probation-window",
                "[recovery]", msg.str(),
                "raise probation_window to at least one poll_period "
                "(several, to observe real traffic before trusting the "
                "port)"});
  }

  // Layer-2 static certification (src/prove) folded into lint: a disproved
  // check is a configuration bug. Warning severity makes `--lint-strict`
  // (the CI gate) fail on a disproved system while plain --lint keeps
  // reporting everything else.
  const ProveReport proof = axihc::prove(prove_input());
  for (const ProveCheck& c : proof.checks) {
    if (c.verdict != ProveVerdict::kDisproved) continue;
    report.add({LintSeverity::kWarning, "prove-" + c.id, "[static prover]",
                c.detail,
                "run `axihc --prove` for the full certificate, then fix "
                "the configuration it refutes"});
  }
  if (proof.reservation_on && !proof.reservation_feasible) {
    std::ostringstream msg;
    msg << "reservation plan is overcommitted: serving every budget at "
           "worst-case memory timing needs "
        << proof.reservation_demand << " cycles per "
        << cfg.hc.reservation_period
        << "-cycle period; the supply-bound WCLA form does not apply "
           "(bounds stay sound via the composite supply+arbitration form, "
           "but guarantees are weaker than the budget split suggests)";
    report.add({LintSeverity::kWarning, "reservation-overcommit",
                "[hyperconnect]", msg.str(),
                "shrink the budgets, lengthen reservation_period, or "
                "reduce nominal_burst so sum(budget x worst-case service) "
                "fits the period"});
  }

  return report;
}

std::string ConfiguredSystem::report() const {
  const Cycle now = soc_->sim().now();
  const RateMeter meter = platform_.rate_meter();
  std::ostringstream os;
  os << "platform: " << platform_.name << ", " << now << " cycles ("
     << Table::num(meter.to_us(now) / 1000.0, 2) << " ms)\n\n";

  Table t({"HA", "type", "bytes read", "bytes written", "read BW (MB/s)",
           "write BW (MB/s)", "max read lat (cyc)", "failed"});
  for (std::size_t i = 0; i < masters_.size(); ++i) {
    const MasterStats& s = masters_[i]->stats();
    t.add_row(
        {masters_[i]->name(), ha_types_[i], std::to_string(s.bytes_read),
         std::to_string(s.bytes_written),
         Table::num(meter.bytes_per_second(s.bytes_read, now) / 1e6, 1),
         Table::num(meter.bytes_per_second(s.bytes_written, now) / 1e6, 1),
         s.read_latency.count() ? std::to_string(s.read_latency.max())
                                : "-",
         std::to_string(s.reads_failed + s.writes_failed)});
  }
  t.print_markdown(os);
  return os.str();
}

std::unique_ptr<ConfiguredSystem> build_system(const std::string& ini_text) {
  return std::make_unique<ConfiguredSystem>(IniFile::parse(ini_text));
}

}  // namespace axihc
