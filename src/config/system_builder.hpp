// Builds a complete runnable system from an INI experiment description —
// the engine behind the axihc CLI (tools/axihc.cpp). Lets users run
// interconnect experiments without writing C++:
//
//   [system]
//   interconnect = hyperconnect      ; hyperconnect | smartconnect
//   platform = zcu102                ; zcu102 | zynq7020
//   ports = 2
//   cycles = 1000000
//
//   [hyperconnect]                   ; optional, defaults shown
//   nominal_burst = 16
//   max_outstanding = 4
//   reservation_period = 2000
//   budgets = 40 20
//
//   [ha0]
//   type = dma                       ; dma | traffic | dnn
//   mode = readwrite                 ; dma: read | write | readwrite | copy
//   bytes_per_job = 1048576
//   burst = 16
//
//   [ha1]
//   type = dnn
//   network = googlenet              ; googlenet | alexnet
//   scale = 16
//
//   [fault0]                         ; optional fault-injection scenario
//   kind = stall_w                   ; see fault/scenario.hpp; or mem_slverr
//   port = 0
//   start = 2000
//   duration = 0                     ; 0 = forever
//
//   [recovery]                       ; optional closed-loop fault recovery
//   poll_period = 500                ; watchdog poll period (cycles)
//   max_txns_per_poll = 0            ; overrun threshold, all ports; 0 = off
//   backoff_base = 1000              ; first quarantine wait (cycles)
//   backoff_max = 16000              ; backoff doubling ceiling
//   probation_window = 2000          ; fault-free cycles to count recovered
//   max_attempts = 4                 ; re-couple attempts before permanent
//   drain_timeout = 4000             ; max wait for INFLIGHT == 0
//
//   [observe]                        ; optional observability layer
//   trace = true                     ; record typed events (Chrome trace)
//   metrics = true                   ; sample the metrics registry
//   sample_every = 1000              ; sampler period / APM window (cycles)
//   trace_capacity = 0               ; max retained events; 0 = unbounded
//
// Fault-targeted ports get a FaultInjector spliced between the HA and the
// interconnect; "mem_slverr" entries instead configure an SLVERR window
// (base/bytes keys) on the memory controller. [system] fault_seed seeds the
// injectors; [system] mem_bytes bounds the decoded address space (accesses
// beyond it get DECERR); [hyperconnect] prot_timeout arms the per-port
// protection units.
//
// A [recovery] section (hyperconnect only) assembles the full software
// stack behind the control interface — RegisterMaster, driver, Hypervisor
// watchdog, RecoveryManager — so detected faults start closed-loop recovery
// episodes (src/recovery) instead of permanently retiring the port.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "config/ini.hpp"
#include "driver/register_master.hpp"
#include "fault/fault_injector.hpp"
#include "ha/dma_engine.hpp"
#include "ha/dnn_accelerator.hpp"
#include "ha/traffic_gen.hpp"
#include "hypervisor/hypervisor.hpp"
#include "lint/lint.hpp"
#include "obs/latency_audit.hpp"
#include "obs/metrics.hpp"
#include "platform/platform.hpp"
#include "prove/prove.hpp"
#include "recovery/recovery_manager.hpp"
#include "sim/trace.hpp"
#include "soc/soc.hpp"
#include "stats/bandwidth_probe.hpp"

namespace axihc {

/// Observability settings ([observe] section; the axihc CLI flags override
/// them). Both halves are independent: `trace` records typed events for the
/// Chrome-trace export, `metrics` samples the registry every `sample_every`
/// cycles.
struct ObserveConfig {
  bool trace = false;
  bool metrics = false;
  Cycle sample_every = 1000;
  std::size_t trace_capacity = 0;  // 0 = unbounded
  /// Per-transaction latency provenance + live WCLA bound auditing
  /// (src/obs/latency_audit.hpp). Forces the serial tick kernel (the audit
  /// state is shared across master/memory islands).
  bool latency_audit = false;
  /// Flight-recorder ring capacity (completed transactions retained).
  std::size_t flight_capacity = 4096;
  [[nodiscard]] bool any() const { return trace || metrics || latency_audit; }
};

/// A fully-assembled experiment: the SoC plus the configured HAs, ready to
/// run. Owns everything.
class ConfiguredSystem {
 public:
  explicit ConfiguredSystem(const IniFile& ini);

  /// Builds the system with `scenario` instead of the file's [faultN]
  /// sections and fault_seed — the campaign runner's entry point (each run
  /// reuses one base description under a generated scenario).
  ConfiguredSystem(const IniFile& ini, const FaultScenario& scenario);

  /// Runs for the configured [system] cycles (or `override_cycles` if
  /// nonzero) and returns the simulated cycle count.
  Cycle run(Cycle override_cycles = 0);

  [[nodiscard]] SocSystem& soc() { return *soc_; }
  [[nodiscard]] const Platform& platform() const { return platform_; }
  [[nodiscard]] std::size_t ha_count() const { return masters_.size(); }
  [[nodiscard]] const AxiMasterBase& ha(std::size_t i) const;
  [[nodiscard]] const std::string& ha_type(std::size_t i) const;

  /// Renders the per-HA statistics table (markdown).
  [[nodiscard]] std::string report() const;

  /// Runs the design-rule checker (src/lint) over the elaborated system:
  /// port/master-link connectivity, decode map vs HA job windows, ID
  /// headroom under the out-of-order ID-extension, and — in instrumented
  /// builds after a run — the access-ledger contract checks.
  [[nodiscard]] LintReport lint() const;

  /// Assembles the static-prover input (src/prove) from the elaborated
  /// system: the WCLA-side analysis config, platform timing, eFIFO depths,
  /// the per-HA arrival models recorded by add_ha, and the
  /// channel/endpoint waits-for graph with owed-completion back-edges.
  [[nodiscard]] ProveInput prove_input() const;
  /// Runs the static predictability certifier (src/prove) — zero simulated
  /// cycles; see ProveReport for verdicts and the certificate.
  [[nodiscard]] ProveReport prove() const;

  /// The parsed fault scenario ([faultN] sections; empty when none).
  [[nodiscard]] const FaultScenario& fault_scenario() const {
    return scenario_;
  }
  [[nodiscard]] std::size_t injector_count() const {
    return injectors_.size();
  }
  [[nodiscard]] const FaultInjector& injector(std::size_t i) const;

  /// The [recovery] software stack, or nullptr when the section is absent.
  [[nodiscard]] Hypervisor* hypervisor() { return hypervisor_.get(); }
  [[nodiscard]] const Hypervisor* hypervisor() const {
    return hypervisor_.get();
  }
  [[nodiscard]] RecoveryManager* recovery() { return recovery_.get(); }
  [[nodiscard]] const RecoveryManager* recovery() const {
    return recovery_.get();
  }

  /// Mutable observability settings. Changes only take effect before the
  /// first run() call (the layer is wired lazily on first run).
  [[nodiscard]] ObserveConfig& observe_config() { return observe_; }

  /// The recorded event stream (empty unless observe trace was on).
  [[nodiscard]] const EventTrace& trace() const { return trace_; }
  /// The sampler, or nullptr when metrics were never enabled.
  [[nodiscard]] const MetricsSampler* sampler() const {
    return sampler_.get();
  }
  /// The APM-style probe on the interconnect master link, or nullptr.
  [[nodiscard]] const BandwidthProbe* probe() const { return probe_.get(); }

  /// The latency auditor, or nullptr when observe latency_audit was off.
  [[nodiscard]] const LatencyAudit* latency_audit() const {
    return audit_.get();
  }

  /// Chrome trace-event JSON (Perfetto-loadable): the event stream plus the
  /// sampled metrics as counter tracks.
  void write_trace(std::ostream& os) const;
  /// Sampled metrics time series as CSV.
  void write_metrics_csv(std::ostream& os) const;

 private:
  /// Shared constructor body; `scenario_override` (campaign runs) replaces
  /// the file's [faultN] sections and fault_seed.
  void build(const IniFile& ini, const FaultScenario* scenario_override);
  /// Hands the trace to every instrumented component, registers all
  /// metrics, and attaches the APM probe + sampler. Called once, from the
  /// first run() with observability requested.
  void wire_observability();
  void add_ha(const IniSection& section, PortIndex port);
  /// Assembles the [recovery] hypervisor stack on the control link.
  void wire_recovery(const IniSection& rec);
  /// The link the HA on `port` should master: the interconnect port itself,
  /// or a fresh intermediate link behind a FaultInjector when the scenario
  /// targets this port.
  AxiLink& attach_port(PortIndex port);

  /// An address window an HA was configured to master (recorded by add_ha
  /// for the lint address-map checks).
  struct LintWindow {
    std::string owner;
    AddrRange range;
  };

  Platform platform_;
  Cycle configured_cycles_ = 1'000'000;
  std::vector<LintWindow> lint_windows_;
  /// Arrival model per attached HA (recorded by add_ha for the prover).
  std::vector<ProveHaModel> prove_has_;
  std::unique_ptr<SocSystem> soc_;
  std::vector<std::unique_ptr<AxiMasterBase>> masters_;
  std::vector<std::string> ha_types_;
  FaultScenario scenario_;
  std::vector<std::unique_ptr<AxiLink>> fault_links_;
  std::vector<std::unique_ptr<FaultInjector>> injectors_;

  // [recovery] stack (all null when the section is absent).
  std::unique_ptr<RegisterMaster> register_master_;
  std::unique_ptr<HyperConnectDriver> driver_;
  std::unique_ptr<Hypervisor> hypervisor_;
  std::unique_ptr<RecoveryManager> recovery_;
  Cycle recovery_poll_period_ = 0;
  Cycle recovery_probation_window_ = 0;

  ObserveConfig observe_;
  bool observability_wired_ = false;
  EventTrace trace_;
  MetricsRegistry registry_;
  std::unique_ptr<MetricsSampler> sampler_;
  std::unique_ptr<BandwidthProbe> probe_;
  std::unique_ptr<LatencyAudit> audit_;
};

/// Parses + builds in one call (throws ModelError with a line/section
/// message on bad configs).
[[nodiscard]] std::unique_ptr<ConfiguredSystem> build_system(
    const std::string& ini_text);

}  // namespace axihc
