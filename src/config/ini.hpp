// Minimal INI parser for experiment configuration files.
//
//   [section]
//   key = value        ; or # comments
//   list = 1 2 3       (space-separated)
//
// Section names repeat freely ([ha0], [ha1], ...). Lookups are typed with
// defaults; unknown keys are detectable so the system builder can reject
// typos instead of silently ignoring them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace axihc {

class IniSection {
 public:
  explicit IniSection(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  void set(const std::string& key, const std::string& value);
  /// Replaces the first occurrence of `key` (the one every get_* reads), or
  /// appends when absent — the sweep engine's axis-override primitive.
  void replace(const std::string& key, const std::string& value);
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = "") const;
  /// Throws ModelError if present but non-numeric.
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  /// Space-separated unsigned list.
  [[nodiscard]] std::vector<std::uint32_t> get_u32_list(
      const std::string& key) const;

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  entries() const {
    return entries_;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

class IniFile {
 public:
  /// Parses INI text; throws ModelError on malformed lines.
  static IniFile parse(const std::string& text);

  /// First section with this name, or nullptr.
  [[nodiscard]] const IniSection* section(const std::string& name) const;
  /// All sections whose name starts with `prefix`, in file order.
  [[nodiscard]] std::vector<const IniSection*> sections_with_prefix(
      const std::string& prefix) const;

  [[nodiscard]] const std::vector<IniSection>& sections() const {
    return sections_;
  }

  /// First section with this name (mutable), or nullptr.
  [[nodiscard]] IniSection* mutable_section(const std::string& name);
  /// Appends a new (possibly duplicate-named) section and returns it.
  IniSection& add_section(const std::string& name);
  /// mutable_section() or add_section() — the sweep engine's override hook.
  IniSection& get_or_add_section(const std::string& name);

 private:
  std::vector<IniSection> sections_;
};

}  // namespace axihc
