#include "sim/backend.hpp"

#include <chrono>
#include <cstdlib>
#include <vector>

#include "sim/soa_pool.hpp"

namespace axihc {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar:
      return "scalar";
    case BackendKind::kSse2:
      return "sse2";
    case BackendKind::kAvx2:
      return "avx2";
    case BackendKind::kAuto:
      return "auto";
  }
  return "?";
}

bool parse_backend(std::string_view text, BackendKind& out) {
  if (text == "scalar") {
    out = BackendKind::kScalar;
  } else if (text == "sse2") {
    out = BackendKind::kSse2;
  } else if (text == "avx2") {
    out = BackendKind::kAvx2;
  } else if (text == "auto") {
    out = BackendKind::kAuto;
  } else {
    return false;
  }
  return true;
}

std::string CpuFeatures::to_string() const {
  std::string s;
  if (sse2) s += "sse2";
  if (avx2) s += s.empty() ? "avx2" : " avx2";
  return s.empty() ? "none" : s;
}

CpuFeatures detect_cpu_features() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  __builtin_cpu_init();
  // __builtin_cpu_supports folds in OS support (XSAVE state) for AVX2, so a
  // "yes" here means the kernels are actually executable, not just decoded.
  f.sse2 = __builtin_cpu_supports("sse2") != 0 &&
           backend_detail::sse2_kernels() != nullptr;
  f.avx2 = __builtin_cpu_supports("avx2") != 0 &&
           backend_detail::avx2_kernels() != nullptr;
#endif
  return f;
}

// --- scalar kernels ------------------------------------------------------

namespace {

void commit_dense_scalar(ChannelHot* hot, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    ChannelHot& h = hot[i];
    h.committed += h.staged;
    h.staged = 0;
    h.snapshot = h.committed;
  }
}

void commit_sparse_scalar(ChannelHot* hot, const std::uint32_t* lanes,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    ChannelHot& h = hot[lanes[i]];
    h.committed += h.staged;
    h.staged = 0;
    h.snapshot = h.committed;
  }
}

std::uint64_t min_reduce_scalar(const std::uint64_t* v, std::size_t n) {
  std::uint64_t m = UINT64_MAX;
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] < m) m = v[i];
  }
  return m;
}

constexpr BackendKernels kScalarKernels = {
    BackendKind::kScalar,
    &commit_dense_scalar,
    &commit_sparse_scalar,
    &min_reduce_scalar,
};

}  // namespace

const BackendKernels& kernels_for(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSse2:
      if (const BackendKernels* k = backend_detail::sse2_kernels()) return *k;
      break;
    case BackendKind::kAvx2:
      if (const BackendKernels* k = backend_detail::avx2_kernels()) return *k;
      break;
    default:
      break;
  }
  return kScalarKernels;
}

// --- policy --------------------------------------------------------------

namespace {

bool supported(BackendKind kind, const CpuFeatures& cpu) {
  switch (kind) {
    case BackendKind::kScalar:
      return true;
    case BackendKind::kSse2:
      return cpu.sse2;
    case BackendKind::kAvx2:
      return cpu.avx2;
    case BackendKind::kAuto:
      return true;
  }
  return false;
}

BackendKind widest(const CpuFeatures& cpu) {
  if (cpu.avx2) return BackendKind::kAvx2;
  if (cpu.sse2) return BackendKind::kSse2;
  return BackendKind::kScalar;
}

}  // namespace

BackendPolicy resolve_backend(BackendKind requested) {
  BackendPolicy p;
  p.requested = requested;
  p.cpu = detect_cpu_features();

  if (const char* env = std::getenv("AXIHC_FORCE_BACKEND");
      env != nullptr && env[0] != '\0') {
    BackendKind forced = BackendKind::kAuto;
    if (!parse_backend(env, forced)) {
      p.reason = "AXIHC_FORCE_BACKEND='" + std::string(env) +
                 "' unparseable, ignored; ";
    } else if (forced == BackendKind::kAuto) {
      p.chosen = widest(p.cpu);
      p.forced_by_env = true;
      p.reason = "AXIHC_FORCE_BACKEND=auto: widest supported ISA";
      return p;
    } else if (!supported(forced, p.cpu)) {
      p.reason = "AXIHC_FORCE_BACKEND=" + std::string(to_string(forced)) +
                 " not supported on this CPU, ignored; ";
    } else {
      p.chosen = forced;
      p.forced_by_env = true;
      p.reason = "AXIHC_FORCE_BACKEND override";
      return p;
    }
  }

  if (requested == BackendKind::kAuto) {
    p.chosen = widest(p.cpu);
    p.reason += p.chosen == BackendKind::kScalar
                    ? "auto: no SIMD support, scalar"
                    : "auto: widest supported ISA";
  } else if (supported(requested, p.cpu)) {
    p.chosen = requested;
    p.reason += "requested explicitly";
  } else {
    p.chosen = BackendKind::kScalar;
    p.reason += std::string(to_string(requested)) +
                " not supported on this CPU, scalar fallback";
  }
  return p;
}

std::string BackendPolicy::report() const {
  std::string line = "backend policy: chosen=";
  line += to_string(chosen);
  line += " requested=";
  line += to_string(requested);
  line += " cpu=[";
  line += cpu.to_string();
  line += "]";
  if (forced_by_env) line += " forced-by-env";
  line += " reason=";
  line += reason;
  return line;
}

// --- auto-tune micro-probe -----------------------------------------------

namespace {

/// Wall time of `reps` kernel rounds over synthetic pools sized like a
/// mid-size topology (the absolute number only matters relative to the
/// other backends on the same host).
double probe_backend(const BackendKernels& k, std::vector<ChannelHot>& hot,
                     std::vector<std::uint64_t>& certs, int reps) {
  using clock = std::chrono::steady_clock;
  std::uint64_t acc = 0;
  const auto t0 = clock::now();
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < hot.size(); i += 7) {
      hot[i].staged = static_cast<std::uint32_t>(r + 1);
    }
    k.commit_dense(hot.data(), hot.size());
    acc += k.min_reduce(certs.data(), certs.size());
  }
  const double secs = std::chrono::duration<double>(clock::now() - t0).count();
  volatile std::uint64_t sink = acc;  // keep the reduce chain observable
  (void)sink;
  return secs;
}

}  // namespace

BackendKind auto_tune_backend(std::string* note) {
  const CpuFeatures cpu = detect_cpu_features();
  std::vector<ChannelHot> hot(512);
  std::vector<std::uint64_t> certs(512);
  for (std::size_t i = 0; i < certs.size(); ++i) {
    certs[i] = 1'000'000 + i * 37;
  }
  constexpr int kReps = 4096;

  BackendKind best = BackendKind::kScalar;
  double best_t = probe_backend(kScalarKernels, hot, certs, kReps);
  std::string summary =
      "auto-tune: scalar=" + std::to_string(best_t * 1e3) + "ms";
  const BackendKind candidates[] = {BackendKind::kSse2, BackendKind::kAvx2};
  for (BackendKind cand : candidates) {
    if (!supported(cand, cpu)) continue;
    const double t = probe_backend(kernels_for(cand), hot, certs, kReps);
    summary += std::string(" ") + to_string(cand) + "=" +
               std::to_string(t * 1e3) + "ms";
    if (t < best_t) {
      best_t = t;
      best = cand;
    }
  }
  summary += std::string(" -> ") + to_string(best);
  if (note != nullptr) *note = summary;
  return best;
}

}  // namespace axihc
