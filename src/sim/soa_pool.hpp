// Packed hot-state pools owned by the Simulator.
//
// The per-cycle hot state of a simulation — ring-channel counter words,
// per-component next_activity certificates, and component-declared scalar
// slots (reservation budgets, recharge deadlines) — lives here in packed
// arrays instead of scattered across component objects. Components and
// channels hold typed handles (a pointer into the pool, installed at
// elaboration time), so all existing logic, the digest, traces and audits
// are unchanged; only the memory layout moves. The payoff is the two hot
// linear sweeps in src/sim/backend.hpp: the commit phase walks the channel
// lane array and the fast-forward bound min-reduces the certificate array,
// both branch-light and SIMD-friendly.
//
// Layout and handle invariants:
//  * Channel lanes are indexed by the channel's registration index in its
//    Simulator; the index never changes once assigned, only the backing
//    array may move (growth on late registrations), after which the
//    Simulator re-installs every handle before the next cycle. A lane whose
//    channel does not opt in (a non-TimingChannel subclass) stays all-zero
//    forever, which makes it a no-op under the dense commit sweep.
//  * Certificate lanes are indexed by component registration index; island
//    slices address them through the island's seq[] mapping, so the
//    parallel engine's per-island refresh composes without a relayout.
//  * Scalar slots are append-only and individually heap-backed, so handles
//    into them survive later allocations. Every slot declares its owning
//    component — axihc-lint's undeclared-pool-slot check and the
//    AXIHC_PHASE_CHECK ledger treat pool writes like channel writes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace axihc {

class ChannelBase;
class Component;

/// "Not pooled" lane sentinel.
inline constexpr std::uint32_t kNoLane = 0xffffffffu;

/// The four hot ring-counter words of one TimingChannel, packed as a
/// 16-byte pool lane so the commit sweep can process lanes vector-wide.
struct ChannelHot {
  std::uint32_t head = 0;       // ring index of the oldest committed element
  std::uint32_t committed = 0;  // elements visible to the consumer
  std::uint32_t staged = 0;     // pushed this cycle, pending commit
  std::uint32_t snapshot = 0;   // occupancy at cycle start (can_push basis)
};
static_assert(sizeof(ChannelHot) == 16, "commit kernels assume 16B lanes");

class HotStatePool {
 public:
  HotStatePool() = default;
  HotStatePool(const HotStatePool&) = delete;
  HotStatePool& operator=(const HotStatePool&) = delete;

  // --- channel hot lanes (managed by the Simulator at elaboration) -------

  /// Grows/shrinks the lane array to `n`; new lanes are zeroed. May move
  /// the array: the caller must re-install every channel handle afterwards.
  void resize_channels(std::size_t n) {
    hot_.resize(n);
    lane_channel_.resize(n, nullptr);
  }
  [[nodiscard]] std::size_t channel_lanes() const { return hot_.size(); }
  [[nodiscard]] ChannelHot* hot_data() { return hot_.data(); }
  [[nodiscard]] ChannelHot& hot(std::uint32_t lane) { return hot_[lane]; }

  /// Channel behind a lane (nullptr for non-pooled lanes). The commit phase
  /// uses this for ledger stamping; rewires use it to re-enqueue pending
  /// lanes onto retargeted lists.
  void set_lane_channel(std::uint32_t lane, ChannelBase* ch) {
    lane_channel_[lane] = ch;
  }
  [[nodiscard]] ChannelBase* lane_channel(std::uint32_t lane) const {
    return lane_channel_[lane];
  }

  // --- next_activity certificate lanes -----------------------------------

  void resize_certs(std::size_t n) { certs_.resize(n, 0); }
  [[nodiscard]] std::size_t cert_lanes() const { return certs_.size(); }
  [[nodiscard]] Cycle* certs() { return certs_.data(); }

  // --- owner-declared scalar slots ---------------------------------------

  /// One scalar slot: a fixed-size block of pool-owned words plus the
  /// declaration that makes it auditable.
  struct SlotInfo {
    const Component* owner = nullptr;
    std::string what;       // e.g. "budget_left"
    std::size_t words = 0;  // block length in elements
#ifdef AXIHC_PHASE_CHECK
    // Access ledger (axihc-lint): distinct components observed writing this
    // slot while the phase checker was armed. Mirrors the channel ledger.
    mutable std::vector<const Component*> accessors;
#endif
  };

  struct Slot32 {
    std::uint32_t* data = nullptr;
    std::uint32_t slot = kNoLane;
  };
  struct Slot64 {
    std::uint64_t* data = nullptr;
    std::uint32_t slot = kNoLane;
  };

  /// Allocates `count` words owned by `owner` (may be null only in tests;
  /// axihc-lint flags ownerless slots). Handles stay valid for the pool's
  /// lifetime. Call from Component::adopt_hot_state.
  Slot32 alloc_u32(const Component* owner, std::size_t count,
                   std::string what);
  Slot64 alloc_u64(const Component* owner, std::size_t count,
                   std::string what);

  [[nodiscard]] const std::vector<SlotInfo>& slots() const { return slots_; }

  /// AXIHC_PHASE_CHECK hook: stamps a write to `slot` like a channel write
  /// (records the currently-ticking component in the slot's ledger; flags a
  /// write during the engine commit phase). No-op in default builds.
#ifdef AXIHC_PHASE_CHECK
  void note_slot_write(std::uint32_t slot) const;
  [[nodiscard]] const std::vector<const Component*>& slot_accessors(
      std::uint32_t slot) const {
    return slots_[slot].accessors;
  }
  void clear_slot_accessors() {
    for (auto& s : slots_) s.accessors.clear();
  }
#else
  void note_slot_write(std::uint32_t slot) const { (void)slot; }
  [[nodiscard]] const std::vector<const Component*>& slot_accessors(
      std::uint32_t slot) const {
    (void)slot;
    static const std::vector<const Component*> kEmpty;
    return kEmpty;
  }
  void clear_slot_accessors() {}
#endif

 private:
  std::vector<ChannelHot> hot_;
  std::vector<ChannelBase*> lane_channel_;
  std::vector<Cycle> certs_;
  std::vector<SlotInfo> slots_;
  // One heap block per slot: handles must survive later allocations, and a
  // slot's words (e.g. all per-port budgets) stay contiguous — the unit
  // that matters for sweep locality.
  std::vector<std::unique_ptr<std::uint64_t[]>> blocks_;
};

/// Typed handle to a u32 scalar slot with inline fallback storage: before
/// adoption (standalone components, unit tests) it behaves like a plain
/// vector; adopt() moves the words into the pool and repoints the handle,
/// after which every accessor reads/writes the pool lane — same code path,
/// no branch. Sizes are frozen by adoption.
class PooledWords {
 public:
  PooledWords() = default;
  explicit PooledWords(std::vector<std::uint32_t> init)
      : inline_(std::move(init)), data_(inline_.data()), size_(inline_.size()) {}

  /// Copies `v` into the active storage. Pre-adoption the handle resizes to
  /// match; post-adoption the sizes must agree (the pool block is fixed).
  void assign(const std::vector<std::uint32_t>& v) {
    if (pool_ == nullptr) {
      inline_ = v;
      data_ = inline_.data();
      size_ = inline_.size();
      return;
    }
    AXIHC_CHECK(v.size() == size_);
    pool_->note_slot_write(slot_);
    for (std::size_t i = 0; i < size_; ++i) data_[i] = v[i];
  }
  PooledWords& operator=(const std::vector<std::uint32_t>& v) {
    assign(v);
    return *this;
  }

  /// Moves the words into `pool` (idempotent against the same pool slot
  /// only through re-adoption: a fresh slot is allocated and the current
  /// values copied over).
  void adopt(HotStatePool& pool, const Component* owner, std::string what) {
    HotStatePool::Slot32 s = pool.alloc_u32(owner, size_, std::move(what));
    for (std::size_t i = 0; i < size_; ++i) s.data[i] = data_[i];
    pool_ = &pool;
    slot_ = s.slot;
    data_ = s.data;
  }

  std::uint32_t& operator[](std::size_t i) {
    if (pool_ != nullptr) pool_->note_slot_write(slot_);
    return data_[i];
  }
  [[nodiscard]] std::uint32_t operator[](std::size_t i) const {
    return data_[i];
  }
  [[nodiscard]] std::uint32_t get(std::size_t i) const { return data_[i]; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::uint32_t* begin() const { return data_; }
  [[nodiscard]] const std::uint32_t* end() const { return data_ + size_; }

 private:
  std::vector<std::uint32_t> inline_;
  const HotStatePool* pool_ = nullptr;  // null until adopted
  std::uint32_t slot_ = kNoLane;
  std::uint32_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Single-u64 counterpart of PooledWords (deadline caches and the like).
class PooledCycle {
 public:
  PooledCycle() = default;
  explicit PooledCycle(Cycle init) : inline_(init) {}

  void adopt(HotStatePool& pool, const Component* owner, std::string what) {
    HotStatePool::Slot64 s = pool.alloc_u64(owner, 1, std::move(what));
    *s.data = *data_;
    pool_ = &pool;
    slot_ = s.slot;
    data_ = s.data;
  }

  void set(Cycle v) {
    if (pool_ != nullptr) pool_->note_slot_write(slot_);
    *data_ = v;
  }
  [[nodiscard]] Cycle get() const { return *data_; }

 private:
  Cycle inline_ = 0;
  const HotStatePool* pool_ = nullptr;
  std::uint32_t slot_ = kNoLane;
  Cycle* data_ = &inline_;
};

}  // namespace axihc
