// FNV-1a state digest over the committed simulation state. Used by the
// bit-identity tests (serial kernel vs. island engine at any thread count)
// and by `axihc --digest` instead of ad-hoc per-observable comparisons.
//
// Determinism notes:
//  * The digest folds explicit fields, never raw struct bytes — padding
//    bytes are indeterminate and would make the hash run-dependent.
//  * Payload types opt in via an ADL `append_digest(StateDigest&, const T&)`
//    overload next to the type (see src/axi/axi.hpp); integral and enum
//    payloads get the generic overload below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

namespace axihc {

class StateDigest {
 public:
  /// Folds one 64-bit word, byte by byte (FNV-1a).
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= kPrime;
    }
  }

  /// Folds a length-prefixed string (names self-delimit in the stream).
  void mix(const std::string& s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (unsigned char c : s) {
      hash_ ^= c;
      hash_ *= kPrime;
    }
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash_ = kOffsetBasis;
};

/// Generic overload for integral/enum channel payloads and state fields.
template <typename T>
  requires(std::is_integral_v<T> || std::is_enum_v<T>)
void append_digest(StateDigest& d, const T& v) {
  d.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

namespace digest_detail {

/// Dispatches to the payload's `append_digest` via ADL. Exists so class
/// members named `append_digest` (ChannelBase, Component) can reach the free
/// overload set without the member declaration hiding it.
template <typename T>
void fold(StateDigest& d, const T& v) {
  append_digest(d, v);
}

}  // namespace digest_detail

}  // namespace axihc
