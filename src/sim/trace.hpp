// Lightweight event trace. Components can record named events; tests use the
// trace to assert exact timing, and debugging dumps it as text. Disabled
// traces cost one branch per record.
//
// Events are typed so exporters (src/obs/chrome_trace.hpp) can render them
// as a timeline: instants (points), begin/end pairs (durations on the
// source's track), and counters (numeric time series). The original
// `record()` keeps its instant semantics, so existing callers and tests are
// unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace axihc {

/// How an event renders on a timeline.
enum class TraceKind : std::uint8_t {
  kInstant,  // a point in time
  kBegin,    // start of a duration slice on the source's track
  kEnd,      // end of the most recent slice with the same (source, event)
  kCounter,  // a numeric sample (value field)
};

struct TraceEvent {
  Cycle cycle;
  std::string source;
  std::string event;
  TraceKind kind = TraceKind::kInstant;
  double value = 0.0;  // kCounter payload; unused otherwise
};

class EventTrace {
 public:
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Caps the number of retained events, like a fixed-capacity hardware
  /// buffer (common/ring_buffer.hpp): once full, later events are discarded
  /// and counted in dropped() instead of growing memory without bound.
  /// The retained prefix keeps its exact timing. 0 = unbounded (default,
  /// so tests see every event).
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void record(Cycle cycle, std::string source, std::string event);
  void record_begin(Cycle cycle, std::string source, std::string event);
  void record_end(Cycle cycle, std::string source, std::string event);
  void record_counter(Cycle cycle, std::string source, std::string event,
                      double value);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// First cycle at which (source, event) was recorded, or kNoCycle.
  [[nodiscard]] Cycle first(const std::string& source,
                            const std::string& event) const;

  /// Number of events matching (source, event).
  [[nodiscard]] std::size_t count(const std::string& source,
                                  const std::string& event) const;

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Writes a human-readable dump, one event per line.
  void dump(std::ostream& os) const;

 private:
  void push(TraceEvent e);

  bool enabled_ = false;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace axihc
